// Shared plumbing for the paper-reproduction benches: tool construction,
// budget configuration via environment variables, and table formatting.
//
// Budgets are scaled-down stand-ins for the paper's 1-hour runs (the
// claims under reproduction are relative coverage and curve shape, which
// survive scaling). Override with:
//   STCG_BENCH_BUDGET_MS  per-run generation budget (default 1500)
//   STCG_BENCH_REPEATS    repetitions averaged per cell (default 2;
//                         the paper uses 10)
//   STCG_BENCH_SEED       base RNG seed (default 1)
#pragma once

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baselines/simcotest_like.h"
#include "baselines/sldv_like.h"
#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "stcg/stcg_generator.h"
#include "util/strings.h"

namespace stcg::benchx {

inline std::int64_t envInt(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoll(v, nullptr, 10);
}

inline gen::GenOptions defaultOptions() {
  gen::GenOptions opt;
  opt.budgetMillis = envInt("STCG_BENCH_BUDGET_MS", 1500);
  opt.seed = static_cast<std::uint64_t>(envInt("STCG_BENCH_SEED", 1));
  opt.solver.timeBudgetMillis = 25;
  return opt;
}

inline int repeats() { return static_cast<int>(envInt("STCG_BENCH_REPEATS", 2)); }

/// The three tools of Table III, in the paper's row order.
inline std::vector<std::unique_ptr<gen::Generator>> makeTools() {
  std::vector<std::unique_ptr<gen::Generator>> tools;
  tools.push_back(std::make_unique<gen::SldvLikeGenerator>());
  tools.push_back(std::make_unique<gen::SimCoTestLikeGenerator>());
  tools.push_back(std::make_unique<gen::StcgGenerator>());
  return tools;
}

struct CoverageCell {
  double decision = 0.0;
  double condition = 0.0;
  double mcdc = 0.0;
};

/// Average `runs` repetitions of `tool` on `cm` with per-repeat seeds.
inline CoverageCell averagedRun(gen::Generator& tool,
                                const compile::CompiledModel& cm,
                                const gen::GenOptions& base, int runs) {
  CoverageCell acc;
  for (int r = 0; r < runs; ++r) {
    gen::GenOptions opt = base;
    opt.seed = base.seed + static_cast<std::uint64_t>(r) * 7919;
    const auto res = tool.generate(cm, opt);
    acc.decision += res.coverage.decision;
    acc.condition += res.coverage.condition;
    acc.mcdc += res.coverage.mcdc;
  }
  acc.decision /= runs;
  acc.condition /= runs;
  acc.mcdc /= runs;
  return acc;
}

inline std::string pct(double v) { return formatPercent(v); }

}  // namespace stcg::benchx
