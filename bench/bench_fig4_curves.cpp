// Reproduces paper Fig. 4: Decision Coverage versus time per model and
// tool, with STCG's test-case origins marked — '^' (the paper's triangle)
// for constraint-solving-on-internal-state cases and 'o' (diamond) for
// random-sequence cases.
//
// Output: per model, one event list per tool — "t=<sec> DC=<pct> <mark>" —
// plus an ASCII sparkline of the curve sampled at 10 points.
#include <cstdio>

#include "bench/bench_common.h"

namespace {

std::string sparkline(const std::vector<stcg::gen::GenEvent>& events,
                      double horizonSec) {
  static const char* kLevels = " .:-=+*#%@";
  std::string out;
  for (int i = 1; i <= 20; ++i) {
    const double t = horizonSec * i / 20.0;
    double dc = 0.0;
    for (const auto& e : events) {
      if (e.timeSec <= t) dc = e.decisionCoverage;
    }
    const int level =
        std::min(9, static_cast<int>(dc * 10.0));
    out += kLevels[level];
  }
  return out;
}

}  // namespace

int main() {
  using namespace stcg;
  const auto base = benchx::defaultOptions();
  const double horizon = static_cast<double>(base.budgetMillis) / 1000.0;
  std::printf(
      "=== Fig. 4: Decision Coverage vs time (budget %lld ms, seed %llu) ===\n"
      "Marks: '^' solved-on-state test case (paper triangle), 'o' random "
      "sequence (paper diamond)\n",
      static_cast<long long>(base.budgetMillis),
      static_cast<unsigned long long>(base.seed));

  auto tools = benchx::makeTools();
  for (const auto& info : bench::allBenchModels()) {
    const auto cm = compile::compile(info.build());
    std::printf("\n--- %s ---\n", info.name.c_str());
    for (auto& tool : tools) {
      const auto res = tool->generate(cm, base);
      std::printf("%-15s [%s] final DC=%s  (%zu test cases)\n",
                  tool->name().c_str(),
                  sparkline(res.events, horizon).c_str(),
                  benchx::pct(res.coverage.decision).c_str(),
                  res.tests.size());
      // Event list, capped to keep the report readable.
      const std::size_t cap = 18;
      for (std::size_t i = 0; i < res.events.size(); ++i) {
        if (res.events.size() > cap && i == cap / 2) {
          std::printf("    ... (%zu more events) ...\n",
                      res.events.size() - cap);
          i = res.events.size() - cap / 2;
        }
        const auto& e = res.events[i];
        std::printf("    t=%6.2fs DC=%5.1f%% %c\n", e.timeSec,
                    e.decisionCoverage * 100.0,
                    e.origin == gen::TestOrigin::kSolved ? '^' : 'o');
      }
    }
  }
  std::printf(
      "\nExpected shape (paper): SimCoTest-like rises fastest early then "
      "plateaus;\nSLDV-like produces one burst; STCG keeps producing "
      "solved-on-state cases ('^')\nand overtakes both.\n");
  return 0;
}
