// Reproduces paper Table III: Decision / Condition / MCDC coverage of
// SLDV-like, SimCoTest-like and STCG on the eight benchmark models, with
// the average-improvement footer rows.
//
// Each cell is averaged over STCG_BENCH_REPEATS runs (paper: 10) with a
// STCG_BENCH_BUDGET_MS generation budget per run (paper: 1 hour). Also
// prints the dead-logic report the paper discusses for LEDLC.
#include <cstdio>

#include "bench/bench_common.h"
#include "stcg/testgen.h"

int main() {
  using namespace stcg;
  using benchx::CoverageCell;

  const auto base = benchx::defaultOptions();
  const int runs = benchx::repeats();
  std::printf(
      "=== Table III: test coverage of the different tools ===\n"
      "(budget %lld ms/run, %d repeats averaged, seed %llu)\n\n",
      static_cast<long long>(base.budgetMillis), runs,
      static_cast<unsigned long long>(base.seed));
  std::printf("%-12s %-15s %9s %10s %7s\n", "Model", "Tool", "Decision",
              "Condition", "MCDC");

  auto tools = benchx::makeTools();
  // improvement[t][criterion] accumulates STCG/tool ratios.
  double improveSum[2][3] = {{0, 0, 0}, {0, 0, 0}};
  int improveCount = 0;

  for (const auto& info : bench::allBenchModels()) {
    const auto cm = compile::compile(info.build());
    CoverageCell cells[3];
    for (std::size_t t = 0; t < tools.size(); ++t) {
      cells[t] = benchx::averagedRun(*tools[t], cm, base, runs);
      std::printf("%-12s %-15s %9s %10s %7s\n",
                  t == 0 ? info.name.c_str() : "",
                  tools[t]->name().c_str(), benchx::pct(cells[t].decision).c_str(),
                  benchx::pct(cells[t].condition).c_str(),
                  benchx::pct(cells[t].mcdc).c_str());
    }
    const auto ratio = [](double stcg, double other) {
      return other > 0 ? stcg / other : (stcg > 0 ? 2.0 : 1.0);
    };
    // tools[2] is STCG; 0 SLDV-like, 1 SimCoTest-like.
    improveSum[0][0] += ratio(cells[2].decision, cells[0].decision);
    improveSum[0][1] += ratio(cells[2].condition, cells[0].condition);
    improveSum[0][2] += ratio(cells[2].mcdc, cells[0].mcdc);
    improveSum[1][0] += ratio(cells[2].decision, cells[1].decision);
    improveSum[1][1] += ratio(cells[2].condition, cells[1].condition);
    improveSum[1][2] += ratio(cells[2].mcdc, cells[1].mcdc);
    ++improveCount;
  }

  const auto pctImprove = [&](double sum) {
    return (sum / improveCount - 1.0) * 100.0;
  };
  std::printf("\nAverage improvement of STCG:\n");
  std::printf("  vs %-15s Decision +%.0f%%  Condition +%.0f%%  MCDC +%.0f%%\n",
              "SLDV-like", pctImprove(improveSum[0][0]),
              pctImprove(improveSum[0][1]), pctImprove(improveSum[0][2]));
  std::printf("  vs %-15s Decision +%.0f%%  Condition +%.0f%%  MCDC +%.0f%%\n",
              "SimCoTest-like", pctImprove(improveSum[1][0]),
              pctImprove(improveSum[1][1]), pctImprove(improveSum[1][2]));
  std::printf(
      "(paper: vs SLDV +58%%/+52%%/+239%%, vs SimCoTest +132%%/+70%%/+237%%)\n");

  // Dead-logic report (paper Discussion: LEDLC's unreachable default arm).
  std::printf("\n=== Dead-logic check (LEDLC) ===\n");
  {
    const auto cm = compile::compile(bench::buildBenchModel("LEDLC"));
    gen::GenOptions opt = base;
    gen::StcgGenerator stcg;
    const auto res = stcg.generate(cm, opt);
    const auto replay = gen::replaySuite(cm, res.tests);
    for (const int b : replay.uncoveredBranches()) {
      const auto& br = cm.branches[static_cast<std::size_t>(b)];
      const auto& d = cm.decisions[static_cast<std::size_t>(br.decision)];
      std::printf("  uncovered: %s : %s%s\n", d.name.c_str(),
                  br.label.c_str(),
                  d.name.find("duty_by_mode") != std::string::npos
                      ? "   <-- the unreachable Switch-Case default arm"
                      : "");
    }
  }
  return 0;
}
