// Ablation bench for STCG's design choices (paper section III):
//   - depth-sorted branch ordering ("sorts the model branches by depth to
//     accelerate the test case generation process"),
//   - the random-sequence fallback ("a random trace is executed
//     dynamically to explore the new state space"),
//   - solving on all state-tree nodes vs the root state only (the core
//     state-aware idea itself),
//   - condition/MCDC goal derivation.
// Run on the three most state-heavy models.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace stcg;
  const auto base = benchx::defaultOptions();
  const int runs = benchx::repeats();

  struct Variant {
    const char* name;
    gen::GenOptions (*tweak)(gen::GenOptions);
  };
  const Variant variants[] = {
      {"full STCG", [](gen::GenOptions o) { return o; }},
      {"no depth sort",
       [](gen::GenOptions o) {
         o.sortGoalsByDepth = false;
         return o;
       }},
      {"no random fallback",
       [](gen::GenOptions o) {
         o.useRandomFallback = false;
         return o;
       }},
      {"root-state only",
       [](gen::GenOptions o) {
         o.solveOnAllNodes = false;
         return o;
       }},
      {"branch goals only",
       [](gen::GenOptions o) {
         o.includeConditionGoals = false;
         return o;
       }},
  };

  std::printf(
      "=== Ablation: STCG variants (budget %lld ms, %d repeats) ===\n\n",
      static_cast<long long>(base.budgetMillis), runs);
  std::printf("%-12s %-20s %9s %10s %7s\n", "Model", "Variant", "Decision",
              "Condition", "MCDC");

  for (const char* modelName : {"CPUTask", "TCP", "LANSwitch"}) {
    const auto cm = compile::compile(bench::buildBenchModel(modelName));
    for (const auto& v : variants) {
      gen::StcgGenerator tool;
      const auto cell =
          benchx::averagedRun(tool, cm, v.tweak(base), runs);
      std::printf("%-12s %-20s %9s %10s %7s\n", modelName, v.name,
                  benchx::pct(cell.decision).c_str(),
                  benchx::pct(cell.condition).c_str(),
                  benchx::pct(cell.mcdc).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "Expected: 'root-state only' collapses on queue/handshake branches "
      "(the paper's\ncentral claim), 'no random fallback' misses "
      "fill-the-queue style branches\n(Table I step 17), 'no depth sort' "
      "converges slower within the budget.\n");
  return 0;
}
