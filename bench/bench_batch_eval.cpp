// Batched-lane microbenchmark: scalar tape vs the SoA multi-lane
// BatchTapeExecutor, on the two production hot loops it accelerates.
//
// Per bench model and per lane width B in {1, 4, 8, 16, 32}:
//   - solver scoring throughput (candidates/sec): the hill climber's
//     single-coordinate candidate scoring. B=1 is the scalar
//     DistanceTape full rebind; B>1 scores B candidates per pass through
//     a BatchDistanceTape. Both evaluate the full distance program per
//     candidate — the batch only amortizes instruction dispatch across
//     lanes, which is exactly what the local-search batch path buys.
//   - replay throughput (steps/sec): coverage-recorded simulation. B=1
//     is Simulator::step (tape engine) with a tracker; B>1 advances B
//     trajectories per BatchSimulator::stepBatch and replays every
//     lane's observation into the tracker, the same work the generator's
//     batched replay expansion and replaySuite do per committed lane.
//   - masked scoring at B=8 (candidates/sec + overlay skip rate): the
//     same candidate stream scored through runBounded() against an
//     improving incumbent, surfacing how many per-lane overlay
//     instructions the early-exit masks retire vs skip.
//   - interval refutation throughput (boxes/sec, B=1 vs B=8): candidate
//     sub-boxes of the input domains judged against every branch
//     constraint through the B-lane BatchIntervalTapeExecutor — the
//     sub-box refutation layer of analysis::proveConstraintDeadFrom.
//
// Usage: bench_batch_eval [--quick] [--json PATH] [--seconds S]
//                         [--git SHA] [--timestamp TS]
//   --quick    short windows and a pass/fail gate: exits 1 unless B=8
//              beats the scalar tape on candidates/sec for every model
//              (Release smoke stage of tools/check.sh);
//   --json     write the measured table as JSON (tools/bench.sh writes
//              BENCH_batch.json for EXPERIMENTS.md);
//   --seconds  measurement window per cell (default 0.25; 0.05 in quick);
//   --git/--timestamp  run metadata echoed into the JSON meta block
//              (CPU model and SIMD level are detected in-process).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "analysis/interval_tape.h"
#include "bench_meta.h"
#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "coverage/coverage.h"
#include "expr/builder.h"
#include "expr/subst.h"
#include "interval/interval.h"
#include "sim/batch_simulator.h"
#include "sim/simulator.h"
#include "solver/distance_tape.h"
#include "solver/solver.h"
#include "util/rng.h"

namespace stcg {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kWidths[] = {1, 4, 8, 16, 32};
constexpr std::size_t kNumWidths = sizeof kWidths / sizeof kWidths[0];

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Row {
  std::string name;
  double cand[kNumWidths] = {};   // candidates/sec at kWidths[i]
  double steps[kNumWidths] = {};  // replay steps/sec at kWidths[i]
  double maskedCand = 0;          // candidates/sec, runBounded at B=8
  double skipRate = 0;            // skipped / (retired + skipped), B=8
  double iboxB1 = 0, iboxB8 = 0;  // interval boxes judged/sec
  // Payload-row array path counters from the B=8 replay executor (see
  // expr::BatchArrayStats) — a regression on the array word-move/typed-row
  // fast paths shows up here before it shows up in steps/sec.
  expr::BatchArrayStats arr;

  [[nodiscard]] double candSpeedupB8() const {
    return cand[0] > 0 ? cand[2] / cand[0] : 0;  // kWidths[2] == 8
  }
  [[nodiscard]] double stepSpeedupB8() const {
    return steps[0] > 0 ? steps[2] / steps[0] : 0;
  }
  [[nodiscard]] double iboxSpeedupB8() const {
    return iboxB1 > 0 ? iboxB8 / iboxB1 : 0;
  }
};

// The residual goal the solver modes score: disjunction of the model's
// non-constant branch residuals at the initial state (same as
// bench_eval_tape, so candidates/sec columns are comparable across the
// two benchmarks).
expr::ExprPtr residualGoal(const compile::CompiledModel& cm) {
  const expr::Env state = cm.initialStateEnv();
  std::vector<expr::ExprPtr> parts;
  for (const auto& br : cm.branches) {
    if (parts.size() >= 6) break;
    auto r = expr::substitute(br.pathConstraint, state);
    if (r->op != expr::Op::kConst) parts.push_back(std::move(r));
  }
  expr::ExprPtr goal = expr::orAll(parts);
  if (goal->op != expr::Op::kConst) return goal;
  const auto& v = cm.inputs[0].info;
  return expr::geE(expr::mkVar(v), expr::cReal((v.lo + v.hi) * 0.5));
}

// Conjunction of the same residuals: a sum-shaped distance overlay (the
// Tracey AND rule adds part distances), the shape of the climber's
// path-constraint goals — and the shape where runBounded()'s monotone
// lower-bound early exit can fire (a kMin root admits no partial bound).
expr::ExprPtr conjunctionGoal(const compile::CompiledModel& cm) {
  const expr::Env state = cm.initialStateEnv();
  std::vector<expr::ExprPtr> parts;
  for (const auto& br : cm.branches) {
    if (parts.size() >= 6) break;
    auto r = expr::substitute(br.pathConstraint, state);
    if (r->op != expr::Op::kConst) parts.push_back(std::move(r));
  }
  expr::ExprPtr goal = expr::andAll(parts);
  if (goal->op != expr::Op::kConst) return goal;
  const auto& v = cm.inputs[0].info;
  return expr::geE(expr::mkVar(v), expr::cReal((v.lo + v.hi) * 0.5));
}

double measureCandidatesPerSec(const expr::ExprPtr& goal,
                               const std::vector<expr::VarInfo>& vars,
                               int lanes, double window) {
  // The same deterministic mutation stream at every width: start from
  // the domain midpoint, move one coordinate per candidate.
  Rng rng(4242);
  std::vector<double> point(vars.size());
  for (std::size_t i = 0; i < vars.size(); ++i) {
    point[i] = (vars[i].lo + vars[i].hi) * 0.5;
  }
  const auto mutate = [&] {
    const std::size_t i = rng.index(vars.size());
    point[i] = vars[i].type == expr::Type::kReal
                   ? rng.uniformReal(vars[i].lo, vars[i].hi)
                   : static_cast<double>(rng.uniformInt(
                         static_cast<std::int64_t>(vars[i].lo),
                         static_cast<std::int64_t>(vars[i].hi)));
  };

  double sink = 0;  // defeat dead-code elimination of the measured work
  std::size_t cands = 0;
  const auto t0 = Clock::now();
  double elapsed = 0;
  if (lanes <= 1) {
    solver::DistanceTape dt(goal, vars);
    do {
      for (int i = 0; i < 64; ++i) {
        mutate();
        sink += dt.rebind(point);
      }
      cands += 64;
      elapsed = secondsSince(t0);
    } while (elapsed < window);
  } else {
    solver::BatchDistanceTape bdt(goal, vars, lanes);
    do {
      for (int l = 0; l < lanes; ++l) {
        mutate();
        bdt.setPoint(l, point);
      }
      bdt.run();
      for (int l = 0; l < lanes; ++l) sink += bdt.distance(l);
      cands += static_cast<std::size_t>(lanes);
      elapsed = secondsSince(t0);
    } while (elapsed < window);
  }
  if (sink == -1.0) std::cerr << "";  // keep `sink` observable
  return static_cast<double>(cands) / elapsed;
}

/// Masked scoring at B=8: the same deterministic candidate stream as
/// measureCandidatesPerSec, but scored through runBounded() against an
/// improving incumbent (min distance seen so far) — the climber's actual
/// neighbor-scan contract. Reports throughput and, via `skipRate`, the
/// fraction of per-lane overlay instructions the early-exit masks skipped.
double measureMaskedCandidatesPerSec(const expr::ExprPtr& goal,
                                     const std::vector<expr::VarInfo>& vars,
                                     int lanes, double window,
                                     double* skipRate) {
  Rng rng(4242);
  std::vector<double> point(vars.size());
  for (std::size_t i = 0; i < vars.size(); ++i) {
    point[i] = (vars[i].lo + vars[i].hi) * 0.5;
  }
  const auto mutate = [&] {
    const std::size_t i = rng.index(vars.size());
    point[i] = vars[i].type == expr::Type::kReal
                   ? rng.uniformReal(vars[i].lo, vars[i].hi)
                   : static_cast<double>(rng.uniformInt(
                         static_cast<std::int64_t>(vars[i].lo),
                         static_cast<std::int64_t>(vars[i].hi)));
  };
  solver::BatchDistanceTape bdt(goal, vars, lanes);
  double best = std::numeric_limits<double>::infinity();
  double sink = 0;
  std::size_t cands = 0;
  double elapsed = 0;
  const auto t0 = Clock::now();
  do {
    for (int l = 0; l < lanes; ++l) {
      mutate();
      bdt.setPoint(l, point);
    }
    bdt.runBounded(best);
    for (int l = 0; l < lanes; ++l) {
      const double d = bdt.distance(l);
      sink += d;
      if (d < best) best = d;
    }
    cands += static_cast<std::size_t>(lanes);
    elapsed = secondsSince(t0);
  } while (elapsed < window);
  if (sink == -1.0) std::cerr << "";
  const auto& st = bdt.overlayStats();
  const double total =
      static_cast<double>(st.laneInstrsRetired + st.laneInstrsSkipped);
  *skipRate =
      total > 0 ? static_cast<double>(st.laneInstrsSkipped) / total : 0.0;
  return static_cast<double>(cands) / elapsed;
}

/// Interval refutation throughput: candidate sub-boxes of the declared
/// input domains judged against every branch path constraint, through
/// the two public entry points the refutation layer can use. B=1 is
/// intervalVerdicts per box (one tape build + one pass each — judging
/// boxes one at a time); B>1 is intervalVerdictsBatch per B boxes (one
/// build + one B-lane pass). boxes-judged/sec.
double measureIntervalBoxesPerSec(const compile::CompiledModel& cm,
                                  int lanes, double window) {
  std::vector<expr::ExprPtr> roots;
  roots.reserve(cm.branches.size());
  for (const auto& br : cm.branches) roots.push_back(br.pathConstraint);

  // Deterministic pool of candidate sub-boxes over the input domains
  // (state variables fall back to their declared domains on bind).
  Rng rng(977);
  std::vector<analysis::IntervalEnv> envs;
  envs.reserve(64);
  for (int i = 0; i < 64; ++i) {
    analysis::IntervalEnv env;
    for (const auto& in : cm.inputs) {
      const double lo = rng.uniformReal(in.info.lo, in.info.hi);
      const double hi = rng.uniformReal(lo, in.info.hi);
      env.set(in.info.id, interval::Interval(lo, hi));
    }
    envs.push_back(std::move(env));
  }

  double sink = 0;
  std::size_t boxes = 0;
  std::size_t cursor = 0;
  double elapsed = 0;
  std::vector<analysis::IntervalEnv> laneEnvs(
      static_cast<std::size_t>(lanes));
  const auto t0 = Clock::now();
  do {
    if (lanes <= 1) {
      const auto verdicts = analysis::intervalVerdicts(roots, envs[cursor]);
      cursor = (cursor + 1) % envs.size();
      for (const auto& v : verdicts) sink += v.isFalse() ? 1.0 : 0.0;
      boxes += 1;
    } else {
      for (int l = 0; l < lanes; ++l) {
        laneEnvs[static_cast<std::size_t>(l)] = envs[cursor];
        cursor = (cursor + 1) % envs.size();
      }
      const auto verdicts = analysis::intervalVerdictsBatch(roots, laneEnvs);
      for (const auto& lane : verdicts) {
        for (const auto& v : lane) sink += v.isFalse() ? 1.0 : 0.0;
      }
      boxes += static_cast<std::size_t>(lanes);
    }
    elapsed = secondsSince(t0);
  } while (elapsed < window);
  if (sink == -1.0) std::cerr << "";
  return static_cast<double>(boxes) / elapsed;
}

double measureReplayStepsPerSec(const compile::CompiledModel& cm, int lanes,
                                const std::vector<sim::InputVector>& inputs,
                                double window,
                                expr::BatchArrayStats* arrStats = nullptr) {
  coverage::CoverageTracker cov(cm);
  std::size_t cursor = 0;
  std::size_t steps = 0;
  double elapsed = 0;
  if (lanes <= 1) {
    sim::Simulator s(cm, sim::EvalEngine::kTape);
    for (int i = 0; i < 64; ++i) {  // warmup
      (void)s.step(inputs[cursor], &cov);
      cursor = (cursor + 1) % inputs.size();
    }
    const auto t0 = Clock::now();
    do {
      for (int i = 0; i < 128; ++i) {
        (void)s.step(inputs[cursor], &cov);
        cursor = (cursor + 1) % inputs.size();
      }
      steps += 128;
      elapsed = secondsSince(t0);
    } while (elapsed < window);
    return static_cast<double>(steps) / elapsed;
  }
  sim::BatchSimulator bs(cm, lanes);
  std::vector<const sim::InputVector*> in(static_cast<std::size_t>(lanes));
  sim::StepObservationBatch obs;  // pooled across the whole measurement
  const auto batchStep = [&] {
    for (int l = 0; l < lanes; ++l) {
      in[static_cast<std::size_t>(l)] = &inputs[cursor];
      cursor = (cursor + 1) % inputs.size();
    }
    bs.stepBatch(in, obs);
    for (int l = 0; l < lanes; ++l) {
      (void)sim::recordObservation(cm, obs, l, cov);
    }
  };
  for (int i = 0; i < 8; ++i) batchStep();  // warmup
  const auto t0 = Clock::now();
  do {
    for (int i = 0; i < 16; ++i) batchStep();
    steps += 16 * static_cast<std::size_t>(lanes);
    elapsed = secondsSince(t0);
  } while (elapsed < window);
  if (arrStats != nullptr) *arrStats = bs.executor().arrayStats();
  return static_cast<double>(steps) / elapsed;
}

void writeJson(const std::string& path, const std::vector<Row>& rows,
               const benchx::RunMeta& meta) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"batch_eval\",\n";
  benchx::writeJsonMeta(out, meta);
  out << "  \"models\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\"";
    char buf[256];
    for (std::size_t w = 0; w < kNumWidths; ++w) {
      std::snprintf(buf, sizeof buf, ", \"cand_per_sec_b%d\": %.0f",
                    kWidths[w], r.cand[w]);
      out << buf;
    }
    for (std::size_t w = 0; w < kNumWidths; ++w) {
      std::snprintf(buf, sizeof buf, ", \"replay_steps_per_sec_b%d\": %.0f",
                    kWidths[w], r.steps[w]);
      out << buf;
    }
    std::snprintf(buf, sizeof buf,
                  ", \"cand_speedup_b8\": %.2f, \"replay_speedup_b8\": %.2f",
                  r.candSpeedupB8(), r.stepSpeedupB8());
    out << buf;
    std::snprintf(buf, sizeof buf,
                  ", \"masked_cand_per_sec_b8\": %.0f"
                  ", \"overlay_skip_rate_b8\": %.4f",
                  r.maskedCand, r.skipRate);
    out << buf;
    std::snprintf(buf, sizeof buf,
                  ", \"interval_boxes_per_sec_b1\": %.0f"
                  ", \"interval_boxes_per_sec_b8\": %.0f"
                  ", \"interval_speedup_b8\": %.2f",
                  r.iboxB1, r.iboxB8, r.iboxSpeedupB8());
    out << buf;
    std::snprintf(buf, sizeof buf,
                  ", \"array_typed_row_rate_b8\": %.4f"
                  ", \"array_word_move_rate_b8\": %.4f",
                  r.arr.typedRowRate(), r.arr.wordMoveRate());
    out << buf;
    std::snprintf(buf, sizeof buf,
                  ", \"array_row_swaps_b8\": %llu"
                  ", \"array_plane_copies_b8\": %llu"
                  ", \"array_broadcast_binds_b8\": %llu"
                  ", \"array_resident_rebinds_b8\": %llu}%s\n",
                  static_cast<unsigned long long>(r.arr.planeSwaps),
                  static_cast<unsigned long long>(r.arr.planeCopies),
                  static_cast<unsigned long long>(r.arr.broadcastBinds),
                  static_cast<unsigned long long>(r.arr.residentRebinds),
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

int run(int argc, char** argv) {
  bool quick = false;
  std::string jsonPath;
  double window = 0.25;
  int repeat = 1;
  benchx::RunMeta meta;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      window = 0.05;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      window = std::strtod(argv[++i], nullptr);
    } else if (benchx::parseMetaArg(argc, argv, i, meta)) {
      // consumed
    } else if (benchx::parseRepeatArg(argc, argv, i, repeat)) {
      if (repeat < 1) {
        std::cerr << "invalid value for --repeat (expected integer in "
                     "[1, 99])\n";
        return 2;
      }
    } else {
      std::cerr << "usage: bench_batch_eval [--quick] [--json PATH] "
                   "[--seconds S] [--repeat N] [--git SHA] "
                   "[--timestamp TS]\n";
      return 2;
    }
  }
  if (repeat > 1) {
    std::printf("reporting the median of %d repeats per cell\n", repeat);
  }

  std::vector<Row> rows;
  for (const auto& info : bench::allBenchModels()) {
    const auto cm = compile::compile(info.build());
    Row row;
    row.name = info.name;

    const auto goal = residualGoal(cm);
    const auto vars = cm.inputInfos();
    Rng inputRng(42);
    std::vector<sim::InputVector> inputs;
    for (int i = 0; i < 256; ++i) {
      inputs.push_back(sim::randomInput(cm, inputRng));
    }
    for (std::size_t w = 0; w < kNumWidths; ++w) {
      row.cand[w] = benchx::medianOf(repeat, [&] {
        return measureCandidatesPerSec(goal, vars, kWidths[w], window);
      });
      row.steps[w] = benchx::medianOf(repeat, [&] {
        return measureReplayStepsPerSec(
            cm, kWidths[w], inputs, window,
            kWidths[w] == 8 ? &row.arr : nullptr);
      });
    }
    row.maskedCand = benchx::medianOf(repeat, [&] {
      return measureMaskedCandidatesPerSec(conjunctionGoal(cm), vars, 8,
                                           window, &row.skipRate);
    });
    row.iboxB1 = benchx::medianOf(
        repeat, [&] { return measureIntervalBoxesPerSec(cm, 1, window); });
    row.iboxB8 = benchx::medianOf(
        repeat, [&] { return measureIntervalBoxesPerSec(cm, 8, window); });
    rows.push_back(std::move(row));
  }

  std::printf("%-12s | %s\n", "", "candidates/sec by lane width (speedup)");
  std::printf("%-12s %12s %12s %12s %12s %12s %8s\n", "model", "B=1", "B=4",
              "B=8", "B=16", "B=32", "b8 spd");
  for (const Row& r : rows) {
    std::printf("%-12s %12.0f %12.0f %12.0f %12.0f %12.0f %7.2fx\n",
                r.name.c_str(), r.cand[0], r.cand[1], r.cand[2], r.cand[3],
                r.cand[4], r.candSpeedupB8());
  }
  std::printf("%-12s | %s\n", "", "replay steps/sec by lane width (speedup)");
  for (const Row& r : rows) {
    std::printf("%-12s %12.0f %12.0f %12.0f %12.0f %12.0f %7.2fx\n",
                r.name.c_str(), r.steps[0], r.steps[1], r.steps[2],
                r.steps[3], r.steps[4], r.stepSpeedupB8());
  }
  std::printf("%-12s | %s\n", "",
              "masked scan B=8 (runBounded) and interval refutation");
  std::printf("%-12s %14s %10s %14s %14s %8s\n", "model", "masked c/s",
              "skip", "boxes/s B=1", "boxes/s B=8", "i spd");
  for (const Row& r : rows) {
    std::printf("%-12s %14.0f %9.1f%% %14.0f %14.0f %7.2fx\n",
                r.name.c_str(), r.maskedCand, r.skipRate * 100.0, r.iboxB1,
                r.iboxB8, r.iboxSpeedupB8());
  }
  std::printf("%-12s | %s\n", "",
              "payload-row array paths at B=8 replay");
  std::printf("%-12s %10s %10s %10s %10s %10s %10s\n", "model", "typed",
              "wmove", "swaps", "copies", "bcasts", "resident");
  for (const Row& r : rows) {
    std::printf("%-12s %9.1f%% %9.1f%% %10llu %10llu %10llu %10llu\n",
                r.name.c_str(), r.arr.typedRowRate() * 100.0,
                r.arr.wordMoveRate() * 100.0,
                static_cast<unsigned long long>(r.arr.planeSwaps),
                static_cast<unsigned long long>(r.arr.planeCopies),
                static_cast<unsigned long long>(r.arr.broadcastBinds),
                static_cast<unsigned long long>(r.arr.residentRebinds));
  }
  int candWins = 0;
  for (const Row& r : rows) candWins += r.candSpeedupB8() >= 2.0 ? 1 : 0;
  std::printf("models with B=8 candidate speedup >= 2x: %d/%zu\n", candWins,
              rows.size());

  if (!jsonPath.empty()) {
    writeJson(jsonPath, rows, meta);
    std::printf("wrote %s\n", jsonPath.c_str());
  }

  if (quick) {
    for (const Row& r : rows) {
      if (r.cand[2] <= r.cand[0]) {
        std::fprintf(stderr,
                     "FAIL: B=8 batch not faster than scalar tape on %s "
                     "(%.0f vs %.0f cand/s)\n",
                     r.name.c_str(), r.cand[2], r.cand[0]);
        return 1;
      }
      // The two state-array-heavy rows were flat before the payload-row
      // array planes; keep them strictly ahead of the scalar engine.
      if ((r.name == "CPUTask" || r.name == "LANSwitch") &&
          r.steps[2] <= r.steps[0]) {
        std::fprintf(stderr,
                     "FAIL: B=8 replay not faster than scalar on %s "
                     "(%.0f vs %.0f steps/s)\n",
                     r.name.c_str(), r.steps[2], r.steps[0]);
        return 1;
      }
    }
    std::printf(
        "quick gate passed: B=8 beats scalar on every model "
        "(incl. CPUTask/LANSwitch replay)\n");
  }
  return 0;
}

}  // namespace
}  // namespace stcg

int main(int argc, char** argv) { return stcg::run(argc, argv); }
