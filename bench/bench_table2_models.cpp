// Reproduces paper Table II: the benchmark model descriptions.
//
// Prints, for each of the eight models, its functionality, the paper's
// reported #Branch/#Block, and the counts of our reconstruction (compiled
// branches and model blocks), plus the coverage-goal breakdown.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace stcg;
  std::printf("=== Table II: benchmark model descriptions ===\n");
  std::printf("%-12s %-36s %14s %14s %10s %6s %7s\n", "Model",
              "Functionality", "paper #Br/#Blk", "ours #Br/#Blk",
              "decisions", "conds", "states");
  for (const auto& info : bench::allBenchModels()) {
    auto m = info.build();
    const auto cm = compile::compile(m);
    char paperCol[32], oursCol[32];
    std::snprintf(paperCol, sizeof(paperCol), "%d/%d", info.paperBranches,
                  info.paperBlocks);
    std::snprintf(oursCol, sizeof(oursCol), "%zu/%d", cm.branches.size(),
                  cm.blockCount);
    std::printf("%-12s %-36s %14s %14s %10zu %6d %7zu\n", info.name.c_str(),
                info.functionality.c_str(), paperCol, oursCol,
                cm.decisions.size(), cm.conditionCount(), cm.states.size());
  }
  std::printf(
      "\nNote: our reconstructions target the same functionality class and "
      "branch-richness order of magnitude\nas the paper's proprietary "
      "models; exact counts differ (see DESIGN.md section 2).\n");
  return 0;
}
