// Checkpoint cost microbenchmark: on-disk size and save/load wall time of
// a campaign checkpoint per benchmark model (the table in EXPERIMENTS.md,
// "Checkpoint size and save/load overhead").
//
// Each model runs a short STCG campaign (a fixed round cap, so the
// measured state is reproducible for a fixed seed), then the checkpoint
// is saved and loaded `--repeat` times and the medians are reported,
// along with what the checkpoint carries (tree nodes, tests, library
// entries). The point of the numbers: a save is cheap enough to take
// every round (default --checkpoint-every 1) without denting generation
// throughput.
//
// Usage: bench_checkpoint [--rounds N] [--repeat N]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_meta.h"
#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "stcg/campaign.h"
#include "stcg/checkpoint.h"

namespace stcg {
namespace {

using Clock = std::chrono::steady_clock;

double millisSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

int run(int argc, char** argv) {
  int rounds = 6;
  int repeat = 9;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = std::atoi(argv[++i]);
    } else if (benchx::parseRepeatArg(argc, argv, i, repeat)) {
      if (repeat < 1) {
        std::cerr << "invalid value for --repeat\n";
        return 2;
      }
    } else {
      std::cerr << "usage: bench_checkpoint [--rounds N] [--repeat N]\n";
      return 2;
    }
  }

  const std::string path = "/tmp/stcg_bench_checkpoint.ck";
  std::printf("campaign: %d rounds, seed 1; medians of %d repeats\n\n",
              rounds, repeat);
  std::printf("%-12s %10s %8s %8s %10s %8s %8s\n", "model", "bytes",
              "save ms", "load ms", "tree", "tests", "library");
  for (const auto& info : bench::allBenchModels()) {
    const auto cm = compile::compile(info.build());
    gen::GenOptions opt;
    opt.budgetMillis = 600000;  // non-binding; the round cap stops the run
    opt.solver.timeBudgetMillis = 20;
    opt.maxRounds = rounds;
    gen::Campaign c(cm, opt);
    while (!c.finished()) c.runRound();

    const double saveMs = benchx::medianOf(repeat, [&] {
      const auto t0 = Clock::now();
      c.saveCheckpoint(path);
      return millisSince(t0);
    });
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    const auto bytes = static_cast<long long>(f.tellg());
    const double loadMs = benchx::medianOf(repeat, [&] {
      gen::Campaign fresh(cm, opt);
      const auto t0 = Clock::now();
      fresh.restore(path);
      return millisSince(t0);
    });
    std::printf("%-12s %10lld %8.2f %8.2f %10zu %8zu %8zu\n",
                info.name.c_str(), bytes, saveMs, loadMs, c.state().tree.size(),
                c.state().tests.size(), c.state().library.size());
  }
  std::remove(path.c_str());
  return 0;
}

}  // namespace
}  // namespace stcg

int main(int argc, char** argv) { return stcg::run(argc, argv); }
