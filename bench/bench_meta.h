// Run metadata for the JSON-writing benchmarks (BENCH_eval.json /
// BENCH_batch.json): the numbers in EXPERIMENTS.md are only reproducible
// claims when pinned to the commit, CPU, and SIMD level that produced
// them. tools/bench.sh passes --git/--timestamp; the CPU model and the
// active SIMD dispatch level are read from the process itself.
#pragma once

#include <cstring>
#include <fstream>
#include <ostream>
#include <string>

#include "expr/simd.h"

namespace stcg::benchx {

struct RunMeta {
  std::string gitCommit;   // --git (empty when not passed)
  std::string timestamp;   // --timestamp (empty when not passed)
};

/// "model name" from /proc/cpuinfo, or "" when unavailable.
inline std::string detectCpuModel() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const auto pos = line.find("model name");
    if (pos != 0) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) break;
    auto start = line.find_first_not_of(" \t", colon + 1);
    return start == std::string::npos ? "" : line.substr(start);
  }
  return "";
}

/// Consume `--git SHA` / `--timestamp TS` at argv[i] into `meta`.
/// Returns true (advancing i past the value) when the flag matched.
inline bool parseMetaArg(int argc, char** argv, int& i, RunMeta& meta) {
  if (std::strcmp(argv[i], "--git") == 0 && i + 1 < argc) {
    meta.gitCommit = argv[++i];
    return true;
  }
  if (std::strcmp(argv[i], "--timestamp") == 0 && i + 1 < argc) {
    meta.timestamp = argv[++i];
    return true;
  }
  return false;
}

/// Emit the metadata as a `"meta": {...},` JSON member (two-space indent,
/// trailing comma + newline), shared by both bench writers.
inline void writeJsonMeta(std::ostream& out, const RunMeta& meta) {
  const auto esc = [](const std::string& s) {
    std::string r;
    for (const char c : s) {
      if (c == '"' || c == '\\') r += '\\';
      r += c;
    }
    return r;
  };
  out << "  \"meta\": {\"git_commit\": \"" << esc(meta.gitCommit)
      << "\", \"timestamp\": \"" << esc(meta.timestamp)
      << "\", \"cpu_model\": \"" << esc(detectCpuModel())
      << "\", \"simd_level\": \""
      << expr::simdLevelName(expr::activeSimdLevel()) << "\"},\n";
}

}  // namespace stcg::benchx
