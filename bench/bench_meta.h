// Run metadata for the JSON-writing benchmarks (BENCH_eval.json /
// BENCH_batch.json): the numbers in EXPERIMENTS.md are only reproducible
// claims when pinned to the commit, CPU, and SIMD level that produced
// them. tools/bench.sh passes --git/--timestamp; the CPU model and the
// active SIMD dispatch level are read from the process itself.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "expr/simd.h"

namespace stcg::benchx {

/// Run the measurement `repeat` times and report the median (mean of the
/// two middle samples for even repeat counts). One noisy neighbor or a
/// frequency-scaling blip skews a single sample arbitrarily; the median
/// of N is stable against up to (N-1)/2 outliers. repeat <= 1 measures
/// once (the default, so --repeat is pay-for-what-you-use).
template <typename Fn>
double medianOf(int repeat, Fn&& fn) {
  if (repeat <= 1) return fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeat));
  for (int i = 0; i < repeat; ++i) samples.push_back(fn());
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n % 2 == 1 ? samples[n / 2]
                    : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

/// Consume `--repeat N` at argv[i]. Returns true when matched; exits 2
/// via return-false-at-caller style is avoided — invalid N (non-numeric,
/// < 1, > 99) is clamped into [1, 99] by strtol semantics plus the caller
/// printing usage; keep N small, each repeat multiplies the wall time.
inline bool parseRepeatArg(int argc, char** argv, int& i, int& repeat) {
  if (std::strcmp(argv[i], "--repeat") != 0 || i + 1 >= argc) return false;
  char* end = nullptr;
  const long v = std::strtol(argv[++i], &end, 10);
  repeat = (end == argv[i] || *end != '\0' || v < 1 || v > 99)
               ? -1  // caller treats as a usage error
               : static_cast<int>(v);
  return true;
}

struct RunMeta {
  std::string gitCommit;   // --git (empty when not passed)
  std::string timestamp;   // --timestamp (empty when not passed)
};

/// "model name" from /proc/cpuinfo, or "" when unavailable.
inline std::string detectCpuModel() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const auto pos = line.find("model name");
    if (pos != 0) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) break;
    auto start = line.find_first_not_of(" \t", colon + 1);
    return start == std::string::npos ? "" : line.substr(start);
  }
  return "";
}

/// Consume `--git SHA` / `--timestamp TS` at argv[i] into `meta`.
/// Returns true (advancing i past the value) when the flag matched.
inline bool parseMetaArg(int argc, char** argv, int& i, RunMeta& meta) {
  if (std::strcmp(argv[i], "--git") == 0 && i + 1 < argc) {
    meta.gitCommit = argv[++i];
    return true;
  }
  if (std::strcmp(argv[i], "--timestamp") == 0 && i + 1 < argc) {
    meta.timestamp = argv[++i];
    return true;
  }
  return false;
}

/// Emit the metadata as a `"meta": {...},` JSON member (two-space indent,
/// trailing comma + newline), shared by both bench writers.
inline void writeJsonMeta(std::ostream& out, const RunMeta& meta) {
  const auto esc = [](const std::string& s) {
    std::string r;
    for (const char c : s) {
      if (c == '"' || c == '\\') r += '\\';
      r += c;
    }
    return r;
  };
  out << "  \"meta\": {\"git_commit\": \"" << esc(meta.gitCommit)
      << "\", \"timestamp\": \"" << esc(meta.timestamp)
      << "\", \"cpu_model\": \"" << esc(detectCpuModel())
      << "\", \"simd_level\": \""
      << expr::simdLevelName(expr::activeSimdLevel()) << "\"},\n";
}

}  // namespace stcg::benchx
