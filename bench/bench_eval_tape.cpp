// Evaluation-engine microbenchmark: tree Evaluator vs compiled tape vs
// the native JIT.
//
// Two production hot loops, measured per bench model:
//   - simulation throughput (steps/sec): Simulator::step with a coverage
//     tracker, tree engine vs tape engine vs JIT engine, identical input
//     streams (JIT columns report 0 when no toolchain is available);
//   - solver scoring throughput (candidates/sec): the hill climber's
//     single-coordinate candidate scoring, tree branchDistance vs a full
//     DistanceTape rebind vs the incremental dirty-cone update path,
//     interpreted and JIT-compiled.
// The scored goal is the disjunction of the model's non-constant branch
// residuals at the initial state — the same partial-evaluation product the
// STCG solve loop hands to the solver.
//
// Usage: bench_eval_tape [--quick] [--json PATH] [--seconds S]
//   --quick    short measurement windows and a pass/fail gate: exits 1 if
//              the tape engine is slower than the tree on any model (used
//              as the Release smoke stage of tools/check.sh);
//   --json     write the measured table as JSON (tools/bench.sh writes
//              BENCH_eval.json for EXPERIMENTS.md);
//   --seconds  measurement window per cell (default 0.25; 0.05 in quick).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_meta.h"
#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "compile/model_tape.h"
#include "coverage/coverage.h"
#include "expr/builder.h"
#include "expr/subst.h"
#include "sim/simulator.h"
#include "solver/distance_tape.h"
#include "solver/local_search.h"
#include "solver/solver.h"
#include "util/rng.h"

namespace stcg {
namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Row {
  std::string name;
  double stepsTree = 0, stepsTape = 0, stepsJit = 0;
  double candTree = 0, candRebind = 0, candIncr = 0, candJitIncr = 0;
  std::size_t tapeInstrs = 0, maxCone = 0, overlayInstrs = 0;
  // Pass-pipeline shrink of the simulation ModelTape (instruction count
  // and dense scalar slot frame, raw build vs optimized).
  std::size_t simInstrsRaw = 0, simInstrsOpt = 0;
  std::size_t simSlotsRaw = 0, simSlotsOpt = 0;

  [[nodiscard]] double stepSpeedup() const {
    return stepsTree > 0 ? stepsTape / stepsTree : 0;
  }
  /// Native step throughput over the interpreted tape (0 = JIT unavailable).
  [[nodiscard]] double jitStepSpeedup() const {
    return stepsTape > 0 ? stepsJit / stepsTape : 0;
  }
  [[nodiscard]] double incrSpeedup() const {
    return candTree > 0 ? candIncr / candTree : 0;
  }
  [[nodiscard]] double instrShrinkPct() const {
    return simInstrsRaw > 0
               ? 100.0 * (1.0 - static_cast<double>(simInstrsOpt) /
                                    static_cast<double>(simInstrsRaw))
               : 0;
  }
  [[nodiscard]] double slotShrinkPct() const {
    return simSlotsRaw > 0
               ? 100.0 * (1.0 - static_cast<double>(simSlotsOpt) /
                                    static_cast<double>(simSlotsRaw))
               : 0;
  }
};

double measureStepsPerSec(const compile::CompiledModel& cm,
                          sim::EvalEngine engine,
                          const std::vector<sim::InputVector>& inputs,
                          double window) {
  sim::Simulator s(cm, engine);
  coverage::CoverageTracker cov(cm);
  std::size_t cursor = 0;
  const auto batch = [&](int n) {
    for (int i = 0; i < n; ++i) {
      (void)s.step(inputs[cursor], &cov);
      cursor = (cursor + 1) % inputs.size();
    }
  };
  batch(64);  // warmup
  std::size_t steps = 0;
  const auto t0 = Clock::now();
  double elapsed = 0;
  do {
    batch(128);
    steps += 128;
    elapsed = secondsSince(t0);
  } while (elapsed < window);
  return static_cast<double>(steps) / elapsed;
}

// The residual goal the solver modes score. Empty when every branch folds
// to a constant at the initial state (then the caller synthesizes one).
expr::ExprPtr residualGoal(const compile::CompiledModel& cm) {
  const expr::Env state = cm.initialStateEnv();
  std::vector<expr::ExprPtr> parts;
  for (const auto& br : cm.branches) {
    if (parts.size() >= 6) break;
    auto r = expr::substitute(br.pathConstraint, state);
    if (r->op != expr::Op::kConst) parts.push_back(std::move(r));
  }
  expr::ExprPtr goal = expr::orAll(parts);
  if (goal->op != expr::Op::kConst) return goal;
  const auto& v = cm.inputs[0].info;
  return expr::geE(expr::mkVar(v), expr::cReal((v.lo + v.hi) * 0.5));
}

/// Can this environment run the JIT at all? Probed once with the first
/// model; when false (no compiler / dlopen) the JIT columns report 0 and
/// the quick gate skips them, mirroring the library's graceful fallback.
bool jitAvailable(const compile::CompiledModel& cm) {
  const sim::Simulator probe(cm, sim::EvalEngine::kJit);
  if (probe.engine() == sim::EvalEngine::kJit) return true;
  std::fprintf(stderr, "note: JIT unavailable (%s); jit columns report 0\n",
               probe.jitFallbackReason().c_str());
  return false;
}

enum class CandMode { kTree, kRebind, kIncremental, kJitIncremental };

double measureCandidatesPerSec(const expr::ExprPtr& goal,
                               const std::vector<expr::VarInfo>& vars,
                               CandMode mode, double window) {
  // The same deterministic mutation stream for every mode: start from the
  // domain midpoint, move one coordinate per candidate.
  Rng rng(4242);
  std::vector<double> point(vars.size());
  for (std::size_t i = 0; i < vars.size(); ++i) {
    point[i] = (vars[i].lo + vars[i].hi) * 0.5;
  }
  const auto mutate = [&]() -> std::size_t {
    const std::size_t i = rng.index(vars.size());
    point[i] = vars[i].type == expr::Type::kReal
                   ? rng.uniformReal(vars[i].lo, vars[i].hi)
                   : static_cast<double>(rng.uniformInt(
                         static_cast<std::int64_t>(vars[i].lo),
                         static_cast<std::int64_t>(vars[i].hi)));
    return i;
  };
  const auto toEnv = [&] {
    expr::Env env;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      env.set(vars[i].id, solver::scalarForVar(vars[i], point[i]));
    }
    return env;
  };

  solver::DistanceTape dt(goal, vars,
                          /*useJit=*/mode == CandMode::kJitIncremental);
  (void)dt.rebind(point);
  double sink = 0;  // defeat dead-code elimination of the measured work
  std::size_t cands = 0;
  const auto t0 = Clock::now();
  double elapsed = 0;
  do {
    for (int i = 0; i < 64; ++i) {
      const std::size_t moved = mutate();
      switch (mode) {
        case CandMode::kTree:
          sink += solver::branchDistance(goal, toEnv(), true);
          break;
        case CandMode::kRebind:
          sink += dt.rebind(point);
          break;
        case CandMode::kIncremental:
        case CandMode::kJitIncremental:
          sink += dt.update(moved, point[moved]);
          break;
      }
    }
    cands += 64;
    elapsed = secondsSince(t0);
  } while (elapsed < window);
  if (sink == -1.0) std::cerr << "";  // keep `sink` observable
  return static_cast<double>(cands) / elapsed;
}

void writeJson(const std::string& path, const std::vector<Row>& rows,
               const benchx::RunMeta& meta) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"eval_tape\",\n";
  benchx::writeJsonMeta(out, meta);
  out << "  \"models\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[1024];
    std::snprintf(
        buf, sizeof buf,
        "    {\"name\": \"%s\", \"steps_per_sec_tree\": %.0f, "
        "\"steps_per_sec_tape\": %.0f, \"step_speedup\": %.2f, "
        "\"steps_per_sec_jit\": %.0f, \"jit_step_speedup\": %.2f, "
        "\"cand_per_sec_tree\": %.0f, \"cand_per_sec_rebind\": %.0f, "
        "\"cand_per_sec_incremental\": %.0f, "
        "\"cand_per_sec_jit_incremental\": %.0f, \"incr_speedup\": %.2f, "
        "\"tape_instrs\": %zu, \"max_cone\": %zu, \"overlay_instrs\": %zu, "
        "\"sim_instrs_raw\": %zu, \"sim_instrs_opt\": %zu, "
        "\"sim_slots_raw\": %zu, \"sim_slots_opt\": %zu, "
        "\"instr_shrink_pct\": %.1f, \"slot_shrink_pct\": %.1f}%s\n",
        r.name.c_str(), r.stepsTree, r.stepsTape, r.stepSpeedup(),
        r.stepsJit, r.jitStepSpeedup(), r.candTree, r.candRebind, r.candIncr,
        r.candJitIncr, r.incrSpeedup(), r.tapeInstrs, r.maxCone,
        r.overlayInstrs, r.simInstrsRaw, r.simInstrsOpt, r.simSlotsRaw,
        r.simSlotsOpt, r.instrShrinkPct(), r.slotShrinkPct(),
        i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

int run(int argc, char** argv) {
  bool quick = false;
  std::string jsonPath;
  double window = 0.25;
  int repeat = 1;
  benchx::RunMeta meta;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      window = 0.05;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      window = std::strtod(argv[++i], nullptr);
    } else if (benchx::parseMetaArg(argc, argv, i, meta)) {
      // consumed
    } else if (benchx::parseRepeatArg(argc, argv, i, repeat)) {
      if (repeat < 1) {
        std::cerr << "invalid value for --repeat (expected integer in "
                     "[1, 99])\n";
        return 2;
      }
    } else {
      std::cerr << "usage: bench_eval_tape [--quick] [--json PATH] "
                   "[--seconds S] [--repeat N] [--git SHA] "
                   "[--timestamp TS]\n";
      return 2;
    }
  }
  if (repeat > 1) {
    std::printf("reporting the median of %d repeats per cell\n", repeat);
  }

  std::vector<Row> rows;
  bool haveJit = false;
  bool jitProbed = false;
  for (const auto& info : bench::allBenchModels()) {
    const auto cm = compile::compile(info.build());
    if (!jitProbed) {
      haveJit = jitAvailable(cm);
      jitProbed = true;
    }
    Row row;
    row.name = info.name;

    const compile::ModelTape mt = compile::buildModelTape(cm);
    row.simInstrsRaw = mt.passStats.instrsBefore;
    row.simInstrsOpt = mt.passStats.instrsAfter;
    row.simSlotsRaw = mt.passStats.scalarSlotsBefore;
    row.simSlotsOpt = mt.passStats.scalarSlotsAfter;

    Rng inputRng(42);
    std::vector<sim::InputVector> inputs;
    for (int i = 0; i < 256; ++i) inputs.push_back(sim::randomInput(cm, inputRng));
    row.stepsTree = benchx::medianOf(repeat, [&] {
      return measureStepsPerSec(cm, sim::EvalEngine::kTree, inputs, window);
    });
    row.stepsTape = benchx::medianOf(repeat, [&] {
      return measureStepsPerSec(cm, sim::EvalEngine::kTape, inputs, window);
    });
    if (haveJit) {
      row.stepsJit = benchx::medianOf(repeat, [&] {
        return measureStepsPerSec(cm, sim::EvalEngine::kJit, inputs, window);
      });
    }

    const auto goal = residualGoal(cm);
    const auto vars = cm.inputInfos();
    solver::DistanceTape probe(goal, vars);
    row.tapeInstrs = probe.valueInstrCount();
    row.maxCone = probe.maxConeSize();
    row.overlayInstrs = probe.overlayInstrCount();
    row.candTree = benchx::medianOf(repeat, [&] {
      return measureCandidatesPerSec(goal, vars, CandMode::kTree, window);
    });
    row.candRebind = benchx::medianOf(repeat, [&] {
      return measureCandidatesPerSec(goal, vars, CandMode::kRebind, window);
    });
    row.candIncr = benchx::medianOf(repeat, [&] {
      return measureCandidatesPerSec(goal, vars, CandMode::kIncremental,
                                     window);
    });
    if (haveJit) {
      row.candJitIncr = benchx::medianOf(repeat, [&] {
        return measureCandidatesPerSec(goal, vars, CandMode::kJitIncremental,
                                       window);
      });
    }
    rows.push_back(std::move(row));
  }

  std::printf("%-12s %12s %12s %12s %8s %12s %12s %12s %12s %8s\n", "model",
              "steps/s tree", "steps/s tape", "steps/s jit", "jit/tape",
              "cand/s tree", "cand/s reb", "cand/s incr", "cand/s jit",
              "speedup");
  int stepWins = 0, incrWins = 0, jitWins = 0;
  for (const Row& r : rows) {
    std::printf(
        "%-12s %12.0f %12.0f %12.0f %7.2fx %12.0f %12.0f %12.0f %12.0f "
        "%7.2fx\n",
        r.name.c_str(), r.stepsTree, r.stepsTape, r.stepsJit,
        r.jitStepSpeedup(), r.candTree, r.candRebind, r.candIncr,
        r.candJitIncr, r.incrSpeedup());
    stepWins += r.stepSpeedup() >= 3.0 ? 1 : 0;
    incrWins += r.incrSpeedup() >= 5.0 ? 1 : 0;
    jitWins += r.jitStepSpeedup() >= 1.5 ? 1 : 0;
  }
  std::printf("models with step speedup >= 3x: %d/%zu; incremental "
              "candidate speedup >= 5x: %d/%zu\n",
              stepWins, rows.size(), incrWins, rows.size());
  if (haveJit) {
    std::printf("models with jit step speedup >= 1.5x over tape: %d/%zu\n",
                jitWins, rows.size());
  }

  std::printf("\n%-12s %16s %18s %8s\n", "model", "sim instrs",
              "sim scalar slots", "shrink");
  for (const Row& r : rows) {
    std::printf("%-12s %8zu -> %5zu %9zu -> %6zu %6.1f%%\n", r.name.c_str(),
                r.simInstrsRaw, r.simInstrsOpt, r.simSlotsRaw, r.simSlotsOpt,
                r.slotShrinkPct());
  }

  if (!jsonPath.empty()) {
    writeJson(jsonPath, rows, meta);
    std::printf("wrote %s\n", jsonPath.c_str());
  }

  if (quick) {
    for (const Row& r : rows) {
      if (r.stepsTape < r.stepsTree) {
        std::fprintf(stderr,
                     "FAIL: tape slower than tree on %s (%.0f vs %.0f "
                     "steps/s)\n",
                     r.name.c_str(), r.stepsTape, r.stepsTree);
        return 1;
      }
    }
    std::printf("quick gate passed: tape >= tree on every model\n");
  }
  return 0;
}

}  // namespace
}  // namespace stcg

int main(int argc, char** argv) { return stcg::run(argc, argv); }
