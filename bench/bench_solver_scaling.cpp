// Solver-scaling microbenchmarks (google-benchmark).
//
// Quantifies the paper's core motivation ("solving for arrays is already
// very difficult, let alone twice, which makes the problem exponentially
// more complex"): the cost of solving CPUTask's delete-success branch
//   - one-step, STCG-style: state fixed as constants (after one Add),
//   - k-step unrolled, SLDV-style: symbolic store/select towers, k=1..4,
// plus the building-block costs (simulator step, partial evaluation, HC4
// contraction).
#include <benchmark/benchmark.h>

#include <atomic>
#include <unordered_map>

#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "expr/builder.h"
#include "expr/subst.h"
#include "interval/hc4.h"
#include "sim/simulator.h"
#include "solver/solver.h"
#include "stcg/stcg_generator.h"
#include "stcg/testgen.h"
#include "util/thread_pool.h"

namespace {

using namespace stcg;

const compile::CompiledModel& cpuTask() {
  static const compile::CompiledModel cm =
      compile::compile(bench::buildCpuTask());
  return cm;
}

// The delete-success branch: the paper's "add data first, then operate".
const compile::Branch& deleteSuccessBranch() {
  static const compile::Branch* branch = [] {
    const auto& cm = cpuTask();
    for (const auto& br : cm.branches) {
      const auto& d = cm.decisions[static_cast<std::size_t>(br.decision)];
      if (d.name.find("del_found") != std::string::npos &&
          br.label.find("then") != std::string::npos) {
        return &br;
      }
    }
    return static_cast<const compile::Branch*>(nullptr);
  }();
  return *branch;
}

// State after one successful Add of task id 42.
sim::StateSnapshot warmState() {
  const auto& cm = cpuTask();
  sim::Simulator s(cm);
  (void)s.step({expr::Scalar::i(0), expr::Scalar::i(42), expr::Scalar::i(7),
                expr::Scalar::i(1)},
               nullptr);
  return s.snapshot();
}

expr::Env stateEnvOf(const sim::StateSnapshot& snap) {
  const auto& cm = cpuTask();
  expr::Env env;
  for (std::size_t i = 0; i < cm.states.size(); ++i) {
    const auto& sv = cm.states[i];
    if (sv.width == 1) {
      env.set(sv.id, snap[i].scalar());
    } else {
      env.setArray(sv.id, snap[i].elems());
    }
  }
  return env;
}

void BM_StcgOneStepSolve(benchmark::State& state) {
  const auto& cm = cpuTask();
  const auto& br = deleteSuccessBranch();
  const auto env = stateEnvOf(warmState());
  solver::SolveOptions so;
  so.timeBudgetMillis = 1000;
  for (auto _ : state) {
    const auto residual = expr::substitute(br.pathConstraint, env);
    solver::BoxSolver solver(so);
    const auto res = solver.solve(residual, cm.inputInfos());
    benchmark::DoNotOptimize(res.status);
    if (res.status != solver::SolveStatus::kSat) {
      state.SkipWithError("one-step solve unexpectedly not SAT");
      return;
    }
  }
}
BENCHMARK(BM_StcgOneStepSolve)->Unit(benchmark::kMicrosecond);

void BM_SldvUnrolledSolve(benchmark::State& state) {
  const auto& cm = cpuTask();
  const auto& br = deleteSuccessBranch();
  const int depth = static_cast<int>(state.range(0));

  // Build the unrolled constraint once per iteration (construction is part
  // of what a bounded-model-checking loop pays).
  for (auto _ : state) {
    expr::VarId nextId = 100000;
    std::unordered_map<expr::VarId, expr::ExprPtr> entry;
    for (const auto& sv : cm.states) {
      entry[sv.id] = sv.width == 1
                         ? expr::cScalar(sv.init.scalar())
                         : expr::cArray(sv.type, sv.init.elems());
    }
    std::vector<expr::VarInfo> vars;
    std::unordered_map<expr::VarId, expr::ExprPtr> mapping;
    for (int k = 0; k < depth; ++k) {
      mapping = entry;
      for (const auto& iv : cm.inputs) {
        expr::VarInfo fresh = iv.info;
        fresh.id = nextId++;
        mapping[iv.info.id] = expr::mkVar(fresh);
        vars.push_back(fresh);
      }
      if (k + 1 < depth) {
        std::unordered_map<expr::VarId, expr::ExprPtr> next;
        for (const auto& sv : cm.states) {
          next[sv.id] = expr::substituteExprs(sv.next, mapping);
        }
        entry = std::move(next);
      }
    }
    const auto constraint = expr::substituteExprs(br.pathConstraint, mapping);
    solver::SolveOptions so;
    so.timeBudgetMillis = 250;  // per-query budget, as in the SLDV loop
    solver::BoxSolver solver(so);
    const auto res = solver.solve(constraint, vars);
    benchmark::DoNotOptimize(res.status);
    state.counters["dag_nodes"] =
        static_cast<double>(expr::dagSize(constraint));
    state.counters["sat"] =
        res.status == solver::SolveStatus::kSat ? 1.0 : 0.0;
  }
}
BENCHMARK(BM_SldvUnrolledSolve)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorStep(benchmark::State& state) {
  const auto& cm = cpuTask();
  sim::Simulator s(cm);
  coverage::CoverageTracker cov(cm);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.step(sim::randomInput(cm, rng), &cov));
  }
}
BENCHMARK(BM_SimulatorStep)->Unit(benchmark::kMicrosecond);

void BM_PartialEval(benchmark::State& state) {
  const auto& br = deleteSuccessBranch();
  const auto env = stateEnvOf(warmState());
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::substitute(br.pathConstraint, env));
  }
}
BENCHMARK(BM_PartialEval)->Unit(benchmark::kMicrosecond);

// Engine comparison on a nonlinear goal (x^2 + y^2 == 10^6): interval
// contraction barely prunes it, branch distance walks straight to it —
// the rationale for the portfolio engine (paper future work).
void BM_SolverKindsNonlinear(benchmark::State& state) {
  const auto kind = static_cast<solver::SolverKind>(state.range(0));
  const expr::VarInfo vx{900001, "x", expr::Type::kInt, -1000, 1000};
  const expr::VarInfo vy{900002, "y", expr::Type::kInt, -1000, 1000};
  const auto x = expr::mkVar(vx);
  const auto y = expr::mkVar(vy);
  const auto goal = expr::eqE(
      expr::addE(expr::mulE(x, x), expr::mulE(y, y)), expr::cInt(1000000));
  std::uint64_t seed = 1;
  int sat = 0, total = 0;
  for (auto _ : state) {
    solver::SolveOptions so;
    so.timeBudgetMillis = 300;
    so.seed = seed++;
    const auto res = solver::solveWith(kind, goal, {vx, vy}, so);
    benchmark::DoNotOptimize(res.status);
    ++total;
    if (res.status == solver::SolveStatus::kSat) ++sat;
  }
  state.counters["sat_rate"] =
      total > 0 ? static_cast<double>(sat) / total : 0.0;
  state.SetLabel(solver::solverKindName(kind));
}
BENCHMARK(BM_SolverKindsNonlinear)
    ->Arg(static_cast<int>(solver::SolverKind::kBox))
    ->Arg(static_cast<int>(solver::SolverKind::kLocalSearch))
    ->Arg(static_cast<int>(solver::SolverKind::kPortfolio))
    ->Unit(benchmark::kMillisecond);

// One stateAwareSolve round's workload — a grid of per-branch residual
// solves against the warm state — fanned across the work-stealing pool.
// The argument is the lane count (GenOptions.jobs / stcg_cli --jobs).
// Real time should drop with lanes up to the core count; on a
// single-core host all lanes time-slice and the curve stays flat.
void BM_ParallelSolveGrid(benchmark::State& state) {
  const auto& cm = cpuTask();
  const auto env = stateEnvOf(warmState());
  const auto infos = cm.inputInfos();
  std::vector<expr::ExprPtr> residuals;
  for (const auto& br : cm.branches) {
    residuals.push_back(expr::substitute(br.pathConstraint, env));
  }
  ThreadPool pool(static_cast<int>(state.range(0)));
  const Rng root(7);
  for (auto _ : state) {
    std::atomic<int> sat{0};
    pool.parallelFor(residuals.size(), [&](std::size_t i) {
      solver::SolveOptions so;
      so.timeBudgetMillis = 50;
      Rng taskRng = root.fork(i);
      so.seed =
          static_cast<std::uint64_t>(taskRng.uniformInt(1, 1'000'000'000));
      solver::BoxSolver solver(so);
      if (solver.solve(residuals[i], infos).sat()) {
        sat.fetch_add(1, std::memory_order_relaxed);
      }
    });
    benchmark::DoNotOptimize(sat.load());
    state.counters["sat"] = static_cast<double>(sat.load());
  }
}
BENCHMARK(BM_ParallelSolveGrid)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// End-to-end STCG generation at different --jobs values. The 2 s budget
// binds here (CPUTask holds unsatisfiable MCDC goals), so this measures
// throughput under a fixed time budget — NOT the determinism contract,
// which assumes non-binding budgets and is pinned by
// tests/test_parallel_gen.cpp instead.
void BM_StcgGenerateJobs(benchmark::State& state) {
  const auto& cm = cpuTask();
  gen::GenOptions opt;
  opt.budgetMillis = 2000;
  opt.seed = 11;
  opt.jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    gen::StcgGenerator g;
    const auto res = g.generate(cm, opt);
    benchmark::DoNotOptimize(res.tests.size());
    state.counters["decision_cov"] = res.coverage.decision;
    state.counters["tests"] = static_cast<double>(res.tests.size());
  }
}
BENCHMARK(BM_StcgGenerateJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Hc4Contract(benchmark::State& state) {
  const auto& cm = cpuTask();
  const auto& br = deleteSuccessBranch();
  const auto residual =
      expr::substitute(br.pathConstraint, stateEnvOf(warmState()));
  interval::Hc4Contractor contractor(residual);
  for (auto _ : state) {
    interval::Box box(cm.inputInfos());
    benchmark::DoNotOptimize(contractor.contract(box));
  }
}
BENCHMARK(BM_Hc4Contract)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
