// Reproduces paper Table I / Fig. 3: the state-tree construction process
// on the simplified CPUTask model (13 behavioural branches).
//
// Runs STCG with its trace hook enabled and prints the solve/execute log:
// which branch was targeted on which state, solver outcomes (including the
// "failed to solve B7/B8 on S0" steps of Table I), the states created, and
// when test cases were emitted. Finishes with the branch coverage bitmap
// analogous to Table I's last column.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "stcg/export.h"

namespace {

void traceSink(const std::string& line, void* user) {
  auto* count = static_cast<int*>(user);
  if (*count < 400) std::printf("  %s\n", line.c_str());
  ++*count;
}

}  // namespace

int main() {
  using namespace stcg;
  std::printf(
      "=== Table I: state-tree construction on the simplified CPUTask "
      "===\n\n");
  auto m = bench::buildCpuTaskSimplified();
  const auto cm = compile::compile(m);

  std::printf("Fig. 3(a) branch structure (region decisions):\n");
  for (const auto& d : cm.decisions) {
    if (d.kind != compile::DecisionKind::kRegionGroup) continue;
    std::printf("  %-40s arms:", d.name.c_str());
    for (const auto& label : d.armLabels) std::printf(" [%s]", label.c_str());
    std::printf(" depth=%d\n", d.depth);
  }

  std::printf("\nSTCG trace:\n");
  gen::GenOptions opt = benchx::defaultOptions();
  opt.budgetMillis = benchx::envInt("STCG_BENCH_BUDGET_MS", 4000);
  opt.includeConditionGoals = false;  // Table I tracks branch goals only
  gen::StcgGenerator stcg;
  int traceLines = 0;
  stcg.setTrace(traceSink, &traceLines);
  const auto res = stcg.generate(cm, opt);
  if (traceLines > 400) {
    std::printf("  ... (%d more trace lines)\n", traceLines - 400);
  }

  const auto replay = gen::replaySuite(cm, res.tests);
  std::printf("\nFinal branch coverage bitmap (Table I last column):\n  ");
  for (int b = 0; b < replay.totalBranchCount(); ++b) {
    std::printf("%c", replay.branchCovered(b) ? 'I' : '.');
  }
  std::printf("\n  %d/%d branches, %zu test cases, %d state-tree nodes\n",
              replay.coveredBranchCount(), replay.totalBranchCount(),
              res.tests.size(), res.stats.treeNodes);

  std::printf("\nGenerated test suite (text export, paper section IV):\n");
  std::printf("%s", gen::renderTestSuite(cm, res.tests).c_str());
  return 0;
}
