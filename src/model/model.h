// Block-diagram model IR: the Simulink-like substrate.
//
// A Model is a graph of typed blocks connected by signals, organized into
// conditionally-executed regions (the analogue of Simulink If / Switch-Case
// action subsystems and enabled subsystems), plus named data stores (global
// variables) and state-machine charts (the Stateflow analogue).
//
// Discrete-time semantics: each simulation step reads the inports, evaluates
// every block once (region guards gate state updates and coverage, not
// evaluation), and commits new state. The compiler in src/compile lowers a
// Model to pure expressions over (inputs, state) — see compile/compiler.h.
//
// Builder style: add* methods return the PortRef of the new block's output
// so models read as straight-line dataflow code. The "current region" is a
// cursor manipulated via pushRegion/popRegion (or the RegionScope RAII
// helper), and every added block lands in the current region.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "expr/scalar.h"
#include "model/chart.h"

namespace stcg::model {

using BlockId = std::int32_t;
using RegionId = std::int32_t;
constexpr RegionId kRootRegion = 0;

/// A reference to one output port of a block.
struct PortRef {
  BlockId block = -1;
  int port = 0;

  [[nodiscard]] bool valid() const { return block >= 0; }
};

enum class BlockKind {
  kInport,
  kOutport,
  kConstant,
  kConstantArray,
  kSum,       // elementwise signed sum, signs given per operand
  kGain,
  kProduct,   // multiply/divide chain, ops given per operand
  kAbs,
  kMinMax,
  kMod,  // integer remainder (truncated, guarded: x % 0 == 0)
  kSaturation,
  kRelational,
  kLogical,
  kSwitch,           // Simulink Switch: criteria(ctrl) ? first : third
  kMultiportSwitch,  // data port selected by integer control (0-based)
  kUnitDelay,        // one-step delay, scalar state
  kDelayLine,        // N-step delay, array state
  kDataStoreRead,      // whole store (scalar or array)
  kDataStoreReadElem,  // store[index]
  kDataStoreWrite,     // whole scalar store
  kDataStoreWriteElem, // store[index] = value
  kLookup1D,  // piecewise-linear interpolation table
  kMerge,     // combines the outputs of mutually exclusive region arms
  kChart,     // finite-state machine
  kTestObjective,  // named boolean watch the generators try to satisfy
};

[[nodiscard]] const char* blockKindName(BlockKind k);

enum class RelOp { kLt, kLe, kGt, kGe, kEq, kNe };
enum class LogicOp { kAnd, kOr, kXor, kNot, kNand, kNor };
enum class SwitchCriteria { kGreaterThan, kGreaterEqual, kNotZero };
enum class MinMaxOp { kMin, kMax };

/// One block instance. Interpretation of the parameter fields depends on
/// `kind`; the builder methods keep them consistent.
struct Block {
  BlockId id = -1;
  std::string name;
  BlockKind kind = BlockKind::kConstant;
  RegionId region = kRootRegion;
  std::vector<PortRef> in;

  expr::Scalar scalarParam;               // constant / init / threshold
  std::vector<expr::Scalar> arrayParam;   // constant array contents
  std::string signs;                      // Sum "+-+" / Product "**/"
  double lo = 0.0, hi = 0.0;              // inport domain / saturation
  int intParam = 0;                       // delay length / store index
  expr::Type valueType = expr::Type::kReal;  // inport type
  RelOp relOp = RelOp::kEq;
  LogicOp logicOp = LogicOp::kAnd;
  SwitchCriteria criteria = SwitchCriteria::kGreaterThan;
  MinMaxOp minMaxOp = MinMaxOp::kMin;
  std::vector<double> breakpoints, tableValues;  // lookup table
  std::vector<std::pair<RegionId, PortRef>> mergeArms;
  int chartIndex = -1;
};

enum class RegionKind {
  kRoot,
  kIfArm,
  kElseArm,
  kCaseArm,
  kDefaultArm,
  kEnabled,
};

/// A conditionally-executed group of blocks. Regions form a tree rooted at
/// kRootRegion; sibling arms created by the same If/Switch-Case construct
/// share a decision group and are mutually exclusive.
struct Region {
  RegionId id = kRootRegion;
  RegionId parent = -1;
  std::string name;
  RegionKind kind = RegionKind::kRoot;
  PortRef ctrl;                          // controlling signal
  SwitchCriteria criteria = SwitchCriteria::kNotZero;  // for if/enabled arms
  std::vector<std::int64_t> caseValues;  // for case arms
  int decisionGroup = -1;                // arms of one construct share this
  int armIndex = 0;
};

/// A named global variable (Simulink Data Store Memory).
struct DataStore {
  int index = -1;
  std::string name;
  expr::Type type = expr::Type::kReal;
  int width = 1;  // 1 = scalar store, >1 = array store
  expr::Scalar init;
};

/// Pair of regions created by addIfElse.
struct IfRegions {
  RegionId thenRegion = -1;
  RegionId elseRegion = -1;
};

class Model {
 public:
  explicit Model(std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }

  // --- Sources and sinks -------------------------------------------------
  /// Declare an external input with a bounded domain [lo, hi].
  PortRef addInport(const std::string& name, expr::Type type, double lo,
                    double hi);
  void addOutport(const std::string& name, PortRef src);

  PortRef addConstant(const std::string& name, expr::Scalar value);
  PortRef addConstantArray(const std::string& name, expr::Type elemType,
                           std::vector<expr::Scalar> elems);

  // --- Math and logic ----------------------------------------------------
  /// signs has one '+'/'-' per operand, e.g. addSum("s", {a,b,c}, "++-").
  PortRef addSum(const std::string& name, std::vector<PortRef> operands,
                 const std::string& signs);
  PortRef addGain(const std::string& name, PortRef in, double k);
  /// ops has one '*' or '/' per operand.
  PortRef addProduct(const std::string& name, std::vector<PortRef> operands,
                     const std::string& ops);
  PortRef addAbs(const std::string& name, PortRef in);
  PortRef addMinMax(const std::string& name, MinMaxOp op, PortRef a,
                    PortRef b);
  /// Integer remainder a % b (C++ truncated semantics, b == 0 yields 0).
  PortRef addMod(const std::string& name, PortRef a, PortRef b);
  PortRef addSaturation(const std::string& name, PortRef in, double lo,
                        double hi);
  PortRef addRelational(const std::string& name, RelOp op, PortRef a,
                        PortRef b);
  /// kNot takes one operand; the others take two or more.
  PortRef addLogical(const std::string& name, LogicOp op,
                     std::vector<PortRef> operands);
  PortRef addCompareToConst(const std::string& name, PortRef in, RelOp op,
                            double c);
  /// Register a custom test objective (the analogue of SLDV's derived test
  /// objectives): generators treat "cond becomes true while this block's
  /// region is active" as an extra goal, and coverage reports track it.
  void addTestObjective(const std::string& name, PortRef cond);

  // --- Routing -----------------------------------------------------------
  PortRef addSwitch(const std::string& name, PortRef onTrue, PortRef ctrl,
                    PortRef onFalse, SwitchCriteria criteria,
                    double threshold);
  /// Data port `i` is selected when ctrl == i; the last data port also
  /// serves as the out-of-range default.
  PortRef addMultiportSwitch(const std::string& name, PortRef ctrl,
                             std::vector<PortRef> data);
  /// Merge of mutually exclusive region outputs; yields `fallback` when no
  /// arm's region is active this step.
  PortRef addMerge(const std::string& name,
                   std::vector<std::pair<RegionId, PortRef>> arms,
                   expr::Scalar fallback);

  // --- State -------------------------------------------------------------
  PortRef addUnitDelay(const std::string& name, PortRef in,
                       expr::Scalar init);
  /// Two-phase variant for feedback loops: create the delay first (its
  /// output can feed the computation), then close the loop with
  /// bindDelayInput. validate() rejects unbound delays.
  PortRef addUnitDelayHole(const std::string& name, expr::Scalar init);
  void bindDelayInput(PortRef delay, PortRef input);
  /// Output is the input from `length` steps ago (array state of `length`).
  PortRef addDelayLine(const std::string& name, PortRef in, int length,
                       expr::Scalar init);

  int addDataStore(const std::string& name, expr::Type type, int width,
                   expr::Scalar init);
  PortRef addDataStoreRead(const std::string& name, int store);
  PortRef addDataStoreReadElem(const std::string& name, int store,
                               PortRef index);
  void addDataStoreWrite(const std::string& name, int store, PortRef value);
  void addDataStoreWriteElem(const std::string& name, int store,
                             PortRef index, PortRef value);

  // --- Tables ------------------------------------------------------------
  /// Piecewise-linear interpolation with clamped ends; breakpoints must be
  /// strictly increasing and match tableValues in length.
  PortRef addLookup1D(const std::string& name, PortRef in,
                      std::vector<double> breakpoints,
                      std::vector<double> values);

  // --- Charts ------------------------------------------------------------
  /// Instantiate a chart. `inputs[i]` feeds the template input i declared
  /// on the builder. Returns one PortRef per declared chart output.
  std::vector<PortRef> addChart(const std::string& name, ChartSpec spec,
                                std::vector<PortRef> inputs);

  // --- Conditional regions ----------------------------------------------
  IfRegions addIfElse(const std::string& name, PortRef cond);
  RegionId addEnabled(const std::string& name, PortRef enable);
  /// One region per case group, plus a default region when addDefault.
  std::vector<RegionId> addSwitchCase(
      const std::string& name, PortRef ctrl,
      const std::vector<std::vector<std::int64_t>>& cases, bool addDefault);

  void pushRegion(RegionId r);
  void popRegion();
  [[nodiscard]] RegionId currentRegion() const { return regionStack_.back(); }

  // --- Introspection -----------------------------------------------------
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }
  [[nodiscard]] const Block& block(BlockId id) const {
    return blocks_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] const std::vector<Region>& regions() const { return regions_; }
  [[nodiscard]] const Region& region(RegionId id) const {
    return regions_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] const std::vector<DataStore>& dataStores() const {
    return stores_;
  }
  [[nodiscard]] const std::vector<ChartSpec>& charts() const {
    return charts_;
  }
  [[nodiscard]] int decisionGroupCount() const { return decisionGroups_; }

  /// Allocate a fresh expression-variable id (chart templates and the
  /// compiler share this space so ids never collide).
  [[nodiscard]] expr::VarId allocVarId() { return nextVarId_++; }

  /// First id not yet handed out; the compiler allocates from here up.
  [[nodiscard]] expr::VarId varIdWatermark() const { return nextVarId_; }

  /// Structural checks: valid port references, arity, region nesting,
  /// store indices, chart wiring. Returns a list of human-readable
  /// problems; empty means the model is well-formed.
  [[nodiscard]] std::vector<std::string> validate() const;

 private:
  Block& newBlock(const std::string& name, BlockKind kind);
  RegionId newRegion(const std::string& name, RegionKind kind, PortRef ctrl,
                     int group, int armIndex);

  std::string name_;
  std::vector<Block> blocks_;
  std::vector<Region> regions_;
  std::vector<DataStore> stores_;
  std::vector<ChartSpec> charts_;
  std::vector<RegionId> regionStack_;
  int decisionGroups_ = 0;
  expr::VarId nextVarId_ = 0;
};

/// RAII region cursor: pushes `r` on construction, pops on destruction.
class RegionScope {
 public:
  RegionScope(Model& m, RegionId r) : model_(m) { model_.pushRegion(r); }
  ~RegionScope() { model_.popRegion(); }
  RegionScope(const RegionScope&) = delete;
  RegionScope& operator=(const RegionScope&) = delete;

 private:
  Model& model_;
};

}  // namespace stcg::model
