#include "model/chart.h"

#include <cassert>

#include "expr/builder.h"
#include "model/model.h"

namespace stcg::model {

ChartBuilder::ChartBuilder(Model& model, std::string name) : model_(model) {
  spec_.name = std::move(name);
}

expr::ExprPtr ChartBuilder::input(const std::string& name, expr::Type type) {
  expr::VarInfo info;
  info.id = model_.allocVarId();
  info.name = spec_.name + "." + name;
  info.type = type;
  // Domain bounds are irrelevant for template leaves (they are always
  // substituted away); use a wide placeholder.
  info.lo = -1e9;
  info.hi = 1e9;
  spec_.inputTemplateIds.push_back(info.id);
  spec_.inputNames.push_back(name);
  spec_.inputTypes.push_back(type);
  return expr::mkVar(info);
}

int ChartBuilder::addVar(const std::string& name, expr::Scalar init) {
  ChartVarSpec v;
  v.name = name;
  v.type = init.type();
  v.init = init;
  v.templateId = model_.allocVarId();
  spec_.vars.push_back(std::move(v));
  return static_cast<int>(spec_.vars.size()) - 1;
}

expr::ExprPtr ChartBuilder::varRef(int varIndex) const {
  const auto& v = spec_.vars.at(static_cast<std::size_t>(varIndex));
  expr::VarInfo info;
  info.id = v.templateId;
  info.name = spec_.name + "." + v.name;
  info.type = v.type;
  info.lo = -1e9;
  info.hi = 1e9;
  return expr::mkVar(info);
}

int ChartBuilder::addState(const std::string& name) {
  ChartStateSpec s;
  s.name = name;
  spec_.states.push_back(std::move(s));
  return static_cast<int>(spec_.states.size()) - 1;
}

void ChartBuilder::addTransition(int from, int to, expr::ExprPtr guard,
                                 std::vector<ChartAssign> actions,
                                 std::string label) {
  assert(from >= 0 && from < static_cast<int>(spec_.states.size()));
  assert(to >= 0 && to < static_cast<int>(spec_.states.size()));
  ChartTransitionSpec t;
  t.from = from;
  t.to = to;
  t.guard = std::move(guard);
  t.actions = std::move(actions);
  t.label = label.empty() ? (spec_.states[static_cast<std::size_t>(from)].name +
                             "->" +
                             spec_.states[static_cast<std::size_t>(to)].name)
                          : std::move(label);
  spec_.transitions.push_back(std::move(t));
}

void ChartBuilder::addDuring(int state, int varIndex, expr::ExprPtr value) {
  auto& s = spec_.states.at(static_cast<std::size_t>(state));
  s.duringActions.push_back(ChartAssign{varIndex, std::move(value)});
}

void ChartBuilder::exposeOutput(int varIndex) {
  assert(varIndex >= 0 && varIndex < static_cast<int>(spec_.vars.size()));
  spec_.outputVarIndices.push_back(varIndex);
}

ChartSpec ChartBuilder::build() {
  assert(!spec_.states.empty() && "a chart needs at least one state");
  return std::move(spec_);
}

}  // namespace stcg::model
