#include "model/model.h"

#include <cassert>
#include <unordered_set>

namespace stcg::model {

const char* blockKindName(BlockKind k) {
  switch (k) {
    case BlockKind::kInport: return "Inport";
    case BlockKind::kOutport: return "Outport";
    case BlockKind::kConstant: return "Constant";
    case BlockKind::kConstantArray: return "ConstantArray";
    case BlockKind::kSum: return "Sum";
    case BlockKind::kGain: return "Gain";
    case BlockKind::kProduct: return "Product";
    case BlockKind::kAbs: return "Abs";
    case BlockKind::kMinMax: return "MinMax";
    case BlockKind::kMod: return "Mod";
    case BlockKind::kSaturation: return "Saturation";
    case BlockKind::kRelational: return "Relational";
    case BlockKind::kLogical: return "Logical";
    case BlockKind::kSwitch: return "Switch";
    case BlockKind::kMultiportSwitch: return "MultiportSwitch";
    case BlockKind::kUnitDelay: return "UnitDelay";
    case BlockKind::kDelayLine: return "DelayLine";
    case BlockKind::kDataStoreRead: return "DataStoreRead";
    case BlockKind::kDataStoreReadElem: return "DataStoreReadElem";
    case BlockKind::kDataStoreWrite: return "DataStoreWrite";
    case BlockKind::kDataStoreWriteElem: return "DataStoreWriteElem";
    case BlockKind::kLookup1D: return "Lookup1D";
    case BlockKind::kMerge: return "Merge";
    case BlockKind::kChart: return "Chart";
    case BlockKind::kTestObjective: return "TestObjective";
  }
  return "?";
}

Model::Model(std::string name) : name_(std::move(name)) {
  Region root;
  root.id = kRootRegion;
  root.parent = -1;
  root.name = "root";
  root.kind = RegionKind::kRoot;
  regions_.push_back(root);
  regionStack_.push_back(kRootRegion);
}

Block& Model::newBlock(const std::string& name, BlockKind kind) {
  Block b;
  b.id = static_cast<BlockId>(blocks_.size());
  b.name = name;
  b.kind = kind;
  b.region = currentRegion();
  blocks_.push_back(std::move(b));
  return blocks_.back();
}

RegionId Model::newRegion(const std::string& name, RegionKind kind,
                          PortRef ctrl, int group, int armIndex) {
  Region r;
  r.id = static_cast<RegionId>(regions_.size());
  r.parent = currentRegion();
  r.name = name;
  r.kind = kind;
  r.ctrl = ctrl;
  r.decisionGroup = group;
  r.armIndex = armIndex;
  regions_.push_back(std::move(r));
  return regions_.back().id;
}

PortRef Model::addInport(const std::string& name, expr::Type type, double lo,
                         double hi) {
  Block& b = newBlock(name, BlockKind::kInport);
  b.valueType = type;
  b.lo = lo;
  b.hi = hi;
  return {b.id, 0};
}

void Model::addOutport(const std::string& name, PortRef src) {
  Block& b = newBlock(name, BlockKind::kOutport);
  b.in.push_back(src);
}

PortRef Model::addConstant(const std::string& name, expr::Scalar value) {
  Block& b = newBlock(name, BlockKind::kConstant);
  b.scalarParam = value;
  return {b.id, 0};
}

PortRef Model::addConstantArray(const std::string& name, expr::Type elemType,
                                std::vector<expr::Scalar> elems) {
  Block& b = newBlock(name, BlockKind::kConstantArray);
  b.valueType = elemType;
  b.arrayParam = std::move(elems);
  return {b.id, 0};
}

PortRef Model::addSum(const std::string& name, std::vector<PortRef> operands,
                      const std::string& signs) {
  assert(operands.size() == signs.size() && !operands.empty());
  Block& b = newBlock(name, BlockKind::kSum);
  b.in = std::move(operands);
  b.signs = signs;
  return {b.id, 0};
}

PortRef Model::addGain(const std::string& name, PortRef in, double k) {
  Block& b = newBlock(name, BlockKind::kGain);
  b.in.push_back(in);
  b.scalarParam = expr::Scalar::r(k);
  return {b.id, 0};
}

PortRef Model::addProduct(const std::string& name,
                          std::vector<PortRef> operands,
                          const std::string& ops) {
  assert(operands.size() == ops.size() && !operands.empty());
  Block& b = newBlock(name, BlockKind::kProduct);
  b.in = std::move(operands);
  b.signs = ops;
  return {b.id, 0};
}

PortRef Model::addAbs(const std::string& name, PortRef in) {
  Block& b = newBlock(name, BlockKind::kAbs);
  b.in.push_back(in);
  return {b.id, 0};
}

PortRef Model::addMinMax(const std::string& name, MinMaxOp op, PortRef a,
                         PortRef b2) {
  Block& b = newBlock(name, BlockKind::kMinMax);
  b.minMaxOp = op;
  b.in = {a, b2};
  return {b.id, 0};
}

PortRef Model::addMod(const std::string& name, PortRef a, PortRef b2) {
  Block& b = newBlock(name, BlockKind::kMod);
  b.in = {a, b2};
  return {b.id, 0};
}

PortRef Model::addSaturation(const std::string& name, PortRef in, double lo,
                             double hi) {
  Block& b = newBlock(name, BlockKind::kSaturation);
  b.in.push_back(in);
  b.lo = lo;
  b.hi = hi;
  return {b.id, 0};
}

PortRef Model::addRelational(const std::string& name, RelOp op, PortRef a,
                             PortRef b2) {
  Block& b = newBlock(name, BlockKind::kRelational);
  b.relOp = op;
  b.in = {a, b2};
  return {b.id, 0};
}

PortRef Model::addLogical(const std::string& name, LogicOp op,
                          std::vector<PortRef> operands) {
  assert(op == LogicOp::kNot ? operands.size() == 1 : operands.size() >= 2);
  Block& b = newBlock(name, BlockKind::kLogical);
  b.logicOp = op;
  b.in = std::move(operands);
  return {b.id, 0};
}

PortRef Model::addCompareToConst(const std::string& name, PortRef in,
                                 RelOp op, double c) {
  // The constant must be created first: newBlock may reallocate the block
  // vector, invalidating any reference held across it.
  const PortRef constant = addConstant(name + "_const", expr::Scalar::r(c));
  Block& b = newBlock(name, BlockKind::kRelational);
  b.relOp = op;
  b.in = {in, constant};
  return {b.id, 0};
}

void Model::addTestObjective(const std::string& name, PortRef cond) {
  Block& b = newBlock(name, BlockKind::kTestObjective);
  b.in.push_back(cond);
}

PortRef Model::addSwitch(const std::string& name, PortRef onTrue,
                         PortRef ctrl, PortRef onFalse,
                         SwitchCriteria criteria, double threshold) {
  Block& b = newBlock(name, BlockKind::kSwitch);
  b.in = {onTrue, ctrl, onFalse};
  b.criteria = criteria;
  b.scalarParam = expr::Scalar::r(threshold);
  return {b.id, 0};
}

PortRef Model::addMultiportSwitch(const std::string& name, PortRef ctrl,
                                  std::vector<PortRef> data) {
  assert(data.size() >= 2);
  Block& b = newBlock(name, BlockKind::kMultiportSwitch);
  b.in.push_back(ctrl);
  for (const auto& d : data) b.in.push_back(d);
  return {b.id, 0};
}

PortRef Model::addMerge(const std::string& name,
                        std::vector<std::pair<RegionId, PortRef>> arms,
                        expr::Scalar fallback) {
  assert(!arms.empty());
  Block& b = newBlock(name, BlockKind::kMerge);
  b.mergeArms = std::move(arms);
  b.scalarParam = fallback;
  for (const auto& [r, p] : b.mergeArms) b.in.push_back(p);
  return {b.id, 0};
}

PortRef Model::addUnitDelay(const std::string& name, PortRef in,
                            expr::Scalar init) {
  Block& b = newBlock(name, BlockKind::kUnitDelay);
  b.in.push_back(in);
  b.scalarParam = init;
  return {b.id, 0};
}

PortRef Model::addUnitDelayHole(const std::string& name, expr::Scalar init) {
  Block& b = newBlock(name, BlockKind::kUnitDelay);
  b.scalarParam = init;
  return {b.id, 0};
}

void Model::bindDelayInput(PortRef delay, PortRef input) {
  assert(delay.valid() &&
         static_cast<std::size_t>(delay.block) < blocks_.size());
  Block& b = blocks_[static_cast<std::size_t>(delay.block)];
  assert((b.kind == BlockKind::kUnitDelay ||
          b.kind == BlockKind::kDelayLine) &&
         b.in.empty() && "bindDelayInput expects an unbound delay");
  b.in.push_back(input);
}

PortRef Model::addDelayLine(const std::string& name, PortRef in, int length,
                            expr::Scalar init) {
  assert(length >= 1);
  Block& b = newBlock(name, BlockKind::kDelayLine);
  b.in.push_back(in);
  b.intParam = length;
  b.scalarParam = init;
  return {b.id, 0};
}

int Model::addDataStore(const std::string& name, expr::Type type, int width,
                        expr::Scalar init) {
  assert(width >= 1);
  DataStore s;
  s.index = static_cast<int>(stores_.size());
  s.name = name;
  s.type = type;
  s.width = width;
  s.init = init.castTo(type);
  stores_.push_back(std::move(s));
  return stores_.back().index;
}

PortRef Model::addDataStoreRead(const std::string& name, int store) {
  Block& b = newBlock(name, BlockKind::kDataStoreRead);
  b.intParam = store;
  return {b.id, 0};
}

PortRef Model::addDataStoreReadElem(const std::string& name, int store,
                                    PortRef index) {
  Block& b = newBlock(name, BlockKind::kDataStoreReadElem);
  b.intParam = store;
  b.in.push_back(index);
  return {b.id, 0};
}

void Model::addDataStoreWrite(const std::string& name, int store,
                              PortRef value) {
  Block& b = newBlock(name, BlockKind::kDataStoreWrite);
  b.intParam = store;
  b.in.push_back(value);
}

void Model::addDataStoreWriteElem(const std::string& name, int store,
                                  PortRef index, PortRef value) {
  Block& b = newBlock(name, BlockKind::kDataStoreWriteElem);
  b.intParam = store;
  b.in = {index, value};
}

PortRef Model::addLookup1D(const std::string& name, PortRef in,
                           std::vector<double> breakpoints,
                           std::vector<double> values) {
  assert(breakpoints.size() == values.size() && breakpoints.size() >= 2);
  Block& b = newBlock(name, BlockKind::kLookup1D);
  b.in.push_back(in);
  b.breakpoints = std::move(breakpoints);
  b.tableValues = std::move(values);
  return {b.id, 0};
}

std::vector<PortRef> Model::addChart(const std::string& name, ChartSpec spec,
                                     std::vector<PortRef> inputs) {
  assert(inputs.size() == spec.inputTemplateIds.size());
  Block& b = newBlock(name, BlockKind::kChart);
  b.in = std::move(inputs);
  b.chartIndex = static_cast<int>(charts_.size());
  const int numOutputs = static_cast<int>(spec.outputVarIndices.size()) +
                         (spec.activeStateOutput ? 1 : 0);
  charts_.push_back(std::move(spec));
  std::vector<PortRef> outs;
  outs.reserve(static_cast<std::size_t>(numOutputs));
  for (int i = 0; i < numOutputs; ++i) outs.push_back({b.id, i});
  return outs;
}

IfRegions Model::addIfElse(const std::string& name, PortRef cond) {
  const int group = decisionGroups_++;
  IfRegions out;
  out.thenRegion =
      newRegion(name + ".then", RegionKind::kIfArm, cond, group, 0);
  out.elseRegion =
      newRegion(name + ".else", RegionKind::kElseArm, cond, group, 1);
  return out;
}

RegionId Model::addEnabled(const std::string& name, PortRef enable) {
  const int group = decisionGroups_++;
  return newRegion(name, RegionKind::kEnabled, enable, group, 0);
}

std::vector<RegionId> Model::addSwitchCase(
    const std::string& name, PortRef ctrl,
    const std::vector<std::vector<std::int64_t>>& cases, bool addDefault) {
  assert(!cases.empty());
  const int group = decisionGroups_++;
  std::vector<RegionId> out;
  int arm = 0;
  for (const auto& values : cases) {
    assert(!values.empty());
    const RegionId r =
        newRegion(name + ".case" + std::to_string(arm), RegionKind::kCaseArm,
                  ctrl, group, arm);
    regions_[static_cast<std::size_t>(r)].caseValues = values;
    out.push_back(r);
    ++arm;
  }
  if (addDefault) {
    const RegionId r = newRegion(name + ".default", RegionKind::kDefaultArm,
                                 ctrl, group, arm);
    // The default arm matches anything not claimed by a sibling case.
    for (const auto& values : cases) {
      auto& dv = regions_[static_cast<std::size_t>(r)].caseValues;
      dv.insert(dv.end(), values.begin(), values.end());
    }
    out.push_back(r);
  }
  return out;
}

void Model::pushRegion(RegionId r) {
  assert(r >= 0 && static_cast<std::size_t>(r) < regions_.size());
  regionStack_.push_back(r);
}

void Model::popRegion() {
  assert(regionStack_.size() > 1 && "cannot pop the root region");
  regionStack_.pop_back();
}

std::vector<std::string> Model::validate() const {
  std::vector<std::string> problems;
  const auto complain = [&](const std::string& msg) {
    problems.push_back(name_ + ": " + msg);
  };

  for (const auto& b : blocks_) {
    for (const auto& p : b.in) {
      if (!p.valid() || static_cast<std::size_t>(p.block) >= blocks_.size()) {
        complain("block '" + b.name + "' has an invalid input reference");
        continue;
      }
      const Block& src = blocks_[static_cast<std::size_t>(p.block)];
      int srcOutputs = 1;
      if (src.kind == BlockKind::kOutport ||
          src.kind == BlockKind::kTestObjective ||
          src.kind == BlockKind::kDataStoreWrite ||
          src.kind == BlockKind::kDataStoreWriteElem) {
        srcOutputs = 0;
      } else if (src.kind == BlockKind::kChart) {
        const auto& spec = charts_[static_cast<std::size_t>(src.chartIndex)];
        srcOutputs = static_cast<int>(spec.outputVarIndices.size()) +
                     (spec.activeStateOutput ? 1 : 0);
      }
      if (p.port < 0 || p.port >= srcOutputs) {
        complain("block '" + b.name + "' references port " +
                 std::to_string(p.port) + " of '" + src.name +
                 "' which has " + std::to_string(srcOutputs) + " outputs");
      }
    }
    switch (b.kind) {
      case BlockKind::kSum:
      case BlockKind::kProduct:
        if (b.in.size() != b.signs.size()) {
          complain("block '" + b.name + "' sign string mismatch");
        }
        break;
      case BlockKind::kDataStoreRead:
      case BlockKind::kDataStoreReadElem:
      case BlockKind::kDataStoreWrite:
      case BlockKind::kDataStoreWriteElem:
        if (b.intParam < 0 ||
            static_cast<std::size_t>(b.intParam) >= stores_.size()) {
          complain("block '" + b.name + "' references unknown data store");
        }
        break;
      case BlockKind::kChart: {
        if (b.chartIndex < 0 ||
            static_cast<std::size_t>(b.chartIndex) >= charts_.size()) {
          complain("block '" + b.name + "' references unknown chart");
          break;
        }
        const auto& spec = charts_[static_cast<std::size_t>(b.chartIndex)];
        if (b.in.size() != spec.inputTemplateIds.size()) {
          complain("chart '" + b.name + "' input arity mismatch");
        }
        for (const auto& t : spec.transitions) {
          if (t.guard == nullptr) {
            complain("chart '" + b.name + "' transition without guard");
          }
        }
        break;
      }
      case BlockKind::kUnitDelay:
      case BlockKind::kDelayLine:
        if (b.in.empty()) {
          complain("delay '" + b.name + "' has no input (unbound hole)");
        }
        break;
      case BlockKind::kLookup1D:
        for (std::size_t i = 1; i < b.breakpoints.size(); ++i) {
          if (b.breakpoints[i] <= b.breakpoints[i - 1]) {
            complain("block '" + b.name +
                     "' breakpoints not strictly increasing");
            break;
          }
        }
        break;
      default:
        break;
    }
  }

  for (const auto& r : regions_) {
    if (r.kind == RegionKind::kRoot) continue;
    if (!r.ctrl.valid() ||
        static_cast<std::size_t>(r.ctrl.block) >= blocks_.size()) {
      complain("region '" + r.name + "' has an invalid control signal");
    }
  }
  return problems;
}

}  // namespace stcg::model
