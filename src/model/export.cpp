#include "model/export.h"

#include <functional>
#include <unordered_map>
#include <vector>

namespace stcg::model {

namespace {

std::string escapeDot(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

const char* shapeOf(BlockKind k) {
  switch (k) {
    case BlockKind::kInport:
    case BlockKind::kOutport:
      return "cds";
    case BlockKind::kConstant:
    case BlockKind::kConstantArray:
      return "plaintext";
    case BlockKind::kSwitch:
    case BlockKind::kMultiportSwitch:
    case BlockKind::kMerge:
      return "trapezium";
    case BlockKind::kUnitDelay:
    case BlockKind::kDelayLine:
      return "box3d";
    case BlockKind::kChart:
      return "doubleoctagon";
    case BlockKind::kDataStoreRead:
    case BlockKind::kDataStoreReadElem:
    case BlockKind::kDataStoreWrite:
    case BlockKind::kDataStoreWriteElem:
      return "cylinder";
    case BlockKind::kTestObjective:
      return "note";
    default:
      return "box";
  }
}

}  // namespace

std::string toDot(const Model& m) {
  std::string out = "digraph \"" + escapeDot(m.name()) + "\" {\n";
  out += "  rankdir=LR;\n  node [fontsize=10];\n";

  // Blocks grouped per region; regions nest as clusters.
  std::unordered_map<RegionId, std::vector<BlockId>> byRegion;
  for (const auto& b : m.blocks()) byRegion[b.region].push_back(b.id);
  std::unordered_map<RegionId, std::vector<RegionId>> children;
  for (const auto& r : m.regions()) {
    if (r.kind != RegionKind::kRoot) children[r.parent].push_back(r.id);
  }

  const auto emitBlock = [&](BlockId id, std::string& dst, int indent) {
    const Block& b = m.block(id);
    dst += std::string(static_cast<std::size_t>(indent), ' ') + "b" +
           std::to_string(id) + " [label=\"" + escapeDot(b.name) + "\\n(" +
           blockKindName(b.kind) + ")\" shape=" + shapeOf(b.kind) + "];\n";
  };

  // Recursive cluster emission.
  const std::function<void(RegionId, std::string&, int)> emitRegion =
      [&](RegionId r, std::string& dst, int indent) {
        const std::string pad(static_cast<std::size_t>(indent), ' ');
        if (r != kRootRegion) {
          dst += pad + "subgraph cluster_r" + std::to_string(r) + " {\n";
          dst += pad + "  label=\"" + escapeDot(m.region(r).name) + "\";\n";
          dst += pad + "  style=dashed;\n";
        }
        for (const BlockId id : byRegion[r]) {
          emitBlock(id, dst, indent + 2);
        }
        for (const RegionId c : children[r]) {
          emitRegion(c, dst, indent + 2);
        }
        if (r != kRootRegion) dst += pad + "}\n";
      };
  emitRegion(kRootRegion, out, 2);

  // Edges.
  for (const auto& b : m.blocks()) {
    for (const auto& p : b.in) {
      out += "  b" + std::to_string(p.block) + " -> b" +
             std::to_string(b.id);
      if (p.port != 0) {
        out += " [label=\"p" + std::to_string(p.port) + "\"]";
      }
      out += ";\n";
    }
  }
  out += "}\n";
  return out;
}

ModelStats modelStats(const Model& m) {
  ModelStats s;
  s.blocks = static_cast<int>(m.blocks().size());
  s.regions = static_cast<int>(m.regions().size()) - 1;
  s.charts = static_cast<int>(m.charts().size());
  s.dataStores = static_cast<int>(m.dataStores().size());
  for (const auto& c : m.charts()) {
    s.chartStates += static_cast<int>(c.states.size());
    s.chartTransitions += static_cast<int>(c.transitions.size());
  }
  for (const auto& b : m.blocks()) {
    ++s.blocksByKind[blockKindName(b.kind)];
    if (b.kind == BlockKind::kUnitDelay || b.kind == BlockKind::kDelayLine ||
        b.kind == BlockKind::kChart) {
      ++s.statefulBlocks;
    }
  }
  return s;
}

std::string ModelStats::toString() const {
  std::string out;
  out += "blocks=" + std::to_string(blocks) +
         " regions=" + std::to_string(regions) +
         " charts=" + std::to_string(charts) + " (" +
         std::to_string(chartStates) + " states, " +
         std::to_string(chartTransitions) + " transitions)" +
         " dataStores=" + std::to_string(dataStores) +
         " stateful=" + std::to_string(statefulBlocks) + "\n";
  for (const auto& [kind, count] : blocksByKind) {
    out += "  " + kind + ": " + std::to_string(count) + "\n";
  }
  return out;
}

}  // namespace stcg::model
