// Textual model serialization: save and load complete models — blocks,
// conditional regions, data stores, charts (guards/actions as
// s-expressions), and test objectives.
//
// The format is line-oriented and stable under round-trip: region and
// block ids are reproduced exactly, so a parsed model compiles to the same
// branch structure as its source. This is the interchange path for models
// authored outside C++ (the role .slx files play for the paper's tool).
#pragma once

#include <stdexcept>
#include <string>

#include "model/model.h"

namespace stcg::model {

class SerializeError : public std::runtime_error {
 public:
  explicit SerializeError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Render `m` in the stcg-model text format.
[[nodiscard]] std::string writeModel(const Model& m);

/// Parse a model previously produced by writeModel. Throws SerializeError
/// on malformed input.
[[nodiscard]] Model parseModel(const std::string& text);

/// File convenience wrappers. saveModel returns false on I/O failure;
/// loadModel throws SerializeError (also for unreadable files).
bool saveModel(const std::string& path, const Model& m);
[[nodiscard]] Model loadModel(const std::string& path);

}  // namespace stcg::model
