// Model introspection: Graphviz export and structural statistics.
#pragma once

#include <map>
#include <string>

#include "model/model.h"

namespace stcg::model {

/// Render the model as a Graphviz digraph: blocks as nodes (shaped by
/// kind), signals as edges, conditional regions as nested clusters.
[[nodiscard]] std::string toDot(const Model& m);

struct ModelStats {
  int blocks = 0;
  int regions = 0;          // excluding the root
  int charts = 0;
  int chartStates = 0;
  int chartTransitions = 0;
  int dataStores = 0;
  int statefulBlocks = 0;   // delays + charts
  std::map<std::string, int> blocksByKind;

  [[nodiscard]] std::string toString() const;
};

[[nodiscard]] ModelStats modelStats(const Model& m);

}  // namespace stcg::model
