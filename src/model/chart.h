// Stateflow-like charts: flat finite-state machines with guarded,
// prioritized transitions, local variables and per-state "during" actions.
//
// Guards and actions are written as expression templates over leaf
// variables standing for the chart's inputs and local variables; at model
// compile time these leaves are substituted with the actual signal and
// state expressions. Template variable ids are allocated from the owning
// Model so they never collide with compiler-allocated ids.
//
// Step semantics (matching the usual Stateflow discrete step):
//   1. The outgoing transitions of the active state are evaluated in
//      priority order (insertion order); the first true guard fires.
//   2. A firing transition applies its actions sequentially and activates
//      its destination state.
//   3. If no transition fires, the active state's during-actions apply.
// Each transition contributes one decision (taken / not taken) to the
// model's coverage goals, with the guard's atoms as its conditions.
#pragma once

#include <string>
#include <vector>

#include "expr/expr.h"
#include "expr/scalar.h"

namespace stcg::model {

class Model;  // defined in model.h

/// One variable assignment `vars[varIndex] := value` inside a chart.
struct ChartAssign {
  int varIndex = -1;
  expr::ExprPtr value;
};

struct ChartTransitionSpec {
  int from = -1;
  int to = -1;
  expr::ExprPtr guard;
  std::vector<ChartAssign> actions;
  std::string label;
};

struct ChartStateSpec {
  std::string name;
  std::vector<ChartAssign> duringActions;
};

struct ChartVarSpec {
  std::string name;
  expr::Type type = expr::Type::kReal;
  expr::Scalar init;
  expr::VarId templateId = -1;
};

/// Immutable description of a chart, produced by ChartBuilder::build().
struct ChartSpec {
  std::string name;
  std::vector<ChartStateSpec> states;
  std::vector<ChartVarSpec> vars;
  std::vector<ChartTransitionSpec> transitions;
  std::vector<expr::VarId> inputTemplateIds;
  std::vector<std::string> inputNames;
  std::vector<expr::Type> inputTypes;
  std::vector<int> outputVarIndices;
  bool activeStateOutput = false;
  int initialState = 0;
};

class ChartBuilder {
 public:
  /// `model` provides the template-variable id space.
  ChartBuilder(Model& model, std::string name);

  /// Declare the next chart input; returns the leaf to use in guards.
  [[nodiscard]] expr::ExprPtr input(const std::string& name, expr::Type type);

  /// Declare a local variable; returns its index.
  int addVar(const std::string& name, expr::Scalar init);
  /// Leaf expression referring to local variable `varIndex`.
  [[nodiscard]] expr::ExprPtr varRef(int varIndex) const;

  int addState(const std::string& name);
  void setInitialState(int state) { spec_.initialState = state; }

  /// Transitions from one state fire in the order they were added.
  void addTransition(int from, int to, expr::ExprPtr guard,
                     std::vector<ChartAssign> actions = {},
                     std::string label = "");
  void addDuring(int state, int varIndex, expr::ExprPtr value);

  /// Expose local variable `varIndex` as the chart's next output port.
  void exposeOutput(int varIndex);
  /// Additionally expose the active-state index as the final output port.
  void exposeActiveState() { spec_.activeStateOutput = true; }

  /// Finalize; the builder must not be used afterwards.
  [[nodiscard]] ChartSpec build();

 private:
  Model& model_;
  ChartSpec spec_;
};

}  // namespace stcg::model
