#include "model/serialize.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "expr/builder.h"
#include "expr/sexpr.h"
#include "util/strings.h"

namespace stcg::model {

using expr::Scalar;
using expr::Type;

namespace {

// ----- Token helpers -------------------------------------------------------

const char* typeToken(Type t) { return expr::typeName(t); }

Type typeFromToken(const std::string& s) {
  if (s == "bool") return Type::kBool;
  if (s == "int") return Type::kInt;
  if (s == "real") return Type::kReal;
  throw SerializeError("bad type token: " + s);
}

std::string scalarToken(const Scalar& s) {
  switch (s.type()) {
    case Type::kBool:
      return std::string("b:") + (s.asBool() ? "1" : "0");
    case Type::kInt:
      return "i:" + std::to_string(s.asInt());
    case Type::kReal: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "r:%.17g", s.asReal());
      return buf;
    }
  }
  return "i:0";
}

Scalar scalarFromToken(const std::string& s) {
  if (s.size() < 3 || s[1] != ':') {
    throw SerializeError("bad scalar token: " + s);
  }
  const std::string v = s.substr(2);
  switch (s[0]) {
    case 'b': return Scalar::b(v == "1" || v == "true");
    case 'i': return Scalar::i(std::stoll(v));
    case 'r': return Scalar::r(std::stod(v));
    default: throw SerializeError("bad scalar token: " + s);
  }
}

std::string portToken(PortRef p) {
  return "#" + std::to_string(p.block) + ":" + std::to_string(p.port);
}

PortRef portFromToken(const std::string& s) {
  if (s.empty() || s[0] != '#') throw SerializeError("bad port token: " + s);
  const auto colon = s.find(':');
  if (colon == std::string::npos) {
    throw SerializeError("bad port token: " + s);
  }
  PortRef p;
  p.block = static_cast<BlockId>(std::stol(s.substr(1, colon - 1)));
  p.port = std::stoi(s.substr(colon + 1));
  return p;
}

/// Substring after the first `n` whitespace-separated tokens.
std::string restAfterTokens(const std::string& line, int n) {
  std::size_t i = 0;
  int seen = 0;
  while (i < line.size() && seen < n) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size()) break;
    ++seen;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
  }
  while (i < line.size() &&
         std::isspace(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  return line.substr(i);
}

std::vector<std::string> splitWs(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

std::vector<std::string> splitOn(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      if (i > start) out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

void checkName(const std::string& name) {
  for (const char c : name) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      throw SerializeError("names may not contain whitespace: " + name);
    }
  }
}

const char* relOpToken(RelOp op) {
  switch (op) {
    case RelOp::kLt: return "lt";
    case RelOp::kLe: return "le";
    case RelOp::kGt: return "gt";
    case RelOp::kGe: return "ge";
    case RelOp::kEq: return "eq";
    case RelOp::kNe: return "ne";
  }
  return "eq";
}

RelOp relOpFromToken(const std::string& s) {
  if (s == "lt") return RelOp::kLt;
  if (s == "le") return RelOp::kLe;
  if (s == "gt") return RelOp::kGt;
  if (s == "ge") return RelOp::kGe;
  if (s == "eq") return RelOp::kEq;
  if (s == "ne") return RelOp::kNe;
  throw SerializeError("bad relop: " + s);
}

const char* logicOpToken(LogicOp op) {
  switch (op) {
    case LogicOp::kAnd: return "and";
    case LogicOp::kOr: return "or";
    case LogicOp::kXor: return "xor";
    case LogicOp::kNot: return "not";
    case LogicOp::kNand: return "nand";
    case LogicOp::kNor: return "nor";
  }
  return "and";
}

LogicOp logicOpFromToken(const std::string& s) {
  if (s == "and") return LogicOp::kAnd;
  if (s == "or") return LogicOp::kOr;
  if (s == "xor") return LogicOp::kXor;
  if (s == "not") return LogicOp::kNot;
  if (s == "nand") return LogicOp::kNand;
  if (s == "nor") return LogicOp::kNor;
  throw SerializeError("bad logicop: " + s);
}

const char* criteriaToken(SwitchCriteria c) {
  switch (c) {
    case SwitchCriteria::kGreaterThan: return "gt";
    case SwitchCriteria::kGreaterEqual: return "ge";
    case SwitchCriteria::kNotZero: return "nz";
  }
  return "nz";
}

SwitchCriteria criteriaFromToken(const std::string& s) {
  if (s == "gt") return SwitchCriteria::kGreaterThan;
  if (s == "ge") return SwitchCriteria::kGreaterEqual;
  if (s == "nz") return SwitchCriteria::kNotZero;
  throw SerializeError("bad criteria: " + s);
}

std::string csvOfDoubles(const std::vector<double>& v) {
  std::vector<std::string> parts;
  parts.reserve(v.size());
  for (const double d : v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    parts.emplace_back(buf);
  }
  return join(parts, ",");
}

std::vector<double> doublesOfCsv(const std::string& s) {
  std::vector<double> out;
  for (const auto& t : splitOn(s, ',')) out.push_back(std::stod(t));
  return out;
}

// ----- Writer ---------------------------------------------------------------

void writeChart(const ChartSpec& c, std::string& out) {
  out += "chart\n";
  out += "  cname " + c.name + "\n";
  for (std::size_t i = 0; i < c.inputNames.size(); ++i) {
    out += "  input " + c.inputNames[i] + " " +
           typeToken(c.inputTypes[i]) + "\n";
  }
  for (const auto& v : c.vars) {
    out += "  lvar " + v.name + " " + scalarToken(v.init) + "\n";
  }
  for (const auto& s : c.states) {
    out += "  state " + s.name + "\n";
  }
  out += "  initial " + std::to_string(c.initialState) + "\n";
  for (std::size_t s = 0; s < c.states.size(); ++s) {
    for (const auto& a : c.states[s].duringActions) {
      out += "  during " + std::to_string(s) + " " +
             std::to_string(a.varIndex) + " " + expr::toSexpr(a.value) +
             "\n";
    }
  }
  for (const auto& t : c.transitions) {
    out += "  transition " + std::to_string(t.from) + " " +
           std::to_string(t.to) + " " + expr::toSexpr(t.guard) + "\n";
    for (const auto& a : t.actions) {
      out += "  taction " + std::to_string(a.varIndex) + " " +
             expr::toSexpr(a.value) + "\n";
    }
    if (!t.label.empty()) out += "  tlabel " + t.label + "\n";
  }
  for (const int v : c.outputVarIndices) {
    out += "  output " + std::to_string(v) + "\n";
  }
  if (c.activeStateOutput) out += "  activeout\n";
  out += "endchart\n";
}

void writeBlockLine(const Model& m, const Block& b, std::string& out) {
  out += "block " + std::string(blockKindName(b.kind)) + " " + b.name +
         " region=" + std::to_string(b.region);
  out += " in=";
  if (b.in.empty()) {
    out += "-";
  } else {
    std::vector<std::string> parts;
    parts.reserve(b.in.size());
    for (const auto& p : b.in) parts.push_back(portToken(p));
    out += join(parts, ",");
  }
  switch (b.kind) {
    case BlockKind::kInport: {
      char buf[96];
      std::snprintf(buf, sizeof(buf), " %s %.17g %.17g",
                    typeToken(b.valueType), b.lo, b.hi);
      out += buf;
      break;
    }
    case BlockKind::kConstant:
      out += " " + scalarToken(b.scalarParam);
      break;
    case BlockKind::kConstantArray: {
      out += " ";
      out += typeToken(b.valueType);
      std::vector<std::string> parts;
      parts.reserve(b.arrayParam.size());
      for (const auto& e : b.arrayParam) parts.push_back(scalarToken(e));
      out += " " + join(parts, ",");
      break;
    }
    case BlockKind::kSum:
    case BlockKind::kProduct:
      out += " " + b.signs;
      break;
    case BlockKind::kGain:
    case BlockKind::kSwitch: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), " %.17g", b.scalarParam.toReal());
      if (b.kind == BlockKind::kSwitch) {
        out += " ";
        out += criteriaToken(b.criteria);
      }
      out += buf;
      break;
    }
    case BlockKind::kMinMax:
      out += b.minMaxOp == MinMaxOp::kMin ? " min" : " max";
      break;
    case BlockKind::kSaturation: {
      char buf[96];
      std::snprintf(buf, sizeof(buf), " %.17g %.17g", b.lo, b.hi);
      out += buf;
      break;
    }
    case BlockKind::kRelational:
      out += " ";
      out += relOpToken(b.relOp);
      break;
    case BlockKind::kLogical:
      out += " ";
      out += logicOpToken(b.logicOp);
      break;
    case BlockKind::kUnitDelay:
      out += " " + scalarToken(b.scalarParam);
      break;
    case BlockKind::kDelayLine:
      out += " " + scalarToken(b.scalarParam) + " " +
             std::to_string(b.intParam);
      break;
    case BlockKind::kDataStoreRead:
    case BlockKind::kDataStoreReadElem:
    case BlockKind::kDataStoreWrite:
    case BlockKind::kDataStoreWriteElem:
      out += " " + std::to_string(b.intParam);
      break;
    case BlockKind::kLookup1D:
      out += " bp=" + csvOfDoubles(b.breakpoints) +
             " vals=" + csvOfDoubles(b.tableValues);
      break;
    case BlockKind::kMerge: {
      std::vector<std::string> parts;
      parts.reserve(b.mergeArms.size());
      for (const auto& [r, p] : b.mergeArms) {
        parts.push_back(std::to_string(r) + "@" + portToken(p));
      }
      out += " arms=" + join(parts, ",") +
             " fallback=" + scalarToken(b.scalarParam);
      break;
    }
    case BlockKind::kChart:
      out += " " + std::to_string(b.chartIndex);
      break;
    default:
      break;  // Outport, Abs, Mod, MultiportSwitch, TestObjective: no params
  }
  out += "\n";
  (void)m;
}

}  // namespace

std::string writeModel(const Model& m) {
  checkName(m.name());
  std::string out = "stcg-model 1\n";
  out += "name " + m.name() + "\n";
  for (const auto& s : m.dataStores()) {
    checkName(s.name);
    out += "datastore " + s.name + " " + typeToken(s.type) + " " +
           std::to_string(s.width) + " " + scalarToken(s.init) + "\n";
  }
  for (const auto& c : m.charts()) writeChart(c, out);

  // Constructs grouped by decision group, in group (== region id) order.
  std::map<int, std::vector<const Region*>> groups;
  for (const auto& r : m.regions()) {
    if (r.kind != RegionKind::kRoot) groups[r.decisionGroup].push_back(&r);
  }
  for (const auto& [group, arms] : groups) {
    (void)group;
    const Region& first = *arms.front();
    checkName(first.name);
    switch (first.kind) {
      case RegionKind::kIfArm: {
        // first.name is "<base>.then"; recover the construct name.
        const std::string base =
            first.name.substr(0, first.name.rfind(".then"));
        out += "construct ifelse " + base + " parent=" +
               std::to_string(first.parent) + " ctrl=" +
               portToken(first.ctrl) + "\n";
        break;
      }
      case RegionKind::kEnabled:
        out += "construct enabled " + first.name + " parent=" +
               std::to_string(first.parent) + " ctrl=" +
               portToken(first.ctrl) + "\n";
        break;
      case RegionKind::kCaseArm: {
        const std::string base =
            first.name.substr(0, first.name.rfind(".case0"));
        std::vector<std::string> caseParts;
        bool hasDefault = false;
        for (const auto* arm : arms) {
          if (arm->kind == RegionKind::kDefaultArm) {
            hasDefault = true;
            continue;
          }
          std::vector<std::string> vals;
          vals.reserve(arm->caseValues.size());
          for (const auto v : arm->caseValues) {
            vals.push_back(std::to_string(v));
          }
          caseParts.push_back(join(vals, ","));
        }
        out += "construct switchcase " + base + " parent=" +
               std::to_string(first.parent) + " ctrl=" +
               portToken(first.ctrl) + " cases=" + join(caseParts, "|") +
               (hasDefault ? " default" : "") + "\n";
        break;
      }
      default:
        throw SerializeError("unexpected leading region kind in group");
    }
  }

  for (const auto& b : m.blocks()) {
    checkName(b.name);
    writeBlockLine(m, b, out);
  }
  return out;
}

// ----- Parser ---------------------------------------------------------------

namespace {

class ModelParser {
 public:
  explicit ModelParser(const std::string& text) {
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      lines_.push_back(line);
    }
  }

  Model parse() {
    expectHeader();
    std::string name = "model";
    if (peekKey() == "name") {
      name = splitWs(next())[1];
    }
    Model m(name);
    while (pos_ < lines_.size()) {
      const std::string key = peekKey();
      if (key == "datastore") {
        parseDataStore(m);
      } else if (key == "chart") {
        parseChart(m);
      } else if (key == "construct") {
        parseConstruct(m);
      } else if (key == "block") {
        parseBlock(m);
      } else {
        throw SerializeError("unexpected line: " + lines_[pos_]);
      }
    }
    return m;
  }

 private:
  std::string peekKey() {
    if (pos_ >= lines_.size()) return "";
    const auto toks = splitWs(lines_[pos_]);
    return toks.empty() ? "" : toks[0];
  }

  const std::string& next() {
    if (pos_ >= lines_.size()) throw SerializeError("unexpected EOF");
    return lines_[pos_++];
  }

  void expectHeader() {
    const auto toks = splitWs(next());
    if (toks.size() < 2 || toks[0] != "stcg-model" || toks[1] != "1") {
      throw SerializeError("missing stcg-model 1 header");
    }
  }

  void parseDataStore(Model& m) {
    const auto t = splitWs(next());
    if (t.size() != 5) throw SerializeError("bad datastore line");
    (void)m.addDataStore(t[1], typeFromToken(t[2]), std::stoi(t[3]),
                         scalarFromToken(t[4]));
  }

  void parseChart(Model& m) {
    (void)next();  // "chart"
    // The builder's name is fixed at construction; read cname first (it is
    // always emitted first by the writer).
    auto toks = splitWs(next());
    if (toks.size() != 2 || toks[0] != "cname") {
      throw SerializeError("chart must begin with cname");
    }
    ChartBuilder builder(m, toks[1]);
    std::unordered_map<std::string, expr::ExprPtr> leaves;
    const expr::VarResolver resolve =
        [&](const std::string& n) -> expr::ExprPtr {
      const auto it = leaves.find(n);
      return it == leaves.end() ? nullptr : it->second;
    };
    int lastTransition = -1;
    std::vector<ChartTransitionSpec> pendingTransitions;

    while (true) {
      const std::string& line = next();
      const auto t = splitWs(line);
      if (t.empty()) continue;
      if (t[0] == "endchart") break;
      if (t[0] == "input") {
        leaves[toks[1] + "." + t[1]] =
            builder.input(t[1], typeFromToken(t[2]));
      } else if (t[0] == "lvar") {
        const int idx = builder.addVar(t[1], scalarFromToken(t[2]));
        leaves[toks[1] + "." + t[1]] = builder.varRef(idx);
      } else if (t[0] == "state") {
        (void)builder.addState(t[1]);
      } else if (t[0] == "initial") {
        builder.setInitialState(std::stoi(t[1]));
      } else if (t[0] == "during") {
        builder.addDuring(std::stoi(t[1]), std::stoi(t[2]),
                          expr::parseSexpr(restAfterTokens(line, 3),
                                           resolve));
      } else if (t[0] == "transition") {
        ChartTransitionSpec tr;
        tr.from = std::stoi(t[1]);
        tr.to = std::stoi(t[2]);
        tr.guard = expr::parseSexpr(restAfterTokens(line, 3), resolve);
        pendingTransitions.push_back(std::move(tr));
        lastTransition = static_cast<int>(pendingTransitions.size()) - 1;
      } else if (t[0] == "taction") {
        if (lastTransition < 0) throw SerializeError("taction before transition");
        pendingTransitions[static_cast<std::size_t>(lastTransition)]
            .actions.push_back(ChartAssign{
                std::stoi(t[1]),
                expr::parseSexpr(restAfterTokens(line, 2), resolve)});
      } else if (t[0] == "tlabel") {
        if (lastTransition < 0) throw SerializeError("tlabel before transition");
        pendingTransitions[static_cast<std::size_t>(lastTransition)].label =
            restAfterTokens(line, 1);
      } else if (t[0] == "output") {
        builder.exposeOutput(std::stoi(t[1]));
      } else if (t[0] == "activeout") {
        builder.exposeActiveState();
      } else {
        throw SerializeError("bad chart line: " + line);
      }
    }
    for (auto& tr : pendingTransitions) {
      builder.addTransition(tr.from, tr.to, tr.guard, std::move(tr.actions),
                            std::move(tr.label));
    }
    charts_.push_back(builder.build());
  }

  std::unordered_map<std::string, std::string> kvOf(
      const std::vector<std::string>& toks, std::size_t from) {
    std::unordered_map<std::string, std::string> kv;
    for (std::size_t i = from; i < toks.size(); ++i) {
      const auto eq = toks[i].find('=');
      if (eq == std::string::npos) {
        kv[toks[i]] = "";
      } else {
        kv[toks[i].substr(0, eq)] = toks[i].substr(eq + 1);
      }
    }
    return kv;
  }

  void parseConstruct(Model& m) {
    const std::string line = next();
    const auto t = splitWs(line);
    if (t.size() < 3) throw SerializeError("bad construct line");
    const auto kv = kvOf(t, 3);
    const RegionId parent =
        static_cast<RegionId>(std::stoi(kv.at("parent")));
    const PortRef ctrl = portFromToken(kv.at("ctrl"));
    m.pushRegion(parent == kRootRegion ? kRootRegion : parent);
    if (t[1] == "ifelse") {
      (void)m.addIfElse(t[2], ctrl);
    } else if (t[1] == "enabled") {
      (void)m.addEnabled(t[2], ctrl);
    } else if (t[1] == "switchcase") {
      std::vector<std::vector<std::int64_t>> cases;
      for (const auto& grp : splitOn(kv.at("cases"), '|')) {
        std::vector<std::int64_t> vals;
        for (const auto& v : splitOn(grp, ',')) vals.push_back(std::stoll(v));
        cases.push_back(std::move(vals));
      }
      (void)m.addSwitchCase(t[2], ctrl, cases, kv.count("default") > 0);
    } else {
      throw SerializeError("bad construct kind: " + t[1]);
    }
    m.popRegion();
  }

  std::vector<PortRef> portsOf(const std::string& s) {
    std::vector<PortRef> out;
    if (s == "-") return out;
    for (const auto& t : splitOn(s, ',')) out.push_back(portFromToken(t));
    return out;
  }

  void parseBlock(Model& m) {
    const std::string line = next();
    const auto t = splitWs(line);
    if (t.size() < 5) throw SerializeError("bad block line: " + line);
    const std::string kind = t[1];
    const std::string name = t[2];
    const auto kv = kvOf(t, 3);
    const RegionId region =
        static_cast<RegionId>(std::stoi(kv.at("region")));
    const auto in = portsOf(kv.at("in"));
    const auto param = [&](std::size_t i) -> const std::string& {
      if (5 + i >= t.size()) throw SerializeError("missing param: " + line);
      return t[5 + i];
    };

    m.pushRegion(region);
    if (kind == "Inport") {
      (void)m.addInport(name, typeFromToken(param(0)), std::stod(param(1)),
                        std::stod(param(2)));
    } else if (kind == "Outport") {
      m.addOutport(name, in.at(0));
    } else if (kind == "Constant") {
      (void)m.addConstant(name, scalarFromToken(param(0)));
    } else if (kind == "ConstantArray") {
      std::vector<Scalar> elems;
      for (const auto& e : splitOn(param(1), ',')) {
        elems.push_back(scalarFromToken(e));
      }
      (void)m.addConstantArray(name, typeFromToken(param(0)),
                               std::move(elems));
    } else if (kind == "Sum") {
      (void)m.addSum(name, in, param(0));
    } else if (kind == "Product") {
      (void)m.addProduct(name, in, param(0));
    } else if (kind == "Gain") {
      (void)m.addGain(name, in.at(0), std::stod(param(0)));
    } else if (kind == "Abs") {
      (void)m.addAbs(name, in.at(0));
    } else if (kind == "Mod") {
      (void)m.addMod(name, in.at(0), in.at(1));
    } else if (kind == "MinMax") {
      (void)m.addMinMax(name,
                        param(0) == "min" ? MinMaxOp::kMin : MinMaxOp::kMax,
                        in.at(0), in.at(1));
    } else if (kind == "Saturation") {
      (void)m.addSaturation(name, in.at(0), std::stod(param(0)),
                            std::stod(param(1)));
    } else if (kind == "Relational") {
      (void)m.addRelational(name, relOpFromToken(param(0)), in.at(0),
                            in.at(1));
    } else if (kind == "Logical") {
      (void)m.addLogical(name, logicOpFromToken(param(0)), in);
    } else if (kind == "Switch") {
      (void)m.addSwitch(name, in.at(0), in.at(1), in.at(2),
                        criteriaFromToken(param(0)), std::stod(param(1)));
    } else if (kind == "MultiportSwitch") {
      std::vector<PortRef> data(in.begin() + 1, in.end());
      (void)m.addMultiportSwitch(name, in.at(0), data);
    } else if (kind == "UnitDelay") {
      if (in.empty()) {
        (void)m.addUnitDelayHole(name, scalarFromToken(param(0)));
      } else {
        (void)m.addUnitDelay(name, in.at(0), scalarFromToken(param(0)));
      }
    } else if (kind == "DelayLine") {
      (void)m.addDelayLine(name, in.at(0), std::stoi(param(1)),
                           scalarFromToken(param(0)));
    } else if (kind == "DataStoreRead") {
      (void)m.addDataStoreRead(name, std::stoi(param(0)));
    } else if (kind == "DataStoreReadElem") {
      (void)m.addDataStoreReadElem(name, std::stoi(param(0)), in.at(0));
    } else if (kind == "DataStoreWrite") {
      m.addDataStoreWrite(name, std::stoi(param(0)), in.at(0));
    } else if (kind == "DataStoreWriteElem") {
      m.addDataStoreWriteElem(name, std::stoi(param(0)), in.at(0), in.at(1));
    } else if (kind == "Lookup1D") {
      (void)m.addLookup1D(name, in.at(0),
                          doublesOfCsv(kv.at("bp")),
                          doublesOfCsv(kv.at("vals")));
    } else if (kind == "Merge") {
      std::vector<std::pair<RegionId, PortRef>> arms;
      for (const auto& a : splitOn(kv.at("arms"), ',')) {
        const auto at = a.find('@');
        if (at == std::string::npos) throw SerializeError("bad merge arm");
        arms.emplace_back(static_cast<RegionId>(std::stoi(a.substr(0, at))),
                          portFromToken(a.substr(at + 1)));
      }
      (void)m.addMerge(name, std::move(arms),
                       scalarFromToken(kv.at("fallback")));
    } else if (kind == "Chart") {
      const int idx = std::stoi(param(0));
      (void)m.addChart(name, charts_.at(static_cast<std::size_t>(idx)), in);
    } else if (kind == "TestObjective") {
      m.addTestObjective(name, in.at(0));
    } else {
      m.popRegion();
      throw SerializeError("unknown block kind: " + kind);
    }
    m.popRegion();
  }

  std::vector<std::string> lines_;
  std::size_t pos_ = 0;
  std::vector<ChartSpec> charts_;
};

}  // namespace

Model parseModel(const std::string& text) {
  ModelParser p(text);
  return p.parse();
}

bool saveModel(const std::string& path, const Model& m) {
  std::ofstream f(path);
  if (!f) return false;
  f << writeModel(m);
  return static_cast<bool>(f);
}

Model loadModel(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw SerializeError("cannot read " + path);
  std::stringstream ss;
  ss << f.rdbuf();
  return parseModel(ss.str());
}

}  // namespace stcg::model
