#include "compile/model_tape.h"

#include "expr/tape_passes.h"
#include "expr/tape_verify.h"

namespace stcg::compile {

ModelTape buildModelTape(const CompiledModel& cm, bool wantJit) {
  expr::TapeBuilder b;
  ModelTape mt;

  mt.decisionActivations.reserve(cm.decisions.size());
  mt.decisionArms.reserve(cm.decisions.size());
  mt.decisionConditions.reserve(cm.decisions.size());
  for (const auto& d : cm.decisions) {
    mt.decisionActivations.push_back(b.addRoot(d.activation));
    auto& arms = mt.decisionArms.emplace_back();
    arms.reserve(d.armConds.size());
    for (const auto& c : d.armConds) arms.push_back(b.addRoot(c));
    auto& conds = mt.decisionConditions.emplace_back();
    conds.reserve(d.conditions.size());
    for (const auto& c : d.conditions) conds.push_back(b.addRoot(c));
  }

  mt.objectiveActivations.reserve(cm.objectives.size());
  mt.objectiveConds.reserve(cm.objectives.size());
  for (const auto& obj : cm.objectives) {
    mt.objectiveActivations.push_back(b.addRoot(obj.activation));
    mt.objectiveConds.push_back(b.addRoot(obj.cond));
  }

  mt.outputs.reserve(cm.outputs.size());
  for (const auto& [name, e] : cm.outputs) {
    (void)name;
    mt.outputs.push_back(b.addRoot(e));
  }

  mt.stateNext.reserve(cm.states.size());
  for (const auto& sv : cm.states) mt.stateNext.push_back(b.addRoot(sv.next));

  mt.rawTape = b.finish();
  expr::maybeRequireVerifiedTape(*mt.rawTape, "buildModelTape(raw)");

  if (expr::tapeOptEnabled()) {
    expr::OptimizedTape opt = expr::optimizeTape(mt.rawTape);
    expr::maybeRequireVerifiedTape(*opt.tape, "buildModelTape(optimized)");
    mt.tape = std::move(opt.tape);
    mt.passStats = opt.stats;
    const auto remapAll = [&](std::vector<expr::SlotRef>& refs) {
      for (expr::SlotRef& r : refs) r = opt.remap(r);
    };
    remapAll(mt.decisionActivations);
    for (auto& arms : mt.decisionArms) remapAll(arms);
    for (auto& conds : mt.decisionConditions) remapAll(conds);
    remapAll(mt.objectiveActivations);
    remapAll(mt.objectiveConds);
    remapAll(mt.outputs);
    remapAll(mt.stateNext);
  } else {
    mt.tape = mt.rawTape;
    mt.passStats.instrsBefore = mt.passStats.instrsAfter =
        mt.rawTape->code().size();
    mt.passStats.scalarSlotsBefore = mt.passStats.scalarSlotsAfter =
        mt.rawTape->scalarSlotCount();
    mt.passStats.arraySlotsBefore = mt.passStats.arraySlotsAfter =
        mt.rawTape->arraySlotCount();
  }

  if (wantJit) {
    mt.jit = expr::TapeJit::compile(mt.tape, expr::TapeJit::Options{},
                                    &mt.jitError);
  }
  return mt;
}

}  // namespace stcg::compile
