#include "compile/compiler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "expr/atoms.h"
#include "expr/builder.h"
#include "expr/subst.h"
#include "util/strings.h"

namespace stcg::compile {

using expr::castE;
using expr::cBool;
using expr::cInt;
using expr::cReal;
using expr::cScalar;
using expr::ExprPtr;
using expr::Scalar;
using expr::Type;
using model::Block;
using model::BlockId;
using model::BlockKind;
using model::Model;
using model::PortRef;
using model::Region;
using model::RegionId;
using model::RegionKind;
using model::RelOp;
using model::SwitchCriteria;

namespace {

ExprPtr applyRelOp(RelOp op, ExprPtr a, ExprPtr b) {
  switch (op) {
    case RelOp::kLt: return expr::ltE(std::move(a), std::move(b));
    case RelOp::kLe: return expr::leE(std::move(a), std::move(b));
    case RelOp::kGt: return expr::gtE(std::move(a), std::move(b));
    case RelOp::kGe: return expr::geE(std::move(a), std::move(b));
    case RelOp::kEq: return expr::eqE(std::move(a), std::move(b));
    case RelOp::kNe: return expr::neE(std::move(a), std::move(b));
  }
  return nullptr;
}

/// Pending non-region decision gathered during block compilation.
struct PendingDecision {
  DecisionKind kind;
  std::string name;
  RegionId region;
  std::vector<ExprPtr> armConds;
  std::vector<std::string> armLabels;
  std::vector<ExprPtr> conditions;
  ExprPtr extraActivation;  // chart transitions: active==src ∧ ¬priors
};

class Compiler {
 public:
  explicit Compiler(const Model& m) : m_(m), nextId_(m.varIdWatermark()) {}

  CompiledModel run() {
    const auto problems = m_.validate();
    if (!problems.empty()) {
      throw CompileError("model '" + m_.name() +
                         "' failed validation: " + join(problems, "; "));
    }
    allocateInputs();
    allocateState();
    computeTopoOrder();
    compileBlocks();
    finalizeStateNexts();
    buildRegionDecisions();
    materializePendingDecisions();
    out_.name = m_.name();
    out_.blockCount = static_cast<int>(m_.blocks().size());
    return std::move(out_);
  }

 private:
  expr::VarId freshId() { return nextId_++; }

  // --- Setup -------------------------------------------------------------

  void allocateInputs() {
    for (const auto& b : m_.blocks()) {
      if (b.kind != BlockKind::kInport) continue;
      InputVar iv;
      iv.info.id = freshId();
      iv.info.name = b.name;
      iv.info.type = b.valueType;
      iv.info.lo = b.lo;
      iv.info.hi = b.hi;
      iv.leaf = expr::mkVar(iv.info);
      inportVar_[b.id] = static_cast<int>(out_.inputs.size());
      out_.inputs.push_back(std::move(iv));
    }
  }

  int addStateVar(const std::string& name, Type type, int width,
                  expr::Value init) {
    StateVar sv;
    sv.id = freshId();
    sv.name = name;
    sv.type = type;
    sv.width = width;
    sv.init = std::move(init);
    sv.leaf = width == 1 ? expr::mkVar(expr::VarInfo{sv.id, name, type, -1e18,
                                                     1e18})
                         : expr::mkVarArray(sv.id, name, type, width);
    sv.next = sv.leaf;  // default: hold
    out_.states.push_back(std::move(sv));
    return static_cast<int>(out_.states.size()) - 1;
  }

  void allocateState() {
    // Data stores first (model-level), then block state in id order.
    for (const auto& s : m_.dataStores()) {
      const auto init = s.width == 1
                            ? expr::Value(s.init)
                            : expr::Value::splat(s.init, s.width);
      storeState_[s.index] =
          addStateVar(m_.name() + "/" + s.name, s.type, s.width, init);
    }
    for (const auto& b : m_.blocks()) {
      switch (b.kind) {
        case BlockKind::kUnitDelay:
          blockState_[b.id] = addStateVar(
              m_.name() + "/" + b.name, b.scalarParam.type(), 1,
              expr::Value(b.scalarParam));
          break;
        case BlockKind::kDelayLine:
          blockState_[b.id] = addStateVar(
              m_.name() + "/" + b.name, b.scalarParam.type(), b.intParam,
              expr::Value::splat(b.scalarParam, b.intParam));
          break;
        case BlockKind::kChart: {
          const auto& spec =
              m_.charts()[static_cast<std::size_t>(b.chartIndex)];
          ChartState cs;
          cs.active = addStateVar(m_.name() + "/" + b.name + ".active",
                                  Type::kInt, 1,
                                  expr::Value(Scalar::i(spec.initialState)));
          for (const auto& v : spec.vars) {
            cs.vars.push_back(addStateVar(
                m_.name() + "/" + b.name + "." + v.name, v.type, 1,
                expr::Value(v.init)));
          }
          chartState_[b.id] = std::move(cs);
          break;
        }
        default:
          break;
      }
    }
  }

  // --- Topological order ---------------------------------------------------

  [[nodiscard]] bool breaksCycle(BlockKind k) const {
    return k == BlockKind::kUnitDelay || k == BlockKind::kDelayLine;
  }

  void computeTopoOrder() {
    const auto& blocks = m_.blocks();
    const std::size_t n = blocks.size();
    std::vector<std::vector<BlockId>> succ(n);
    std::vector<int> indeg(n, 0);
    const auto addEdge = [&](BlockId from, BlockId to) {
      // A self-edge is a direct algebraic loop; keeping it makes Kahn's
      // algorithm report the cycle instead of silently dropping it.
      succ[static_cast<std::size_t>(from)].push_back(to);
      ++indeg[static_cast<std::size_t>(to)];
    };
    const auto addRegionCtrlEdges = [&](RegionId r, BlockId to) {
      // (region ctrl signals live in ancestor regions, so from != to here)
      for (RegionId cur = r; cur != model::kRootRegion;
           cur = m_.region(cur).parent) {
        const Region& reg = m_.region(cur);
        if (reg.ctrl.valid()) addEdge(reg.ctrl.block, to);
      }
    };
    for (const auto& b : blocks) {
      for (const auto& p : b.in) {
        const Block& src = m_.block(p.block);
        if (!breaksCycle(src.kind)) addEdge(p.block, b.id);
      }
      // A block needs its whole region-guard chain resolved first.
      addRegionCtrlEdges(b.region, b.id);
      if (b.kind == BlockKind::kMerge) {
        for (const auto& [armRegion, port] : b.mergeArms) {
          (void)port;
          addRegionCtrlEdges(armRegion, b.id);
        }
      }
    }
    std::deque<BlockId> ready;
    for (std::size_t i = 0; i < n; ++i) {
      if (indeg[i] == 0) ready.push_back(static_cast<BlockId>(i));
    }
    // Kahn's algorithm; the ready set is kept sorted by id for stability.
    while (!ready.empty()) {
      std::sort(ready.begin(), ready.end());
      const BlockId b = ready.front();
      ready.pop_front();
      topo_.push_back(b);
      for (const BlockId s : succ[static_cast<std::size_t>(b)]) {
        if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
      }
    }
    if (topo_.size() != n) {
      throw CompileError("model '" + m_.name() +
                         "' contains an algebraic loop (insert a UnitDelay "
                         "to break feedback)");
    }
  }

  // --- Region guards -------------------------------------------------------

  ExprPtr guardOf(RegionId r) {
    if (auto it = guard_.find(r); it != guard_.end()) return it->second;
    const Region& reg = m_.region(r);
    ExprPtr g;
    switch (reg.kind) {
      case RegionKind::kRoot:
        g = cBool(true);
        break;
      case RegionKind::kIfArm:
      case RegionKind::kEnabled:
        g = castE(portExpr(reg.ctrl), Type::kBool);
        break;
      case RegionKind::kElseArm:
        g = expr::notE(castE(portExpr(reg.ctrl), Type::kBool));
        break;
      case RegionKind::kCaseArm: {
        std::vector<ExprPtr> eqs;
        eqs.reserve(reg.caseValues.size());
        for (const auto v : reg.caseValues) {
          eqs.push_back(expr::eqE(portExpr(reg.ctrl), cInt(v)));
        }
        g = expr::orAll(eqs);
        break;
      }
      case RegionKind::kDefaultArm: {
        std::vector<ExprPtr> nes;
        nes.reserve(reg.caseValues.size());
        for (const auto v : reg.caseValues) {
          nes.push_back(expr::neE(portExpr(reg.ctrl), cInt(v)));
        }
        g = expr::andAll(nes);
        break;
      }
    }
    guard_.emplace(r, g);
    return g;
  }

  ExprPtr activationOf(RegionId r) {
    if (auto it = activation_.find(r); it != activation_.end()) {
      return it->second;
    }
    const Region& reg = m_.region(r);
    ExprPtr a = reg.kind == RegionKind::kRoot
                    ? cBool(true)
                    : expr::andE(activationOf(reg.parent), guardOf(r));
    activation_.emplace(r, a);
    return a;
  }

  // --- Block compilation -----------------------------------------------------

  ExprPtr portExpr(PortRef p) const {
    const auto it = outExprs_.find(p.block);
    assert(it != outExprs_.end() && "use-before-def in topological order");
    return it->second.at(static_cast<std::size_t>(p.port));
  }

  void compileBlocks() {
    // Data stores start at their leaves; writes thread new expressions.
    for (const auto& s : m_.dataStores()) {
      storeCur_[s.index] = out_.states[static_cast<std::size_t>(
                                           storeState_[s.index])]
                               .leaf;
    }
    // Delay outputs are pure functions of state, so consumers may be
    // ordered before the delay block itself; publish them up front.
    for (const auto& b : m_.blocks()) {
      if (b.kind == BlockKind::kUnitDelay) {
        outExprs_[b.id] = {
            out_.states[static_cast<std::size_t>(blockState_[b.id])].leaf};
      } else if (b.kind == BlockKind::kDelayLine) {
        const StateVar& s =
            out_.states[static_cast<std::size_t>(blockState_[b.id])];
        outExprs_[b.id] = {expr::selectE(s.leaf, cInt(s.width - 1))};
      }
    }
    for (const BlockId id : topo_) {
      compileBlock(m_.block(id));
    }
    // Whatever each store expression accumulated becomes its next state.
    for (const auto& [idx, cur] : storeCur_) {
      out_.states[static_cast<std::size_t>(storeState_[idx])].next = cur;
    }
  }

  void compileBlock(const Block& b) {
    std::vector<ExprPtr> outs;
    switch (b.kind) {
      case BlockKind::kInport:
        outs = {out_.inputs[static_cast<std::size_t>(inportVar_[b.id])].leaf};
        break;
      case BlockKind::kOutport:
        out_.outputs.emplace_back(b.name, portExpr(b.in[0]));
        break;
      case BlockKind::kConstant:
        outs = {cScalar(b.scalarParam)};
        break;
      case BlockKind::kConstantArray:
        outs = {expr::cArray(b.valueType, b.arrayParam)};
        break;
      case BlockKind::kSum: {
        ExprPtr acc = b.signs[0] == '-' ? expr::negE(portExpr(b.in[0]))
                                        : portExpr(b.in[0]);
        for (std::size_t i = 1; i < b.in.size(); ++i) {
          acc = b.signs[i] == '-' ? expr::subE(acc, portExpr(b.in[i]))
                                  : expr::addE(acc, portExpr(b.in[i]));
        }
        outs = {acc};
        break;
      }
      case BlockKind::kGain:
        outs = {expr::mulE(portExpr(b.in[0]), cReal(b.scalarParam.toReal()))};
        break;
      case BlockKind::kProduct: {
        ExprPtr acc = b.signs[0] == '/'
                          ? expr::divE(cReal(1.0), portExpr(b.in[0]))
                          : portExpr(b.in[0]);
        for (std::size_t i = 1; i < b.in.size(); ++i) {
          acc = b.signs[i] == '/' ? expr::divE(acc, portExpr(b.in[i]))
                                  : expr::mulE(acc, portExpr(b.in[i]));
        }
        outs = {acc};
        break;
      }
      case BlockKind::kAbs:
        outs = {expr::absE(portExpr(b.in[0]))};
        break;
      case BlockKind::kMod:
        outs = {expr::modE(portExpr(b.in[0]), portExpr(b.in[1]))};
        break;
      case BlockKind::kMinMax: {
        auto a = portExpr(b.in[0]);
        auto c = portExpr(b.in[1]);
        outs = {b.minMaxOp == model::MinMaxOp::kMin ? expr::minE(a, c)
                                                    : expr::maxE(a, c)};
        break;
      }
      case BlockKind::kSaturation: {
        ExprPtr in = portExpr(b.in[0]);
        const bool integral = in->type == Type::kInt &&
                              b.lo == std::floor(b.lo) &&
                              b.hi == std::floor(b.hi);
        ExprPtr lo = integral ? cInt(static_cast<std::int64_t>(b.lo))
                              : cReal(b.lo);
        ExprPtr hi = integral ? cInt(static_cast<std::int64_t>(b.hi))
                              : cReal(b.hi);
        outs = {expr::minE(expr::maxE(in, lo), hi)};
        break;
      }
      case BlockKind::kRelational:
        outs = {applyRelOp(b.relOp, portExpr(b.in[0]), portExpr(b.in[1]))};
        break;
      case BlockKind::kLogical: {
        using model::LogicOp;
        if (b.logicOp == LogicOp::kNot) {
          outs = {expr::notE(castE(portExpr(b.in[0]), Type::kBool))};
          break;
        }
        ExprPtr acc = castE(portExpr(b.in[0]), Type::kBool);
        for (std::size_t i = 1; i < b.in.size(); ++i) {
          ExprPtr rhs = castE(portExpr(b.in[i]), Type::kBool);
          switch (b.logicOp) {
            case LogicOp::kAnd:
            case LogicOp::kNand:
              acc = expr::andE(acc, rhs);
              break;
            case LogicOp::kOr:
            case LogicOp::kNor:
              acc = expr::orE(acc, rhs);
              break;
            case LogicOp::kXor:
              acc = expr::xorE(acc, rhs);
              break;
            default:
              break;
          }
        }
        if (b.logicOp == LogicOp::kNand || b.logicOp == LogicOp::kNor) {
          acc = expr::notE(acc);
        }
        outs = {acc};
        break;
      }
      case BlockKind::kSwitch: {
        ExprPtr ctrl = portExpr(b.in[1]);
        ExprPtr cond;
        switch (b.criteria) {
          case SwitchCriteria::kGreaterThan:
            cond = expr::gtE(ctrl, cReal(b.scalarParam.toReal()));
            break;
          case SwitchCriteria::kGreaterEqual:
            cond = expr::geE(ctrl, cReal(b.scalarParam.toReal()));
            break;
          case SwitchCriteria::kNotZero:
            cond = castE(ctrl, Type::kBool);
            break;
        }
        outs = {expr::iteE(cond, portExpr(b.in[0]), portExpr(b.in[2]))};
        PendingDecision d;
        d.kind = DecisionKind::kSwitch;
        d.name = m_.name() + "/" + b.name;
        d.region = b.region;
        d.armConds = {cond, expr::notE(cond)};
        d.armLabels = {"true", "false"};
        d.conditions = expr::extractAtoms(cond);
        pending_.push_back(std::move(d));
        break;
      }
      case BlockKind::kMultiportSwitch: {
        ExprPtr ctrl = castE(portExpr(b.in[0]), Type::kInt);
        const int nData = static_cast<int>(b.in.size()) - 1;
        ExprPtr acc = portExpr(b.in[static_cast<std::size_t>(nData)]);
        PendingDecision d;
        d.kind = DecisionKind::kMultiportSwitch;
        d.name = m_.name() + "/" + b.name;
        d.region = b.region;
        std::vector<ExprPtr> nes;
        for (int i = nData - 2; i >= 0; --i) {
          ExprPtr eq = expr::eqE(ctrl, cInt(i));
          acc = expr::iteE(eq, portExpr(b.in[static_cast<std::size_t>(i + 1)]),
                           acc);
        }
        for (int i = 0; i < nData - 1; ++i) {
          ExprPtr eq = expr::eqE(ctrl, cInt(i));
          d.armConds.push_back(eq);
          d.armLabels.push_back("port" + std::to_string(i));
          d.conditions.push_back(eq);
          nes.push_back(expr::neE(ctrl, cInt(i)));
        }
        d.armConds.push_back(expr::andAll(nes));
        d.armLabels.push_back("port" + std::to_string(nData - 1) +
                              "(default)");
        outs = {acc};
        pending_.push_back(std::move(d));
        break;
      }
      case BlockKind::kUnitDelay: {
        // The delay's input may be compiled later (it breaks cycles), so
        // resolving the update expression is deferred to finalize.
        const int sv = blockState_[b.id];
        outs = {out_.states[static_cast<std::size_t>(sv)].leaf};
        DeferredUpdate u;
        u.stateIndex = sv;
        u.region = b.region;
        u.kind = DeferredUpdate::Kind::kDelay;
        u.pendingInput = b.in[0];
        deferred_.push_back(std::move(u));
        break;
      }
      case BlockKind::kDelayLine: {
        const int sv = blockState_[b.id];
        const StateVar& s = out_.states[static_cast<std::size_t>(sv)];
        outs = {expr::selectE(s.leaf, cInt(s.width - 1))};
        DeferredUpdate u;
        u.stateIndex = sv;
        u.region = b.region;
        u.kind = DeferredUpdate::Kind::kDelayLine;
        u.pendingInput = b.in[0];
        deferred_.push_back(std::move(u));
        break;
      }
      case BlockKind::kDataStoreRead:
        outs = {storeCur_.at(b.intParam)};
        break;
      case BlockKind::kDataStoreReadElem: {
        ExprPtr cur = storeCur_.at(b.intParam);
        if (!cur->isArray()) {
          throw CompileError("DataStoreReadElem '" + b.name +
                             "' on scalar store");
        }
        outs = {expr::selectE(cur, portExpr(b.in[0]))};
        break;
      }
      case BlockKind::kDataStoreWrite: {
        ExprPtr cur = storeCur_.at(b.intParam);
        if (cur->isArray()) {
          throw CompileError("DataStoreWrite '" + b.name +
                             "' on array store (use WriteElem)");
        }
        ExprPtr val = castE(portExpr(b.in[0]), cur->type);
        storeCur_[b.intParam] =
            expr::iteE(activationOf(b.region), val, cur);
        break;
      }
      case BlockKind::kDataStoreWriteElem: {
        ExprPtr cur = storeCur_.at(b.intParam);
        if (!cur->isArray()) {
          throw CompileError("DataStoreWriteElem '" + b.name +
                             "' on scalar store");
        }
        ExprPtr written =
            expr::storeE(cur, portExpr(b.in[0]), portExpr(b.in[1]));
        storeCur_[b.intParam] =
            expr::iteE(activationOf(b.region), written, cur);
        break;
      }
      case BlockKind::kLookup1D: {
        ExprPtr x = castE(portExpr(b.in[0]), Type::kReal);
        const auto& bp = b.breakpoints;
        const auto& tv = b.tableValues;
        const std::size_t n = bp.size();
        ExprPtr acc = cReal(tv[n - 1]);
        for (std::size_t i = n - 1; i >= 1; --i) {
          const double x0 = bp[i - 1], x1 = bp[i];
          const double y0 = tv[i - 1], y1 = tv[i];
          const double slope = (y1 - y0) / (x1 - x0);
          ExprPtr seg = expr::addE(
              cReal(y0),
              expr::mulE(expr::subE(x, cReal(x0)), cReal(slope)));
          acc = expr::iteE(expr::ltE(x, cReal(x1)), seg, acc);
        }
        acc = expr::iteE(expr::leE(x, cReal(bp[0])), cReal(tv[0]), acc);
        outs = {acc};
        break;
      }
      case BlockKind::kMerge: {
        ExprPtr acc = cScalar(b.scalarParam);
        for (auto it = b.mergeArms.rbegin(); it != b.mergeArms.rend(); ++it) {
          acc = expr::iteE(activationOf(it->first), portExpr(it->second), acc);
        }
        outs = {acc};
        break;
      }
      case BlockKind::kChart:
        outs = compileChart(b);
        break;
      case BlockKind::kTestObjective: {
        Objective obj;
        obj.id = static_cast<int>(out_.objectives.size());
        obj.name = m_.name() + "/" + b.name;
        obj.activation = activationOf(b.region);
        obj.cond = castE(portExpr(b.in[0]), Type::kBool);
        out_.objectives.push_back(std::move(obj));
        break;
      }
    }
    outExprs_[b.id] = std::move(outs);
  }

  std::vector<ExprPtr> compileChart(const Block& b) {
    const auto& spec = m_.charts()[static_cast<std::size_t>(b.chartIndex)];
    const ChartState& cs = chartState_.at(b.id);
    const StateVar& activeSv =
        out_.states[static_cast<std::size_t>(cs.active)];
    const ExprPtr activeLeaf = activeSv.leaf;

    // Template leaf -> actual expression mapping.
    std::unordered_map<expr::VarId, ExprPtr> tmap;
    for (std::size_t i = 0; i < spec.inputTemplateIds.size(); ++i) {
      tmap[spec.inputTemplateIds[i]] = portExpr(b.in[i]);
    }
    for (std::size_t v = 0; v < spec.vars.size(); ++v) {
      tmap[spec.vars[v].templateId] =
          out_.states[static_cast<std::size_t>(cs.vars[v])].leaf;
    }

    const int numStates = static_cast<int>(spec.states.size());
    const int numVars = static_cast<int>(spec.vars.size());

    // Transitions grouped by source state, in declaration (priority) order.
    std::vector<std::vector<std::size_t>> bySrc(
        static_cast<std::size_t>(numStates));
    for (std::size_t t = 0; t < spec.transitions.size(); ++t) {
      bySrc[static_cast<std::size_t>(spec.transitions[t].from)].push_back(t);
    }

    std::vector<ExprPtr> guards(spec.transitions.size());
    for (std::size_t t = 0; t < spec.transitions.size(); ++t) {
      guards[t] = castE(expr::substituteExprs(spec.transitions[t].guard, tmap),
                        Type::kBool);
    }

    // Per-state next-active and next-var expressions.
    ExprPtr nextActive = activeLeaf;
    std::vector<ExprPtr> nextVars(static_cast<std::size_t>(numVars));
    for (int v = 0; v < numVars; ++v) {
      nextVars[static_cast<std::size_t>(v)] =
          out_.states[static_cast<std::size_t>(
                          cs.vars[static_cast<std::size_t>(v)])]
              .leaf;
    }
    for (int s = numStates - 1; s >= 0; --s) {
      const auto& stateSpec = spec.states[static_cast<std::size_t>(s)];
      // Defaults when no transition fires: during-actions (or hold).
      ExprPtr stActive = cInt(s);
      std::vector<ExprPtr> stVars(static_cast<std::size_t>(numVars));
      for (int v = 0; v < numVars; ++v) {
        stVars[static_cast<std::size_t>(v)] =
            out_.states[static_cast<std::size_t>(
                            cs.vars[static_cast<std::size_t>(v)])]
                .leaf;
      }
      for (const auto& a : stateSpec.duringActions) {
        stVars[static_cast<std::size_t>(a.varIndex)] =
            expr::substituteExprs(a.value, tmap);
      }
      // Fold transitions in reverse so the first declared has priority.
      const auto& ts = bySrc[static_cast<std::size_t>(s)];
      for (auto it = ts.rbegin(); it != ts.rend(); ++it) {
        const auto& tr = spec.transitions[*it];
        const ExprPtr g = guards[*it];
        ExprPtr trActive = cInt(tr.to);
        std::vector<ExprPtr> trVars(static_cast<std::size_t>(numVars));
        for (int v = 0; v < numVars; ++v) {
          trVars[static_cast<std::size_t>(v)] =
              out_.states[static_cast<std::size_t>(
                              cs.vars[static_cast<std::size_t>(v)])]
                  .leaf;
        }
        for (const auto& a : tr.actions) {
          trVars[static_cast<std::size_t>(a.varIndex)] =
              expr::substituteExprs(a.value, tmap);
        }
        stActive = expr::iteE(g, trActive, stActive);
        for (int v = 0; v < numVars; ++v) {
          stVars[static_cast<std::size_t>(v)] =
              expr::iteE(g, trVars[static_cast<std::size_t>(v)],
                         stVars[static_cast<std::size_t>(v)]);
        }
      }
      const ExprPtr here = expr::eqE(activeLeaf, cInt(s));
      nextActive = expr::iteE(here, stActive, nextActive);
      for (int v = 0; v < numVars; ++v) {
        nextVars[static_cast<std::size_t>(v)] =
            expr::iteE(here, stVars[static_cast<std::size_t>(v)],
                       nextVars[static_cast<std::size_t>(v)]);
      }
    }

    // Gate by the chart's region activation and commit next-state.
    const ExprPtr act = activationOf(b.region);
    DeferredUpdate ua;
    ua.stateIndex = cs.active;
    ua.region = b.region;
    ua.computed = nextActive;
    deferred_.push_back(ua);
    for (int v = 0; v < numVars; ++v) {
      DeferredUpdate uv;
      uv.stateIndex = cs.vars[static_cast<std::size_t>(v)];
      uv.region = b.region;
      uv.computed = nextVars[static_cast<std::size_t>(v)];
      deferred_.push_back(uv);
    }

    // Transition decisions, in declaration order per source state.
    for (int s = 0; s < numStates; ++s) {
      ExprPtr priorsFalse = cBool(true);
      for (const auto t : bySrc[static_cast<std::size_t>(s)]) {
        const auto& tr = spec.transitions[t];
        PendingDecision d;
        d.kind = DecisionKind::kChartTransition;
        d.name = m_.name() + "/" + b.name + "." + tr.label;
        d.region = b.region;
        d.extraActivation =
            expr::andE(expr::eqE(activeLeaf, cInt(s)), priorsFalse);
        d.armConds = {guards[t], expr::notE(guards[t])};
        d.armLabels = {"taken", "not-taken"};
        d.conditions = expr::extractAtoms(guards[t]);
        pending_.push_back(std::move(d));
        priorsFalse = expr::andE(priorsFalse, expr::notE(guards[t]));
      }
    }

    // Outputs: updated variable values (held when the region is inactive),
    // then optionally the updated active state.
    std::vector<ExprPtr> outs;
    for (const int v : spec.outputVarIndices) {
      const ExprPtr held =
          out_.states[static_cast<std::size_t>(
                          cs.vars[static_cast<std::size_t>(v)])]
              .leaf;
      outs.push_back(
          expr::iteE(act, nextVars[static_cast<std::size_t>(v)], held));
    }
    if (spec.activeStateOutput) {
      outs.push_back(expr::iteE(act, nextActive, activeLeaf));
    }
    return outs;
  }

  void finalizeStateNexts() {
    for (const auto& u : deferred_) {
      StateVar& s = out_.states[static_cast<std::size_t>(u.stateIndex)];
      ExprPtr computed;
      switch (u.kind) {
        case DeferredUpdate::Kind::kExpr:
          computed = u.computed;
          break;
        case DeferredUpdate::Kind::kDelay:
          computed = castE(portExpr(u.pendingInput), s.type);
          break;
        case DeferredUpdate::Kind::kDelayLine: {
          // Shift: new[0] = input, new[i] = old[i-1].
          ExprPtr arr = s.leaf;
          for (int i = s.width - 1; i >= 1; --i) {
            arr = expr::storeE(arr, cInt(i),
                               expr::selectE(s.leaf, cInt(i - 1)));
          }
          computed = expr::storeE(
              arr, cInt(0), castE(portExpr(u.pendingInput), s.type));
          break;
        }
      }
      s.next = expr::iteE(activationOf(u.region), computed, s.leaf);
    }
    // Data-store nexts were threaded during compilation (already gated
    // write-by-write); nothing further to do for them.
  }

  // --- Decisions and branches ----------------------------------------------

  int addBranch(int decisionId, int arm, const std::string& label,
                int parentBranch, const ExprPtr& pathConstraint) {
    Branch br;
    br.id = static_cast<int>(out_.branches.size());
    br.decision = decisionId;
    br.arm = arm;
    br.label = label;
    br.parentBranch = parentBranch;
    br.depth = parentBranch < 0
                   ? 0
                   : out_.branches[static_cast<std::size_t>(parentBranch)]
                             .depth +
                         1;
    br.pathConstraint = pathConstraint;
    out_.branches.push_back(br);
    return br.id;
  }

  int parentBranchOfRegion(RegionId r) const {
    const auto it = armBranch_.find(r);
    return it == armBranch_.end() ? -1 : it->second;
  }

  void buildRegionDecisions() {
    // Group regions by decision group, ascending (construction order
    // guarantees parents precede children).
    std::unordered_map<int, std::vector<RegionId>> groups;
    int maxGroup = -1;
    for (const auto& r : m_.regions()) {
      if (r.kind == RegionKind::kRoot) continue;
      groups[r.decisionGroup].push_back(r.id);
      maxGroup = std::max(maxGroup, r.decisionGroup);
    }
    for (int g = 0; g <= maxGroup; ++g) {
      auto it = groups.find(g);
      if (it == groups.end()) continue;
      auto& arms = it->second;
      std::sort(arms.begin(), arms.end(), [&](RegionId a, RegionId b) {
        return m_.region(a).armIndex < m_.region(b).armIndex;
      });
      const Region& first = m_.region(arms.front());
      const RegionId parentRegion = first.parent;

      Decision d;
      d.id = static_cast<int>(out_.decisions.size());
      d.kind = DecisionKind::kRegionGroup;
      d.name = m_.name() + "/" + first.name;
      d.activation = activationOf(parentRegion);
      d.parentBranch = parentBranchOfRegion(parentRegion);
      d.depth = d.parentBranch < 0
                    ? 0
                    : out_.branches[static_cast<std::size_t>(d.parentBranch)]
                              .depth +
                          1;
      for (const RegionId arm : arms) {
        d.armConds.push_back(guardOf(arm));
        d.armLabels.push_back(m_.region(arm).name);
      }
      bool needComplement = false;
      if (first.kind == RegionKind::kEnabled) {
        needComplement = true;  // the "disabled" arm has no region
      } else if (first.kind == RegionKind::kCaseArm &&
                 m_.region(arms.back()).kind != RegionKind::kDefaultArm) {
        needComplement = true;  // case list without a default arm
      }
      if (needComplement) {
        std::vector<ExprPtr> negs;
        negs.reserve(d.armConds.size());
        for (const auto& c : d.armConds) negs.push_back(expr::notE(c));
        d.armConds.push_back(expr::andAll(negs));
        d.armLabels.push_back("(no arm)");
      }
      // Conditions: atoms of the real arm guards (default and implicit
      // arms restate the same atoms), deduplicated by node identity.
      {
        std::unordered_set<const expr::Expr*> seenAtoms;
        for (std::size_t i = 0; i < arms.size(); ++i) {
          if (m_.region(arms[i]).kind == RegionKind::kDefaultArm) continue;
          for (auto& a : expr::extractAtoms(d.armConds[i])) {
            if (seenAtoms.insert(a.get()).second) d.conditions.push_back(a);
          }
        }
      }
      const int decisionId = d.id;
      out_.decisions.push_back(std::move(d));
      const Decision& placed =
          out_.decisions[static_cast<std::size_t>(decisionId)];
      for (std::size_t i = 0; i < placed.armConds.size(); ++i) {
        const ExprPtr pc =
            expr::andE(placed.activation, placed.armConds[i]);
        const int brId = addBranch(decisionId, static_cast<int>(i),
                                   placed.armLabels[i], placed.parentBranch,
                                   pc);
        if (i < arms.size()) armBranch_[arms[i]] = brId;
      }
    }
  }

  void materializePendingDecisions() {
    for (auto& p : pending_) {
      Decision d;
      d.id = static_cast<int>(out_.decisions.size());
      d.kind = p.kind;
      d.name = std::move(p.name);
      ExprPtr act = activationOf(p.region);
      if (p.extraActivation != nullptr) {
        act = expr::andE(act, p.extraActivation);
      }
      d.activation = act;
      d.armConds = std::move(p.armConds);
      d.armLabels = std::move(p.armLabels);
      d.conditions = std::move(p.conditions);
      d.parentBranch = parentBranchOfRegion(p.region);
      d.depth = d.parentBranch < 0
                    ? 0
                    : out_.branches[static_cast<std::size_t>(d.parentBranch)]
                              .depth +
                          1;
      const int decisionId = d.id;
      out_.decisions.push_back(std::move(d));
      const Decision& placed =
          out_.decisions[static_cast<std::size_t>(decisionId)];
      for (std::size_t i = 0; i < placed.armConds.size(); ++i) {
        addBranch(decisionId, static_cast<int>(i), placed.armLabels[i],
                  placed.parentBranch,
                  expr::andE(placed.activation, placed.armConds[i]));
      }
    }
  }

  struct ChartState {
    int active = -1;
    std::vector<int> vars;
  };

  struct DeferredUpdate {
    enum class Kind { kExpr, kDelay, kDelayLine };
    int stateIndex = -1;
    RegionId region = model::kRootRegion;
    Kind kind = Kind::kExpr;
    ExprPtr computed;       // kExpr
    PortRef pendingInput;   // kDelay / kDelayLine
  };

  const Model& m_;
  expr::VarId nextId_;
  CompiledModel out_;

  std::unordered_map<BlockId, int> inportVar_;
  std::unordered_map<BlockId, int> blockState_;
  std::unordered_map<int, int> storeState_;   // store index -> state index
  std::unordered_map<int, ExprPtr> storeCur_; // store index -> current expr
  std::unordered_map<BlockId, ChartState> chartState_;
  std::unordered_map<BlockId, std::vector<ExprPtr>> outExprs_;
  std::unordered_map<RegionId, ExprPtr> guard_, activation_;
  std::unordered_map<RegionId, int> armBranch_;
  std::vector<BlockId> topo_;
  std::vector<DeferredUpdate> deferred_;
  std::vector<PendingDecision> pending_;
};

}  // namespace

CompiledModel compile(const Model& m) { return Compiler(m).run(); }

}  // namespace stcg::compile
