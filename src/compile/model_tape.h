// A compiled model's expression roots flattened onto one shared tape.
//
// Every root the simulator reads per step — decision activations, arm
// conditions, atomic conditions, objective activations/conditions, outputs
// and next-state expressions — is emitted into a single expr::Tape, so the
// global value-numbering CSE spans all of them (an activation shared by
// five decisions is computed once per step, not five times) and one
// non-recursive executor pass evaluates the whole model.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compile/compiled_model.h"
#include "expr/jit.h"
#include "expr/tape.h"
#include "expr/tape_passes.h"

namespace stcg::compile {

/// Slot map for one CompiledModel. Indices parallel the model's own
/// decision/objective/output/state vectors.
///
/// `tape` is the pass-pipeline-optimized tape all engines execute (the
/// SlotRefs below index it); `rawTape` keeps the unoptimized build as
/// the differential oracle, and `passStats` reports the shrink. With
/// STCG_TAPE_OPT=0 both point at the raw tape.
struct ModelTape {
  std::shared_ptr<const expr::Tape> tape;
  std::shared_ptr<const expr::Tape> rawTape;
  expr::TapePassStats passStats;

  std::vector<expr::SlotRef> decisionActivations;
  std::vector<std::vector<expr::SlotRef>> decisionArms;
  std::vector<std::vector<expr::SlotRef>> decisionConditions;
  std::vector<expr::SlotRef> objectiveActivations;
  std::vector<expr::SlotRef> objectiveConds;
  std::vector<expr::SlotRef> outputs;
  std::vector<expr::SlotRef> stateNext;  // scalar or array per StateVar

  /// Native module for `tape` when requested and buildable; nullptr with
  /// `jitError` describing why otherwise (callers fall back to the
  /// interpreted tape).
  std::shared_ptr<const expr::TapeJit> jit;
  std::string jitError;
};

/// Compile all of `cm`'s roots into one tape. With `wantJit`, additionally
/// emit + load a native module for the final tape (best effort: an
/// unavailable toolchain leaves `jit` null and fills `jitError`).
[[nodiscard]] ModelTape buildModelTape(const CompiledModel& cm,
                                       bool wantJit = false);

}  // namespace stcg::compile
