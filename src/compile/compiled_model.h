// The compiled form of a model: pure expressions over inputs and state.
//
// compile() lowers a model::Model into
//   outputs  = F(inputs, state)
//   state'   = G(inputs, state)
// plus the coverage structure the paper's algorithms operate on:
//
//   Decision — a block or construct with branching logic (paper Def. 1's
//     container): a Switch, MultiportSwitch, If/Switch-Case/Enabled region
//     group, or a chart transition. Each decision has mutually exclusive,
//     exhaustive arms and an activation expression (the conjunction of the
//     enclosing conditional-region guards: the decision only "executes" —
//     and only counts for coverage — when its activation holds).
//
//   Branch — one arm of a decision (paper Def. 1's ⟨C, F, D⟩): condition C
//     is the arm condition, parent F is the enclosing region's arm branch,
//     depth D counts ancestor branches. pathConstraint is
//     activation ∧ C — precisely what Algorithm 1 hands to the solver.
//
//   Conditions — the atomic boolean leaves of each decision's controlling
//     expression, for Condition Coverage and MCDC.
#pragma once

#include <string>
#include <vector>

#include "expr/eval.h"
#include "expr/expr.h"
#include "expr/scalar.h"

namespace stcg::compile {

struct InputVar {
  expr::VarInfo info;           // id, name, type, domain
  expr::ExprPtr leaf;           // the kVar node
};

struct StateVar {
  expr::VarId id = -1;
  std::string name;             // full path, e.g. "CPUTask/queue_ids"
  expr::Type type = expr::Type::kReal;
  int width = 1;                // 1 = scalar state, >1 = array state
  expr::Value init;
  expr::ExprPtr leaf;           // kVar (width 1) or kVarArray node
  expr::ExprPtr next;           // next-state expression
};

enum class DecisionKind {
  kSwitch,
  kMultiportSwitch,
  kRegionGroup,     // If / Switch-Case / Enabled region arms
  kChartTransition,
};

struct Decision {
  int id = -1;
  DecisionKind kind = DecisionKind::kSwitch;
  std::string name;
  expr::ExprPtr activation;                // true at root level
  std::vector<expr::ExprPtr> armConds;     // mutually exclusive + exhaustive
  std::vector<std::string> armLabels;
  std::vector<expr::ExprPtr> conditions;   // atomic conditions
  int parentBranch = -1;                   // enclosing arm branch or -1
  int depth = 0;                           // ancestor branch count
  /// True for two-arm boolean decisions, where MCDC applies.
  [[nodiscard]] bool isBooleanDecision() const { return armConds.size() == 2; }
};

struct Branch {
  int id = -1;
  int decision = -1;
  int arm = 0;
  std::string label;
  int parentBranch = -1;
  int depth = 0;
  expr::ExprPtr pathConstraint;  // activation ∧ own condition (ancestors
                                 // are folded into activation recursively)
};

/// A custom test objective: satisfied by any step where the owning
/// region chain is active and the condition holds.
struct Objective {
  int id = -1;
  std::string name;
  expr::ExprPtr activation;
  expr::ExprPtr cond;
};

struct CompiledModel {
  std::string name;
  std::vector<InputVar> inputs;
  std::vector<StateVar> states;
  std::vector<std::pair<std::string, expr::ExprPtr>> outputs;
  std::vector<Decision> decisions;
  std::vector<Branch> branches;
  std::vector<Objective> objectives;
  int blockCount = 0;

  /// VarInfo list for the solver (all inputs).
  [[nodiscard]] std::vector<expr::VarInfo> inputInfos() const;

  /// Environment binding every state leaf to its initial value.
  [[nodiscard]] expr::Env initialStateEnv() const;

  /// Total number of atomic conditions across decisions.
  [[nodiscard]] int conditionCount() const;

  /// One past the largest variable id (inputs and states). Env::reserve
  /// with this count makes per-step environment binding allocation-free.
  [[nodiscard]] std::size_t varCount() const;
};

}  // namespace stcg::compile
