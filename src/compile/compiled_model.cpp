#include "compile/compiled_model.h"

namespace stcg::compile {

std::vector<expr::VarInfo> CompiledModel::inputInfos() const {
  std::vector<expr::VarInfo> out;
  out.reserve(inputs.size());
  for (const auto& in : inputs) out.push_back(in.info);
  return out;
}

expr::Env CompiledModel::initialStateEnv() const {
  expr::Env env;
  for (const auto& s : states) {
    if (s.width == 1) {
      env.set(s.id, s.init.scalar());
    } else {
      env.setArray(s.id, s.init.elems());
    }
  }
  return env;
}

int CompiledModel::conditionCount() const {
  int n = 0;
  for (const auto& d : decisions) n += static_cast<int>(d.conditions.size());
  return n;
}

}  // namespace stcg::compile
