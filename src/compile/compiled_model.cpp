#include "compile/compiled_model.h"

#include <algorithm>

namespace stcg::compile {

std::vector<expr::VarInfo> CompiledModel::inputInfos() const {
  std::vector<expr::VarInfo> out;
  out.reserve(inputs.size());
  for (const auto& in : inputs) out.push_back(in.info);
  return out;
}

std::size_t CompiledModel::varCount() const {
  expr::VarId maxId = -1;
  for (const auto& in : inputs) maxId = std::max(maxId, in.info.id);
  for (const auto& s : states) maxId = std::max(maxId, s.id);
  return static_cast<std::size_t>(maxId + 1);
}

expr::Env CompiledModel::initialStateEnv() const {
  expr::Env env;
  env.reserve(varCount());
  for (const auto& s : states) {
    if (s.width == 1) {
      env.set(s.id, s.init.scalar());
    } else {
      env.setArray(s.id, s.init.elems());
    }
  }
  return env;
}

int CompiledModel::conditionCount() const {
  int n = 0;
  for (const auto& d : decisions) n += static_cast<int>(d.conditions.size());
  return n;
}

}  // namespace stcg::compile
