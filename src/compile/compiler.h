// Model -> CompiledModel lowering.
//
// The compiler walks blocks in a stable topological order (stateful blocks'
// outputs act as sources, so algebraic loops are rejected but state
// feedback loops compile fine), producing one expression per output port.
// Conditional-region semantics are compiled structurally:
//   - every block's dataflow value is computed unconditionally (as in
//     Simulink, where inactive action subsystems simply hold state and
//     their decisions don't count);
//   - state updates (delays, data stores, charts) inside a region are
//     gated: next = ite(region activation, computed, held);
//   - Merge blocks select the active arm's value;
//   - decisions carry their activation so coverage and solving only
//     consider them when their region chain is live.
//
// Data-store read/write ordering follows the topological order with ties
// broken by block insertion order; models should wire sequential store
// pipelines through data dependencies (all bundled benchmark models do).
#pragma once

#include <stdexcept>

#include "compile/compiled_model.h"
#include "model/model.h"

namespace stcg::compile {

/// Thrown when the model is structurally invalid (validate() problems,
/// algebraic loops, type inconsistencies).
class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& what) : std::runtime_error(what) {}
};

/// Lower `m` to its compiled form. The model is left unchanged; fresh
/// expression-variable ids are drawn starting at `m.allocVarId()`'s next
/// value via an internal counter, so compiled ids never collide with chart
/// template ids.
[[nodiscard]] CompiledModel compile(const model::Model& m);

}  // namespace stcg::compile
