#include "interval/interval.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace stcg::interval {

namespace {
constexpr double kHuge = 1e300;

Interval fromBools(bool canFalse, bool canTrue) {
  if (!canFalse && !canTrue) return Interval::empty();
  return Interval(canTrue && !canFalse ? 1.0 : 0.0,
                  canTrue ? 1.0 : 0.0);
}
}  // namespace

Interval Interval::whole() { return Interval(-kHuge, kHuge); }

double Interval::mid() const {
  if (isEmpty()) return 0.0;
  if (lo_ <= -kHuge && hi_ >= kHuge) return 0.0;
  return lo_ + (hi_ - lo_) / 2.0;
}

Interval Interval::intersect(const Interval& o) const {
  if (isEmpty() || o.isEmpty()) return empty();
  return Interval(std::max(lo_, o.lo_), std::min(hi_, o.hi_));
}

Interval Interval::hull(const Interval& o) const {
  if (isEmpty()) return o;
  if (o.isEmpty()) return *this;
  return Interval(std::min(lo_, o.lo_), std::max(hi_, o.hi_));
}

Interval Interval::integralHull() const {
  if (isEmpty()) return empty();
  return Interval(std::ceil(lo_), std::floor(hi_));
}

double Interval::integerCount() const {
  const Interval h = integralHull();
  if (h.isEmpty()) return 0.0;
  return h.hi_ - h.lo_ + 1.0;
}

bool Interval::operator==(const Interval& o) const {
  if (isEmpty() && o.isEmpty()) return true;
  return lo_ == o.lo_ && hi_ == o.hi_;
}

std::string Interval::toString() const {
  if (isEmpty()) return "[]";
  return "[" + formatReal(lo_) + ", " + formatReal(hi_) + "]";
}

Interval addI(const Interval& a, const Interval& b) {
  if (a.isEmpty() || b.isEmpty()) return Interval::empty();
  return Interval(a.lo() + b.lo(), a.hi() + b.hi());
}

Interval subI(const Interval& a, const Interval& b) {
  if (a.isEmpty() || b.isEmpty()) return Interval::empty();
  return Interval(a.lo() - b.hi(), a.hi() - b.lo());
}

Interval mulI(const Interval& a, const Interval& b) {
  if (a.isEmpty() || b.isEmpty()) return Interval::empty();
  const double c[4] = {a.lo() * b.lo(), a.lo() * b.hi(), a.hi() * b.lo(),
                       a.hi() * b.hi()};
  double lo = c[0], hi = c[0];
  for (double v : c) {
    if (std::isnan(v)) v = 0.0;  // 0 * inf guard
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return Interval(lo, hi);
}

Interval divI(const Interval& a, const Interval& b) {
  if (a.isEmpty() || b.isEmpty()) return Interval::empty();
  if (b.containsZero()) {
    // The guard x/0 == 0 makes the result contain 0; around the pole the
    // quotient is unbounded, so fall back to the finite whole hull.
    if (b.isPoint()) return Interval::point(0.0);
    return Interval::whole();
  }
  const double c[4] = {a.lo() / b.lo(), a.lo() / b.hi(), a.hi() / b.lo(),
                       a.hi() / b.hi()};
  double lo = c[0], hi = c[0];
  for (double v : c) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return Interval(lo, hi);
}

Interval modI(const Interval& a, const Interval& b) {
  if (a.isEmpty() || b.isEmpty()) return Interval::empty();
  const double m =
      std::max(std::fabs(b.lo()), std::fabs(b.hi()));
  if (m < 1.0) return Interval::point(0.0);  // b can only be 0
  double lo = a.lo() >= 0.0 ? 0.0 : -(m - 1.0);
  double hi = a.hi() <= 0.0 ? 0.0 : (m - 1.0);
  // x % 0 == 0 by the guard, so 0 is always included (it already is).
  return Interval(lo, hi);
}

Interval negI(const Interval& a) {
  if (a.isEmpty()) return Interval::empty();
  return Interval(-a.hi(), -a.lo());
}

Interval absI(const Interval& a) {
  if (a.isEmpty()) return Interval::empty();
  if (a.lo() >= 0.0) return a;
  if (a.hi() <= 0.0) return negI(a);
  return Interval(0.0, std::max(-a.lo(), a.hi()));
}

Interval minI(const Interval& a, const Interval& b) {
  if (a.isEmpty() || b.isEmpty()) return Interval::empty();
  return Interval(std::min(a.lo(), b.lo()), std::min(a.hi(), b.hi()));
}

Interval maxI(const Interval& a, const Interval& b) {
  if (a.isEmpty() || b.isEmpty()) return Interval::empty();
  return Interval(std::max(a.lo(), b.lo()), std::max(a.hi(), b.hi()));
}

Interval ltI(const Interval& a, const Interval& b) {
  if (a.isEmpty() || b.isEmpty()) return Interval::empty();
  const bool canTrue = a.lo() < b.hi();
  const bool canFalse = a.hi() >= b.lo();
  return fromBools(canFalse, canTrue);
}

Interval leI(const Interval& a, const Interval& b) {
  if (a.isEmpty() || b.isEmpty()) return Interval::empty();
  const bool canTrue = a.lo() <= b.hi();
  const bool canFalse = a.hi() > b.lo();
  return fromBools(canFalse, canTrue);
}

Interval eqI(const Interval& a, const Interval& b) {
  if (a.isEmpty() || b.isEmpty()) return Interval::empty();
  const bool canTrue = !a.intersect(b).isEmpty();
  const bool canFalse = !(a.isPoint() && b.isPoint() && a.lo() == b.lo());
  return fromBools(canFalse, canTrue);
}

Interval andI(const Interval& a, const Interval& b) {
  if (a.isEmpty() || b.isEmpty()) return Interval::empty();
  return fromBools(a.canBeFalse() || b.canBeFalse(),
                   a.canBeTrue() && b.canBeTrue());
}

Interval orI(const Interval& a, const Interval& b) {
  if (a.isEmpty() || b.isEmpty()) return Interval::empty();
  return fromBools(a.canBeFalse() && b.canBeFalse(),
                   a.canBeTrue() || b.canBeTrue());
}

Interval xorI(const Interval& a, const Interval& b) {
  if (a.isEmpty() || b.isEmpty()) return Interval::empty();
  const bool canTrue = (a.canBeTrue() && b.canBeFalse()) ||
                       (a.canBeFalse() && b.canBeTrue());
  const bool canFalse = (a.canBeTrue() && b.canBeTrue()) ||
                        (a.canBeFalse() && b.canBeFalse());
  return fromBools(canFalse, canTrue);
}

Interval notI(const Interval& a) {
  if (a.isEmpty()) return Interval::empty();
  return fromBools(a.canBeTrue(), a.canBeFalse());
}

}  // namespace stcg::interval
