// Interval arithmetic over doubles, with integer-aware rounding.
//
// The solver works on boxes (one interval per input variable) and contracts
// them with HC4. Booleans are encoded as subintervals of [0, 1]:
// [0,0] = definitely false, [1,1] = definitely true, [0,1] = unknown.
// All intervals are closed; an interval with lo > hi is empty.
#pragma once

#include <string>

namespace stcg::interval {

class Interval {
 public:
  /// Default: the empty interval.
  Interval() : lo_(1.0), hi_(-1.0) {}
  Interval(double lo, double hi) : lo_(lo), hi_(hi) {}

  static Interval empty() { return Interval(); }
  static Interval point(double v) { return Interval(v, v); }
  /// A huge but finite hull used when nothing better is known; finite so
  /// that midpoints and widths stay usable.
  static Interval whole();
  /// Boolean lattice values.
  static Interval boolFalse() { return point(0.0); }
  static Interval boolTrue() { return point(1.0); }
  static Interval boolUnknown() { return Interval(0.0, 1.0); }

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] bool isEmpty() const { return lo_ > hi_; }
  [[nodiscard]] bool isPoint() const { return lo_ == hi_; }
  [[nodiscard]] double width() const { return isEmpty() ? 0.0 : hi_ - lo_; }
  [[nodiscard]] double mid() const;
  [[nodiscard]] bool contains(double v) const {
    return !isEmpty() && lo_ <= v && v <= hi_;
  }
  [[nodiscard]] bool containsZero() const { return contains(0.0); }

  // Boolean lattice queries (for intervals representing booleans).
  [[nodiscard]] bool canBeTrue() const { return !isEmpty() && hi_ >= 1.0; }
  [[nodiscard]] bool canBeFalse() const { return !isEmpty() && lo_ <= 0.0; }
  [[nodiscard]] bool isTrue() const { return !isEmpty() && lo_ >= 1.0; }
  [[nodiscard]] bool isFalse() const { return !isEmpty() && hi_ <= 0.0; }

  [[nodiscard]] Interval intersect(const Interval& o) const;
  [[nodiscard]] Interval hull(const Interval& o) const;

  /// Shrink to integral endpoints (ceil lo, floor hi). May become empty.
  [[nodiscard]] Interval integralHull() const;

  /// Number of integers contained; huge intervals saturate.
  [[nodiscard]] double integerCount() const;

  [[nodiscard]] bool operator==(const Interval& o) const;

  [[nodiscard]] std::string toString() const;

 private:
  double lo_, hi_;
};

// Forward arithmetic. All are tight except where noted.
[[nodiscard]] Interval addI(const Interval& a, const Interval& b);
[[nodiscard]] Interval subI(const Interval& a, const Interval& b);
[[nodiscard]] Interval mulI(const Interval& a, const Interval& b);
/// Guarded division matching expression semantics (x/0 == 0). If the
/// denominator can be 0, the result hulls in 0 and is conservative.
[[nodiscard]] Interval divI(const Interval& a, const Interval& b);
/// Integer remainder hull (C++ truncated semantics), conservative.
[[nodiscard]] Interval modI(const Interval& a, const Interval& b);
[[nodiscard]] Interval negI(const Interval& a);
[[nodiscard]] Interval absI(const Interval& a);
[[nodiscard]] Interval minI(const Interval& a, const Interval& b);
[[nodiscard]] Interval maxI(const Interval& a, const Interval& b);

// Forward relational: boolean-lattice result.
[[nodiscard]] Interval ltI(const Interval& a, const Interval& b);
[[nodiscard]] Interval leI(const Interval& a, const Interval& b);
[[nodiscard]] Interval eqI(const Interval& a, const Interval& b);

// Forward boolean connectives on lattice values.
[[nodiscard]] Interval andI(const Interval& a, const Interval& b);
[[nodiscard]] Interval orI(const Interval& a, const Interval& b);
[[nodiscard]] Interval xorI(const Interval& a, const Interval& b);
[[nodiscard]] Interval notI(const Interval& a);

}  // namespace stcg::interval
