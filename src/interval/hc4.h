// HC4 (forward-backward) contraction of a box against a boolean constraint.
//
// Forward pass: evaluate an interval domain for every DAG node under the
// current box. Backward pass: starting from "the root must be true", push
// refined target intervals down through inverse operator rules, narrowing
// variable domains where they are reached. Iterated to (approximate)
// fixpoint. The contractor is sound: it never removes a point that could
// satisfy the constraint, so an empty result proves unsatisfiability
// within the box.
#pragma once

#include <unordered_map>
#include <vector>

#include "expr/expr.h"
#include "interval/box.h"

namespace stcg::interval {

enum class ContractOutcome {
  kShrunk,     // box narrowed (still non-empty)
  kUnchanged,  // fixpoint: nothing narrowed
  kEmpty,      // box proven infeasible for the constraint
};

class Hc4Contractor {
 public:
  /// `goal` must be a boolean-typed expression; contraction enforces
  /// goal == true.
  explicit Hc4Contractor(expr::ExprPtr goal);

  /// Contract `box` in place with up to `maxPasses` forward/backward
  /// sweeps (stops early at fixpoint or emptiness).
  ContractOutcome contract(Box& box, int maxPasses = 3);

  /// Forward-only evaluation of the goal's possible truth values under
  /// `box` (no narrowing). Useful as a cheap infeasibility test.
  [[nodiscard]] Interval forwardEval(const Box& box);

 private:
  using ArrayDomain = std::vector<Interval>;

  // One forward/backward sweep. Returns kEmpty on proven infeasibility.
  ContractOutcome pass(Box& box);

  Interval forward(const expr::Expr* e, const Box& box);
  ArrayDomain forwardArray(const expr::Expr* e, const Box& box);

  // Narrow through node `e` given that its value must lie in `target`.
  // Returns false if a contradiction (empty domain) was derived.
  bool backward(const expr::Expr* e, Interval target, Box& box);

  expr::ExprPtr goal_;
  std::unordered_map<const expr::Expr*, Interval> fwd_;
  std::unordered_map<const expr::Expr*, ArrayDomain> fwdArray_;
};

}  // namespace stcg::interval
