#include "interval/hc4.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace stcg::interval {

using expr::Expr;
using expr::ExprPtr;
using expr::Op;
using expr::Type;

namespace {

constexpr double kHuge = 1e300;

/// Inclusive upper bound for "strictly less than x" on the given type:
/// the largest integer strictly below x for discrete types (x-1 when x is
/// itself integral, floor(x) otherwise).
double strictBelow(double x, Type t) {
  if (t == Type::kReal) return x;  // closed approximation, still sound
  return std::ceil(x) - 1.0;
}

double strictAbove(double x, Type t) {
  if (t == Type::kReal) return x;
  return std::floor(x) + 1.0;
}

}  // namespace

Hc4Contractor::Hc4Contractor(ExprPtr goal) : goal_(std::move(goal)) {
  assert(goal_->type == Type::kBool && !goal_->isArray());
}

Interval Hc4Contractor::forwardEval(const Box& box) {
  fwd_.clear();
  fwdArray_.clear();
  return forward(goal_.get(), box);
}

ContractOutcome Hc4Contractor::contract(Box& box, int maxPasses) {
  bool shrunkAny = false;
  for (int i = 0; i < maxPasses; ++i) {
    const double before = box.totalWidth();
    const ContractOutcome out = pass(box);
    if (out == ContractOutcome::kEmpty) return ContractOutcome::kEmpty;
    const double after = box.totalWidth();
    if (after < before) {
      shrunkAny = true;
    } else {
      break;  // fixpoint
    }
  }
  return shrunkAny ? ContractOutcome::kShrunk : ContractOutcome::kUnchanged;
}

ContractOutcome Hc4Contractor::pass(Box& box) {
  fwd_.clear();
  fwdArray_.clear();
  const Interval root = forward(goal_.get(), box);
  if (root.isEmpty() || !root.canBeTrue()) return ContractOutcome::kEmpty;
  if (!backward(goal_.get(), Interval::boolTrue(), box)) {
    return ContractOutcome::kEmpty;
  }
  if (box.isEmpty()) return ContractOutcome::kEmpty;
  return ContractOutcome::kShrunk;  // caller compares widths
}

Interval Hc4Contractor::forward(const Expr* e, const Box& box) {
  if (auto it = fwd_.find(e); it != fwd_.end()) return it->second;
  Interval out;
  switch (e->op) {
    case Op::kConst:
      out = Interval::point(e->constVal.toReal());
      break;
    case Op::kVar: {
      Interval declared(e->varLo, e->varHi);
      if (e->type != Type::kReal) declared = declared.integralHull();
      out = box.domain(e->var).intersect(declared);
      break;
    }
    case Op::kNot:
      out = notI(forward(e->args[0].get(), box));
      break;
    case Op::kNeg:
      out = negI(forward(e->args[0].get(), box));
      break;
    case Op::kAbs:
      out = absI(forward(e->args[0].get(), box));
      break;
    case Op::kCast: {
      Interval a = forward(e->args[0].get(), box);
      if (e->type == Type::kBool) {
        // Truthiness of a numeric: 0 -> false, nonzero -> true.
        if (a.isEmpty()) {
          out = a;
        } else if (a.isPoint()) {
          out = a.lo() == 0.0 ? Interval::boolFalse() : Interval::boolTrue();
        } else {
          out = a.containsZero() ? Interval::boolUnknown()
                                 : Interval::boolTrue();
        }
      } else if (e->type == Type::kInt) {
        // Truncation toward zero: conservative hull.
        if (a.isEmpty()) {
          out = a;
        } else {
          // trunc is monotone, so the endpoint truncations bound the image.
          out = Interval(std::trunc(a.lo()), std::trunc(a.hi()));
        }
      } else {
        out = a;
      }
      break;
    }
    case Op::kAdd:
      out = addI(forward(e->args[0].get(), box), forward(e->args[1].get(), box));
      break;
    case Op::kSub:
      out = subI(forward(e->args[0].get(), box), forward(e->args[1].get(), box));
      break;
    case Op::kMul:
      out = mulI(forward(e->args[0].get(), box), forward(e->args[1].get(), box));
      break;
    case Op::kDiv:
      out = divI(forward(e->args[0].get(), box), forward(e->args[1].get(), box));
      // Integer division truncates toward zero: map the real-quotient
      // interval through trunc (monotone, hence sound).
      if (e->type == Type::kInt && !out.isEmpty()) {
        out = Interval(std::trunc(out.lo()), std::trunc(out.hi()));
      }
      break;
    case Op::kMod:
      out = modI(forward(e->args[0].get(), box), forward(e->args[1].get(), box));
      break;
    case Op::kMin:
      out = minI(forward(e->args[0].get(), box), forward(e->args[1].get(), box));
      break;
    case Op::kMax:
      out = maxI(forward(e->args[0].get(), box), forward(e->args[1].get(), box));
      break;
    case Op::kLt:
      out = ltI(forward(e->args[0].get(), box), forward(e->args[1].get(), box));
      break;
    case Op::kLe:
      out = leI(forward(e->args[0].get(), box), forward(e->args[1].get(), box));
      break;
    case Op::kGt:
      out = ltI(forward(e->args[1].get(), box), forward(e->args[0].get(), box));
      break;
    case Op::kGe:
      out = leI(forward(e->args[1].get(), box), forward(e->args[0].get(), box));
      break;
    case Op::kEq:
      out = eqI(forward(e->args[0].get(), box), forward(e->args[1].get(), box));
      break;
    case Op::kNe:
      out = notI(
          eqI(forward(e->args[0].get(), box), forward(e->args[1].get(), box)));
      break;
    case Op::kAnd:
      out = andI(forward(e->args[0].get(), box), forward(e->args[1].get(), box));
      break;
    case Op::kOr:
      out = orI(forward(e->args[0].get(), box), forward(e->args[1].get(), box));
      break;
    case Op::kXor:
      out = xorI(forward(e->args[0].get(), box), forward(e->args[1].get(), box));
      break;
    case Op::kIte: {
      const Interval c = forward(e->args[0].get(), box);
      if (c.isTrue()) {
        out = forward(e->args[1].get(), box);
      } else if (c.isFalse()) {
        out = forward(e->args[2].get(), box);
      } else {
        out = forward(e->args[1].get(), box)
                  .hull(forward(e->args[2].get(), box));
      }
      break;
    }
    case Op::kSelect: {
      const ArrayDomain arr = forwardArray(e->args[0].get(), box);
      Interval idx = forward(e->args[1].get(), box).integralHull();
      const auto n = static_cast<std::int64_t>(arr.size());
      // Index clamping in the concrete semantics.
      idx = idx.intersect(Interval(0.0, static_cast<double>(n - 1)))
                .hull(idx.lo() < 0 ? Interval::point(0.0) : Interval::empty())
                .hull(idx.hi() >= static_cast<double>(n)
                          ? Interval::point(static_cast<double>(n - 1))
                          : Interval::empty());
      Interval acc = Interval::empty();
      if (!idx.isEmpty()) {
        const auto lo = static_cast<std::int64_t>(std::max(0.0, idx.lo()));
        const auto hi = static_cast<std::int64_t>(
            std::min(static_cast<double>(n - 1), idx.hi()));
        for (std::int64_t i = lo; i <= hi; ++i) {
          acc = acc.hull(arr[static_cast<std::size_t>(i)]);
        }
      }
      out = acc;
      break;
    }
    default:
      assert(false && "array-typed node reached scalar forward");
      out = Interval::whole();
      break;
  }
  fwd_.emplace(e, out);
  return out;
}

Hc4Contractor::ArrayDomain Hc4Contractor::forwardArray(const Expr* e,
                                                       const Box& box) {
  if (auto it = fwdArray_.find(e); it != fwdArray_.end()) return it->second;
  ArrayDomain out;
  switch (e->op) {
    case Op::kConstArray: {
      out.reserve(e->constArray.size());
      for (const auto& s : e->constArray) {
        out.push_back(Interval::point(s.toReal()));
      }
      break;
    }
    case Op::kVarArray:
      // Array-typed variables carry no box domain: unknown elementwise.
      // (Reached by the dead-branch verifier, which solves constraints
      // that still contain array state leaves.)
      out.assign(static_cast<std::size_t>(e->arraySize), Interval::whole());
      break;
    case Op::kStore: {
      out = forwardArray(e->args[0].get(), box);
      const Interval idx = forward(e->args[1].get(), box).integralHull();
      const Interval val = forward(e->args[2].get(), box);
      const auto n = static_cast<std::int64_t>(out.size());
      std::int64_t lo = 0, hi = n - 1;
      if (!idx.isEmpty()) {
        lo = static_cast<std::int64_t>(std::max(0.0, idx.lo()));
        hi = static_cast<std::int64_t>(
            std::min(static_cast<double>(n - 1), idx.hi()));
        if (idx.lo() < 0) lo = 0;
        if (idx.hi() >= static_cast<double>(n)) hi = n - 1;
      }
      if (lo == hi) {
        out[static_cast<std::size_t>(lo)] = val;  // definite write
      } else {
        for (std::int64_t i = lo; i <= hi; ++i) {
          auto& slot = out[static_cast<std::size_t>(i)];
          slot = slot.hull(val);  // may or may not be written
        }
      }
      break;
    }
    case Op::kIte: {
      const Interval c = forward(e->args[0].get(), box);
      if (c.isTrue()) {
        out = forwardArray(e->args[1].get(), box);
      } else if (c.isFalse()) {
        out = forwardArray(e->args[2].get(), box);
      } else {
        out = forwardArray(e->args[1].get(), box);
        const ArrayDomain other = forwardArray(e->args[2].get(), box);
        for (std::size_t i = 0; i < out.size() && i < other.size(); ++i) {
          out[i] = out[i].hull(other[i]);
        }
      }
      break;
    }
    default:
      assert(false && "scalar node reached array forward");
      break;
  }
  fwdArray_.emplace(e, out);
  return out;
}

bool Hc4Contractor::backward(const Expr* e, Interval target, Box& box) {
  const auto fwdOf = [&](const Expr* n) {
    auto it = fwd_.find(n);
    return it != fwd_.end() ? it->second : Interval::whole();
  };
  const Interval self = fwdOf(e);
  target = target.intersect(self);
  if (target.isEmpty()) return false;

  switch (e->op) {
    case Op::kConst:
    case Op::kConstArray:
    case Op::kVarArray:  // array state variables carry no box domain
      return true;  // already intersected with the point above
    case Op::kVar:
      return box.narrow(e->var, target);
    case Op::kNot:
      return backward(e->args[0].get(), notI(target), box);
    case Op::kNeg:
      return backward(e->args[0].get(), negI(target), box);
    case Op::kAbs: {
      const Interval tp = target.intersect(Interval(0.0, kHuge));
      if (tp.isEmpty()) return false;
      return backward(e->args[0].get(), tp.hull(negI(tp)), box);
    }
    case Op::kCast: {
      const Expr* a = e->args[0].get();
      if (e->type == Type::kBool) {
        if (target.isFalse()) {
          return backward(a, Interval::point(0.0), box);
        }
        if (target.isTrue()) {
          const Interval fa = fwdOf(a);
          if (fa.isPoint() && fa.lo() == 0.0) return false;
          if (a->type == Type::kInt || a->type == Type::kBool) {
            if (fa.lo() == 0.0) {
              return backward(a, Interval(1.0, fa.hi()), box);
            }
            if (fa.hi() == 0.0) {
              return backward(a, Interval(fa.lo(), -1.0), box);
            }
          }
        }
        return true;
      }
      if (e->type == Type::kInt && a->type == Type::kReal) {
        // Truncation: conservative pre-image.
        return backward(a, Interval(target.lo() - 1.0, target.hi() + 1.0),
                        box);
      }
      return backward(a, target, box);
    }
    case Op::kAdd: {
      const Expr* a = e->args[0].get();
      const Expr* b = e->args[1].get();
      if (!backward(a, subI(target, fwdOf(b)), box)) return false;
      return backward(b, subI(target, fwdOf(a)), box);
    }
    case Op::kSub: {
      const Expr* a = e->args[0].get();
      const Expr* b = e->args[1].get();
      if (!backward(a, addI(target, fwdOf(b)), box)) return false;
      return backward(b, subI(fwdOf(a), target), box);
    }
    case Op::kMul: {
      const Expr* a = e->args[0].get();
      const Expr* b = e->args[1].get();
      const Interval fa = fwdOf(a), fb = fwdOf(b);
      if (!fb.containsZero() && !fb.isEmpty()) {
        if (!backward(a, divI(target, fb), box)) return false;
      }
      if (!fa.containsZero() && !fa.isEmpty()) {
        if (!backward(b, divI(target, fa), box)) return false;
      }
      return true;
    }
    case Op::kDiv: {
      const Expr* a = e->args[0].get();
      const Expr* b = e->args[1].get();
      const Interval fb = fwdOf(b);
      // Truncated integer division leaves up to |b|-1 of slack in the
      // numerator, so exact inversion only applies to real division.
      if (e->type == Type::kReal && !fb.containsZero() && !fb.isEmpty()) {
        if (!backward(a, mulI(target, fb), box)) return false;
      }
      return true;
    }
    case Op::kMod:
      return true;  // no useful inverse implemented
    case Op::kMin: {
      const Expr* a = e->args[0].get();
      const Expr* b = e->args[1].get();
      const Interval fa = fwdOf(a), fb = fwdOf(b);
      Interval at = Interval(target.lo(), kHuge);
      if (target.hi() < fb.lo()) at = at.intersect(target);
      if (!backward(a, at, box)) return false;
      Interval bt = Interval(target.lo(), kHuge);
      if (target.hi() < fa.lo()) bt = bt.intersect(target);
      return backward(b, bt, box);
    }
    case Op::kMax: {
      const Expr* a = e->args[0].get();
      const Expr* b = e->args[1].get();
      const Interval fa = fwdOf(a), fb = fwdOf(b);
      Interval at = Interval(-kHuge, target.hi());
      if (target.lo() > fb.hi()) at = at.intersect(target);
      if (!backward(a, at, box)) return false;
      Interval bt = Interval(-kHuge, target.hi());
      if (target.lo() > fa.hi()) bt = bt.intersect(target);
      return backward(b, bt, box);
    }
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      // Normalize to l (op) r with op in {<, <=}.
      const bool flip = e->op == Op::kGt || e->op == Op::kGe;
      const bool strict = e->op == Op::kLt || e->op == Op::kGt;
      const Expr* l = e->args[flip ? 1 : 0].get();
      const Expr* r = e->args[flip ? 0 : 1].get();
      const Interval fl = fwdOf(l), fr = fwdOf(r);
      if (target.isTrue()) {
        // l < r (or <=): l <= strictBelow(fr.hi), r >= strictAbove(fl.lo).
        const double lHi = strict ? strictBelow(fr.hi(), l->type) : fr.hi();
        const double rLo = strict ? strictAbove(fl.lo(), r->type) : fl.lo();
        if (!backward(l, Interval(-kHuge, lHi), box)) return false;
        return backward(r, Interval(rLo, kHuge), box);
      }
      if (target.isFalse()) {
        // !(l < r) == l >= r;  !(l <= r) == l > r.
        const double lLo = strict ? fr.lo() : strictAbove(fr.lo(), l->type);
        const double rHi = strict ? fl.hi() : strictBelow(fl.hi(), r->type);
        if (!backward(l, Interval(lLo, kHuge), box)) return false;
        return backward(r, Interval(-kHuge, rHi), box);
      }
      return true;
    }
    case Op::kEq:
    case Op::kNe: {
      const bool eqWanted =
          (e->op == Op::kEq) == target.isTrue();
      if (!target.isTrue() && !target.isFalse()) return true;
      const Expr* a = e->args[0].get();
      const Expr* b = e->args[1].get();
      const Interval fa = fwdOf(a), fb = fwdOf(b);
      if (eqWanted) {
        const Interval both = fa.intersect(fb);
        if (both.isEmpty()) return false;
        if (!backward(a, both, box)) return false;
        return backward(b, both, box);
      }
      // Disequality: only narrow when one side is a point at the other
      // side's integral boundary.
      const auto trimAgainstPoint = [&](const Expr* x, const Interval& fx,
                                        const Interval& fpoint) -> bool {
        if (!fpoint.isPoint()) return true;
        if (x->type == Type::kReal) return true;
        const double p = fpoint.lo();
        Interval nx = fx;
        if (nx.isPoint() && nx.lo() == p) return false;
        if (nx.lo() == p) nx = Interval(p + 1.0, nx.hi());
        if (nx.hi() == p) nx = Interval(nx.lo(), p - 1.0);
        return backward(x, nx, box);
      };
      if (!trimAgainstPoint(a, fa, fb)) return false;
      return trimAgainstPoint(b, fb, fa);
    }
    case Op::kAnd: {
      const Expr* a = e->args[0].get();
      const Expr* b = e->args[1].get();
      if (target.isTrue()) {
        if (!backward(a, Interval::boolTrue(), box)) return false;
        return backward(b, Interval::boolTrue(), box);
      }
      if (target.isFalse()) {
        const Interval fa = fwdOf(a), fb = fwdOf(b);
        if (fa.isTrue()) return backward(b, Interval::boolFalse(), box);
        if (fb.isTrue()) return backward(a, Interval::boolFalse(), box);
      }
      return true;
    }
    case Op::kOr: {
      const Expr* a = e->args[0].get();
      const Expr* b = e->args[1].get();
      if (target.isFalse()) {
        if (!backward(a, Interval::boolFalse(), box)) return false;
        return backward(b, Interval::boolFalse(), box);
      }
      if (target.isTrue()) {
        const Interval fa = fwdOf(a), fb = fwdOf(b);
        if (fa.isFalse()) return backward(b, Interval::boolTrue(), box);
        if (fb.isFalse()) return backward(a, Interval::boolTrue(), box);
      }
      return true;
    }
    case Op::kXor: {
      const Expr* a = e->args[0].get();
      const Expr* b = e->args[1].get();
      const Interval fa = fwdOf(a), fb = fwdOf(b);
      if (target.isTrue()) {
        if (fa.isTrue()) return backward(b, Interval::boolFalse(), box);
        if (fa.isFalse()) return backward(b, Interval::boolTrue(), box);
        if (fb.isTrue()) return backward(a, Interval::boolFalse(), box);
        if (fb.isFalse()) return backward(a, Interval::boolTrue(), box);
      }
      if (target.isFalse()) {
        if (fa.isTrue()) return backward(b, Interval::boolTrue(), box);
        if (fa.isFalse()) return backward(b, Interval::boolFalse(), box);
        if (fb.isTrue()) return backward(a, Interval::boolTrue(), box);
        if (fb.isFalse()) return backward(a, Interval::boolFalse(), box);
      }
      return true;
    }
    case Op::kIte: {
      const Expr* c = e->args[0].get();
      const Expr* t = e->args[1].get();
      const Expr* f = e->args[2].get();
      if (e->args[1]->isArray()) return true;  // array ITE: no narrowing
      const Interval fc = fwdOf(c);
      if (fc.isTrue()) return backward(t, target, box);
      if (fc.isFalse()) return backward(f, target, box);
      const Interval ft = fwdOf(t), ff = fwdOf(f);
      const bool thenPossible = !target.intersect(ft).isEmpty();
      const bool elsePossible = !target.intersect(ff).isEmpty();
      if (!thenPossible && !elsePossible) return false;
      if (!thenPossible) {
        if (!backward(c, Interval::boolFalse(), box)) return false;
        return backward(f, target, box);
      }
      if (!elsePossible) {
        if (!backward(c, Interval::boolTrue(), box)) return false;
        return backward(t, target, box);
      }
      return true;
    }
    case Op::kSelect: {
      const Expr* arrE = e->args[0].get();
      const Expr* idxE = e->args[1].get();
      const ArrayDomain arr = forwardArray(arrE, box);
      const Interval idx = fwdOf(idxE).integralHull();
      if (arr.empty()) return true;
      const auto n = static_cast<std::int64_t>(arr.size());
      std::int64_t lo = 0, hi = n - 1;
      if (!idx.isEmpty()) {
        lo = static_cast<std::int64_t>(
            std::clamp(idx.lo(), 0.0, static_cast<double>(n - 1)));
        hi = static_cast<std::int64_t>(
            std::clamp(idx.hi(), 0.0, static_cast<double>(n - 1)));
      }
      // Indices whose element domain intersects the target remain feasible.
      std::int64_t first = -1, last = -1;
      for (std::int64_t i = lo; i <= hi; ++i) {
        if (!arr[static_cast<std::size_t>(i)].intersect(target).isEmpty()) {
          if (first < 0) first = i;
          last = i;
        }
      }
      // Out-of-range indices clamp to the boundary elements; keep them
      // feasible if the boundary element matches.
      const bool lowClampOk =
          idx.lo() < 0.0 && !arr[0].intersect(target).isEmpty();
      const bool highClampOk =
          idx.hi() >= static_cast<double>(n) &&
          !arr[static_cast<std::size_t>(n - 1)].intersect(target).isEmpty();
      if (first < 0 && !lowClampOk && !highClampOk) return false;
      double nlo = first >= 0 ? static_cast<double>(first) : kHuge;
      double nhi = last >= 0 ? static_cast<double>(last) : -kHuge;
      if (lowClampOk) nlo = std::min(nlo, idx.lo());
      if (highClampOk) nhi = std::max(nhi, idx.hi());
      return backward(idxE, Interval(nlo, nhi), box);
    }
    case Op::kStore:
      return true;  // handled via forwardArray only
  }
  return true;
}

}  // namespace stcg::interval
