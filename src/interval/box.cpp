#include "interval/box.h"

#include <algorithm>
#include <cassert>

#include "util/strings.h"

namespace stcg::interval {

Box::Box(const std::vector<expr::VarInfo>& vars) : vars_(vars) {
  domains_.reserve(vars_.size());
  expr::VarId maxId = -1;
  for (const auto& v : vars_) maxId = std::max(maxId, v.id);
  idToDim_.assign(static_cast<std::size_t>(maxId + 1), -1);
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    Interval dom(vars_[i].lo, vars_[i].hi);
    if (vars_[i].type != expr::Type::kReal) dom = dom.integralHull();
    if (vars_[i].type == expr::Type::kBool) {
      dom = dom.intersect(Interval(0.0, 1.0));
    }
    domains_.push_back(dom);
    idToDim_[static_cast<std::size_t>(vars_[i].id)] = static_cast<int>(i);
  }
}

int Box::dimOf(expr::VarId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= idToDim_.size()) return -1;
  return idToDim_[static_cast<std::size_t>(id)];
}

Interval Box::domain(expr::VarId id) const {
  const int d = dimOf(id);
  if (d < 0) return Interval::whole();
  return domains_[static_cast<std::size_t>(d)];
}

bool Box::isDiscrete(std::size_t dim) const {
  return vars_[dim].type != expr::Type::kReal;
}

bool Box::narrow(expr::VarId id, const Interval& iv) {
  const int d = dimOf(id);
  if (d < 0) return true;  // untracked variable: nothing to narrow
  const auto dim = static_cast<std::size_t>(d);
  Interval next = domains_[dim].intersect(iv);
  if (isDiscrete(dim)) next = next.integralHull();
  domains_[dim] = next;
  return !next.isEmpty();
}

void Box::setDomain(expr::VarId id, const Interval& iv) {
  const int d = dimOf(id);
  if (d < 0) return;
  const auto dim = static_cast<std::size_t>(d);
  Interval next = iv;
  if (isDiscrete(dim)) next = next.integralHull();
  domains_[dim] = next;
}

bool Box::isEmpty() const {
  return std::any_of(domains_.begin(), domains_.end(),
                     [](const Interval& d) { return d.isEmpty(); });
}

int Box::splitDimension() const {
  int best = -1;
  double bestScore = 0.0;
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    const Interval& d = domains_[i];
    if (d.isEmpty()) return -1;
    double score;
    if (isDiscrete(i)) {
      const double count = d.integerCount();
      if (count <= 1.0) continue;
      score = count;
    } else {
      if (d.width() <= 1e-9) continue;
      score = d.width();
    }
    if (score > bestScore) {
      bestScore = score;
      best = static_cast<int>(i);
    }
  }
  return best;
}

double Box::totalWidth() const {
  double total = 0.0;
  for (const auto& d : domains_) total += d.width();
  return total;
}

std::string Box::toString() const {
  std::vector<std::string> parts;
  parts.reserve(vars_.size());
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    parts.push_back(vars_[i].name + "=" + domains_[i].toString());
  }
  return "{" + join(parts, ", ") + "}";
}

}  // namespace stcg::interval
