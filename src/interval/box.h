// A box: one interval domain per input variable.
//
// The solver searches boxes; HC4 contracts them. Integer- and bool-typed
// variables keep integral endpoints at all times.
#pragma once

#include <vector>

#include "expr/expr.h"
#include "interval/interval.h"

namespace stcg::interval {

class Box {
 public:
  Box() = default;

  /// Build from variable descriptors: each variable starts at its declared
  /// domain [lo, hi] (integral-hulled for int/bool variables).
  explicit Box(const std::vector<expr::VarInfo>& vars);

  [[nodiscard]] const std::vector<expr::VarInfo>& vars() const {
    return vars_;
  }
  [[nodiscard]] std::size_t dims() const { return vars_.size(); }

  /// Domain of variable `id`. Whole() for unknown ids (conservative).
  [[nodiscard]] Interval domain(expr::VarId id) const;

  /// Intersect the domain of `id` with `iv` (with integral rounding for
  /// discrete variables). Returns false if the domain became empty.
  bool narrow(expr::VarId id, const Interval& iv);

  /// Replace the domain of `id` outright (integral rounding still applies).
  void setDomain(expr::VarId id, const Interval& iv);

  [[nodiscard]] bool isEmpty() const;

  /// Index (into vars()) of the dimension best suited for splitting:
  /// the widest one that still contains more than one representable point.
  /// Returns -1 if no dimension is splittable.
  [[nodiscard]] int splitDimension() const;

  /// Total of interval widths (progress metric for contraction loops).
  [[nodiscard]] double totalWidth() const;

  [[nodiscard]] std::string toString() const;

 private:
  [[nodiscard]] bool isDiscrete(std::size_t dim) const;
  [[nodiscard]] int dimOf(expr::VarId id) const;

  std::vector<expr::VarInfo> vars_;
  std::vector<Interval> domains_;
  std::vector<int> idToDim_;  // VarId -> dimension index or -1
};

}  // namespace stcg::interval
