// TWC: train wheel speed controller (paper Table II).
//
// Wheel-slide protection (WSP) for two axles: slip-ratio detection with
// track-condition-dependent thresholds, an anti-slip chart per train
// (Normal / Slip / Recovery / Locked / Failsafe) with recovery timers and
// a slip-event odometer, brake-force shaping per state, and a sanding
// subsystem with a consumable-sand counter. The WSP can be disabled
// entirely, which gates the whole protection logic (an Enabled region).
#include "benchmodels/benchmodels.h"
#include "benchmodels/helpers.h"
#include "expr/builder.h"

namespace stcg::bench {

using expr::Scalar;
using expr::Type;
using model::ChartAssign;
using model::ChartBuilder;
using model::Model;
using model::PortRef;
using model::RegionScope;

model::Model buildTwc() {
  Model m("TWC");

  auto trainSpeed = m.addInport("train_speed", Type::kReal, 0, 300);
  auto wheel1 = m.addInport("wheel_speed_1", Type::kReal, 0, 300);
  auto wheel2 = m.addInport("wheel_speed_2", Type::kReal, 0, 300);
  auto brakeCmd = m.addInport("brake_cmd", Type::kBool, 0, 1);
  auto trackCond = m.addInport("track_cond", Type::kInt, 0, 3);
  auto wspEnable = m.addInport("wsp_enable", Type::kBool, 0, 1);

  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));

  // --- Track-condition-dependent slip threshold. -------------------------
  const auto trackRegions =
      m.addSwitchCase("track_sel", trackCond, {{0}, {1}, {2}}, true);
  std::vector<std::pair<model::RegionId, PortRef>> thrArms;
  {
    RegionScope dry(m, trackRegions[0]);
    thrArms.emplace_back(trackRegions[0],
                         m.addConstant("thr_dry", Scalar::r(0.15)));
  }
  {
    RegionScope wet(m, trackRegions[1]);
    thrArms.emplace_back(trackRegions[1],
                         m.addConstant("thr_wet", Scalar::r(0.10)));
  }
  {
    RegionScope icy(m, trackRegions[2]);
    thrArms.emplace_back(trackRegions[2],
                         m.addConstant("thr_icy", Scalar::r(0.05)));
  }
  {
    RegionScope dflt(m, trackRegions[3]);
    thrArms.emplace_back(trackRegions[3],
                         m.addConstant("thr_default", Scalar::r(0.15)));
  }
  auto slipThr = m.addMerge("slip_threshold", thrArms, Scalar::r(0.15));

  // --- Per-axle slip ratio. ----------------------------------------------
  const auto slipRatio = [&](const std::string& p, PortRef wheel) {
    auto diff = m.addSum(p + "_diff", {trainSpeed, wheel}, "+-");
    auto floor1 = m.addConstant(p + "_floor", Scalar::r(1.0));
    auto denom =
        m.addMinMax(p + "_denom", model::MinMaxOp::kMax, trainSpeed, floor1);
    return m.addProduct(p + "_ratio", {diff, denom}, "*/");
  };
  auto ratio1 = slipRatio("ax1", wheel1);
  auto ratio2 = slipRatio("ax2", wheel2);
  auto slip1 = m.addRelational("ax1_slip", model::RelOp::kGt, ratio1, slipThr);
  auto slip2 = m.addRelational("ax2_slip", model::RelOp::kGt, ratio2, slipThr);
  auto anySlip = m.addLogical("any_slip", model::LogicOp::kOr, {slip1, slip2});
  auto bothSlip =
      m.addLogical("both_slip", model::LogicOp::kAnd, {slip1, slip2});

  // Lock detection: wheels (nearly) stopped while the train still moves.
  auto w1Lock = m.addCompareToConst("ax1_still", wheel1, model::RelOp::kLt, 5.0);
  auto w2Lock = m.addCompareToConst("ax2_still", wheel2, model::RelOp::kLt, 5.0);
  auto moving =
      m.addCompareToConst("train_moving", trainSpeed, model::RelOp::kGt, 30.0);
  auto locked = m.addLogical("locked", model::LogicOp::kAnd,
                             {w1Lock, w2Lock, moving});

  // --- WSP supervisory chart, inside the enable region. -------------------
  const auto wspRegion = m.addEnabled("wsp_on", wspEnable);
  PortRef wspState;
  {
    RegionScope scope(m, wspRegion);
    ChartBuilder cb(m, "wsp");
    auto cSlip = cb.input("any_slip", Type::kBool);
    auto cBoth = cb.input("both_slip", Type::kBool);
    auto cLock = cb.input("locked", Type::kBool);
    auto cBrake = cb.input("brake_cmd", Type::kBool);
    const int recov = cb.addVar("recovery_timer", Scalar::i(0));
    const int events = cb.addVar("slip_events", Scalar::i(0));
    const int sNormal = cb.addState("Normal");
    const int sSlip = cb.addState("Slip");
    const int sRecov = cb.addState("Recovery");
    const int sLocked = cb.addState("Locked");
    const int sFailsafe = cb.addState("Failsafe");
    cb.setInitialState(sNormal);

    cb.addTransition(
        sNormal, sFailsafe,
        expr::gtE(cb.varRef(events), expr::cInt(10)));
    cb.addTransition(sNormal, sLocked, cLock);
    cb.addTransition(
        sNormal, sSlip, expr::andE(cSlip, cBrake),
        {ChartAssign{events,
                     expr::addE(cb.varRef(events), expr::cInt(1))}});
    cb.addTransition(sSlip, sLocked, cLock);
    cb.addTransition(sSlip, sRecov, expr::notE(cSlip),
                     {ChartAssign{recov, expr::cInt(0)}});
    cb.addTransition(
        sSlip, sFailsafe, cBoth,
        {ChartAssign{events,
                     expr::addE(cb.varRef(events), expr::cInt(2))}});
    cb.addTransition(sRecov, sSlip, cSlip);
    cb.addTransition(sRecov, sNormal,
                     expr::gtE(cb.varRef(recov), expr::cInt(5)));
    cb.addDuring(sRecov, recov,
                 expr::addE(cb.varRef(recov), expr::cInt(1)));
    cb.addTransition(sLocked, sRecov, expr::notE(cLock),
                     {ChartAssign{recov, expr::cInt(0)}});
    cb.addTransition(sFailsafe, sNormal,
                     expr::notE(cBrake),
                     {ChartAssign{events, expr::cInt(0)}});
    cb.exposeActiveState();
    auto outs = m.addChart("wsp_chart", cb.build(),
                           {anySlip, bothSlip, locked, brakeCmd});
    wspState = outs[0];
  }

  // --- Brake force shaping. ------------------------------------------------
  auto demandTbl = m.addLookup1D("brake_demand", trainSpeed,
                                 {0, 50, 120, 200, 300},
                                 {20, 45, 70, 90, 100});
  auto zeroF = m.addConstant("zero_force", Scalar::r(0.0));
  auto requested = m.addSwitch("requested", demandTbl, brakeCmd, zeroF,
                               model::SwitchCriteria::kNotZero, 0.0);
  auto slipForce = m.addGain("slip_force", requested, 0.3);
  auto failsafeForce = m.addGain("failsafe_force", requested, 0.5);
  // Recovery ramps force back up from the previous applied value.
  auto applied = m.addUnitDelayHole("applied_force", Scalar::r(0.0));
  auto rampStep = m.addConstant("ramp_step", Scalar::r(5.0));
  auto ramped = m.addSum("ramped", {applied, rampStep}, "++");
  auto recovForce =
      m.addMinMax("recovery_force", model::MinMaxOp::kMin, ramped, requested);
  auto force = m.addMultiportSwitch(
      "force_by_state", wspState,
      {requested, slipForce, recovForce, zeroF, failsafeForce});
  auto forceSat = m.addSaturation("force_sat", force, 0.0, 100.0);
  m.bindDelayInput(applied, forceSat);

  // --- Sanding subsystem (consumable). -------------------------------------
  auto inSlip =
      m.addCompareToConst("in_slip", wspState, model::RelOp::kEq, 1.0);
  auto slippery =
      m.addCompareToConst("track_slippery", trackCond, model::RelOp::kGe, 1.0);
  auto wantSand =
      m.addLogical("want_sand", model::LogicOp::kAnd, {inSlip, slippery});
  auto sandUsed = m.addUnitDelayHole("sand_used", Scalar::i(0));
  auto sandLeft =
      m.addCompareToConst("sand_left", sandUsed, model::RelOp::kLt, 50.0);
  auto sanding =
      m.addLogical("sanding", model::LogicOp::kAnd, {wantSand, sandLeft});
  auto usedInc = m.addSum("sand_inc", {sandUsed, one}, "++");
  auto usedNext = m.addSwitch("sand_next", usedInc, sanding, sandUsed,
                              model::SwitchCriteria::kNotZero, 0.0);
  m.bindDelayInput(sandUsed, usedNext);
  auto sandOut = m.addSwitch("sand_out", one, sanding, zero,
                             model::SwitchCriteria::kNotZero, 0.0);

  // --- Speed category (diagnostics). --------------------------------------
  auto catHi = m.addCompareToConst("cat_hi", trainSpeed, model::RelOp::kGt,
                                   200.0);
  auto catMid = m.addCompareToConst("cat_mid", trainSpeed, model::RelOp::kGt,
                                    100.0);
  auto two = m.addConstant("two", Scalar::i(2));
  auto catInner = m.addSwitch("cat_inner", one, catMid, zero,
                              model::SwitchCriteria::kNotZero, 0.0);
  auto speedCat = m.addSwitch("speed_cat", two, catHi, catInner,
                              model::SwitchCriteria::kNotZero, 0.0);

  m.addOutport("brake_force", forceSat);
  m.addOutport("wsp_state", wspState);
  m.addOutport("sanding", sandOut);
  m.addOutport("speed_category", speedCat);
  return m;
}

}  // namespace stcg::bench
