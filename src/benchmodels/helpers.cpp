#include "benchmodels/helpers.h"

namespace stcg::bench {

using model::Model;
using model::PortRef;

PortRef orAll(Model& m, const std::string& name,
              const std::vector<PortRef>& xs) {
  if (xs.empty()) return m.addConstant(name + "_false", expr::Scalar::b(false));
  if (xs.size() == 1) return xs[0];
  return m.addLogical(name, model::LogicOp::kOr, xs);
}

PortRef andAll(Model& m, const std::string& name,
               const std::vector<PortRef>& xs) {
  if (xs.empty()) return m.addConstant(name + "_true", expr::Scalar::b(true));
  if (xs.size() == 1) return xs[0];
  return m.addLogical(name, model::LogicOp::kAnd, xs);
}

PortRef firstTrueIndex(Model& m, const std::string& name,
                       const std::vector<PortRef>& conds, int fallback) {
  PortRef acc =
      m.addConstant(name + "_none", expr::Scalar::i(fallback));
  for (int i = static_cast<int>(conds.size()) - 1; i >= 0; --i) {
    auto idx = m.addConstant(name + "_i" + std::to_string(i),
                             expr::Scalar::i(i));
    acc = m.addSwitch(name + "_sel" + std::to_string(i), idx,
                      conds[static_cast<std::size_t>(i)], acc,
                      model::SwitchCriteria::kNotZero, 0.0);
  }
  return acc;
}

SlotScan scanSlots(Model& m, const std::string& name, int slots,
                   int validStore, int keyStore, PortRef key) {
  SlotScan out;
  for (int i = 0; i < slots; ++i) {
    const std::string p = name + std::to_string(i);
    auto idx = m.addConstant(p + "_idx", expr::Scalar::i(i));
    auto valid = m.addDataStoreReadElem(p + "_valid", validStore, idx);
    auto slotKey = m.addDataStoreReadElem(p + "_key", keyStore, idx);
    auto validB =
        m.addCompareToConst(p + "_isvalid", valid, model::RelOp::kNe, 0.0);
    auto keyEq = m.addRelational(p + "_keyeq", model::RelOp::kEq, slotKey, key);
    out.match.push_back(
        m.addLogical(p + "_match", model::LogicOp::kAnd, {validB, keyEq}));
  }
  out.any = orAll(m, name + "_any", out.match);
  out.index = firstTrueIndex(m, name + "_first", out.match, slots);
  return out;
}

}  // namespace stcg::bench
