// AFC: engine air-fuel control (paper Table II).
//
// A mode chart (Off / Startup / Normal / Power / Fault) supervises a
// fuel-command pipeline: RPM-indexed base fuel table, O2-feedback integral
// trim (active in Normal mode only), power enrichment, and an O2-sensor
// plausibility monitor whose debounce counter drives the Fault mode — the
// classic "condition depends on an internal counter" structure.
#include "benchmodels/benchmodels.h"
#include "benchmodels/helpers.h"
#include "expr/builder.h"

namespace stcg::bench {

using expr::Scalar;
using expr::Type;
using model::ChartAssign;
using model::ChartBuilder;
using model::Model;
using model::PortRef;

model::Model buildAfc() {
  Model m("AFC");

  auto rpm = m.addInport("rpm", Type::kReal, 0, 8000);
  auto throttle = m.addInport("throttle", Type::kReal, 0, 100);
  auto o2 = m.addInport("o2", Type::kReal, 0, 1);
  auto engineOn = m.addInport("engine_on", Type::kBool, 0, 1);
  auto faultReset = m.addInport("fault_reset", Type::kBool, 0, 1);

  // --- O2 sensor plausibility monitor (debounced). ---------------------
  auto o2Low = m.addCompareToConst("o2_low", o2, model::RelOp::kLt, 0.05);
  auto o2High = m.addCompareToConst("o2_high", o2, model::RelOp::kGt, 0.95);
  auto o2Bad = m.addLogical("o2_bad", model::LogicOp::kOr, {o2Low, o2High});
  auto badCnt = m.addUnitDelayHole("o2_bad_count", Scalar::i(0));
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  auto cntInc = m.addSum("o2_cnt_inc", {badCnt, one}, "++");
  auto cntNext = m.addSwitch("o2_cnt_next", cntInc, o2Bad, zero,
                             model::SwitchCriteria::kNotZero, 0.0);
  auto cntSat = m.addSaturation("o2_cnt_sat", cntNext, 0, 100);
  m.bindDelayInput(badCnt, cntSat);
  auto sensorFault =
      m.addCompareToConst("sensor_fault", badCnt, model::RelOp::kGt, 5.0);

  // --- Supervisory mode chart. ------------------------------------------
  ChartBuilder cb(m, "mode");
  auto cOn = cb.input("engine_on", Type::kBool);
  auto cRpm = cb.input("rpm", Type::kReal);
  auto cThr = cb.input("throttle", Type::kReal);
  auto cFault = cb.input("sensor_fault", Type::kBool);
  auto cReset = cb.input("fault_reset", Type::kBool);
  const int tmr = cb.addVar("startup_timer", Scalar::i(0));
  const int sOff = cb.addState("Off");
  const int sStart = cb.addState("Startup");
  const int sNormal = cb.addState("Normal");
  const int sPower = cb.addState("Power");
  const int sFault = cb.addState("Fault");
  cb.setInitialState(sOff);
  cb.addTransition(sOff, sStart, cOn,
                   {ChartAssign{tmr, expr::cInt(0)}});
  cb.addTransition(sStart, sOff, expr::notE(cOn));
  cb.addTransition(sStart, sFault,
                   expr::gtE(cb.varRef(tmr), expr::cInt(20)));
  cb.addTransition(sStart, sNormal, expr::gtE(cRpm, expr::cReal(800.0)));
  cb.addDuring(sStart, tmr,
               expr::addE(cb.varRef(tmr), expr::cInt(1)));
  cb.addTransition(sNormal, sOff, expr::notE(cOn));
  cb.addTransition(sNormal, sFault, cFault);
  cb.addTransition(sNormal, sPower, expr::gtE(cThr, expr::cReal(80.0)));
  cb.addTransition(sPower, sOff, expr::notE(cOn));
  cb.addTransition(sPower, sFault, cFault);
  cb.addTransition(sPower, sNormal, expr::ltE(cThr, expr::cReal(70.0)));
  cb.addTransition(sFault, sStart, expr::andE(cReset, cOn));
  cb.addTransition(sFault, sOff, expr::notE(cOn));
  cb.exposeActiveState();
  auto chartOuts = m.addChart("mode_chart", cb.build(),
                              {engineOn, rpm, throttle, sensorFault,
                               faultReset});
  auto mode = chartOuts[0];

  // --- Fuel pipeline. ------------------------------------------------------
  auto baseFuel = m.addLookup1D("base_fuel", rpm,
                                {0, 800, 2000, 4000, 6000, 8000},
                                {2.0, 4.0, 8.0, 14.0, 20.0, 24.0});
  // Integral O2 trim, frozen outside Normal mode (anti-windup).
  auto half = m.addConstant("stoich", Scalar::r(0.5));
  auto o2Err = m.addSum("o2_err", {half, o2}, "+-");
  auto integ = m.addUnitDelayHole("o2_integrator", Scalar::r(0.0));
  auto errGain = m.addGain("o2_err_gain", o2Err, 0.05);
  auto integSum = m.addSum("integ_sum", {integ, errGain}, "++");
  auto inNormal = m.addCompareToConst("in_normal", mode, model::RelOp::kEq, 2.0);
  auto integNext = m.addSwitch("integ_gate", integSum, inNormal, integ,
                               model::SwitchCriteria::kNotZero, 0.0);
  auto integSat = m.addSaturation("integ_sat", integNext, -3.0, 3.0);
  m.bindDelayInput(integ, integSat);

  auto normalFuel = m.addSum("normal_fuel", {baseFuel, integ}, "++");
  auto powerFuel = m.addGain("power_fuel", baseFuel, 1.3);
  auto faultFuel = m.addGain("fault_fuel", baseFuel, 1.1);
  auto crankFuel = m.addConstant("crank_fuel", Scalar::r(5.0));
  auto zeroFuel = m.addConstant("zero_fuel", Scalar::r(0.0));
  auto fuel = m.addMultiportSwitch(
      "fuel_by_mode", mode, {zeroFuel, crankFuel, normalFuel, powerFuel,
                             faultFuel});
  auto fuelSat = m.addSaturation("fuel_sat", fuel, 0.0, 30.0);

  // Rich/lean indicator for diagnostics.
  auto rich = m.addCompareToConst("rich", o2, model::RelOp::kGt, 0.6);
  auto lean = m.addCompareToConst("lean", o2, model::RelOp::kLt, 0.4);
  auto mixOk = m.addLogical("mix_ok", model::LogicOp::kNor, {rich, lean});
  auto lambdaOk = m.addSwitch("lambda_ok", one, mixOk, zero,
                              model::SwitchCriteria::kNotZero, 0.0);

  m.addOutport("fuel_cmd", fuelSat);
  m.addOutport("mode", mode);
  m.addOutport("sensor_fault", sensorFault);
  m.addOutport("lambda_ok", lambdaOk);
  return m;
}

}  // namespace stcg::bench
