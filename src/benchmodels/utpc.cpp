// UTPC: underwater thruster power control (paper Table II).
//
// Command shaping (deadband, slew-rate ramp), battery-level power limits,
// thermal derating, an over-current debounce counter, and a protection
// chart (Run / Derate / Overtemp / Shutdown / EStop / Leak) that gates the
// final power output. Several protections latch and need multi-step
// histories to trip — state-dependent branches throughout.
#include "benchmodels/benchmodels.h"
#include "benchmodels/helpers.h"
#include "expr/builder.h"

namespace stcg::bench {

using expr::Scalar;
using expr::Type;
using model::ChartAssign;
using model::ChartBuilder;
using model::Model;
using model::PortRef;
using model::RegionScope;

model::Model buildUtpc() {
  Model m("UTPC");

  auto cmd = m.addInport("cmd_power", Type::kReal, -100, 100);
  auto battV = m.addInport("battery_v", Type::kReal, 30, 60);
  auto temp = m.addInport("temp", Type::kReal, -5, 120);
  auto estop = m.addInport("estop", Type::kBool, 0, 1);
  auto leak = m.addInport("water_leak", Type::kBool, 0, 1);
  auto clearFault = m.addInport("clear_fault", Type::kBool, 0, 1);

  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  auto zeroR = m.addConstant("zero_r", Scalar::r(0.0));

  // --- Command deadband and slew-rate limiting. ---------------------------
  auto absCmd = m.addAbs("abs_cmd", cmd);
  auto inDeadband =
      m.addCompareToConst("in_deadband", absCmd, model::RelOp::kLt, 3.0);
  auto shaped = m.addSwitch("deadband", zeroR, inDeadband, cmd,
                            model::SwitchCriteria::kNotZero, 0.0);
  auto applied = m.addUnitDelayHole("applied_cmd", Scalar::r(0.0));
  auto delta = m.addSum("slew_delta", {shaped, applied}, "+-");
  auto deltaSat = m.addSaturation("slew_sat", delta, -5.0, 5.0);
  auto ramped = m.addSum("ramped_cmd", {applied, deltaSat}, "++");

  // --- Battery-level power limit (case regions). --------------------------
  auto lowBatt = m.addCompareToConst("batt_low", battV, model::RelOp::kLt, 36.0);
  auto midBatt = m.addCompareToConst("batt_mid", battV, model::RelOp::kLt, 44.0);
  auto two = m.addConstant("two", Scalar::i(2));
  auto battCatInner = m.addSwitch("batt_cat_inner", one, midBatt, two,
                                  model::SwitchCriteria::kNotZero, 0.0);
  auto battCat = m.addSwitch("batt_cat", zero, lowBatt, battCatInner,
                             model::SwitchCriteria::kNotZero, 0.0);
  const auto battRegions =
      m.addSwitchCase("batt_sel", battCat, {{0}, {1}, {2}}, false);
  std::vector<std::pair<model::RegionId, PortRef>> limitArms;
  {
    RegionScope r(m, battRegions[0]);
    limitArms.emplace_back(battRegions[0],
                           m.addConstant("limit_low", Scalar::r(30.0)));
  }
  {
    RegionScope r(m, battRegions[1]);
    limitArms.emplace_back(battRegions[1],
                           m.addConstant("limit_mid", Scalar::r(60.0)));
  }
  {
    RegionScope r(m, battRegions[2]);
    limitArms.emplace_back(battRegions[2],
                           m.addConstant("limit_full", Scalar::r(100.0)));
  }
  auto battLimit = m.addMerge("batt_limit", limitArms, Scalar::r(30.0));

  // --- Thermal derating. ----------------------------------------------------
  auto deratingTbl = m.addLookup1D("derating", temp,
                                   {0, 40, 60, 80, 100, 120},
                                   {1.0, 1.0, 0.85, 0.6, 0.3, 0.0});
  auto hotWarn = m.addCompareToConst("hot_warn", temp, model::RelOp::kGt, 60.0);
  auto hotTrip = m.addCompareToConst("hot_trip", temp, model::RelOp::kGt, 95.0);

  // --- Over-current estimate and debounce. ----------------------------------
  auto absRamped = m.addAbs("abs_ramped", ramped);
  auto kI = m.addGain("current_gain", absRamped, 0.8);
  auto current = m.addProduct("current_est", {kI, battV}, "*/");
  auto currGain = m.addGain("current_scale", current, 48.0);
  auto overI =
      m.addCompareToConst("over_current", currGain, model::RelOp::kGt, 70.0);
  auto ocCnt = m.addUnitDelayHole("oc_count", Scalar::i(0));
  auto ocInc = m.addSum("oc_inc", {ocCnt, one}, "++");
  auto ocDecRaw = m.addSum("oc_dec", {ocCnt, one}, "+-");
  auto ocDec = m.addSaturation("oc_dec_sat", ocDecRaw, 0, 100);
  auto ocNext = m.addSwitch("oc_next", ocInc, overI, ocDec,
                            model::SwitchCriteria::kNotZero, 0.0);
  auto ocSat = m.addSaturation("oc_sat", ocNext, 0, 100);
  m.bindDelayInput(ocCnt, ocSat);
  auto ocTrip = m.addCompareToConst("oc_trip", ocCnt, model::RelOp::kGt, 6.0);

  // --- Protection chart. ------------------------------------------------------
  ChartBuilder cb(m, "prot");
  auto cEstop = cb.input("estop", Type::kBool);
  auto cLeak = cb.input("water_leak", Type::kBool);
  auto cHotWarn = cb.input("hot_warn", Type::kBool);
  auto cHotTrip = cb.input("hot_trip", Type::kBool);
  auto cOcTrip = cb.input("oc_trip", Type::kBool);
  auto cClear = cb.input("clear_fault", Type::kBool);
  const int trips = cb.addVar("trip_count", Scalar::i(0));
  const int cool = cb.addVar("cooldown", Scalar::i(0));
  const int sRun = cb.addState("Run");
  const int sDerate = cb.addState("Derate");
  const int sOvertemp = cb.addState("Overtemp");
  const int sShutdown = cb.addState("Shutdown");
  const int sEstop = cb.addState("EStop");
  const int sLeak = cb.addState("Leak");
  cb.setInitialState(sRun);
  const auto bumpTrips =
      ChartAssign{trips, expr::addE(cb.varRef(trips), expr::cInt(1))};
  cb.addTransition(sRun, sEstop, cEstop);
  cb.addTransition(sRun, sLeak, cLeak);
  cb.addTransition(sRun, sOvertemp, cHotTrip, {bumpTrips});
  cb.addTransition(sRun, sShutdown, cOcTrip, {bumpTrips});
  cb.addTransition(sRun, sDerate, cHotWarn);
  cb.addTransition(sDerate, sEstop, cEstop);
  cb.addTransition(sDerate, sLeak, cLeak);
  cb.addTransition(sDerate, sOvertemp, cHotTrip, {bumpTrips});
  cb.addTransition(sDerate, sShutdown, cOcTrip, {bumpTrips});
  cb.addTransition(sDerate, sRun, expr::notE(cHotWarn));
  cb.addTransition(sOvertemp, sEstop, cEstop);
  cb.addTransition(
      sOvertemp, sDerate,
      expr::andE(expr::notE(cHotTrip),
                 expr::gtE(cb.varRef(cool), expr::cInt(10))));
  cb.addDuring(sOvertemp, cool, expr::addE(cb.varRef(cool), expr::cInt(1)));
  cb.addTransition(sShutdown, sEstop, cEstop);
  cb.addTransition(
      sShutdown, sRun,
      expr::andE(cClear, expr::leE(cb.varRef(trips), expr::cInt(3))),
      {ChartAssign{cool, expr::cInt(0)}});
  cb.addTransition(sEstop, sRun,
                   expr::andE(expr::notE(cEstop), cClear),
                   {ChartAssign{trips, expr::cInt(0)}});
  cb.addTransition(sLeak, sEstop, cEstop);
  cb.exposeActiveState();
  auto protOuts = m.addChart("prot_chart", cb.build(),
                             {estop, leak, hotWarn, hotTrip, ocTrip,
                              clearFault});
  auto protState = protOuts[0];

  // --- Final power gate. --------------------------------------------------
  auto derated = m.addProduct("derated_cmd", {ramped, deratingTbl}, "**");
  auto negLimit = m.addGain("neg_limit", battLimit, -1.0);
  auto upperClamped =
      m.addMinMax("upper_clamp", model::MinMaxOp::kMin, derated, battLimit);
  auto limited =
      m.addMinMax("lower_clamp", model::MinMaxOp::kMax, upperClamped, negLimit);
  auto halfPower = m.addGain("half_power", limited, 0.5);
  auto power = m.addMultiportSwitch(
      "power_by_state", protState,
      {limited, halfPower, zeroR, zeroR, zeroR, zeroR});
  m.bindDelayInput(applied, ramped);

  auto reverse = m.addCompareToConst("reversing", power, model::RelOp::kLt, 0.0);

  m.addOutport("power_out", power);
  m.addOutport("prot_state", protState);
  m.addOutport("current_est", currGain);
  m.addOutport("reversing", reverse);
  m.addOutport("batt_category", battCat);
  return m;
}

}  // namespace stcg::bench
