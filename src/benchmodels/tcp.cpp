// TCP: three-way handshake protocol endpoint (paper Table II).
//
// A full TCP connection state machine (both active and passive open, data
// transfer accounting, and the four-way close) driven by application
// events and incoming segments. Sequence-number bookkeeping (iss, rcv_nxt,
// snd_nxt) makes the interesting guards — "ack == snd_nxt", "seq ==
// rcv_nxt" — equalities against values the endpoint chose in earlier
// steps, the paper's exemplar of why state-aware one-step solving wins
// ("STCG can obtain the various handshake states ... it is easy to solve
// the relevant branches of the second or the third handshake based on the
// existing handshake states").
#include "benchmodels/benchmodels.h"
#include "benchmodels/helpers.h"
#include "expr/builder.h"

namespace stcg::bench {

using expr::Scalar;
using expr::Type;
using model::ChartAssign;
using model::ChartBuilder;
using model::Model;
using model::PortRef;

model::Model buildTcp() {
  Model m("TCP");

  // Application events: 0 none, 1 passive open, 2 active open, 3 send,
  // 4 close, 5 abort.
  auto appEv = m.addInport("app_event", Type::kInt, 0, 5);
  auto pktValid = m.addInport("pkt_valid", Type::kBool, 0, 1);
  auto pktFlags = m.addInport("pkt_flags", Type::kInt, 0, 15);  // SYN|ACK|FIN|RST
  auto pktSeq = m.addInport("pkt_seq", Type::kInt, 0, 4095);
  auto pktAck = m.addInport("pkt_ack", Type::kInt, 0, 4095);
  auto pktLen = m.addInport("pkt_len", Type::kInt, 0, 7);

  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));

  // Flag bit extraction (kept as model logic so each bit is a condition).
  const auto bitOf = [&](const std::string& name, int bit) {
    auto div = m.addConstant(name + "_div", Scalar::i(std::int64_t{1} << bit));
    auto shifted = m.addProduct(name + "_shift", {pktFlags, div}, "*/");
    auto halfC = m.addConstant(name + "_half", Scalar::i(2));
    auto halves = m.addProduct(name + "_halves", {shifted, halfC}, "*/");
    auto doubled = m.addGain(name + "_dbl", halves, 2.0);
    auto rem = m.addSum(name + "_rem", {shifted, doubled}, "+-");
    return m.addCompareToConst(name, rem, model::RelOp::kNe, 0.0);
  };
  auto fSyn = bitOf("flag_syn", 0);
  auto fAck = bitOf("flag_ack", 1);
  auto fFin = bitOf("flag_fin", 2);
  auto fRst = bitOf("flag_rst", 3);

  // --- Connection chart. ---------------------------------------------------
  ChartBuilder cb(m, "conn");
  auto cEv = cb.input("app_event", Type::kInt);
  auto cValid = cb.input("pkt_valid", Type::kBool);
  auto cSyn = cb.input("syn", Type::kBool);
  auto cAck = cb.input("ack", Type::kBool);
  auto cFin = cb.input("fin", Type::kBool);
  auto cRst = cb.input("rst", Type::kBool);
  auto cSeq = cb.input("seq", Type::kInt);
  auto cAckNo = cb.input("ackno", Type::kInt);
  auto cLen = cb.input("len", Type::kInt);

  const int iss = cb.addVar("iss", Scalar::i(7));        // our initial seq
  const int sndNxt = cb.addVar("snd_nxt", Scalar::i(0)); // next seq to send
  const int rcvNxt = cb.addVar("rcv_nxt", Scalar::i(0)); // next seq expected
  const int retries = cb.addVar("retries", Scalar::i(0));
  const int sent = cb.addVar("segments_sent", Scalar::i(0));
  const int rcvd = cb.addVar("segments_rcvd", Scalar::i(0));
  const int twTimer = cb.addVar("time_wait_timer", Scalar::i(0));

  const int sClosed = cb.addState("Closed");
  const int sListen = cb.addState("Listen");
  const int sSynSent = cb.addState("SynSent");
  const int sSynRcvd = cb.addState("SynRcvd");
  const int sEstab = cb.addState("Established");
  const int sFinWait1 = cb.addState("FinWait1");
  const int sFinWait2 = cb.addState("FinWait2");
  const int sCloseWait = cb.addState("CloseWait");
  const int sLastAck = cb.addState("LastAck");
  const int sClosing = cb.addState("Closing");
  const int sTimeWait = cb.addState("TimeWait");
  cb.setInitialState(sClosed);

  const auto evIs = [&](std::int64_t v) {
    return expr::eqE(cEv, expr::cInt(v));
  };
  const auto seg = [&](const expr::ExprPtr& flagsCond) {
    return expr::andE(cValid, flagsCond);
  };
  const auto modSeq = [&](expr::ExprPtr e) {
    return expr::modE(std::move(e), expr::cInt(4096));
  };
  // ack acceptable: ack == snd_nxt (the handshake equality).
  const auto ackOk = expr::eqE(cAckNo, cb.varRef(sndNxt));
  // in-order segment: seq == rcv_nxt.
  const auto seqOk = expr::eqE(cSeq, cb.varRef(rcvNxt));

  // --- Opens. ---
  cb.addTransition(sClosed, sListen, evIs(1), {}, "passive_open");
  cb.addTransition(
      sClosed, sSynSent, evIs(2),
      {ChartAssign{sndNxt, modSeq(expr::addE(cb.varRef(iss), expr::cInt(1)))},
       ChartAssign{retries, expr::cInt(0)}},
      "active_open");

  // --- Listen. ---
  cb.addTransition(sListen, sClosed, evIs(4), {}, "listen_close");
  cb.addTransition(
      sListen, sSynRcvd, seg(expr::andE(cSyn, expr::notE(cRst))),
      {ChartAssign{rcvNxt, modSeq(expr::addE(cSeq, expr::cInt(1)))},
       ChartAssign{sndNxt, modSeq(expr::addE(cb.varRef(iss), expr::cInt(1)))}},
      "rx_syn");

  // --- SynSent. ---
  cb.addTransition(sSynSent, sClosed, seg(cRst), {}, "synsent_rst");
  cb.addTransition(
      sSynSent, sEstab,
      seg(expr::andE(cSyn, expr::andE(cAck, ackOk))),
      {ChartAssign{rcvNxt, modSeq(expr::addE(cSeq, expr::cInt(1)))}},
      "rx_synack");
  cb.addTransition(
      sSynSent, sSynRcvd, seg(expr::andE(cSyn, expr::notE(cAck))),
      {ChartAssign{rcvNxt, modSeq(expr::addE(cSeq, expr::cInt(1)))}},
      "simultaneous_open");
  cb.addTransition(
      sSynSent, sClosed, expr::gtE(cb.varRef(retries), expr::cInt(5)),
      {ChartAssign{retries, expr::cInt(0)}}, "syn_timeout");
  cb.addDuring(sSynSent, retries,
               expr::addE(cb.varRef(retries), expr::cInt(1)));

  // --- SynRcvd. ---
  cb.addTransition(sSynRcvd, sClosed, seg(cRst), {}, "synrcvd_rst");
  cb.addTransition(
      sSynRcvd, sEstab, seg(expr::andE(cAck, ackOk)),
      {ChartAssign{retries, expr::cInt(0)}}, "handshake_done");
  cb.addTransition(sSynRcvd, sFinWait1, evIs(4), {}, "synrcvd_close");

  // --- Established: data both ways, close initiation. ---
  cb.addTransition(sEstab, sClosed, seg(cRst), {}, "estab_rst");
  cb.addTransition(
      sEstab, sCloseWait, seg(expr::andE(cFin, seqOk)),
      {ChartAssign{rcvNxt, modSeq(expr::addE(cSeq, expr::cInt(1)))}},
      "rx_fin");
  cb.addTransition(
      sEstab, sEstab,
      seg(expr::andE(seqOk, expr::gtE(cLen, expr::cInt(0)))),
      {ChartAssign{rcvNxt, modSeq(expr::addE(cSeq, cLen))},
       ChartAssign{rcvd, expr::addE(cb.varRef(rcvd), expr::cInt(1))}},
      "rx_data");
  cb.addTransition(
      sEstab, sEstab, evIs(3),
      {ChartAssign{sndNxt, modSeq(expr::addE(cb.varRef(sndNxt), expr::cInt(1)))},
       ChartAssign{sent, expr::addE(cb.varRef(sent), expr::cInt(1))}},
      "tx_data");
  cb.addTransition(
      sEstab, sFinWait1, evIs(4),
      {ChartAssign{sndNxt, modSeq(expr::addE(cb.varRef(sndNxt), expr::cInt(1)))}},
      "app_close");

  // --- Four-way close. ---
  cb.addTransition(sFinWait1, sClosed, seg(cRst), {}, "fw1_rst");
  cb.addTransition(
      sFinWait1, sClosing, seg(expr::andE(cFin, expr::notE(cAck))),
      {ChartAssign{rcvNxt, modSeq(expr::addE(cSeq, expr::cInt(1)))}},
      "simultaneous_close");
  cb.addTransition(
      sFinWait1, sTimeWait,
      seg(expr::andE(cFin, expr::andE(cAck, ackOk))),
      {ChartAssign{rcvNxt, modSeq(expr::addE(cSeq, expr::cInt(1)))},
       ChartAssign{twTimer, expr::cInt(0)}},
      "fin_ack_fin");
  cb.addTransition(sFinWait1, sFinWait2, seg(expr::andE(cAck, ackOk)), {},
                   "fin_acked");
  cb.addTransition(sFinWait2, sClosed, seg(cRst), {}, "fw2_rst");
  cb.addTransition(
      sFinWait2, sTimeWait, seg(expr::andE(cFin, seqOk)),
      {ChartAssign{rcvNxt, modSeq(expr::addE(cSeq, expr::cInt(1)))},
       ChartAssign{twTimer, expr::cInt(0)}},
      "rx_fin_fw2");
  cb.addTransition(
      sCloseWait, sLastAck, evIs(4),
      {ChartAssign{sndNxt, modSeq(expr::addE(cb.varRef(sndNxt), expr::cInt(1)))}},
      "closewait_close");
  cb.addTransition(sLastAck, sClosed, seg(expr::andE(cAck, ackOk)), {},
                   "last_ack");
  cb.addTransition(sClosing, sTimeWait, seg(expr::andE(cAck, ackOk)),
                   {ChartAssign{twTimer, expr::cInt(0)}}, "closing_acked");
  cb.addTransition(sTimeWait, sClosed,
                   expr::gtE(cb.varRef(twTimer), expr::cInt(6)), {},
                   "time_wait_done");
  cb.addDuring(sTimeWait, twTimer,
               expr::addE(cb.varRef(twTimer), expr::cInt(1)));

  // Abort from anywhere meaningful.
  cb.addTransition(sEstab, sClosed, evIs(5), {}, "estab_abort");
  cb.addTransition(sSynRcvd, sClosed, evIs(5), {}, "synrcvd_abort");
  cb.addTransition(sSynSent, sClosed, evIs(5), {}, "synsent_abort");

  cb.exposeOutput(sndNxt);
  cb.exposeOutput(rcvNxt);
  cb.exposeOutput(sent);
  cb.exposeOutput(rcvd);
  cb.exposeActiveState();
  auto outs = m.addChart("conn_chart", cb.build(),
                         {appEv, pktValid, fSyn, fAck, fFin, fRst, pktSeq,
                          pktAck, pktLen});
  auto sndNxtOut = outs[0], rcvNxtOut = outs[1];
  auto sentOut = outs[2], rcvdOut = outs[3], connState = outs[4];

  // --- Derived diagnostics. ------------------------------------------------
  auto established = m.addCompareToConst("is_established", connState,
                                         model::RelOp::kEq, 4.0);
  auto closingStates = m.addCompareToConst("in_teardown", connState,
                                           model::RelOp::kGe, 5.0);
  auto txWindow = m.addSum("tx_minus_rx", {sentOut, rcvdOut}, "+-");
  auto unbalanced =
      m.addCompareToConst("unbalanced", txWindow, model::RelOp::kGt, 4.0);
  auto busy = m.addLogical("busy", model::LogicOp::kOr,
                           {established, closingStates});
  auto flowWarn = m.addLogical("flow_warn", model::LogicOp::kAnd,
                               {busy, unbalanced});
  auto warnFlag = m.addSwitch("warn_flag", one, flowWarn, zero,
                              model::SwitchCriteria::kNotZero, 0.0);

  m.addOutport("conn_state", connState);
  m.addOutport("snd_nxt", sndNxtOut);
  m.addOutport("rcv_nxt", rcvNxtOut);
  m.addOutport("segments_sent", sentOut);
  m.addOutport("segments_rcvd", rcvdOut);
  m.addOutport("flow_warn", warnFlag);
  return m;
}

}  // namespace stcg::bench
