#include "benchmodels/benchmodels.h"

#include <stdexcept>

namespace stcg::bench {

const std::vector<BenchModelInfo>& allBenchModels() {
  static const std::vector<BenchModelInfo> kModels = {
      {"CPUTask", "AutoSAR CPU task dispatch system", 107, 275, buildCpuTask},
      {"AFC", "Engine air-fuel control system", 35, 125, buildAfc},
      {"TWC", "Train wheel speed controller", 80, 214, buildTwc},
      {"NICProtocol", "Vehicle NIC communication protocol", 46, 294,
       buildNicProtocol},
      {"UTPC", "Underwater thruster power control", 92, 214, buildUtpc},
      {"LANSwitch", "LAN Switch controller", 131, 570, buildLanSwitch},
      {"LEDLC", "LED matrix load control", 94, 270, buildLedlc},
      {"TCP", "TCP three-way handshake protocol", 146, 330, buildTcp},
  };
  return kModels;
}

model::Model buildBenchModel(const std::string& name) {
  for (const auto& info : allBenchModels()) {
    if (info.name == name) return info.build();
  }
  throw std::out_of_range("unknown benchmark model: " + name);
}

}  // namespace stcg::bench
