// LANSwitch: LAN switch controller (paper Table II).
//
// A learning L2 switch: an 8-entry MAC table (parallel array stores for
// address, port, VLAN and validity), source-address learning with
// insert/update/table-full outcomes, destination lookup with VLAN and
// port-state filtering, flooding fallback, and per-port statistics.
// Like CPUTask, almost every interesting branch needs the table to hold
// specific prior frames.
#include "benchmodels/benchmodels.h"
#include "benchmodels/helpers.h"
#include "expr/builder.h"

namespace stcg::bench {

using expr::Scalar;
using expr::Type;
using model::Model;
using model::PortRef;
using model::RegionScope;

namespace {
constexpr int kEntries = 8;
constexpr int kPorts = 4;
}

model::Model buildLanSwitch() {
  Model m("LANSwitch");

  auto inPort = m.addInport("in_port", Type::kInt, 0, kPorts - 1);
  auto srcMac = m.addInport("src_mac", Type::kInt, 0, 65535);
  auto dstMac = m.addInport("dst_mac", Type::kInt, 0, 65535);
  auto vlan = m.addInport("vlan", Type::kInt, 0, 3);
  auto frameValid = m.addInport("frame_valid", Type::kBool, 0, 1);
  auto portMask = m.addInport("port_up_mask", Type::kInt, 0, 15);

  const int macStore = m.addDataStore("macs", Type::kInt, kEntries, Scalar::i(0));
  const int portStore =
      m.addDataStore("ports", Type::kInt, kEntries, Scalar::i(0));
  const int vlanStore =
      m.addDataStore("vlans", Type::kInt, kEntries, Scalar::i(0));
  const int validStore =
      m.addDataStore("valids", Type::kInt, kEntries, Scalar::i(0));
  const int learnedStore = m.addDataStore("learned", Type::kInt, 1, Scalar::i(0));
  const int floodedStore = m.addDataStore("flooded", Type::kInt, 1, Scalar::i(0));

  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  auto learned = m.addDataStoreRead("learned_rd", learnedStore);
  auto flooded = m.addDataStoreRead("flooded_rd", floodedStore);

  // Per-port up bits from the mask: up_i = (mask / 2^i) % 2.
  std::vector<PortRef> portUp;
  for (int p = 0; p < kPorts; ++p) {
    // (mask / 2^p) % 2 via integer ops: shifted - 2*(shifted/2).
    auto div = m.addConstant("bit_div" + std::to_string(p),
                             Scalar::i(std::int64_t{1} << p));
    auto shifted = m.addProduct("mask_shift" + std::to_string(p),
                                {portMask, div}, "*/");
    auto halfC = m.addConstant("half_c" + std::to_string(p), Scalar::i(2));
    auto halves = m.addProduct("mask_half" + std::to_string(p),
                               {shifted, halfC}, "*/");
    auto doubled = m.addGain("mask_dbl" + std::to_string(p), halves, 2.0);
    auto rem = m.addSum("mask_rem" + std::to_string(p), {shifted, doubled},
                        "+-");
    portUp.push_back(m.addCompareToConst("port_up" + std::to_string(p), rem,
                                         model::RelOp::kNe, 0.0));
  }

  PortRef fwdPortOut, floodOut, learnResultOut;

  // Everything below only runs for valid frames.
  const auto frameRegion = m.addEnabled("frame_ok", frameValid);
  {
    RegionScope frame(m, frameRegion);

    // --- Learning: update if src known, insert otherwise. ----------------
    const auto srcScan =
        scanSlots(m, "src_scan", kEntries, validStore, macStore, srcMac);
    std::vector<std::pair<model::RegionId, PortRef>> learnArms;
    const auto srcIf = m.addIfElse("src_known", srcScan.any);
    {
      RegionScope update(m, srcIf.thenRegion);
      m.addDataStoreWriteElem("upd_port", portStore, srcScan.index, inPort);
      m.addDataStoreWriteElem("upd_vlan", vlanStore, srcScan.index, vlan);
      learnArms.emplace_back(srcIf.thenRegion, one);
    }
    {
      RegionScope insert(m, srcIf.elseRegion);
      std::vector<PortRef> freeConds;
      for (int i = 0; i < kEntries; ++i) {
        auto idx = m.addConstant("ins_idx" + std::to_string(i), Scalar::i(i));
        auto v = m.addDataStoreReadElem("ins_v" + std::to_string(i),
                                        validStore, idx);
        freeConds.push_back(m.addCompareToConst(
            "ins_free" + std::to_string(i), v, model::RelOp::kEq, 0.0));
      }
      auto anyFree = orAll(m, "ins_anyfree", freeConds);
      const auto roomIf = m.addIfElse("ins_room", anyFree);
      {
        RegionScope room(m, roomIf.thenRegion);
        auto freeIdx = firstTrueIndex(m, "ins_slot", freeConds, kEntries - 1);
        m.addDataStoreWriteElem("ins_mac", macStore, freeIdx, srcMac);
        m.addDataStoreWriteElem("ins_port", portStore, freeIdx, inPort);
        m.addDataStoreWriteElem("ins_vlan", vlanStore, freeIdx, vlan);
        m.addDataStoreWriteElem("ins_valid", validStore, freeIdx, one);
        auto inc = m.addSum("learned_inc", {learned, one}, "++");
        m.addDataStoreWrite("learned_w", learnedStore, inc);
        learnArms.emplace_back(roomIf.thenRegion, one);
      }
      {
        RegionScope full(m, roomIf.elseRegion);
        learnArms.emplace_back(roomIf.elseRegion, zero);  // table full
      }
    }
    auto learnResult = m.addMerge("learn_result", learnArms, Scalar::i(-1));

    // --- Forwarding: unicast when known+filtered, flood otherwise. --------
    const auto dstScan =
        scanSlots(m, "dst_scan", kEntries, validStore, macStore, dstMac);
    auto entryVlan =
        m.addDataStoreReadElem("entry_vlan", vlanStore, dstScan.index);
    auto vlanOk =
        m.addRelational("vlan_ok", model::RelOp::kEq, entryVlan, vlan);
    auto entryPort =
        m.addDataStoreReadElem("entry_port", portStore, dstScan.index);
    auto samePort =
        m.addRelational("same_port", model::RelOp::kEq, entryPort, inPort);
    auto notSame = m.addLogical("not_same", model::LogicOp::kNot, {samePort});
    // Destination port must be up: dstUp = OR_i (entryPort == i && up_i).
    std::vector<PortRef> upTerms;
    for (int p = 0; p < kPorts; ++p) {
      auto pc = m.addConstant("pnum" + std::to_string(p), Scalar::i(p));
      auto isP =
          m.addRelational("is_port" + std::to_string(p), model::RelOp::kEq,
                          entryPort, pc);
      upTerms.push_back(m.addLogical("up_term" + std::to_string(p),
                                     model::LogicOp::kAnd,
                                     {isP, portUp[static_cast<std::size_t>(p)]}));
    }
    auto dstUp = orAll(m, "dst_up", upTerms);
    auto unicastOk = m.addLogical(
        "unicast_ok", model::LogicOp::kAnd,
        {dstScan.any, vlanOk, notSame, dstUp});

    std::vector<std::pair<model::RegionId, PortRef>> fwdArms;
    std::vector<std::pair<model::RegionId, PortRef>> floodArms;
    const auto fwdIf = m.addIfElse("do_unicast", unicastOk);
    {
      RegionScope uni(m, fwdIf.thenRegion);
      fwdArms.emplace_back(fwdIf.thenRegion, entryPort);
      floodArms.emplace_back(fwdIf.thenRegion, zero);
    }
    {
      RegionScope flood(m, fwdIf.elseRegion);
      auto inc = m.addSum("flooded_inc", {flooded, one}, "++");
      m.addDataStoreWrite("flooded_w", floodedStore, inc);
      auto minusOne = m.addConstant("flood_port", Scalar::i(-1));
      fwdArms.emplace_back(fwdIf.elseRegion, minusOne);
      floodArms.emplace_back(fwdIf.elseRegion, one);
    }
    fwdPortOut = m.addMerge("fwd_port", fwdArms, Scalar::i(-2));
    floodOut = m.addMerge("flood_flag", floodArms, Scalar::i(0));
    learnResultOut = learnResult;
  }

  // Table occupancy diagnostics.
  std::vector<PortRef> occTerms;
  for (int i = 0; i < kEntries; ++i) {
    auto idx = m.addConstant("occ_idx" + std::to_string(i), Scalar::i(i));
    auto v = m.addDataStoreReadElem("occ_v" + std::to_string(i), validStore,
                                    idx);
    occTerms.push_back(v);
  }
  auto occupancy = m.addSum("occupancy", occTerms,
                            std::string(static_cast<std::size_t>(kEntries), '+'));
  auto tableFull = m.addCompareToConst("table_full", occupancy,
                                       model::RelOp::kGe, kEntries);

  m.addOutport("fwd_port", fwdPortOut);
  m.addOutport("flooded", floodOut);
  m.addOutport("learn_result", learnResultOut);
  m.addOutport("occupancy", occupancy);
  m.addOutport("table_full", tableFull);
  m.addOutport("learned_total", learned);
  return m;
}

}  // namespace stcg::bench
