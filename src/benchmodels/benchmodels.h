// The benchmark model suite (paper Table II), rebuilt in the model IR.
//
// All eight models are synthetic equivalents of the paper's industrial
// Simulink models: same functionality class, comparable branch/block
// scale, and — crucially — the same *mechanisms* the paper attributes to
// each (CPUTask's queue operations, TCP's handshake sequence matching,
// LEDLC's unreachable Switch-Case default, ...). See DESIGN.md §2.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "model/model.h"

namespace stcg::bench {

struct BenchModelInfo {
  std::string name;
  std::string functionality;
  int paperBranches = 0;  // Table II "#Branch"
  int paperBlocks = 0;    // Table II "#Block"
  std::function<model::Model()> build;
};

/// All eight Table-II models, in the paper's order.
[[nodiscard]] const std::vector<BenchModelInfo>& allBenchModels();

/// Build one by name; throws std::out_of_range for unknown names.
[[nodiscard]] model::Model buildBenchModel(const std::string& name);

// Individual builders.
[[nodiscard]] model::Model buildCpuTask();
[[nodiscard]] model::Model buildAfc();
[[nodiscard]] model::Model buildTwc();
[[nodiscard]] model::Model buildNicProtocol();
[[nodiscard]] model::Model buildUtpc();
[[nodiscard]] model::Model buildLanSwitch();
[[nodiscard]] model::Model buildLedlc();
[[nodiscard]] model::Model buildTcp();

/// The 13-branch simplified CPUTask of Fig. 3 / Table I: a 5-way opcode
/// dispatch with one success/failure decision per operation.
[[nodiscard]] model::Model buildCpuTaskSimplified();

}  // namespace stcg::bench
