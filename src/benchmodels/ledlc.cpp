// LEDLC: LED matrix load control (paper Table II).
//
// A four-level brightness mode cycled by a push button (edge detected),
// per-row fault masking and over-current cutoff across an 8-row matrix,
// total-load foldback, thermal derating, an AC-fail emergency mode, and an
// overload latch. The mode Switch-Case deliberately carries a default arm
// that can never execute — the mode counter is always 0..3 — reproducing
// the dead-logic branch the paper reports finding in this model
// ("there are only four LED states, and the Switch-Case block ... has an
// additional default port").
#include "benchmodels/benchmodels.h"
#include "benchmodels/helpers.h"
#include "expr/builder.h"

namespace stcg::bench {

using expr::Scalar;
using expr::Type;
using model::Model;
using model::PortRef;
using model::RegionScope;

namespace {
constexpr int kRows = 8;
}

model::Model buildLedlc() {
  Model m("LEDLC");

  auto modeBtn = m.addInport("mode_btn", Type::kBool, 0, 1);
  auto brightness = m.addInport("brightness", Type::kInt, 0, 255);
  auto temp = m.addInport("temp", Type::kReal, 0, 120);
  auto rowFaults = m.addInport("row_fault_mask", Type::kInt, 0, 255);
  auto acOk = m.addInport("ac_ok", Type::kBool, 0, 1);

  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  auto zeroR = m.addConstant("zero_r", Scalar::r(0.0));

  // --- Button edge detection and mode counter (0..3). ---------------------
  auto btnPrev = m.addUnitDelayHole("btn_prev", Scalar::b(false));
  m.bindDelayInput(btnPrev, modeBtn);
  auto notPrev = m.addLogical("btn_not_prev", model::LogicOp::kNot, {btnPrev});
  auto rising =
      m.addLogical("btn_rising", model::LogicOp::kAnd, {modeBtn, notPrev});
  auto mode = m.addUnitDelayHole("led_mode", Scalar::i(0));
  auto modeInc = m.addSum("mode_inc", {mode, one}, "++");
  auto four = m.addConstant("four", Scalar::i(4));
  auto modulo = m.addMod("mode_mod", modeInc, four);
  auto modeNext = m.addSwitch("mode_next", modulo, rising, mode,
                              model::SwitchCriteria::kNotZero, 0.0);
  m.bindDelayInput(mode, modeNext);

  // --- Target duty per mode; the default arm is dead logic by design. -----
  const auto modeRegions = m.addSwitchCase(
      "duty_by_mode", mode, {{0}, {1}, {2}, {3}}, /*addDefault=*/true);
  std::vector<std::pair<model::RegionId, PortRef>> dutyArms;
  const double dutyLevels[4] = {0.0, 30.0, 60.0, 100.0};
  for (int i = 0; i < 4; ++i) {
    RegionScope r(m, modeRegions[static_cast<std::size_t>(i)]);
    dutyArms.emplace_back(modeRegions[static_cast<std::size_t>(i)],
                          m.addConstant("duty" + std::to_string(i),
                                        Scalar::r(dutyLevels[i])));
  }
  {
    // Unreachable: mode is always in 0..3.
    RegionScope dead(m, modeRegions[4]);
    dutyArms.emplace_back(modeRegions[4],
                          m.addConstant("duty_dead", Scalar::r(50.0)));
  }
  auto baseDuty = m.addMerge("base_duty", dutyArms, Scalar::r(0.0));

  // Scale by the brightness input.
  auto brightScale = m.addGain("bright_scale", brightness, 1.0 / 255.0);
  auto duty = m.addProduct("duty_scaled", {baseDuty, brightScale}, "**");

  // --- Thermal derating and AC failure. -----------------------------------
  auto thermalTbl = m.addLookup1D("thermal", temp, {0, 50, 70, 90, 120},
                                  {1.0, 1.0, 0.8, 0.5, 0.1});
  auto dutyHot = m.addProduct("duty_hot", {duty, thermalTbl}, "**");
  auto emergencyDuty = m.addConstant("emergency_duty", Scalar::r(10.0));
  auto dutyAc = m.addSwitch("duty_ac", dutyHot, acOk, emergencyDuty,
                            model::SwitchCriteria::kNotZero, 0.0);

  // --- Per-row gating: fault bit and over-current both cut the row. -------
  std::vector<PortRef> rowCurrents;
  for (int r = 0; r < kRows; ++r) {
    const std::string p = "row" + std::to_string(r);
    auto div = m.addConstant(p + "_div", Scalar::i(std::int64_t{1} << r));
    auto shifted = m.addProduct(p + "_shift", {rowFaults, div}, "*/");
    auto halfC = m.addConstant(p + "_half", Scalar::i(2));
    auto halves = m.addProduct(p + "_halves", {shifted, halfC}, "*/");
    auto doubled = m.addGain(p + "_dbl", halves, 2.0);
    auto bit = m.addSum(p + "_bit", {shifted, doubled}, "+-");
    auto faulted = m.addCompareToConst(p + "_faulted", bit, model::RelOp::kNe,
                                       0.0);
    auto rowDuty = m.addSwitch(p + "_duty", zeroR, faulted, dutyAc,
                               model::SwitchCriteria::kNotZero, 0.0);
    // Row current model: duty * row gain (rows differ slightly).
    auto current =
        m.addGain(p + "_current", rowDuty, 0.012 + 0.001 * r);
    auto overI = m.addCompareToConst(p + "_over", current, model::RelOp::kGt,
                                     1.0);
    auto gated = m.addSwitch(p + "_gate", zeroR, overI, current,
                             model::SwitchCriteria::kNotZero, 0.0);
    rowCurrents.push_back(gated);
  }
  auto totalCurrent =
      m.addSum("total_current", rowCurrents,
               std::string(static_cast<std::size_t>(kRows), '+'));

  // --- Load foldback and overload latch. ----------------------------------
  auto overload = m.addCompareToConst("overload", totalCurrent,
                                      model::RelOp::kGt, 6.0);
  auto ovCnt = m.addUnitDelayHole("overload_count", Scalar::i(0));
  auto ovInc = m.addSum("ov_inc", {ovCnt, one}, "++");
  auto ovNext = m.addSwitch("ov_next", ovInc, overload, zero,
                            model::SwitchCriteria::kNotZero, 0.0);
  auto ovSat = m.addSaturation("ov_sat", ovNext, 0, 100);
  m.bindDelayInput(ovCnt, ovSat);
  auto latched =
      m.addCompareToConst("latched", ovCnt, model::RelOp::kGt, 4.0);
  auto foldback = m.addGain("foldback_duty", dutyAc, 0.5);
  auto outDuty = m.addSwitch("out_duty", foldback, latched, dutyAc,
                             model::SwitchCriteria::kNotZero, 0.0);
  auto outSat = m.addSaturation("out_sat", outDuty, 0.0, 100.0);

  auto anyFault = m.addCompareToConst("any_fault", rowFaults,
                                      model::RelOp::kGt, 0.0);
  auto healthy = m.addLogical("healthy", model::LogicOp::kNor,
                              {anyFault, latched});
  auto healthFlag = m.addSwitch("health_flag", one, healthy, zero,
                                model::SwitchCriteria::kNotZero, 0.0);

  m.addOutport("pwm_duty", outSat);
  m.addOutport("led_mode", mode);
  m.addOutport("total_current", totalCurrent);
  m.addOutport("overload_latched", latched);
  m.addOutport("healthy", healthFlag);
  return m;
}

}  // namespace stcg::bench
