// NICProtocol: vehicle NIC communication protocol (paper Table II).
//
// A byte-stream frame parser: double sync, destination filtering
// (unicast or broadcast), length validation, payload accumulation with a
// running checksum, and checksum verification. The checksum-match branch
// is reachable only after the parser has accumulated exactly the right
// internal state over several steps — a showcase state-dependent branch.
#include "benchmodels/benchmodels.h"
#include "benchmodels/helpers.h"
#include "expr/builder.h"

namespace stcg::bench {

using expr::Scalar;
using expr::Type;
using model::ChartAssign;
using model::ChartBuilder;
using model::Model;
using model::PortRef;

model::Model buildNicProtocol() {
  Model m("NICProtocol");

  auto byte = m.addInport("byte", Type::kInt, 0, 255);
  auto valid = m.addInport("byte_valid", Type::kBool, 0, 1);
  auto myAddr = m.addInport("my_addr", Type::kInt, 0, 255);
  auto linkUp = m.addInport("link_up", Type::kBool, 0, 1);

  // --- Frame parser chart. -------------------------------------------------
  ChartBuilder cb(m, "parser");
  auto cByte = cb.input("byte", Type::kInt);
  auto cValid = cb.input("byte_valid", Type::kBool);
  auto cAddr = cb.input("my_addr", Type::kInt);
  auto cLink = cb.input("link_up", Type::kBool);
  const int len = cb.addVar("frame_len", Scalar::i(0));
  const int cnt = cb.addVar("payload_count", Scalar::i(0));
  const int sum = cb.addVar("checksum", Scalar::i(0));
  const int good = cb.addVar("good_frames", Scalar::i(0));
  const int bad = cb.addVar("bad_frames", Scalar::i(0));

  const int sIdle = cb.addState("Idle");
  const int sSync2 = cb.addState("Sync2");
  const int sDest = cb.addState("Dest");
  const int sLen = cb.addState("Len");
  const int sPayload = cb.addState("Payload");
  const int sCheck = cb.addState("Check");
  const int sDown = cb.addState("LinkDown");
  cb.setInitialState(sIdle);

  const auto byteIs = [&](std::int64_t v) {
    return expr::eqE(cByte, expr::cInt(v));
  };

  cb.addTransition(sIdle, sDown, expr::notE(cLink));
  cb.addTransition(sIdle, sSync2, expr::andE(cValid, byteIs(0xAA)));
  cb.addTransition(sSync2, sDest, expr::andE(cValid, byteIs(0x55)));
  cb.addTransition(sSync2, sIdle, cValid);  // wrong second sync byte
  // Destination filter: ours or broadcast (0xFF).
  cb.addTransition(
      sDest, sLen,
      expr::andE(cValid,
                 expr::orE(expr::eqE(cByte, cAddr), byteIs(0xFF))));
  cb.addTransition(sDest, sIdle, cValid);  // not addressed to us
  // Length: 1..16 accepted.
  cb.addTransition(
      sLen, sPayload,
      expr::andE(cValid, expr::andE(expr::geE(cByte, expr::cInt(1)),
                                    expr::leE(cByte, expr::cInt(16)))),
      {ChartAssign{len, cByte}, ChartAssign{cnt, expr::cInt(0)},
       ChartAssign{sum, expr::cInt(0)}});
  cb.addTransition(
      sLen, sIdle, cValid,
      {ChartAssign{bad, expr::addE(cb.varRef(bad), expr::cInt(1))}});
  // Payload accumulation: move to Check once len bytes consumed.
  cb.addTransition(
      sPayload, sCheck,
      expr::andE(cValid, expr::geE(expr::addE(cb.varRef(cnt), expr::cInt(1)),
                                   cb.varRef(len))),
      {ChartAssign{sum, expr::modE(expr::addE(cb.varRef(sum), cByte),
                                   expr::cInt(256))},
       ChartAssign{cnt, expr::addE(cb.varRef(cnt), expr::cInt(1))}});
  cb.addTransition(
      sPayload, sPayload, cValid,
      {ChartAssign{sum, expr::modE(expr::addE(cb.varRef(sum), cByte),
                                   expr::cInt(256))},
       ChartAssign{cnt, expr::addE(cb.varRef(cnt), expr::cInt(1))}});
  // Checksum verdict.
  cb.addTransition(
      sCheck, sIdle, expr::andE(cValid, expr::eqE(cByte, cb.varRef(sum))),
      {ChartAssign{good, expr::addE(cb.varRef(good), expr::cInt(1))}},
      "Check->Idle(good)");
  cb.addTransition(
      sCheck, sIdle, cValid,
      {ChartAssign{bad, expr::addE(cb.varRef(bad), expr::cInt(1))}},
      "Check->Idle(bad)");
  cb.addTransition(sDown, sIdle, cLink);

  cb.exposeOutput(good);
  cb.exposeOutput(bad);
  cb.exposeActiveState();
  auto outs = m.addChart("parser_chart", cb.build(),
                         {byte, valid, myAddr, linkUp});
  auto goodFrames = outs[0], badFrames = outs[1], parserState = outs[2];

  // --- Link-quality supervision. ------------------------------------------
  auto errThresh = m.addCompareToConst("errors_high", badFrames,
                                       model::RelOp::kGe, 5.0);
  auto anyGood =
      m.addCompareToConst("any_good", goodFrames, model::RelOp::kGt, 0.0);
  auto degraded = m.addLogical("degraded", model::LogicOp::kAnd,
                               {errThresh, anyGood});
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  auto two = m.addConstant("two", Scalar::i(2));
  auto healthInner = m.addSwitch("health_inner", two, degraded, zero,
                                 model::SwitchCriteria::kNotZero, 0.0);
  auto errOnly = m.addCompareToConst("errors_fatal", badFrames,
                                     model::RelOp::kGe, 10.0);
  auto health = m.addSwitch("health", one, errOnly, healthInner,
                            model::SwitchCriteria::kNotZero, 0.0);

  // Idle watchdog: consecutive invalid-byte steps while parsing.
  auto parsing = m.addCompareToConst("parsing", parserState,
                                     model::RelOp::kGt, 0.0);
  auto notValid = m.addLogical("no_byte", model::LogicOp::kNot, {valid});
  auto stalled =
      m.addLogical("stalled", model::LogicOp::kAnd, {parsing, notValid});
  auto stallCnt = m.addUnitDelayHole("stall_count", Scalar::i(0));
  auto stallInc = m.addSum("stall_inc", {stallCnt, one}, "++");
  auto stallNext = m.addSwitch("stall_next", stallInc, stalled, zero,
                               model::SwitchCriteria::kNotZero, 0.0);
  auto stallSat = m.addSaturation("stall_sat", stallNext, 0, 1000);
  m.bindDelayInput(stallCnt, stallSat);
  auto timeout =
      m.addCompareToConst("rx_timeout", stallCnt, model::RelOp::kGt, 8.0);

  m.addOutport("good_frames", goodFrames);
  m.addOutport("bad_frames", badFrames);
  m.addOutport("parser_state", parserState);
  m.addOutport("link_health", health);
  m.addOutport("rx_timeout", timeout);
  return m;
}

}  // namespace stcg::bench
