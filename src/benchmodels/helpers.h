// Shared construction idioms for the benchmark models.
#pragma once

#include <string>
#include <vector>

#include "model/model.h"

namespace stcg::bench {

/// OR-reduce a list of boolean signals (returns const false for empty).
[[nodiscard]] model::PortRef orAll(model::Model& m, const std::string& name,
                                   const std::vector<model::PortRef>& xs);

/// AND-reduce a list of boolean signals (returns const true for empty).
[[nodiscard]] model::PortRef andAll(model::Model& m, const std::string& name,
                                    const std::vector<model::PortRef>& xs);

/// Priority index chain: the index of the first true condition, or
/// `fallback` when none holds. Built from nested Switch blocks, so each
/// condition contributes one decision — the "find the matching slot"
/// structure of the CPUTask and LANSwitch models.
[[nodiscard]] model::PortRef firstTrueIndex(
    model::Model& m, const std::string& name,
    const std::vector<model::PortRef>& conds, int fallback);

/// Per-slot equality scan over parallel array stores: conds[i] =
/// (valid[i] != 0) && (key[i] == key). Returns the per-slot match signals.
struct SlotScan {
  std::vector<model::PortRef> match;  // per-slot boolean
  model::PortRef any;                 // OR of match
  model::PortRef index;               // first matching slot or `slots`
};
[[nodiscard]] SlotScan scanSlots(model::Model& m, const std::string& name,
                                 int slots, int validStore, int keyStore,
                                 model::PortRef key);

}  // namespace stcg::bench
