// CPUTask: AutoSAR CPU task dispatch system (paper Fig. 1, Table II).
//
// A task queue maintained through Add / Delete / Modify / Check / Clear
// opcodes. Deletion, modification and checking require a queue entry whose
// task id (and for Check, also its parameter) matches the input — the
// state-dependent conditions the paper's introduction builds its case on:
// a solver must effectively reason about "add first, then operate", which
// STCG sidesteps by solving one step from concrete queue states.
#include "benchmodels/benchmodels.h"
#include "benchmodels/helpers.h"

namespace stcg::bench {

using expr::Scalar;
using expr::Type;
using model::Model;
using model::PortRef;
using model::RegionScope;

namespace {
constexpr int kSlots = 8;
}

model::Model buildCpuTask() {
  Model m("CPUTask");

  auto op = m.addInport("op", Type::kInt, 0, 6);
  auto taskId = m.addInport("task_id", Type::kInt, 0, 1000000);
  auto param = m.addInport("param", Type::kInt, 0, 1000000);
  auto prio = m.addInport("prio", Type::kInt, 0, 7);

  const int validStore = m.addDataStore("valid", Type::kInt, kSlots, Scalar::i(0));
  const int idStore = m.addDataStore("ids", Type::kInt, kSlots, Scalar::i(0));
  const int paramStore =
      m.addDataStore("params", Type::kInt, kSlots, Scalar::i(0));
  const int prioStore = m.addDataStore("prios", Type::kInt, kSlots, Scalar::i(0));
  const int countStore = m.addDataStore("count", Type::kInt, 1, Scalar::i(0));

  auto count = m.addDataStoreRead("count_rd", countStore);
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));

  const auto regions = m.addSwitchCase(
      "op_dispatch", op, {{0}, {1}, {2}, {3}, {4}}, /*addDefault=*/true);
  const auto addR = regions[0], delR = regions[1], modR = regions[2],
             chkR = regions[3], clrR = regions[4], invR = regions[5];

  std::vector<std::pair<model::RegionId, PortRef>> resultArms;

  // --- ADD: insert into the first free slot unless the queue is full. ---
  {
    RegionScope scope(m, addR);
    auto notFull =
        m.addCompareToConst("add_notfull", count, model::RelOp::kLt,
                            static_cast<double>(kSlots));
    const auto ifr = m.addIfElse("add_room", notFull);
    {
      RegionScope ok(m, ifr.thenRegion);
      std::vector<PortRef> freeConds;
      for (int i = 0; i < kSlots; ++i) {
        auto idx = m.addConstant("add_idx" + std::to_string(i), Scalar::i(i));
        auto v = m.addDataStoreReadElem("add_v" + std::to_string(i),
                                        validStore, idx);
        freeConds.push_back(m.addCompareToConst(
            "add_free" + std::to_string(i), v, model::RelOp::kEq, 0.0));
      }
      auto freeIdx = firstTrueIndex(m, "add_slot", freeConds, kSlots - 1);
      m.addDataStoreWriteElem("add_wid", idStore, freeIdx, taskId);
      m.addDataStoreWriteElem("add_wparam", paramStore, freeIdx, param);
      m.addDataStoreWriteElem("add_wprio", prioStore, freeIdx, prio);
      m.addDataStoreWriteElem("add_wvalid", validStore, freeIdx, one);
      auto inc = m.addSum("add_inc", {count, one}, "++");
      m.addDataStoreWrite("add_wcount", countStore, inc);
      resultArms.emplace_back(ifr.thenRegion, one);
    }
    {
      RegionScope fail(m, ifr.elseRegion);
      resultArms.emplace_back(ifr.elseRegion, zero);
    }
  }

  // --- DELETE: remove the first slot whose id matches. ---
  {
    RegionScope scope(m, delR);
    const auto scan = scanSlots(m, "del_scan", kSlots, validStore, idStore,
                                taskId);
    const auto ifr = m.addIfElse("del_found", scan.any);
    {
      RegionScope ok(m, ifr.thenRegion);
      m.addDataStoreWriteElem("del_wvalid", validStore, scan.index, zero);
      auto dec = m.addSum("del_dec", {count, one}, "+-");
      auto decSat = m.addSaturation("del_sat", dec, 0, kSlots);
      m.addDataStoreWrite("del_wcount", countStore, decSat);
      resultArms.emplace_back(ifr.thenRegion, one);
    }
    {
      RegionScope fail(m, ifr.elseRegion);
      resultArms.emplace_back(ifr.elseRegion, zero);
    }
  }

  // --- MODIFY: rewrite param/prio of the first slot whose id matches. ---
  {
    RegionScope scope(m, modR);
    const auto scan = scanSlots(m, "mod_scan", kSlots, validStore, idStore,
                                taskId);
    const auto ifr = m.addIfElse("mod_found", scan.any);
    {
      RegionScope ok(m, ifr.thenRegion);
      m.addDataStoreWriteElem("mod_wparam", paramStore, scan.index, param);
      m.addDataStoreWriteElem("mod_wprio", prioStore, scan.index, prio);
      resultArms.emplace_back(ifr.thenRegion, one);
    }
    {
      RegionScope fail(m, ifr.elseRegion);
      resultArms.emplace_back(ifr.elseRegion, zero);
    }
  }

  // --- CHECK: does a matching task exist, and does its param also match? -
  {
    RegionScope scope(m, chkR);
    const auto scan = scanSlots(m, "chk_scan", kSlots, validStore, idStore,
                                taskId);
    const auto ifr = m.addIfElse("chk_found", scan.any);
    {
      RegionScope ok(m, ifr.thenRegion);
      auto slotParam =
          m.addDataStoreReadElem("chk_param", paramStore, scan.index);
      auto paramEq =
          m.addRelational("chk_parameq", model::RelOp::kEq, slotParam, param);
      const auto inner = m.addIfElse("chk_exact", paramEq);
      auto two = m.addConstant("two", Scalar::i(2));
      {
        RegionScope exact(m, inner.thenRegion);
        resultArms.emplace_back(inner.thenRegion, two);
      }
      {
        RegionScope idOnly(m, inner.elseRegion);
        resultArms.emplace_back(inner.elseRegion, one);
      }
    }
    {
      RegionScope fail(m, ifr.elseRegion);
      resultArms.emplace_back(ifr.elseRegion, zero);
    }
  }

  // --- CLEAR: wipe the queue if it holds anything. ---
  {
    RegionScope scope(m, clrR);
    auto nonEmpty =
        m.addCompareToConst("clr_nonempty", count, model::RelOp::kGt, 0.0);
    const auto ifr = m.addIfElse("clr_any", nonEmpty);
    {
      RegionScope ok(m, ifr.thenRegion);
      for (int i = 0; i < kSlots; ++i) {
        auto idx = m.addConstant("clr_idx" + std::to_string(i), Scalar::i(i));
        m.addDataStoreWriteElem("clr_w" + std::to_string(i), validStore, idx,
                                zero);
      }
      m.addDataStoreWrite("clr_wcount", countStore, zero);
      resultArms.emplace_back(ifr.thenRegion, one);
    }
    {
      RegionScope fail(m, ifr.elseRegion);
      resultArms.emplace_back(ifr.elseRegion, zero);
    }
  }

  // --- Invalid opcode. ---
  {
    RegionScope scope(m, invR);
    auto minusOne = m.addConstant("minus_one", Scalar::i(-1));
    resultArms.emplace_back(invR, minusOne);
  }

  auto result = m.addMerge("result", resultArms, Scalar::i(-2));
  m.addOutport("result", result);
  m.addOutport("queue_count", count);
  auto full = m.addCompareToConst("is_full", count, model::RelOp::kGe,
                                  static_cast<double>(kSlots));
  m.addOutport("queue_full", full);
  return m;
}

model::Model buildCpuTaskSimplified() {
  Model m("CPUTaskSimplified");
  auto op = m.addInport("op", Type::kInt, 0, 5);
  auto taskId = m.addInport("task_id", Type::kInt, 0, 7);
  auto param = m.addInport("param", Type::kInt, 0, 15);
  (void)param;

  constexpr int kSmallSlots = 3;
  const int validStore =
      m.addDataStore("valid", Type::kInt, kSmallSlots, Scalar::i(0));
  const int idStore =
      m.addDataStore("ids", Type::kInt, kSmallSlots, Scalar::i(0));
  const int countStore = m.addDataStore("count", Type::kInt, 1, Scalar::i(0));

  auto count = m.addDataStoreRead("count_rd", countStore);
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));

  // B1..B5 of Fig. 3: the five opcode branches.
  const auto regions = m.addSwitchCase("op_dispatch", op,
                                       {{0}, {1}, {2}, {3}},
                                       /*addDefault=*/true);
  std::vector<std::pair<model::RegionId, PortRef>> resultArms;

  // ADD (B1), with success (B6) / queue-full failure (B7).
  {
    RegionScope scope(m, regions[0]);
    auto notFull = m.addCompareToConst("add_notfull", count, model::RelOp::kLt,
                                       kSmallSlots);
    const auto ifr = m.addIfElse("add_room", notFull);
    {
      RegionScope ok(m, ifr.thenRegion);
      std::vector<PortRef> freeConds;
      for (int i = 0; i < kSmallSlots; ++i) {
        auto idx = m.addConstant("add_idx" + std::to_string(i), Scalar::i(i));
        auto v = m.addDataStoreReadElem("add_v" + std::to_string(i),
                                        validStore, idx);
        freeConds.push_back(m.addCompareToConst(
            "add_free" + std::to_string(i), v, model::RelOp::kEq, 0.0));
      }
      auto freeIdx =
          firstTrueIndex(m, "add_slot", freeConds, kSmallSlots - 1);
      m.addDataStoreWriteElem("add_wid", idStore, freeIdx, taskId);
      m.addDataStoreWriteElem("add_wvalid", validStore, freeIdx, one);
      auto inc = m.addSum("add_inc", {count, one}, "++");
      m.addDataStoreWrite("add_wcount", countStore, inc);
      resultArms.emplace_back(ifr.thenRegion, one);
    }
    resultArms.emplace_back(ifr.elseRegion, zero);
  }

  // DELETE (B2) with found (B8) / not-found (B9).
  {
    RegionScope scope(m, regions[1]);
    const auto scan =
        scanSlots(m, "del_scan", kSmallSlots, validStore, idStore, taskId);
    const auto ifr = m.addIfElse("del_found", scan.any);
    {
      RegionScope ok(m, ifr.thenRegion);
      m.addDataStoreWriteElem("del_wvalid", validStore, scan.index, zero);
      auto dec = m.addSum("del_dec", {count, one}, "+-");
      auto decSat = m.addSaturation("del_sat", dec, 0, kSmallSlots);
      m.addDataStoreWrite("del_wcount", countStore, decSat);
      resultArms.emplace_back(ifr.thenRegion, one);
    }
    resultArms.emplace_back(ifr.elseRegion, zero);
  }

  // MODIFY (B3) with found (B10) / not-found (B11).
  {
    RegionScope scope(m, regions[2]);
    const auto scan =
        scanSlots(m, "mod_scan", kSmallSlots, validStore, idStore, taskId);
    const auto ifr = m.addIfElse("mod_found", scan.any);
    {
      RegionScope ok(m, ifr.thenRegion);
      m.addDataStoreWriteElem("mod_wid", idStore, scan.index, taskId);
      resultArms.emplace_back(ifr.thenRegion, one);
    }
    resultArms.emplace_back(ifr.elseRegion, zero);
  }

  // CHECK (B4) with found (B12) / not-found (B13).
  {
    RegionScope scope(m, regions[3]);
    const auto scan =
        scanSlots(m, "chk_scan", kSmallSlots, validStore, idStore, taskId);
    const auto ifr = m.addIfElse("chk_found", scan.any);
    resultArms.emplace_back(ifr.thenRegion, one);
    resultArms.emplace_back(ifr.elseRegion, zero);
  }

  // Invalid opcode (B5).
  {
    RegionScope scope(m, regions[4]);
    auto minusOne = m.addConstant("minus_one", Scalar::i(-1));
    resultArms.emplace_back(regions[4], minusOne);
  }

  auto result = m.addMerge("result", resultArms, Scalar::i(-2));
  m.addOutport("result", result);
  m.addOutport("queue_count", count);
  return m;
}

}  // namespace stcg::bench
