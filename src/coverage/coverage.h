// Coverage bookkeeping: Decision, Condition, and MCDC.
//
// Decision Coverage  — fraction of branches (decision arms) executed.
// Condition Coverage — fraction of atomic-condition polarities observed
//                      while their decision was active (each condition
//                      counts twice: once true, once false).
// MCDC               — fraction of conditions of boolean (two-arm)
//                      decisions whose independent effect on the outcome
//                      was demonstrated by a unique-cause pair: two
//                      recorded evaluations differing only in that
//                      condition, with different decision outcomes.
//
// The tracker mirrors how Simulink's coverage tool scores a test suite:
// observations accumulate across every executed step (the suite), and
// percentages are computed over the model's static goal sets.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "compile/compiled_model.h"

namespace stcg::coverage {

/// One recorded evaluation of a boolean decision: the condition values
/// (bit i = condition i) and the outcome (true = arm 0 taken).
struct McdcVector {
  std::uint64_t mask = 0;
  bool outcome = false;

  [[nodiscard]] bool operator==(const McdcVector& o) const {
    return mask == o.mask && outcome == o.outcome;
  }
};

/// Goals proven statically unsatisfiable (by the lint / reachability
/// pass). Excluded goals drop out of the coverage denominators: a suite
/// cannot be blamed for not reaching logic that no input sequence can
/// reach. Exclusion is driven by *proofs* — applying a guessed exclusion
/// would inflate the reported percentages.
struct Exclusions {
  std::vector<int> branches;                 // branch ids
  std::vector<int> objectives;               // objective ids
  /// Unreachable condition polarities: {decision, condition, polarity}.
  struct ConditionSlot {
    int decision = -1;
    int cond = -1;
    bool polarity = false;
    [[nodiscard]] bool operator==(const ConditionSlot&) const = default;
  };
  std::vector<ConditionSlot> conditionSlots;
  /// MCDC obligations with an unreachable outcome or polarity.
  struct McdcSlot {
    int decision = -1;
    int cond = -1;
    [[nodiscard]] bool operator==(const McdcSlot&) const = default;
  };
  std::vector<McdcSlot> mcdcSlots;

  [[nodiscard]] bool empty() const {
    return branches.empty() && objectives.empty() &&
           conditionSlots.empty() && mcdcSlots.empty();
  }
  [[nodiscard]] bool operator==(const Exclusions&) const = default;
  /// Total number of excluded goals across all four kinds.
  [[nodiscard]] int count() const {
    return static_cast<int>(branches.size() + objectives.size() +
                            conditionSlots.size() + mcdcSlots.size());
  }
};

class CoverageTracker {
 public:
  explicit CoverageTracker(const compile::CompiledModel& cm);

  /// Remove proven-unreachable goals from every denominator. Observations
  /// on excluded goals are still recorded (a covered "excluded" goal would
  /// indicate an unsound proof) but no longer counted.
  void applyExclusions(const Exclusions& excl);

  /// Record that `arm` of `decisionId` executed. Returns the branch id if
  /// this arm was newly covered, -1 otherwise.
  int recordDecision(int decisionId, int arm);

  /// Record the condition values of an *active* decision evaluation.
  /// `condVals[i]` is condition i's value; `outcome` is arm==0 for
  /// boolean decisions (ignored otherwise). Returns true if any condition
  /// polarity was observed for the first time.
  bool recordConditions(int decisionId, const std::vector<bool>& condVals,
                        bool outcome);
  /// Same record, reading `count` 0/1 bytes — the allocation-free form
  /// the pooled sim::StepObservationBatch rows feed directly.
  bool recordConditions(int decisionId, const std::uint8_t* condVals,
                        std::size_t count, bool outcome);

  [[nodiscard]] bool branchCovered(int branchId) const {
    return branchCovered_.at(static_cast<std::size_t>(branchId));
  }
  [[nodiscard]] bool conditionSeen(int decisionId, int cond,
                                   bool polarity) const;

  /// Whether condition `cond` of boolean decision `decisionId` has a
  /// recorded unique-cause pair (its MCDC obligation is met).
  [[nodiscard]] bool mcdcDemonstrated(int decisionId, int cond) const;

  /// Custom test objectives. recordObjective returns true when newly met.
  bool recordObjective(int objectiveId);
  [[nodiscard]] bool objectiveCovered(int objectiveId) const;
  [[nodiscard]] std::pair<int, int> objectiveCounts() const;

  /// Raw counts over ALL branches, ignoring exclusions (coveredBranchCount
  /// includes excluded branches that were covered anyway — an unsound
  /// exclusion proof shows up here). For reporting, use branchCounts():
  /// pairing these raw counts with excluded denominators double-counts a
  /// goal as both pruned and covered, pushing ratios past 100%.
  [[nodiscard]] int coveredBranchCount() const { return coveredBranches_; }
  [[nodiscard]] int totalBranchCount() const {
    return static_cast<int>(branchCovered_.size());
  }

  /// {covered, total} over non-excluded branches only — numerator and
  /// denominator drawn from the same goal set, so covered/total always
  /// equals decisionCoverage().
  [[nodiscard]] std::pair<int, int> branchCounts() const;

  /// Percentages in [0, 1]. Empty goal sets count as fully covered.
  [[nodiscard]] double decisionCoverage() const;
  [[nodiscard]] double conditionCoverage() const;
  [[nodiscard]] double mcdcCoverage() const;

  /// Number of MCDC-demonstrated conditions and the MCDC goal count.
  [[nodiscard]] std::pair<int, int> mcdcCounts() const;
  [[nodiscard]] std::pair<int, int> conditionCounts() const;

  /// Branch ids that remain uncovered (for dead-logic reporting).
  [[nodiscard]] std::vector<int> uncoveredBranches() const;

  /// Multi-line human-readable summary.
  [[nodiscard]] std::string report() const;

  /// Serialize the mutable observation + exclusion state (covered
  /// branches, condition polarities, the ordered MCDC vector log and its
  /// demonstrated/excluded masks, objectives) as whitespace-separated
  /// tokens. The model structure is NOT serialized: restoreState() reads
  /// the stream back into a tracker constructed from the same compiled
  /// model and throws expr::EvalError when any recorded size disagrees
  /// with that model (a stale or corrupt checkpoint). MCDC vectors keep
  /// their insertion order — the unique-cause pairing of future records
  /// and the kMaxVectorsPerDecision cut-off depend on it, so a reordered
  /// restore would diverge from the uninterrupted run.
  void serializeState(std::ostream& os) const;
  void restoreState(std::istream& is);

  [[nodiscard]] bool branchExcluded(int branchId) const {
    return branchExcluded_.at(static_cast<std::size_t>(branchId));
  }
  [[nodiscard]] bool objectiveExcluded(int objectiveId) const {
    return objectiveExcluded_.at(static_cast<std::size_t>(objectiveId));
  }
  [[nodiscard]] bool conditionExcluded(int decisionId, int cond,
                                       bool polarity) const;
  [[nodiscard]] bool mcdcExcluded(int decisionId, int cond) const;

 private:
  // Shared body of the two recordConditions overloads; instantiated only
  // in coverage.cpp, where both call it.
  template <typename Vals>
  bool recordConditionsWith(int decisionId, const Vals& condVals,
                            std::size_t n, bool outcome);

  const compile::CompiledModel* cm_;
  std::vector<bool> branchCovered_;
  std::vector<bool> branchExcluded_;
  std::vector<bool> objectiveExcluded_;
  // Excluded condition polarities, indexed like condSeen_.
  std::vector<std::vector<std::array<bool, 2>>> condExcluded_;
  std::vector<std::uint64_t> mcdcExcluded_;  // bitmask per decision
  int coveredBranches_ = 0;
  std::vector<int> decisionFirstBranch_;
  // Condition polarity bitsets, indexed [decision][condition][polarity].
  std::vector<std::vector<std::array<bool, 2>>> condSeen_;
  // Recorded MCDC vectors per boolean decision (bounded), plus an
  // incrementally-maintained bitmask of demonstrated conditions.
  std::vector<std::vector<McdcVector>> mcdcVectors_;
  std::vector<std::uint64_t> mcdcDemonstrated_;
  std::vector<bool> objectiveCovered_;
  static constexpr std::size_t kMaxVectorsPerDecision = 512;
};

/// Token-stream serialization for an exclusion table (the campaign
/// checkpoint embeds one so a resumed run replays its suite against the
/// same coverage denominators). readExclusions throws expr::EvalError on
/// malformed input.
void writeExclusions(std::ostream& os, const Exclusions& excl);
[[nodiscard]] Exclusions readExclusions(std::istream& is);

}  // namespace stcg::coverage
