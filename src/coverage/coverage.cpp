#include "coverage/coverage.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "expr/eval.h"
#include "util/strings.h"

namespace stcg::coverage {

CoverageTracker::CoverageTracker(const compile::CompiledModel& cm)
    : cm_(&cm) {
  branchCovered_.assign(cm.branches.size(), false);
  decisionFirstBranch_.assign(cm.decisions.size(), -1);
  for (const auto& br : cm.branches) {
    auto& first = decisionFirstBranch_[static_cast<std::size_t>(br.decision)];
    if (first < 0) first = br.id;
  }
  condSeen_.resize(cm.decisions.size());
  for (std::size_t d = 0; d < cm.decisions.size(); ++d) {
    condSeen_[d].assign(cm.decisions[d].conditions.size(),
                        std::array<bool, 2>{false, false});
  }
  mcdcVectors_.resize(cm.decisions.size());
  mcdcDemonstrated_.assign(cm.decisions.size(), 0);
  objectiveCovered_.assign(cm.objectives.size(), false);
  branchExcluded_.assign(cm.branches.size(), false);
  objectiveExcluded_.assign(cm.objectives.size(), false);
  condExcluded_.resize(cm.decisions.size());
  for (std::size_t d = 0; d < cm.decisions.size(); ++d) {
    condExcluded_[d].assign(cm.decisions[d].conditions.size(),
                            std::array<bool, 2>{false, false});
  }
  mcdcExcluded_.assign(cm.decisions.size(), 0);
}

void CoverageTracker::applyExclusions(const Exclusions& excl) {
  for (const int b : excl.branches) {
    branchExcluded_.at(static_cast<std::size_t>(b)) = true;
  }
  for (const int o : excl.objectives) {
    objectiveExcluded_.at(static_cast<std::size_t>(o)) = true;
  }
  for (const auto& s : excl.conditionSlots) {
    condExcluded_.at(static_cast<std::size_t>(s.decision))
        .at(static_cast<std::size_t>(s.cond))[s.polarity ? 1 : 0] = true;
  }
  for (const auto& s : excl.mcdcSlots) {
    if (s.cond < 64) {
      mcdcExcluded_.at(static_cast<std::size_t>(s.decision)) |=
          (std::uint64_t{1} << s.cond);
    }
  }
}

bool CoverageTracker::conditionExcluded(int decisionId, int cond,
                                        bool polarity) const {
  return condExcluded_.at(static_cast<std::size_t>(decisionId))
      .at(static_cast<std::size_t>(cond))[polarity ? 1 : 0];
}

bool CoverageTracker::mcdcExcluded(int decisionId, int cond) const {
  if (cond >= 64) return false;
  return (mcdcExcluded_.at(static_cast<std::size_t>(decisionId)) >> cond) &
         1u;
}

int CoverageTracker::recordDecision(int decisionId, int arm) {
  const int branchId =
      decisionFirstBranch_.at(static_cast<std::size_t>(decisionId)) + arm;
  auto ref = branchCovered_.at(static_cast<std::size_t>(branchId));
  if (!ref) {
    branchCovered_[static_cast<std::size_t>(branchId)] = true;
    ++coveredBranches_;
    return branchId;
  }
  return -1;
}

template <typename Vals>
bool CoverageTracker::recordConditionsWith(int decisionId,
                                           const Vals& condVals,
                                           std::size_t n, bool outcome) {
  auto& seen = condSeen_.at(static_cast<std::size_t>(decisionId));
  assert(n == seen.size());
  bool anyNew = false;
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto& slot = seen[i][condVals[i] ? 1 : 0];
    if (!slot) {
      slot = true;
      anyNew = true;
    }
    if (i < 64 && condVals[i]) mask |= (std::uint64_t{1} << i);
  }
  const auto& d = cm_->decisions[static_cast<std::size_t>(decisionId)];
  if (!d.isBooleanDecision() || d.conditions.empty()) return anyNew;
  auto& vectors = mcdcVectors_[static_cast<std::size_t>(decisionId)];
  if (vectors.size() >= kMaxVectorsPerDecision) return anyNew;
  const McdcVector v{mask, outcome};
  if (std::find(vectors.begin(), vectors.end(), v) == vectors.end()) {
    // Unique-cause pairing against every prior vector: a single-bit mask
    // difference with opposite outcomes demonstrates that bit's condition.
    auto& demo = mcdcDemonstrated_[static_cast<std::size_t>(decisionId)];
    for (const auto& w : vectors) {
      if (w.outcome == outcome) continue;
      const std::uint64_t diff = w.mask ^ mask;
      if (diff != 0 && (diff & (diff - 1)) == 0) demo |= diff;
    }
    vectors.push_back(v);
    // A fresh vector may complete an MCDC pair; treat it as progress so
    // generators emit a test case that preserves it on replay.
    anyNew = true;
  }
  return anyNew;
}

bool CoverageTracker::recordConditions(int decisionId,
                                       const std::vector<bool>& condVals,
                                       bool outcome) {
  return recordConditionsWith(decisionId, condVals, condVals.size(), outcome);
}

bool CoverageTracker::recordConditions(int decisionId,
                                       const std::uint8_t* condVals,
                                       std::size_t count, bool outcome) {
  return recordConditionsWith(decisionId, condVals, count, outcome);
}

bool CoverageTracker::mcdcDemonstrated(int decisionId, int cond) const {
  if (cond >= 64) return false;
  return (mcdcDemonstrated_.at(static_cast<std::size_t>(decisionId)) >>
          cond) &
         1u;
}

bool CoverageTracker::conditionSeen(int decisionId, int cond,
                                    bool polarity) const {
  return condSeen_.at(static_cast<std::size_t>(decisionId))
      .at(static_cast<std::size_t>(cond))[polarity ? 1 : 0];
}

std::pair<int, int> CoverageTracker::branchCounts() const {
  int covered = 0, total = 0;
  for (std::size_t i = 0; i < branchCovered_.size(); ++i) {
    if (branchExcluded_[i]) continue;
    ++total;
    covered += branchCovered_[i] ? 1 : 0;
  }
  return {covered, total};
}

double CoverageTracker::decisionCoverage() const {
  const auto [covered, total] = branchCounts();
  if (total == 0) return 1.0;
  return static_cast<double>(covered) / static_cast<double>(total);
}

std::pair<int, int> CoverageTracker::conditionCounts() const {
  int seen = 0, total = 0;
  for (std::size_t d = 0; d < condSeen_.size(); ++d) {
    for (std::size_t c = 0; c < condSeen_[d].size(); ++c) {
      for (const int pol : {0, 1}) {
        if (condExcluded_[d][c][static_cast<std::size_t>(pol)]) continue;
        ++total;
        seen += condSeen_[d][c][static_cast<std::size_t>(pol)] ? 1 : 0;
      }
    }
  }
  return {seen, total};
}

double CoverageTracker::conditionCoverage() const {
  const auto [seen, total] = conditionCounts();
  if (total == 0) return 1.0;
  return static_cast<double>(seen) / static_cast<double>(total);
}

std::pair<int, int> CoverageTracker::mcdcCounts() const {
  int demonstrated = 0, total = 0;
  for (std::size_t d = 0; d < cm_->decisions.size(); ++d) {
    const auto& dec = cm_->decisions[d];
    if (!dec.isBooleanDecision() || dec.conditions.empty()) continue;
    const std::size_t nc = std::min<std::size_t>(dec.conditions.size(), 64);
    const std::uint64_t demo = mcdcDemonstrated_[d];
    const std::uint64_t excl = mcdcExcluded_[d];
    for (std::size_t c = 0; c < nc; ++c) {
      if ((excl >> c) & 1u) continue;
      ++total;
      if ((demo >> c) & 1u) ++demonstrated;
    }
  }
  return {demonstrated, total};
}

double CoverageTracker::mcdcCoverage() const {
  const auto [demonstrated, total] = mcdcCounts();
  if (total == 0) return 1.0;
  return static_cast<double>(demonstrated) / static_cast<double>(total);
}

bool CoverageTracker::recordObjective(int objectiveId) {
  auto idx = static_cast<std::size_t>(objectiveId);
  if (objectiveCovered_.at(idx)) return false;
  objectiveCovered_[idx] = true;
  return true;
}

bool CoverageTracker::objectiveCovered(int objectiveId) const {
  return objectiveCovered_.at(static_cast<std::size_t>(objectiveId));
}

std::pair<int, int> CoverageTracker::objectiveCounts() const {
  int met = 0, total = 0;
  for (std::size_t i = 0; i < objectiveCovered_.size(); ++i) {
    if (objectiveExcluded_[i]) continue;
    ++total;
    met += objectiveCovered_[i] ? 1 : 0;
  }
  return {met, total};
}

std::vector<int> CoverageTracker::uncoveredBranches() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < branchCovered_.size(); ++i) {
    if (!branchCovered_[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::string CoverageTracker::report() const {
  std::string out;
  int excludedBranches = 0;
  for (const bool e : branchExcluded_) excludedBranches += e ? 1 : 0;
  out += "Coverage for " + cm_->name + "\n";
  // branchCounts() keeps numerator and denominator over the same goal
  // set: coveredBranches_ also counts excluded branches covered anyway,
  // which over the excluded denominator can read as more than 100%.
  const auto [bc, bt] = branchCounts();
  out += "  Decision:  " + formatPercent(decisionCoverage()) + " (" +
         std::to_string(bc) + "/" + std::to_string(bt) + " branches)\n";
  const auto [cs, ct] = conditionCounts();
  out += "  Condition: " + formatPercent(conditionCoverage()) + " (" +
         std::to_string(cs) + "/" + std::to_string(ct) + " polarities)\n";
  const auto [ms, mt] = mcdcCounts();
  out += "  MCDC:      " + formatPercent(mcdcCoverage()) + " (" +
         std::to_string(ms) + "/" + std::to_string(mt) + " conditions)\n";
  if (const auto [met, total] = objectiveCounts(); total > 0) {
    out += "  Objectives: " + std::to_string(met) + "/" +
           std::to_string(total) + " met\n";
  }
  const auto missing = uncoveredBranches();
  if (!missing.empty()) {
    out += "  Uncovered branches:";
    for (const int b : missing) {
      const auto& br = cm_->branches[static_cast<std::size_t>(b)];
      out += " " + cm_->decisions[static_cast<std::size_t>(br.decision)].name +
             ":" + br.label;
      if (branchExcluded_[static_cast<std::size_t>(b)]) {
        out += "(unreachable)";
      }
    }
    out += "\n";
  }
  if (excludedBranches > 0) {
    out += "  Excluded as proven unreachable: " +
           std::to_string(excludedBranches) + " branches\n";
  }
  return out;
}

// ----- serialization ------------------------------------------------------

namespace {

[[noreturn]] void failCov(const std::string& what) {
  throw expr::EvalError("coverage state: " + what);
}

std::string covToken(std::istream& is, const char* what) {
  std::string tok;
  if (!(is >> tok)) failCov(std::string("unexpected EOF reading ") + what);
  return tok;
}

void covExpect(std::istream& is, const char* tag) {
  const std::string tok = covToken(is, tag);
  if (tok != tag) {
    failCov(std::string("expected tag '") + tag + "', got '" + tok + "'");
  }
}

std::uint64_t covU64(std::istream& is, const char* what, int base = 10) {
  const std::string tok = covToken(is, what);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, base);
  if (end == tok.c_str() || *end != '\0' || errno == ERANGE) {
    failCov(std::string("malformed integer for ") + what + ": '" + tok + "'");
  }
  return v;
}

/// Bit vectors are emitted as strings of '0'/'1' ("-" when empty) so the
/// stream stays token-oriented and human-diffable.
template <typename BoolVec>
void writeBits(std::ostream& os, const BoolVec& bits, std::size_t n) {
  if (n == 0) {
    os << '-';
    return;
  }
  for (std::size_t i = 0; i < n; ++i) os << (bits[i] ? '1' : '0');
}

std::string readBits(std::istream& is, std::size_t expected,
                     const char* what) {
  const std::string tok = covToken(is, what);
  if (expected == 0) {
    if (tok != "-") failCov(std::string("expected empty bits for ") + what);
    return {};
  }
  if (tok.size() != expected) {
    failCov(std::string("bit count mismatch for ") + what + ": expected " +
            std::to_string(expected) + ", got " + std::to_string(tok.size()));
  }
  for (const char c : tok) {
    if (c != '0' && c != '1') {
      failCov(std::string("malformed bit string for ") + what);
    }
  }
  return tok;
}

}  // namespace

void writeExclusions(std::ostream& os, const Exclusions& excl) {
  os << "excl " << excl.branches.size();
  for (const int b : excl.branches) os << ' ' << b;
  os << ' ' << excl.objectives.size();
  for (const int o : excl.objectives) os << ' ' << o;
  os << ' ' << excl.conditionSlots.size();
  for (const auto& s : excl.conditionSlots) {
    os << ' ' << s.decision << ' ' << s.cond << ' ' << (s.polarity ? 1 : 0);
  }
  os << ' ' << excl.mcdcSlots.size();
  for (const auto& s : excl.mcdcSlots) os << ' ' << s.decision << ' ' << s.cond;
}

Exclusions readExclusions(std::istream& is) {
  covExpect(is, "excl");
  Exclusions e;
  const auto count = [&](const char* what) {
    const std::uint64_t n = covU64(is, what);
    if (n > (std::uint64_t{1} << 32)) failCov("count out of range");
    return static_cast<std::size_t>(n);
  };
  const auto readInt = [&](const char* what) {
    return static_cast<int>(static_cast<std::int64_t>(covU64(is, what)));
  };
  const std::size_t nb = count("excluded branches");
  for (std::size_t i = 0; i < nb; ++i) e.branches.push_back(readInt("branch"));
  const std::size_t no = count("excluded objectives");
  for (std::size_t i = 0; i < no; ++i) {
    e.objectives.push_back(readInt("objective"));
  }
  const std::size_t nc = count("excluded condition slots");
  for (std::size_t i = 0; i < nc; ++i) {
    Exclusions::ConditionSlot s;
    s.decision = readInt("slot decision");
    s.cond = readInt("slot cond");
    s.polarity = covU64(is, "slot polarity") != 0;
    e.conditionSlots.push_back(s);
  }
  const std::size_t nm = count("excluded mcdc slots");
  for (std::size_t i = 0; i < nm; ++i) {
    Exclusions::McdcSlot s;
    s.decision = readInt("mcdc decision");
    s.cond = readInt("mcdc cond");
    e.mcdcSlots.push_back(s);
  }
  return e;
}

void CoverageTracker::serializeState(std::ostream& os) const {
  os << "cov-begin\nbranches " << branchCovered_.size() << ' ';
  writeBits(os, branchCovered_, branchCovered_.size());
  os << ' ';
  writeBits(os, branchExcluded_, branchExcluded_.size());
  os << "\nobjectives " << objectiveCovered_.size() << ' ';
  writeBits(os, objectiveCovered_, objectiveCovered_.size());
  os << ' ';
  writeBits(os, objectiveExcluded_, objectiveExcluded_.size());
  os << "\ndecisions " << condSeen_.size() << '\n';
  for (std::size_t d = 0; d < condSeen_.size(); ++d) {
    const std::size_t nc = condSeen_[d].size();
    os << "d " << nc << ' ';
    // Polarity-major pairs: seen[c][0] seen[c][1] per condition.
    if (nc == 0) {
      os << "- -";
    } else {
      for (std::size_t c = 0; c < nc; ++c) {
        os << (condSeen_[d][c][0] ? '1' : '0')
           << (condSeen_[d][c][1] ? '1' : '0');
      }
      os << ' ';
      for (std::size_t c = 0; c < nc; ++c) {
        os << (condExcluded_[d][c][0] ? '1' : '0')
           << (condExcluded_[d][c][1] ? '1' : '0');
      }
    }
    char hex[40];
    std::snprintf(hex, sizeof hex, " %llx %llx",
                  static_cast<unsigned long long>(mcdcDemonstrated_[d]),
                  static_cast<unsigned long long>(mcdcExcluded_[d]));
    os << hex << ' ' << mcdcVectors_[d].size();
    for (const auto& v : mcdcVectors_[d]) {
      std::snprintf(hex, sizeof hex, " %llx %d",
                    static_cast<unsigned long long>(v.mask),
                    v.outcome ? 1 : 0);
      os << hex;
    }
    os << '\n';
  }
  os << "cov-end\n";
}

void CoverageTracker::restoreState(std::istream& is) {
  covExpect(is, "cov-begin");
  covExpect(is, "branches");
  if (covU64(is, "branch count") != branchCovered_.size()) {
    failCov("branch count disagrees with the compiled model");
  }
  const std::string bc =
      readBits(is, branchCovered_.size(), "covered branches");
  const std::string be =
      readBits(is, branchExcluded_.size(), "excluded branches");
  covExpect(is, "objectives");
  if (covU64(is, "objective count") != objectiveCovered_.size()) {
    failCov("objective count disagrees with the compiled model");
  }
  const std::string oc =
      readBits(is, objectiveCovered_.size(), "covered objectives");
  const std::string oe =
      readBits(is, objectiveExcluded_.size(), "excluded objectives");
  covExpect(is, "decisions");
  if (covU64(is, "decision count") != condSeen_.size()) {
    failCov("decision count disagrees with the compiled model");
  }
  // All sizes verified: commit from here on.
  coveredBranches_ = 0;
  for (std::size_t i = 0; i < branchCovered_.size(); ++i) {
    branchCovered_[i] = bc[i] == '1';
    branchExcluded_[i] = be[i] == '1';
    coveredBranches_ += branchCovered_[i] ? 1 : 0;
  }
  for (std::size_t i = 0; i < objectiveCovered_.size(); ++i) {
    objectiveCovered_[i] = oc[i] == '1';
    objectiveExcluded_[i] = oe[i] == '1';
  }
  for (std::size_t d = 0; d < condSeen_.size(); ++d) {
    covExpect(is, "d");
    const std::size_t nc = condSeen_[d].size();
    if (covU64(is, "condition count") != nc) {
      failCov("condition count disagrees with the compiled model");
    }
    const std::string seen = readBits(is, 2 * nc, "condition seen bits");
    const std::string excl = readBits(is, 2 * nc, "condition excl bits");
    for (std::size_t c = 0; c < nc; ++c) {
      condSeen_[d][c][0] = seen[2 * c] == '1';
      condSeen_[d][c][1] = seen[2 * c + 1] == '1';
      condExcluded_[d][c][0] = excl[2 * c] == '1';
      condExcluded_[d][c][1] = excl[2 * c + 1] == '1';
    }
    mcdcDemonstrated_[d] = covU64(is, "mcdc demonstrated mask", 16);
    mcdcExcluded_[d] = covU64(is, "mcdc excluded mask", 16);
    const std::uint64_t nv = covU64(is, "mcdc vector count");
    if (nv > kMaxVectorsPerDecision) {
      failCov("mcdc vector count exceeds the per-decision bound");
    }
    mcdcVectors_[d].clear();
    mcdcVectors_[d].reserve(static_cast<std::size_t>(nv));
    for (std::uint64_t i = 0; i < nv; ++i) {
      McdcVector v;
      v.mask = covU64(is, "mcdc vector mask", 16);
      v.outcome = covU64(is, "mcdc vector outcome") != 0;
      mcdcVectors_[d].push_back(v);
    }
  }
  covExpect(is, "cov-end");
}

}  // namespace stcg::coverage
