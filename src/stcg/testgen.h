// Common test-generation vocabulary shared by STCG and the baselines:
// goals, options, test cases, events, results, and the Generator interface.
//
// A "goal" generalizes the paper's BranchList entry: branch goals are the
// paper's model branches (Def. 1); condition goals additionally target each
// atomic condition's two polarities (SLDV derives the same objectives for
// Condition/MCDC criteria), letting every generator chase Condition
// Coverage explicitly. Goal path constraints are solver-ready expressions
// over (inputs, state leaves).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compile/compiled_model.h"
#include "coverage/coverage.h"
#include "sim/simulator.h"
#include "solver/local_search.h"
#include "solver/solver.h"
#include "util/rng.h"

namespace stcg::gen {

enum class GoalKind { kBranch, kCondition, kMcdcPair, kObjective };

struct Goal {
  int id = -1;
  GoalKind kind = GoalKind::kBranch;
  int branchId = -1;    // kBranch
  int decisionId = -1;  // kCondition / kMcdcPair
  int condIndex = -1;   // kCondition / kMcdcPair
  int objectiveId = -1; // kObjective
  bool polarity = false;
  int depth = 0;
  expr::ExprPtr pathConstraint;
  std::string label;
};

/// Build the goal list for a model: one goal per branch, plus (optionally)
/// one per condition polarity, plus (optionally) one MCDC-pair obligation
/// per condition of each boolean decision.
[[nodiscard]] std::vector<Goal> buildGoals(const compile::CompiledModel& cm,
                                           bool includeConditionGoals,
                                           bool includeMcdcGoals = false);

/// Whether `goal` is already satisfied according to `cov`.
[[nodiscard]] bool goalCovered(const coverage::CoverageTracker& cov,
                               const Goal& goal);

/// Extract the input vector from a solver model (one scalar per declared
/// input, cast to its declared type). Throws expr::EvalError naming the
/// missing input when the model lacks a binding — solver models are
/// supposed to cover all variables, but a typed error beats NDEBUG UB
/// when an engine breaks that contract.
[[nodiscard]] sim::InputVector inputsFromEnv(const compile::CompiledModel& cm,
                                             const expr::Env& model);

/// Result of the dead-goal pre-verification pass (lint reachability).
struct PruneResult {
  coverage::Exclusions exclusions;
  std::vector<std::string> prunedLabels;  // label per removed goal
  int removed = 0;
};

/// Prove coverage goals statically unreachable (via the lint subsystem's
/// three-layer proof), remove them from `goals` (ids renumbered to stay
/// equal to the index), and exclude them from `tracker`'s coverage
/// denominators. The returned exclusions must also be applied to any
/// replay tracker so reported percentages match (see replaySuite).
[[nodiscard]] PruneResult pruneUnreachableGoals(
    const compile::CompiledModel& cm, std::vector<Goal>& goals,
    coverage::CoverageTracker& tracker);

struct GenOptions {
  std::int64_t budgetMillis = 3000;  // total generation budget
  std::uint64_t seed = 1;
  /// Parallelism of the state-aware solve loop (STCG only): the
  /// goal × state-tree-node grid of each round fans out across this many
  /// lanes. 1 = sequential (no threads spawned); 0 = hardware
  /// concurrency. Output is bit-identical for a fixed seed regardless of
  /// the value, provided the time budgets do not bind (see DESIGN.md,
  /// "Parallel state-aware solving").
  int jobs = 1;
  solver::SolveOptions solver{};     // per-query solver budget
  /// Engine for state-aware queries (paper future work: "incorporating
  /// more constraint solvers"). kPortfolio adds branch-distance local
  /// search behind the box solver for nonlinear residuals.
  solver::SolverKind solverKind = solver::SolverKind::kBox;
  /// Simulation engine for dynamic execution. kTape (default) runs the
  /// flattened instruction tape; kTree keeps the recursive Evaluator as a
  /// semantic oracle. Results are bit-identical either way.
  sim::EvalEngine simEngine = sim::EvalEngine::kTape;
  /// Lane width for batched lockstep tape execution (SoA lanes, see
  /// DESIGN.md §5f): the random-replay expansion and final suite replay
  /// run this many trajectories per tape pass (tape engine only), and the
  /// value is plumbed into solver::SolveOptions::batch so the local-search
  /// neighborhood scorer batches too. Output is bit-identical for any
  /// value; <= 1 disables batching.
  int batch = 8;
  int randomSeqLen = 24;             // N of Algorithm 2
  int maxTreeNodes = 4096;
  int maxUnrollDepth = 3;            // SLDV-like unrolling bound
  int randomMaxSeqLen = 40;          // SimCoTest-like sequence length cap

  // Ablation switches (STCG only).
  bool sortGoalsByDepth = true;
  bool useRandomFallback = true;
  bool solveOnAllNodes = true;  // false: solve on the root state only
  bool includeConditionGoals = true;
  /// Probability that a step of a random fallback sequence draws a fresh
  /// domain-random input instead of a solved-library input. The paper's
  /// Discussion section proposes exactly this compensation ("constructing
  /// a random input sequence using only previously solved inputs may not
  /// reach some branches, which can be compensated by attaching random
  /// methods"); 0.0 reproduces Algorithm 2 verbatim.
  double freshRandomProbability = 0.5;
  /// Run the lint reachability pass up front and drop goals whose path
  /// constraints are provably unreachable — the paper's Discussion
  /// suggestion for the "perpetually false" branches it kept re-solving.
  /// Pruned goals are skipped by the solve loop AND excluded from the
  /// coverage denominators (a suite cannot be blamed for logic no input
  /// sequence can reach), so reported percentages reflect satisfiable
  /// goals only.
  bool pruneProvablyDead = false;

  // Campaign checkpointing (STCG only; see stcg/campaign.h).
  /// When non-empty, the campaign state is periodically serialized here
  /// (atomic write: temp file + rename). Empty disables checkpointing.
  std::string checkpointPath;
  /// Save a checkpoint every this many completed rounds (>= 1). Only
  /// meaningful with a non-empty checkpointPath.
  int checkpointEveryRounds = 1;
  /// Resume from checkpointPath instead of starting fresh. The file must
  /// have been saved for the same model and the same trajectory-relevant
  /// options (seed, solver budgets, sequence length, tree cap, ablation
  /// switches) — jobs/batch/simEngine/budgetMillis/maxRounds may differ.
  /// A missing/corrupt/stale file throws expr::EvalError.
  bool resume = false;
  /// Stop after this many rounds (0 = unlimited). Unlike budgetMillis,
  /// the round cap is deterministic: two runs with the same seed and the
  /// same maxRounds produce bit-identical results even on a loaded
  /// machine, which is what the kill-and-resume fuzz harness compares.
  int maxRounds = 0;
};

/// Validate the user-settable numeric knobs at the library boundary:
/// `jobs` and `batch` (and the plumbed-through solver.batch) must lie in
/// [0, 4096]. Throws expr::EvalError naming the offending option and its
/// value — every Generator::generate implementation calls this first, so
/// out-of-range values from a CLI or embedding fail with a typed error
/// instead of a thread explosion or a negative-size allocation.
void validateGenOptions(const GenOptions& options);

enum class TestOrigin { kSolved, kRandom };

struct TestCase {
  std::vector<sim::InputVector> steps;
  double timestampSec = 0.0;  // when it was produced, since run start
  TestOrigin origin = TestOrigin::kSolved;
  std::string goalLabel;
};

struct CoverageSummary {
  double decision = 0.0;
  double condition = 0.0;
  double mcdc = 0.0;
  int coveredBranches = 0;
  int totalBranches = 0;
};

[[nodiscard]] CoverageSummary summarize(const coverage::CoverageTracker& cov);

/// One coverage-progress sample, for Fig. 4-style curves.
struct GenEvent {
  double timeSec = 0.0;
  double decisionCoverage = 0.0;
  TestOrigin origin = TestOrigin::kSolved;
};

struct GenStats {
  int solveCalls = 0;
  int solveSat = 0;
  int solveUnsat = 0;
  int solveUnknown = 0;
  int stepsExecuted = 0;
  int treeNodes = 0;
  int randomSequences = 0;
  int goalsPruned = 0;  // goals skipped by dead-branch pre-verification
};

struct GenResult {
  std::string toolName;
  std::vector<TestCase> tests;
  CoverageSummary coverage;  // from replaying the produced suite from reset
  std::vector<GenEvent> events;
  GenStats stats;
};

class Generator {
 public:
  virtual ~Generator() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual GenResult generate(const compile::CompiledModel& cm,
                                           const GenOptions& options) = 0;
};

/// Replay a test suite from reset and return the resulting tracker (the
/// paper's "fair comparison via Signal Builder" measurement). Exclusions
/// from the pruning pass are applied to the fresh tracker so replayed
/// percentages use the same denominators as generation. `batch` > 1
/// replays up to that many tests in lockstep lanes through the batched
/// tape executor; the tracker is identical either way because every
/// recording call is a set union (DESIGN.md §5f).
[[nodiscard]] coverage::CoverageTracker replaySuite(
    const compile::CompiledModel& cm, const std::vector<TestCase>& tests,
    const coverage::Exclusions& excl = {}, int batch = 1);

}  // namespace stcg::gen
