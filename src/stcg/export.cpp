#include "stcg/export.h"

#include <fstream>

#include "sim/simulator.h"

namespace stcg::gen {

std::string renderTestSuite(const compile::CompiledModel& cm,
                            const std::vector<TestCase>& tests) {
  std::string out;
  out += "# Test suite for model " + cm.name + "\n";
  out += "# " + std::to_string(tests.size()) + " test cases\n";
  for (std::size_t i = 0; i < tests.size(); ++i) {
    const auto& t = tests[i];
    out += "\n[test " + std::to_string(i) + "]\n";
    out += "origin=" +
           std::string(t.origin == TestOrigin::kSolved ? "solved" : "random") +
           "\n";
    if (!t.goalLabel.empty()) out += "goal=" + t.goalLabel + "\n";
    out += "steps=" + std::to_string(t.steps.size()) + "\n";
    for (std::size_t s = 0; s < t.steps.size(); ++s) {
      out += "step" + std::to_string(s) + ": " +
             sim::formatInput(cm, t.steps[s]) + "\n";
    }
  }
  return out;
}

bool writeTestSuite(const std::string& path, const compile::CompiledModel& cm,
                    const std::vector<TestCase>& tests) {
  std::ofstream f(path);
  if (!f) return false;
  f << renderTestSuite(cm, tests);
  return static_cast<bool>(f);
}

}  // namespace stcg::gen
