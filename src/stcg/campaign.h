// The resumable campaign core: the STCG generation loop restructured into
// round-granular phases over an explicit, serializable CampaignState.
//
// StcgGenerator::generate() used to be one run-to-completion loop whose
// state (state tree, coverage, solved-input library, RNG engines, stats)
// lived in scattered members and stack locals, so a campaign could only
// exist for the lifetime of one process. Campaign splits that loop into
//   solveRound()        — Algorithm 1: one goal × tree-node solve round
//   randomExpandRound() — Algorithm 2 fallback: random replay expansion
// and gathers every piece of stochastic or coverage-relevant data into
// CampaignState, a plain value that checkpoint.h can serialize. The
// invariant that makes kill-and-resume bit-identical: nothing consumed by
// a future round lives outside CampaignState. Everything else the runner
// holds (compiled model, goal list, simulators, thread pool, solver
// scratch) is deterministically reconstructible from (model, options).
//
// All campaign-lifetime randomness flows through counter-based
// CounterStream cursors (util/rng.h), so "the RNG position" is a pair of
// integers per stream — an mt19937 engine position, by contrast, could
// not be persisted. Solve-task seeds were already counter-keyed by
// (round, goal, node); the MCDC-pair stream is cursor-indexed the same
// way, so a resumed process replays the exact seed sequence.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/batch_simulator.h"
#include "stcg/state_tree.h"
#include "stcg/testgen.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace stcg::gen {

/// Per-step trace hook (human-readable lines; see StcgGenerator::setTrace).
using TraceFn = void (*)(const std::string& line, void* user);

/// Everything a campaign carries from one round to the next — the value a
/// checkpoint persists. No stochastic or coverage-relevant data may live
/// outside this struct between rounds (the resume-equivalence tests in
/// tests/test_campaign.cpp enforce the observable consequences).
struct CampaignState {
  CampaignState(const compile::CompiledModel& cm, sim::StateSnapshot root)
      : tree(std::move(root)), tracker(cm) {}

  /// Solve rounds completed. Keys the counter-based per-task solver seed
  /// streams, so it must survive a resume exactly.
  int round = 0;
  /// Cursor of the random-fallback sequence stream: sequence s draws its
  /// start node and per-step inputs from child s, independent of lane
  /// width and of how much earlier sequences consumed.
  CounterStream randomStream;
  /// Cursor of the MCDC-pair solver-seed stream (one child per pair
  /// attempt that reaches the solver).
  CounterStream mcdcStream;
  /// Wall-clock milliseconds consumed by previous processes of this
  /// campaign; added to event/test timestamps and subtracted from the
  /// remaining budget on resume.
  std::int64_t elapsedMillisBefore = 0;
  /// True once a solve round came up dry with the random fallback
  /// disabled — the campaign is over even though goals remain.
  bool fallbackExhausted = false;

  StateTree tree;
  coverage::CoverageTracker tracker;
  coverage::Exclusions exclusions;  // proven-unreachable goals
  std::vector<sim::InputVector> library;  // the solved-input library
  std::vector<TestCase> tests;
  std::vector<GenEvent> events;
  GenStats stats;
};

/// One campaign of the STCG generator, advanced round by round. The
/// driving loop is:
///
///   Campaign c(cm, opt);
///   if (resuming) c.restore(opt.checkpointPath);
///   while (!c.finished()) {
///     c.runRound();
///     if (c.checkpointDue()) c.saveCheckpoint(opt.checkpointPath);
///   }
///   GenResult r = c.finish();
///
/// restore() throws expr::EvalError on a missing, corrupt, truncated or
/// stale (different model / trajectory-relevant options) checkpoint;
/// state is unchanged on throw.
class Campaign {
 public:
  Campaign(const compile::CompiledModel& cm, const GenOptions& opt,
           TraceFn trace = nullptr, void* traceUser = nullptr);

  /// Budget exhausted, all goals covered, round cap reached, or the solve
  /// grid ran dry with the random fallback disabled.
  [[nodiscard]] bool finished() const;

  /// One round: a state-aware solve round, then dynamic execution of the
  /// solved input (plus MCDC-pair completion) or a random-fallback
  /// expansion when nothing solved.
  void runRound();

  /// Replay the produced suite and assemble the final GenResult. Moves
  /// the tests/events out of the campaign state; call once, at the end.
  [[nodiscard]] GenResult finish();

  /// Whether `opt.checkpointEveryRounds` rounds have completed since the
  /// last saveCheckpoint() (always false without a checkpoint path).
  [[nodiscard]] bool checkpointDue() const;

  /// Atomically (write-temp + rename) persist the campaign state.
  /// Throws expr::EvalError on I/O failure.
  void saveCheckpoint(const std::string& path);

  /// Replace the campaign state with a checkpoint previously saved for
  /// the same model and trajectory-relevant options, and rebase the
  /// budget/timestamps by the recorded elapsed time.
  void restore(const std::string& path);

  [[nodiscard]] const CampaignState& state() const { return cs_; }
  [[nodiscard]] CampaignState& mutableState() { return cs_; }
  [[nodiscard]] const std::vector<Goal>& goals() const { return goals_; }

 private:
  struct SolveHit {
    int nodeId = -1;
    int goalIdx = -1;
    sim::InputVector input;
  };
  /// One cell of the goal × node solve grid of a round.
  struct SolveTask {
    int goalIdx = -1;
    int nodeId = -1;
  };
  /// What a worker found for one cell (see solveRound()).
  struct TaskOutcome {
    bool ran = false;
    bool folded = false;  // residual folded to const false; no solver call
    solver::SolveStatus status = solver::SolveStatus::kUnknown;
    sim::InputVector input;  // populated on SAT
    std::string traceLine;
  };

  void trace(const std::string& line);
  [[nodiscard]] bool allGoalsCovered() const;
  [[nodiscard]] double now() const;

  // Algorithm 1: one solve round over the (uncovered goal × node) grid.
  [[nodiscard]] std::optional<SolveHit> solveRound();
  void runSolveTask(const SolveTask& t, TaskOutcome& out);

  // Algorithm 2: dynamic execution.
  void executeSequence(int startNode, std::vector<sim::InputVector> seq,
                       TestOrigin origin, const std::string& goalLabel);
  void tryMcdcPair(const SolveHit& hit, const Goal& goal);

  struct ReplayPlan {
    int start = -1;
    std::vector<sim::InputVector> seq;
  };
  [[nodiscard]] ReplayPlan drawReplayPlan(std::uint64_t seqIndex);
  void randomExpandRound();
  void randomExecution();
  void randomExecutionBatch();

  const compile::CompiledModel& cm_;
  const GenOptions& opt_;
  Rng rngRoot_;  // never drawn from directly; streams fork below
  std::vector<expr::VarInfo> inputInfos_;
  sim::Simulator sim_;
  /// Lockstep lanes for the batched replay expansion; constructed on the
  /// first randomExecutionBatch() call (never when opt_.batch <= 1).
  std::optional<sim::BatchSimulator> bsim_;
  // Pooled per-step observation batches for randomExecutionBatch():
  // obsPool_[i] holds step i of every lane, reused across calls.
  std::vector<sim::StepObservationBatch> obsPool_;
  Deadline deadline_;
  Stopwatch watch_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<Goal> goals_;
  std::vector<int> order_;
  int lastCheckpointRound_ = 0;
  CampaignState cs_;
  TraceFn trace_;
  void* traceUser_;
};

}  // namespace stcg::gen
