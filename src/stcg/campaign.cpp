#include "stcg/campaign.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "expr/builder.h"
#include "expr/subst.h"
#include "stcg/checkpoint.h"

namespace stcg::gen {

namespace {

/// Bind a state snapshot into an Env keyed by the compiled state leaves.
expr::Env stateEnv(const compile::CompiledModel& cm,
                   const sim::StateSnapshot& s) {
  expr::Env env;
  env.reserve(cm.varCount());
  for (std::size_t i = 0; i < cm.states.size(); ++i) {
    const auto& sv = cm.states[i];
    if (sv.width == 1) {
      env.set(sv.id, s[i].scalar());
    } else {
      env.setArray(sv.id, s[i].elems());
    }
  }
  return env;
}

/// Named RNG streams forked off the run seed. Every stochastic phase owns
/// a stream: draws in one phase can never shift another phase's sequence,
/// so ablations and repetitions stay independently seeded — and every
/// stream's position is a plain counter (CampaignState), so a checkpoint
/// restores all of them from integers.
enum RngStream : std::uint64_t {
  kSolveStream = 1,   // per-task solver seeds (counter-based per cell)
  kMcdcStream = 2,    // MCDC-pair completion solver seeds
  kRandomStream = 3,  // random-fallback node/input/library draws
};

/// Counter-based stream id for one cell of one solve round. Depends only
/// on the cell coordinates, never on thread count or execution order.
std::uint64_t taskStream(int round, int goalIdx, int nodeId) {
  std::uint64_t h = splitmix64(static_cast<std::uint64_t>(round));
  h = splitmix64(h ^ static_cast<std::uint64_t>(goalIdx));
  return splitmix64(h ^ static_cast<std::uint64_t>(nodeId));
}

}  // namespace

Campaign::Campaign(const compile::CompiledModel& cm, const GenOptions& opt,
                   TraceFn trace, void* traceUser)
    : cm_(cm),
      opt_(opt),
      rngRoot_(opt.seed),
      inputInfos_(cm.inputInfos()),
      sim_(cm, opt.simEngine),
      deadline_(Deadline::afterMillis(opt.budgetMillis)),
      pool_(std::make_unique<ThreadPool>(
          opt.jobs <= 0 ? ThreadPool::hardwareThreads() : opt.jobs)),
      cs_(cm, sim_.snapshot()),
      trace_(trace),
      traceUser_(traceUser) {
  cs_.randomStream = CounterStream(rngRoot_.fork(kRandomStream));
  cs_.mcdcStream = CounterStream(rngRoot_.fork(kMcdcStream));
  goals_ = buildGoals(cm, opt.includeConditionGoals,
                      /*includeMcdcGoals=*/opt.includeConditionGoals);
  if (opt.pruneProvablyDead) {
    // Dead-goal pre-verification (paper Discussion): the lint
    // reachability pass proves goals unreachable from every reachable
    // state; they are removed from the goal list and excluded from the
    // coverage denominators.
    PruneResult pr = pruneUnreachableGoals(cm, goals_, cs_.tracker);
    cs_.exclusions = std::move(pr.exclusions);
    cs_.stats.goalsPruned = pr.removed;
    for (const auto& label : pr.prunedLabels) {
      this->trace("pruned provably-dead goal " + label);
    }
  }
  order_.resize(goals_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    order_[i] = static_cast<int>(i);
  }
  if (opt.sortGoalsByDepth) {
    std::stable_sort(order_.begin(), order_.end(), [&](int a, int b) {
      return goals_[static_cast<std::size_t>(a)].depth <
             goals_[static_cast<std::size_t>(b)].depth;
    });
  }
}

void Campaign::trace(const std::string& line) {
  if (trace_ != nullptr) trace_(line, traceUser_);
}

double Campaign::now() const {
  return watch_.elapsedSeconds() +
         static_cast<double>(cs_.elapsedMillisBefore) / 1000.0;
}

bool Campaign::allGoalsCovered() const {
  for (const auto& g : goals_) {
    if (!goalCovered(cs_.tracker, g)) return false;
  }
  return true;
}

bool Campaign::finished() const {
  if (deadline_.expired() || cs_.fallbackExhausted) return true;
  if (opt_.maxRounds > 0 && cs_.round >= opt_.maxRounds) return true;
  return allGoalsCovered();
}

void Campaign::runRound() {
  // One iteration of the paper's main loop: Algorithm 1, then Algorithm 2.
  const auto hit = solveRound();
  if (hit.has_value()) {
    const Goal& goal = goals_[static_cast<std::size_t>(hit->goalIdx)];
    cs_.library.push_back(hit->input);
    executeSequence(hit->nodeId, {hit->input}, TestOrigin::kSolved,
                    goal.label);
    if (goal.kind == GoalKind::kCondition ||
        goal.kind == GoalKind::kMcdcPair) {
      tryMcdcPair(*hit, goal);
    }
  } else if (!opt_.useRandomFallback) {
    cs_.fallbackExhausted = true;
  } else {
    randomExpandRound();
  }
}

GenResult Campaign::finish() {
  GenResult result;
  result.toolName = "STCG";
  result.tests = std::move(cs_.tests);
  result.events = std::move(cs_.events);
  result.stats = cs_.stats;
  result.stats.treeNodes = static_cast<int>(cs_.tree.size());
  const auto replay =
      replaySuite(cm_, result.tests, cs_.exclusions, opt_.batch);
  result.coverage = summarize(replay);
  return result;
}

bool Campaign::checkpointDue() const {
  return !opt_.checkpointPath.empty() && opt_.checkpointEveryRounds > 0 &&
         cs_.round - lastCheckpointRound_ >= opt_.checkpointEveryRounds;
}

void Campaign::saveCheckpoint(const std::string& path) {
  // The serialized elapsed time folds this process's wall clock into the
  // total, so a resume rebases timestamps and the remaining budget; the
  // in-memory value stays untouched (this process keeps running).
  saveCampaignCheckpoint(path, cm_, opt_, cs_,
                         cs_.elapsedMillisBefore + watch_.elapsedMillis());
  lastCheckpointRound_ = cs_.round;
}

void Campaign::restore(const std::string& path) {
  CampaignState fresh(cm_, cs_.tree.node(0).state);
  fresh.randomStream = CounterStream(rngRoot_.fork(kRandomStream));
  fresh.mcdcStream = CounterStream(rngRoot_.fork(kMcdcStream));
  loadCampaignCheckpoint(path, cm_, opt_, fresh);
  cs_ = std::move(fresh);
  lastCheckpointRound_ = cs_.round;
  watch_.reset();
  deadline_ = Deadline::afterMillis(
      opt_.budgetMillis < 0
          ? opt_.budgetMillis
          : std::max<std::int64_t>(0, opt_.budgetMillis -
                                          cs_.elapsedMillisBefore));
}

// ----- Algorithm 1: state-aware solving ------------------------------------
//
// Each round enumerates the grid of (uncovered goal × tree node) cells
// not yet attempted, in the order the paper's sequential scan visits
// them, then fans the cells across the pool. Every cell is hermetic: it
// reads only immutable round state (compiled model, node snapshots,
// goal expressions) and draws its solver seed from a counter-based
// stream keyed by (round, goal, node). The coordinator then commits, in
// grid order, exactly the prefix the sequential scan would have
// visited: every cell before the lowest SAT cell, plus that cell.
// Speculative results past the winner are discarded — never marked
// attempted, never counted — so tree, tracker, stats, and trace are
// bit-identical for any jobs value.
std::optional<Campaign::SolveHit> Campaign::solveRound() {
  ++cs_.round;
  std::vector<SolveTask> tasks;
  for (const int goalIdx : order_) {
    const Goal& goal = goals_[static_cast<std::size_t>(goalIdx)];
    if (goalCovered(cs_.tracker, goal)) continue;
    const std::size_t nodeCount =
        opt_.solveOnAllNodes ? cs_.tree.size() : 1;
    for (std::size_t nodeId = 0; nodeId < nodeCount; ++nodeId) {
      const int nid = static_cast<int>(nodeId);
      if (cs_.tree.isAttempted(nid, goalIdx)) continue;
      tasks.push_back(SolveTask{goalIdx, nid});
    }
  }
  if (tasks.empty()) return std::nullopt;

  std::vector<TaskOutcome> outcomes(tasks.size());
  // Lowest grid index that solved SAT so far; cells past it are skipped
  // (their work would be discarded by the commit rule anyway).
  std::atomic<std::size_t> winner{tasks.size()};

  pool_->parallelFor(tasks.size(), [&](std::size_t i) {
    if (i > winner.load(std::memory_order_acquire)) return;
    if (deadline_.expired()) return;
    runSolveTask(tasks[i], outcomes[i]);
    if (!outcomes[i].folded &&
        outcomes[i].status == solver::SolveStatus::kSat) {
      std::size_t cur = winner.load(std::memory_order_acquire);
      while (i < cur && !winner.compare_exchange_weak(
                            cur, i, std::memory_order_acq_rel,
                            std::memory_order_acquire)) {
      }
    }
  });

  const std::size_t w = winner.load(std::memory_order_acquire);
  const std::size_t limit = w == tasks.size() ? tasks.size() : w + 1;
  std::optional<SolveHit> hit;
  for (std::size_t i = 0; i < limit; ++i) {
    TaskOutcome& out = outcomes[i];
    if (!out.ran) break;  // deadline expired before this cell ran
    const SolveTask& t = tasks[i];
    cs_.tree.markAttempted(t.nodeId, t.goalIdx);
    ++cs_.stats.solveCalls;
    if (out.folded || out.status == solver::SolveStatus::kUnsat) {
      ++cs_.stats.solveUnsat;
    } else if (out.status == solver::SolveStatus::kUnknown) {
      ++cs_.stats.solveUnknown;
    } else {
      ++cs_.stats.solveSat;
    }
    if (!out.traceLine.empty()) trace(out.traceLine);
    if (i == w) {
      hit = SolveHit{t.nodeId, t.goalIdx, std::move(out.input)};
    }
  }
  return hit;
}

/// Solve one grid cell. Hermetic: reads only round-immutable state and
/// writes only `out` — safe to run from any pool lane.
void Campaign::runSolveTask(const SolveTask& t, TaskOutcome& out) {
  out.ran = true;
  const Goal& goal = goals_[static_cast<std::size_t>(t.goalIdx)];
  const bool wantTrace = trace_ != nullptr;

  // "Bring the model state value as constants into the model."
  const expr::Env env = stateEnv(cm_, cs_.tree.node(t.nodeId).state);
  const expr::ExprPtr residual = expr::substitute(goal.pathConstraint, env);
  if (residual->op == expr::Op::kConst && !residual->constVal.toBool()) {
    // Folded to false: this state provably cannot reach the goal in
    // one step.
    out.folded = true;
    out.status = solver::SolveStatus::kUnsat;
    if (wantTrace) {
      out.traceLine = "solve " + goal.label + " on S" +
                      std::to_string(t.nodeId) +
                      ": infeasible (state-folded)";
    }
    return;
  }
  solver::SolveOptions so = opt_.solver;
  so.batch = opt_.batch;
  Rng taskRng = rngRoot_.fork(kSolveStream)
                    .fork(taskStream(cs_.round, t.goalIdx, t.nodeId));
  so.seed = static_cast<std::uint64_t>(taskRng.uniformInt(1, 1'000'000'000));
  const auto res =
      solver::solveWith(opt_.solverKind, residual, inputInfos_, so);
  out.status = res.status;
  switch (res.status) {
    case solver::SolveStatus::kSat:
      out.input = inputsFromEnv(cm_, res.model);
      if (wantTrace) {
        out.traceLine = "solve " + goal.label + " on S" +
                        std::to_string(t.nodeId) + ": SAT";
      }
      break;
    case solver::SolveStatus::kUnsat:
      if (wantTrace) {
        out.traceLine = "solve " + goal.label + " on S" +
                        std::to_string(t.nodeId) + ": UNSAT";
      }
      break;
    case solver::SolveStatus::kUnknown:
      if (wantTrace) {
        out.traceLine = "solve " + goal.label + " on S" +
                        std::to_string(t.nodeId) + ": UNKNOWN (budget)";
      }
      break;
  }
}

// ----- Algorithm 2: dynamic execution --------------------------------------
void Campaign::executeSequence(int startNode,
                               std::vector<sim::InputVector> seq,
                               TestOrigin origin,
                               const std::string& goalLabel) {
  sim_.restore(cs_.tree.node(startNode).state);
  int cur = startNode;
  std::vector<sim::InputVector> executed;
  executed.reserve(seq.size());
  for (auto& input : seq) {
    const auto res = sim_.step(input, &cs_.tracker);
    ++cs_.stats.stepsExecuted;
    executed.push_back(input);
    const auto snap = sim_.snapshot();
    const int existing = cs_.tree.findByState(snap);
    if (existing >= 0) {
      cur = existing;
    } else if (cs_.tree.size() <
               static_cast<std::size_t>(opt_.maxTreeNodes)) {
      cur = cs_.tree.addChild(cur, input, snap);
      trace("new state S" + std::to_string(cur));
    }
    if (res.foundNewCoverage()) {
      TestCase tc;
      tc.steps = cs_.tree.pathInputs(startNode);
      tc.steps.insert(tc.steps.end(), executed.begin(), executed.end());
      tc.timestampSec = now();
      tc.origin = origin;
      tc.goalLabel = goalLabel;
      cs_.tests.push_back(std::move(tc));
      cs_.events.push_back(
          GenEvent{now(), cs_.tracker.decisionCoverage(), origin});
      trace("test case emitted (" +
            std::string(origin == TestOrigin::kSolved ? "solved" : "random") +
            "), DC=" + std::to_string(cs_.tracker.decisionCoverage()));
    }
    if (deadline_.expired()) break;
  }
}

// ----- MCDC pair completion ------------------------------------------------
// After satisfying a condition-polarity goal, immediately look for the
// unique-cause partner on the same state: flip the target condition while
// pinning every sibling condition to the value it just took. Executing
// both inputs from one state records two MCDC vectors differing only in
// the target condition — the same "derived test objectives" SLDV builds
// for the MCDC criterion.
void Campaign::tryMcdcPair(const SolveHit& hit, const Goal& goal) {
  const auto& d = cm_.decisions[static_cast<std::size_t>(goal.decisionId)];
  if (!d.isBooleanDecision() || d.conditions.size() < 2) return;
  if (deadline_.expired()) return;

  // Observed sibling condition values under the solved input.
  expr::Env env = stateEnv(cm_, cs_.tree.node(hit.nodeId).state);
  for (std::size_t i = 0; i < cm_.inputs.size(); ++i) {
    env.set(cm_.inputs[i].info.id, hit.input[i]);
  }
  std::vector<expr::ExprPtr> pins;
  pins.push_back(d.activation);
  for (std::size_t c = 0; c < d.conditions.size(); ++c) {
    const bool v = expr::evaluate(d.conditions[c], env).toBool();
    if (static_cast<int>(c) == goal.condIndex) {
      pins.push_back(v ? expr::notE(d.conditions[c]) : d.conditions[c]);
    } else {
      pins.push_back(v ? d.conditions[c] : expr::notE(d.conditions[c]));
    }
  }
  const expr::ExprPtr residual = expr::substitute(
      expr::andAll(pins), stateEnv(cm_, cs_.tree.node(hit.nodeId).state));
  ++cs_.stats.solveCalls;
  if (residual->op == expr::Op::kConst && !residual->constVal.toBool()) {
    ++cs_.stats.solveUnsat;
    return;
  }
  solver::SolveOptions so = opt_.solver;
  so.batch = opt_.batch;
  // One cursor child per attempt that reaches the solver: the stream
  // position is the attempt ordinal, which the checkpoint persists.
  Rng pairRng = cs_.mcdcStream.next();
  so.seed = static_cast<std::uint64_t>(pairRng.uniformInt(1, 1'000'000'000));
  const auto res =
      solver::solveWith(opt_.solverKind, residual, inputInfos_, so);
  if (res.status != solver::SolveStatus::kSat) {
    res.status == solver::SolveStatus::kUnsat ? ++cs_.stats.solveUnsat
                                              : ++cs_.stats.solveUnknown;
    return;
  }
  ++cs_.stats.solveSat;
  auto pairInput = inputsFromEnv(cm_, res.model);
  cs_.library.push_back(pairInput);
  executeSequence(hit.nodeId, {std::move(pairInput)}, TestOrigin::kSolved,
                  goal.label + "-mcdc-pair");
}

/// Draw sequence number `seqIndex` of the random-fallback stream. Pure
/// in (seqIndex, tree size, library): both the scalar and the batched
/// expansion call this, so a sequence's draws never depend on lane
/// width or on how many draws its predecessors consumed.
Campaign::ReplayPlan Campaign::drawReplayPlan(std::uint64_t seqIndex) {
  Rng seqRng = cs_.randomStream.at(seqIndex);
  ReplayPlan plan;
  plan.start = cs_.tree.randomNode(seqRng);
  plan.seq.reserve(static_cast<std::size_t>(opt_.randomSeqLen));
  for (int i = 0; i < opt_.randomSeqLen; ++i) {
    if (!cs_.library.empty() &&
        !seqRng.chance(opt_.freshRandomProbability)) {
      plan.seq.push_back(cs_.library[seqRng.index(cs_.library.size())]);
    } else {
      // Fresh domain-random draw: covers input values no solved goal
      // ever produced (also the bootstrap before anything was solved).
      plan.seq.push_back(sim::randomInput(cm_, seqRng));
    }
  }
  return plan;
}

void Campaign::randomExpandRound() {
  if (opt_.batch > 1 && opt_.simEngine == sim::EvalEngine::kTape) {
    randomExecutionBatch();
  } else {
    randomExecution();
  }
}

void Campaign::randomExecution() {
  ++cs_.stats.randomSequences;
  ReplayPlan plan = drawReplayPlan(cs_.randomStream.position());
  cs_.randomStream.skip();
  trace("random execution on S" + std::to_string(plan.start) + " (" +
        std::to_string(plan.seq.size()) + " steps)");
  executeSequence(plan.start, std::move(plan.seq), TestOrigin::kRandom, "");
}

/// Batched replay expansion: run opt_.batch random sequences in
/// lockstep lanes through one BatchSimulator, then commit their
/// coverage/tree/test effects lane by lane in sequence order — exactly
/// what opt_.batch consecutive randomExecution() calls (interleaved
/// with the empty solve rounds the main loop would run between them)
/// produce. Lanes whose pre-drawn plans are invalidated by an earlier
/// lane's commit (the tree grew, so the next sequence's node draw and
/// the next solve round's grid both change), or that fall past the
/// deadline / full coverage / round cap, are discarded uncommitted;
/// their cursor children recompute identically on the next call.
void Campaign::randomExecutionBatch() {
  const int B = opt_.batch;
  if (!bsim_) bsim_.emplace(cm_, B);
  std::vector<ReplayPlan> plans;
  plans.reserve(static_cast<std::size_t>(B));
  for (int k = 0; k < B; ++k) {
    plans.push_back(drawReplayPlan(cs_.randomStream.position() +
                                   static_cast<std::uint64_t>(k)));
  }
  for (int k = 0; k < B; ++k) {
    bsim_->restore(k, cs_.tree.node(plans[static_cast<std::size_t>(k)].start)
                          .state);
  }
  const std::size_t steps = static_cast<std::size_t>(opt_.randomSeqLen);
  // obsPool_[i]: what every lane observed at step i. All lanes run the
  // full horizon up front; commit decides below what actually happened.
  if (obsPool_.size() < steps) obsPool_.resize(steps);
  std::vector<const sim::InputVector*> stepInputs(
      static_cast<std::size_t>(B));
  for (std::size_t i = 0; i < steps; ++i) {
    for (int l = 0; l < B; ++l) {
      stepInputs[static_cast<std::size_t>(l)] =
          &plans[static_cast<std::size_t>(l)].seq[i];
    }
    bsim_->stepBatch(stepInputs, obsPool_[i]);
  }

  for (int k = 0; k < B; ++k) {
    // The main loop runs a solve round between consecutive random
    // sequences; without tree growth its grid is empty (goals only get
    // covered, the attempted set is untouched), so its sole effect is
    // the round counter that keys solver-seed streams. Mirror it — and
    // mirror the driver's round-cap check, which in scalar mode would
    // stop the campaign before that solve round ran.
    if (k > 0) {
      if (opt_.maxRounds > 0 && cs_.round >= opt_.maxRounds) return;
      ++cs_.round;
    }
    const ReplayPlan& plan = plans[static_cast<std::size_t>(k)];
    ++cs_.stats.randomSequences;
    cs_.randomStream.skip();
    trace("random execution on S" + std::to_string(plan.start) + " (" +
          std::to_string(plan.seq.size()) + " steps)");
    bool grew = false;
    int cur = plan.start;
    std::vector<sim::InputVector> executed;
    executed.reserve(plan.seq.size());
    for (std::size_t i = 0; i < steps; ++i) {
      const sim::StepObservationBatch& o = obsPool_[i];
      const auto res = sim::recordObservation(cm_, o, k, cs_.tracker);
      ++cs_.stats.stepsExecuted;
      executed.push_back(plan.seq[i]);
      const int existing = cs_.tree.findByState(o.next(k));
      if (existing >= 0) {
        cur = existing;
      } else if (cs_.tree.size() <
                 static_cast<std::size_t>(opt_.maxTreeNodes)) {
        cur = cs_.tree.addChild(cur, plan.seq[i], o.next(k));
        grew = true;
        trace("new state S" + std::to_string(cur));
      }
      if (res.foundNewCoverage()) {
        TestCase tc;
        tc.steps = cs_.tree.pathInputs(plan.start);
        tc.steps.insert(tc.steps.end(), executed.begin(), executed.end());
        tc.timestampSec = now();
        tc.origin = TestOrigin::kRandom;
        cs_.tests.push_back(std::move(tc));
        cs_.events.push_back(GenEvent{now(), cs_.tracker.decisionCoverage(),
                                      TestOrigin::kRandom});
        trace("test case emitted (random), DC=" +
              std::to_string(cs_.tracker.decisionCoverage()));
      }
      if (deadline_.expired()) break;
    }
    if (deadline_.expired() || allGoalsCovered() || grew) return;
  }
}

}  // namespace stcg::gen
