// STCG: the paper's state-aware test case generator (Algorithms 1 and 2).
//
// The generation loop alternates:
//   State-aware solving (Alg. 1) — walk uncovered goals (depth-sorted) ×
//   state-tree nodes; fix the node's state as constants in the goal's path
//   constraint via partial evaluation; hand the residual (over current-step
//   inputs only) to the box solver. First SAT result wins.
//
//   Dynamic execution (Alg. 2) — run the solved input from the chosen
//   node's state (one step), or, when nothing is solvable, replay a random
//   sequence drawn from the library of previously solved inputs starting at
//   a random tree node. Every step that covers a new branch emits a test
//   case: the input path from the root plus the steps executed so far.
//
// Ablation switches in GenOptions turn off depth sorting, the random
// fallback, or multi-node solving (root only), for the ablation bench.
//
// The loop itself lives in stcg/campaign.h as the resumable Campaign
// class; this Generator is the run-to-completion driver: construct a
// campaign, optionally restore a checkpoint, advance rounds until
// finished, saving periodic checkpoints along the way.
#pragma once

#include "stcg/campaign.h"
#include "stcg/testgen.h"

namespace stcg::gen {

class StcgGenerator final : public Generator {
 public:
  [[nodiscard]] std::string name() const override { return "STCG"; }
  [[nodiscard]] GenResult generate(const compile::CompiledModel& cm,
                                   const GenOptions& options) override;

  /// Per-step trace hook for the Table-I style walkthrough bench. Set
  /// before generate(); receives human-readable trace lines.
  using TraceFn = gen::TraceFn;
  void setTrace(TraceFn fn, void* user) {
    trace_ = fn;
    traceUser_ = user;
  }

 private:
  TraceFn trace_ = nullptr;
  void* traceUser_ = nullptr;
};

}  // namespace stcg::gen
