#include "stcg/checkpoint.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "expr/eval.h"
#include "sim/snapshot_io.h"

namespace stcg::gen {

namespace {

// Generic cap applied to every element count in the file. The checksum
// already rejects accidental corruption; this keeps even a deliberately
// crafted file from provoking a huge allocation before validation.
constexpr std::uint64_t kMaxCount = 1ULL << 22;

[[noreturn]] void failCk(const std::string& what) {
  throw expr::EvalError("checkpoint: " + what);
}

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void putHexDouble(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  os << buf;
}

std::string ckToken(std::istream& is, const char* what) {
  std::string tok;
  if (!(is >> tok)) failCk(std::string("unexpected end of file reading ") + what);
  return tok;
}

void ckExpect(std::istream& is, const char* tag) {
  const std::string tok = ckToken(is, tag);
  if (tok != tag) {
    failCk(std::string("expected '") + tag + "', got '" + tok + "'");
  }
}

std::uint64_t ckU64(std::istream& is, const char* what, int base = 10) {
  const std::string tok = ckToken(is, what);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, base);
  if (errno != 0 || end != tok.c_str() + tok.size() || tok.empty() ||
      tok[0] == '-') {
    failCk(std::string("malformed ") + what + " '" + tok + "'");
  }
  return static_cast<std::uint64_t>(v);
}

std::int64_t ckI64(std::istream& is, const char* what) {
  const std::string tok = ckToken(is, what);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size() || tok.empty()) {
    failCk(std::string("malformed ") + what + " '" + tok + "'");
  }
  return static_cast<std::int64_t>(v);
}

std::uint64_t ckCount(std::istream& is, const char* what) {
  const std::uint64_t v = ckU64(is, what);
  if (v > kMaxCount) {
    failCk(std::string(what) + " count " + std::to_string(v) +
           " exceeds limit");
  }
  return v;
}

double ckDouble(std::istream& is, const char* what) {
  const std::string tok = ckToken(is, what);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size() || tok.empty()) {
    failCk(std::string("malformed ") + what + " '" + tok + "'");
  }
  return v;
}

/// Read a length-prefixed string: "<len> <raw bytes>" (bytes may contain
/// anything but are in practice goal labels).
std::string ckString(std::istream& is, const char* what) {
  const std::uint64_t len = ckCount(is, what);
  if (len == 0) return {};
  is.get();  // the single separator space
  std::string out(static_cast<std::size_t>(len), '\0');
  is.read(out.data(), static_cast<std::streamsize>(len));
  if (static_cast<std::uint64_t>(is.gcount()) != len) {
    failCk(std::string("truncated ") + what);
  }
  return out;
}

int originCode(TestOrigin o) { return o == TestOrigin::kRandom ? 1 : 0; }

TestOrigin originFromCode(std::int64_t c) {
  if (c == 0) return TestOrigin::kSolved;
  if (c == 1) return TestOrigin::kRandom;
  failCk("invalid test origin " + std::to_string(c));
}

void writeBody(std::ostream& os, const compile::CompiledModel& cm,
               const GenOptions& opt, const CampaignState& cs,
               std::int64_t elapsedMillisTotal) {
  os << kCheckpointMagic << " v" << kCheckpointVersion << '\n';
  os << "model " << hex16(modelSignature(cm)) << '\n';
  os << "options " << hex16(optionsSignature(opt)) << '\n';
  os << "elapsed " << elapsedMillisTotal << '\n';
  os << "round " << cs.round << '\n';
  os << "streams " << cs.randomStream.seed() << ' '
     << cs.randomStream.position() << ' ' << cs.mcdcStream.seed() << ' '
     << cs.mcdcStream.position() << '\n';
  os << "fallback-exhausted " << (cs.fallbackExhausted ? 1 : 0) << '\n';

  os << "tree " << cs.tree.size() << '\n';
  for (std::size_t i = 0; i < cs.tree.size(); ++i) {
    const StateTreeNode& n = cs.tree.node(static_cast<int>(i));
    os << "node " << n.id << ' ' << n.parent << ' ' << hex16(n.stateHash)
       << '\n';
    // attemptedGoals is an unordered_set; emit sorted so identical
    // campaigns produce byte-identical checkpoints.
    std::vector<int> att(n.attemptedGoals.begin(), n.attemptedGoals.end());
    std::sort(att.begin(), att.end());
    os << "attempted " << att.size();
    for (const int g : att) os << ' ' << g;
    os << '\n';
    sim::writeInputVector(os, n.inputFromParent);
    os << '\n';
    sim::writeSnapshot(os, n.state);
    os << '\n';
  }

  os << "library " << cs.library.size() << '\n';
  for (const auto& in : cs.library) {
    sim::writeInputVector(os, in);
    os << '\n';
  }

  os << "tests " << cs.tests.size() << '\n';
  for (const TestCase& t : cs.tests) {
    os << "test " << t.steps.size() << ' ';
    putHexDouble(os, t.timestampSec);
    os << ' ' << originCode(t.origin) << ' ' << t.goalLabel.size();
    if (!t.goalLabel.empty()) os << ' ' << t.goalLabel;
    os << '\n';
    for (const auto& step : t.steps) {
      sim::writeInputVector(os, step);
      os << '\n';
    }
  }

  os << "events " << cs.events.size() << '\n';
  for (const GenEvent& e : cs.events) {
    os << "event ";
    putHexDouble(os, e.timeSec);
    os << ' ';
    putHexDouble(os, e.decisionCoverage);
    os << ' ' << originCode(e.origin) << '\n';
  }

  os << "stats " << cs.stats.solveCalls << ' ' << cs.stats.solveSat << ' '
     << cs.stats.solveUnsat << ' ' << cs.stats.solveUnknown << ' '
     << cs.stats.stepsExecuted << ' ' << cs.stats.treeNodes << ' '
     << cs.stats.randomSequences << ' ' << cs.stats.goalsPruned << '\n';

  coverage::writeExclusions(os, cs.exclusions);
  os << '\n';
  cs.tracker.serializeState(os);
  os << "end\n";
}

}  // namespace

std::uint64_t modelSignature(const compile::CompiledModel& cm) {
  std::ostringstream os;
  os << cm.name << '\n' << cm.blockCount << '\n';
  os << "inputs " << cm.inputs.size() << '\n';
  for (const auto& in : cm.inputs) {
    os << in.info.id << ' ' << in.info.name << ' '
       << static_cast<int>(in.info.type) << ' ';
    putHexDouble(os, in.info.lo);
    os << ' ';
    putHexDouble(os, in.info.hi);
    os << '\n';
  }
  os << "states " << cm.states.size() << '\n';
  for (const auto& sv : cm.states) {
    os << sv.id << ' ' << sv.name << ' ' << static_cast<int>(sv.type) << ' '
       << sv.width << ' ';
    sim::writeValue(os, sv.init);
    os << '\n';
  }
  os << "decisions " << cm.decisions.size() << '\n';
  for (const auto& d : cm.decisions) {
    os << static_cast<int>(d.kind) << ' ' << d.name << ' '
       << d.armConds.size() << ' ' << d.conditions.size() << ' '
       << d.parentBranch << ' ' << d.depth << '\n';
  }
  os << "branches " << cm.branches.size() << '\n';
  for (const auto& b : cm.branches) {
    os << b.decision << ' ' << b.arm << ' ' << b.label << ' '
       << b.parentBranch << ' ' << b.depth << '\n';
  }
  os << "objectives " << cm.objectives.size() << '\n';
  for (const auto& o : cm.objectives) os << o.name << '\n';
  return fnv1a(os.str());
}

std::uint64_t optionsSignature(const GenOptions& opt) {
  std::ostringstream os;
  os << opt.seed << ' ' << static_cast<int>(opt.solverKind) << ' '
     << opt.solver.timeBudgetMillis << ' ' << opt.solver.maxBoxes << ' '
     << opt.solver.samplesPerBox << ' ' << opt.solver.contractPasses << ' '
     << opt.randomSeqLen << ' ' << opt.maxTreeNodes << ' '
     << (opt.sortGoalsByDepth ? 1 : 0) << ' '
     << (opt.useRandomFallback ? 1 : 0) << ' '
     << (opt.solveOnAllNodes ? 1 : 0) << ' '
     << (opt.includeConditionGoals ? 1 : 0) << ' '
     << (opt.pruneProvablyDead ? 1 : 0) << ' ';
  putHexDouble(os, opt.freshRandomProbability);
  return fnv1a(os.str());
}

void saveCampaignCheckpoint(const std::string& path,
                            const compile::CompiledModel& cm,
                            const GenOptions& opt, const CampaignState& cs,
                            std::int64_t elapsedMillisTotal) {
  std::ostringstream body;
  writeBody(body, cm, opt, cs, elapsedMillisTotal);
  std::string data = body.str();
  data += "checksum " + hex16(fnv1a(data)) + '\n';

  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) failCk("cannot open '" + tmp + "' for writing");
    f.write(data.data(), static_cast<std::streamsize>(data.size()));
    f.flush();
    if (!f.good()) failCk("write to '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    std::remove(tmp.c_str());
    failCk("cannot rename '" + tmp + "' to '" + path + "': " + err);
  }
}

void loadCampaignCheckpoint(const std::string& path,
                            const compile::CompiledModel& cm,
                            const GenOptions& opt, CampaignState& cs) {
  std::ifstream f(path, std::ios::binary);
  if (!f) failCk("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string all = buf.str();

  // A complete file always ends with the checksum line's newline; a
  // file cut anywhere — even one byte short — fails here or below.
  if (all.empty() || all.back() != '\n') {
    failCk("file does not end with a newline (truncated file?)");
  }
  // Checksum covers every byte up to and including the newline that
  // precedes the checksum line.
  const auto pos = all.rfind("\nchecksum ");
  if (pos == std::string::npos) {
    failCk("missing checksum line (truncated file?)");
  }
  const std::string bodyBytes = all.substr(0, pos + 1);
  {
    std::istringstream cks(all.substr(pos + 1));
    ckExpect(cks, "checksum");
    const std::uint64_t recorded = ckU64(cks, "checksum", 16);
    std::string extra;
    if (cks >> extra) failCk("trailing data after checksum line");
    if (recorded != fnv1a(bodyBytes)) {
      failCk("checksum mismatch (corrupt checkpoint)");
    }
  }

  std::istringstream is(bodyBytes);
  ckExpect(is, kCheckpointMagic);
  const std::string ver = ckToken(is, "format version");
  if (ver != "v" + std::to_string(kCheckpointVersion)) {
    failCk("unsupported format version '" + ver + "' (this build reads v" +
           std::to_string(kCheckpointVersion) + ")");
  }
  ckExpect(is, "model");
  if (ckU64(is, "model signature", 16) != modelSignature(cm)) {
    failCk("model signature mismatch — checkpoint was saved for a "
           "different model");
  }
  ckExpect(is, "options");
  if (ckU64(is, "options signature", 16) != optionsSignature(opt)) {
    failCk("options signature mismatch — checkpoint was saved under "
           "different trajectory-relevant options (seed, solver budget, "
           "sequence length, tree cap, or ablations)");
  }
  ckExpect(is, "elapsed");
  const std::int64_t elapsed = ckI64(is, "elapsed millis");
  if (elapsed < 0) failCk("negative elapsed time");
  cs.elapsedMillisBefore = elapsed;
  ckExpect(is, "round");
  const std::int64_t round = ckI64(is, "round");
  if (round < 0 || round > static_cast<std::int64_t>(kMaxCount)) {
    failCk("round " + std::to_string(round) + " out of range");
  }
  cs.round = static_cast<int>(round);
  ckExpect(is, "streams");
  const std::uint64_t randomSeed = ckU64(is, "random stream seed");
  const std::uint64_t randomPos = ckU64(is, "random stream position");
  const std::uint64_t mcdcSeed = ckU64(is, "mcdc stream seed");
  const std::uint64_t mcdcPos = ckU64(is, "mcdc stream position");
  if (randomSeed != cs.randomStream.seed() ||
      mcdcSeed != cs.mcdcStream.seed()) {
    failCk("rng stream seed mismatch");
  }
  cs.randomStream.seek(randomPos);
  cs.mcdcStream.seek(mcdcPos);
  ckExpect(is, "fallback-exhausted");
  const std::int64_t fe = ckI64(is, "fallback-exhausted flag");
  if (fe != 0 && fe != 1) failCk("invalid fallback-exhausted flag");
  cs.fallbackExhausted = fe == 1;

  ckExpect(is, "tree");
  const std::uint64_t nodeCount = ckCount(is, "tree node");
  if (nodeCount == 0) failCk("tree must contain at least the root");
  for (std::uint64_t i = 0; i < nodeCount; ++i) {
    ckExpect(is, "node");
    const std::int64_t id = ckI64(is, "node id");
    const std::int64_t parent = ckI64(is, "node parent");
    const std::uint64_t hash = ckU64(is, "node state hash", 16);
    if (id != static_cast<std::int64_t>(i)) {
      failCk("node ids out of order (got " + std::to_string(id) +
             ", expected " + std::to_string(i) + ")");
    }
    if (i == 0 ? parent != -1
               : (parent < 0 || parent >= static_cast<std::int64_t>(i))) {
      failCk("invalid parent " + std::to_string(parent) + " for node " +
             std::to_string(i));
    }
    ckExpect(is, "attempted");
    const std::uint64_t na = ckCount(is, "attempted goal");
    std::vector<int> attempted;
    attempted.reserve(static_cast<std::size_t>(na));
    for (std::uint64_t g = 0; g < na; ++g) {
      const std::int64_t goal = ckI64(is, "attempted goal id");
      if (goal < 0 || goal > static_cast<std::int64_t>(kMaxCount)) {
        failCk("attempted goal id " + std::to_string(goal) +
               " out of range");
      }
      attempted.push_back(static_cast<int>(goal));
    }
    sim::InputVector input = sim::readInputVector(is);
    sim::StateSnapshot state = sim::readSnapshot(is);
    if (sim::snapshotHash(state) != hash) {
      failCk("state hash mismatch at node " + std::to_string(i) +
             " (corrupt snapshot)");
    }
    if (i == 0) {
      if (!(state == cs.tree.node(0).state)) {
        failCk("root state does not match the model's initial state");
      }
    } else {
      const int got = cs.tree.addChild(static_cast<int>(parent),
                                       std::move(input), std::move(state),
                                       hash);
      if (got != static_cast<int>(i)) {
        failCk("tree rebuild produced unexpected node id");
      }
    }
    for (const int g : attempted) {
      cs.tree.markAttempted(static_cast<int>(i), g);
    }
  }

  ckExpect(is, "library");
  const std::uint64_t nlib = ckCount(is, "library entry");
  cs.library.clear();
  cs.library.reserve(static_cast<std::size_t>(nlib));
  for (std::uint64_t i = 0; i < nlib; ++i) {
    cs.library.push_back(sim::readInputVector(is));
  }

  ckExpect(is, "tests");
  const std::uint64_t ntests = ckCount(is, "test");
  cs.tests.clear();
  cs.tests.reserve(static_cast<std::size_t>(ntests));
  for (std::uint64_t i = 0; i < ntests; ++i) {
    ckExpect(is, "test");
    const std::uint64_t nsteps = ckCount(is, "test step");
    TestCase tc;
    tc.timestampSec = ckDouble(is, "test timestamp");
    tc.origin = originFromCode(ckI64(is, "test origin"));
    tc.goalLabel = ckString(is, "test goal label");
    tc.steps.reserve(static_cast<std::size_t>(nsteps));
    for (std::uint64_t s = 0; s < nsteps; ++s) {
      tc.steps.push_back(sim::readInputVector(is));
    }
    cs.tests.push_back(std::move(tc));
  }

  ckExpect(is, "events");
  const std::uint64_t nevents = ckCount(is, "event");
  cs.events.clear();
  cs.events.reserve(static_cast<std::size_t>(nevents));
  for (std::uint64_t i = 0; i < nevents; ++i) {
    ckExpect(is, "event");
    GenEvent e;
    e.timeSec = ckDouble(is, "event time");
    e.decisionCoverage = ckDouble(is, "event coverage");
    e.origin = originFromCode(ckI64(is, "event origin"));
    cs.events.push_back(e);
  }

  ckExpect(is, "stats");
  const auto statInt = [&](const char* what) {
    const std::int64_t v = ckI64(is, what);
    if (v < 0 || v > static_cast<std::int64_t>(1) << 31) {
      failCk(std::string(what) + " out of range");
    }
    return static_cast<int>(v);
  };
  cs.stats.solveCalls = statInt("stat solveCalls");
  cs.stats.solveSat = statInt("stat solveSat");
  cs.stats.solveUnsat = statInt("stat solveUnsat");
  cs.stats.solveUnknown = statInt("stat solveUnknown");
  cs.stats.stepsExecuted = statInt("stat stepsExecuted");
  cs.stats.treeNodes = statInt("stat treeNodes");
  cs.stats.randomSequences = statInt("stat randomSequences");
  cs.stats.goalsPruned = statInt("stat goalsPruned");

  cs.exclusions = coverage::readExclusions(is);
  cs.tracker.restoreState(is);
  ckExpect(is, "end");
}

}  // namespace stcg::gen
