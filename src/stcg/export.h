// Text export of generated test suites (the paper exports text-format test
// case files that Signal Builder replays for fair coverage comparison).
#pragma once

#include <string>
#include <vector>

#include "compile/compiled_model.h"
#include "stcg/testgen.h"

namespace stcg::gen {

/// Render a whole suite as text: one section per test case, one line per
/// step listing every input as name=value.
[[nodiscard]] std::string renderTestSuite(const compile::CompiledModel& cm,
                                          const std::vector<TestCase>& tests);

/// Write renderTestSuite() output to `path`. Returns false on I/O failure.
bool writeTestSuite(const std::string& path,
                    const compile::CompiledModel& cm,
                    const std::vector<TestCase>& tests);

}  // namespace stcg::gen
