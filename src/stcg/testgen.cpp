#include "stcg/testgen.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <tuple>

#include "expr/builder.h"
#include "expr/eval.h"
#include "lint/lint.h"
#include "sim/batch_simulator.h"

namespace stcg::gen {

void validateGenOptions(const GenOptions& options) {
  const auto check = [](const char* name, int value) {
    if (value < 0 || value > 4096) {
      throw expr::EvalError(std::string("GenOptions: ") + name +
                            " must be in [0, 4096], got " +
                            std::to_string(value));
    }
  };
  check("jobs", options.jobs);
  check("batch", options.batch);
  check("solver.batch", options.solver.batch);
  if (options.checkpointEveryRounds < 1 ||
      options.checkpointEveryRounds > 1'000'000) {
    throw expr::EvalError(
        "GenOptions: checkpointEveryRounds must be in [1, 1000000], got " +
        std::to_string(options.checkpointEveryRounds));
  }
  if (options.maxRounds < 0) {
    throw expr::EvalError("GenOptions: maxRounds must be >= 0, got " +
                          std::to_string(options.maxRounds));
  }
  if (options.resume && options.checkpointPath.empty()) {
    throw expr::EvalError(
        "GenOptions: resume requires a non-empty checkpointPath");
  }
  if (!options.checkpointPath.empty()) {
    // Probe writability now (append mode: never clobbers an existing
    // checkpoint) so a doomed path fails before the campaign burns its
    // budget, with a typed error instead of a mid-run save failure. If
    // the probe had to create the file, remove it again — an empty file
    // left behind would make a later `resume-if-exists` caller try to
    // load a zero-byte checkpoint.
    const bool existed =
        static_cast<bool>(std::ifstream(options.checkpointPath));
    std::ofstream probe(options.checkpointPath,
                        std::ios::binary | std::ios::app);
    const bool writable = static_cast<bool>(probe);
    probe.close();
    if (!existed && writable) std::remove(options.checkpointPath.c_str());
    if (!writable) {
      throw expr::EvalError("GenOptions: checkpointPath '" +
                            options.checkpointPath + "' is not writable");
    }
  }
}

std::vector<Goal> buildGoals(const compile::CompiledModel& cm,
                             bool includeConditionGoals,
                             bool includeMcdcGoals) {
  std::vector<Goal> goals;
  for (const auto& br : cm.branches) {
    Goal g;
    g.id = static_cast<int>(goals.size());
    g.kind = GoalKind::kBranch;
    g.branchId = br.id;
    g.depth = br.depth;
    g.pathConstraint = br.pathConstraint;
    const auto& d = cm.decisions[static_cast<std::size_t>(br.decision)];
    g.label = d.name + ":" + br.label;
    goals.push_back(std::move(g));
  }
  if (includeConditionGoals) {
    for (const auto& d : cm.decisions) {
      for (std::size_t c = 0; c < d.conditions.size(); ++c) {
        for (const bool polarity : {true, false}) {
          Goal g;
          g.id = static_cast<int>(goals.size());
          g.kind = GoalKind::kCondition;
          g.decisionId = d.id;
          g.condIndex = static_cast<int>(c);
          g.polarity = polarity;
          g.depth = d.depth;
          const expr::ExprPtr lit =
              polarity ? d.conditions[c] : expr::notE(d.conditions[c]);
          g.pathConstraint = expr::andE(d.activation, lit);
          g.label = d.name + ":cond" + std::to_string(c) +
                    (polarity ? "=T" : "=F");
          goals.push_back(std::move(g));
        }
      }
    }
  }
  for (const auto& obj : cm.objectives) {
    Goal g;
    g.id = static_cast<int>(goals.size());
    g.kind = GoalKind::kObjective;
    g.objectiveId = obj.id;
    g.depth = 0;
    g.pathConstraint = expr::andE(obj.activation, obj.cond);
    g.label = obj.name + ":objective";
    goals.push_back(std::move(g));
  }
  if (includeMcdcGoals) {
    for (const auto& d : cm.decisions) {
      if (!d.isBooleanDecision()) continue;
      const std::size_t nc = std::min<std::size_t>(d.conditions.size(), 64);
      for (std::size_t c = 0; c < nc; ++c) {
        Goal g;
        g.id = static_cast<int>(goals.size());
        g.kind = GoalKind::kMcdcPair;
        g.decisionId = d.id;
        g.condIndex = static_cast<int>(c);
        g.depth = d.depth;
        // Reaching the condition true while the decision is active is the
        // anchor; the generator then flips the condition with siblings
        // pinned (unique-cause partner).
        g.pathConstraint = expr::andE(d.activation, d.conditions[c]);
        g.label = d.name + ":mcdc" + std::to_string(c);
        goals.push_back(std::move(g));
      }
    }
  }
  return goals;
}

sim::InputVector inputsFromEnv(const compile::CompiledModel& cm,
                               const expr::Env& model) {
  sim::InputVector in;
  in.reserve(cm.inputs.size());
  for (const auto& iv : cm.inputs) {
    if (!model.has(iv.info.id)) {
      throw expr::EvalError("solver model for '" + cm.name +
                            "' is missing a binding for input '" +
                            iv.info.name + "'");
    }
    in.push_back(model.get(iv.info.id).castTo(iv.info.type));
  }
  return in;
}

bool goalCovered(const coverage::CoverageTracker& cov, const Goal& goal) {
  switch (goal.kind) {
    case GoalKind::kBranch:
      return cov.branchCovered(goal.branchId);
    case GoalKind::kCondition:
      return cov.conditionSeen(goal.decisionId, goal.condIndex,
                               goal.polarity);
    case GoalKind::kMcdcPair:
      return cov.mcdcDemonstrated(goal.decisionId, goal.condIndex);
    case GoalKind::kObjective:
      return cov.objectiveCovered(goal.objectiveId);
  }
  return false;
}

PruneResult pruneUnreachableGoals(const compile::CompiledModel& cm,
                                  std::vector<Goal>& goals,
                                  coverage::CoverageTracker& tracker) {
  PruneResult result;
  result.exclusions = lint::findUnreachableGoals(cm);
  if (result.exclusions.empty()) return result;
  tracker.applyExclusions(result.exclusions);

  const std::set<int> deadBranches(result.exclusions.branches.begin(),
                                   result.exclusions.branches.end());
  const std::set<int> deadObjectives(result.exclusions.objectives.begin(),
                                     result.exclusions.objectives.end());
  std::set<std::tuple<int, int, bool>> deadPolarities;
  for (const auto& s : result.exclusions.conditionSlots) {
    deadPolarities.emplace(s.decision, s.cond, s.polarity);
  }
  std::set<std::pair<int, int>> deadMcdc;
  for (const auto& s : result.exclusions.mcdcSlots) {
    deadMcdc.emplace(s.decision, s.cond);
  }

  const auto isDead = [&](const Goal& g) {
    switch (g.kind) {
      case GoalKind::kBranch:
        return deadBranches.count(g.branchId) > 0;
      case GoalKind::kCondition:
        return deadPolarities.count(
                   {g.decisionId, g.condIndex, g.polarity}) > 0;
      case GoalKind::kMcdcPair:
        return deadMcdc.count({g.decisionId, g.condIndex}) > 0;
      case GoalKind::kObjective:
        return deadObjectives.count(g.objectiveId) > 0;
    }
    return false;
  };

  std::vector<Goal> kept;
  kept.reserve(goals.size());
  for (auto& g : goals) {
    if (isDead(g)) {
      result.prunedLabels.push_back(g.label);
      ++result.removed;
    } else {
      g.id = static_cast<int>(kept.size());
      kept.push_back(std::move(g));
    }
  }
  goals = std::move(kept);
  return result;
}

CoverageSummary summarize(const coverage::CoverageTracker& cov) {
  CoverageSummary s;
  s.decision = cov.decisionCoverage();
  s.condition = cov.conditionCoverage();
  s.mcdc = cov.mcdcCoverage();
  // branchCounts() is exclusion-consistent: the pair always reduces to
  // s.decision, even when an excluded branch was covered anyway.
  std::tie(s.coveredBranches, s.totalBranches) = cov.branchCounts();
  return s;
}

coverage::CoverageTracker replaySuite(const compile::CompiledModel& cm,
                                      const std::vector<TestCase>& tests,
                                      const coverage::Exclusions& excl,
                                      int batch) {
  coverage::CoverageTracker cov(cm);
  if (!excl.empty()) cov.applyExclusions(excl);
  const std::size_t lanes =
      std::min<std::size_t>(batch > 1 ? static_cast<std::size_t>(batch) : 1,
                            tests.size());
  if (lanes <= 1) {
    sim::Simulator simulator(cm);
    for (const auto& t : tests) {
      simulator.reset();
      for (const auto& step : t.steps) {
        (void)simulator.step(step, &cov);
      }
    }
    return cov;
  }

  // Batched path: a work queue of tests over B lockstep lanes. Each lane
  // replays one test from reset and picks up the next when it finishes;
  // lanes with nothing left are fed a zero input vector and simply not
  // recorded. Tests drift out of phase as lengths differ, but every
  // tracker call is a set union, so the result matches the scalar loop.
  const int B = static_cast<int>(lanes);
  sim::BatchSimulator bsim(cm, B);
  constexpr std::size_t kIdle = static_cast<std::size_t>(-1);
  const sim::InputVector idleInput(cm.inputs.size(), expr::Scalar::i(0));
  std::vector<std::size_t> laneTest(lanes, kIdle);
  std::vector<std::size_t> laneStep(lanes, 0);
  std::size_t next = 0;
  int active = 0;
  auto feed = [&](int l) {
    // Zero-step tests record nothing under the scalar loop; skip them.
    while (next < tests.size() && tests[next].steps.empty()) ++next;
    if (next >= tests.size()) {
      laneTest[static_cast<std::size_t>(l)] = kIdle;
      return false;
    }
    laneTest[static_cast<std::size_t>(l)] = next++;
    laneStep[static_cast<std::size_t>(l)] = 0;
    bsim.reset(l);
    return true;
  };
  for (int l = 0; l < B; ++l) active += feed(l) ? 1 : 0;
  std::vector<const sim::InputVector*> in(lanes);
  sim::StepObservationBatch obs;  // pooled: shaped once, reused per step
  while (active > 0) {
    for (int l = 0; l < B; ++l) {
      const std::size_t t = laneTest[static_cast<std::size_t>(l)];
      in[static_cast<std::size_t>(l)] =
          t == kIdle ? &idleInput
                     : &tests[t].steps[laneStep[static_cast<std::size_t>(l)]];
    }
    bsim.stepBatch(in, obs);
    for (int l = 0; l < B; ++l) {
      const std::size_t t = laneTest[static_cast<std::size_t>(l)];
      if (t == kIdle) continue;
      (void)sim::recordObservation(cm, obs, l, cov);
      if (++laneStep[static_cast<std::size_t>(l)] >= tests[t].steps.size()) {
        if (!feed(l)) --active;
      }
    }
  }
  return cov;
}

}  // namespace stcg::gen
