#include "stcg/state_tree.h"

#include <algorithm>
#include <cstring>

namespace stcg::gen {

namespace {

void hashCombine(std::uint64_t& h, std::uint64_t v) {
  // 64-bit variant of boost::hash_combine.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
}

std::uint64_t hashScalar(const expr::Scalar& s) {
  switch (s.type()) {
    case expr::Type::kBool:
      return s.asBool() ? 0x9e3779b9ULL : 0x85ebca6bULL;
    case expr::Type::kInt:
      return static_cast<std::uint64_t>(s.asInt()) * 0xff51afd7ed558ccdULL;
    case expr::Type::kReal: {
      const double d = s.asReal();
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      return bits * 0xc4ceb9fe1a85ec53ULL;
    }
  }
  return 0;
}

}  // namespace

std::uint64_t hashSnapshot(const sim::StateSnapshot& s) {
  std::uint64_t h = 0x517cc1b727220a95ULL;
  for (const auto& v : s) {
    for (const auto& e : v.elems()) hashCombine(h, hashScalar(e));
  }
  return h;
}

StateTree::StateTree(sim::StateSnapshot rootState) {
  StateTreeNode root;
  root.id = 0;
  root.parent = -1;
  root.state = std::move(rootState);
  byHash_.emplace(hashSnapshot(root.state), 0);
  nodes_.push_back(std::move(root));
}

int StateTree::addChild(int parent, sim::InputVector input,
                        sim::StateSnapshot state) {
  StateTreeNode n;
  n.id = static_cast<int>(nodes_.size());
  n.parent = parent;
  n.inputFromParent = std::move(input);
  n.state = std::move(state);
  byHash_.emplace(hashSnapshot(n.state), n.id);
  nodes_[static_cast<std::size_t>(parent)].children.push_back(n.id);
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

int StateTree::findByState(const sim::StateSnapshot& s) const {
  const auto [lo, hi] = byHash_.equal_range(hashSnapshot(s));
  for (auto it = lo; it != hi; ++it) {
    if (nodes_[static_cast<std::size_t>(it->second)].state == s) {
      return it->second;
    }
  }
  return -1;
}

std::vector<sim::InputVector> StateTree::pathInputs(int id) const {
  std::vector<sim::InputVector> out;
  for (int cur = id; cur > 0;
       cur = nodes_[static_cast<std::size_t>(cur)].parent) {
    out.push_back(nodes_[static_cast<std::size_t>(cur)].inputFromParent);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

int StateTree::depth(int id) const {
  int d = 0;
  for (int cur = id; cur > 0;
       cur = nodes_[static_cast<std::size_t>(cur)].parent) {
    ++d;
  }
  return d;
}

}  // namespace stcg::gen
