#include "stcg/state_tree.h"

#include <algorithm>

namespace stcg::gen {

StateTree::StateTree(sim::StateSnapshot rootState) {
  StateTreeNode root;
  root.id = 0;
  root.parent = -1;
  root.state = std::move(rootState);
  root.stateHash = sim::snapshotHash(root.state);
  byHash_.emplace(root.stateHash, 0);
  nodes_.push_back(std::move(root));
}

int StateTree::addChild(int parent, sim::InputVector input,
                        sim::StateSnapshot state) {
  const std::uint64_t h = sim::snapshotHash(state);
  return addChild(parent, std::move(input), std::move(state), h);
}

int StateTree::addChild(int parent, sim::InputVector input,
                        sim::StateSnapshot state, std::uint64_t stateHash) {
  StateTreeNode n;
  n.id = static_cast<int>(nodes_.size());
  n.parent = parent;
  n.inputFromParent = std::move(input);
  n.state = std::move(state);
  n.stateHash = stateHash;
  byHash_.emplace(n.stateHash, n.id);
  nodes_[static_cast<std::size_t>(parent)].children.push_back(n.id);
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

int StateTree::findByState(const sim::StateSnapshot& s) const {
  return findByState(s, sim::snapshotHash(s));
}

int StateTree::findByState(const sim::StateSnapshot& s,
                           std::uint64_t stateHash) const {
  const auto [lo, hi] = byHash_.equal_range(stateHash);
  for (auto it = lo; it != hi; ++it) {
    if (nodes_[static_cast<std::size_t>(it->second)].state == s) {
      return it->second;
    }
  }
  return -1;
}

std::vector<sim::InputVector> StateTree::pathInputs(int id) const {
  std::vector<sim::InputVector> out;
  for (int cur = id; cur > 0;
       cur = nodes_[static_cast<std::size_t>(cur)].parent) {
    out.push_back(nodes_[static_cast<std::size_t>(cur)].inputFromParent);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

int StateTree::depth(int id) const {
  int d = 0;
  for (int cur = id; cur > 0;
       cur = nodes_[static_cast<std::size_t>(cur)].parent) {
    ++d;
  }
  return d;
}

}  // namespace stcg::gen
