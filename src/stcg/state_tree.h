// The state tree (paper Definitions 3 and 4).
//
// Node N = ⟨P, S, IN, SB, CV⟩: parent P, model state S, the input IN that
// drove the parent state to S, and the set SB of goals already attempted
// (solved-for) at this node. CV — the branches covered along the path — is
// tracked globally by the CoverageTracker rather than per node.
//
// Each root-to-node path is an executable input sequence (one test case).
// As an engineering refinement over the paper, nodes are deduplicated by
// state value: reaching an already-known state attaches exploration to the
// existing node instead of growing an identical subtree (documented in
// DESIGN.md; it does not change which tests are emitted).
//
// On top of the per-node SB sets, the tree keeps a global
// (state-hash, goal) dedup set: a goal is never re-solved against a state
// value it was already attempted on, even if that state is re-reached via
// a different node id (e.g. after hitting the node cap). The parallel
// solve loop enumerates its task grid against this set.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"

namespace stcg::gen {

struct StateTreeNode {
  int id = 0;
  int parent = -1;  // -1 for the root
  sim::StateSnapshot state;
  std::uint64_t stateHash = 0;  // snapshotHash(state), computed once
  sim::InputVector inputFromParent;  // empty for the root
  std::vector<int> children;
  std::unordered_set<int> attemptedGoals;  // the paper's SB set
};

/// Order-preserving hash of a state snapshot (used for deduplication).
/// Forwards to sim::snapshotHash — kept here for existing callers.
[[nodiscard]] inline std::uint64_t hashSnapshot(const sim::StateSnapshot& s) {
  return sim::snapshotHash(s);
}

class StateTree {
 public:
  explicit StateTree(sim::StateSnapshot rootState);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const StateTreeNode& node(int id) const {
    return nodes_.at(static_cast<std::size_t>(id));
  }

  /// Add a child of `parent` reached by `input` with resulting `state`.
  int addChild(int parent, sim::InputVector input, sim::StateSnapshot state);

  /// Same, with the caller supplying the state hash instead of computing
  /// snapshotHash(state). Two users: the checkpoint loader (which verifies
  /// the recorded hash against a recomputation before trusting it) and
  /// the collision tests, which force two distinct snapshots onto one
  /// hash to prove findByState never merges them.
  int addChild(int parent, sim::InputVector input, sim::StateSnapshot state,
               std::uint64_t stateHash);

  /// Node id of an existing node with exactly this state, or -1.
  [[nodiscard]] int findByState(const sim::StateSnapshot& s) const;

  /// Same lookup with an explicit hash (must match the hash the candidate
  /// nodes were inserted under). Hash equality only selects the bucket;
  /// the returned node's state compares equal to `s` value-for-value, so
  /// colliding snapshots are never conflated.
  [[nodiscard]] int findByState(const sim::StateSnapshot& s,
                                std::uint64_t stateHash) const;

  /// The input sequence along the path root -> `id` (root's empty input
  /// excluded), i.e. a test case prefix reaching node `id`'s state.
  [[nodiscard]] std::vector<sim::InputVector> pathInputs(int id) const;

  /// Whether `goal` was already attempted at node `id` — per-node SB
  /// first, then the global (state-hash, goal) dedup set.
  [[nodiscard]] bool isAttempted(int id, int goal) const {
    const StateTreeNode& n = node(id);
    return n.attemptedGoals.count(goal) > 0 ||
           attemptedPairs_.count(pairKey(n.stateHash, goal)) > 0;
  }
  void markAttempted(int id, int goal) {
    StateTreeNode& n = nodes_[static_cast<std::size_t>(id)];
    n.attemptedGoals.insert(goal);
    attemptedPairs_.insert(pairKey(n.stateHash, goal));
  }

  /// Number of distinct (state, goal) attempts recorded (for tests and
  /// stats; equals the number of solver queries the dedup set absorbs).
  [[nodiscard]] std::size_t attemptedPairCount() const {
    return attemptedPairs_.size();
  }

  [[nodiscard]] int randomNode(Rng& rng) const {
    return static_cast<int>(rng.index(nodes_.size()));
  }

  /// Depth of node `id` (root = 0).
  [[nodiscard]] int depth(int id) const;

 private:
  static std::uint64_t pairKey(std::uint64_t stateHash, int goal) {
    // SplitMix over the pair: collisions would only skip one solve
    // attempt, deterministically, so a 64-bit key is plenty.
    return splitmix64(stateHash ^
                      (static_cast<std::uint64_t>(goal) * 0x9e3779b97f4a7c15ULL));
  }

  std::vector<StateTreeNode> nodes_;
  std::unordered_multimap<std::uint64_t, int> byHash_;
  std::unordered_set<std::uint64_t> attemptedPairs_;
};

}  // namespace stcg::gen
