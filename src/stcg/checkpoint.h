// Versioned on-disk serialization of a CampaignState (kill-and-resume).
//
// A checkpoint is a token-oriented text file, following the conventions of
// model/serialize and sim/snapshot_io: a magic+version header, model and
// options signatures, the campaign state sections (RNG cursors, state
// tree, solved-input library, tests, events, stats, exclusions, coverage
// tracker), an `end` marker, and a final FNV-1a checksum line covering
// every byte before it. Doubles are hexfloats, snapshots use the
// snapshot_io codec, so a load reproduces the saved state bit-for-bit.
//
// Every failure mode — missing file, truncation, bit corruption, a future
// format version, a checkpoint from a different model or from
// trajectory-relevant options that differ — throws a typed
// expr::EvalError naming what mismatched; none of them can reach
// undefined behavior or silently resume a diverged campaign. The
// signatures deliberately cover only knobs that steer the trajectory
// (seed, solver budgets, sequence length, tree cap, ablations), not
// execution-strategy knobs (jobs, batch, simEngine) or stop conditions
// (budgetMillis, maxRounds): a campaign checkpointed under jobs=1 may be
// resumed under jobs=4 and still replays bit-identically.
//
// Saves are atomic: the file is written to `<path>.tmp` and renamed over
// `path`, so a crash mid-save leaves the previous checkpoint intact.
#pragma once

#include <cstdint>
#include <string>

#include "stcg/campaign.h"

namespace stcg::gen {

inline constexpr const char* kCheckpointMagic = "stcg-checkpoint";
inline constexpr int kCheckpointVersion = 1;

/// Structural fingerprint of a compiled model: name, block count, input
/// variable declarations (ids, names, types, domains), state variable
/// declarations (including initial values), and the decision/branch/
/// objective skeleton. Two models with equal signatures index their
/// coverage points and goals identically.
[[nodiscard]] std::uint64_t modelSignature(const compile::CompiledModel& cm);

/// Fingerprint of the trajectory-relevant generation options (see file
/// comment for what is deliberately excluded).
[[nodiscard]] std::uint64_t optionsSignature(const GenOptions& opt);

/// Atomically write `cs` to `path`. `elapsedMillisTotal` is the total
/// wall-clock spent on the campaign so far (previous processes plus the
/// current one) and is what a resume rebases budget/timestamps with.
/// Throws expr::EvalError on I/O failure.
void saveCampaignCheckpoint(const std::string& path,
                            const compile::CompiledModel& cm,
                            const GenOptions& opt, const CampaignState& cs,
                            std::int64_t elapsedMillisTotal);

/// Load `path` into `cs`, which must be a freshly constructed
/// CampaignState for the same model with its RNG streams already seeded
/// (their seeds are verified against the file, their positions restored
/// from it). Throws expr::EvalError on any validation failure; `cs` must
/// be discarded by the caller if this throws.
void loadCampaignCheckpoint(const std::string& path,
                            const compile::CompiledModel& cm,
                            const GenOptions& opt, CampaignState& cs);

}  // namespace stcg::gen
