#include "stcg/stcg_generator.h"

namespace stcg::gen {

GenResult StcgGenerator::generate(const compile::CompiledModel& cm,
                                  const GenOptions& options) {
  validateGenOptions(options);
  Campaign campaign(cm, options, trace_, traceUser_);
  if (options.resume) campaign.restore(options.checkpointPath);
  while (!campaign.finished()) {
    campaign.runRound();
    if (campaign.checkpointDue()) {
      campaign.saveCheckpoint(options.checkpointPath);
    }
  }
  return campaign.finish();
}

}  // namespace stcg::gen
