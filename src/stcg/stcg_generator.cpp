#include "stcg/stcg_generator.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "expr/builder.h"
#include "expr/subst.h"
#include "util/stopwatch.h"

namespace stcg::gen {

namespace {

/// Bind a state snapshot into an Env keyed by the compiled state leaves.
expr::Env stateEnv(const compile::CompiledModel& cm,
                   const sim::StateSnapshot& s) {
  expr::Env env;
  for (std::size_t i = 0; i < cm.states.size(); ++i) {
    const auto& sv = cm.states[i];
    if (sv.width == 1) {
      env.set(sv.id, s[i].scalar());
    } else {
      env.setArray(sv.id, s[i].elems());
    }
  }
  return env;
}

/// Extract the input vector from a solver model.
sim::InputVector inputFromModel(const compile::CompiledModel& cm,
                                const expr::Env& model) {
  sim::InputVector in;
  in.reserve(cm.inputs.size());
  for (const auto& iv : cm.inputs) {
    assert(model.has(iv.info.id));
    in.push_back(model.get(iv.info.id).castTo(iv.info.type));
  }
  return in;
}

struct SolveHit {
  int nodeId = -1;
  int goalIdx = -1;
  sim::InputVector input;
};

class Run {
 public:
  Run(const compile::CompiledModel& cm, const GenOptions& opt,
      StcgGenerator::TraceFn trace, void* traceUser)
      : cm_(cm),
        opt_(opt),
        rng_(opt.seed),
        tracker_(cm),
        sim_(cm),
        tree_(sim_.snapshot()),
        deadline_(Deadline::afterMillis(opt.budgetMillis)),
        trace_(trace),
        traceUser_(traceUser) {
    goals_ = buildGoals(cm, opt.includeConditionGoals,
                        /*includeMcdcGoals=*/opt.includeConditionGoals);
    if (opt.pruneProvablyDead) {
      // Dead-goal pre-verification (paper Discussion): the lint
      // reachability pass proves goals unreachable from every reachable
      // state; they are removed from the goal list and excluded from the
      // coverage denominators.
      PruneResult pr = pruneUnreachableGoals(cm, goals_, tracker_);
      exclusions_ = std::move(pr.exclusions);
      stats_.goalsPruned = pr.removed;
      for (const auto& label : pr.prunedLabels) {
        this->trace("pruned provably-dead goal " + label);
      }
    }
    order_.resize(goals_.size());
    for (std::size_t i = 0; i < order_.size(); ++i) {
      order_[i] = static_cast<int>(i);
    }
    if (opt.sortGoalsByDepth) {
      std::stable_sort(order_.begin(), order_.end(), [&](int a, int b) {
        return goals_[static_cast<std::size_t>(a)].depth <
               goals_[static_cast<std::size_t>(b)].depth;
      });
    }
  }

  GenResult execute() {
    // Main loop: Algorithm 1 then Algorithm 2, until budget or full
    // coverage of the goal set.
    while (!deadline_.expired() && !allGoalsCovered()) {
      const auto hit = stateAwareSolve();
      if (hit.has_value()) {
        const Goal& goal = goals_[static_cast<std::size_t>(hit->goalIdx)];
        library_.push_back(hit->input);
        executeSequence(hit->nodeId, {hit->input}, TestOrigin::kSolved,
                        goal.label);
        if (goal.kind == GoalKind::kCondition ||
            goal.kind == GoalKind::kMcdcPair) {
          tryMcdcPair(*hit, goal);
        }
      } else {
        if (!opt_.useRandomFallback) break;
        randomExecution();
      }
    }

    GenResult result;
    result.toolName = "STCG";
    result.tests = std::move(tests_);
    result.events = std::move(events_);
    result.stats = stats_;
    result.stats.treeNodes = static_cast<int>(tree_.size());
    const auto replay = replaySuite(cm_, result.tests, exclusions_);
    result.coverage = summarize(replay);
    return result;
  }

 private:
  void trace(const std::string& line) {
    if (trace_ != nullptr) trace_(line, traceUser_);
  }

  [[nodiscard]] bool allGoalsCovered() const {
    for (const auto& g : goals_) {
      if (!goalCovered(tracker_, g)) return false;
    }
    return true;
  }

  // ----- Algorithm 1: state-aware solving --------------------------------
  [[nodiscard]] std::optional<SolveHit> stateAwareSolve() {
    for (const int goalIdx : order_) {
      const Goal& goal = goals_[static_cast<std::size_t>(goalIdx)];
      if (goalCovered(tracker_, goal)) continue;
      const std::size_t nodeCount = opt_.solveOnAllNodes ? tree_.size() : 1;
      for (std::size_t nodeId = 0; nodeId < nodeCount; ++nodeId) {
        if (deadline_.expired()) return std::nullopt;
        const int nid = static_cast<int>(nodeId);
        if (tree_.isAttempted(nid, goalIdx)) continue;
        tree_.markAttempted(nid, goalIdx);

        // "Bring the model state value as constants into the model."
        const expr::Env env = stateEnv(cm_, tree_.node(nid).state);
        const expr::ExprPtr residual =
            expr::substitute(goal.pathConstraint, env);
        ++stats_.solveCalls;
        if (residual->op == expr::Op::kConst &&
            !residual->constVal.toBool()) {
          // Folded to false: this state provably cannot reach the goal
          // in one step.
          ++stats_.solveUnsat;
          trace("solve " + goal.label + " on S" + std::to_string(nid) +
                ": infeasible (state-folded)");
          continue;
        }
        solver::SolveOptions so = opt_.solver;
        so.seed = static_cast<std::uint64_t>(rng_.uniformInt(1, 1'000'000'000));
        const auto res = solver::solveWith(opt_.solverKind, residual,
                                           cm_.inputInfos(), so);
        switch (res.status) {
          case solver::SolveStatus::kSat: {
            ++stats_.solveSat;
            trace("solve " + goal.label + " on S" + std::to_string(nid) +
                  ": SAT");
            return SolveHit{nid, goalIdx, inputFromModel(cm_, res.model)};
          }
          case solver::SolveStatus::kUnsat:
            ++stats_.solveUnsat;
            trace("solve " + goal.label + " on S" + std::to_string(nid) +
                  ": UNSAT");
            break;
          case solver::SolveStatus::kUnknown:
            ++stats_.solveUnknown;
            trace("solve " + goal.label + " on S" + std::to_string(nid) +
                  ": UNKNOWN (budget)");
            break;
        }
      }
    }
    return std::nullopt;
  }

  // ----- Algorithm 2: dynamic execution -----------------------------------
  void executeSequence(int startNode, std::vector<sim::InputVector> seq,
                       TestOrigin origin, const std::string& goalLabel) {
    sim_.restore(tree_.node(startNode).state);
    int cur = startNode;
    std::vector<sim::InputVector> executed;
    executed.reserve(seq.size());
    for (auto& input : seq) {
      const auto res = sim_.step(input, &tracker_);
      ++stats_.stepsExecuted;
      executed.push_back(input);
      const auto snap = sim_.snapshot();
      const int existing = tree_.findByState(snap);
      if (existing >= 0) {
        cur = existing;
      } else if (tree_.size() <
                 static_cast<std::size_t>(opt_.maxTreeNodes)) {
        cur = tree_.addChild(cur, input, snap);
        trace("new state S" + std::to_string(cur));
      }
      if (res.foundNewCoverage()) {
        TestCase tc;
        tc.steps = tree_.pathInputs(startNode);
        tc.steps.insert(tc.steps.end(), executed.begin(), executed.end());
        tc.timestampSec = watch_.elapsedSeconds();
        tc.origin = origin;
        tc.goalLabel = goalLabel;
        tests_.push_back(std::move(tc));
        events_.push_back(GenEvent{watch_.elapsedSeconds(),
                                   tracker_.decisionCoverage(), origin});
        trace("test case emitted (" +
              std::string(origin == TestOrigin::kSolved ? "solved" : "random") +
              "), DC=" + std::to_string(tracker_.decisionCoverage()));
      }
      if (deadline_.expired()) break;
    }
  }

  // ----- MCDC pair completion ---------------------------------------------
  // After satisfying a condition-polarity goal, immediately look for the
  // unique-cause partner on the same state: flip the target condition while
  // pinning every sibling condition to the value it just took. Executing
  // both inputs from one state records two MCDC vectors differing only in
  // the target condition — the same "derived test objectives" SLDV builds
  // for the MCDC criterion.
  void tryMcdcPair(const SolveHit& hit, const Goal& goal) {
    const auto& d =
        cm_.decisions[static_cast<std::size_t>(goal.decisionId)];
    if (!d.isBooleanDecision() || d.conditions.size() < 2) return;
    if (deadline_.expired()) return;

    // Observed sibling condition values under the solved input.
    expr::Env env = stateEnv(cm_, tree_.node(hit.nodeId).state);
    for (std::size_t i = 0; i < cm_.inputs.size(); ++i) {
      env.set(cm_.inputs[i].info.id, hit.input[i]);
    }
    std::vector<expr::ExprPtr> pins;
    pins.push_back(d.activation);
    for (std::size_t c = 0; c < d.conditions.size(); ++c) {
      const bool v = expr::evaluate(d.conditions[c], env).toBool();
      if (static_cast<int>(c) == goal.condIndex) {
        pins.push_back(v ? expr::notE(d.conditions[c]) : d.conditions[c]);
      } else {
        pins.push_back(v ? d.conditions[c] : expr::notE(d.conditions[c]));
      }
    }
    const expr::ExprPtr residual = expr::substitute(
        expr::andAll(pins), stateEnv(cm_, tree_.node(hit.nodeId).state));
    ++stats_.solveCalls;
    if (residual->op == expr::Op::kConst && !residual->constVal.toBool()) {
      ++stats_.solveUnsat;
      return;
    }
    solver::SolveOptions so = opt_.solver;
    so.seed = static_cast<std::uint64_t>(rng_.uniformInt(1, 1'000'000'000));
    const auto res = solver::solveWith(opt_.solverKind, residual,
                                       cm_.inputInfos(), so);
    if (res.status != solver::SolveStatus::kSat) {
      res.status == solver::SolveStatus::kUnsat ? ++stats_.solveUnsat
                                                : ++stats_.solveUnknown;
      return;
    }
    ++stats_.solveSat;
    auto pairInput = inputFromModel(cm_, res.model);
    library_.push_back(pairInput);
    executeSequence(hit.nodeId, {std::move(pairInput)}, TestOrigin::kSolved,
                    goal.label + "-mcdc-pair");
  }

  void randomExecution() {
    ++stats_.randomSequences;
    const int start = tree_.randomNode(rng_);
    std::vector<sim::InputVector> seq;
    seq.reserve(static_cast<std::size_t>(opt_.randomSeqLen));
    for (int i = 0; i < opt_.randomSeqLen; ++i) {
      if (!library_.empty() && !rng_.chance(opt_.freshRandomProbability)) {
        seq.push_back(library_[rng_.index(library_.size())]);
      } else {
        // Fresh domain-random draw: covers input values no solved goal
        // ever produced (also the bootstrap before anything was solved).
        seq.push_back(sim::randomInput(cm_, rng_));
      }
    }
    trace("random execution on S" + std::to_string(start) + " (" +
          std::to_string(seq.size()) + " steps)");
    executeSequence(start, std::move(seq), TestOrigin::kRandom, "");
  }

  const compile::CompiledModel& cm_;
  const GenOptions& opt_;
  Rng rng_;
  coverage::CoverageTracker tracker_;
  sim::Simulator sim_;
  StateTree tree_;
  Deadline deadline_;
  Stopwatch watch_;
  std::vector<Goal> goals_;
  std::vector<int> order_;
  coverage::Exclusions exclusions_;  // proven-unreachable goals
  std::vector<sim::InputVector> library_;  // the solved-input library
  std::vector<TestCase> tests_;
  std::vector<GenEvent> events_;
  GenStats stats_;
  StcgGenerator::TraceFn trace_;
  void* traceUser_;
};

}  // namespace

GenResult StcgGenerator::generate(const compile::CompiledModel& cm,
                                  const GenOptions& options) {
  Run run(cm, options, trace_, traceUser_);
  return run.execute();
}

}  // namespace stcg::gen
