#include "baselines/simcotest_like.h"

#include "lint/lint.h"
#include "util/stopwatch.h"

namespace stcg::gen {

namespace {

std::vector<sim::InputVector> freshSequence(const compile::CompiledModel& cm,
                                            Rng& rng, int maxLen) {
  const int len = static_cast<int>(rng.uniformInt(1, maxLen));
  std::vector<sim::InputVector> seq;
  seq.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) seq.push_back(sim::randomInput(cm, rng));
  return seq;
}

std::vector<sim::InputVector> mutateSequence(
    const compile::CompiledModel& cm, Rng& rng,
    const std::vector<sim::InputVector>& base, int maxLen) {
  std::vector<sim::InputVector> seq = base;
  for (auto& step : seq) {
    if (rng.chance(0.3)) step = sim::randomInput(cm, rng);
  }
  // Occasionally extend: deeper states may hide behind longer runs.
  while (static_cast<int>(seq.size()) < maxLen && rng.chance(0.35)) {
    seq.push_back(sim::randomInput(cm, rng));
  }
  return seq;
}

}  // namespace

GenResult SimCoTestLikeGenerator::generate(const compile::CompiledModel& cm,
                                           const GenOptions& opt) {
  validateGenOptions(opt);
  Stopwatch watch;
  const Deadline deadline = Deadline::afterMillis(opt.budgetMillis);
  // Per-phase RNG streams: archive selection, mutation, and fresh
  // generation draw independently, so a draw in one phase can never shift
  // another phase's sequence (mutating one archive entry more or less
  // would otherwise reshuffle every later fresh sequence).
  const Rng rootRng(opt.seed);
  Rng selectRng = rootRng.fork(1);
  Rng mutateRng = rootRng.fork(2);
  Rng freshRng = rootRng.fork(3);
  coverage::CoverageTracker tracker(cm);
  sim::Simulator simulator(cm);

  GenResult result;
  result.toolName = "SimCoTest-like";
  // Random search has no goal list, but the reported percentages should
  // still use the pruned denominators for a fair comparison.
  coverage::Exclusions exclusions;
  if (opt.pruneProvablyDead) {
    exclusions = lint::findUnreachableGoals(cm);
    tracker.applyExclusions(exclusions);
    result.stats.goalsPruned = exclusions.count();
  }
  std::vector<std::vector<sim::InputVector>> archive;

  while (!deadline.expired()) {
    std::vector<sim::InputVector> seq;
    if (!archive.empty() && selectRng.chance(0.5)) {
      seq = mutateSequence(cm, mutateRng,
                           archive[selectRng.index(archive.size())],
                           opt.randomMaxSeqLen);
    } else {
      seq = freshSequence(cm, freshRng, opt.randomMaxSeqLen);
    }
    ++result.stats.randomSequences;
    simulator.reset();
    bool newCover = false;
    for (const auto& step : seq) {
      const auto res = simulator.step(step, &tracker);
      ++result.stats.stepsExecuted;
      newCover = newCover || res.foundNewCoverage();
      if (deadline.expired()) break;
    }
    if (newCover) {
      TestCase tc;
      tc.steps = seq;
      tc.timestampSec = watch.elapsedSeconds();
      tc.origin = TestOrigin::kRandom;
      result.tests.push_back(std::move(tc));
      result.events.push_back(GenEvent{watch.elapsedSeconds(),
                                       tracker.decisionCoverage(),
                                       TestOrigin::kRandom});
      archive.push_back(std::move(seq));
    }
  }

  const auto replay = replaySuite(cm, result.tests, exclusions);
  result.coverage = summarize(replay);
  return result;
}

}  // namespace stcg::gen
