#include "baselines/sldv_like.h"

#include <algorithm>
#include <unordered_map>

#include "expr/builder.h"
#include "expr/subst.h"
#include "util/stopwatch.h"

namespace stcg::gen {

namespace {

/// Per-depth symbolic unrolling context.
struct Unrolling {
  // Fresh input variables per step: inputVars[k][i] is input i at step k.
  std::vector<std::vector<expr::VarInfo>> inputVars;
  // State expressions entering each step (step 0 entry = initial consts).
  std::vector<std::unordered_map<expr::VarId, expr::ExprPtr>> entryState;
};

expr::ExprPtr initLeafConst(const compile::StateVar& sv) {
  if (sv.width == 1) return expr::cScalar(sv.init.scalar());
  return expr::cArray(sv.type, sv.init.elems());
}

}  // namespace

GenResult SldvLikeGenerator::generate(const compile::CompiledModel& cm,
                                      const GenOptions& opt) {
  validateGenOptions(opt);
  Stopwatch watch;
  const Deadline deadline = Deadline::afterMillis(opt.budgetMillis);
  // Solver seeds are forked per (depth, goal) rather than drawn from one
  // advancing stream: which queries run depends on coverage so far and on
  // the deadline, so a shared stream would let one query's outcome shift
  // every later query's seed.
  const Rng seedRoot(opt.seed);
  coverage::CoverageTracker tracker(cm);
  sim::Simulator simulator(cm);

  auto goals = buildGoals(cm, opt.includeConditionGoals);
  coverage::Exclusions exclusions;
  int goalsPruned = 0;
  if (opt.pruneProvablyDead) {
    PruneResult pr = pruneUnreachableGoals(cm, goals, tracker);
    exclusions = std::move(pr.exclusions);
    goalsPruned = pr.removed;
  }
  std::vector<int> order(goals.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return goals[static_cast<std::size_t>(a)].depth <
           goals[static_cast<std::size_t>(b)].depth;
  });

  // Fresh variable ids start above everything the compiler allocated.
  expr::VarId nextId = 0;
  for (const auto& iv : cm.inputs) nextId = std::max(nextId, iv.info.id + 1);
  for (const auto& sv : cm.states) nextId = std::max(nextId, sv.id + 1);

  Unrolling u;
  u.entryState.emplace_back();
  for (const auto& sv : cm.states) {
    u.entryState[0][sv.id] = initLeafConst(sv);
  }

  const auto extendUnrolling = [&](int toDepth) {
    while (static_cast<int>(u.inputVars.size()) < toDepth) {
      const int k = static_cast<int>(u.inputVars.size());
      std::vector<expr::VarInfo> stepInputs;
      std::unordered_map<expr::VarId, expr::ExprPtr> mapping =
          u.entryState[static_cast<std::size_t>(k)];
      for (const auto& iv : cm.inputs) {
        expr::VarInfo fresh = iv.info;
        fresh.id = nextId++;
        fresh.name = iv.info.name + "@" + std::to_string(k);
        mapping[iv.info.id] = expr::mkVar(fresh);
        stepInputs.push_back(fresh);
      }
      std::unordered_map<expr::VarId, expr::ExprPtr> nextEntry;
      for (const auto& sv : cm.states) {
        nextEntry[sv.id] = expr::substituteExprs(sv.next, mapping);
      }
      u.inputVars.push_back(std::move(stepInputs));
      u.entryState.push_back(std::move(nextEntry));
    }
  };

  GenResult result;
  result.toolName = "SLDV-like";
  result.stats.goalsPruned = goalsPruned;

  // Decode a SAT model into a k-step input sequence and run it from reset.
  const auto commitSolution = [&](int depth, const expr::Env& model,
                                  const std::string& label) {
    TestCase tc;
    tc.origin = TestOrigin::kSolved;
    tc.goalLabel = label;
    for (int k = 0; k < depth; ++k) {
      sim::InputVector in;
      for (std::size_t i = 0; i < cm.inputs.size(); ++i) {
        const auto& vi = u.inputVars[static_cast<std::size_t>(k)][i];
        in.push_back(model.has(vi.id)
                         ? model.get(vi.id).castTo(vi.type)
                         : solver::scalarForVar(vi, (vi.lo + vi.hi) / 2));
      }
      tc.steps.push_back(std::move(in));
    }
    simulator.reset();
    bool newCover = false;
    for (const auto& step : tc.steps) {
      const auto res = simulator.step(step, &tracker);
      ++result.stats.stepsExecuted;
      newCover = newCover || res.foundNewCoverage();
    }
    if (newCover) {
      tc.timestampSec = watch.elapsedSeconds();
      result.tests.push_back(std::move(tc));
      result.events.push_back(GenEvent{watch.elapsedSeconds(),
                                       tracker.decisionCoverage(),
                                       TestOrigin::kSolved});
    }
  };

  // Attempt each uncovered goal at growing unroll depths.
  for (int depth = 1;
       depth <= opt.maxUnrollDepth && !deadline.expired(); ++depth) {
    extendUnrolling(depth);
    for (const int gi : order) {
      if (deadline.expired()) break;
      const Goal& goal = goals[static_cast<std::size_t>(gi)];
      if (goalCovered(tracker, goal)) continue;

      // The goal fires on the last unrolled step.
      std::unordered_map<expr::VarId, expr::ExprPtr> mapping =
          u.entryState[static_cast<std::size_t>(depth - 1)];
      for (std::size_t i = 0; i < cm.inputs.size(); ++i) {
        mapping[cm.inputs[i].info.id] = expr::mkVar(
            u.inputVars[static_cast<std::size_t>(depth - 1)][i]);
      }
      const expr::ExprPtr constraint =
          expr::substituteExprs(goal.pathConstraint, mapping);
      ++result.stats.solveCalls;
      if (constraint->op == expr::Op::kConst &&
          !constraint->constVal.toBool()) {
        ++result.stats.solveUnsat;
        continue;
      }
      std::vector<expr::VarInfo> vars;
      for (int k = 0; k < depth; ++k) {
        for (const auto& vi : u.inputVars[static_cast<std::size_t>(k)]) {
          vars.push_back(vi);
        }
      }
      solver::SolveOptions so = opt.solver;
      // Deeper queries get proportionally more budget, as a real
      // bounded-model-checking loop would.
      so.timeBudgetMillis = opt.solver.timeBudgetMillis * depth;
      so.timeBudgetMillis =
          std::min<std::int64_t>(so.timeBudgetMillis,
                                 deadline.remainingMillis());
      Rng queryRng = seedRoot.fork((static_cast<std::uint64_t>(depth) << 32) ^
                                   static_cast<std::uint64_t>(gi));
      so.seed =
          static_cast<std::uint64_t>(queryRng.uniformInt(1, 1'000'000'000));
      solver::BoxSolver solver(so);
      const auto res = solver.solve(constraint, vars);
      switch (res.status) {
        case solver::SolveStatus::kSat:
          ++result.stats.solveSat;
          commitSolution(depth, res.model, goal.label);
          break;
        case solver::SolveStatus::kUnsat:
          ++result.stats.solveUnsat;
          break;
        case solver::SolveStatus::kUnknown:
          ++result.stats.solveUnknown;
          break;
      }
    }
  }

  const auto replay = replaySuite(cm, result.tests, exclusions);
  result.coverage = summarize(replay);
  return result;
}

}  // namespace stcg::gen
