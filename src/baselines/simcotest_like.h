// SimCoTest-like baseline: random search with coverage feedback — the
// paper's characterization of SimCoTest's Monte-Carlo test generation.
//
// Random input sequences are simulated from reset; sequences that cover
// anything new are kept in an archive and later mutated (per-step value
// perturbation and extension). This gets shallow coverage quickly and then
// plateaus on state-dependent branches — the Fig. 4 shape.
#pragma once

#include "stcg/testgen.h"

namespace stcg::gen {

class SimCoTestLikeGenerator final : public Generator {
 public:
  [[nodiscard]] std::string name() const override { return "SimCoTest-like"; }
  [[nodiscard]] GenResult generate(const compile::CompiledModel& cm,
                                   const GenOptions& options) override;
};

}  // namespace stcg::gen
