// SLDV-like baseline: constraint solving over a bounded multi-step
// unrolling of the model from its initial state — the paper's
// characterization of Simulink Design Verifier's approach (symbolic
// analysis of whole paths from reset, no dynamic state feedback).
//
// For unroll depth k, the step function is composed k times symbolically:
// state leaves of step i+1 are substituted with the step-i next-state
// expressions (starting from the initial state constants), and the inputs
// of each step get fresh variables. A goal is attempted at growing depths;
// a SAT result yields a k-step test case, which is then simulated from
// reset to record coverage.
//
// This reproduces the scaling the paper leans on: state-dependent goals
// need deep unrollings whose store/select towers the solver grinds on,
// while STCG's one-step queries stay tiny.
#pragma once

#include "stcg/testgen.h"

namespace stcg::gen {

class SldvLikeGenerator final : public Generator {
 public:
  [[nodiscard]] std::string name() const override { return "SLDV-like"; }
  [[nodiscard]] GenResult generate(const compile::CompiledModel& cm,
                                   const GenOptions& options) override;
};

}  // namespace stcg::gen
