// Lockstep batched simulation: B independent trajectories of one compiled
// model advanced per tape pass.
//
// A BatchSimulator holds B lanes of model state and executes the shared
// model tape through expr::BatchTapeExecutor, so one instruction walk
// advances every lane by one step. Coverage is decoupled from execution:
// stepBatch() fills a pooled StepObservationBatch (which decision arm
// fired, the condition vector, objective hits, outputs, next state — per
// lane) and the caller replays lanes into a CoverageTracker with
// recordObservation() in whatever lane order its determinism contract
// requires. This split is what lets the STCG generator run B replay
// sequences in lockstep and still commit their coverage in the exact
// order the sequential engine would (DESIGN.md §5f).
//
// Pooling: the batch lays observations out as flat lane-major SoA rows
// (decision arms, condition bytes, objective flags, output scalars) plus
// one persistent StateSnapshot per lane, all sized once on first use and
// reused across steps — the replay hot loops (stepBatch + record) touch
// the allocator only while the pool grows, never per step. Lane state is
// likewise advanced in place (element-wise Scalar stores into the
// existing Value cells) instead of rebuilding a snapshot per step.
//
// Bit-identity: observation extraction reads the same slots in the same
// order as Simulator::stepTape, and recordObservation() performs the same
// tracker calls in the same order — including throwing the same SimError
// when an active decision satisfies no arm (detected at execution, thrown
// at record time, so speculative lanes that are never committed also never
// throw, mirroring a sequential engine that never ran them).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "compile/model_tape.h"
#include "expr/batch_tape.h"
#include "sim/simulator.h"

namespace stcg::sim {

/// Pooled observations for every lane of one stepBatch() call. Flat
/// lane-major storage, shaped once per (model, lane-count) and reused —
/// keep one instance (or one per pipelined step) alive across the replay
/// loop to amortize all allocation.
class StepObservationBatch {
 public:
  [[nodiscard]] int lanes() const { return lanes_; }

  /// Arm index decision `di` took in `lane`: -1 = activation false,
  /// -2 = activation true but no arm satisfied (malformed compilation —
  /// recordObservation throws SimError, like Simulator::step).
  [[nodiscard]] int decisionTaken(int lane, std::size_t di) const {
    return taken_[static_cast<std::size_t>(lane) * decisions_ + di];
  }
  /// Condition truth values (0/1 bytes) of decision `di` in `lane`;
  /// meaningful only when the decision was active that step.
  [[nodiscard]] const std::uint8_t* conditionValues(int lane,
                                                   std::size_t di) const {
    return conds_.data() + static_cast<std::size_t>(lane) * condTotal_ +
           condOffset_[di];
  }
  [[nodiscard]] std::size_t conditionCount(std::size_t di) const {
    return condOffset_[di + 1] - condOffset_[di];
  }
  /// Objective `oi` fired (activation && condition) in `lane`.
  [[nodiscard]] bool objectiveFired(int lane, std::size_t oi) const {
    return objFired_[static_cast<std::size_t>(lane) * objectives_ + oi] != 0;
  }
  [[nodiscard]] const expr::Scalar& output(int lane, std::size_t oi) const {
    return outputs_[static_cast<std::size_t>(lane) * outputCount_ + oi];
  }
  [[nodiscard]] std::size_t outputCount() const { return outputCount_; }
  /// The state snapshot `lane` advanced to (persistent storage, valid
  /// until the next stepBatch into this pool).
  [[nodiscard]] const StateSnapshot& next(int lane) const {
    return next_[static_cast<std::size_t>(lane)];
  }

 private:
  friend class BatchSimulator;

  /// (Re)shape for `cm` across `lanes`; cheap no-op when already shaped.
  void ensureShape(const compile::CompiledModel& cm, int lanes);

  const compile::CompiledModel* cm_ = nullptr;
  int lanes_ = 0;
  std::size_t decisions_ = 0;
  std::size_t condTotal_ = 0;     // sum of per-decision condition counts
  std::size_t objectives_ = 0;
  std::size_t outputCount_ = 0;
  std::vector<std::size_t> condOffset_;   // [decisions_ + 1] prefix sums
  std::vector<int> taken_;                // [lane * decisions_ + di]
  std::vector<std::uint8_t> conds_;       // [lane * condTotal_ + off + ci]
  std::vector<std::uint8_t> objFired_;    // [lane * objectives_ + oi]
  std::vector<expr::Scalar> outputs_;     // [lane * outputCount_ + oi]
  std::vector<StateSnapshot> next_;       // per lane
};

class BatchSimulator {
 public:
  BatchSimulator(const compile::CompiledModel& cm, int lanes);

  [[nodiscard]] int lanes() const { return exec_->lanes(); }

  /// Return `lane` to the model's initial state.
  void reset(int lane);
  /// Restore a snapshot into `lane`; throws SimError on a size mismatch.
  void restore(int lane, const StateSnapshot& s);
  [[nodiscard]] const StateSnapshot& state(int lane) const {
    return state_[static_cast<std::size_t>(lane)];
  }

  /// Advance every lane one step: inputs[l] drives lane l (inputs.size()
  /// must equal lanes()). Observations are written into the pooled `out`
  /// (shaped on first use, storage reused afterwards). Throws SimError on
  /// an input-size mismatch, naming the model like Simulator::step.
  void stepBatch(const std::vector<const InputVector*>& inputs,
                 StepObservationBatch& out);

  [[nodiscard]] const compile::CompiledModel& compiled() const { return *cm_; }

  /// The underlying batch executor (e.g. for its array-path counters).
  [[nodiscard]] const expr::BatchTapeExecutor& executor() const {
    return *exec_;
  }

 private:
  const compile::CompiledModel* cm_;
  compile::ModelTape modelTape_;
  std::optional<expr::BatchTapeExecutor> exec_;
  std::vector<StateSnapshot> state_;  // per lane
  // 1 while the lane still holds the model's initial state (reset() and
  // never stepped/restored since) — when every lane is fresh, stepBatch
  // binds wide states once via setArrayVarBroadcast instead of per lane.
  std::vector<std::uint8_t> freshReset_;
  // 1 while the lane's state came from this simulator's own last
  // stepBatch readback (no reset()/restore() since) — when every lane is
  // clean, each wide state's next bind is exactly the previous run's
  // next-state plane cast to the state's type, so stepBatch rebinds it
  // with one plane copy (rebindArrayVarFromSlot) instead of B per-lane
  // Scalar binds. The executor falls back (returns false) whenever the
  // cast is not provably the identity at run time.
  std::vector<std::uint8_t> laneClean_;
  std::vector<std::uint8_t> boundWide_;  // per state: bound wide this step
};

/// Replay `lane`'s observation into `cov`, performing exactly the tracker
/// calls (and in the order) Simulator::step would have made, and
/// returning the same StepResult.
StepResult recordObservation(const compile::CompiledModel& cm,
                             const StepObservationBatch& obs, int lane,
                             coverage::CoverageTracker& cov);

}  // namespace stcg::sim
