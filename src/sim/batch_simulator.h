// Lockstep batched simulation: B independent trajectories of one compiled
// model advanced per tape pass.
//
// A BatchSimulator holds B lanes of model state and executes the shared
// model tape through expr::BatchTapeExecutor, so one instruction walk
// advances every lane by one step. Coverage is decoupled from execution:
// stepBatch() returns per-lane StepObservations (which decision arm fired,
// the condition vector, objective hits, outputs, next state) and the
// caller replays them into a CoverageTracker with recordObservation() in
// whatever lane order its determinism contract requires. This split is
// what lets the STCG generator run B replay sequences in lockstep and
// still commit their coverage in the exact order the sequential engine
// would (DESIGN.md §5f).
//
// Bit-identity: observation extraction reads the same slots in the same
// order as Simulator::stepTape, and recordObservation() performs the same
// tracker calls in the same order — including throwing the same SimError
// when an active decision satisfies no arm (detected at execution, thrown
// at record time, so speculative lanes that are never committed also never
// throw, mirroring a sequential engine that never ran them).
#pragma once

#include <optional>
#include <vector>

#include "compile/model_tape.h"
#include "expr/batch_tape.h"
#include "sim/simulator.h"

namespace stcg::sim {

/// Everything one lane's step produced, recorded later (or never).
struct StepObservation {
  /// Per decision: arm index taken, -1 = activation false,
  /// -2 = activation true but no arm satisfied (malformed compilation —
  /// recordObservation throws SimError, like Simulator::step).
  std::vector<int> decisionTaken;
  /// Per decision: condition truth vector (empty when inactive or the
  /// decision has no conditions), aligned with decisionTaken.
  std::vector<std::vector<bool>> conditionValues;
  /// Per objective: activation && condition held this step.
  std::vector<bool> objectiveFired;
  std::vector<expr::Scalar> outputs;
  StateSnapshot next;
};

class BatchSimulator {
 public:
  BatchSimulator(const compile::CompiledModel& cm, int lanes);

  [[nodiscard]] int lanes() const { return exec_->lanes(); }

  /// Return `lane` to the model's initial state.
  void reset(int lane);
  /// Restore a snapshot into `lane`; throws SimError on a size mismatch.
  void restore(int lane, const StateSnapshot& s);
  [[nodiscard]] const StateSnapshot& state(int lane) const {
    return state_[static_cast<std::size_t>(lane)];
  }

  /// Advance every lane one step: inputs[l] drives lane l (inputs.size()
  /// must equal lanes()). Observations are written into `out` (resized to
  /// lanes()). Throws SimError on an input-size mismatch, naming the
  /// model like Simulator::step.
  void stepBatch(const std::vector<const InputVector*>& inputs,
                 std::vector<StepObservation>& out);

  [[nodiscard]] const compile::CompiledModel& compiled() const { return *cm_; }

 private:
  const compile::CompiledModel* cm_;
  compile::ModelTape modelTape_;
  std::optional<expr::BatchTapeExecutor> exec_;
  std::vector<StateSnapshot> state_;  // per lane
};

/// Replay one lane's observation into `cov`, performing exactly the
/// tracker calls (and in the order) Simulator::step would have made, and
/// returning the same StepResult.
StepResult recordObservation(const compile::CompiledModel& cm,
                             const StepObservation& obs,
                             coverage::CoverageTracker& cov);

}  // namespace stcg::sim
