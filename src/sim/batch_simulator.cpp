#include "sim/batch_simulator.h"

namespace stcg::sim {

using expr::Scalar;
using expr::Value;

BatchSimulator::BatchSimulator(const compile::CompiledModel& cm, int lanes)
    : cm_(&cm), modelTape_(compile::buildModelTape(cm)) {
  exec_.emplace(modelTape_.tape, lanes);
  state_.resize(static_cast<std::size_t>(exec_->lanes()));
  for (int l = 0; l < exec_->lanes(); ++l) reset(l);
}

void BatchSimulator::reset(int lane) {
  auto& st = state_[static_cast<std::size_t>(lane)];
  st.clear();
  st.reserve(cm_->states.size());
  for (const auto& s : cm_->states) st.push_back(s.init);
}

void BatchSimulator::restore(int lane, const StateSnapshot& s) {
  if (s.size() != cm_->states.size()) {
    throw SimError("restore: snapshot has " + std::to_string(s.size()) +
                   " state(s), model '" + cm_->name + "' expects " +
                   std::to_string(cm_->states.size()));
  }
  state_[static_cast<std::size_t>(lane)] = s;
}

void BatchSimulator::stepBatch(const std::vector<const InputVector*>& inputs,
                               std::vector<StepObservation>& out) {
  expr::BatchTapeExecutor& ex = *exec_;
  const int B = ex.lanes();
  for (int lane = 0; lane < B; ++lane) {
    const InputVector& in = *inputs[static_cast<std::size_t>(lane)];
    if (in.size() != cm_->inputs.size()) {
      throw SimError("step: input vector has " + std::to_string(in.size()) +
                     " value(s), model '" + cm_->name + "' expects " +
                     std::to_string(cm_->inputs.size()));
    }
    const auto& st = state_[static_cast<std::size_t>(lane)];
    for (std::size_t i = 0; i < cm_->states.size(); ++i) {
      const auto& sv = cm_->states[i];
      if (sv.width == 1) {
        ex.setVar(lane, sv.id, st[i].scalar());
      } else {
        ex.setArrayVar(lane, sv.id, st[i].elems());
      }
    }
    for (std::size_t i = 0; i < cm_->inputs.size(); ++i) {
      // Same coercion chain as Simulator::stepTape.
      ex.setVar(lane, cm_->inputs[i].info.id,
                in[i].castTo(cm_->inputs[i].info.type));
    }
  }
  ex.run();

  out.resize(static_cast<std::size_t>(B));
  for (int lane = 0; lane < B; ++lane) {
    StepObservation& obs = out[static_cast<std::size_t>(lane)];
    obs.decisionTaken.assign(cm_->decisions.size(), -1);
    obs.conditionValues.assign(cm_->decisions.size(), {});
    obs.objectiveFired.assign(cm_->objectives.size(), false);

    for (std::size_t di = 0; di < cm_->decisions.size(); ++di) {
      const auto& d = cm_->decisions[di];
      if (!ex.scalarToBool(modelTape_.decisionActivations[di], lane)) {
        continue;
      }
      int taken = -2;  // active; recordObservation throws if no arm fires
      const auto& arms = modelTape_.decisionArms[di];
      for (std::size_t a = 0; a < arms.size(); ++a) {
        if (ex.scalarToBool(arms[a], lane)) {
          taken = static_cast<int>(a);
          break;
        }
      }
      obs.decisionTaken[di] = taken;
      if (!d.conditions.empty()) {
        auto& vals = obs.conditionValues[di];
        vals.reserve(d.conditions.size());
        for (const auto& slot : modelTape_.decisionConditions[di]) {
          vals.push_back(ex.scalarToBool(slot, lane));
        }
      }
    }
    for (std::size_t oi = 0; oi < cm_->objectives.size(); ++oi) {
      obs.objectiveFired[oi] =
          ex.scalarToBool(modelTape_.objectiveActivations[oi], lane) &&
          ex.scalarToBool(modelTape_.objectiveConds[oi], lane);
    }

    obs.outputs.clear();
    obs.outputs.reserve(cm_->outputs.size());
    for (const auto& slot : modelTape_.outputs) {
      obs.outputs.push_back(ex.scalar(slot, lane));
    }

    obs.next.clear();
    obs.next.reserve(cm_->states.size());
    for (std::size_t i = 0; i < cm_->states.size(); ++i) {
      const auto& sv = cm_->states[i];
      const auto& slot = modelTape_.stateNext[i];
      if (sv.width == 1) {
        obs.next.emplace_back(ex.scalar(slot, lane).castTo(sv.type));
      } else {
        obs.next.emplace_back(Value(sv.type, ex.array(slot, lane)));
      }
    }
    state_[static_cast<std::size_t>(lane)] = obs.next;
  }
}

StepResult recordObservation(const compile::CompiledModel& cm,
                             const StepObservation& obs,
                             coverage::CoverageTracker& cov) {
  StepResult result;
  for (std::size_t di = 0; di < cm.decisions.size(); ++di) {
    const auto& d = cm.decisions[di];
    const int taken = obs.decisionTaken[di];
    if (taken == -1) continue;
    if (taken == -2) {
      throw SimError("step: no arm of decision '" + d.name +
                     "' satisfied although its activation holds");
    }
    const int newBranch = cov.recordDecision(d.id, taken);
    if (newBranch >= 0) result.newlyCovered.push_back(newBranch);
    if (!d.conditions.empty()) {
      if (cov.recordConditions(d.id, obs.conditionValues[di], taken == 0)) {
        result.newConditionObservation = true;
      }
    }
  }
  for (std::size_t oi = 0; oi < cm.objectives.size(); ++oi) {
    const auto& obj = cm.objectives[oi];
    if (cov.objectiveCovered(obj.id)) continue;
    if (obs.objectiveFired[oi]) {
      if (cov.recordObjective(obj.id)) {
        result.newConditionObservation = true;
      }
    }
  }
  return result;
}

}  // namespace stcg::sim
