#include "sim/batch_simulator.h"

#include <algorithm>

namespace stcg::sim {

using expr::Scalar;
using expr::Value;

void StepObservationBatch::ensureShape(const compile::CompiledModel& cm,
                                       int lanes) {
  if (cm_ == &cm && lanes_ == lanes) return;
  cm_ = &cm;
  lanes_ = lanes;
  decisions_ = cm.decisions.size();
  objectives_ = cm.objectives.size();
  outputCount_ = cm.outputs.size();
  condOffset_.assign(decisions_ + 1, 0);
  for (std::size_t di = 0; di < decisions_; ++di) {
    condOffset_[di + 1] = condOffset_[di] + cm.decisions[di].conditions.size();
  }
  condTotal_ = condOffset_[decisions_];
  const auto B = static_cast<std::size_t>(lanes);
  taken_.assign(B * decisions_, -1);
  conds_.assign(B * condTotal_, 0);
  objFired_.assign(B * objectives_, 0);
  outputs_.assign(B * outputCount_, Scalar{});
  next_.assign(B, StateSnapshot{});
}

BatchSimulator::BatchSimulator(const compile::CompiledModel& cm, int lanes)
    : cm_(&cm), modelTape_(compile::buildModelTape(cm)) {
  exec_.emplace(modelTape_.tape, lanes);
  state_.resize(static_cast<std::size_t>(exec_->lanes()));
  freshReset_.assign(static_cast<std::size_t>(exec_->lanes()), 0);
  laneClean_.assign(static_cast<std::size_t>(exec_->lanes()), 0);
  for (int l = 0; l < exec_->lanes(); ++l) reset(l);
}

void BatchSimulator::reset(int lane) {
  auto& st = state_[static_cast<std::size_t>(lane)];
  st.clear();
  st.reserve(cm_->states.size());
  for (const auto& s : cm_->states) st.push_back(s.init);
  freshReset_[static_cast<std::size_t>(lane)] = 1;
  laneClean_[static_cast<std::size_t>(lane)] = 0;
}

void BatchSimulator::restore(int lane, const StateSnapshot& s) {
  if (s.size() != cm_->states.size()) {
    throw SimError("restore: snapshot has " + std::to_string(s.size()) +
                   " state(s), model '" + cm_->name + "' expects " +
                   std::to_string(cm_->states.size()));
  }
  state_[static_cast<std::size_t>(lane)] = s;
  freshReset_[static_cast<std::size_t>(lane)] = 0;
  laneClean_[static_cast<std::size_t>(lane)] = 0;
}

void BatchSimulator::stepBatch(const std::vector<const InputVector*>& inputs,
                               StepObservationBatch& out) {
  expr::BatchTapeExecutor& ex = *exec_;
  const int B = ex.lanes();
  // Freshly reset lanes all hold the model's initial state, so wide
  // states can be bound once for every lane with a broadcast fan-out
  // instead of B per-lane column writes — the common replay-reset case.
  // Lanes whose state came from our own last readback (no reset/restore
  // since) are even cheaper: the value about to be bound is exactly the
  // previous run's next-state plane, so one plane copy replaces B
  // per-lane Scalar binds — the steady-state replay path.
  bool allFresh = true;
  bool allClean = true;
  for (int lane = 0; lane < B; ++lane) {
    allFresh &= freshReset_[static_cast<std::size_t>(lane)] != 0;
    allClean &= laneClean_[static_cast<std::size_t>(lane)] != 0;
  }
  boundWide_.assign(cm_->states.size(), 0);
  if (allFresh) {
    for (std::size_t i = 0; i < cm_->states.size(); ++i) {
      const auto& sv = cm_->states[i];
      if (sv.width != 1) {
        ex.setArrayVarBroadcast(sv.id, sv.init.elems());
        boundWide_[i] = 1;
      }
    }
  } else if (allClean) {
    for (std::size_t i = 0; i < cm_->states.size(); ++i) {
      const auto& sv = cm_->states[i];
      if (sv.width != 1 &&
          ex.rebindArrayVarFromSlot(sv.id, modelTape_.stateNext[i],
                                    sv.type)) {
        boundWide_[i] = 1;
      }
    }
  }
  for (int lane = 0; lane < B; ++lane) {
    const InputVector& in = *inputs[static_cast<std::size_t>(lane)];
    if (in.size() != cm_->inputs.size()) {
      throw SimError("step: input vector has " + std::to_string(in.size()) +
                     " value(s), model '" + cm_->name + "' expects " +
                     std::to_string(cm_->inputs.size()));
    }
    const auto& st = state_[static_cast<std::size_t>(lane)];
    for (std::size_t i = 0; i < cm_->states.size(); ++i) {
      const auto& sv = cm_->states[i];
      if (sv.width == 1) {
        ex.setVar(lane, sv.id, st[i].scalar());
      } else if (!boundWide_[i]) {
        ex.setArrayVar(lane, sv.id, st[i].elems());
      }
    }
    for (std::size_t i = 0; i < cm_->inputs.size(); ++i) {
      // Same coercion chain as Simulator::stepTape.
      ex.setVar(lane, cm_->inputs[i].info.id,
                in[i].castTo(cm_->inputs[i].info.type));
    }
  }
  ex.run();

  out.ensureShape(*cm_, B);
  for (int lane = 0; lane < B; ++lane) {
    const std::size_t L = static_cast<std::size_t>(lane);
    int* taken = out.taken_.data() + L * out.decisions_;
    std::uint8_t* condRow = out.conds_.data() + L * out.condTotal_;
    std::uint8_t* fired = out.objFired_.data() + L * out.objectives_;

    for (std::size_t di = 0; di < cm_->decisions.size(); ++di) {
      if (!ex.scalarToBool(modelTape_.decisionActivations[di], lane)) {
        taken[di] = -1;
        continue;
      }
      int t = -2;  // active; recordObservation throws if no arm fires
      const auto& arms = modelTape_.decisionArms[di];
      for (std::size_t a = 0; a < arms.size(); ++a) {
        if (ex.scalarToBool(arms[a], lane)) {
          t = static_cast<int>(a);
          break;
        }
      }
      taken[di] = t;
      std::uint8_t* vals = condRow + out.condOffset_[di];
      const auto& condSlots = modelTape_.decisionConditions[di];
      for (std::size_t ci = 0; ci < condSlots.size(); ++ci) {
        vals[ci] = ex.scalarToBool(condSlots[ci], lane) ? 1 : 0;
      }
    }
    for (std::size_t oi = 0; oi < cm_->objectives.size(); ++oi) {
      fired[oi] =
          (ex.scalarToBool(modelTape_.objectiveActivations[oi], lane) &&
           ex.scalarToBool(modelTape_.objectiveConds[oi], lane))
              ? 1
              : 0;
    }

    for (std::size_t i = 0; i < modelTape_.outputs.size(); ++i) {
      out.outputs_[L * out.outputCount_ + i] =
          ex.scalar(modelTape_.outputs[i], lane);
    }

    // Advance the lane's state in place: element-wise Scalar stores into
    // the existing Value cells (Value::set casts to the cell's type, the
    // same castTo the snapshot-rebuilding path applied), falling back to
    // a full rebuild only if a restore() injected a mismatched cell.
    auto& st = state_[L];
    for (std::size_t i = 0; i < cm_->states.size(); ++i) {
      const auto& sv = cm_->states[i];
      const auto& slot = modelTape_.stateNext[i];
      Value& cell = st[i];
      if (sv.width == 1) {
        if (cell.type() == sv.type && cell.width() == 1) {
          cell.set(0, ex.scalar(slot, lane));
        } else {
          cell = Value(ex.scalar(slot, lane).castTo(sv.type));
        }
      } else {
        // Element reads straight off the payload plane — no vector<Scalar>
        // materialization on the hot path.
        const std::size_t n = ex.arrayLen(slot, lane);
        if (cell.type() == sv.type &&
            cell.width() == static_cast<int>(n)) {
          for (std::size_t j = 0; j < n; ++j) {
            cell.set(static_cast<int>(j), ex.arrayElem(slot, lane, j));
          }
        } else {
          cell = Value(sv.type, ex.array(slot, lane));
        }
      }
    }
    out.next_[L] = st;  // copy-assign: element storage reused after step 1
  }
  std::fill(freshReset_.begin(), freshReset_.end(), 0);
  std::fill(laneClean_.begin(), laneClean_.end(), 1);
}

StepResult recordObservation(const compile::CompiledModel& cm,
                             const StepObservationBatch& obs, int lane,
                             coverage::CoverageTracker& cov) {
  StepResult result;
  for (std::size_t di = 0; di < cm.decisions.size(); ++di) {
    const auto& d = cm.decisions[di];
    const int taken = obs.decisionTaken(lane, di);
    if (taken == -1) continue;
    if (taken == -2) {
      throw SimError("step: no arm of decision '" + d.name +
                     "' satisfied although its activation holds");
    }
    const int newBranch = cov.recordDecision(d.id, taken);
    if (newBranch >= 0) result.newlyCovered.push_back(newBranch);
    if (!d.conditions.empty()) {
      if (cov.recordConditions(d.id, obs.conditionValues(lane, di),
                               obs.conditionCount(di), taken == 0)) {
        result.newConditionObservation = true;
      }
    }
  }
  for (std::size_t oi = 0; oi < cm.objectives.size(); ++oi) {
    const auto& obj = cm.objectives[oi];
    if (cov.objectiveCovered(obj.id)) continue;
    if (obs.objectiveFired(lane, oi)) {
      if (cov.recordObjective(obj.id)) {
        result.newConditionObservation = true;
      }
    }
  }
  return result;
}

}  // namespace stcg::sim
