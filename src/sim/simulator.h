// Discrete-step execution of a compiled model, with state snapshot/restore
// and coverage recording — the "Dynamic Execution" substrate of the paper.
//
// The paper's Model.setState / Model.run API (Algorithm 2) maps to
// restore() / step(). A snapshot is the full linear state vector the paper
// describes (Section IV: state values linearly arranged in memory, mapped
// to model elements by a name/attribute table — here CompiledModel.states).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "compile/compiled_model.h"
#include "compile/model_tape.h"
#include "coverage/coverage.h"
#include "expr/eval.h"
#include "expr/tape.h"
#include "util/rng.h"

namespace stcg::sim {

/// Thrown on simulator misuse that a correct harness can never trigger:
/// input/snapshot vectors whose size disagrees with the compiled model,
/// or a decision whose arms are not exhaustive. Carries the model
/// element and the observed/expected sizes in the message.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// One step's external inputs, aligned with CompiledModel::inputs.
using InputVector = std::vector<expr::Scalar>;

/// The full internal state, aligned with CompiledModel::states.
using StateSnapshot = std::vector<expr::Value>;

/// Order-preserving 64-bit hash of a snapshot's values (type-sensitive:
/// int 1 and real 1.0 hash differently). Equal snapshots hash equal; the
/// state tree keys its node and attempted-goal dedup sets on this.
[[nodiscard]] std::uint64_t snapshotHash(const StateSnapshot& s);

struct StepResult {
  /// Branch ids newly covered during this step (empty without a tracker).
  std::vector<int> newlyCovered;
  /// True if a condition polarity or MCDC vector was observed for the
  /// first time this step.
  bool newConditionObservation = false;
  [[nodiscard]] bool foundNewCoverage() const {
    return !newlyCovered.empty() || newConditionObservation;
  }
  [[nodiscard]] bool foundNewBranch() const { return !newlyCovered.empty(); }
};

/// Which evaluation engine backs step(). kTape (default) executes the
/// model's flattened instruction tape — bit-identical to kTree, which
/// re-walks the expression DAG through the memoizing tree Evaluator and
/// is kept as the semantic oracle for differential tests. kJit compiles
/// the tape to native code via the system C compiler (expr::TapeJit);
/// when the toolchain or loader is unavailable the simulator degrades to
/// kTape and reports why through jitFallbackReason().
enum class EvalEngine { kTape, kTree, kJit };

class Simulator {
 public:
  explicit Simulator(const compile::CompiledModel& cm,
                     EvalEngine engine = EvalEngine::kTape);

  /// Return to the model's initial state.
  void reset();

  [[nodiscard]] const StateSnapshot& state() const { return state_; }
  [[nodiscard]] StateSnapshot snapshot() const { return state_; }

  /// Restore a snapshot taken from this compiled model. Throws SimError
  /// when the snapshot length disagrees with CompiledModel::states.
  void restore(const StateSnapshot& s);

  /// Execute one iteration: evaluate outputs, record coverage into `cov`
  /// (optional), commit next state. Throws SimError when the input
  /// vector length disagrees with CompiledModel::inputs.
  StepResult step(const InputVector& in, coverage::CoverageTracker* cov);

  /// Output values computed by the most recent step.
  [[nodiscard]] const std::vector<expr::Scalar>& lastOutputs() const {
    return lastOutputs_;
  }

  [[nodiscard]] const compile::CompiledModel& compiled() const { return *cm_; }

  /// The engine actually in effect: a kJit request that could not build a
  /// native module reports kTape here.
  [[nodiscard]] EvalEngine engine() const { return engine_; }

  /// Why a requested kJit engine fell back to kTape (empty otherwise).
  [[nodiscard]] const std::string& jitFallbackReason() const {
    return jitFallback_;
  }

 private:
  void bindState(expr::Env& env) const;
  StepResult stepTree(const InputVector& in, coverage::CoverageTracker* cov);
  template <typename Executor>
  StepResult stepWith(Executor& ex, const InputVector& in,
                      coverage::CoverageTracker* cov);

  const compile::CompiledModel* cm_;
  EvalEngine engine_;
  // Tape engine state: the model tape is compiled once per simulator; the
  // executor persists across steps (slots are fully overwritten per run).
  compile::ModelTape modelTape_;
  std::optional<expr::TapeExecutor> exec_;
  std::optional<expr::JitTapeExecutor> jitExec_;
  std::string jitFallback_;
  StateSnapshot state_;
  std::vector<expr::Scalar> lastOutputs_;
};

/// Draw a uniformly random input vector within the declared input domains.
[[nodiscard]] InputVector randomInput(const compile::CompiledModel& cm,
                                      Rng& rng);

/// Render an input vector as "name=value, ..." (for test-case export).
[[nodiscard]] std::string formatInput(const compile::CompiledModel& cm,
                                      const InputVector& in);

}  // namespace stcg::sim
