#include "sim/simulator.h"

#include <cmath>
#include <cstring>

#include "util/strings.h"

namespace stcg::sim {

using expr::Env;
using expr::Evaluator;
using expr::Scalar;
using expr::Type;
using expr::Value;

namespace {

void hashCombine(std::uint64_t& h, std::uint64_t v) {
  // 64-bit variant of boost::hash_combine.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
}

std::uint64_t hashScalar(const Scalar& s) {
  switch (s.type()) {
    case Type::kBool:
      return s.asBool() ? 0x9e3779b9ULL : 0x85ebca6bULL;
    case Type::kInt:
      return static_cast<std::uint64_t>(s.asInt()) * 0xff51afd7ed558ccdULL;
    case Type::kReal: {
      const double d = s.asReal();
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      return bits * 0xc4ceb9fe1a85ec53ULL;
    }
  }
  return 0;
}

}  // namespace

std::uint64_t snapshotHash(const StateSnapshot& s) {
  std::uint64_t h = 0x517cc1b727220a95ULL;
  for (const auto& v : s) {
    for (const auto& e : v.elems()) hashCombine(h, hashScalar(e));
  }
  return h;
}

Simulator::Simulator(const compile::CompiledModel& cm, EvalEngine engine)
    : cm_(&cm), engine_(engine) {
  if (engine_ == EvalEngine::kJit) {
    modelTape_ = compile::buildModelTape(cm, /*wantJit=*/true);
    if (modelTape_.jit != nullptr) {
      jitExec_.emplace(modelTape_.tape, modelTape_.jit);
    } else {
      // Environment failure (no compiler, dlopen unavailable, ...): the
      // interpreted tape is bit-identical, so degrade rather than fail.
      engine_ = EvalEngine::kTape;
      jitFallback_ = modelTape_.jitError;
      exec_.emplace(modelTape_.tape);
    }
  } else if (engine_ == EvalEngine::kTape) {
    modelTape_ = compile::buildModelTape(cm);
    exec_.emplace(modelTape_.tape);
  }
  reset();
}

void Simulator::reset() {
  state_.clear();
  state_.reserve(cm_->states.size());
  for (const auto& s : cm_->states) state_.push_back(s.init);
  lastOutputs_.assign(cm_->outputs.size(), Scalar::i(0));
}

void Simulator::restore(const StateSnapshot& s) {
  // Invariant: snapshots are only valid for the model they were taken
  // from. Enforced by throwing (not assert) so release builds and the
  // lint-driven diagnostics see the same behaviour.
  if (s.size() != cm_->states.size()) {
    throw SimError("restore: snapshot has " + std::to_string(s.size()) +
                   " state(s), model '" + cm_->name + "' expects " +
                   std::to_string(cm_->states.size()));
  }
  state_ = s;
}

void Simulator::bindState(Env& env) const {
  for (std::size_t i = 0; i < cm_->states.size(); ++i) {
    const auto& sv = cm_->states[i];
    if (sv.width == 1) {
      env.set(sv.id, state_[i].scalar());
    } else {
      env.setArray(sv.id, state_[i].elems());
    }
  }
}

StepResult Simulator::step(const InputVector& in,
                           coverage::CoverageTracker* cov) {
  // Invariant: one scalar per declared input, in declaration order.
  if (in.size() != cm_->inputs.size()) {
    throw SimError("step: input vector has " + std::to_string(in.size()) +
                   " value(s), model '" + cm_->name + "' expects " +
                   std::to_string(cm_->inputs.size()));
  }
  switch (engine_) {
    case EvalEngine::kJit: return stepWith(*jitExec_, in, cov);
    case EvalEngine::kTape: return stepWith(*exec_, in, cov);
    case EvalEngine::kTree: break;
  }
  return stepTree(in, cov);
}

StepResult Simulator::stepTree(const InputVector& in,
                               coverage::CoverageTracker* cov) {
  Env env;
  env.reserve(cm_->varCount());
  bindState(env);
  for (std::size_t i = 0; i < cm_->inputs.size(); ++i) {
    env.set(cm_->inputs[i].info.id, in[i].castTo(cm_->inputs[i].info.type));
  }

  Evaluator ev(env);
  StepResult result;

  // Coverage: evaluate every decision whose activation holds.
  if (cov != nullptr) {
    for (const auto& d : cm_->decisions) {
      if (!ev.evalScalar(d.activation).toBool()) continue;
      int taken = -1;
      for (std::size_t a = 0; a < d.armConds.size(); ++a) {
        if (ev.evalScalar(d.armConds[a]).toBool()) {
          taken = static_cast<int>(a);
          break;
        }
      }
      // Arms are exhaustive by construction (the compiler appends a
      // default arm); no arm firing means a malformed compilation.
      if (taken < 0) {
        throw SimError("step: no arm of decision '" + d.name +
                       "' satisfied although its activation holds");
      }
      const int newBranch = cov->recordDecision(d.id, taken);
      if (newBranch >= 0) result.newlyCovered.push_back(newBranch);
      if (!d.conditions.empty()) {
        std::vector<bool> vals;
        vals.reserve(d.conditions.size());
        for (const auto& c : d.conditions) {
          vals.push_back(ev.evalScalar(c).toBool());
        }
        if (cov->recordConditions(d.id, vals, taken == 0)) {
          result.newConditionObservation = true;
        }
      }
    }
  }

  if (cov != nullptr) {
    for (const auto& obj : cm_->objectives) {
      if (cov->objectiveCovered(obj.id)) continue;
      if (ev.evalScalar(obj.activation).toBool() &&
          ev.evalScalar(obj.cond).toBool()) {
        if (cov->recordObjective(obj.id)) {
          result.newConditionObservation = true;
        }
      }
    }
  }

  // Outputs.
  lastOutputs_.clear();
  lastOutputs_.reserve(cm_->outputs.size());
  for (const auto& [name, e] : cm_->outputs) {
    (void)name;
    lastOutputs_.push_back(ev.evalScalar(e));
  }

  // Next state (computed fully before committing).
  StateSnapshot next;
  next.reserve(cm_->states.size());
  for (const auto& sv : cm_->states) {
    if (sv.width == 1) {
      next.emplace_back(ev.evalScalar(sv.next).castTo(sv.type));
    } else {
      next.emplace_back(Value(sv.type, ev.evalArray(sv.next)));
    }
  }
  state_ = std::move(next);
  return result;
}

template <typename Executor>
StepResult Simulator::stepWith(Executor& ex, const InputVector& in,
                               coverage::CoverageTracker* cov) {
  // One linear pass computes every root; the coverage/output/next-state
  // logic below reads slots in exactly the order stepTree evaluates, so
  // recorded coverage and committed values are bit-identical to the tree.
  // Instantiated for the interpreted TapeExecutor and the native
  // JitTapeExecutor — the bind/read surface is identical.
  for (std::size_t i = 0; i < cm_->states.size(); ++i) {
    const auto& sv = cm_->states[i];
    if (sv.width == 1) {
      ex.setVar(sv.id, state_[i].scalar());
    } else {
      ex.setArrayVar(sv.id, state_[i].elems());
    }
  }
  for (std::size_t i = 0; i < cm_->inputs.size(); ++i) {
    // Same coercion chain as the tree path: the env stores
    // in[i].castTo(info.type), and each kVar slot casts to its node type.
    ex.setVar(cm_->inputs[i].info.id,
              in[i].castTo(cm_->inputs[i].info.type));
  }
  ex.run();

  StepResult result;
  if (cov != nullptr) {
    for (std::size_t di = 0; di < cm_->decisions.size(); ++di) {
      const auto& d = cm_->decisions[di];
      if (!ex.scalar(modelTape_.decisionActivations[di]).toBool()) continue;
      int taken = -1;
      const auto& arms = modelTape_.decisionArms[di];
      for (std::size_t a = 0; a < arms.size(); ++a) {
        if (ex.scalar(arms[a]).toBool()) {
          taken = static_cast<int>(a);
          break;
        }
      }
      if (taken < 0) {
        throw SimError("step: no arm of decision '" + d.name +
                       "' satisfied although its activation holds");
      }
      const int newBranch = cov->recordDecision(d.id, taken);
      if (newBranch >= 0) result.newlyCovered.push_back(newBranch);
      if (!d.conditions.empty()) {
        std::vector<bool> vals;
        vals.reserve(d.conditions.size());
        for (const auto& slot : modelTape_.decisionConditions[di]) {
          vals.push_back(ex.scalar(slot).toBool());
        }
        if (cov->recordConditions(d.id, vals, taken == 0)) {
          result.newConditionObservation = true;
        }
      }
    }
    for (std::size_t oi = 0; oi < cm_->objectives.size(); ++oi) {
      const auto& obj = cm_->objectives[oi];
      if (cov->objectiveCovered(obj.id)) continue;
      if (ex.scalar(modelTape_.objectiveActivations[oi]).toBool() &&
          ex.scalar(modelTape_.objectiveConds[oi]).toBool()) {
        if (cov->recordObjective(obj.id)) {
          result.newConditionObservation = true;
        }
      }
    }
  }

  lastOutputs_.clear();
  lastOutputs_.reserve(cm_->outputs.size());
  for (const auto& slot : modelTape_.outputs) {
    lastOutputs_.push_back(ex.scalar(slot));
  }

  StateSnapshot next;
  next.reserve(cm_->states.size());
  for (std::size_t i = 0; i < cm_->states.size(); ++i) {
    const auto& sv = cm_->states[i];
    const auto& slot = modelTape_.stateNext[i];
    if (sv.width == 1) {
      next.emplace_back(ex.scalar(slot).castTo(sv.type));
    } else {
      next.emplace_back(Value(sv.type, ex.array(slot)));
    }
  }
  state_ = std::move(next);
  return result;
}

InputVector randomInput(const compile::CompiledModel& cm, Rng& rng) {
  InputVector out;
  out.reserve(cm.inputs.size());
  for (const auto& in : cm.inputs) {
    const auto& info = in.info;
    switch (info.type) {
      case Type::kBool:
        out.push_back(Scalar::b(rng.chance(0.5)));
        break;
      case Type::kInt:
        out.push_back(Scalar::i(rng.uniformInt(
            static_cast<std::int64_t>(std::ceil(info.lo)),
            static_cast<std::int64_t>(std::floor(info.hi)))));
        break;
      case Type::kReal:
        out.push_back(Scalar::r(rng.uniformReal(info.lo, info.hi)));
        break;
    }
  }
  return out;
}

std::string formatInput(const compile::CompiledModel& cm,
                        const InputVector& in) {
  std::vector<std::string> parts;
  parts.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    parts.push_back(cm.inputs[i].info.name + "=" + in[i].toString());
  }
  return join(parts, ", ");
}

}  // namespace stcg::sim
