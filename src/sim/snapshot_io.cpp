#include "sim/snapshot_io.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>

#include "expr/eval.h"

namespace stcg::sim {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& token) {
  throw expr::EvalError("snapshot_io: " + what +
                        (token.empty() ? std::string()
                                       : " (got '" + token + "')"));
}

std::string nextToken(std::istream& is, const char* what) {
  std::string tok;
  if (!(is >> tok)) fail(std::string("unexpected EOF reading ") + what, "");
  return tok;
}

std::int64_t parseInt(const std::string& text, const char* what) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    fail(std::string("malformed integer for ") + what, text);
  }
  return v;
}

std::size_t parseCount(std::istream& is, const char* what) {
  const std::int64_t n = parseInt(nextToken(is, what), what);
  // An absurd count means a corrupt stream; refuse before reserving.
  if (n < 0 || n > (std::int64_t{1} << 32)) {
    fail(std::string("count out of range for ") + what, std::to_string(n));
  }
  return static_cast<std::size_t>(n);
}

void expectTag(std::istream& is, const char* tag) {
  const std::string tok = nextToken(is, tag);
  if (tok != tag) fail(std::string("expected tag '") + tag + "'", tok);
}

char typeChar(expr::Type t) {
  switch (t) {
    case expr::Type::kBool: return 'b';
    case expr::Type::kInt: return 'i';
    case expr::Type::kReal: return 'r';
  }
  return '?';
}

expr::Type typeFromChar(const std::string& tok) {
  if (tok == "b") return expr::Type::kBool;
  if (tok == "i") return expr::Type::kInt;
  if (tok == "r") return expr::Type::kReal;
  fail("unknown type tag", tok);
}

}  // namespace

void writeScalar(std::ostream& os, const expr::Scalar& s) {
  switch (s.type()) {
    case expr::Type::kBool:
      os << (s.asBool() ? "B1" : "B0");
      return;
    case expr::Type::kInt:
      os << 'I' << s.asInt();
      return;
    case expr::Type::kReal: {
      // %a round-trips every double bit-exactly through strtod, including
      // -0.0, denormals and infinities. NaNs carry their payload in the
      // raw bit pattern instead (snapshotHash hashes real bits, so a
      // payload change across save/load would change the state hash).
      const double r = s.asReal();
      if (r != r) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &r, sizeof bits);
        char buf[32];
        std::snprintf(buf, sizeof buf, "Rn%016llx",
                      static_cast<unsigned long long>(bits));
        os << buf;
        return;
      }
      char buf[64];
      std::snprintf(buf, sizeof buf, "R%a", r);
      os << buf;
      return;
    }
  }
}

expr::Scalar readScalar(std::istream& is) {
  const std::string tok = nextToken(is, "scalar");
  if (tok == "B0") return expr::Scalar::b(false);
  if (tok == "B1") return expr::Scalar::b(true);
  if (tok.size() < 2) fail("truncated scalar token", tok);
  const std::string payload = tok.substr(1);
  if (tok[0] == 'I') {
    return expr::Scalar::i(parseInt(payload, "int scalar"));
  }
  if (tok[0] == 'R') {
    if (payload.size() > 1 && payload[0] == 'n') {
      errno = 0;
      char* end = nullptr;
      const unsigned long long bits =
          std::strtoull(payload.c_str() + 1, &end, 16);
      if (end == payload.c_str() + 1 || *end != '\0' || errno == ERANGE) {
        fail("malformed NaN bits", tok);
      }
      double v = 0;
      const std::uint64_t b = bits;
      std::memcpy(&v, &b, sizeof v);
      if (v == v) fail("NaN token decodes to a non-NaN", tok);
      return expr::Scalar::r(v);
    }
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(payload.c_str(), &end);
    if (end == payload.c_str() || *end != '\0') {
      fail("malformed real scalar", tok);
    }
    return expr::Scalar::r(v);
  }
  fail("unknown scalar tag", tok);
}

void writeValue(std::ostream& os, const expr::Value& v) {
  os << "V " << typeChar(v.type()) << ' ' << v.width();
  for (const auto& e : v.elems()) {
    os << ' ';
    writeScalar(os, e);
  }
}

expr::Value readValue(std::istream& is) {
  expectTag(is, "V");
  const expr::Type t = typeFromChar(nextToken(is, "value type"));
  const std::size_t width = parseCount(is, "value width");
  std::vector<expr::Scalar> elems;
  elems.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    expr::Scalar s = readScalar(is);
    if (s.type() != t) {
      fail("value element type disagrees with value header", s.toString());
    }
    elems.push_back(s);
  }
  return expr::Value(t, std::move(elems));
}

void writeSnapshot(std::ostream& os, const StateSnapshot& s) {
  os << "S " << s.size();
  for (const auto& v : s) {
    os << ' ';
    writeValue(os, v);
  }
}

StateSnapshot readSnapshot(std::istream& is) {
  expectTag(is, "S");
  const std::size_t n = parseCount(is, "snapshot size");
  StateSnapshot s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) s.push_back(readValue(is));
  return s;
}

void writeInputVector(std::ostream& os, const InputVector& in) {
  os << "I " << in.size();
  for (const auto& e : in) {
    os << ' ';
    writeScalar(os, e);
  }
}

InputVector readInputVector(std::istream& is) {
  expectTag(is, "I");
  const std::size_t n = parseCount(is, "input size");
  InputVector in;
  in.reserve(n);
  for (std::size_t i = 0; i < n; ++i) in.push_back(readScalar(is));
  return in;
}

}  // namespace stcg::sim
