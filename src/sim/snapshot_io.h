// Exact text serialization for simulator values: scalars, typed value
// vectors, state snapshots, and input vectors.
//
// The format is token-oriented (whitespace separated), following the
// line/token conventions of model/serialize. Reals are written as C99
// hexfloats ("%a"), so every double — including -0.0, denormals, ±inf and
// NaN payload sign — round-trips bit-exactly; ints are decimal int64;
// bools are B0/B1. This is the codec the campaign checkpoint
// (stcg/checkpoint) builds on: a snapshot that fails to round-trip would
// silently break StateTree dedup across a kill-and-resume, so the readers
// throw expr::EvalError on any malformed token instead of guessing.
#pragma once

#include <iosfwd>

#include "sim/simulator.h"

namespace stcg::sim {

/// Write one scalar as a single token: B0/B1, I<dec> or R<hexfloat>.
void writeScalar(std::ostream& os, const expr::Scalar& s);
/// Read a token written by writeScalar. Throws expr::EvalError on
/// malformed input or EOF.
[[nodiscard]] expr::Scalar readScalar(std::istream& is);

/// Write a typed value as "V <typechar> <width> <elem tokens...>".
void writeValue(std::ostream& os, const expr::Value& v);
[[nodiscard]] expr::Value readValue(std::istream& is);

/// Write a snapshot as "S <count>" followed by its values.
void writeSnapshot(std::ostream& os, const StateSnapshot& s);
[[nodiscard]] StateSnapshot readSnapshot(std::istream& is);

/// Write an input vector as "I <count>" followed by its scalar tokens.
void writeInputVector(std::ostream& os, const InputVector& in);
[[nodiscard]] InputVector readInputVector(std::istream& is);

}  // namespace stcg::sim
