// Shared scalar definitions of every lane-kernel operation.
//
// These inline helpers are the single source of truth for the per-element
// semantics of the SIMD lane kernels (expr/simd.h): the portable scalar
// kernel table is a loop over them, and the AVX2/NEON kernels use them for
// their unaligned tail lanes — so a vector body and its tail can never
// disagree. Real payloads travel as raw 64-bit words (double bit patterns)
// to keep the row views strict-aliasing clean; std::bit_cast converts at
// the edges.
//
// Bit-identity notes (pinned by the dispatch-parity fuzz):
//  - fminOp/fmaxOp are std::fmin/std::fmax — glibc at runtime returns the
//    FIRST operand when the arguments compare equal (fmin(+0.0, -0.0) ==
//    +0.0; do not trust the constant-folded result, which differs), the
//    non-NaN operand when exactly one side is NaN, and the SECOND operand
//    when both are NaN. The vector kernels replicate exactly that
//    selection; tests/test_simd_batch.cpp pins the ±0 and NaN lanes.
//  - divGuard/modGuard implement the engine-wide guarded x/0 == 0.
//  - Integer add/sub/neg wrap in uint64 space (two's complement), which
//    is the defined-behavior spelling of what the interpreter computes.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "expr/expr.h"

namespace stcg::expr::simd_detail {

inline double bd(std::uint64_t u) { return std::bit_cast<double>(u); }
inline std::uint64_t db(double d) { return std::bit_cast<std::uint64_t>(d); }

// ---- real lane ops (payload = double bit pattern) -----------------------

inline std::uint64_t rAddOp(std::uint64_t a, std::uint64_t b) {
  return db(bd(a) + bd(b));
}
inline std::uint64_t rSubOp(std::uint64_t a, std::uint64_t b) {
  return db(bd(a) - bd(b));
}
inline std::uint64_t rMulOp(std::uint64_t a, std::uint64_t b) {
  return db(bd(a) * bd(b));
}
inline std::uint64_t rDivGOp(std::uint64_t a, std::uint64_t b) {
  const double x = bd(a), y = bd(b);
  return db(y == 0.0 ? 0.0 : x / y);
}
inline std::uint64_t rFminOp(std::uint64_t a, std::uint64_t b) {
  return db(std::fmin(bd(a), bd(b)));
}
inline std::uint64_t rFmaxOp(std::uint64_t a, std::uint64_t b) {
  return db(std::fmax(bd(a), bd(b)));
}
inline std::uint64_t rNegOp(std::uint64_t a) { return db(-bd(a)); }
inline std::uint64_t rAbsOp(std::uint64_t a) { return db(std::fabs(bd(a))); }

/// Comparison index shared by the rCmp/dCmp kernel tables.
enum CmpIx { kIxLt = 0, kIxLe, kIxGt, kIxGe, kIxEq, kIxNe, kCmpIxCount };

inline int cmpIndex(Op op) {
  switch (op) {
    case Op::kLt: return kIxLt;
    case Op::kLe: return kIxLe;
    case Op::kGt: return kIxGt;
    case Op::kGe: return kIxGe;
    case Op::kEq: return kIxEq;
    default: return kIxNe;  // kNe
  }
}

template <int Ix>
inline std::uint64_t rCmpOp(std::uint64_t a, std::uint64_t b) {
  const double x = bd(a), y = bd(b);
  if constexpr (Ix == kIxLt) return x < y ? 1 : 0;
  if constexpr (Ix == kIxLe) return x <= y ? 1 : 0;
  if constexpr (Ix == kIxGt) return x > y ? 1 : 0;
  if constexpr (Ix == kIxGe) return x >= y ? 1 : 0;
  if constexpr (Ix == kIxEq) return x == y ? 1 : 0;
  return x != y ? 1 : 0;
}

// ---- int64 lane ops (payload = two's complement) ------------------------

inline std::uint64_t iAddOp(std::uint64_t a, std::uint64_t b) { return a + b; }
inline std::uint64_t iSubOp(std::uint64_t a, std::uint64_t b) { return a - b; }
inline std::uint64_t iNegOp(std::uint64_t a) { return std::uint64_t{0} - a; }
inline std::uint64_t iAbsOp(std::uint64_t a) {
  return static_cast<std::int64_t>(a) < 0 ? std::uint64_t{0} - a : a;
}
inline std::uint64_t iMinOp(std::uint64_t a, std::uint64_t b) {
  // std::min: returns a when equal.
  return static_cast<std::int64_t>(b) < static_cast<std::int64_t>(a) ? b : a;
}
inline std::uint64_t iMaxOp(std::uint64_t a, std::uint64_t b) {
  // std::max: returns a when equal.
  return static_cast<std::int64_t>(b) > static_cast<std::int64_t>(a) ? b : a;
}

// ---- bool lane ops (payload = 0/1) --------------------------------------

inline std::uint64_t bAndOp(std::uint64_t a, std::uint64_t b) { return a & b; }
inline std::uint64_t bOrOp(std::uint64_t a, std::uint64_t b) { return a | b; }
inline std::uint64_t bXorOp(std::uint64_t a, std::uint64_t b) { return a ^ b; }
inline std::uint64_t bNotOp(std::uint64_t a) { return a ^ 1; }

// ---- distance-overlay ops (double rows, solver::DistanceProgram) --------

inline constexpr double kDistEps = 1e-6;  // branchDistance's atom epsilon

inline double dSumOp(double a, double b) { return a + b; }
inline double dMinOp(double a, double b) { return b < a ? b : a; }  // std::min

/// The six Korel/Tracey distance forms over x (= l - r or r - l depending
/// on the comparison), exactly as solver's overlayStep computes them.
/// The negated forms are spelled `kDistEps - x` (identical to `-x + eps`
/// for every non-NaN x, and the spelling compilers produce for either):
/// subtraction propagates a NaN x with its sign bit untouched, where an
/// explicit negate-then-add would flip it — the vector kernels subtract
/// the same way, keeping NaN distances bit-identical across levels.
template <int Form>
inline double dFormOp(double x) {
  if constexpr (Form == 0) return std::fabs(x);               // Eq want / Ne !want
  if constexpr (Form == 1) return std::fabs(x) == 0.0 ? 1.0 : 0.0;
  if constexpr (Form == 2) return x < 0.0 ? 0.0 : x + kDistEps;       // Lt/Gt want
  if constexpr (Form == 3) return x >= 0.0 ? 0.0 : kDistEps - x;      // Lt/Gt !want
  if constexpr (Form == 4) return x <= 0.0 ? 0.0 : x;                 // Le/Ge want
  return x > 0.0 ? 0.0 : kDistEps - x;                                // Le/Ge !want
}

inline double dTruthOp(std::uint64_t t, std::uint64_t want) {
  return t == want ? 0.0 : 1.0;
}

}  // namespace stcg::expr::simd_detail
