#include "expr/simd.h"

#include <cstdio>

#include "expr/simd_ops.h"
#include "util/env.h"

namespace stcg::expr {

namespace simd_detail {

// Defined in simd_avx2.cpp / simd_neon.cpp; null when the build target
// lacks the architecture.
const LaneKernels* avx2KernelsOrNull();
const LaneKernels* neonKernelsOrNull();

namespace {

// ---- portable scalar kernel table (the reference implementation) --------

template <std::uint64_t (*ElemOp)(std::uint64_t, std::uint64_t)>
void u64BinLoop(std::uint64_t* dst, const std::uint64_t* a,
                const std::uint64_t* b, int n) {
  for (int i = 0; i < n; ++i) dst[i] = ElemOp(a[i], b[i]);
}

template <std::uint64_t (*ElemOp)(std::uint64_t)>
void u64UnLoop(std::uint64_t* dst, const std::uint64_t* a, int n) {
  for (int i = 0; i < n; ++i) dst[i] = ElemOp(a[i]);
}

void sel64Loop(std::uint64_t* dst, const std::uint64_t* c,
               const std::uint64_t* a, const std::uint64_t* b, int n) {
  for (int i = 0; i < n; ++i) dst[i] = c[i] != 0 ? a[i] : b[i];
}

void dSumLoop(double* dst, const double* a, const double* b, int n) {
  for (int i = 0; i < n; ++i) dst[i] = dSumOp(a[i], b[i]);
}

void dMinLoop(double* dst, const double* a, const double* b, int n) {
  for (int i = 0; i < n; ++i) dst[i] = dMinOp(a[i], b[i]);
}

/// One dCmp kernel: Form applied to a[i] - b[i] or b[i] - a[i].
template <int Form, bool Swap>
void dCmpLoop(double* dst, const double* a, const double* b, int n) {
  for (int i = 0; i < n; ++i) {
    dst[i] = dFormOp<Form>(Swap ? b[i] - a[i] : a[i] - b[i]);
  }
}

void dTruthLoop(double* dst, const std::uint64_t* truth, std::uint64_t want,
                int n) {
  for (int i = 0; i < n; ++i) dst[i] = dTruthOp(truth[i], want);
}

constexpr LaneKernels makeScalarKernels() {
  LaneKernels k{};
  k.rAdd = u64BinLoop<rAddOp>;
  k.rSub = u64BinLoop<rSubOp>;
  k.rMul = u64BinLoop<rMulOp>;
  k.rDivG = u64BinLoop<rDivGOp>;
  k.rFmin = u64BinLoop<rFminOp>;
  k.rFmax = u64BinLoop<rFmaxOp>;
  k.rNeg = u64UnLoop<rNegOp>;
  k.rAbs = u64UnLoop<rAbsOp>;
  k.rCmp[kIxLt] = u64BinLoop<rCmpOp<kIxLt>>;
  k.rCmp[kIxLe] = u64BinLoop<rCmpOp<kIxLe>>;
  k.rCmp[kIxGt] = u64BinLoop<rCmpOp<kIxGt>>;
  k.rCmp[kIxGe] = u64BinLoop<rCmpOp<kIxGe>>;
  k.rCmp[kIxEq] = u64BinLoop<rCmpOp<kIxEq>>;
  k.rCmp[kIxNe] = u64BinLoop<rCmpOp<kIxNe>>;
  k.iAdd = u64BinLoop<iAddOp>;
  k.iSub = u64BinLoop<iSubOp>;
  k.iMin = u64BinLoop<iMinOp>;
  k.iMax = u64BinLoop<iMaxOp>;
  k.iNeg = u64UnLoop<iNegOp>;
  k.iAbs = u64UnLoop<iAbsOp>;
  k.bAnd = u64BinLoop<bAndOp>;
  k.bOr = u64BinLoop<bOrOp>;
  k.bXor = u64BinLoop<bXorOp>;
  k.bNot = u64UnLoop<bNotOp>;
  k.sel64 = sel64Loop;
  k.dSum = dSumLoop;
  k.dMin = dMinLoop;
  // [CmpIx][want]: Eq want / Ne !want share Form0; Eq !want / Ne want
  // Form1; Lt/Le use x = a-b, Gt/Ge the swapped difference.
  k.dCmp[kIxEq][1] = dCmpLoop<0, false>;
  k.dCmp[kIxEq][0] = dCmpLoop<1, false>;
  k.dCmp[kIxNe][1] = dCmpLoop<1, false>;
  k.dCmp[kIxNe][0] = dCmpLoop<0, false>;
  k.dCmp[kIxLt][1] = dCmpLoop<2, false>;
  k.dCmp[kIxLt][0] = dCmpLoop<3, false>;
  k.dCmp[kIxLe][1] = dCmpLoop<4, false>;
  k.dCmp[kIxLe][0] = dCmpLoop<5, false>;
  k.dCmp[kIxGt][1] = dCmpLoop<2, true>;
  k.dCmp[kIxGt][0] = dCmpLoop<3, true>;
  k.dCmp[kIxGe][1] = dCmpLoop<4, true>;
  k.dCmp[kIxGe][0] = dCmpLoop<5, true>;
  k.dTruth = dTruthLoop;
  return k;
}

const LaneKernels kScalarKernels = makeScalarKernels();

std::optional<SimdLevel>& forcedLevel() {
  static std::optional<SimdLevel> lvl;
  return lvl;
}

}  // namespace

}  // namespace simd_detail

const char* simdLevelName(SimdLevel lvl) {
  switch (lvl) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kNeon: return "neon";
  }
  return "scalar";
}

SimdLevel detectedSimdLevel() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") ? SimdLevel::kAvx2
                                        : SimdLevel::kScalar;
#elif defined(__aarch64__)
  return SimdLevel::kNeon;
#else
  return SimdLevel::kScalar;
#endif
}

bool simdLevelAvailable(SimdLevel lvl) {
  switch (lvl) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
      return simd_detail::avx2KernelsOrNull() != nullptr &&
             detectedSimdLevel() == SimdLevel::kAvx2;
    case SimdLevel::kNeon:
      return simd_detail::neonKernelsOrNull() != nullptr;
  }
  return false;
}

SimdLevel activeSimdLevel() {
  if (simd_detail::forcedLevel()) return *simd_detail::forcedLevel();
  static const SimdLevel lvl = [] {
    const int ix = util::envEnum(
        "STCG_SIMD", {"0", "scalar", "avx2", "neon", "1", "auto"});
    SimdLevel want = detectedSimdLevel();
    switch (ix) {
      case 0:
      case 1:
        return SimdLevel::kScalar;
      case 2:
        want = SimdLevel::kAvx2;
        break;
      case 3:
        want = SimdLevel::kNeon;
        break;
      default:  // unset, unrecognized (diagnosed by envEnum), 1, auto
        return want;
    }
    if (!simdLevelAvailable(want)) {
      std::fprintf(stderr,
                   "stcg: STCG_SIMD requests %s but this CPU/build lacks it; "
                   "using %s\n",
                   simdLevelName(want), simdLevelName(detectedSimdLevel()));
      return detectedSimdLevel();
    }
    return want;
  }();
  return lvl;
}

void forceSimdLevel(std::optional<SimdLevel> lvl) {
  simd_detail::forcedLevel() = lvl;
}

const LaneKernels& laneKernelsFor(SimdLevel lvl) {
  switch (lvl) {
    case SimdLevel::kAvx2:
      if (const LaneKernels* k = simd_detail::avx2KernelsOrNull()) return *k;
      break;
    case SimdLevel::kNeon:
      if (const LaneKernels* k = simd_detail::neonKernelsOrNull()) return *k;
      break;
    case SimdLevel::kScalar:
      break;
  }
  return simd_detail::kScalarKernels;
}

const LaneKernels& laneKernels() { return laneKernelsFor(activeSimdLevel()); }

}  // namespace stcg::expr
