// Runtime-dispatched SIMD lane kernels for the batch engines.
//
// The B-wide executors (expr::BatchTapeExecutor, solver::BatchDistanceTape)
// spend their time in per-lane loops over structure-of-arrays rows. This
// module provides those loops as a function-pointer kernel table
// (LaneKernels) with three implementations:
//   - scalar: portable loops over the simd_ops.h helpers (the reference),
//   - avx2:   hand-written AVX2 intrinsics (x86-64, runtime-detected via
//             cpuid), compiled in a TU with -ffp-contract=off so GCC can
//             never contract mul+add into an FMA the scalar path lacks,
//   - neon:   AArch64 NEON (baseline on that architecture).
// All three are bit-identical per lane: the guarded kDiv zero semantics,
// glibc's fmin/fmax operand order, NaN/±0/±inf propagation and the
// Korel/Tracey kCmp distance forms are replicated operand-for-operand
// (tests/test_simd_batch.cpp fuzzes the equivalence; tails of the vector
// kernels share the exact scalar helpers).
//
// Payload convention: rows are raw 64-bit words — double bit patterns for
// real lanes, two's complement for int lanes, 0/1 for bool lanes —
// matching BatchTapeExecutor's SoA payload storage, so kernels can run
// directly on value rows without strict-aliasing games. The distance
// overlay's d* kernels work on genuine double rows.
//
// Selection: activeSimdLevel() is the detected level unless overridden by
// STCG_SIMD (0|scalar -> scalar, avx2, neon, 1|auto -> detected); an
// override naming an unavailable level falls back to the detected one with
// a diagnostic. forceSimdLevel() overrides both for tests. Executors
// capture a table at construction, so forcing a level then constructing an
// executor pins its path.
#pragma once

#include <cstdint>
#include <optional>

namespace stcg::expr {

enum class SimdLevel { kScalar, kAvx2, kNeon };

[[nodiscard]] const char* simdLevelName(SimdLevel lvl);

/// Best level this CPU + build supports (cpuid-style detection; kScalar
/// when no vector unit is usable).
[[nodiscard]] SimdLevel detectedSimdLevel();

/// Whether kernels for `lvl` exist in this build and run on this CPU.
[[nodiscard]] bool simdLevelAvailable(SimdLevel lvl);

/// detectedSimdLevel() filtered through the STCG_SIMD override (cached) and
/// the forceSimdLevel() test hook.
[[nodiscard]] SimdLevel activeSimdLevel();

/// Test hook: pin activeSimdLevel() to `lvl` (nullopt restores the
/// environment-driven behavior). An unavailable pinned level resolves to
/// scalar kernels at laneKernels() time.
void forceSimdLevel(std::optional<SimdLevel> lvl);

/// One implementation of every hot lane loop. `n` is the lane count; rows
/// may overlap only exactly (dst == a or dst == b), which every kernel
/// supports (element i depends only on element i of each operand).
struct LaneKernels {
  using U64Bin = void (*)(std::uint64_t* dst, const std::uint64_t* a,
                          const std::uint64_t* b, int n);
  using U64Un = void (*)(std::uint64_t* dst, const std::uint64_t* a, int n);
  using DBin = void (*)(double* dst, const double* a, const double* b, int n);

  // Real rows (double bit patterns).
  U64Bin rAdd, rSub, rMul, rDivG, rFmin, rFmax;
  U64Un rNeg, rAbs;
  U64Bin rCmp[6];  // simd_detail::CmpIx order; results are 0/1 rows

  // Int rows (two's complement; add/sub/neg wrap).
  U64Bin iAdd, iSub, iMin, iMax;
  U64Un iNeg, iAbs;

  // Bool rows (0/1).
  U64Bin bAnd, bOr, bXor;
  U64Un bNot;

  // dst[i] = c[i] != 0 ? a[i] : b[i], raw payload select.
  void (*sel64)(std::uint64_t* dst, const std::uint64_t* c,
                const std::uint64_t* a, const std::uint64_t* b, int n);

  // Distance-overlay rows (genuine doubles).
  DBin dSum, dMin;
  DBin dCmp[6][2];  // [CmpIx][want]
  void (*dTruth)(double* dst, const std::uint64_t* truth, std::uint64_t want,
                 int n);
};

/// Kernel table for activeSimdLevel().
[[nodiscard]] const LaneKernels& laneKernels();

/// Kernel table for a specific level; unavailable levels get the scalar
/// table.
[[nodiscard]] const LaneKernels& laneKernelsFor(SimdLevel lvl);

}  // namespace stcg::expr
