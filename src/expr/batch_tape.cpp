#include "expr/batch_tape.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "expr/builder.h"

namespace stcg::expr {

namespace {

inline std::uint64_t realBits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

inline double bitsReal(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

/// Exactly Scalar::toInt for a real payload (saturating, non-finite -> 0).
inline std::int64_t realToInt(double r) { return saturatingRealToInt(r); }

inline std::uint64_t bitsOf(const Scalar& s) {
  switch (s.type()) {
    case Type::kBool:
      return s.asBool() ? 1 : 0;
    case Type::kInt:
      return static_cast<std::uint64_t>(s.asInt());
    case Type::kReal:
      return realBits(s.asReal());
  }
  return 0;
}

}  // namespace

BatchTapeExecutor::BatchTapeExecutor(std::shared_ptr<const Tape> tape,
                                     int lanes)
    : tape_(std::move(tape)), lanes_(lanes < 1 ? 1 : lanes) {
  const std::size_t ns = tape_->scalarSlotCount();
  const std::size_t na = tape_->arraySlotCount();
  const auto B = static_cast<std::size_t>(lanes_);

  // Static slot typing. Every scalar slot's payload type is known at
  // compile time except kSelect results over arrays whose element type
  // isn't statically uniform — only var-bound arrays qualify (setArrayVar
  // keeps elements uncast); const arrays are element-cast by the builder
  // and kStore/array-kIte results preserve uniformity, so selects over
  // them stay statically typed and don't poison their downstream cone
  // into the generic path.
  slotType_.assign(ns, Type::kInt);
  slotDynamic_.assign(ns, 0);
  for (const std::int32_t s : tape_->constScalarSlots()) {
    slotType_[static_cast<std::size_t>(s)] =
        tape_->scalarInit()[static_cast<std::size_t>(s)].type();
  }
  for (const auto& b : tape_->varBindings()) {
    slotType_[static_cast<std::size_t>(b.slot)] = b.type;
  }

  // Per array slot: statically uniform element type, if any. Computed in
  // the same forward pass as the scalar types (the tape is topologically
  // ordered SSA, so operands are classified before their consumers).
  std::vector<std::uint8_t> arrStatic(na, 0);
  std::vector<Type> arrType(na, Type::kInt);
  for (const std::int32_t s : tape_->constArraySlots()) {
    const auto& init = tape_->arrayInit()[static_cast<std::size_t>(s)];
    if (init.empty()) continue;
    bool uniform = true;
    for (const Scalar& e : init) uniform &= e.type() == init[0].type();
    if (uniform) {
      arrStatic[static_cast<std::size_t>(s)] = 1;
      arrType[static_cast<std::size_t>(s)] = init[0].type();
    }
  }

  const auto& code = tape_->code();
  kind_.reserve(code.size());
  const auto dyn = [&](std::int32_t s) {
    return slotDynamic_[static_cast<std::size_t>(s)] != 0;
  };
  for (const TapeInstr& in : code) {
    if (in.arrayResult) {
      const auto dst = static_cast<std::size_t>(in.dst);
      if (in.op == Op::kStore) {
        // Elements: the source array's plus one value cast to in.type.
        const auto src = static_cast<std::size_t>(in.a);
        arrStatic[dst] = arrStatic[src] != 0 && arrType[src] == in.type;
        arrType[dst] = in.type;
      } else {  // array kIte
        const auto tb = static_cast<std::size_t>(in.b);
        const auto fc = static_cast<std::size_t>(in.c);
        arrStatic[dst] = arrStatic[tb] != 0 && arrStatic[fc] != 0 &&
                         arrType[tb] == arrType[fc];
        arrType[dst] = arrType[tb];
      }
    } else {
      auto& t = slotType_[static_cast<std::size_t>(in.dst)];
      switch (in.op) {
        case Op::kNot:
          t = Type::kBool;  // applyUnary returns Scalar::b, uncast
          break;
        case Op::kNeg:
        case Op::kAbs:
          // applyUnary returns Scalar::i even over kBool input.
          t = in.type == Type::kReal ? Type::kReal : Type::kInt;
          break;
        case Op::kSelect:
          if (arrStatic[static_cast<std::size_t>(in.a)] != 0) {
            t = arrType[static_cast<std::size_t>(in.a)];
          } else {
            slotDynamic_[static_cast<std::size_t>(in.dst)] = 1;
            t = in.type;  // unused while dynamic; keep something sane
          }
          break;
        default:
          // kCast, scalar kIte and every binary cast to the node type.
          t = in.type;
          break;
      }
    }
    Kind k = Kind::kGeneric;
    if (!in.arrayResult && in.op != Op::kSelect && in.op != Op::kStore) {
      switch (in.op) {
        case Op::kNot:
        case Op::kNeg:
        case Op::kAbs:
        case Op::kCast:
          if (!dyn(in.a)) k = Kind::kUnary;
          break;
        case Op::kIte:
          if (!dyn(in.a) && !dyn(in.b) && !dyn(in.c)) k = Kind::kIteScalar;
          break;
        default:
          if (!dyn(in.a) && !dyn(in.b)) k = Kind::kBinary;
          break;
      }
    }
    kind_.push_back(k);
  }

  // Lane images. Payload types start at the static slot type so typed
  // kernels and the generic path agree on every slot's representation;
  // non-const slots hold zero until bound/computed (the tape is
  // topologically ordered and run() refuses unbound variables, so those
  // zeros are never observed).
  vals_.assign(ns * B, 0);
  types_.assign(ns * B, Type::kInt);
  const auto& sinit = tape_->scalarInit();
  for (std::size_t s = 0; s < ns; ++s) {
    const std::uint64_t bits =
        bitsOf(sinit[s].castTo(slotType_[s]));  // consts: identity cast
    for (std::size_t l = 0; l < B; ++l) {
      vals_[s * B + l] = bits;
      types_[s * B + l] = slotType_[s];
    }
  }
  arrays_.resize(na * B);
  const auto& ainit = tape_->arrayInit();
  for (std::size_t s = 0; s < na; ++s) {
    for (std::size_t l = 0; l < B; ++l) arrays_[s * B + l] = ainit[s];
  }

  varBound_.assign(tape_->varBindings().size() * B, false);
  arrayBound_.assign(tape_->arrayBindings().size() * B, false);

  ra_.resize(B);
  rb_.resize(B);
  ia_.resize(B);
  ib_.resize(B);
  ba_.resize(B);
  bb_.resize(B);
  bc_.resize(B);
}

void BatchTapeExecutor::setVar(int lane, VarId id, const Scalar& v) {
  const auto& bindings = tape_->varBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeVarBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    // Same coercion as TapeExecutor::setVar; the payload type stays the
    // binding type the slot was initialized with.
    vals_[idx(it->slot, lane)] = bitsOf(v.castTo(it->type));
    varBound_[static_cast<std::size_t>(it - bindings.begin()) *
                  static_cast<std::size_t>(lanes_) +
              static_cast<std::size_t>(lane)] = true;
  }
}

void BatchTapeExecutor::setVarReal(int lane, VarId id, double v) {
  const auto& bindings = tape_->varBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeVarBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    // Payload of Scalar::r(v).castTo(it->type), computed directly.
    std::uint64_t bits = 0;
    switch (it->type) {
      case Type::kReal: bits = realBits(v); break;
      case Type::kInt: bits = static_cast<std::uint64_t>(realToInt(v)); break;
      case Type::kBool: bits = v != 0.0 ? 1 : 0; break;
    }
    vals_[idx(it->slot, lane)] = bits;
    varBound_[static_cast<std::size_t>(it - bindings.begin()) *
                  static_cast<std::size_t>(lanes_) +
              static_cast<std::size_t>(lane)] = true;
  }
}

void BatchTapeExecutor::setVarInt(int lane, VarId id, std::int64_t v) {
  const auto& bindings = tape_->varBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeVarBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    std::uint64_t bits = 0;
    switch (it->type) {
      case Type::kInt: bits = static_cast<std::uint64_t>(v); break;
      case Type::kReal: bits = realBits(static_cast<double>(v)); break;
      case Type::kBool: bits = v != 0 ? 1 : 0; break;
    }
    vals_[idx(it->slot, lane)] = bits;
    varBound_[static_cast<std::size_t>(it - bindings.begin()) *
                  static_cast<std::size_t>(lanes_) +
              static_cast<std::size_t>(lane)] = true;
  }
}

void BatchTapeExecutor::setVarBool(int lane, VarId id, bool v) {
  const auto& bindings = tape_->varBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeVarBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    std::uint64_t bits = 0;
    switch (it->type) {
      case Type::kBool:
      case Type::kInt: bits = v ? 1 : 0; break;
      case Type::kReal: bits = realBits(v ? 1.0 : 0.0); break;
    }
    vals_[idx(it->slot, lane)] = bits;
    varBound_[static_cast<std::size_t>(it - bindings.begin()) *
                  static_cast<std::size_t>(lanes_) +
              static_cast<std::size_t>(lane)] = true;
  }
}

void BatchTapeExecutor::setArrayVar(int lane, VarId id,
                                    const std::vector<Scalar>& v) {
  const auto& bindings = tape_->arrayBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeArrayBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    arrays_[idx(it->slot, lane)] = v;
    arrayBound_[static_cast<std::size_t>(it - bindings.begin()) *
                    static_cast<std::size_t>(lanes_) +
                static_cast<std::size_t>(lane)] = true;
  }
}

void BatchTapeExecutor::bindEnv(int lane, const Env& env) {
  for (const auto& b : tape_->varBindings()) {
    if (env.has(b.var)) setVar(lane, b.var, env.get(b.var));
  }
  for (const auto& b : tape_->arrayBindings()) {
    if (env.hasArray(b.var)) setArrayVar(lane, b.var, env.getArray(b.var));
  }
}

void BatchTapeExecutor::requireAllBound() {
  if (checkedBound_) return;
  const auto B = static_cast<std::size_t>(lanes_);
  const auto& vb = tape_->varBindings();
  for (std::size_t i = 0; i < vb.size(); ++i) {
    for (std::size_t l = 0; l < B; ++l) {
      if (!varBound_[i * B + l]) {
        throw EvalError("unbound variable '" + vb[i].name + "' (id " +
                        std::to_string(vb[i].var) + ") in lane " +
                        std::to_string(l) + " during batch tape execution");
      }
    }
  }
  const auto& ab = tape_->arrayBindings();
  for (std::size_t i = 0; i < ab.size(); ++i) {
    for (std::size_t l = 0; l < B; ++l) {
      if (!arrayBound_[i * B + l]) {
        throw EvalError("unbound array variable '" + ab[i].name + "' (id " +
                        std::to_string(ab[i].var) + ") in lane " +
                        std::to_string(l) + " during batch tape execution");
      }
    }
  }
  checkedBound_ = true;
}

Scalar BatchTapeExecutor::loadScalar(std::int32_t slot, int lane) const {
  const std::size_t k = idx(slot, lane);
  switch (types_[k]) {
    case Type::kBool:
      return Scalar::b(vals_[k] != 0);
    case Type::kInt:
      return Scalar::i(static_cast<std::int64_t>(vals_[k]));
    case Type::kReal:
      return Scalar::r(bitsReal(vals_[k]));
  }
  return Scalar();
}

void BatchTapeExecutor::storeScalar(std::int32_t slot, int lane,
                                    const Scalar& s) {
  const std::size_t k = idx(slot, lane);
  vals_[k] = bitsOf(s);
  types_[k] = s.type();
}

void BatchTapeExecutor::loadReal(std::int32_t slot, double* out) const {
  const std::uint64_t* v = &vals_[idx(slot, 0)];
  const int B = lanes_;
  switch (slotType_[static_cast<std::size_t>(slot)]) {
    case Type::kBool:
      for (int l = 0; l < B; ++l) out[l] = static_cast<double>(v[l]);
      break;
    case Type::kInt:
      for (int l = 0; l < B; ++l) {
        out[l] = static_cast<double>(static_cast<std::int64_t>(v[l]));
      }
      break;
    case Type::kReal:
      for (int l = 0; l < B; ++l) out[l] = bitsReal(v[l]);
      break;
  }
}

void BatchTapeExecutor::loadInt(std::int32_t slot, std::int64_t* out) const {
  const std::uint64_t* v = &vals_[idx(slot, 0)];
  const int B = lanes_;
  switch (slotType_[static_cast<std::size_t>(slot)]) {
    case Type::kBool:
    case Type::kInt:
      for (int l = 0; l < B; ++l) out[l] = static_cast<std::int64_t>(v[l]);
      break;
    case Type::kReal:
      for (int l = 0; l < B; ++l) out[l] = realToInt(bitsReal(v[l]));
      break;
  }
}

void BatchTapeExecutor::loadBool(std::int32_t slot, std::uint64_t* out) const {
  const std::uint64_t* v = &vals_[idx(slot, 0)];
  const int B = lanes_;
  switch (slotType_[static_cast<std::size_t>(slot)]) {
    case Type::kBool:
      for (int l = 0; l < B; ++l) out[l] = v[l];
      break;
    case Type::kInt:
      for (int l = 0; l < B; ++l) out[l] = v[l] != 0 ? 1 : 0;
      break;
    case Type::kReal:
      // Compare as double, not bits: -0.0 is false.
      for (int l = 0; l < B; ++l) out[l] = bitsReal(v[l]) != 0.0 ? 1 : 0;
      break;
  }
}

void BatchTapeExecutor::storeRealAs(std::int32_t dst, Type dstType,
                                    const double* in) {
  std::uint64_t* out = &vals_[idx(dst, 0)];
  const int B = lanes_;
  switch (dstType) {
    case Type::kReal:
      for (int l = 0; l < B; ++l) out[l] = realBits(in[l]);
      break;
    case Type::kInt:
      for (int l = 0; l < B; ++l) {
        out[l] = static_cast<std::uint64_t>(realToInt(in[l]));
      }
      break;
    case Type::kBool:
      for (int l = 0; l < B; ++l) out[l] = in[l] != 0.0 ? 1 : 0;
      break;
  }
}

void BatchTapeExecutor::storeIntAs(std::int32_t dst, Type dstType,
                                   const std::int64_t* in) {
  std::uint64_t* out = &vals_[idx(dst, 0)];
  const int B = lanes_;
  switch (dstType) {
    case Type::kInt:
      for (int l = 0; l < B; ++l) out[l] = static_cast<std::uint64_t>(in[l]);
      break;
    case Type::kReal:
      for (int l = 0; l < B; ++l) {
        out[l] = realBits(static_cast<double>(in[l]));
      }
      break;
    case Type::kBool:
      for (int l = 0; l < B; ++l) out[l] = in[l] != 0 ? 1 : 0;
      break;
  }
}

void BatchTapeExecutor::storeBoolAs(std::int32_t dst, Type dstType,
                                    const std::uint64_t* in) {
  std::uint64_t* out = &vals_[idx(dst, 0)];
  const int B = lanes_;
  switch (dstType) {
    case Type::kBool:
    case Type::kInt:
      for (int l = 0; l < B; ++l) out[l] = in[l];
      break;
    case Type::kReal:
      for (int l = 0; l < B; ++l) {
        out[l] = realBits(static_cast<double>(in[l]));
      }
      break;
  }
}

void BatchTapeExecutor::execUnary(const TapeInstr& in) {
  const int B = lanes_;
  switch (in.op) {
    case Op::kNot:
      loadBool(in.a, ba_.data());
      for (int l = 0; l < B; ++l) ba_[static_cast<std::size_t>(l)] ^= 1;
      storeBoolAs(in.dst, Type::kBool, ba_.data());
      break;
    case Op::kNeg:
      if (in.type == Type::kReal) {
        loadReal(in.a, ra_.data());
        for (int l = 0; l < B; ++l) {
          ra_[static_cast<std::size_t>(l)] = -ra_[static_cast<std::size_t>(l)];
        }
        storeRealAs(in.dst, Type::kReal, ra_.data());
      } else {
        loadInt(in.a, ia_.data());
        for (int l = 0; l < B; ++l) {
          ia_[static_cast<std::size_t>(l)] = -ia_[static_cast<std::size_t>(l)];
        }
        storeIntAs(in.dst, Type::kInt, ia_.data());
      }
      break;
    case Op::kAbs:
      if (in.type == Type::kReal) {
        loadReal(in.a, ra_.data());
        for (int l = 0; l < B; ++l) {
          ra_[static_cast<std::size_t>(l)] =
              std::fabs(ra_[static_cast<std::size_t>(l)]);
        }
        storeRealAs(in.dst, Type::kReal, ra_.data());
      } else {
        loadInt(in.a, ia_.data());
        for (int l = 0; l < B; ++l) {
          auto& x = ia_[static_cast<std::size_t>(l)];
          x = x < 0 ? -x : x;
        }
        storeIntAs(in.dst, Type::kInt, ia_.data());
      }
      break;
    default:  // kCast
      switch (in.type) {
        case Type::kReal:
          loadReal(in.a, ra_.data());
          storeRealAs(in.dst, Type::kReal, ra_.data());
          break;
        case Type::kInt:
          loadInt(in.a, ia_.data());
          storeIntAs(in.dst, Type::kInt, ia_.data());
          break;
        case Type::kBool:
          loadBool(in.a, ba_.data());
          storeBoolAs(in.dst, Type::kBool, ba_.data());
          break;
      }
      break;
  }
}

void BatchTapeExecutor::execBinary(const TapeInstr& in) {
  const int B = lanes_;
  switch (in.op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMin:
    case Op::kMax: {
      const Type ta = slotType_[static_cast<std::size_t>(in.a)];
      const Type tb = slotType_[static_cast<std::size_t>(in.b)];
      const Type nt = promote(ta == Type::kBool ? Type::kInt : ta,
                              tb == Type::kBool ? Type::kInt : tb);
      if (nt == Type::kReal) {
        loadReal(in.a, ra_.data());
        loadReal(in.b, rb_.data());
        double* a = ra_.data();
        const double* b = rb_.data();
        switch (in.op) {
          case Op::kAdd:
            for (int l = 0; l < B; ++l) a[l] += b[l];
            break;
          case Op::kSub:
            for (int l = 0; l < B; ++l) a[l] -= b[l];
            break;
          case Op::kMul:
            for (int l = 0; l < B; ++l) a[l] *= b[l];
            break;
          case Op::kDiv:
            for (int l = 0; l < B; ++l) {
              a[l] = b[l] == 0.0 ? 0.0 : a[l] / b[l];
            }
            break;
          case Op::kMin:
            for (int l = 0; l < B; ++l) a[l] = std::fmin(a[l], b[l]);
            break;
          default:
            for (int l = 0; l < B; ++l) a[l] = std::fmax(a[l], b[l]);
            break;
        }
        storeRealAs(in.dst, in.type, a);
      } else {
        loadInt(in.a, ia_.data());
        loadInt(in.b, ib_.data());
        std::int64_t* a = ia_.data();
        const std::int64_t* b = ib_.data();
        switch (in.op) {
          case Op::kAdd:
            for (int l = 0; l < B; ++l) a[l] += b[l];
            break;
          case Op::kSub:
            for (int l = 0; l < B; ++l) a[l] -= b[l];
            break;
          case Op::kMul:
            for (int l = 0; l < B; ++l) a[l] *= b[l];
            break;
          case Op::kDiv:
            for (int l = 0; l < B; ++l) a[l] = b[l] == 0 ? 0 : a[l] / b[l];
            break;
          case Op::kMin:
            for (int l = 0; l < B; ++l) a[l] = std::min(a[l], b[l]);
            break;
          default:
            for (int l = 0; l < B; ++l) a[l] = std::max(a[l], b[l]);
            break;
        }
        storeIntAs(in.dst, in.type, a);
      }
      break;
    }
    case Op::kMod:
      // applyBinary routes kMod through toInt regardless of promotion.
      loadInt(in.a, ia_.data());
      loadInt(in.b, ib_.data());
      for (int l = 0; l < B; ++l) {
        auto& a = ia_[static_cast<std::size_t>(l)];
        const auto b = ib_[static_cast<std::size_t>(l)];
        a = b == 0 ? 0 : a % b;
      }
      storeIntAs(in.dst, in.type, ia_.data());
      break;
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
    case Op::kEq:
    case Op::kNe: {
      // Comparisons always go through toReal, like applyBinary.
      loadReal(in.a, ra_.data());
      loadReal(in.b, rb_.data());
      const double* a = ra_.data();
      const double* b = rb_.data();
      std::uint64_t* o = ba_.data();
      switch (in.op) {
        case Op::kLt:
          for (int l = 0; l < B; ++l) o[l] = a[l] < b[l] ? 1 : 0;
          break;
        case Op::kLe:
          for (int l = 0; l < B; ++l) o[l] = a[l] <= b[l] ? 1 : 0;
          break;
        case Op::kGt:
          for (int l = 0; l < B; ++l) o[l] = a[l] > b[l] ? 1 : 0;
          break;
        case Op::kGe:
          for (int l = 0; l < B; ++l) o[l] = a[l] >= b[l] ? 1 : 0;
          break;
        case Op::kEq:
          for (int l = 0; l < B; ++l) o[l] = a[l] == b[l] ? 1 : 0;
          break;
        default:
          for (int l = 0; l < B; ++l) o[l] = a[l] != b[l] ? 1 : 0;
          break;
      }
      storeBoolAs(in.dst, in.type, o);
      break;
    }
    default: {  // kAnd / kOr / kXor over 0/1 lanes
      loadBool(in.a, ba_.data());
      loadBool(in.b, bb_.data());
      std::uint64_t* a = ba_.data();
      const std::uint64_t* b = bb_.data();
      switch (in.op) {
        case Op::kAnd:
          for (int l = 0; l < B; ++l) a[l] &= b[l];
          break;
        case Op::kOr:
          for (int l = 0; l < B; ++l) a[l] |= b[l];
          break;
        default:
          for (int l = 0; l < B; ++l) a[l] ^= b[l];
          break;
      }
      storeBoolAs(in.dst, in.type, a);
      break;
    }
  }
}

void BatchTapeExecutor::execIteScalar(const TapeInstr& in) {
  const int B = lanes_;
  loadBool(in.a, bc_.data());
  const std::uint64_t* c = bc_.data();
  // Converting both arms to the cast target and then selecting equals
  // selecting the Scalar first and casting it, per lane.
  switch (in.type) {
    case Type::kReal:
      loadReal(in.b, ra_.data());
      loadReal(in.c, rb_.data());
      for (int l = 0; l < B; ++l) {
        ra_[static_cast<std::size_t>(l)] =
            c[l] != 0 ? ra_[static_cast<std::size_t>(l)]
                      : rb_[static_cast<std::size_t>(l)];
      }
      storeRealAs(in.dst, Type::kReal, ra_.data());
      break;
    case Type::kInt:
      loadInt(in.b, ia_.data());
      loadInt(in.c, ib_.data());
      for (int l = 0; l < B; ++l) {
        ia_[static_cast<std::size_t>(l)] =
            c[l] != 0 ? ia_[static_cast<std::size_t>(l)]
                      : ib_[static_cast<std::size_t>(l)];
      }
      storeIntAs(in.dst, Type::kInt, ia_.data());
      break;
    case Type::kBool:
      loadBool(in.b, ba_.data());
      loadBool(in.c, bb_.data());
      for (int l = 0; l < B; ++l) {
        ba_[static_cast<std::size_t>(l)] =
            c[l] != 0 ? ba_[static_cast<std::size_t>(l)]
                      : bb_[static_cast<std::size_t>(l)];
      }
      storeBoolAs(in.dst, Type::kBool, ba_.data());
      break;
  }
}

void BatchTapeExecutor::execGeneric(const TapeInstr& in) {
  // Per-lane mirror of TapeExecutor::exec — same helper calls, same order.
  for (int lane = 0; lane < lanes_; ++lane) {
    switch (in.op) {
      case Op::kNot:
      case Op::kNeg:
      case Op::kAbs:
      case Op::kCast:
        storeScalar(in.dst, lane,
                    applyUnary(in.op, in.type, loadScalar(in.a, lane)));
        break;
      case Op::kIte:
        if (in.arrayResult) {
          arrays_[idx(in.dst, lane)] = loadScalar(in.a, lane).toBool()
                                           ? arrays_[idx(in.b, lane)]
                                           : arrays_[idx(in.c, lane)];
        } else {
          storeScalar(in.dst, lane,
                      (loadScalar(in.a, lane).toBool()
                           ? loadScalar(in.b, lane)
                           : loadScalar(in.c, lane))
                          .castTo(in.type));
        }
        break;
      case Op::kSelect: {
        const auto& arr = arrays_[idx(in.a, lane)];
        auto i = loadScalar(in.b, lane).toInt();
        const auto n = static_cast<std::int64_t>(arr.size());
        if (i < 0) i = 0;
        if (i >= n) i = n - 1;
        storeScalar(in.dst, lane, arr[static_cast<std::size_t>(i)]);
        break;
      }
      case Op::kStore: {
        auto& dst = arrays_[idx(in.dst, lane)];
        dst = arrays_[idx(in.a, lane)];
        auto i = loadScalar(in.b, lane).toInt();
        const auto v = loadScalar(in.c, lane).castTo(in.type);
        const auto n = static_cast<std::int64_t>(dst.size());
        if (i < 0) i = 0;
        if (i >= n) i = n - 1;
        dst[static_cast<std::size_t>(i)] = v;
        break;
      }
      default:
        storeScalar(in.dst, lane,
                    applyBinary(in.op, loadScalar(in.a, lane),
                                loadScalar(in.b, lane))
                        .castTo(in.type));
        break;
    }
  }
}

void BatchTapeExecutor::run() {
  requireAllBound();
  const auto& code = tape_->code();
  for (std::size_t i = 0; i < code.size(); ++i) {
    const TapeInstr& in = code[i];
    switch (kind_[i]) {
      case Kind::kUnary:
        execUnary(in);
        break;
      case Kind::kBinary:
        execBinary(in);
        break;
      case Kind::kIteScalar:
        execIteScalar(in);
        break;
      case Kind::kGeneric:
        execGeneric(in);
        break;
    }
  }
}

Scalar BatchTapeExecutor::scalar(SlotRef r, int lane) const {
  return loadScalar(r.slot, lane);
}

const std::vector<Scalar>& BatchTapeExecutor::array(SlotRef r,
                                                    int lane) const {
  return arrays_[idx(r.slot, lane)];
}

double BatchTapeExecutor::scalarToReal(SlotRef r, int lane) const {
  const std::size_t k = idx(r.slot, lane);
  switch (types_[k]) {
    case Type::kBool:
      return vals_[k] != 0 ? 1.0 : 0.0;
    case Type::kInt:
      return static_cast<double>(static_cast<std::int64_t>(vals_[k]));
    case Type::kReal:
      return bitsReal(vals_[k]);
  }
  return 0.0;
}

bool BatchTapeExecutor::scalarToBool(SlotRef r, int lane) const {
  const std::size_t k = idx(r.slot, lane);
  switch (types_[k]) {
    case Type::kBool:
    case Type::kInt:
      return vals_[k] != 0;
    case Type::kReal:
      return bitsReal(vals_[k]) != 0.0;
  }
  return false;
}

void BatchTapeExecutor::readReals(SlotRef r, double* out) const {
  // Non-dynamic slots hold their static type in every lane (typed kernels
  // store the slot type; the generic path's castTo lands on it too), so
  // the hoisted loadReal equals per-lane scalarToReal. Dynamic (kSelect)
  // slots keep the per-lane tag dispatch.
  if (slotDynamic_[static_cast<std::size_t>(r.slot)] == 0) {
    loadReal(r.slot, out);
    return;
  }
  for (int l = 0; l < lanes_; ++l) out[l] = scalarToReal(r, l);
}

void BatchTapeExecutor::readBools(SlotRef r, std::uint64_t* out) const {
  if (slotDynamic_[static_cast<std::size_t>(r.slot)] == 0) {
    loadBool(r.slot, out);
    return;
  }
  for (int l = 0; l < lanes_; ++l) out[l] = scalarToBool(r, l) ? 1 : 0;
}

}  // namespace stcg::expr
