#include "expr/batch_tape.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "expr/builder.h"
#include "expr/simd_ops.h"

namespace stcg::expr {

namespace {

inline std::uint64_t realBits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

inline double bitsReal(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

/// Exactly Scalar::toInt for a real payload (saturating, non-finite -> 0).
inline std::int64_t realToInt(double r) { return saturatingRealToInt(r); }

inline std::uint64_t bitsOf(const Scalar& s) {
  switch (s.type()) {
    case Type::kBool:
      return s.asBool() ? 1 : 0;
    case Type::kInt:
      return static_cast<std::uint64_t>(s.asInt());
    case Type::kReal:
      return realBits(s.asReal());
  }
  return 0;
}

}  // namespace

BatchTapeExecutor::BatchTapeExecutor(std::shared_ptr<const Tape> tape,
                                     int lanes)
    : tape_(std::move(tape)),
      lanes_(lanes < 1 ? 1 : lanes),
      simdLevel_(activeSimdLevel()),
      kern_(&laneKernelsFor(simdLevel_)) {
  const std::size_t ns = tape_->scalarSlotCount();
  const std::size_t na = tape_->arraySlotCount();
  const auto B = static_cast<std::size_t>(lanes_);

  // Static slot typing. Every scalar slot's payload type is known at
  // compile time except kSelect results over arrays whose element type
  // isn't statically uniform — only var-bound arrays qualify (setArrayVar
  // keeps elements uncast); const arrays are element-cast by the builder
  // and kStore/array-kIte results preserve uniformity, so selects over
  // them stay statically typed and don't poison their downstream cone
  // into the generic path.
  slotType_.assign(ns, Type::kInt);
  slotDynamic_.assign(ns, 0);
  for (const std::int32_t s : tape_->constScalarSlots()) {
    slotType_[static_cast<std::size_t>(s)] =
        tape_->scalarInit()[static_cast<std::size_t>(s)].type();
  }
  for (const auto& b : tape_->varBindings()) {
    slotType_[static_cast<std::size_t>(b.slot)] = b.type;
  }

  // Per array slot: statically uniform element type, if any. Computed in
  // the same forward pass as the scalar types (the tape is topologically
  // ordered SSA, so operands are classified before their consumers).
  std::vector<std::uint8_t> arrStatic(na, 0);
  std::vector<Type> arrType(na, Type::kInt);
  for (const std::int32_t s : tape_->constArraySlots()) {
    const auto& init = tape_->arrayInit()[static_cast<std::size_t>(s)];
    if (init.empty()) continue;
    bool uniform = true;
    for (const Scalar& e : init) uniform &= e.type() == init[0].type();
    if (uniform) {
      arrStatic[static_cast<std::size_t>(s)] = 1;
      arrType[static_cast<std::size_t>(s)] = init[0].type();
    }
  }

  const auto& code = tape_->code();
  kind_.reserve(code.size());
  fast_.reserve(code.size());
  const auto dyn = [&](std::int32_t s) {
    return slotDynamic_[static_cast<std::size_t>(s)] != 0;
  };
  // Static payload representation of an operand row. kBool and kInt lanes
  // share the int representation for loadInt purposes (0/1 payloads are
  // valid int64 bit patterns), which is what makes bool operands eligible
  // for the int kernels.
  const auto st = [&](std::int32_t s) {
    return slotType_[static_cast<std::size_t>(s)];
  };
  const auto intRep = [&](std::int32_t s) { return st(s) != Type::kReal; };
  for (const TapeInstr& in : code) {
    if (in.arrayResult) {
      const auto dst = static_cast<std::size_t>(in.dst);
      if (in.op == Op::kStore) {
        // Elements: the source array's plus one value cast to in.type.
        const auto src = static_cast<std::size_t>(in.a);
        arrStatic[dst] = arrStatic[src] != 0 && arrType[src] == in.type;
        arrType[dst] = in.type;
      } else {  // array kIte
        const auto tb = static_cast<std::size_t>(in.b);
        const auto fc = static_cast<std::size_t>(in.c);
        arrStatic[dst] = arrStatic[tb] != 0 && arrStatic[fc] != 0 &&
                         arrType[tb] == arrType[fc];
        arrType[dst] = arrType[tb];
      }
    } else {
      auto& t = slotType_[static_cast<std::size_t>(in.dst)];
      switch (in.op) {
        case Op::kNot:
          t = Type::kBool;  // applyUnary returns Scalar::b, uncast
          break;
        case Op::kNeg:
        case Op::kAbs:
          // applyUnary returns Scalar::i even over kBool input.
          t = in.type == Type::kReal ? Type::kReal : Type::kInt;
          break;
        case Op::kSelect:
          if (arrStatic[static_cast<std::size_t>(in.a)] != 0) {
            t = arrType[static_cast<std::size_t>(in.a)];
          } else {
            slotDynamic_[static_cast<std::size_t>(in.dst)] = 1;
            t = in.type;  // unused while dynamic; keep something sane
          }
          break;
        default:
          // kCast, scalar kIte and every binary cast to the node type.
          t = in.type;
          break;
      }
    }
    Kind k = Kind::kGeneric;
    if (!in.arrayResult && in.op != Op::kSelect && in.op != Op::kStore) {
      switch (in.op) {
        case Op::kNot:
        case Op::kNeg:
        case Op::kAbs:
        case Op::kCast:
          if (!dyn(in.a)) k = Kind::kUnary;
          break;
        case Op::kIte:
          if (!dyn(in.a) && !dyn(in.b) && !dyn(in.c)) k = Kind::kIteScalar;
          break;
        default:
          if (!dyn(in.a) && !dyn(in.b)) k = Kind::kBinary;
          break;
      }
    }
    kind_.push_back(k);

    // Direct-row kernel eligibility: the operand rows must already hold
    // the representation the op consumes and the store target must be the
    // representation it produces, so the kernel can skip the scratch
    // convert/store round-trip. Comparison and boolean results stored as
    // kBool or kInt are both raw 0/1 copies, hence `!= kReal` below.
    FastK f = FastK::kNone;
    switch (k) {
      case Kind::kBinary: {
        const bool rr = st(in.a) == Type::kReal && st(in.b) == Type::kReal;
        const bool ii = intRep(in.a) && intRep(in.b);
        switch (in.op) {
          case Op::kAdd:
            if (rr && in.type == Type::kReal) f = FastK::kRAdd;
            else if (ii && in.type == Type::kInt) f = FastK::kIAdd;
            break;
          case Op::kSub:
            if (rr && in.type == Type::kReal) f = FastK::kRSub;
            else if (ii && in.type == Type::kInt) f = FastK::kISub;
            break;
          case Op::kMul:
            if (rr && in.type == Type::kReal) f = FastK::kRMul;
            break;
          case Op::kDiv:
            if (rr && in.type == Type::kReal) f = FastK::kRDivG;
            break;
          case Op::kMin:
            if (rr && in.type == Type::kReal) f = FastK::kRFmin;
            else if (ii && in.type == Type::kInt) f = FastK::kIMin;
            break;
          case Op::kMax:
            if (rr && in.type == Type::kReal) f = FastK::kRFmax;
            else if (ii && in.type == Type::kInt) f = FastK::kIMax;
            break;
          case Op::kLt:
          case Op::kLe:
          case Op::kGt:
          case Op::kGe:
          case Op::kEq:
          case Op::kNe:
            if (rr && in.type != Type::kReal) {
              f = static_cast<FastK>(static_cast<int>(FastK::kRCmpLt) +
                                     simd_detail::cmpIndex(in.op));
            }
            break;
          case Op::kAnd:
            if (st(in.a) == Type::kBool && st(in.b) == Type::kBool &&
                in.type != Type::kReal) {
              f = FastK::kBAnd;
            }
            break;
          case Op::kOr:
            if (st(in.a) == Type::kBool && st(in.b) == Type::kBool &&
                in.type != Type::kReal) {
              f = FastK::kBOr;
            }
            break;
          case Op::kXor:
            if (st(in.a) == Type::kBool && st(in.b) == Type::kBool &&
                in.type != Type::kReal) {
              f = FastK::kBXor;
            }
            break;
          default:  // kMod and friends: scratch path
            break;
        }
        break;
      }
      case Kind::kUnary:
        switch (in.op) {
          case Op::kNot:
            if (st(in.a) == Type::kBool) f = FastK::kBNot;
            break;
          case Op::kNeg:
            if (in.type == Type::kReal && st(in.a) == Type::kReal) {
              f = FastK::kRNeg;
            } else if (in.type != Type::kReal && intRep(in.a)) {
              f = FastK::kINeg;
            }
            break;
          case Op::kAbs:
            if (in.type == Type::kReal && st(in.a) == Type::kReal) {
              f = FastK::kRAbs;
            } else if (in.type != Type::kReal && intRep(in.a)) {
              f = FastK::kIAbs;
            }
            break;
          default:  // kCast: identity when the payload doesn't change
            if (in.type == st(in.a) ||
                (in.type == Type::kInt && st(in.a) == Type::kBool)) {
              f = FastK::kCopy;
            }
            break;
        }
        break;
      case Kind::kIteScalar:
        if (st(in.a) == Type::kBool &&
            ((in.type == Type::kReal && st(in.b) == Type::kReal &&
              st(in.c) == Type::kReal) ||
             (in.type == Type::kInt && intRep(in.b) && intRep(in.c)) ||
             (in.type == Type::kBool && st(in.b) == Type::kBool &&
              st(in.c) == Type::kBool))) {
          f = FastK::kSel;
        }
        break;
      case Kind::kGeneric:
        break;
    }
    fast_.push_back(f);
  }

  // Move-eligibility for the array-copying ops (kStore, array kIte). The
  // per-lane vector copy degrades to an O(1) buffer swap when the consumed
  // array slot (a) is written by an earlier instruction — recomputed on
  // every run; run() always executes the full tape, this executor has no
  // partial cone replay — (b) is not a root (the only slots callers may
  // read after run()), and (c) has no later reader. The stale buffer the
  // swap leaves in the dead slot is overwritten by that slot's defining
  // instruction on the next run before anything reads it. Per-slot (not
  // per-live-range) liveness is conservative under optimizer slot reuse.
  arrMove_.assign(code.size(), 0);
  {
    std::vector<std::int32_t> lastRead(na, -1);
    std::vector<std::uint8_t> isRoot(na, 0);
    for (const SlotRef& r : tape_->rootSlots()) {
      if (r.isArray) isRoot[static_cast<std::size_t>(r.slot)] = 1;
    }
    for (std::size_t i = 0; i < code.size(); ++i) {
      const TapeInstr& in = code[i];
      if (in.op == Op::kSelect || in.op == Op::kStore) {
        lastRead[static_cast<std::size_t>(in.a)] =
            static_cast<std::int32_t>(i);
      } else if (in.op == Op::kIte && in.arrayResult) {
        lastRead[static_cast<std::size_t>(in.b)] =
            static_cast<std::int32_t>(i);
        lastRead[static_cast<std::size_t>(in.c)] =
            static_cast<std::int32_t>(i);
      }
    }
    std::vector<std::uint8_t> defined(na, 0);
    for (std::size_t i = 0; i < code.size(); ++i) {
      const TapeInstr& in = code[i];
      if (in.arrayResult) {
        const auto movable = [&](std::int32_t src) {
          const auto s = static_cast<std::size_t>(src);
          return src != in.dst && defined[s] != 0 && isRoot[s] == 0 &&
                 lastRead[s] == static_cast<std::int32_t>(i);
        };
        if (in.op == Op::kStore) {
          if (movable(in.a)) arrMove_[i] = 1;
        } else if (in.op == Op::kIte && in.b != in.c) {
          arrMove_[i] = static_cast<std::uint8_t>((movable(in.b) ? 1 : 0) |
                                                  (movable(in.c) ? 2 : 0));
        }
        defined[static_cast<std::size_t>(in.dst)] = 1;
      }
    }
  }

  // Lane images. Payload types start at the static slot type so typed
  // kernels and the generic path agree on every slot's representation;
  // non-const slots hold zero until bound/computed (the tape is
  // topologically ordered and run() refuses unbound variables, so those
  // zeros are never observed).
  vals_.assign(ns * B, 0);
  types_.assign(ns * B, Type::kInt);
  const auto& sinit = tape_->scalarInit();
  for (std::size_t s = 0; s < ns; ++s) {
    const std::uint64_t bits =
        bitsOf(sinit[s].castTo(slotType_[s]));  // consts: identity cast
    for (std::size_t l = 0; l < B; ++l) {
      vals_[s * B + l] = bits;
      types_[s * B + l] = slotType_[s];
    }
  }
  arrays_.resize(na * B);
  const auto& ainit = tape_->arrayInit();
  for (std::size_t s = 0; s < na; ++s) {
    for (std::size_t l = 0; l < B; ++l) arrays_[s * B + l] = ainit[s];
  }

  varBound_.assign(tape_->varBindings().size() * B, false);
  arrayBound_.assign(tape_->arrayBindings().size() * B, false);

  ra_.resize(B);
  rb_.resize(B);
  ia_.resize(B);
  ib_.resize(B);
  ba_.resize(B);
  bb_.resize(B);
  bc_.resize(B);
}

void BatchTapeExecutor::setVar(int lane, VarId id, const Scalar& v) {
  const auto& bindings = tape_->varBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeVarBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    // Same coercion as TapeExecutor::setVar; the payload type stays the
    // binding type the slot was initialized with.
    vals_[idx(it->slot, lane)] = bitsOf(v.castTo(it->type));
    varBound_[static_cast<std::size_t>(it - bindings.begin()) *
                  static_cast<std::size_t>(lanes_) +
              static_cast<std::size_t>(lane)] = true;
  }
}

void BatchTapeExecutor::setVarReal(int lane, VarId id, double v) {
  const auto& bindings = tape_->varBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeVarBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    // Payload of Scalar::r(v).castTo(it->type), computed directly.
    std::uint64_t bits = 0;
    switch (it->type) {
      case Type::kReal: bits = realBits(v); break;
      case Type::kInt: bits = static_cast<std::uint64_t>(realToInt(v)); break;
      case Type::kBool: bits = v != 0.0 ? 1 : 0; break;
    }
    vals_[idx(it->slot, lane)] = bits;
    varBound_[static_cast<std::size_t>(it - bindings.begin()) *
                  static_cast<std::size_t>(lanes_) +
              static_cast<std::size_t>(lane)] = true;
  }
}

void BatchTapeExecutor::setVarInt(int lane, VarId id, std::int64_t v) {
  const auto& bindings = tape_->varBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeVarBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    std::uint64_t bits = 0;
    switch (it->type) {
      case Type::kInt: bits = static_cast<std::uint64_t>(v); break;
      case Type::kReal: bits = realBits(static_cast<double>(v)); break;
      case Type::kBool: bits = v != 0 ? 1 : 0; break;
    }
    vals_[idx(it->slot, lane)] = bits;
    varBound_[static_cast<std::size_t>(it - bindings.begin()) *
                  static_cast<std::size_t>(lanes_) +
              static_cast<std::size_t>(lane)] = true;
  }
}

void BatchTapeExecutor::setVarBool(int lane, VarId id, bool v) {
  const auto& bindings = tape_->varBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeVarBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    std::uint64_t bits = 0;
    switch (it->type) {
      case Type::kBool:
      case Type::kInt: bits = v ? 1 : 0; break;
      case Type::kReal: bits = realBits(v ? 1.0 : 0.0); break;
    }
    vals_[idx(it->slot, lane)] = bits;
    varBound_[static_cast<std::size_t>(it - bindings.begin()) *
                  static_cast<std::size_t>(lanes_) +
              static_cast<std::size_t>(lane)] = true;
  }
}

void BatchTapeExecutor::setArrayVar(int lane, VarId id,
                                    const std::vector<Scalar>& v) {
  const auto& bindings = tape_->arrayBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeArrayBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    arrays_[idx(it->slot, lane)] = v;
    arrayBound_[static_cast<std::size_t>(it - bindings.begin()) *
                    static_cast<std::size_t>(lanes_) +
                static_cast<std::size_t>(lane)] = true;
  }
}

void BatchTapeExecutor::bindEnv(int lane, const Env& env) {
  for (const auto& b : tape_->varBindings()) {
    if (env.has(b.var)) setVar(lane, b.var, env.get(b.var));
  }
  for (const auto& b : tape_->arrayBindings()) {
    if (env.hasArray(b.var)) setArrayVar(lane, b.var, env.getArray(b.var));
  }
}

void BatchTapeExecutor::requireAllBound() {
  if (checkedBound_) return;
  const auto B = static_cast<std::size_t>(lanes_);
  const auto& vb = tape_->varBindings();
  for (std::size_t i = 0; i < vb.size(); ++i) {
    for (std::size_t l = 0; l < B; ++l) {
      if (!varBound_[i * B + l]) {
        throw EvalError("unbound variable '" + vb[i].name + "' (id " +
                        std::to_string(vb[i].var) + ") in lane " +
                        std::to_string(l) + " during batch tape execution");
      }
    }
  }
  const auto& ab = tape_->arrayBindings();
  for (std::size_t i = 0; i < ab.size(); ++i) {
    for (std::size_t l = 0; l < B; ++l) {
      if (!arrayBound_[i * B + l]) {
        throw EvalError("unbound array variable '" + ab[i].name + "' (id " +
                        std::to_string(ab[i].var) + ") in lane " +
                        std::to_string(l) + " during batch tape execution");
      }
    }
  }
  checkedBound_ = true;
}

Scalar BatchTapeExecutor::loadScalar(std::int32_t slot, int lane) const {
  const std::size_t k = idx(slot, lane);
  switch (types_[k]) {
    case Type::kBool:
      return Scalar::b(vals_[k] != 0);
    case Type::kInt:
      return Scalar::i(static_cast<std::int64_t>(vals_[k]));
    case Type::kReal:
      return Scalar::r(bitsReal(vals_[k]));
  }
  return Scalar();
}

void BatchTapeExecutor::storeScalar(std::int32_t slot, int lane,
                                    const Scalar& s) {
  const std::size_t k = idx(slot, lane);
  vals_[k] = bitsOf(s);
  types_[k] = s.type();
}

void BatchTapeExecutor::loadReal(std::int32_t slot, double* out) const {
  const std::uint64_t* v = &vals_[idx(slot, 0)];
  const int B = lanes_;
  switch (slotType_[static_cast<std::size_t>(slot)]) {
    case Type::kBool:
      for (int l = 0; l < B; ++l) out[l] = static_cast<double>(v[l]);
      break;
    case Type::kInt:
      for (int l = 0; l < B; ++l) {
        out[l] = static_cast<double>(static_cast<std::int64_t>(v[l]));
      }
      break;
    case Type::kReal:
      for (int l = 0; l < B; ++l) out[l] = bitsReal(v[l]);
      break;
  }
}

void BatchTapeExecutor::loadInt(std::int32_t slot, std::int64_t* out) const {
  const std::uint64_t* v = &vals_[idx(slot, 0)];
  const int B = lanes_;
  switch (slotType_[static_cast<std::size_t>(slot)]) {
    case Type::kBool:
    case Type::kInt:
      for (int l = 0; l < B; ++l) out[l] = static_cast<std::int64_t>(v[l]);
      break;
    case Type::kReal:
      for (int l = 0; l < B; ++l) out[l] = realToInt(bitsReal(v[l]));
      break;
  }
}

void BatchTapeExecutor::loadBool(std::int32_t slot, std::uint64_t* out) const {
  const std::uint64_t* v = &vals_[idx(slot, 0)];
  const int B = lanes_;
  switch (slotType_[static_cast<std::size_t>(slot)]) {
    case Type::kBool:
      for (int l = 0; l < B; ++l) out[l] = v[l];
      break;
    case Type::kInt:
      for (int l = 0; l < B; ++l) out[l] = v[l] != 0 ? 1 : 0;
      break;
    case Type::kReal:
      // Compare as double, not bits: -0.0 is false.
      for (int l = 0; l < B; ++l) out[l] = bitsReal(v[l]) != 0.0 ? 1 : 0;
      break;
  }
}

void BatchTapeExecutor::storeRealAs(std::int32_t dst, Type dstType,
                                    const double* in) {
  std::uint64_t* out = &vals_[idx(dst, 0)];
  const int B = lanes_;
  switch (dstType) {
    case Type::kReal:
      for (int l = 0; l < B; ++l) out[l] = realBits(in[l]);
      break;
    case Type::kInt:
      for (int l = 0; l < B; ++l) {
        out[l] = static_cast<std::uint64_t>(realToInt(in[l]));
      }
      break;
    case Type::kBool:
      for (int l = 0; l < B; ++l) out[l] = in[l] != 0.0 ? 1 : 0;
      break;
  }
}

void BatchTapeExecutor::storeIntAs(std::int32_t dst, Type dstType,
                                   const std::int64_t* in) {
  std::uint64_t* out = &vals_[idx(dst, 0)];
  const int B = lanes_;
  switch (dstType) {
    case Type::kInt:
      for (int l = 0; l < B; ++l) out[l] = static_cast<std::uint64_t>(in[l]);
      break;
    case Type::kReal:
      for (int l = 0; l < B; ++l) {
        out[l] = realBits(static_cast<double>(in[l]));
      }
      break;
    case Type::kBool:
      for (int l = 0; l < B; ++l) out[l] = in[l] != 0 ? 1 : 0;
      break;
  }
}

void BatchTapeExecutor::storeBoolAs(std::int32_t dst, Type dstType,
                                    const std::uint64_t* in) {
  std::uint64_t* out = &vals_[idx(dst, 0)];
  const int B = lanes_;
  switch (dstType) {
    case Type::kBool:
    case Type::kInt:
      for (int l = 0; l < B; ++l) out[l] = in[l];
      break;
    case Type::kReal:
      for (int l = 0; l < B; ++l) {
        out[l] = realBits(static_cast<double>(in[l]));
      }
      break;
  }
}

void BatchTapeExecutor::execUnary(const TapeInstr& in) {
  const int B = lanes_;
  switch (in.op) {
    case Op::kNot:
      loadBool(in.a, ba_.data());
      for (int l = 0; l < B; ++l) ba_[static_cast<std::size_t>(l)] ^= 1;
      storeBoolAs(in.dst, Type::kBool, ba_.data());
      break;
    case Op::kNeg:
      if (in.type == Type::kReal) {
        loadReal(in.a, ra_.data());
        for (int l = 0; l < B; ++l) {
          ra_[static_cast<std::size_t>(l)] = -ra_[static_cast<std::size_t>(l)];
        }
        storeRealAs(in.dst, Type::kReal, ra_.data());
      } else {
        loadInt(in.a, ia_.data());
        for (int l = 0; l < B; ++l) {
          ia_[static_cast<std::size_t>(l)] = -ia_[static_cast<std::size_t>(l)];
        }
        storeIntAs(in.dst, Type::kInt, ia_.data());
      }
      break;
    case Op::kAbs:
      if (in.type == Type::kReal) {
        loadReal(in.a, ra_.data());
        for (int l = 0; l < B; ++l) {
          ra_[static_cast<std::size_t>(l)] =
              std::fabs(ra_[static_cast<std::size_t>(l)]);
        }
        storeRealAs(in.dst, Type::kReal, ra_.data());
      } else {
        loadInt(in.a, ia_.data());
        for (int l = 0; l < B; ++l) {
          auto& x = ia_[static_cast<std::size_t>(l)];
          x = x < 0 ? -x : x;
        }
        storeIntAs(in.dst, Type::kInt, ia_.data());
      }
      break;
    default:  // kCast
      switch (in.type) {
        case Type::kReal:
          loadReal(in.a, ra_.data());
          storeRealAs(in.dst, Type::kReal, ra_.data());
          break;
        case Type::kInt:
          loadInt(in.a, ia_.data());
          storeIntAs(in.dst, Type::kInt, ia_.data());
          break;
        case Type::kBool:
          loadBool(in.a, ba_.data());
          storeBoolAs(in.dst, Type::kBool, ba_.data());
          break;
      }
      break;
  }
}

void BatchTapeExecutor::execBinary(const TapeInstr& in) {
  const int B = lanes_;
  switch (in.op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMin:
    case Op::kMax: {
      const Type ta = slotType_[static_cast<std::size_t>(in.a)];
      const Type tb = slotType_[static_cast<std::size_t>(in.b)];
      const Type nt = promote(ta == Type::kBool ? Type::kInt : ta,
                              tb == Type::kBool ? Type::kInt : tb);
      if (nt == Type::kReal) {
        loadReal(in.a, ra_.data());
        loadReal(in.b, rb_.data());
        double* a = ra_.data();
        const double* b = rb_.data();
        switch (in.op) {
          case Op::kAdd:
            for (int l = 0; l < B; ++l) a[l] += b[l];
            break;
          case Op::kSub:
            for (int l = 0; l < B; ++l) a[l] -= b[l];
            break;
          case Op::kMul:
            for (int l = 0; l < B; ++l) a[l] *= b[l];
            break;
          case Op::kDiv:
            for (int l = 0; l < B; ++l) {
              a[l] = b[l] == 0.0 ? 0.0 : a[l] / b[l];
            }
            break;
          case Op::kMin:
            for (int l = 0; l < B; ++l) a[l] = std::fmin(a[l], b[l]);
            break;
          default:
            for (int l = 0; l < B; ++l) a[l] = std::fmax(a[l], b[l]);
            break;
        }
        storeRealAs(in.dst, in.type, a);
      } else {
        loadInt(in.a, ia_.data());
        loadInt(in.b, ib_.data());
        std::int64_t* a = ia_.data();
        const std::int64_t* b = ib_.data();
        switch (in.op) {
          case Op::kAdd:
            for (int l = 0; l < B; ++l) a[l] += b[l];
            break;
          case Op::kSub:
            for (int l = 0; l < B; ++l) a[l] -= b[l];
            break;
          case Op::kMul:
            for (int l = 0; l < B; ++l) a[l] *= b[l];
            break;
          case Op::kDiv:
            for (int l = 0; l < B; ++l) a[l] = b[l] == 0 ? 0 : a[l] / b[l];
            break;
          case Op::kMin:
            for (int l = 0; l < B; ++l) a[l] = std::min(a[l], b[l]);
            break;
          default:
            for (int l = 0; l < B; ++l) a[l] = std::max(a[l], b[l]);
            break;
        }
        storeIntAs(in.dst, in.type, a);
      }
      break;
    }
    case Op::kMod:
      // applyBinary routes kMod through toInt regardless of promotion.
      loadInt(in.a, ia_.data());
      loadInt(in.b, ib_.data());
      for (int l = 0; l < B; ++l) {
        auto& a = ia_[static_cast<std::size_t>(l)];
        const auto b = ib_[static_cast<std::size_t>(l)];
        a = b == 0 ? 0 : a % b;
      }
      storeIntAs(in.dst, in.type, ia_.data());
      break;
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
    case Op::kEq:
    case Op::kNe: {
      // Comparisons always go through toReal, like applyBinary.
      loadReal(in.a, ra_.data());
      loadReal(in.b, rb_.data());
      const double* a = ra_.data();
      const double* b = rb_.data();
      std::uint64_t* o = ba_.data();
      switch (in.op) {
        case Op::kLt:
          for (int l = 0; l < B; ++l) o[l] = a[l] < b[l] ? 1 : 0;
          break;
        case Op::kLe:
          for (int l = 0; l < B; ++l) o[l] = a[l] <= b[l] ? 1 : 0;
          break;
        case Op::kGt:
          for (int l = 0; l < B; ++l) o[l] = a[l] > b[l] ? 1 : 0;
          break;
        case Op::kGe:
          for (int l = 0; l < B; ++l) o[l] = a[l] >= b[l] ? 1 : 0;
          break;
        case Op::kEq:
          for (int l = 0; l < B; ++l) o[l] = a[l] == b[l] ? 1 : 0;
          break;
        default:
          for (int l = 0; l < B; ++l) o[l] = a[l] != b[l] ? 1 : 0;
          break;
      }
      storeBoolAs(in.dst, in.type, o);
      break;
    }
    default: {  // kAnd / kOr / kXor over 0/1 lanes
      loadBool(in.a, ba_.data());
      loadBool(in.b, bb_.data());
      std::uint64_t* a = ba_.data();
      const std::uint64_t* b = bb_.data();
      switch (in.op) {
        case Op::kAnd:
          for (int l = 0; l < B; ++l) a[l] &= b[l];
          break;
        case Op::kOr:
          for (int l = 0; l < B; ++l) a[l] |= b[l];
          break;
        default:
          for (int l = 0; l < B; ++l) a[l] ^= b[l];
          break;
      }
      storeBoolAs(in.dst, in.type, a);
      break;
    }
  }
}

void BatchTapeExecutor::execIteScalar(const TapeInstr& in) {
  const int B = lanes_;
  loadBool(in.a, bc_.data());
  const std::uint64_t* c = bc_.data();
  // Converting both arms to the cast target and then selecting equals
  // selecting the Scalar first and casting it, per lane.
  switch (in.type) {
    case Type::kReal:
      loadReal(in.b, ra_.data());
      loadReal(in.c, rb_.data());
      for (int l = 0; l < B; ++l) {
        ra_[static_cast<std::size_t>(l)] =
            c[l] != 0 ? ra_[static_cast<std::size_t>(l)]
                      : rb_[static_cast<std::size_t>(l)];
      }
      storeRealAs(in.dst, Type::kReal, ra_.data());
      break;
    case Type::kInt:
      loadInt(in.b, ia_.data());
      loadInt(in.c, ib_.data());
      for (int l = 0; l < B; ++l) {
        ia_[static_cast<std::size_t>(l)] =
            c[l] != 0 ? ia_[static_cast<std::size_t>(l)]
                      : ib_[static_cast<std::size_t>(l)];
      }
      storeIntAs(in.dst, Type::kInt, ia_.data());
      break;
    case Type::kBool:
      loadBool(in.b, ba_.data());
      loadBool(in.c, bb_.data());
      for (int l = 0; l < B; ++l) {
        ba_[static_cast<std::size_t>(l)] =
            c[l] != 0 ? ba_[static_cast<std::size_t>(l)]
                      : bb_[static_cast<std::size_t>(l)];
      }
      storeBoolAs(in.dst, Type::kBool, ba_.data());
      break;
  }
}

void BatchTapeExecutor::execGeneric(const TapeInstr& in, std::uint8_t mv) {
  // Per-lane mirror of TapeExecutor::exec — same helper calls, same
  // results. The array ops hoist statically typed scalar operands into a
  // lane-wide coercing load (loadInt/loadBool apply the exact
  // Scalar::toInt/toBool conversions) and honor the arrMove_ swap
  // permission computed at construction; dynamically typed operands take
  // the per-lane Scalar path unchanged.
  const int B = lanes_;
  const auto dyn = [&](std::int32_t s) {
    return slotDynamic_[static_cast<std::size_t>(s)] != 0;
  };
  switch (in.op) {
    case Op::kIte:
      if (in.arrayResult) {
        const bool staticCond = !dyn(in.a);
        if (staticCond) loadBool(in.a, bc_.data());
        for (int lane = 0; lane < B; ++lane) {
          const bool t = staticCond
                             ? bc_[static_cast<std::size_t>(lane)] != 0
                             : loadScalar(in.a, lane).toBool();
          const std::int32_t src = t ? in.b : in.c;
          auto& dst = arrays_[idx(in.dst, lane)];
          if ((mv & (t ? 1u : 2u)) != 0) {
            dst.swap(arrays_[idx(src, lane)]);
          } else {
            dst = arrays_[idx(src, lane)];
          }
        }
        return;
      }
      break;
    case Op::kSelect: {
      const bool staticIdx = !dyn(in.b);
      if (staticIdx) loadInt(in.b, ia_.data());
      for (int lane = 0; lane < B; ++lane) {
        const auto& arr = arrays_[idx(in.a, lane)];
        auto i = staticIdx ? ia_[static_cast<std::size_t>(lane)]
                           : loadScalar(in.b, lane).toInt();
        const auto n = static_cast<std::int64_t>(arr.size());
        if (i < 0) i = 0;
        if (i >= n) i = n - 1;
        storeScalar(in.dst, lane, arr[static_cast<std::size_t>(i)]);
      }
      return;
    }
    case Op::kStore: {
      const bool staticIdx = !dyn(in.b);
      if (staticIdx) loadInt(in.b, ia_.data());
      for (int lane = 0; lane < B; ++lane) {
        auto& dst = arrays_[idx(in.dst, lane)];
        if ((mv & 1u) != 0) {
          dst.swap(arrays_[idx(in.a, lane)]);
        } else {
          dst = arrays_[idx(in.a, lane)];
        }
        auto i = staticIdx ? ia_[static_cast<std::size_t>(lane)]
                           : loadScalar(in.b, lane).toInt();
        const auto v = loadScalar(in.c, lane).castTo(in.type);
        const auto n = static_cast<std::int64_t>(dst.size());
        if (i < 0) i = 0;
        if (i >= n) i = n - 1;
        dst[static_cast<std::size_t>(i)] = v;
      }
      return;
    }
    default:
      break;
  }
  for (int lane = 0; lane < B; ++lane) {
    switch (in.op) {
      case Op::kNot:
      case Op::kNeg:
      case Op::kAbs:
      case Op::kCast:
        storeScalar(in.dst, lane,
                    applyUnary(in.op, in.type, loadScalar(in.a, lane)));
        break;
      case Op::kIte:  // scalar result with a dynamic operand
        storeScalar(in.dst, lane,
                    (loadScalar(in.a, lane).toBool()
                         ? loadScalar(in.b, lane)
                         : loadScalar(in.c, lane))
                        .castTo(in.type));
        break;
      default:
        storeScalar(in.dst, lane,
                    applyBinary(in.op, loadScalar(in.a, lane),
                                loadScalar(in.b, lane))
                        .castTo(in.type));
        break;
    }
  }
}

void BatchTapeExecutor::execFast(const TapeInstr& in, FastK f) {
  // The tape is SSA, so dst never aliases an operand row.
  const int B = lanes_;
  const LaneKernels& k = *kern_;
  std::uint64_t* d = &vals_[idx(in.dst, 0)];
  const std::uint64_t* a = &vals_[idx(in.a, 0)];
  switch (f) {
    case FastK::kRAdd: k.rAdd(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kRSub: k.rSub(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kRMul: k.rMul(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kRDivG: k.rDivG(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kRFmin: k.rFmin(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kRFmax: k.rFmax(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kRNeg: k.rNeg(d, a, B); break;
    case FastK::kRAbs: k.rAbs(d, a, B); break;
    case FastK::kRCmpLt:
    case FastK::kRCmpLe:
    case FastK::kRCmpGt:
    case FastK::kRCmpGe:
    case FastK::kRCmpEq:
    case FastK::kRCmpNe:
      k.rCmp[static_cast<int>(f) - static_cast<int>(FastK::kRCmpLt)](
          d, a, &vals_[idx(in.b, 0)], B);
      break;
    case FastK::kIAdd: k.iAdd(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kISub: k.iSub(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kIMin: k.iMin(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kIMax: k.iMax(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kINeg: k.iNeg(d, a, B); break;
    case FastK::kIAbs: k.iAbs(d, a, B); break;
    case FastK::kBAnd: k.bAnd(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kBOr: k.bOr(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kBXor: k.bXor(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kBNot: k.bNot(d, a, B); break;
    case FastK::kSel:
      k.sel64(d, a, &vals_[idx(in.b, 0)], &vals_[idx(in.c, 0)], B);
      break;
    case FastK::kCopy:
      std::memcpy(d, a, static_cast<std::size_t>(B) * sizeof(std::uint64_t));
      break;
    case FastK::kNone:
      break;
  }
}

void BatchTapeExecutor::run() {
  requireAllBound();
  const auto& code = tape_->code();
  for (std::size_t i = 0; i < code.size(); ++i) {
    const TapeInstr& in = code[i];
    if (fast_[i] != FastK::kNone) {
      execFast(in, fast_[i]);
      continue;
    }
    switch (kind_[i]) {
      case Kind::kUnary:
        execUnary(in);
        break;
      case Kind::kBinary:
        execBinary(in);
        break;
      case Kind::kIteScalar:
        execIteScalar(in);
        break;
      case Kind::kGeneric:
        execGeneric(in, arrMove_[i]);
        break;
    }
  }
}

Scalar BatchTapeExecutor::scalar(SlotRef r, int lane) const {
  return loadScalar(r.slot, lane);
}

const std::vector<Scalar>& BatchTapeExecutor::array(SlotRef r,
                                                    int lane) const {
  return arrays_[idx(r.slot, lane)];
}

double BatchTapeExecutor::scalarToReal(SlotRef r, int lane) const {
  const std::size_t k = idx(r.slot, lane);
  switch (types_[k]) {
    case Type::kBool:
      return vals_[k] != 0 ? 1.0 : 0.0;
    case Type::kInt:
      return static_cast<double>(static_cast<std::int64_t>(vals_[k]));
    case Type::kReal:
      return bitsReal(vals_[k]);
  }
  return 0.0;
}

bool BatchTapeExecutor::scalarToBool(SlotRef r, int lane) const {
  const std::size_t k = idx(r.slot, lane);
  switch (types_[k]) {
    case Type::kBool:
    case Type::kInt:
      return vals_[k] != 0;
    case Type::kReal:
      return bitsReal(vals_[k]) != 0.0;
  }
  return false;
}

void BatchTapeExecutor::readReals(SlotRef r, double* out) const {
  // Non-dynamic slots hold their static type in every lane (typed kernels
  // store the slot type; the generic path's castTo lands on it too), so
  // the hoisted loadReal equals per-lane scalarToReal. Dynamic (kSelect)
  // slots keep the per-lane tag dispatch.
  if (slotDynamic_[static_cast<std::size_t>(r.slot)] == 0) {
    loadReal(r.slot, out);
    return;
  }
  for (int l = 0; l < lanes_; ++l) out[l] = scalarToReal(r, l);
}

void BatchTapeExecutor::readBools(SlotRef r, std::uint64_t* out) const {
  if (slotDynamic_[static_cast<std::size_t>(r.slot)] == 0) {
    loadBool(r.slot, out);
    return;
  }
  for (int l = 0; l < lanes_; ++l) out[l] = scalarToBool(r, l) ? 1 : 0;
}

}  // namespace stcg::expr
