#include "expr/batch_tape.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "expr/builder.h"
#include "expr/simd_ops.h"
#include "expr/tape_verify.h"

namespace stcg::expr {

namespace {

inline std::uint64_t realBits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

inline double bitsReal(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

/// Exactly Scalar::toInt for a real payload (saturating, non-finite -> 0).
inline std::int64_t realToInt(double r) { return saturatingRealToInt(r); }

inline std::uint64_t bitsOf(const Scalar& s) {
  switch (s.type()) {
    case Type::kBool:
      return s.asBool() ? 1 : 0;
    case Type::kInt:
      return static_cast<std::uint64_t>(s.asInt());
    case Type::kReal:
      return realBits(s.asReal());
  }
  return 0;
}

}  // namespace

BatchTapeExecutor::BatchTapeExecutor(std::shared_ptr<const Tape> tape,
                                     int lanes)
    : tape_(std::move(tape)),
      lanes_(lanes < 1 ? 1 : lanes),
      simdLevel_(activeSimdLevel()),
      kern_(&laneKernelsFor(simdLevel_)) {
  const std::size_t ns = tape_->scalarSlotCount();
  const std::size_t na = tape_->arraySlotCount();
  const auto B = static_cast<std::size_t>(lanes_);

  // Static slot typing, shared with the verifier and the JIT
  // (analyzeTapeStaticTypes; see its doc for the per-op derivation).
  // Consuming the per-slot summary in place of a per-program-point walk
  // is sound because array slots are never shared by the optimizer
  // (tape_passes.cpp: "arrays never share") and shared scalar slots only
  // merge writers that agree on (static type, dynamic) — the verifier's
  // checkTape enforces both invariants.
  {
    TapeStaticTypes st0 = analyzeTapeStaticTypes(*tape_);
    slotType_ = std::move(st0.scalarType);
    slotDynamic_ = std::move(st0.scalarDynamic);
  }

  const auto& code = tape_->code();
  kind_.reserve(code.size());
  fast_.reserve(code.size());
  const auto dyn = [&](std::int32_t s) {
    return slotDynamic_[static_cast<std::size_t>(s)] != 0;
  };
  // Static payload representation of an operand row. kBool and kInt lanes
  // share the int representation for loadInt purposes (0/1 payloads are
  // valid int64 bit patterns), which is what makes bool operands eligible
  // for the int kernels.
  const auto st = [&](std::int32_t s) {
    return slotType_[static_cast<std::size_t>(s)];
  };
  const auto intRep = [&](std::int32_t s) { return st(s) != Type::kReal; };
  for (const TapeInstr& in : code) {
    // Dynamic operands are fine everywhere the result representation does
    // not depend on them (see the Kind doc): the coercing loads resolve
    // each lane through its types_ row. Only the numeric binary group
    // promotes over runtime types and needs the re-dispatching kind.
    Kind k = Kind::kGeneric;
    if (!in.arrayResult && in.op != Op::kSelect && in.op != Op::kStore) {
      switch (in.op) {
        case Op::kNot:
        case Op::kNeg:
        case Op::kAbs:
        case Op::kCast:
          k = Kind::kUnary;
          break;
        case Op::kIte:
          k = Kind::kIteScalar;
          break;
        case Op::kAdd:
        case Op::kSub:
        case Op::kMul:
        case Op::kDiv:
        case Op::kMin:
        case Op::kMax:
          k = !dyn(in.a) && !dyn(in.b) ? Kind::kBinary : Kind::kBinaryNumDyn;
          break;
        default:  // comparisons, kAnd/kOr/kXor, kMod
          k = Kind::kBinary;
          break;
      }
    }
    kind_.push_back(k);

    // Direct-row kernel eligibility: the operand rows must already hold
    // the representation the op consumes and the store target must be the
    // representation it produces, so the kernel can skip the scratch
    // convert/store round-trip. Comparison and boolean results stored as
    // kBool or kInt are both raw 0/1 copies, hence `!= kReal` below.
    FastK f = FastK::kNone;
    // Direct-row kernels need the operands' static representation; a
    // dynamic operand resolves per lane through types_, so those
    // instructions stay on the scratch (or re-dispatching) path.
    const bool dynOperand =
        (k == Kind::kBinary && (dyn(in.a) || dyn(in.b))) ||
        (k == Kind::kUnary && dyn(in.a)) ||
        (k == Kind::kIteScalar && (dyn(in.a) || dyn(in.b) || dyn(in.c)));
    switch (dynOperand ? Kind::kGeneric : k) {
      case Kind::kBinary: {
        const bool rr = st(in.a) == Type::kReal && st(in.b) == Type::kReal;
        const bool ii = intRep(in.a) && intRep(in.b);
        switch (in.op) {
          case Op::kAdd:
            if (rr && in.type == Type::kReal) f = FastK::kRAdd;
            else if (ii && in.type == Type::kInt) f = FastK::kIAdd;
            break;
          case Op::kSub:
            if (rr && in.type == Type::kReal) f = FastK::kRSub;
            else if (ii && in.type == Type::kInt) f = FastK::kISub;
            break;
          case Op::kMul:
            if (rr && in.type == Type::kReal) f = FastK::kRMul;
            break;
          case Op::kDiv:
            if (rr && in.type == Type::kReal) f = FastK::kRDivG;
            break;
          case Op::kMin:
            if (rr && in.type == Type::kReal) f = FastK::kRFmin;
            else if (ii && in.type == Type::kInt) f = FastK::kIMin;
            break;
          case Op::kMax:
            if (rr && in.type == Type::kReal) f = FastK::kRFmax;
            else if (ii && in.type == Type::kInt) f = FastK::kIMax;
            break;
          case Op::kLt:
          case Op::kLe:
          case Op::kGt:
          case Op::kGe:
          case Op::kEq:
          case Op::kNe:
            if (rr && in.type != Type::kReal) {
              f = static_cast<FastK>(static_cast<int>(FastK::kRCmpLt) +
                                     simd_detail::cmpIndex(in.op));
            }
            break;
          case Op::kAnd:
            if (st(in.a) == Type::kBool && st(in.b) == Type::kBool &&
                in.type != Type::kReal) {
              f = FastK::kBAnd;
            }
            break;
          case Op::kOr:
            if (st(in.a) == Type::kBool && st(in.b) == Type::kBool &&
                in.type != Type::kReal) {
              f = FastK::kBOr;
            }
            break;
          case Op::kXor:
            if (st(in.a) == Type::kBool && st(in.b) == Type::kBool &&
                in.type != Type::kReal) {
              f = FastK::kBXor;
            }
            break;
          default:  // kMod and friends: scratch path
            break;
        }
        break;
      }
      case Kind::kUnary:
        switch (in.op) {
          case Op::kNot:
            if (st(in.a) == Type::kBool) f = FastK::kBNot;
            break;
          case Op::kNeg:
            if (in.type == Type::kReal && st(in.a) == Type::kReal) {
              f = FastK::kRNeg;
            } else if (in.type != Type::kReal && intRep(in.a)) {
              f = FastK::kINeg;
            }
            break;
          case Op::kAbs:
            if (in.type == Type::kReal && st(in.a) == Type::kReal) {
              f = FastK::kRAbs;
            } else if (in.type != Type::kReal && intRep(in.a)) {
              f = FastK::kIAbs;
            }
            break;
          default:  // kCast: identity when the payload doesn't change
            if (in.type == st(in.a) ||
                (in.type == Type::kInt && st(in.a) == Type::kBool)) {
              f = FastK::kCopy;
            }
            break;
        }
        break;
      case Kind::kIteScalar:
        if (st(in.a) == Type::kBool &&
            ((in.type == Type::kReal && st(in.b) == Type::kReal &&
              st(in.c) == Type::kReal) ||
             (in.type == Type::kInt && intRep(in.b) && intRep(in.c)) ||
             (in.type == Type::kBool && st(in.b) == Type::kBool &&
              st(in.c) == Type::kBool))) {
          f = FastK::kSel;
        }
        break;
      case Kind::kBinaryNumDyn:
      case Kind::kGeneric:
        break;
    }
    fast_.push_back(f);
  }

  // Move-eligibility for the array-copying ops (kStore, array kIte). The
  // per-lane vector copy degrades to an O(1) buffer swap when the consumed
  // array slot (a) is written by an earlier instruction — recomputed on
  // every run; run() always executes the full tape, this executor has no
  // partial cone replay — (b) is not a root (the only slots callers may
  // read after run()), and (c) has no later reader. The stale buffer the
  // swap leaves in the dead slot is overwritten by that slot's defining
  // instruction on the next run before anything reads it. Per-slot (not
  // per-live-range) liveness is conservative under optimizer slot reuse.
  arrMove_.assign(code.size(), 0);
  {
    std::vector<std::int32_t> lastRead(na, -1);
    std::vector<std::uint8_t> isRoot(na, 0);
    for (const SlotRef& r : tape_->rootSlots()) {
      if (r.isArray) isRoot[static_cast<std::size_t>(r.slot)] = 1;
    }
    for (std::size_t i = 0; i < code.size(); ++i) {
      const TapeInstr& in = code[i];
      if (in.op == Op::kSelect || in.op == Op::kStore) {
        lastRead[static_cast<std::size_t>(in.a)] =
            static_cast<std::int32_t>(i);
      } else if (in.op == Op::kIte && in.arrayResult) {
        lastRead[static_cast<std::size_t>(in.b)] =
            static_cast<std::int32_t>(i);
        lastRead[static_cast<std::size_t>(in.c)] =
            static_cast<std::int32_t>(i);
      }
    }
    std::vector<std::uint8_t> defined(na, 0);
    for (std::size_t i = 0; i < code.size(); ++i) {
      const TapeInstr& in = code[i];
      if (in.arrayResult) {
        const auto movable = [&](std::int32_t src) {
          const auto s = static_cast<std::size_t>(src);
          return src != in.dst && defined[s] != 0 && isRoot[s] == 0 &&
                 lastRead[s] == static_cast<std::int32_t>(i);
        };
        if (in.op == Op::kStore) {
          if (movable(in.a)) arrMove_[i] = 1;
        } else if (in.op == Op::kIte && in.b != in.c) {
          arrMove_[i] = static_cast<std::uint8_t>((movable(in.b) ? 1 : 0) |
                                                  (movable(in.c) ? 2 : 0));
        }
        defined[static_cast<std::size_t>(in.dst)] = 1;
      }
    }
  }

  // Lane images. Payload types start at the static slot type so typed
  // kernels and the generic path agree on every slot's representation;
  // non-const slots hold zero until bound/computed (the tape is
  // topologically ordered and run() refuses unbound variables, so those
  // zeros are never observed).
  vals_.assign(ns * B, 0);
  types_.assign(ns * B, Type::kInt);
  const auto& sinit = tape_->scalarInit();
  for (std::size_t s = 0; s < ns; ++s) {
    const std::uint64_t bits =
        bitsOf(sinit[s].castTo(slotType_[s]));  // consts: identity cast
    for (std::size_t l = 0; l < B; ++l) {
      vals_[s * B + l] = bits;
      types_[s * B + l] = slotType_[s];
    }
  }
  planes_.resize(na);
  const auto& ainit = tape_->arrayInit();
  for (std::size_t s = 0; s < na; ++s) {
    planes_[s].len.assign(B, 0);
    planeBroadcast(planes_[s], ainit[s]);
  }

  varBound_.assign(tape_->varBindings().size() * B, false);
  arrayBound_.assign(tape_->arrayBindings().size() * B, false);

  ra_.resize(B);
  rb_.resize(B);
  ia_.resize(B);
  ib_.resize(B);
  ba_.resize(B);
  bb_.resize(B);
  bc_.resize(B);
}

void BatchTapeExecutor::setVar(int lane, VarId id, const Scalar& v) {
  const auto& bindings = tape_->varBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeVarBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    // Same coercion as TapeExecutor::setVar; the payload type stays the
    // binding type the slot was initialized with.
    vals_[idx(it->slot, lane)] = bitsOf(v.castTo(it->type));
    varBound_[static_cast<std::size_t>(it - bindings.begin()) *
                  static_cast<std::size_t>(lanes_) +
              static_cast<std::size_t>(lane)] = true;
  }
}

void BatchTapeExecutor::setVarReal(int lane, VarId id, double v) {
  const auto& bindings = tape_->varBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeVarBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    // Payload of Scalar::r(v).castTo(it->type), computed directly.
    std::uint64_t bits = 0;
    switch (it->type) {
      case Type::kReal: bits = realBits(v); break;
      case Type::kInt: bits = static_cast<std::uint64_t>(realToInt(v)); break;
      case Type::kBool: bits = v != 0.0 ? 1 : 0; break;
    }
    vals_[idx(it->slot, lane)] = bits;
    varBound_[static_cast<std::size_t>(it - bindings.begin()) *
                  static_cast<std::size_t>(lanes_) +
              static_cast<std::size_t>(lane)] = true;
  }
}

void BatchTapeExecutor::setVarInt(int lane, VarId id, std::int64_t v) {
  const auto& bindings = tape_->varBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeVarBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    std::uint64_t bits = 0;
    switch (it->type) {
      case Type::kInt: bits = static_cast<std::uint64_t>(v); break;
      case Type::kReal: bits = realBits(static_cast<double>(v)); break;
      case Type::kBool: bits = v != 0 ? 1 : 0; break;
    }
    vals_[idx(it->slot, lane)] = bits;
    varBound_[static_cast<std::size_t>(it - bindings.begin()) *
                  static_cast<std::size_t>(lanes_) +
              static_cast<std::size_t>(lane)] = true;
  }
}

void BatchTapeExecutor::setVarBool(int lane, VarId id, bool v) {
  const auto& bindings = tape_->varBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeVarBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    std::uint64_t bits = 0;
    switch (it->type) {
      case Type::kBool:
      case Type::kInt: bits = v ? 1 : 0; break;
      case Type::kReal: bits = realBits(v ? 1.0 : 0.0); break;
    }
    vals_[idx(it->slot, lane)] = bits;
    varBound_[static_cast<std::size_t>(it - bindings.begin()) *
                  static_cast<std::size_t>(lanes_) +
              static_cast<std::size_t>(lane)] = true;
  }
}

void BatchTapeExecutor::setArrayVar(int lane, VarId id,
                                    const std::vector<Scalar>& v) {
  const auto& bindings = tape_->arrayBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeArrayBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    planeBindLane(planes_[static_cast<std::size_t>(it->slot)], lane, v);
    arrayBound_[static_cast<std::size_t>(it - bindings.begin()) *
                    static_cast<std::size_t>(lanes_) +
                static_cast<std::size_t>(lane)] = true;
  }
}

void BatchTapeExecutor::setArrayVarBroadcast(VarId id,
                                             const std::vector<Scalar>& v) {
  const auto& bindings = tape_->arrayBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeArrayBinding& b, VarId want) { return b.var < want; });
  const auto B = static_cast<std::size_t>(lanes_);
  for (; it != bindings.end() && it->var == id; ++it) {
    planeBroadcast(planes_[static_cast<std::size_t>(it->slot)], v);
    const std::size_t base =
        static_cast<std::size_t>(it - bindings.begin()) * B;
    for (std::size_t l = 0; l < B; ++l) arrayBound_[base + l] = true;
    ++stats_.broadcastBinds;
  }
}

bool BatchTapeExecutor::rebindArrayVarFromSlot(VarId id, SlotRef src,
                                               Type want) {
  if (!src.valid() || !src.isArray) return false;
  const ArrayPlane& sp = planes_[static_cast<std::size_t>(src.slot)];
  if (sp.uni != static_cast<std::int8_t>(want)) return false;
  const auto& bindings = tape_->arrayBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeArrayBinding& b, VarId v) { return b.var < v; });
  const auto B = static_cast<std::size_t>(lanes_);
  for (; it != bindings.end() && it->var == id; ++it) {
    ArrayPlane& dp = planes_[static_cast<std::size_t>(it->slot)];
    if (&dp != &sp) planeCopy(dp, sp);
    const std::size_t base =
        static_cast<std::size_t>(it - bindings.begin()) * B;
    for (std::size_t l = 0; l < B; ++l) arrayBound_[base + l] = true;
    ++stats_.residentRebinds;
  }
  return true;
}

void BatchTapeExecutor::bindEnv(int lane, const Env& env) {
  for (const auto& b : tape_->varBindings()) {
    if (env.has(b.var)) setVar(lane, b.var, env.get(b.var));
  }
  for (const auto& b : tape_->arrayBindings()) {
    if (env.hasArray(b.var)) setArrayVar(lane, b.var, env.getArray(b.var));
  }
}

void BatchTapeExecutor::requireAllBound() {
  if (checkedBound_) return;
  const auto B = static_cast<std::size_t>(lanes_);
  const auto& vb = tape_->varBindings();
  for (std::size_t i = 0; i < vb.size(); ++i) {
    for (std::size_t l = 0; l < B; ++l) {
      if (!varBound_[i * B + l]) {
        throw EvalError("unbound variable '" + vb[i].name + "' (id " +
                        std::to_string(vb[i].var) + ") in lane " +
                        std::to_string(l) + " during batch tape execution");
      }
    }
  }
  const auto& ab = tape_->arrayBindings();
  for (std::size_t i = 0; i < ab.size(); ++i) {
    for (std::size_t l = 0; l < B; ++l) {
      if (!arrayBound_[i * B + l]) {
        throw EvalError("unbound array variable '" + ab[i].name + "' (id " +
                        std::to_string(ab[i].var) + ") in lane " +
                        std::to_string(l) + " during batch tape execution");
      }
    }
  }
  checkedBound_ = true;
}

Scalar BatchTapeExecutor::loadScalar(std::int32_t slot, int lane) const {
  const std::size_t k = idx(slot, lane);
  switch (types_[k]) {
    case Type::kBool:
      return Scalar::b(vals_[k] != 0);
    case Type::kInt:
      return Scalar::i(static_cast<std::int64_t>(vals_[k]));
    case Type::kReal:
      return Scalar::r(bitsReal(vals_[k]));
  }
  return Scalar();
}

void BatchTapeExecutor::storeScalar(std::int32_t slot, int lane,
                                    const Scalar& s) {
  const std::size_t k = idx(slot, lane);
  vals_[k] = bitsOf(s);
  types_[k] = s.type();
}

void BatchTapeExecutor::loadReal(std::int32_t slot, double* out) const {
  const std::uint64_t* v = &vals_[idx(slot, 0)];
  const int B = lanes_;
  if (slotDynamic_[static_cast<std::size_t>(slot)] != 0) {
    // kSelect-fed slot: the types_ row is authoritative per lane; this is
    // Scalar::toReal applied to each lane's payload.
    const Type* t = &types_[idx(slot, 0)];
    for (int l = 0; l < B; ++l) {
      switch (t[l]) {
        case Type::kBool: out[l] = static_cast<double>(v[l]); break;
        case Type::kInt:
          out[l] = static_cast<double>(static_cast<std::int64_t>(v[l]));
          break;
        case Type::kReal: out[l] = bitsReal(v[l]); break;
      }
    }
    return;
  }
  switch (slotType_[static_cast<std::size_t>(slot)]) {
    case Type::kBool:
      for (int l = 0; l < B; ++l) out[l] = static_cast<double>(v[l]);
      break;
    case Type::kInt:
      for (int l = 0; l < B; ++l) {
        out[l] = static_cast<double>(static_cast<std::int64_t>(v[l]));
      }
      break;
    case Type::kReal:
      for (int l = 0; l < B; ++l) out[l] = bitsReal(v[l]);
      break;
  }
}

void BatchTapeExecutor::loadInt(std::int32_t slot, std::int64_t* out) const {
  const std::uint64_t* v = &vals_[idx(slot, 0)];
  const int B = lanes_;
  if (slotDynamic_[static_cast<std::size_t>(slot)] != 0) {
    const Type* t = &types_[idx(slot, 0)];
    for (int l = 0; l < B; ++l) {
      out[l] = t[l] == Type::kReal ? realToInt(bitsReal(v[l]))
                                   : static_cast<std::int64_t>(v[l]);
    }
    return;
  }
  switch (slotType_[static_cast<std::size_t>(slot)]) {
    case Type::kBool:
    case Type::kInt:
      for (int l = 0; l < B; ++l) out[l] = static_cast<std::int64_t>(v[l]);
      break;
    case Type::kReal:
      for (int l = 0; l < B; ++l) out[l] = realToInt(bitsReal(v[l]));
      break;
  }
}

void BatchTapeExecutor::loadBool(std::int32_t slot, std::uint64_t* out) const {
  const std::uint64_t* v = &vals_[idx(slot, 0)];
  const int B = lanes_;
  if (slotDynamic_[static_cast<std::size_t>(slot)] != 0) {
    const Type* t = &types_[idx(slot, 0)];
    for (int l = 0; l < B; ++l) {
      switch (t[l]) {
        case Type::kBool: out[l] = v[l]; break;
        case Type::kInt: out[l] = v[l] != 0 ? 1 : 0; break;
        // Compare as double, not bits: -0.0 is false.
        case Type::kReal: out[l] = bitsReal(v[l]) != 0.0 ? 1 : 0; break;
      }
    }
    return;
  }
  switch (slotType_[static_cast<std::size_t>(slot)]) {
    case Type::kBool:
      for (int l = 0; l < B; ++l) out[l] = v[l];
      break;
    case Type::kInt:
      for (int l = 0; l < B; ++l) out[l] = v[l] != 0 ? 1 : 0;
      break;
    case Type::kReal:
      // Compare as double, not bits: -0.0 is false.
      for (int l = 0; l < B; ++l) out[l] = bitsReal(v[l]) != 0.0 ? 1 : 0;
      break;
  }
}

void BatchTapeExecutor::storeRealAs(std::int32_t dst, Type dstType,
                                    const double* in) {
  std::uint64_t* out = &vals_[idx(dst, 0)];
  const int B = lanes_;
  switch (dstType) {
    case Type::kReal:
      for (int l = 0; l < B; ++l) out[l] = realBits(in[l]);
      break;
    case Type::kInt:
      for (int l = 0; l < B; ++l) {
        out[l] = static_cast<std::uint64_t>(realToInt(in[l]));
      }
      break;
    case Type::kBool:
      for (int l = 0; l < B; ++l) out[l] = in[l] != 0.0 ? 1 : 0;
      break;
  }
}

void BatchTapeExecutor::storeIntAs(std::int32_t dst, Type dstType,
                                   const std::int64_t* in) {
  std::uint64_t* out = &vals_[idx(dst, 0)];
  const int B = lanes_;
  switch (dstType) {
    case Type::kInt:
      for (int l = 0; l < B; ++l) out[l] = static_cast<std::uint64_t>(in[l]);
      break;
    case Type::kReal:
      for (int l = 0; l < B; ++l) {
        out[l] = realBits(static_cast<double>(in[l]));
      }
      break;
    case Type::kBool:
      for (int l = 0; l < B; ++l) out[l] = in[l] != 0 ? 1 : 0;
      break;
  }
}

void BatchTapeExecutor::storeBoolAs(std::int32_t dst, Type dstType,
                                    const std::uint64_t* in) {
  std::uint64_t* out = &vals_[idx(dst, 0)];
  const int B = lanes_;
  switch (dstType) {
    case Type::kBool:
    case Type::kInt:
      for (int l = 0; l < B; ++l) out[l] = in[l];
      break;
    case Type::kReal:
      for (int l = 0; l < B; ++l) {
        out[l] = realBits(static_cast<double>(in[l]));
      }
      break;
  }
}

void BatchTapeExecutor::execUnary(const TapeInstr& in) {
  const int B = lanes_;
  switch (in.op) {
    case Op::kNot:
      loadBool(in.a, ba_.data());
      for (int l = 0; l < B; ++l) ba_[static_cast<std::size_t>(l)] ^= 1;
      storeBoolAs(in.dst, Type::kBool, ba_.data());
      break;
    case Op::kNeg:
      if (in.type == Type::kReal) {
        loadReal(in.a, ra_.data());
        for (int l = 0; l < B; ++l) {
          ra_[static_cast<std::size_t>(l)] = -ra_[static_cast<std::size_t>(l)];
        }
        storeRealAs(in.dst, Type::kReal, ra_.data());
      } else {
        loadInt(in.a, ia_.data());
        for (int l = 0; l < B; ++l) {
          ia_[static_cast<std::size_t>(l)] = -ia_[static_cast<std::size_t>(l)];
        }
        storeIntAs(in.dst, Type::kInt, ia_.data());
      }
      break;
    case Op::kAbs:
      if (in.type == Type::kReal) {
        loadReal(in.a, ra_.data());
        for (int l = 0; l < B; ++l) {
          ra_[static_cast<std::size_t>(l)] =
              std::fabs(ra_[static_cast<std::size_t>(l)]);
        }
        storeRealAs(in.dst, Type::kReal, ra_.data());
      } else {
        loadInt(in.a, ia_.data());
        for (int l = 0; l < B; ++l) {
          auto& x = ia_[static_cast<std::size_t>(l)];
          x = x < 0 ? -x : x;
        }
        storeIntAs(in.dst, Type::kInt, ia_.data());
      }
      break;
    default:  // kCast
      switch (in.type) {
        case Type::kReal:
          loadReal(in.a, ra_.data());
          storeRealAs(in.dst, Type::kReal, ra_.data());
          break;
        case Type::kInt:
          loadInt(in.a, ia_.data());
          storeIntAs(in.dst, Type::kInt, ia_.data());
          break;
        case Type::kBool:
          loadBool(in.a, ba_.data());
          storeBoolAs(in.dst, Type::kBool, ba_.data());
          break;
      }
      break;
  }
}

void BatchTapeExecutor::execBinaryArith(const TapeInstr& in, bool real) {
  const int B = lanes_;
  if (real) {
    loadReal(in.a, ra_.data());
    loadReal(in.b, rb_.data());
    double* a = ra_.data();
    const double* b = rb_.data();
    switch (in.op) {
      case Op::kAdd:
        for (int l = 0; l < B; ++l) a[l] += b[l];
        break;
      case Op::kSub:
        for (int l = 0; l < B; ++l) a[l] -= b[l];
        break;
      case Op::kMul:
        for (int l = 0; l < B; ++l) a[l] *= b[l];
        break;
      case Op::kDiv:
        for (int l = 0; l < B; ++l) {
          a[l] = b[l] == 0.0 ? 0.0 : a[l] / b[l];
        }
        break;
      case Op::kMin:
        for (int l = 0; l < B; ++l) a[l] = std::fmin(a[l], b[l]);
        break;
      default:
        for (int l = 0; l < B; ++l) a[l] = std::fmax(a[l], b[l]);
        break;
    }
    storeRealAs(in.dst, in.type, a);
  } else {
    loadInt(in.a, ia_.data());
    loadInt(in.b, ib_.data());
    std::int64_t* a = ia_.data();
    const std::int64_t* b = ib_.data();
    switch (in.op) {
      case Op::kAdd:
        for (int l = 0; l < B; ++l) a[l] += b[l];
        break;
      case Op::kSub:
        for (int l = 0; l < B; ++l) a[l] -= b[l];
        break;
      case Op::kMul:
        for (int l = 0; l < B; ++l) a[l] *= b[l];
        break;
      case Op::kDiv:
        for (int l = 0; l < B; ++l) a[l] = b[l] == 0 ? 0 : a[l] / b[l];
        break;
      case Op::kMin:
        for (int l = 0; l < B; ++l) a[l] = std::min(a[l], b[l]);
        break;
      default:
        for (int l = 0; l < B; ++l) a[l] = std::max(a[l], b[l]);
        break;
    }
    storeIntAs(in.dst, in.type, a);
  }
}

bool BatchTapeExecutor::rowUniformType(std::int32_t slot, Type* t) const {
  if (slotDynamic_[static_cast<std::size_t>(slot)] == 0) {
    *t = slotType_[static_cast<std::size_t>(slot)];
    return true;
  }
  const Type* row = &types_[idx(slot, 0)];
  for (int l = 1; l < lanes_; ++l) {
    if (row[l] != row[0]) return false;
  }
  *t = row[0];
  return true;
}

void BatchTapeExecutor::execBinaryNumDyn(const TapeInstr& in,
                                         std::uint8_t mv) {
  // applyBinary promotes over the RUNTIME operand types. When each
  // dynamic operand's type row is lane-uniform the whole row shares one
  // promotion, so the typed scratch path computes exactly the per-lane
  // Scalar results; a mixed row keeps the Scalar walk.
  Type ta{};
  Type tb{};
  if (!rowUniformType(in.a, &ta) || !rowUniformType(in.b, &tb)) {
    execGeneric(in, mv);
    return;
  }
  const Type nt = promote(ta == Type::kBool ? Type::kInt : ta,
                          tb == Type::kBool ? Type::kInt : tb);
  execBinaryArith(in, nt == Type::kReal);
}

void BatchTapeExecutor::execBinary(const TapeInstr& in) {
  const int B = lanes_;
  switch (in.op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMin:
    case Op::kMax: {
      const Type ta = slotType_[static_cast<std::size_t>(in.a)];
      const Type tb = slotType_[static_cast<std::size_t>(in.b)];
      const Type nt = promote(ta == Type::kBool ? Type::kInt : ta,
                              tb == Type::kBool ? Type::kInt : tb);
      execBinaryArith(in, nt == Type::kReal);
      break;
    }
    case Op::kMod:
      // applyBinary routes kMod through toInt regardless of promotion.
      loadInt(in.a, ia_.data());
      loadInt(in.b, ib_.data());
      for (int l = 0; l < B; ++l) {
        auto& a = ia_[static_cast<std::size_t>(l)];
        const auto b = ib_[static_cast<std::size_t>(l)];
        a = b == 0 ? 0 : a % b;
      }
      storeIntAs(in.dst, in.type, ia_.data());
      break;
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
    case Op::kEq:
    case Op::kNe: {
      // Comparisons always go through toReal, like applyBinary.
      loadReal(in.a, ra_.data());
      loadReal(in.b, rb_.data());
      const double* a = ra_.data();
      const double* b = rb_.data();
      std::uint64_t* o = ba_.data();
      switch (in.op) {
        case Op::kLt:
          for (int l = 0; l < B; ++l) o[l] = a[l] < b[l] ? 1 : 0;
          break;
        case Op::kLe:
          for (int l = 0; l < B; ++l) o[l] = a[l] <= b[l] ? 1 : 0;
          break;
        case Op::kGt:
          for (int l = 0; l < B; ++l) o[l] = a[l] > b[l] ? 1 : 0;
          break;
        case Op::kGe:
          for (int l = 0; l < B; ++l) o[l] = a[l] >= b[l] ? 1 : 0;
          break;
        case Op::kEq:
          for (int l = 0; l < B; ++l) o[l] = a[l] == b[l] ? 1 : 0;
          break;
        default:
          for (int l = 0; l < B; ++l) o[l] = a[l] != b[l] ? 1 : 0;
          break;
      }
      storeBoolAs(in.dst, in.type, o);
      break;
    }
    default: {  // kAnd / kOr / kXor over 0/1 lanes
      loadBool(in.a, ba_.data());
      loadBool(in.b, bb_.data());
      std::uint64_t* a = ba_.data();
      const std::uint64_t* b = bb_.data();
      switch (in.op) {
        case Op::kAnd:
          for (int l = 0; l < B; ++l) a[l] &= b[l];
          break;
        case Op::kOr:
          for (int l = 0; l < B; ++l) a[l] |= b[l];
          break;
        default:
          for (int l = 0; l < B; ++l) a[l] ^= b[l];
          break;
      }
      storeBoolAs(in.dst, in.type, a);
      break;
    }
  }
}

void BatchTapeExecutor::execIteScalar(const TapeInstr& in) {
  const int B = lanes_;
  loadBool(in.a, bc_.data());
  const std::uint64_t* c = bc_.data();
  // Converting both arms to the cast target and then selecting equals
  // selecting the Scalar first and casting it, per lane.
  switch (in.type) {
    case Type::kReal:
      loadReal(in.b, ra_.data());
      loadReal(in.c, rb_.data());
      for (int l = 0; l < B; ++l) {
        ra_[static_cast<std::size_t>(l)] =
            c[l] != 0 ? ra_[static_cast<std::size_t>(l)]
                      : rb_[static_cast<std::size_t>(l)];
      }
      storeRealAs(in.dst, Type::kReal, ra_.data());
      break;
    case Type::kInt:
      loadInt(in.b, ia_.data());
      loadInt(in.c, ib_.data());
      for (int l = 0; l < B; ++l) {
        ia_[static_cast<std::size_t>(l)] =
            c[l] != 0 ? ia_[static_cast<std::size_t>(l)]
                      : ib_[static_cast<std::size_t>(l)];
      }
      storeIntAs(in.dst, Type::kInt, ia_.data());
      break;
    case Type::kBool:
      loadBool(in.b, ba_.data());
      loadBool(in.c, bb_.data());
      for (int l = 0; l < B; ++l) {
        ba_[static_cast<std::size_t>(l)] =
            c[l] != 0 ? ba_[static_cast<std::size_t>(l)]
                      : bb_[static_cast<std::size_t>(l)];
      }
      storeBoolAs(in.dst, Type::kBool, ba_.data());
      break;
  }
}

void BatchTapeExecutor::planeEnsureCap(ArrayPlane& p, std::int32_t elems) {
  if (elems < 1) elems = 1;  // keep row 0 allocated for empty-array clamps
  if (elems <= p.cap) return;
  const auto B = static_cast<std::size_t>(lanes_);
  p.pay.resize(static_cast<std::size_t>(elems) * B, 0);
  p.tag.resize(static_cast<std::size_t>(elems) * B,
               static_cast<std::uint8_t>(Type::kInt));
  p.cap = elems;
}

void BatchTapeExecutor::planeMaterializeTags(ArrayPlane& p) {
  std::memset(p.tag.data(), p.uni, p.tag.size());
  p.uni = -1;
}

void BatchTapeExecutor::planeCopy(ArrayPlane& dst, const ArrayPlane& src) {
  ++stats_.planeCopies;
  const int B = lanes_;
  const auto lanes = static_cast<std::size_t>(B);
  std::int32_t maxLen = 0;
  for (int l = 0; l < B; ++l) {
    maxLen = std::max(maxLen, src.len[static_cast<std::size_t>(l)]);
  }
  planeEnsureCap(dst, maxLen);
  dst.len = src.len;
  dst.lensEqual = src.lensEqual;
  dst.uni = src.uni;
  if (src.lensEqual) {
    const std::size_t words =
        static_cast<std::size_t>(src.len[0]) * lanes;
    std::memcpy(dst.pay.data(), src.pay.data(),
                words * sizeof(std::uint64_t));
    if (src.uni < 0) std::memcpy(dst.tag.data(), src.tag.data(), words);
    stats_.wordMoveRows += static_cast<std::uint64_t>(src.len[0]);
  } else {
    for (int l = 0; l < B; ++l) {
      for (std::int32_t e = 0; e < src.len[static_cast<std::size_t>(l)];
           ++e) {
        const std::size_t k = static_cast<std::size_t>(e) * lanes +
                              static_cast<std::size_t>(l);
        dst.pay[k] = src.pay[k];
        if (src.uni < 0) dst.tag[k] = src.tag[k];
      }
    }
    stats_.stridedRows += static_cast<std::uint64_t>(maxLen);
  }
}

void BatchTapeExecutor::planeBroadcast(ArrayPlane& p,
                                       const std::vector<Scalar>& v) {
  const int B = lanes_;
  const auto lanes = static_cast<std::size_t>(B);
  const auto n = static_cast<std::int32_t>(v.size());
  planeEnsureCap(p, n);
  std::int8_t vU = n > 0 ? static_cast<std::int8_t>(v[0].type()) : p.uni;
  for (std::size_t e = 1; e < v.size(); ++e) {
    if (v[e].type() != static_cast<Type>(vU)) {
      vU = -1;
      break;
    }
  }
  for (std::int32_t e = 0; e < n; ++e) {
    const std::uint64_t w = bitsOf(v[static_cast<std::size_t>(e)]);
    std::uint64_t* row = &p.pay[static_cast<std::size_t>(e) * lanes];
    for (int l = 0; l < B; ++l) row[l] = w;
  }
  if (n > 0) {
    // The whole valid region of every lane is rewritten, so the plane's
    // uniformity is exactly the bound vector's.
    p.uni = vU;
    if (vU < 0) {
      for (std::int32_t e = 0; e < n; ++e) {
        std::memset(
            &p.tag[static_cast<std::size_t>(e) * lanes],
            static_cast<int>(v[static_cast<std::size_t>(e)].type()), lanes);
      }
    }
  }
  std::fill(p.len.begin(), p.len.end(), n);
  p.lensEqual = true;
}

void BatchTapeExecutor::planeBindLane(ArrayPlane& p, int lane,
                                      const std::vector<Scalar>& v) {
  const int B = lanes_;
  const auto lanes = static_cast<std::size_t>(B);
  const auto n = static_cast<std::int32_t>(v.size());
  planeEnsureCap(p, n);
  for (std::size_t e = 0; e < v.size(); ++e) {
    p.pay[e * lanes + static_cast<std::size_t>(lane)] = bitsOf(v[e]);
  }
  std::int8_t vU = n > 0 ? static_cast<std::int8_t>(v[0].type()) : p.uni;
  for (std::size_t e = 1; e < v.size(); ++e) {
    if (v[e].type() != static_cast<Type>(vU)) {
      vU = -1;
      break;
    }
  }
  if (p.uni >= 0 && vU != p.uni && n > 0) {
    // Uniformity can survive a differently-typed bind only when this lane
    // is the plane's sole content (the other lanes are empty).
    bool othersEmpty = true;
    for (int l = 0; l < B; ++l) {
      if (l != lane && p.len[static_cast<std::size_t>(l)] != 0) {
        othersEmpty = false;
        break;
      }
    }
    if (othersEmpty && vU >= 0) {
      p.uni = vU;
    } else {
      planeMaterializeTags(p);
    }
  }
  if (p.uni < 0) {
    for (std::size_t e = 0; e < v.size(); ++e) {
      p.tag[e * lanes + static_cast<std::size_t>(lane)] =
          static_cast<std::uint8_t>(v[e].type());
    }
  }
  p.len[static_cast<std::size_t>(lane)] = n;
  bool eq = true;
  for (int l = 1; l < B; ++l) {
    eq &= p.len[static_cast<std::size_t>(l)] == p.len[0];
  }
  p.lensEqual = eq;
}

Scalar BatchTapeExecutor::planeElem(const ArrayPlane& p, std::int32_t e,
                                    int lane) const {
  const std::size_t k =
      static_cast<std::size_t>(e) * static_cast<std::size_t>(lanes_) +
      static_cast<std::size_t>(lane);
  const Type t =
      p.uni >= 0 ? static_cast<Type>(p.uni) : static_cast<Type>(p.tag[k]);
  switch (t) {
    case Type::kBool:
      return Scalar::b(p.pay[k] != 0);
    case Type::kInt:
      return Scalar::i(static_cast<std::int64_t>(p.pay[k]));
    case Type::kReal:
      return Scalar::r(bitsReal(p.pay[k]));
  }
  return Scalar();
}

bool BatchTapeExecutor::clampIndexRow(const ArrayPlane& p,
                                      std::int64_t* common) {
  const int B = lanes_;
  bool same = true;
  for (int l = 0; l < B; ++l) {
    const auto n =
        static_cast<std::int64_t>(p.len[static_cast<std::size_t>(l)]);
    std::int64_t i = ia_[static_cast<std::size_t>(l)];
    if (i < 0) i = 0;
    if (i >= n) i = n - 1;
    if (i < 0) i = 0;  // n == 0: stay on the allocated row 0
    ia_[static_cast<std::size_t>(l)] = i;
    same &= i == ia_[0];
  }
  *common = ia_[0];
  return same;
}

void BatchTapeExecutor::execArraySelect(const TapeInstr& in) {
  ++stats_.arrayOps;
  const int B = lanes_;
  const auto lanes = static_cast<std::size_t>(B);
  const ArrayPlane& p = planes_[static_cast<std::size_t>(in.a)];
  if (slotDynamic_[static_cast<std::size_t>(in.b)] == 0) {
    loadInt(in.b, ia_.data());
  } else {
    for (int l = 0; l < B; ++l) {
      ia_[static_cast<std::size_t>(l)] = loadScalar(in.b, l).toInt();
    }
  }
  std::int64_t common = 0;
  const bool sameRow = clampIndexRow(p, &common);
  std::uint64_t* d = &vals_[idx(in.dst, 0)];
  Type* dt = &types_[idx(in.dst, 0)];
  if (sameRow && p.uni >= 0) {
    // All lanes read the same uniformly-typed element row: one contiguous
    // word move, no per-lane dispatch at all.
    std::memcpy(d, &p.pay[static_cast<std::size_t>(common) * lanes],
                lanes * sizeof(std::uint64_t));
    std::fill(dt, dt + B, static_cast<Type>(p.uni));
    ++stats_.typedRowOps;
    ++stats_.wordMoveRows;
    return;
  }
  for (int l = 0; l < B; ++l) {
    const std::size_t k =
        static_cast<std::size_t>(ia_[static_cast<std::size_t>(l)]) * lanes +
        static_cast<std::size_t>(l);
    d[l] = p.pay[k];
    dt[l] = p.uni >= 0 ? static_cast<Type>(p.uni)
                       : static_cast<Type>(p.tag[k]);
  }
  ++stats_.stridedRows;
}

void BatchTapeExecutor::execArrayStore(const TapeInstr& in, std::uint8_t mv) {
  ++stats_.arrayOps;
  const int B = lanes_;
  const auto lanes = static_cast<std::size_t>(B);
  if (in.a != in.dst) {
    if ((mv & 1u) != 0) {
      std::swap(planes_[static_cast<std::size_t>(in.dst)],
                planes_[static_cast<std::size_t>(in.a)]);
      ++stats_.planeSwaps;
    } else {
      planeCopy(planes_[static_cast<std::size_t>(in.dst)],
                planes_[static_cast<std::size_t>(in.a)]);
    }
  }
  ArrayPlane& p = planes_[static_cast<std::size_t>(in.dst)];
  if (slotDynamic_[static_cast<std::size_t>(in.b)] == 0) {
    loadInt(in.b, ia_.data());
  } else {
    for (int l = 0; l < B; ++l) {
      ia_[static_cast<std::size_t>(l)] = loadScalar(in.b, l).toInt();
    }
  }
  std::int64_t common = 0;
  const bool sameRow = clampIndexRow(p, &common);
  // Stored-value payload row: loadReal/loadInt/loadBool apply the exact
  // Scalar::castTo(in.type) coercions lane-wide; a dynamically typed value
  // slot takes the per-lane Scalar path. ia_ holds indices, so the value
  // converts through the other scratch rows.
  std::uint64_t* bits = bb_.data();
  if (slotDynamic_[static_cast<std::size_t>(in.c)] == 0) {
    switch (in.type) {
      case Type::kReal:
        loadReal(in.c, ra_.data());
        for (int l = 0; l < B; ++l) {
          bits[l] = realBits(ra_[static_cast<std::size_t>(l)]);
        }
        break;
      case Type::kInt:
        loadInt(in.c, ib_.data());
        for (int l = 0; l < B; ++l) {
          bits[l] =
              static_cast<std::uint64_t>(ib_[static_cast<std::size_t>(l)]);
        }
        break;
      case Type::kBool:
        loadBool(in.c, bits);
        break;
    }
  } else {
    for (int l = 0; l < B; ++l) {
      bits[l] = bitsOf(loadScalar(in.c, l).castTo(in.type));
    }
  }
  if (sameRow) {
    std::memcpy(&p.pay[static_cast<std::size_t>(common) * lanes], bits,
                lanes * sizeof(std::uint64_t));
    ++stats_.wordMoveRows;
  } else {
    for (int l = 0; l < B; ++l) {
      p.pay[static_cast<std::size_t>(ia_[static_cast<std::size_t>(l)]) *
                lanes +
            static_cast<std::size_t>(l)] = bits[l];
    }
    ++stats_.stridedRows;
  }
  // The written elements are exactly in.type; keep uni/tags truthful.
  if (p.uni != static_cast<std::int8_t>(in.type)) {
    if (p.uni >= 0) planeMaterializeTags(p);
    if (sameRow) {
      std::memset(&p.tag[static_cast<std::size_t>(common) * lanes],
                  static_cast<int>(in.type), lanes);
    } else {
      for (int l = 0; l < B; ++l) {
        p.tag[static_cast<std::size_t>(ia_[static_cast<std::size_t>(l)]) *
                  lanes +
              static_cast<std::size_t>(l)] =
            static_cast<std::uint8_t>(in.type);
      }
    }
  }
  if (p.uni >= 0 && sameRow) ++stats_.typedRowOps;
}

void BatchTapeExecutor::execArrayIte(const TapeInstr& in, std::uint8_t mv) {
  ++stats_.arrayOps;
  const int B = lanes_;
  const auto lanes = static_cast<std::size_t>(B);
  if (slotDynamic_[static_cast<std::size_t>(in.a)] == 0) {
    loadBool(in.a, bc_.data());
  } else {
    for (int l = 0; l < B; ++l) {
      bc_[static_cast<std::size_t>(l)] =
          loadScalar(in.a, l).toBool() ? 1 : 0;
    }
  }
  int trues = 0;
  for (int l = 0; l < B; ++l) {
    trues += bc_[static_cast<std::size_t>(l)] != 0 ? 1 : 0;
  }
  if (trues == B || trues == 0) {
    // Every lane picks the same arm: whole-plane move (or nothing when
    // the arm is the destination slot itself).
    const std::int32_t src = trues == B ? in.b : in.c;
    const std::uint8_t bit = trues == B ? 1u : 2u;
    if (src != in.dst) {
      if ((mv & bit) != 0) {
        std::swap(planes_[static_cast<std::size_t>(in.dst)],
                  planes_[static_cast<std::size_t>(src)]);
        ++stats_.planeSwaps;
      } else {
        planeCopy(planes_[static_cast<std::size_t>(in.dst)],
                  planes_[static_cast<std::size_t>(src)]);
      }
    }
    if (planes_[static_cast<std::size_t>(in.dst)].uni >= 0) {
      ++stats_.typedRowOps;
    }
    return;
  }
  // Mixed condition: build dst per lane from both arms. dst may alias an
  // arm slot; every move below reads the chosen source at the exact
  // (elem, lane) position it writes, so aliased positions only copy onto
  // themselves. Capture per-lane chosen lengths (ib_ scratch) before any
  // plane mutation.
  ArrayPlane& pb = planes_[static_cast<std::size_t>(in.b)];
  ArrayPlane& pc = planes_[static_cast<std::size_t>(in.c)];
  std::int32_t maxLen = 0;
  bool lensEq = true;
  for (int l = 0; l < B; ++l) {
    const ArrayPlane& s = bc_[static_cast<std::size_t>(l)] != 0 ? pb : pc;
    const std::int32_t n = s.len[static_cast<std::size_t>(l)];
    ib_[static_cast<std::size_t>(l)] = n;
    maxLen = std::max(maxLen, n);
    lensEq &= n == static_cast<std::int32_t>(ib_[0]);
  }
  ArrayPlane& d = planes_[static_cast<std::size_t>(in.dst)];
  planeEnsureCap(d, maxLen);
  const bool bothUniSame = pb.uni >= 0 && pb.uni == pc.uni;
  if (bothUniSame && pb.lensEqual && pc.lensEqual &&
      pb.len[0] == pc.len[0]) {
    // Uniform same-typed arms of identical shape: per-element-row payload
    // select through the LaneKernels table (sel64 allows dst == a or
    // dst == b exactly, which covers the aliasing case).
    const std::int32_t n = pb.len[0];
    for (std::int32_t e = 0; e < n; ++e) {
      kern_->sel64(&d.pay[static_cast<std::size_t>(e) * lanes], bc_.data(),
                   &pb.pay[static_cast<std::size_t>(e) * lanes],
                   &pc.pay[static_cast<std::size_t>(e) * lanes], B);
    }
    d.uni = pb.uni;
    stats_.wordMoveRows += static_cast<std::uint64_t>(n);
    ++stats_.typedRowOps;
  } else {
    for (int l = 0; l < B; ++l) {
      const ArrayPlane& s = bc_[static_cast<std::size_t>(l)] != 0 ? pb : pc;
      const std::int8_t su = s.uni;
      const auto n = static_cast<std::int32_t>(ib_[static_cast<std::size_t>(l)]);
      for (std::int32_t e = 0; e < n; ++e) {
        const std::size_t k =
            static_cast<std::size_t>(e) * lanes + static_cast<std::size_t>(l);
        d.pay[k] = s.pay[k];
        if (!bothUniSame) {
          d.tag[k] = su >= 0 ? static_cast<std::uint8_t>(su) : s.tag[k];
        }
      }
    }
    // Tags were written at every valid (elem, lane); positions beyond a
    // lane's length are never read, so no materialization pass is needed.
    d.uni = bothUniSame ? pb.uni : -1;
    stats_.stridedRows += static_cast<std::uint64_t>(maxLen);
  }
  for (int l = 0; l < B; ++l) {
    d.len[static_cast<std::size_t>(l)] =
        static_cast<std::int32_t>(ib_[static_cast<std::size_t>(l)]);
  }
  d.lensEqual = lensEq;
}

void BatchTapeExecutor::execGeneric(const TapeInstr& in, std::uint8_t mv) {
  // Per-lane mirror of TapeExecutor::exec — same helper calls, same
  // results. The array ops dispatch to the payload-row movers above;
  // dynamically typed scalar operands take the per-lane Scalar path
  // unchanged.
  const int B = lanes_;
  switch (in.op) {
    case Op::kIte:
      if (in.arrayResult) {
        execArrayIte(in, mv);
        return;
      }
      break;
    case Op::kSelect:
      execArraySelect(in);
      return;
    case Op::kStore:
      execArrayStore(in, mv);
      return;
    default:
      break;
  }
  for (int lane = 0; lane < B; ++lane) {
    switch (in.op) {
      case Op::kNot:
      case Op::kNeg:
      case Op::kAbs:
      case Op::kCast:
        storeScalar(in.dst, lane,
                    applyUnary(in.op, in.type, loadScalar(in.a, lane)));
        break;
      case Op::kIte:  // scalar result with a dynamic operand
        storeScalar(in.dst, lane,
                    (loadScalar(in.a, lane).toBool()
                         ? loadScalar(in.b, lane)
                         : loadScalar(in.c, lane))
                        .castTo(in.type));
        break;
      default:
        storeScalar(in.dst, lane,
                    applyBinary(in.op, loadScalar(in.a, lane),
                                loadScalar(in.b, lane))
                        .castTo(in.type));
        break;
    }
  }
}

void BatchTapeExecutor::execFast(const TapeInstr& in, FastK f) {
  // The tape is SSA, so dst never aliases an operand row.
  const int B = lanes_;
  const LaneKernels& k = *kern_;
  std::uint64_t* d = &vals_[idx(in.dst, 0)];
  const std::uint64_t* a = &vals_[idx(in.a, 0)];
  switch (f) {
    case FastK::kRAdd: k.rAdd(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kRSub: k.rSub(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kRMul: k.rMul(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kRDivG: k.rDivG(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kRFmin: k.rFmin(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kRFmax: k.rFmax(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kRNeg: k.rNeg(d, a, B); break;
    case FastK::kRAbs: k.rAbs(d, a, B); break;
    case FastK::kRCmpLt:
    case FastK::kRCmpLe:
    case FastK::kRCmpGt:
    case FastK::kRCmpGe:
    case FastK::kRCmpEq:
    case FastK::kRCmpNe:
      k.rCmp[static_cast<int>(f) - static_cast<int>(FastK::kRCmpLt)](
          d, a, &vals_[idx(in.b, 0)], B);
      break;
    case FastK::kIAdd: k.iAdd(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kISub: k.iSub(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kIMin: k.iMin(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kIMax: k.iMax(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kINeg: k.iNeg(d, a, B); break;
    case FastK::kIAbs: k.iAbs(d, a, B); break;
    case FastK::kBAnd: k.bAnd(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kBOr: k.bOr(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kBXor: k.bXor(d, a, &vals_[idx(in.b, 0)], B); break;
    case FastK::kBNot: k.bNot(d, a, B); break;
    case FastK::kSel:
      k.sel64(d, a, &vals_[idx(in.b, 0)], &vals_[idx(in.c, 0)], B);
      break;
    case FastK::kCopy:
      std::memcpy(d, a, static_cast<std::size_t>(B) * sizeof(std::uint64_t));
      break;
    case FastK::kNone:
      break;
  }
}

void BatchTapeExecutor::run() {
  requireAllBound();
  const auto& code = tape_->code();
  for (std::size_t i = 0; i < code.size(); ++i) {
    const TapeInstr& in = code[i];
    if (fast_[i] != FastK::kNone) {
      execFast(in, fast_[i]);
      continue;
    }
    switch (kind_[i]) {
      case Kind::kUnary:
        execUnary(in);
        break;
      case Kind::kBinary:
        execBinary(in);
        break;
      case Kind::kBinaryNumDyn:
        execBinaryNumDyn(in, arrMove_[i]);
        break;
      case Kind::kIteScalar:
        execIteScalar(in);
        break;
      case Kind::kGeneric:
        execGeneric(in, arrMove_[i]);
        break;
    }
  }
}

Scalar BatchTapeExecutor::scalar(SlotRef r, int lane) const {
  return loadScalar(r.slot, lane);
}

std::vector<Scalar> BatchTapeExecutor::array(SlotRef r, int lane) const {
  const ArrayPlane& p = planes_[static_cast<std::size_t>(r.slot)];
  const std::int32_t n = p.len[static_cast<std::size_t>(lane)];
  std::vector<Scalar> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int32_t e = 0; e < n; ++e) out.push_back(planeElem(p, e, lane));
  return out;
}

std::size_t BatchTapeExecutor::arrayLen(SlotRef r, int lane) const {
  return static_cast<std::size_t>(
      planes_[static_cast<std::size_t>(r.slot)]
          .len[static_cast<std::size_t>(lane)]);
}

Scalar BatchTapeExecutor::arrayElem(SlotRef r, int lane,
                                    std::size_t i) const {
  return planeElem(planes_[static_cast<std::size_t>(r.slot)],
                   static_cast<std::int32_t>(i), lane);
}

double BatchTapeExecutor::scalarToReal(SlotRef r, int lane) const {
  const std::size_t k = idx(r.slot, lane);
  switch (types_[k]) {
    case Type::kBool:
      return vals_[k] != 0 ? 1.0 : 0.0;
    case Type::kInt:
      return static_cast<double>(static_cast<std::int64_t>(vals_[k]));
    case Type::kReal:
      return bitsReal(vals_[k]);
  }
  return 0.0;
}

bool BatchTapeExecutor::scalarToBool(SlotRef r, int lane) const {
  const std::size_t k = idx(r.slot, lane);
  switch (types_[k]) {
    case Type::kBool:
    case Type::kInt:
      return vals_[k] != 0;
    case Type::kReal:
      return bitsReal(vals_[k]) != 0.0;
  }
  return false;
}

void BatchTapeExecutor::readReals(SlotRef r, double* out) const {
  // Non-dynamic slots hold their static type in every lane (typed kernels
  // store the slot type; the generic path's castTo lands on it too), so
  // the hoisted loadReal equals per-lane scalarToReal. Dynamic (kSelect)
  // slots keep the per-lane tag dispatch.
  if (slotDynamic_[static_cast<std::size_t>(r.slot)] == 0) {
    loadReal(r.slot, out);
    return;
  }
  for (int l = 0; l < lanes_; ++l) out[l] = scalarToReal(r, l);
}

void BatchTapeExecutor::readBools(SlotRef r, std::uint64_t* out) const {
  if (slotDynamic_[static_cast<std::size_t>(r.slot)] == 0) {
    loadBool(r.slot, out);
    return;
  }
  for (int l = 0; l < lanes_; ++l) out[l] = scalarToBool(r, l) ? 1 : 0;
}

}  // namespace stcg::expr
