#include "expr/tape.h"

#include <algorithm>
#include <cstring>

#include "expr/builder.h"

namespace stcg::expr {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
  return h;
}

std::uint64_t scalarBits(const Scalar& s) {
  switch (s.type()) {
    case Type::kBool:
      return s.asBool() ? 1 : 0;
    case Type::kInt:
      return static_cast<std::uint64_t>(s.asInt());
    case Type::kReal: {
      std::uint64_t bits = 0;
      const double d = s.asReal();
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      return bits;
    }
  }
  return 0;
}

std::uint64_t constKey(const Scalar& s) {
  return mix(static_cast<std::uint64_t>(s.type()) + 1, scalarBits(s));
}

std::uint64_t varKey(VarId var, Type type) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(var)) << 3) |
         static_cast<std::uint64_t>(type);
}

std::uint64_t instrKey(const TapeInstr& in) {
  std::uint64_t h = mix(static_cast<std::uint64_t>(in.op),
                        static_cast<std::uint64_t>(in.type));
  h = mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(in.a)));
  h = mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(in.b)));
  h = mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(in.c)));
  return h;
}

}  // namespace

void Tape::recomputeCones() {
  // Dirty cones: propagate per-slot variable-dependency bitsets through
  // the (topologically ordered) code, then invert into per-variable
  // ascending instruction lists. Exact for single-assignment tapes and
  // for pass-pipeline tapes whose shared slots have equal-dependency
  // writers (the only sharing the linear-scan reallocator performs).
  cones_.clear();
  maxConeSize_ = 0;
  std::vector<VarId> vars;
  for (const auto& b : varBindings_) vars.push_back(b.var);
  for (const auto& b : arrayBindings_) vars.push_back(b.var);
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  const std::size_t nVars = vars.size();
  const std::size_t words = (nVars + 63) / 64;
  const auto varIndex = [&](VarId v) {
    return static_cast<std::size_t>(
        std::lower_bound(vars.begin(), vars.end(), v) - vars.begin());
  };

  std::vector<std::uint64_t> sdeps(scalarInit_.size() * words, 0);
  std::vector<std::uint64_t> adeps(arrayInit_.size() * words, 0);
  const auto depWord = [&](std::vector<std::uint64_t>& v, std::int32_t slot) {
    return v.data() + static_cast<std::size_t>(slot) * words;
  };
  for (const auto& b : varBindings_) {
    const std::size_t i = varIndex(b.var);
    depWord(sdeps, b.slot)[i / 64] |= 1ULL << (i % 64);
  }
  for (const auto& b : arrayBindings_) {
    const std::size_t i = varIndex(b.var);
    depWord(adeps, b.slot)[i / 64] |= 1ULL << (i % 64);
  }

  std::vector<std::vector<std::int32_t>> cones(nVars);
  for (std::size_t idx = 0; idx < code_.size(); ++idx) {
    const TapeInstr& in = code_[idx];
    std::uint64_t* dst =
        in.arrayResult ? depWord(adeps, in.dst) : depWord(sdeps, in.dst);
    forEachTapeOperand(in, [&](std::int32_t slot, bool isArray) {
      const std::uint64_t* src =
          isArray ? depWord(adeps, slot) : depWord(sdeps, slot);
      for (std::size_t w = 0; w < words; ++w) dst[w] |= src[w];
    });
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = dst[w];
      while (bits != 0) {
        const auto bit = static_cast<std::size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        cones[w * 64 + bit].push_back(static_cast<std::int32_t>(idx));
      }
    }
  }
  for (std::size_t i = 0; i < nVars; ++i) {
    maxConeSize_ = std::max(maxConeSize_, cones[i].size());
    cones_.emplace_back(vars[i], std::move(cones[i]));
  }
}

const std::vector<std::int32_t>* Tape::coneOf(VarId var) const {
  const auto it = std::lower_bound(
      cones_.begin(), cones_.end(), var,
      [](const auto& entry, VarId v) { return entry.first < v; });
  if (it == cones_.end() || it->first != var) return nullptr;
  return &it->second;
}

SlotRef TapeBuilder::addRoot(const ExprPtr& e) {
  if (tape_ == nullptr) {
    throw EvalError("TapeBuilder::addRoot after finish()");
  }
  tape_->pinnedRoots_.push_back(e);
  const SlotRef r = emitDag(e.get());
  tape_->rootSlots_.push_back(r);
  return r;
}

SlotRef TapeBuilder::slotOf(const Expr* e) const {
  const auto it = memo_.find(e);
  if (it == memo_.end()) {
    throw EvalError("TapeBuilder::slotOf on a node no root reaches (op " +
                    std::string(opName(e->op)) + ")");
  }
  return it->second;
}

SlotRef TapeBuilder::emitDag(const Expr* root) {
  // Iterative post-order so arbitrarily deep towers (the SLDV-like
  // baseline's unrollings) cannot overflow the stack.
  struct Frame {
    const Expr* e;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  if (memo_.find(root) == memo_.end()) stack.push_back({root});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next < f.e->args.size()) {
      const Expr* child = f.e->args[f.next].get();
      ++f.next;
      if (memo_.find(child) == memo_.end()) stack.push_back({child});
      continue;
    }
    if (memo_.find(f.e) == memo_.end()) memo_.emplace(f.e, assignSlot(f.e));
    stack.pop_back();
  }
  return memo_.at(root);
}

std::int32_t TapeBuilder::newScalarSlot(const Scalar& init) {
  tape_->scalarInit_.push_back(init);
  return static_cast<std::int32_t>(tape_->scalarInit_.size() - 1);
}

std::int32_t TapeBuilder::newArraySlot(std::vector<Scalar> init) {
  tape_->arrayInit_.push_back(std::move(init));
  return static_cast<std::int32_t>(tape_->arrayInit_.size() - 1);
}

SlotRef TapeBuilder::assignSlot(const Expr* e) {
  switch (e->op) {
    case Op::kConst: {
      const std::uint64_t key = constKey(e->constVal);
      if (const auto it = constSlots_.find(key); it != constSlots_.end()) {
        // Verify against the stored value: on the (astronomically rare)
        // hash collision we allocate a fresh slot instead of merging.
        const auto& cur =
            tape_->scalarInit_[static_cast<std::size_t>(it->second)];
        if (cur == e->constVal) return {it->second, false};
      }
      const std::int32_t slot = newScalarSlot(e->constVal);
      tape_->constScalarSlots_.push_back(slot);
      constSlots_.emplace(key, slot);
      return {slot, false};
    }
    case Op::kConstArray: {
      // Array constants are deduplicated by node identity only (memo_);
      // structurally equal duplicates are rare enough not to chase.
      const std::int32_t slot = newArraySlot(e->constArray);
      tape_->constArraySlots_.push_back(slot);
      return {slot, true};
    }
    case Op::kVar: {
      const std::uint64_t key = varKey(e->var, e->type);
      if (const auto it = varSlots_.find(key); it != varSlots_.end()) {
        return {it->second, false};
      }
      const std::int32_t slot = newScalarSlot(Scalar::i(0));
      tape_->varBindings_.push_back(
          {e->var, e->type, slot, e->varName, e->varLo, e->varHi});
      varSlots_.emplace(key, slot);
      return {slot, false};
    }
    case Op::kVarArray: {
      if (const auto it = arrayVarSlots_.find(e->var);
          it != arrayVarSlots_.end()) {
        return {it->second, true};
      }
      const std::int32_t slot = newArraySlot({});
      tape_->arrayBindings_.push_back(
          {e->var, e->type, e->arraySize, slot, e->varName});
      arrayVarSlots_.emplace(e->var, slot);
      return {slot, true};
    }
    default:
      break;
  }

  TapeInstr in;
  in.op = e->op;
  in.type = e->type;
  in.arrayResult = e->isArray();
  const auto slotOfArg = [&](std::size_t i) {
    return memo_.at(e->args[i].get()).slot;
  };
  in.a = slotOfArg(0);
  if (e->args.size() > 1) in.b = slotOfArg(1);
  if (e->args.size() > 2) in.c = slotOfArg(2);

  // Value numbering: structurally identical computations over identical
  // operand slots collapse to one instruction, across all roots.
  const std::uint64_t key = instrKey(in);
  auto& bucket = instrBuckets_[key];
  for (const std::int32_t idx : bucket) {
    const TapeInstr& prev = tape_->code_[static_cast<std::size_t>(idx)];
    if (sameTapeComputation(prev, in)) return {prev.dst, prev.arrayResult};
  }
  in.dst = in.arrayResult ? newArraySlot({}) : newScalarSlot(Scalar::i(0));
  bucket.push_back(static_cast<std::int32_t>(tape_->code_.size()));
  tape_->code_.push_back(in);
  return {in.dst, in.arrayResult};
}

std::shared_ptr<const Tape> TapeBuilder::finish() {
  if (tape_ == nullptr) throw EvalError("TapeBuilder::finish called twice");
  Tape& t = *tape_;
  std::sort(t.varBindings_.begin(), t.varBindings_.end(),
            [](const TapeVarBinding& x, const TapeVarBinding& y) {
              return x.var != y.var ? x.var < y.var : x.type < y.type;
            });
  std::sort(t.arrayBindings_.begin(), t.arrayBindings_.end(),
            [](const TapeArrayBinding& x, const TapeArrayBinding& y) {
              return x.var < y.var;
            });

  t.recomputeCones();

  std::shared_ptr<const Tape> out = std::move(tape_);
  tape_ = nullptr;
  return out;
}

TapeExecutor::TapeExecutor(std::shared_ptr<const Tape> tape)
    : tape_(std::move(tape)),
      scalars_(tape_->scalarInit()),
      arrays_(tape_->arrayInit()),
      varBound_(tape_->varBindings().size(), false),
      arrayBound_(tape_->arrayBindings().size(), false) {}

void TapeExecutor::setVar(VarId id, const Scalar& v) {
  const auto& bindings = tape_->varBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeVarBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    scalars_[static_cast<std::size_t>(it->slot)] = v.castTo(it->type);
    varBound_[static_cast<std::size_t>(it - bindings.begin())] = true;
  }
}

void TapeExecutor::setArrayVar(VarId id, const std::vector<Scalar>& v) {
  const auto& bindings = tape_->arrayBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeArrayBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    arrays_[static_cast<std::size_t>(it->slot)] = v;
    arrayBound_[static_cast<std::size_t>(it - bindings.begin())] = true;
  }
}

void TapeExecutor::bindEnv(const Env& env) {
  for (const auto& b : tape_->varBindings()) {
    if (env.has(b.var)) setVar(b.var, env.get(b.var));
  }
  for (const auto& b : tape_->arrayBindings()) {
    if (env.hasArray(b.var)) setArrayVar(b.var, env.getArray(b.var));
  }
}

void TapeExecutor::requireAllBound() {
  if (checkedBound_) return;
  const auto& vb = tape_->varBindings();
  for (std::size_t i = 0; i < vb.size(); ++i) {
    if (!varBound_[i]) {
      throw EvalError("unbound variable '" + vb[i].name + "' (id " +
                      std::to_string(vb[i].var) + ") during tape execution");
    }
  }
  const auto& ab = tape_->arrayBindings();
  for (std::size_t i = 0; i < ab.size(); ++i) {
    if (!arrayBound_[i]) {
      throw EvalError("unbound array variable '" + ab[i].name + "' (id " +
                      std::to_string(ab[i].var) + ") during tape execution");
    }
  }
  checkedBound_ = true;
}

void TapeExecutor::exec(const TapeInstr& in) {
  // Semantics mirror Evaluator::scalarRec / arrayRec exactly (same
  // applyUnary/applyBinary/castTo calls in the same order) so tape values
  // are bit-identical to the tree oracle's.
  switch (in.op) {
    case Op::kNot:
    case Op::kNeg:
    case Op::kAbs:
    case Op::kCast:
      scalars_[static_cast<std::size_t>(in.dst)] = applyUnary(
          in.op, in.type, scalars_[static_cast<std::size_t>(in.a)]);
      break;
    case Op::kIte:
      if (in.arrayResult) {
        arrays_[static_cast<std::size_t>(in.dst)] =
            scalars_[static_cast<std::size_t>(in.a)].toBool()
                ? arrays_[static_cast<std::size_t>(in.b)]
                : arrays_[static_cast<std::size_t>(in.c)];
      } else {
        scalars_[static_cast<std::size_t>(in.dst)] =
            (scalars_[static_cast<std::size_t>(in.a)].toBool()
                 ? scalars_[static_cast<std::size_t>(in.b)]
                 : scalars_[static_cast<std::size_t>(in.c)])
                .castTo(in.type);
      }
      break;
    case Op::kSelect: {
      const auto& arr = arrays_[static_cast<std::size_t>(in.a)];
      auto i = scalars_[static_cast<std::size_t>(in.b)].toInt();
      const auto n = static_cast<std::int64_t>(arr.size());
      if (i < 0) i = 0;
      if (i >= n) i = n - 1;
      scalars_[static_cast<std::size_t>(in.dst)] =
          arr[static_cast<std::size_t>(i)];
      break;
    }
    case Op::kStore: {
      auto& dst = arrays_[static_cast<std::size_t>(in.dst)];
      dst = arrays_[static_cast<std::size_t>(in.a)];
      auto i = scalars_[static_cast<std::size_t>(in.b)].toInt();
      const auto v =
          scalars_[static_cast<std::size_t>(in.c)].castTo(in.type);
      const auto n = static_cast<std::int64_t>(dst.size());
      if (i < 0) i = 0;
      if (i >= n) i = n - 1;
      dst[static_cast<std::size_t>(i)] = v;
      break;
    }
    default:
      scalars_[static_cast<std::size_t>(in.dst)] =
          applyBinary(in.op, scalars_[static_cast<std::size_t>(in.a)],
                      scalars_[static_cast<std::size_t>(in.b)])
              .castTo(in.type);
      break;
  }
}

void TapeExecutor::run() {
  requireAllBound();
  for (const TapeInstr& in : tape_->code()) exec(in);
}

void TapeExecutor::runCone(VarId id) {
  requireAllBound();
  const auto* cone = tape_->coneOf(id);
  if (cone == nullptr) return;
  const auto& code = tape_->code();
  for (const std::int32_t idx : *cone) {
    exec(code[static_cast<std::size_t>(idx)]);
  }
}

}  // namespace stcg::expr
