#include "expr/atoms.h"

#include <unordered_set>

namespace stcg::expr {

bool isAtom(const ExprPtr& e) {
  if (e->type != Type::kBool) return false;
  switch (e->op) {
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kNot:
    case Op::kIte:
      return false;
    case Op::kConst:
      return false;  // constants are not conditions
    default:
      return true;
  }
}

namespace {

void extractRec(const ExprPtr& e, std::unordered_set<const Expr*>& seen,
                std::vector<ExprPtr>& out) {
  if (!seen.insert(e.get()).second) return;
  switch (e->op) {
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
      extractRec(e->args[0], seen, out);
      extractRec(e->args[1], seen, out);
      return;
    case Op::kNot:
      extractRec(e->args[0], seen, out);
      return;
    case Op::kIte:
      // A boolean ITE contributes its condition and both branches.
      if (e->type == Type::kBool) {
        extractRec(e->args[0], seen, out);
        extractRec(e->args[1], seen, out);
        extractRec(e->args[2], seen, out);
        return;
      }
      break;
    default:
      break;
  }
  if (isAtom(e)) out.push_back(e);
}

}  // namespace

std::vector<ExprPtr> extractAtoms(const ExprPtr& e) {
  std::unordered_set<const Expr*> seen;
  std::vector<ExprPtr> out;
  extractRec(e, seen, out);
  return out;
}

}  // namespace stcg::expr
