// Concrete evaluation of expression DAGs.
//
// An Env assigns scalar values to variable ids; the Evaluator computes node
// values bottom-up with per-node memoization, so shared subexpressions are
// evaluated once per step.
#pragma once

#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "expr/expr.h"

namespace stcg::expr {

/// Thrown on evaluation errors that a well-formed model can never hit:
/// unbound variables, array/scalar misuse. Carries the offending
/// variable or op name in the message so diagnostics can point at the
/// model element instead of an assert line.
class EvalError : public std::runtime_error {
 public:
  explicit EvalError(const std::string& what) : std::runtime_error(what) {}
};

/// Variable assignment: var id -> scalar value.
class Env {
 public:
  /// Pre-size the scalar binding tables for ids in [0, nVars). set() grows
  /// them one id at a time otherwise — a hot-loop cost when binding a full
  /// model environment per step; callers that know the compiled model's
  /// variable count should reserve once up front.
  void reserve(std::size_t nVars);

  void set(VarId id, Scalar v);
  [[nodiscard]] bool has(VarId id) const;
  [[nodiscard]] const Scalar& get(VarId id) const;

  /// Array-typed bindings (state arrays: delay buffers, data stores).
  void setArray(VarId id, std::vector<Scalar> v);
  [[nodiscard]] bool hasArray(VarId id) const;
  [[nodiscard]] const std::vector<Scalar>& getArray(VarId id) const;

  void clear();

  [[nodiscard]] std::size_t size() const { return count_; }

 private:
  std::vector<Scalar> vals_;
  std::vector<bool> present_;
  std::vector<std::shared_ptr<const std::vector<Scalar>>> arrays_;
  std::size_t count_ = 0;

  friend class Evaluator;
};

/// Evaluates expressions under a fixed Env. Memoization lives for the
/// lifetime of the Evaluator, so build one per simulation step.
class Evaluator {
 public:
  explicit Evaluator(const Env& env) : env_(&env) {}

  /// Evaluate a scalar-typed expression. Throws EvalError on array-typed
  /// input or an unbound variable.
  [[nodiscard]] Scalar evalScalar(const ExprPtr& e);

  /// Evaluate an array-typed expression into its element list. Throws
  /// EvalError on scalar-typed input or an unbound array variable.
  [[nodiscard]] std::vector<Scalar> evalArray(const ExprPtr& e);

  /// Number of distinct roots currently pinned (regression hook: reusing
  /// one evaluator across many calls on the same root must not grow this).
  [[nodiscard]] std::size_t pinnedRootCount() const {
    return pinnedRoots_.size();
  }

 private:
  using ArrayVal = std::shared_ptr<const std::vector<Scalar>>;

  Scalar scalarRec(const Expr* e);
  ArrayVal arrayRec(const Expr* e);

  const Env* env_;
  std::unordered_map<const Expr*, Scalar> scalarMemo_;
  std::unordered_map<const Expr*, ArrayVal> arrayMemo_;
  // Memo entries are keyed by node address; pinning evaluated roots keeps
  // every memoized node alive, so addresses cannot be recycled between
  // calls on the same evaluator. Deduplicated by address: re-evaluating
  // the same root must not grow the pin list without bound.
  std::vector<ExprPtr> pinnedRoots_;
  std::unordered_set<const Expr*> pinnedSet_;
};

/// Convenience: evaluate `e` (scalar) under `env` in one call.
[[nodiscard]] Scalar evaluate(const ExprPtr& e, const Env& env);

}  // namespace stcg::expr
