// S-expression serialization of expression DAGs.
//
// Used by the model serializer for chart guards and actions. Variables are
// written as (var NAME) and resolved on parse through a caller-supplied
// resolver (the chart builder's input/local leaves, for instance).
//
// Grammar:
//   expr   := (b true|false) | (i INT) | (r REAL)
//           | (array TYPE ELEM...) | (var NAME)
//           | (OP expr...)
//   OP     := + - * / % min max neg abs
//           | < <= > >= == != and or xor not
//           | ite select store cast-bool cast-int cast-real
#pragma once

#include <functional>
#include <stdexcept>
#include <string>

#include "expr/expr.h"

namespace stcg::expr {

/// Thrown on malformed input or unresolvable variables.
class SexprError : public std::runtime_error {
 public:
  explicit SexprError(const std::string& what) : std::runtime_error(what) {}
};

/// Render `e` as a single-line s-expression. Variable leaves are written
/// by name; the caller must guarantee names are resolvable on the way
/// back. Names containing whitespace or parentheses are rejected.
[[nodiscard]] std::string toSexpr(const ExprPtr& e);

/// Resolve a variable name to its leaf expression.
using VarResolver = std::function<ExprPtr(const std::string&)>;

/// Parse an s-expression produced by toSexpr. `resolve` supplies variable
/// leaves; it should throw (or return nullptr, which is converted to a
/// SexprError) for unknown names.
[[nodiscard]] ExprPtr parseSexpr(const std::string& text,
                                 const VarResolver& resolve);

}  // namespace stcg::expr
