// Static verification of compiled tapes.
//
// Every engine — TapeExecutor, IntervalTapeExecutor, DistanceTape,
// BatchTapeExecutor — trusts structural invariants of the tape it runs:
// operand slots are in bounds and defined before use, constant and
// variable slots are never clobbered, each instruction's result type
// obeys the applyUnary/applyBinary contract the batch executor's typed
// lane kernels assume, every root names a defined slot, each variable's
// dirty cone is exactly the instructions transitively reading it, and
// physical slot sharing (introduced by the optimizer's linear-scan
// reallocation) is cone-coherent. Until now those invariants were only
// exercised dynamically by differential fuzz; verifyTape() proves them
// statically, with one typed finding per violation, so a corrupted or
// mis-optimized tape is rejected before an executor ever runs it — and
// so the planned tape->native JIT has a checked IR to emit from.
//
// Findings carry stable kebab-case ids (tapeIssueCheckId) surfaced
// through `stcg_cli lint --tape`. requireVerifiedTape() throws EvalError
// on the first error-severity finding; producers call
// maybeRequireVerifiedTape(), which is a no-op unless assertions are on
// (!NDEBUG) or STCG_TAPE_VERIFY=1 is set in the environment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "expr/tape.h"

namespace stcg::expr {

enum class TapeIssueKind {
  kSlotBounds,      // operand/dst slot outside its space, or bad shape
  kUseBeforeDef,    // operand slot read before any write reaches it
  kConstClobbered,  // instruction writes a constant or variable slot
  kTypeMismatch,    // result type breaks the typed-lane contract
  kRootUndefined,   // root slot invalid or never defined
  kStaleCone,       // recorded cones differ from the recomputed ones
  kUnsafeSharing,   // multi-writer slot violating cone coherence
  kCseDuplicate,    // two live pure instructions with identical operands
};

/// Stable kebab-case check id for lint / JSON output ("tape-stale-cone").
[[nodiscard]] const char* tapeIssueCheckId(TapeIssueKind k);

/// True for kinds that make execution unsound; kCseDuplicate is a missed
/// optimization, not a soundness hole.
[[nodiscard]] bool tapeIssueIsError(TapeIssueKind k);

struct TapeIssue {
  TapeIssueKind kind = TapeIssueKind::kSlotBounds;
  std::int32_t instr = -1;  // offending instruction index, -1 = tape-level
  std::string message;
};

struct TapeVerifyResult {
  std::vector<TapeIssue> issues;

  [[nodiscard]] bool ok() const { return issues.empty(); }
  [[nodiscard]] bool hasErrors() const;
  /// One "id [#instr]: message" line per issue.
  [[nodiscard]] std::string render() const;
};

/// The static type model of BatchTapeExecutor's lane layout: per scalar
/// slot its compile-time payload type (or "dynamic" for kSelect results
/// over arrays without a statically uniform element type), per array slot
/// whether its element type is statically uniform. The verifier checks
/// tapes against this model; the optimizer uses it to keep rewrites
/// representation-preserving. Multi-writer slots are well-defined only on
/// tapes where all writers agree (which the verifier checks).
struct TapeStaticTypes {
  std::vector<Type> scalarType;
  std::vector<std::uint8_t> scalarDynamic;  // 1 = per-lane type may vary
  std::vector<std::uint8_t> arrayUniform;   // 1 = element type is static
  std::vector<Type> arrayElemType;          // valid where arrayUniform
};

[[nodiscard]] TapeStaticTypes analyzeTapeStaticTypes(const Tape& t);

/// Run every static check against `t`. Never throws.
[[nodiscard]] TapeVerifyResult verifyTape(const Tape& t);

/// Throws EvalError("<what>: <first error finding>") when verifyTape
/// reports an error-severity issue.
void requireVerifiedTape(const Tape& t, const char* what);

/// True in !NDEBUG builds, or when STCG_TAPE_VERIFY is set to anything
/// but "0" (checked once per process).
[[nodiscard]] bool tapeVerifyEnabled();

/// requireVerifiedTape gated on tapeVerifyEnabled() — what every tape
/// producer calls on each tape it builds or optimizes.
void maybeRequireVerifiedTape(const Tape& t, const char* what);

}  // namespace stcg::expr
