// Tape-compiled evaluation: the expression DAG flattened into a linear
// instruction tape over dense value slots.
//
// The recursive Evaluator pays a pointer chase, a hash-map memo lookup and
// a call frame per DAG node per evaluation. The tape pays all of that once,
// at compile time: a TapeBuilder topologically sorts the DAG into an
// instruction sequence (one instruction per distinct computation, global
// value-numbering CSE across every root added), after which evaluation is a
// single non-recursive switch loop over dense slot vectors — no shared_ptr
// dereferences, no memo hashing, no recursion.
//
// Three engines execute the same tape:
//   - TapeExecutor (here): concrete Scalar slots, bit-identical to the
//     tree Evaluator (same applyUnary/applyBinary/castTo calls in the same
//     order, same guarded kDiv/kMod and clamped kSelect/kStore semantics).
//   - analysis::IntervalTapeExecutor: interval slots, mirroring
//     IntervalEvaluator (the abstract domain of the reachability pass).
//   - solver::DistanceTape: a branch-distance overlay for local search.
//
// Incremental re-evaluation: finish() precomputes, per variable, the
// ascending list of instructions whose result transitively depends on that
// variable (its "dirty cone"). Rebinding one variable and replaying only
// its cone — runCone() — recomputes exactly the affected slots, which is
// what makes tape-backed local search fast: one mutated input re-executes
// a handful of instructions instead of the whole model.
//
// Strictness note: the tree Evaluator throws on an *unbound variable it
// reaches* (kIte arms are lazy); the tape binds eagerly, so run() requires
// every variable of the tape to be bound and throws EvalError otherwise.
// All production callers (simulator, solvers) bind complete environments,
// where the two semantics coincide.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/eval.h"
#include "expr/expr.h"

namespace stcg::expr {

/// Reference to one tape slot. Scalar and array slots live in disjoint
/// dense index spaces; isArray selects the space.
struct SlotRef {
  std::int32_t slot = -1;
  bool isArray = false;

  [[nodiscard]] bool valid() const { return slot >= 0; }
};

class TapeRewriter;

/// One tape instruction. Operand meaning depends on op:
///   unary (kNot/kNeg/kAbs/kCast)  a = scalar operand
///   binary arith/rel/bool         a, b = scalar operands
///   kIte, scalar result           a = cond, b = then, c = else (scalars)
///   kIte, array result            a = cond (scalar), b/c = arrays
///   kSelect                       a = array, b = index (scalar)
///   kStore                        a = base array, b = index, c = value
/// dst indexes the scalar or array slot space according to arrayResult.
struct TapeInstr {
  Op op = Op::kConst;
  Type type = Type::kReal;  // result type (cast target, as on the DAG node)
  bool arrayResult = false;
  std::int32_t dst = -1;
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::int32_t c = -1;
};

/// A scalar variable's slot: one per distinct (VarId, node type) pair.
/// Binding writes value.castTo(type) into the slot — the same coercion the
/// tree Evaluator applies at every kVar visit.
struct TapeVarBinding {
  VarId var = -1;
  Type type = Type::kReal;
  std::int32_t slot = -1;
  std::string name;
  double lo = 0.0, hi = 0.0;  // declared domain (interval-engine default)
};

/// An array variable's slot (one per VarId).
struct TapeArrayBinding {
  VarId var = -1;
  Type type = Type::kReal;
  int size = 0;
  std::int32_t slot = -1;
  std::string name;
};

/// The immutable compiled tape. Built by TapeBuilder, shared by executors.
class Tape {
 public:
  [[nodiscard]] const std::vector<TapeInstr>& code() const { return code_; }
  [[nodiscard]] std::size_t scalarSlotCount() const {
    return scalarInit_.size();
  }
  [[nodiscard]] std::size_t arraySlotCount() const {
    return arrayInit_.size();
  }

  /// Initial slot images: constants hold their value (never overwritten);
  /// variable and temporary slots hold zero / empty until bound/computed.
  [[nodiscard]] const std::vector<Scalar>& scalarInit() const {
    return scalarInit_;
  }
  [[nodiscard]] const std::vector<std::vector<Scalar>>& arrayInit() const {
    return arrayInit_;
  }
  /// Scalar/array slots holding kConst / kConstArray leaves.
  [[nodiscard]] const std::vector<std::int32_t>& constScalarSlots() const {
    return constScalarSlots_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& constArraySlots() const {
    return constArraySlots_;
  }

  /// Variable bindings, sorted by (var, type) / var.
  [[nodiscard]] const std::vector<TapeVarBinding>& varBindings() const {
    return varBindings_;
  }
  [[nodiscard]] const std::vector<TapeArrayBinding>& arrayBindings() const {
    return arrayBindings_;
  }

  /// Ascending instruction indices transitively affected by `var`
  /// (scalar or array variable), or nullptr when the tape has no such
  /// variable / nothing depends on it.
  [[nodiscard]] const std::vector<std::int32_t>* coneOf(VarId var) const;

  /// Every dirty cone, sorted by VarId (verifier / pass-pipeline input).
  [[nodiscard]] const std::vector<std::pair<VarId, std::vector<std::int32_t>>>&
  cones() const {
    return cones_;
  }

  /// Largest dirty-cone size (diagnostics / bench reporting).
  [[nodiscard]] std::size_t maxConeSize() const { return maxConeSize_; }

  /// Slots handed out by TapeBuilder::addRoot, in call order (duplicates
  /// kept). These are the externally visible reads the optimizer must
  /// keep live; producers with extra out-of-tape reads (the distance
  /// overlay) pass those separately.
  [[nodiscard]] const std::vector<SlotRef>& rootSlots() const {
    return rootSlots_;
  }

 private:
  friend class TapeBuilder;
  friend class TapeRewriter;

  /// Re-derive cones_ / maxConeSize_ from code_ and the bindings (the
  /// algorithm TapeBuilder::finish runs; the pass pipeline reruns it
  /// after rewriting the code).
  void recomputeCones();

  std::vector<TapeInstr> code_;
  std::vector<Scalar> scalarInit_;
  std::vector<std::vector<Scalar>> arrayInit_;
  std::vector<std::int32_t> constScalarSlots_;
  std::vector<std::int32_t> constArraySlots_;
  std::vector<TapeVarBinding> varBindings_;
  std::vector<TapeArrayBinding> arrayBindings_;
  std::vector<SlotRef> rootSlots_;
  // Sorted by VarId; cones hold ascending instruction indices.
  std::vector<std::pair<VarId, std::vector<std::int32_t>>> cones_;
  std::size_t maxConeSize_ = 0;
  // Roots pinned so slot-keyed references can never dangle (mirrors the
  // Evaluator's pinnedRoots_ contract).
  std::vector<ExprPtr> pinnedRoots_;
};

/// Visit each operand slot of `in` as fn(slot, isArray). Shared by the
/// cone computation, the verifier and the optimizer passes.
template <typename Fn>
void forEachTapeOperand(const TapeInstr& in, Fn&& fn) {
  switch (in.op) {
    case Op::kNot:
    case Op::kNeg:
    case Op::kAbs:
    case Op::kCast:
      fn(in.a, false);
      break;
    case Op::kIte:
      fn(in.a, false);
      fn(in.b, in.arrayResult);
      fn(in.c, in.arrayResult);
      break;
    case Op::kSelect:
      fn(in.a, true);
      fn(in.b, false);
      break;
    case Op::kStore:
      fn(in.a, true);
      fn(in.b, false);
      fn(in.c, false);
      break;
    default:  // binary scalar ops
      fn(in.a, false);
      fn(in.b, false);
      break;
  }
}

/// Structural identity: same op, result type/space and operand slots —
/// the value-numbering equivalence the builder's CSE collapses on.
[[nodiscard]] inline bool sameTapeComputation(const TapeInstr& x,
                                              const TapeInstr& y) {
  return x.op == y.op && x.type == y.type && x.arrayResult == y.arrayResult &&
         x.a == y.a && x.b == y.b && x.c == y.c;
}

/// Compiles expression DAGs into a Tape. Add every root first (CSE is
/// global across roots), then finish() — the builder is spent afterwards.
class TapeBuilder {
 public:
  /// Emit `e` (and its whole DAG) onto the tape; returns its slot.
  SlotRef addRoot(const ExprPtr& e);

  /// Slot of an already-emitted node (any node reachable from a root).
  /// Throws EvalError if `e` was never emitted.
  [[nodiscard]] SlotRef slotOf(const Expr* e) const;

  /// Seal the tape: computes per-variable dirty cones. The builder must
  /// not be reused afterwards.
  [[nodiscard]] std::shared_ptr<const Tape> finish();

 private:
  SlotRef emitDag(const Expr* root);
  SlotRef assignSlot(const Expr* e);
  std::int32_t newScalarSlot(const Scalar& init);
  std::int32_t newArraySlot(std::vector<Scalar> init);

  std::shared_ptr<Tape> tape_ = std::make_shared<Tape>();
  std::unordered_map<const Expr*, SlotRef> memo_;
  // Value-numbering tables (global CSE): constants by (type, payload
  // bits), scalar vars by (var, type), array vars by var, instructions by
  // (op, type, operand slots).
  std::unordered_map<std::uint64_t, std::int32_t> constSlots_;
  std::unordered_map<std::uint64_t, std::int32_t> varSlots_;
  std::unordered_map<std::int64_t, std::int32_t> arrayVarSlots_;
  std::unordered_map<std::uint64_t, std::vector<std::int32_t>> instrBuckets_;
};

/// Executes a Tape over concrete Scalar slots. Bind every variable the
/// tape mentions (setVar/setArrayVar/bindEnv), then run(); read results
/// through scalar()/array() using the SlotRefs returned at build time.
class TapeExecutor {
 public:
  explicit TapeExecutor(std::shared_ptr<const Tape> tape);

  /// Bind a scalar variable (all its typed slots). Ids the tape does not
  /// mention are ignored — environments may bind more than the tape uses.
  void setVar(VarId id, const Scalar& v);
  void setArrayVar(VarId id, const std::vector<Scalar>& v);

  /// Bind every tape variable present in `env` (missing ones stay
  /// unbound and run() will throw).
  void bindEnv(const Env& env);

  /// Execute the full tape. Throws EvalError naming the first unbound
  /// variable (checked once; later runs skip the scan).
  void run();

  /// Re-execute only the instructions depending on `id` — the dirty cone.
  /// Requires a prior full run() with all variables bound.
  void runCone(VarId id);

  [[nodiscard]] const Scalar& scalar(SlotRef r) const {
    return scalars_[static_cast<std::size_t>(r.slot)];
  }
  [[nodiscard]] const std::vector<Scalar>& array(SlotRef r) const {
    return arrays_[static_cast<std::size_t>(r.slot)];
  }

  [[nodiscard]] const Tape& tape() const { return *tape_; }

 private:
  void exec(const TapeInstr& in);
  void requireAllBound();

  std::shared_ptr<const Tape> tape_;
  std::vector<Scalar> scalars_;
  std::vector<std::vector<Scalar>> arrays_;
  std::vector<bool> varBound_;    // parallel to tape varBindings()
  std::vector<bool> arrayBound_;  // parallel to tape arrayBindings()
  bool checkedBound_ = false;
};

}  // namespace stcg::expr
