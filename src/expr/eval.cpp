#include "expr/eval.h"

#include <cassert>

#include "expr/builder.h"

namespace stcg::expr {

void Env::reserve(std::size_t nVars) {
  if (nVars > vals_.size()) {
    vals_.resize(nVars);
    present_.resize(nVars, false);
  }
}

void Env::set(VarId id, Scalar v) {
  assert(id >= 0);
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= vals_.size()) {
    vals_.resize(idx + 1);
    present_.resize(idx + 1, false);
  }
  if (!present_[idx]) ++count_;
  vals_[idx] = v;
  present_[idx] = true;
}

bool Env::has(VarId id) const {
  const auto idx = static_cast<std::size_t>(id);
  return id >= 0 && idx < present_.size() && present_[idx];
}

const Scalar& Env::get(VarId id) const {
  assert(has(id));
  return vals_[static_cast<std::size_t>(id)];
}

void Env::setArray(VarId id, std::vector<Scalar> v) {
  assert(id >= 0);
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= arrays_.size()) arrays_.resize(idx + 1);
  arrays_[idx] = std::make_shared<const std::vector<Scalar>>(std::move(v));
}

bool Env::hasArray(VarId id) const {
  const auto idx = static_cast<std::size_t>(id);
  return id >= 0 && idx < arrays_.size() && arrays_[idx] != nullptr;
}

const std::vector<Scalar>& Env::getArray(VarId id) const {
  assert(hasArray(id));
  return *arrays_[static_cast<std::size_t>(id)];
}

void Env::clear() {
  vals_.clear();
  present_.clear();
  arrays_.clear();
  count_ = 0;
}

Scalar Evaluator::evalScalar(const ExprPtr& e) {
  // Invariant: callers hand scalar-typed roots here, array roots to
  // evalArray. Enforced by throwing (not assert) so release builds and
  // the lint-driven diagnostics see the same behaviour.
  if (e->isArray()) {
    throw EvalError("evalScalar on array-typed expression (op " +
                    std::string(opName(e->op)) + ")");
  }
  if (pinnedSet_.insert(e.get()).second) pinnedRoots_.push_back(e);
  return scalarRec(e.get());
}

std::vector<Scalar> Evaluator::evalArray(const ExprPtr& e) {
  // Invariant: see evalScalar.
  if (!e->isArray()) {
    throw EvalError("evalArray on scalar-typed expression (op " +
                    std::string(opName(e->op)) + ")");
  }
  if (pinnedSet_.insert(e.get()).second) pinnedRoots_.push_back(e);
  return *arrayRec(e.get());
}

Scalar Evaluator::scalarRec(const Expr* e) {
  if (auto it = scalarMemo_.find(e); it != scalarMemo_.end()) {
    return it->second;
  }
  Scalar result;
  switch (e->op) {
    case Op::kConst:
      result = e->constVal;
      break;
    case Op::kVar:
      // Invariant: the environment binds every variable the expression
      // mentions (unbound = the lint "unbound variable" defect class).
      if (!env_->has(e->var)) {
        throw EvalError("unbound variable '" + e->varName + "' (id " +
                        std::to_string(e->var) + ") during evaluation");
      }
      result = env_->get(e->var).castTo(e->type);
      break;
    case Op::kNot:
    case Op::kNeg:
    case Op::kAbs:
    case Op::kCast:
      result = applyUnary(e->op, e->type, scalarRec(e->args[0].get()));
      break;
    case Op::kIte: {
      const bool c = scalarRec(e->args[0].get()).toBool();
      result = scalarRec(e->args[c ? 1 : 2].get()).castTo(e->type);
      break;
    }
    case Op::kSelect: {
      const auto arr = arrayRec(e->args[0].get());
      auto i = scalarRec(e->args[1].get()).toInt();
      const auto n = static_cast<std::int64_t>(arr->size());
      if (i < 0) i = 0;
      if (i >= n) i = n - 1;
      result = (*arr)[static_cast<std::size_t>(i)];
      break;
    }
    default:
      result = applyBinary(e->op, scalarRec(e->args[0].get()),
                           scalarRec(e->args[1].get()))
                   .castTo(e->type);
      break;
  }
  scalarMemo_.emplace(e, result);
  return result;
}

Evaluator::ArrayVal Evaluator::arrayRec(const Expr* e) {
  if (auto it = arrayMemo_.find(e); it != arrayMemo_.end()) {
    return it->second;
  }
  ArrayVal result;
  switch (e->op) {
    case Op::kConstArray:
      result = std::make_shared<const std::vector<Scalar>>(e->constArray);
      break;
    case Op::kVarArray: {
      // Invariant: array-typed state leaves are always bound by the
      // simulator; an unbound leaf means a malformed environment.
      if (!env_->hasArray(e->var)) {
        throw EvalError("unbound array variable '" + e->varName + "' (id " +
                        std::to_string(e->var) + ") during evaluation");
      }
      result = env_->arrays_[static_cast<std::size_t>(e->var)];
      break;
    }
    case Op::kStore: {
      const auto base = arrayRec(e->args[0].get());
      auto i = scalarRec(e->args[1].get()).toInt();
      const auto v = scalarRec(e->args[2].get()).castTo(e->type);
      auto copy = std::make_shared<std::vector<Scalar>>(*base);
      const auto n = static_cast<std::int64_t>(copy->size());
      if (i < 0) i = 0;
      if (i >= n) i = n - 1;
      (*copy)[static_cast<std::size_t>(i)] = v;
      result = std::move(copy);
      break;
    }
    case Op::kIte: {
      const bool c = scalarRec(e->args[0].get()).toBool();
      result = arrayRec(e->args[c ? 1 : 2].get());
      break;
    }
    default:
      // Only kConstArray/kVarArray/kStore/kIte produce arrays.
      throw EvalError("op " + std::string(opName(e->op)) +
                      " does not produce an array");
  }
  arrayMemo_.emplace(e, result);
  return result;
}

Scalar evaluate(const ExprPtr& e, const Env& env) {
  Evaluator ev(env);
  return ev.evalScalar(e);
}

}  // namespace stcg::expr
