#include "expr/scalar.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/strings.h"

namespace stcg::expr {

const char* typeName(Type t) {
  switch (t) {
    case Type::kBool: return "bool";
    case Type::kInt: return "int";
    case Type::kReal: return "real";
  }
  return "?";
}

Type Scalar::type() const {
  if (std::holds_alternative<bool>(v_)) return Type::kBool;
  if (std::holds_alternative<std::int64_t>(v_)) return Type::kInt;
  return Type::kReal;
}

bool Scalar::asBool() const { return std::get<bool>(v_); }
std::int64_t Scalar::asInt() const { return std::get<std::int64_t>(v_); }
double Scalar::asReal() const { return std::get<double>(v_); }

double Scalar::toReal() const {
  switch (type()) {
    case Type::kBool: return asBool() ? 1.0 : 0.0;
    case Type::kInt: return static_cast<double>(asInt());
    case Type::kReal: return asReal();
  }
  return 0.0;
}

std::int64_t Scalar::toInt() const {
  switch (type()) {
    case Type::kBool: return asBool() ? 1 : 0;
    case Type::kInt: return asInt();
    case Type::kReal: return saturatingRealToInt(asReal());
  }
  return 0;
}

const char* saturatingRealToIntC() {
  // Keep in lockstep with saturatingRealToInt in scalar.h: isfinite guard,
  // the ±9.2e18 clamps, then a plain truncating cast.
  return "static inline i64 sat_i64(double r) {\n"
         "  if (!isfinite(r)) return 0;\n"
         "  if (r >= 9.2e18) return INT64_MAX;\n"
         "  if (r <= -9.2e18) return INT64_MIN;\n"
         "  return (i64)r;\n"
         "}\n";
}

bool Scalar::toBool() const {
  switch (type()) {
    case Type::kBool: return asBool();
    case Type::kInt: return asInt() != 0;
    case Type::kReal: return asReal() != 0.0;
  }
  return false;
}

Scalar Scalar::castTo(Type t) const {
  switch (t) {
    case Type::kBool: return Scalar::b(toBool());
    case Type::kInt: return Scalar::i(toInt());
    case Type::kReal: return Scalar::r(toReal());
  }
  return *this;
}

std::string Scalar::toString() const {
  switch (type()) {
    case Type::kBool: return asBool() ? "true" : "false";
    case Type::kInt: return std::to_string(asInt());
    case Type::kReal: return formatReal(asReal());
  }
  return "?";
}

Value::Value(Type t, std::vector<Scalar> elems)
    : type_(t), elems_(std::move(elems)) {
  for (auto& e : elems_) {
    if (e.type() != t) e = e.castTo(t);
  }
}

Value Value::splat(Scalar fill, int n) {
  return Value(fill.type(), std::vector<Scalar>(static_cast<std::size_t>(n), fill));
}

void Value::set(int i, Scalar s) { elems_.at(i) = s.castTo(type_); }

std::string Value::toString() const {
  if (isScalar()) return elems_[0].toString();
  std::vector<std::string> parts;
  parts.reserve(elems_.size());
  for (const auto& e : elems_) parts.push_back(e.toString());
  return "[" + join(parts, ", ") + "]";
}

}  // namespace stcg::expr
