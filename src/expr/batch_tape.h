// Batched lockstep tape execution: B environments evaluated per pass.
//
// A BatchTapeExecutor lays the tape's scalar slots out as B-wide lanes in
// structure-of-arrays order (`vals_[slot * B + lane]`), so one walk over
// the instruction sequence evaluates B independent environments. The
// per-instruction dispatch cost of the scalar TapeExecutor — the switch,
// the operand decode, the type promotion — is paid once per instruction
// instead of once per environment. The inner per-lane loops run through
// the runtime-dispatched SIMD lane kernels (expr/simd.h): instructions
// whose operand representations already match the op (all-real
// arithmetic, real comparisons, 0/1 boolean rows, type-aligned scalar
// kIte, identity kCast) execute a kernel straight on the 64-byte-aligned
// SoA rows; mixed-type instructions keep the scratch-convert-store
// fallback, which is identical under every SIMD level.
//
// Bit-identity contract: every lane computes exactly the Scalar the
// scalar TapeExecutor would (same applyUnary/applyBinary/castTo coercions,
// same guarded kDiv/kMod, same clamped kSelect/kStore, same saturating
// real->int conversion). The scalar tape is the differential oracle for
// this executor the same way the tree Evaluator is the oracle for the
// scalar tape; tests/test_batch_tape.cpp fuzzes the equivalence
// lane-for-lane over every Op kind.
//
// How lanes stay cheap without losing Scalar's dynamic typing: payloads
// are stored as raw 64-bit words (bool as 0/1, int64 bit-stored, double
// bit-cast) plus a per-(slot, lane) Type tag. Almost every slot's type is
// statically known — constants carry their own type, variable slots the
// binding's coercion type, and each instruction's result type follows
// from applyUnary/applyBinary (e.g. a comparison is always kBool, kNeg is
// kInt even over kBool input); the derivation is shared with the verifier
// and the JIT (expr/tape_verify.h analyzeTapeStaticTypes). The single
// exception is kSelect: bound arrays keep their elements uncast
// (mirroring setArrayVar), so an element read can have any per-lane type.
// Instructions whose scalar operands are all statically typed run through
// tight typed lane kernels; dynamically typed scalars fall back to a
// per-lane generic path that calls the exact scalar helpers.
//
// Arrays use the same payload-row layout (DESIGN.md §5k): each array slot
// is one ArrayPlane holding contiguous 8-byte payload rows laid out SoA
// across lanes (`pay[elem * lanes + lane]`) plus a compact per-element
// type-tag plane that is only materialized while the plane's element
// types are not uniform (`uni` tracks runtime uniformity; statically
// uniform slots — analyzeTapeStaticTypes — never materialize tags at
// all). kSelect/kStore/array-kIte are index-clamped word moves: a
// whole-plane memcpy or an O(1) buffer swap for the copy half (arrMove_
// dead-after analysis), contiguous lane-row moves for the element half,
// and the LaneKernels sel64 row select for mixed-condition array kIte
// over uniform planes. The vector<Scalar> surface survives only as the
// materializing oracle read `array()`; hot consumers use
// arrayLen()/arrayElem().
//
// When batching is skipped: callers gate on B > 1 (a 1-lane batch is
// strictly more bookkeeping than TapeExecutor), and consumers keep their
// scalar code path for B <= 1 — see DESIGN.md §5f.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "expr/simd.h"
#include "expr/tape.h"
#include "util/aligned.h"

namespace stcg::expr {

/// Counters over the payload-row array paths, accumulated across run()
/// and bind calls (bench_batch_eval exports them per model so a
/// regression on this path shows up in BENCH_batch.json).
struct BatchArrayStats {
  std::uint64_t arrayOps = 0;        // kSelect/kStore/array-kIte executed
  std::uint64_t typedRowOps = 0;     // of those, fully on uniform typed rows
  std::uint64_t wordMoveRows = 0;    // element rows moved as contiguous words
  std::uint64_t stridedRows = 0;     // element rows moved lane-by-lane
  std::uint64_t planeCopies = 0;     // whole-plane payload copies
  std::uint64_t planeSwaps = 0;      // O(1) row-pointer swaps (arrMove_)
  std::uint64_t broadcastBinds = 0;  // setArrayVarBroadcast fan-outs
  std::uint64_t residentRebinds = 0;  // rebindArrayVarFromSlot plane copies

  [[nodiscard]] double typedRowRate() const {
    return arrayOps > 0 ? static_cast<double>(typedRowOps) /
                              static_cast<double>(arrayOps)
                        : 0.0;
  }
  [[nodiscard]] double wordMoveRate() const {
    const std::uint64_t rows = wordMoveRows + stridedRows;
    return rows > 0
               ? static_cast<double>(wordMoveRows) / static_cast<double>(rows)
               : 0.0;
  }
};

class BatchTapeExecutor {
 public:
  /// `lanes` is clamped to >= 1. The tape is shared, never copied.
  BatchTapeExecutor(std::shared_ptr<const Tape> tape, int lanes);

  [[nodiscard]] int lanes() const { return lanes_; }

  /// Bind a scalar variable in one lane (all its typed slots, coerced via
  /// castTo like TapeExecutor::setVar). Unknown ids are ignored.
  void setVar(int lane, VarId id, const Scalar& v);
  /// Typed binds — equivalent to setVar(lane, id, Scalar::r/i/b(v)) with
  /// the Scalar materialization and castTo dispatch folded into direct
  /// payload conversion. These are the overlay engines' hot bind path.
  void setVarReal(int lane, VarId id, double v);
  void setVarInt(int lane, VarId id, std::int64_t v);
  void setVarBool(int lane, VarId id, bool v);
  /// Bind an array variable in one lane; elements stay uncast.
  void setArrayVar(int lane, VarId id, const std::vector<Scalar>& v);
  /// Bind an array variable identically in EVERY lane: each element is
  /// converted to its payload word once and fanned out with a word-level
  /// row fill — the common replay-reset case where all B lanes start
  /// from the same initial state array. Equivalent to setArrayVar(l, id,
  /// v) for every lane l.
  void setArrayVarBroadcast(VarId id, const std::vector<Scalar>& v);
  /// Rebind an array variable in EVERY lane straight from a computed
  /// array slot's plane — the steady-state replay path, where the value
  /// a caller would bind is exactly the previous run()'s result in `src`
  /// cast to `want` (BatchSimulator's state readback applies
  /// castTo(want), which is the identity when the plane is runtime-
  /// uniform at `want`). Succeeds only in that uniform case, where one
  /// whole-plane word copy is bit-identical to per-lane setArrayVar of
  /// the read-back vectors; otherwise leaves every binding untouched and
  /// returns false so the caller falls back to per-lane Scalar binds.
  bool rebindArrayVarFromSlot(VarId id, SlotRef src, Type want);
  /// Bind every tape variable present in `env` into `lane`.
  void bindEnv(int lane, const Env& env);

  /// Execute the full tape across all lanes. Throws EvalError naming the
  /// first unbound (variable, lane) pair (checked once, like the scalar
  /// executor).
  void run();

  /// Lane views of a result slot. `scalar` materializes the exact Scalar
  /// the scalar executor would hold in that slot; `array` materializes
  /// the exact vector<Scalar> (the oracle surface — differential tests
  /// compare it element-for-element against TapeExecutor::array). Hot
  /// consumers read elements without materializing a vector through
  /// arrayLen()/arrayElem().
  [[nodiscard]] Scalar scalar(SlotRef r, int lane) const;
  [[nodiscard]] std::vector<Scalar> array(SlotRef r, int lane) const;
  [[nodiscard]] std::size_t arrayLen(SlotRef r, int lane) const;
  [[nodiscard]] Scalar arrayElem(SlotRef r, int lane, std::size_t i) const;

  /// Raw coercing reads for overlay engines — identical to
  /// scalar(r, lane).toReal() / .toBool() without materializing a Scalar.
  [[nodiscard]] double scalarToReal(SlotRef r, int lane) const;
  [[nodiscard]] bool scalarToBool(SlotRef r, int lane) const;

  /// Lane-wide coercing reads: out[l] == scalarToReal(r, l) (resp.
  /// scalarToBool, as 0/1) for every lane, with the slot-type switch
  /// hoisted out of the lane loop when the slot is statically typed.
  /// `out` must hold lanes() elements.
  void readReals(SlotRef r, double* out) const;
  void readBools(SlotRef r, std::uint64_t* out) const;

  [[nodiscard]] const Tape& tape() const { return *tape_; }

  /// SIMD level whose kernel table this executor captured at construction
  /// (see expr/simd.h; pin with forceSimdLevel before constructing).
  [[nodiscard]] SimdLevel simdLevel() const { return simdLevel_; }

  /// Array-path counters accumulated since construction (or the last
  /// resetArrayStats()).
  [[nodiscard]] const BatchArrayStats& arrayStats() const { return stats_; }
  void resetArrayStats() { stats_ = BatchArrayStats{}; }

 private:
  /// Execution strategy per instruction, fixed at construction. Dynamic
  /// (kSelect-fed) operands no longer force the per-lane Scalar path:
  /// the coercing loads below resolve each lane's payload through the
  /// types_ row, and every scalar op except the numeric binary group has
  /// a result representation that is independent of its operands' runtime
  /// types (applyUnary keys on the instruction type, comparisons/booleans
  /// /kMod fix their own representation, scalar kIte casts to the
  /// instruction type). Numeric binaries promote over RUNTIME operand
  /// types, so they re-dispatch per run: a lane-uniform type row runs the
  /// typed scratch path, a mixed row falls back to the Scalar walk.
  enum class Kind : std::uint8_t {
    kGeneric,       // per-lane Scalar path (arrays, kSelect/kStore)
    kUnary,         // kNot/kNeg/kAbs/kCast
    kBinary,        // relational/boolean/kMod, or numeric with static types
    kBinaryNumDyn,  // kAdd..kMax with a dynamic operand: runtime re-dispatch
    kIteScalar,     // scalar select
  };

  /// Direct-row kernel per instruction, fixed at construction: when every
  /// operand's static payload representation already matches what the op
  /// consumes (and the store target matches what it produces), the lane
  /// kernel runs straight on the SoA rows — no scratch conversion, no
  /// per-op switch at run time. kNone falls back to the Kind path.
  enum class FastK : std::uint8_t {
    kNone,
    kRAdd, kRSub, kRMul, kRDivG, kRFmin, kRFmax,   // real x real -> real
    kRNeg, kRAbs,                                  // real -> real
    kRCmpLt, kRCmpLe, kRCmpGt, kRCmpGe, kRCmpEq, kRCmpNe,  // real -> 0/1
    kIAdd, kISub, kIMin, kIMax,                    // int-rep x int-rep
    kINeg, kIAbs,                                  // int-rep -> int
    kBAnd, kBOr, kBXor, kBNot,                     // 0/1 rows
    kSel,                                          // scalar kIte, aligned
    kCopy,                                         // identity kCast
  };

  /// One array slot across all lanes: payload rows in element-major SoA
  /// order (`pay[elem * lanes + lane]`, same word conventions as vals_)
  /// plus a tag plane that is authoritative only while `uni < 0`. While
  /// `uni >= 0` every in-range element of every lane has Type(uni) and
  /// the tag bytes are stale (materialized on the uniform->mixed edge).
  /// Growing `cap` appends rows, so existing (elem, lane) indices stay
  /// valid; each plane owns its buffers, so plane<->plane swap is O(1).
  struct ArrayPlane {
    util::AlignedVec<std::uint64_t> pay;
    std::vector<std::uint8_t> tag;   // Type as uint8, [elem * lanes + lane]
    std::vector<std::int32_t> len;   // per-lane element count
    std::int32_t cap = 0;            // allocated element rows (>= 1)
    std::int8_t uni = 1;             // >= 0: Type all elements share; -1 mixed
    bool lensEqual = true;           // all lanes share len[0]
  };

  [[nodiscard]] std::size_t idx(std::int32_t slot, int lane) const {
    return static_cast<std::size_t>(slot) * static_cast<std::size_t>(lanes_) +
           static_cast<std::size_t>(lane);
  }

  [[nodiscard]] Scalar loadScalar(std::int32_t slot, int lane) const;
  void storeScalar(std::int32_t slot, int lane, const Scalar& s);

  void planeEnsureCap(ArrayPlane& p, std::int32_t elems);
  /// Fill the tag plane with the current uniform type and flip to mixed.
  void planeMaterializeTags(ArrayPlane& p);
  void planeCopy(ArrayPlane& dst, const ArrayPlane& src);
  /// Write `v` into every lane of `p` (payload converted once per
  /// element, then fanned out row-wise).
  void planeBroadcast(ArrayPlane& p, const std::vector<Scalar>& v);
  /// Write `v` into one lane column of `p`, maintaining uni/tags.
  void planeBindLane(ArrayPlane& p, int lane, const std::vector<Scalar>& v);
  [[nodiscard]] Scalar planeElem(const ArrayPlane& p, std::int32_t e,
                                 int lane) const;

  /// Clamp the kSelect/kStore index row in ia_ against per-lane lengths
  /// and report whether all lanes landed on the same element row (its
  /// index via *common). Lengths of 0 clamp to row 0, which planeEnsureCap
  /// keeps allocated (the scalar oracle's behavior on an empty array is
  /// undefined; we stay in-bounds instead of faulting).
  [[nodiscard]] bool clampIndexRow(const ArrayPlane& p, std::int64_t* common);

  void execArraySelect(const TapeInstr& in);
  void execArrayStore(const TapeInstr& in, std::uint8_t mv);
  void execArrayIte(const TapeInstr& in, std::uint8_t mv);

  // Lane-wide coercing loads into scratch (castTo semantics per element).
  void loadReal(std::int32_t slot, double* out) const;
  void loadInt(std::int32_t slot, std::int64_t* out) const;
  void loadBool(std::int32_t slot, std::uint64_t* out) const;  // 0/1
  // Lane-wide stores converting a typed result to the slot's cast target.
  void storeRealAs(std::int32_t dst, Type dstType, const double* in);
  void storeIntAs(std::int32_t dst, Type dstType, const std::int64_t* in);
  void storeBoolAs(std::int32_t dst, Type dstType, const std::uint64_t* in);

  /// True when every lane of `slot` currently holds one type (trivially
  /// so for statically typed slots), reporting it via *t.
  [[nodiscard]] bool rowUniformType(std::int32_t slot, Type* t) const;

  void execGeneric(const TapeInstr& in, std::uint8_t mv);
  void execUnary(const TapeInstr& in);
  void execBinary(const TapeInstr& in);
  /// The kAdd..kMax body of execBinary with the int/real promotion
  /// decided by the caller (statically or from runtime type rows).
  void execBinaryArith(const TapeInstr& in, bool real);
  void execBinaryNumDyn(const TapeInstr& in, std::uint8_t mv);
  void execIteScalar(const TapeInstr& in);
  void execFast(const TapeInstr& in, FastK f);
  void requireAllBound();

  std::shared_ptr<const Tape> tape_;
  int lanes_ = 1;
  SimdLevel simdLevel_ = SimdLevel::kScalar;
  const LaneKernels* kern_ = nullptr;  // table for simdLevel_, never null
  util::AlignedVec<std::uint64_t> vals_;  // [slot * lanes + lane] payload
  std::vector<Type> types_;           // [slot * lanes + lane] payload type
  std::vector<ArrayPlane> planes_;    // per array slot
  std::vector<Type> slotType_;        // static type per scalar slot
  std::vector<std::uint8_t> slotDynamic_;  // 1 = kSelect result slot
  std::vector<Kind> kind_;            // parallel to tape code
  std::vector<FastK> fast_;           // parallel to tape code
  // Parallel to code, kStore / array kIte only: bit0 = the kStore source
  // (or kIte then-arm), bit1 = the kIte else-arm, may be *swapped* into
  // the destination instead of copied — set when that operand slot is
  // instruction-defined, non-root, and this is its final read (see the
  // constructor; valid because run() always executes the full tape).
  std::vector<std::uint8_t> arrMove_;
  std::vector<bool> varBound_;        // [binding * lanes + lane]
  std::vector<bool> arrayBound_;      // [binding * lanes + lane]
  bool checkedBound_ = false;
  BatchArrayStats stats_;
  // Scratch lanes for the typed kernels.
  std::vector<double> ra_, rb_;
  std::vector<std::int64_t> ia_, ib_;
  std::vector<std::uint64_t> ba_, bb_, bc_;
};

}  // namespace stcg::expr
