// Batched lockstep tape execution: B environments evaluated per pass.
//
// A BatchTapeExecutor lays the tape's scalar slots out as B-wide lanes in
// structure-of-arrays order (`vals_[slot * B + lane]`), so one walk over
// the instruction sequence evaluates B independent environments. The
// per-instruction dispatch cost of the scalar TapeExecutor — the switch,
// the operand decode, the type promotion — is paid once per instruction
// instead of once per environment. The inner per-lane loops run through
// the runtime-dispatched SIMD lane kernels (expr/simd.h): instructions
// whose operand representations already match the op (all-real
// arithmetic, real comparisons, 0/1 boolean rows, type-aligned scalar
// kIte, identity kCast) execute a kernel straight on the 64-byte-aligned
// SoA rows; mixed-type instructions keep the scratch-convert-store
// fallback, which is identical under every SIMD level.
//
// Bit-identity contract: every lane computes exactly the Scalar the
// scalar TapeExecutor would (same applyUnary/applyBinary/castTo coercions,
// same guarded kDiv/kMod, same clamped kSelect/kStore, same saturating
// real->int conversion). The scalar tape is the differential oracle for
// this executor the same way the tree Evaluator is the oracle for the
// scalar tape; tests/test_batch_tape.cpp fuzzes the equivalence
// lane-for-lane over every Op kind.
//
// How lanes stay cheap without losing Scalar's dynamic typing: payloads
// are stored as raw 64-bit words (bool as 0/1, int64 bit-stored, double
// bit-cast) plus a per-(slot, lane) Type tag. Almost every slot's type is
// statically known — constants carry their own type, variable slots the
// binding's coercion type, and each instruction's result type follows
// from applyUnary/applyBinary (e.g. a comparison is always kBool, kNeg is
// kInt even over kBool input). The single exception is kSelect: bound
// arrays keep their elements uncast (mirroring setArrayVar), so an
// element read can have any per-lane type. Instructions whose scalar
// operands are all statically typed run through tight typed lane kernels;
// kSelect/kStore, array results, and anything downstream of a kSelect
// fall back to a per-lane generic path that calls the exact scalar
// helpers. Arrays themselves stay per-lane vector<Scalar> — they are rare
// (delay buffers, data stores) and never on the hot neighbor-scoring
// path.
//
// When batching is skipped: callers gate on B > 1 (a 1-lane batch is
// strictly more bookkeeping than TapeExecutor), and consumers keep their
// scalar code path for B <= 1 — see DESIGN.md §5f.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "expr/simd.h"
#include "expr/tape.h"
#include "util/aligned.h"

namespace stcg::expr {

class BatchTapeExecutor {
 public:
  /// `lanes` is clamped to >= 1. The tape is shared, never copied.
  BatchTapeExecutor(std::shared_ptr<const Tape> tape, int lanes);

  [[nodiscard]] int lanes() const { return lanes_; }

  /// Bind a scalar variable in one lane (all its typed slots, coerced via
  /// castTo like TapeExecutor::setVar). Unknown ids are ignored.
  void setVar(int lane, VarId id, const Scalar& v);
  /// Typed binds — equivalent to setVar(lane, id, Scalar::r/i/b(v)) with
  /// the Scalar materialization and castTo dispatch folded into direct
  /// payload conversion. These are the overlay engines' hot bind path.
  void setVarReal(int lane, VarId id, double v);
  void setVarInt(int lane, VarId id, std::int64_t v);
  void setVarBool(int lane, VarId id, bool v);
  /// Bind an array variable in one lane; elements stay uncast.
  void setArrayVar(int lane, VarId id, const std::vector<Scalar>& v);
  /// Bind every tape variable present in `env` into `lane`.
  void bindEnv(int lane, const Env& env);

  /// Execute the full tape across all lanes. Throws EvalError naming the
  /// first unbound (variable, lane) pair (checked once, like the scalar
  /// executor).
  void run();

  /// Lane views of a result slot. `scalar` materializes the exact Scalar
  /// the scalar executor would hold in that slot.
  [[nodiscard]] Scalar scalar(SlotRef r, int lane) const;
  [[nodiscard]] const std::vector<Scalar>& array(SlotRef r, int lane) const;

  /// Raw coercing reads for overlay engines — identical to
  /// scalar(r, lane).toReal() / .toBool() without materializing a Scalar.
  [[nodiscard]] double scalarToReal(SlotRef r, int lane) const;
  [[nodiscard]] bool scalarToBool(SlotRef r, int lane) const;

  /// Lane-wide coercing reads: out[l] == scalarToReal(r, l) (resp.
  /// scalarToBool, as 0/1) for every lane, with the slot-type switch
  /// hoisted out of the lane loop when the slot is statically typed.
  /// `out` must hold lanes() elements.
  void readReals(SlotRef r, double* out) const;
  void readBools(SlotRef r, std::uint64_t* out) const;

  [[nodiscard]] const Tape& tape() const { return *tape_; }

  /// SIMD level whose kernel table this executor captured at construction
  /// (see expr/simd.h; pin with forceSimdLevel before constructing).
  [[nodiscard]] SimdLevel simdLevel() const { return simdLevel_; }

 private:
  /// Execution strategy per instruction, fixed at construction.
  enum class Kind : std::uint8_t {
    kGeneric,    // per-lane Scalar path (arrays, kSelect/kStore, dynamic)
    kUnary,      // kNot/kNeg/kAbs/kCast over a statically typed operand
    kBinary,     // arithmetic/relational/boolean, statically typed
    kIteScalar,  // scalar select, statically typed
  };

  /// Direct-row kernel per instruction, fixed at construction: when every
  /// operand's static payload representation already matches what the op
  /// consumes (and the store target matches what it produces), the lane
  /// kernel runs straight on the SoA rows — no scratch conversion, no
  /// per-op switch at run time. kNone falls back to the Kind path.
  enum class FastK : std::uint8_t {
    kNone,
    kRAdd, kRSub, kRMul, kRDivG, kRFmin, kRFmax,   // real x real -> real
    kRNeg, kRAbs,                                  // real -> real
    kRCmpLt, kRCmpLe, kRCmpGt, kRCmpGe, kRCmpEq, kRCmpNe,  // real -> 0/1
    kIAdd, kISub, kIMin, kIMax,                    // int-rep x int-rep
    kINeg, kIAbs,                                  // int-rep -> int
    kBAnd, kBOr, kBXor, kBNot,                     // 0/1 rows
    kSel,                                          // scalar kIte, aligned
    kCopy,                                         // identity kCast
  };

  [[nodiscard]] std::size_t idx(std::int32_t slot, int lane) const {
    return static_cast<std::size_t>(slot) * static_cast<std::size_t>(lanes_) +
           static_cast<std::size_t>(lane);
  }

  [[nodiscard]] Scalar loadScalar(std::int32_t slot, int lane) const;
  void storeScalar(std::int32_t slot, int lane, const Scalar& s);

  // Lane-wide coercing loads into scratch (castTo semantics per element).
  void loadReal(std::int32_t slot, double* out) const;
  void loadInt(std::int32_t slot, std::int64_t* out) const;
  void loadBool(std::int32_t slot, std::uint64_t* out) const;  // 0/1
  // Lane-wide stores converting a typed result to the slot's cast target.
  void storeRealAs(std::int32_t dst, Type dstType, const double* in);
  void storeIntAs(std::int32_t dst, Type dstType, const std::int64_t* in);
  void storeBoolAs(std::int32_t dst, Type dstType, const std::uint64_t* in);

  void execGeneric(const TapeInstr& in, std::uint8_t mv);
  void execUnary(const TapeInstr& in);
  void execBinary(const TapeInstr& in);
  void execIteScalar(const TapeInstr& in);
  void execFast(const TapeInstr& in, FastK f);
  void requireAllBound();

  std::shared_ptr<const Tape> tape_;
  int lanes_ = 1;
  SimdLevel simdLevel_ = SimdLevel::kScalar;
  const LaneKernels* kern_ = nullptr;  // table for simdLevel_, never null
  util::AlignedVec<std::uint64_t> vals_;  // [slot * lanes + lane] payload
  std::vector<Type> types_;           // [slot * lanes + lane] payload type
  std::vector<std::vector<Scalar>> arrays_;  // [slot * lanes + lane]
  std::vector<Type> slotType_;        // static type per scalar slot
  std::vector<std::uint8_t> slotDynamic_;  // 1 = kSelect result slot
  std::vector<Kind> kind_;            // parallel to tape code
  std::vector<FastK> fast_;           // parallel to tape code
  // Parallel to code, kStore / array kIte only: bit0 = the kStore source
  // (or kIte then-arm), bit1 = the kIte else-arm, may be *swapped* into
  // the destination instead of copied — set when that operand slot is
  // instruction-defined, non-root, and this is its final read (see the
  // constructor; valid because run() always executes the full tape).
  std::vector<std::uint8_t> arrMove_;
  std::vector<bool> varBound_;        // [binding * lanes + lane]
  std::vector<bool> arrayBound_;      // [binding * lanes + lane]
  bool checkedBound_ = false;
  // Scratch lanes for the typed kernels.
  std::vector<double> ra_, rb_;
  std::vector<std::int64_t> ia_, ib_;
  std::vector<std::uint64_t> ba_, bb_, bc_;
};

}  // namespace stcg::expr
