#include "expr/tape_verify.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "util/env.h"

namespace stcg::expr {

namespace {

std::uint64_t mixBits(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
  return h;
}

/// Per-slot / per-instruction variable-dependency bitsets, recomputed
/// independently of TapeBuilder (the verifier must not trust the code
/// path it is checking). Uses the same accumulate-only semantics as the
/// cone derivation: a slot's set only grows across writers.
struct DepSets {
  std::size_t words = 0;
  std::vector<VarId> vars;                 // sorted, unique
  std::vector<std::uint64_t> scalar;       // [slot * words]
  std::vector<std::uint64_t> array;        // [slot * words]
  std::vector<std::uint64_t> instr;        // [idx * words] dst set after OR

  [[nodiscard]] const std::uint64_t* instrAt(std::size_t idx) const {
    return instr.data() + idx * words;
  }
  [[nodiscard]] bool sameInstrDeps(std::size_t i, std::size_t j) const {
    return std::equal(instrAt(i), instrAt(i) + words, instrAt(j));
  }
};

DepSets computeDepSets(const Tape& t) {
  DepSets d;
  for (const auto& b : t.varBindings()) d.vars.push_back(b.var);
  for (const auto& b : t.arrayBindings()) d.vars.push_back(b.var);
  std::sort(d.vars.begin(), d.vars.end());
  d.vars.erase(std::unique(d.vars.begin(), d.vars.end()), d.vars.end());
  d.words = (d.vars.size() + 63) / 64;
  d.scalar.assign(t.scalarSlotCount() * d.words, 0);
  d.array.assign(t.arraySlotCount() * d.words, 0);
  d.instr.assign(t.code().size() * d.words, 0);

  const auto nScalar = static_cast<std::int32_t>(t.scalarSlotCount());
  const auto nArray = static_cast<std::int32_t>(t.arraySlotCount());
  const auto varIndex = [&](VarId v) {
    return static_cast<std::size_t>(
        std::lower_bound(d.vars.begin(), d.vars.end(), v) - d.vars.begin());
  };
  for (const auto& b : t.varBindings()) {
    if (b.slot < 0 || b.slot >= nScalar) continue;  // bounds check reports
    const std::size_t i = varIndex(b.var);
    d.scalar[static_cast<std::size_t>(b.slot) * d.words + i / 64] |=
        1ULL << (i % 64);
  }
  for (const auto& b : t.arrayBindings()) {
    if (b.slot < 0 || b.slot >= nArray) continue;
    const std::size_t i = varIndex(b.var);
    d.array[static_cast<std::size_t>(b.slot) * d.words + i / 64] |=
        1ULL << (i % 64);
  }

  const auto& code = t.code();
  for (std::size_t idx = 0; idx < code.size(); ++idx) {
    const TapeInstr& in = code[idx];
    const bool dstOk = in.arrayResult ? (in.dst >= 0 && in.dst < nArray)
                                      : (in.dst >= 0 && in.dst < nScalar);
    std::uint64_t* acc = d.instr.data() + idx * d.words;
    forEachTapeOperand(in, [&](std::int32_t slot, bool isArray) {
      const std::int32_t n = isArray ? nArray : nScalar;
      if (slot < 0 || slot >= n) return;
      const std::uint64_t* src =
          (isArray ? d.array.data() : d.scalar.data()) +
          static_cast<std::size_t>(slot) * d.words;
      for (std::size_t w = 0; w < d.words; ++w) acc[w] |= src[w];
    });
    if (dstOk) {
      std::uint64_t* dst =
          (in.arrayResult ? d.array.data() : d.scalar.data()) +
          static_cast<std::size_t>(in.dst) * d.words;
      for (std::size_t w = 0; w < d.words; ++w) {
        dst[w] |= acc[w];
        acc[w] = dst[w];  // accumulate-only, like the cone derivation
      }
    }
  }
  return d;
}

bool isLeafOp(Op op) {
  return op == Op::kConst || op == Op::kConstArray || op == Op::kVar ||
         op == Op::kVarArray;
}

bool isComparisonOp(Op op) {
  return op == Op::kLt || op == Op::kLe || op == Op::kGt || op == Op::kGe ||
         op == Op::kEq || op == Op::kNe;
}

bool isBoolBinaryOp(Op op) {
  return op == Op::kAnd || op == Op::kOr || op == Op::kXor;
}

bool isArithBinaryOp(Op op) {
  return op == Op::kAdd || op == Op::kSub || op == Op::kMul ||
         op == Op::kDiv || op == Op::kMod || op == Op::kMin || op == Op::kMax;
}

class Verifier {
 public:
  explicit Verifier(const Tape& t) : t_(t) {}

  TapeVerifyResult run() {
    checkBindingTables();
    checkCodeShape();
    checkDefUseAndTypes();
    checkRoots();
    checkConesAndSharing();
    checkCseDuplicates();
    return std::move(result_);
  }

 private:
  void issue(TapeIssueKind kind, std::int32_t instr, std::string msg) {
    result_.issues.push_back({kind, instr, std::move(msg)});
  }

  [[nodiscard]] std::int32_t nScalar() const {
    return static_cast<std::int32_t>(t_.scalarSlotCount());
  }
  [[nodiscard]] std::int32_t nArray() const {
    return static_cast<std::int32_t>(t_.arraySlotCount());
  }

  void checkBindingTables() {
    // Slot-table sanity: const/var slots in range, variable tables sorted
    // (setVar binary-searches them), and no slot claimed as both a
    // constant and a variable binding.
    std::vector<std::uint8_t> owner(t_.scalarSlotCount(), 0);
    for (const std::int32_t s : t_.constScalarSlots()) {
      if (s < 0 || s >= nScalar()) {
        issue(TapeIssueKind::kSlotBounds, -1,
              "const scalar slot " + std::to_string(s) + " out of range");
        continue;
      }
      owner[static_cast<std::size_t>(s)] |= 1;
    }
    for (const auto& b : t_.varBindings()) {
      if (b.slot < 0 || b.slot >= nScalar()) {
        issue(TapeIssueKind::kSlotBounds, -1,
              "variable '" + b.name + "' bound to out-of-range slot " +
                  std::to_string(b.slot));
        continue;
      }
      if ((owner[static_cast<std::size_t>(b.slot)] & 1) != 0) {
        issue(TapeIssueKind::kConstClobbered, -1,
              "slot " + std::to_string(b.slot) +
                  " is both a constant and variable '" + b.name + "'");
      }
      owner[static_cast<std::size_t>(b.slot)] |= 2;
    }
    const auto& vb = t_.varBindings();
    for (std::size_t i = 1; i < vb.size(); ++i) {
      const bool ordered = vb[i - 1].var < vb[i].var ||
                           (vb[i - 1].var == vb[i].var &&
                            vb[i - 1].type < vb[i].type);
      if (!ordered) {
        issue(TapeIssueKind::kSlotBounds, -1,
              "varBindings not sorted by (var, type) at entry " +
                  std::to_string(i) + " — setVar binary search would miss");
        break;
      }
    }
    const auto& ab = t_.arrayBindings();
    for (std::size_t i = 1; i < ab.size(); ++i) {
      if (!(ab[i - 1].var < ab[i].var)) {
        issue(TapeIssueKind::kSlotBounds, -1,
              "arrayBindings not sorted by var at entry " +
                  std::to_string(i));
        break;
      }
    }
    for (const std::int32_t s : t_.constArraySlots()) {
      if (s < 0 || s >= nArray()) {
        issue(TapeIssueKind::kSlotBounds, -1,
              "const array slot " + std::to_string(s) + " out of range");
      }
    }
    for (const auto& b : ab) {
      if (b.slot < 0 || b.slot >= nArray()) {
        issue(TapeIssueKind::kSlotBounds, -1,
              "array variable '" + b.name + "' bound to out-of-range slot " +
                  std::to_string(b.slot));
      }
    }
  }

  void checkCodeShape() {
    const auto& code = t_.code();
    for (std::size_t i = 0; i < code.size(); ++i) {
      const TapeInstr& in = code[i];
      const auto idx = static_cast<std::int32_t>(i);
      if (isLeafOp(in.op)) {
        issue(TapeIssueKind::kSlotBounds, idx,
              std::string("leaf op ") + opName(in.op) +
                  " emitted as an instruction");
        continue;
      }
      if (in.arrayResult && !(in.op == Op::kIte || in.op == Op::kStore)) {
        issue(TapeIssueKind::kSlotBounds, idx,
              std::string(opName(in.op)) + " cannot produce an array result");
      }
      if (in.op == Op::kStore && !in.arrayResult) {
        issue(TapeIssueKind::kSlotBounds, idx,
              "kStore must produce an array result");
      }
      const std::int32_t dstMax = in.arrayResult ? nArray() : nScalar();
      if (in.dst < 0 || in.dst >= dstMax) {
        issue(TapeIssueKind::kSlotBounds, idx,
              "dst slot " + std::to_string(in.dst) + " out of range");
      }
      forEachTapeOperand(in, [&](std::int32_t slot, bool isArray) {
        const std::int32_t max = isArray ? nArray() : nScalar();
        if (slot < 0 || slot >= max) {
          issue(TapeIssueKind::kSlotBounds, idx,
                std::string(isArray ? "array" : "scalar") + " operand slot " +
                    std::to_string(slot) + " out of range");
        }
      });
    }
  }

  void checkDefUseAndTypes() {
    // One forward pass: def-before-use, const/var clobbers, and the
    // typed-lane contract (result types as the batch executor derives
    // them, with multi-writer slots required to agree).
    std::vector<std::uint8_t> sDef(t_.scalarSlotCount(), 0);
    std::vector<std::uint8_t> aDef(t_.arraySlotCount(), 0);
    std::vector<std::uint8_t> sPinned(t_.scalarSlotCount(), 0);
    std::vector<std::uint8_t> aPinned(t_.arraySlotCount(), 0);
    for (const std::int32_t s : t_.constScalarSlots()) {
      if (s >= 0 && s < nScalar()) {
        sDef[static_cast<std::size_t>(s)] = 1;
        sPinned[static_cast<std::size_t>(s)] = 1;
      }
    }
    for (const auto& b : t_.varBindings()) {
      if (b.slot >= 0 && b.slot < nScalar()) {
        sDef[static_cast<std::size_t>(b.slot)] = 1;
        sPinned[static_cast<std::size_t>(b.slot)] = 1;
      }
    }
    for (const std::int32_t s : t_.constArraySlots()) {
      if (s >= 0 && s < nArray()) {
        aDef[static_cast<std::size_t>(s)] = 1;
        aPinned[static_cast<std::size_t>(s)] = 1;
      }
    }
    for (const auto& b : t_.arrayBindings()) {
      if (b.slot >= 0 && b.slot < nArray()) {
        aDef[static_cast<std::size_t>(b.slot)] = 1;
        aPinned[static_cast<std::size_t>(b.slot)] = 1;
      }
    }

    const TapeStaticTypes st = analyzeTapeStaticTypes(t_);
    // First-writer derived (type, dynamic) per scalar slot, for the
    // multi-writer agreement check.
    std::vector<std::int8_t> seenType(t_.scalarSlotCount(), -1);
    std::vector<std::uint8_t> seenDyn(t_.scalarSlotCount(), 0);
    // Likewise per array slot: (statically uniform?, element type). The
    // batch executor's payload planes fix this summary at construction,
    // so writers sharing an array slot must agree on it. The optimizer
    // never shares array slots; this fires only on hand-built tapes.
    std::vector<std::int8_t> seenAUni(t_.arraySlotCount(), -1);
    std::vector<std::int8_t> seenAElem(t_.arraySlotCount(), 0);

    const auto& code = t_.code();
    for (std::size_t i = 0; i < code.size(); ++i) {
      const TapeInstr& in = code[i];
      const auto idx = static_cast<std::int32_t>(i);
      if (isLeafOp(in.op)) continue;  // reported by checkCodeShape

      forEachTapeOperand(in, [&](std::int32_t slot, bool isArray) {
        const std::int32_t max = isArray ? nArray() : nScalar();
        if (slot < 0 || slot >= max) return;  // bounds issue already filed
        const auto& def = isArray ? aDef : sDef;
        if (def[static_cast<std::size_t>(slot)] == 0) {
          issue(TapeIssueKind::kUseBeforeDef, idx,
                std::string(isArray ? "array" : "scalar") + " slot " +
                    std::to_string(slot) + " read before any definition");
        }
      });

      // Typed-lane contract: the result types applyUnary/applyBinary
      // guarantee, which BatchTapeExecutor bakes into its lane layout.
      switch (in.op) {
        case Op::kNot:
          if (in.type != Type::kBool) {
            issue(TapeIssueKind::kTypeMismatch, idx,
                  "kNot result typed " + std::string(typeName(in.type)) +
                      ", executors produce kBool");
          }
          break;
        case Op::kNeg:
        case Op::kAbs:
          if (in.type == Type::kBool) {
            issue(TapeIssueKind::kTypeMismatch, idx,
                  std::string(opName(in.op)) +
                      " result typed kBool, executors produce kInt/kReal");
          }
          break;
        default:
          if ((isComparisonOp(in.op) || isBoolBinaryOp(in.op)) &&
              in.type != Type::kBool) {
            issue(TapeIssueKind::kTypeMismatch, idx,
                  std::string(opName(in.op)) + " result typed " +
                      typeName(in.type) + ", comparisons/booleans are kBool");
          }
          if (isArithBinaryOp(in.op) && in.type == Type::kBool) {
            issue(TapeIssueKind::kTypeMismatch, idx,
                  std::string(opName(in.op)) +
                      " result typed kBool, promote() never yields kBool");
          }
          break;
      }

      const std::int32_t dstMax = in.arrayResult ? nArray() : nScalar();
      if (in.dst >= 0 && in.dst < dstMax) {
        const auto d = static_cast<std::size_t>(in.dst);
        if (in.arrayResult) {
          if (aPinned[d] != 0) {
            issue(TapeIssueKind::kConstClobbered, idx,
                  "instruction overwrites constant/variable array slot " +
                      std::to_string(in.dst));
          }
          // Re-derive this writer's (uniform, element type) contribution
          // from its operands' summaries, mirroring analyzeTapeStaticTypes.
          bool myUni = false;
          Type myElem = in.type;
          if (in.op == Op::kStore) {
            const auto a = static_cast<std::size_t>(in.a);
            myUni = in.a >= 0 && in.a < nArray() &&
                    st.arrayUniform[a] != 0 && st.arrayElemType[a] == in.type;
          } else if (in.op == Op::kIte && in.b >= 0 && in.b < nArray() &&
                     in.c >= 0 && in.c < nArray()) {
            const auto tb = static_cast<std::size_t>(in.b);
            const auto fc = static_cast<std::size_t>(in.c);
            myUni = st.arrayUniform[tb] != 0 && st.arrayUniform[fc] != 0 &&
                    st.arrayElemType[tb] == st.arrayElemType[fc];
            myElem = st.arrayElemType[tb];
          }
          if (seenAUni[d] < 0) {
            seenAUni[d] = myUni ? 1 : 0;
            seenAElem[d] = static_cast<std::int8_t>(myElem);
          } else if ((seenAUni[d] != 0) != myUni ||
                     (myUni && static_cast<Type>(seenAElem[d]) != myElem)) {
            issue(TapeIssueKind::kTypeMismatch, idx,
                  "writers of shared array slot " + std::to_string(in.dst) +
                      " disagree on its static element type");
          }
          aDef[d] = 1;
        } else {
          if (sPinned[d] != 0) {
            issue(TapeIssueKind::kConstClobbered, idx,
                  "instruction overwrites constant/variable slot " +
                      std::to_string(in.dst));
          }
          // Multi-writer slots must agree on the static lane type the
          // batch executor fixes at construction.
          const Type derived = st.scalarType[d];
          const bool dyn = st.scalarDynamic[d] != 0;
          // analyzeTapeStaticTypes is last-writer-wins; re-derive this
          // writer's contribution to compare across writers.
          Type mine = in.type;
          bool myDyn = false;
          switch (in.op) {
            case Op::kNot:
              mine = Type::kBool;
              break;
            case Op::kNeg:
            case Op::kAbs:
              mine = in.type == Type::kReal ? Type::kReal : Type::kInt;
              break;
            case Op::kSelect: {
              const auto a = static_cast<std::size_t>(in.a);
              if (in.a >= 0 && in.a < nArray() && st.arrayUniform[a] != 0) {
                mine = st.arrayElemType[a];
              } else {
                myDyn = true;
                mine = in.type;
              }
              break;
            }
            default:
              break;
          }
          if (seenType[d] < 0) {
            seenType[d] = static_cast<std::int8_t>(mine);
            seenDyn[d] = myDyn ? 1 : 0;
          } else if (static_cast<Type>(seenType[d]) != mine ||
                     (seenDyn[d] != 0) != myDyn) {
            issue(TapeIssueKind::kTypeMismatch, idx,
                  "writers of shared slot " + std::to_string(in.dst) +
                      " disagree on its static lane type");
          }
          (void)derived;
          (void)dyn;
          sDef[d] = 1;
        }
      }
    }
  }

  void checkRoots() {
    // Everything defined by the end of the code (consts, vars, any dst).
    std::vector<std::uint8_t> sDef(t_.scalarSlotCount(), 0);
    std::vector<std::uint8_t> aDef(t_.arraySlotCount(), 0);
    for (const std::int32_t s : t_.constScalarSlots()) {
      if (s >= 0 && s < nScalar()) sDef[static_cast<std::size_t>(s)] = 1;
    }
    for (const auto& b : t_.varBindings()) {
      if (b.slot >= 0 && b.slot < nScalar()) {
        sDef[static_cast<std::size_t>(b.slot)] = 1;
      }
    }
    for (const std::int32_t s : t_.constArraySlots()) {
      if (s >= 0 && s < nArray()) aDef[static_cast<std::size_t>(s)] = 1;
    }
    for (const auto& b : t_.arrayBindings()) {
      if (b.slot >= 0 && b.slot < nArray()) {
        aDef[static_cast<std::size_t>(b.slot)] = 1;
      }
    }
    for (const TapeInstr& in : t_.code()) {
      const std::int32_t max = in.arrayResult ? nArray() : nScalar();
      if (in.dst >= 0 && in.dst < max) {
        (in.arrayResult ? aDef : sDef)[static_cast<std::size_t>(in.dst)] = 1;
      }
    }
    const auto& roots = t_.rootSlots();
    for (std::size_t i = 0; i < roots.size(); ++i) {
      const SlotRef r = roots[i];
      const std::int32_t max = r.isArray ? nArray() : nScalar();
      if (r.slot < 0 || r.slot >= max) {
        issue(TapeIssueKind::kRootUndefined, -1,
              "root #" + std::to_string(i) + " slot " +
                  std::to_string(r.slot) + " out of range");
        continue;
      }
      const auto& def = r.isArray ? aDef : sDef;
      if (def[static_cast<std::size_t>(r.slot)] == 0) {
        issue(TapeIssueKind::kRootUndefined, -1,
              "root #" + std::to_string(i) + " slot " +
                  std::to_string(r.slot) + " is never defined");
      }
    }
  }

  void checkConesAndSharing() {
    const DepSets d = computeDepSets(t_);

    // Cone exactness: re-derive the per-variable instruction lists from
    // the recomputed dependency sets and compare with the recorded ones.
    std::vector<std::vector<std::int32_t>> expect(d.vars.size());
    for (std::size_t idx = 0; idx < t_.code().size(); ++idx) {
      const std::uint64_t* bits = d.instrAt(idx);
      for (std::size_t w = 0; w < d.words; ++w) {
        std::uint64_t word = bits[w];
        while (word != 0) {
          const auto bit = static_cast<std::size_t>(__builtin_ctzll(word));
          word &= word - 1;
          expect[w * 64 + bit].push_back(static_cast<std::int32_t>(idx));
        }
      }
    }
    const auto& recorded = t_.cones();
    if (recorded.size() != d.vars.size()) {
      issue(TapeIssueKind::kStaleCone, -1,
            "tape records " + std::to_string(recorded.size()) +
                " cones for " + std::to_string(d.vars.size()) +
                " distinct variables");
    }
    for (std::size_t i = 0; i < d.vars.size(); ++i) {
      const auto* rec = t_.coneOf(d.vars[i]);
      if (rec == nullptr) {
        issue(TapeIssueKind::kStaleCone, -1,
              "no cone recorded for variable id " +
                  std::to_string(d.vars[i]));
        continue;
      }
      if (*rec != expect[i]) {
        issue(TapeIssueKind::kStaleCone, -1,
              "cone of variable id " + std::to_string(d.vars[i]) +
                  " records " + std::to_string(rec->size()) +
                  " instructions, dependency recomputation finds " +
                  std::to_string(expect[i].size()));
      }
    }

    // Cone-coherent slot sharing. Collect writers/readers per scalar
    // slot in instruction order, then enforce: (a) all writers of a
    // shared slot carry the same (accumulated) dependency set, (b) every
    // read whose most recent writer is not the slot's final writer has
    // exactly the writers' dependency set — otherwise an incremental
    // cone replay can observe the wrong writer's value. Array slots are
    // never shared (executors alias array operands in place).
    const auto& code = t_.code();
    std::vector<std::vector<std::int32_t>> writers(t_.scalarSlotCount());
    std::vector<std::int32_t> arrayWriters(t_.arraySlotCount(), -1);
    for (std::size_t i = 0; i < code.size(); ++i) {
      const TapeInstr& in = code[i];
      if (in.arrayResult) {
        if (in.dst < 0 || in.dst >= nArray()) continue;
        auto& w = arrayWriters[static_cast<std::size_t>(in.dst)];
        if (w >= 0) {
          issue(TapeIssueKind::kUnsafeSharing, static_cast<std::int32_t>(i),
                "array slot " + std::to_string(in.dst) +
                    " written twice (instr " + std::to_string(w) +
                    "); executors alias arrays in place");
        }
        w = static_cast<std::int32_t>(i);
      } else if (in.dst >= 0 && in.dst < nScalar() && !isLeafOp(in.op)) {
        writers[static_cast<std::size_t>(in.dst)].push_back(
            static_cast<std::int32_t>(i));
      }
    }
    for (std::size_t s = 0; s < writers.size(); ++s) {
      const auto& w = writers[s];
      if (w.size() < 2) continue;
      for (std::size_t k = 1; k < w.size(); ++k) {
        if (!d.sameInstrDeps(static_cast<std::size_t>(w[0]),
                             static_cast<std::size_t>(w[k]))) {
          issue(TapeIssueKind::kUnsafeSharing, w[k],
                "writers of shared slot " + std::to_string(s) +
                    " have different variable-dependency sets");
        }
      }
    }
    for (std::size_t i = 0; i < code.size(); ++i) {
      forEachTapeOperand(code[i], [&](std::int32_t slot, bool isArray) {
        if (isArray || slot < 0 || slot >= nScalar()) return;
        const auto& w = writers[static_cast<std::size_t>(slot)];
        if (w.size() < 2) return;
        if (static_cast<std::int32_t>(i) > w.back()) return;  // final writer
        // Reader of a non-final writer: must replay exactly with the
        // class (equal dependency sets), or a cone that includes the
        // reader but not the writers re-reads a later writer's value.
        // lower_bound: an instruction that reads and rewrites the slot
        // reads the *previous* writer's value.
        const auto lastW = std::lower_bound(w.begin(), w.end(),
                                            static_cast<std::int32_t>(i)) -
                           w.begin();
        if (lastW == 0) return;  // use-before-def, reported already
        if (w[static_cast<std::size_t>(lastW - 1)] == w.back()) return;
        if (!d.sameInstrDeps(i, static_cast<std::size_t>(w[0]))) {
          issue(TapeIssueKind::kUnsafeSharing, static_cast<std::int32_t>(i),
                "read of shared slot " + std::to_string(slot) +
                    " before its final writer has a different "
                    "variable-dependency set than the writers");
        }
      });
    }
  }

  void checkCseDuplicates() {
    // Value numbering with slot versions: operands compare equal only
    // when they name the same write of the same slot (shared slots are
    // multi-version, so textual identity alone is not redundancy).
    std::vector<std::int32_t> sVer(t_.scalarSlotCount(), 0);
    std::vector<std::int32_t> aVer(t_.arraySlotCount(), 0);
    struct Seen {
      TapeInstr in;
      std::int32_t va = 0, vb = 0, vc = 0;
      std::int32_t idx = 0;
    };
    std::unordered_map<std::uint64_t, std::vector<Seen>> buckets;
    const auto& code = t_.code();
    for (std::size_t i = 0; i < code.size(); ++i) {
      const TapeInstr& in = code[i];
      if (isLeafOp(in.op)) continue;
      std::int32_t ver[3] = {0, 0, 0};
      int n = 0;
      forEachTapeOperand(in, [&](std::int32_t slot, bool isArray) {
        const std::int32_t max = isArray ? nArray() : nScalar();
        if (n < 3) {
          ver[n++] = (slot >= 0 && slot < max)
                         ? (isArray ? aVer : sVer)[static_cast<std::size_t>(
                               slot)]
                         : -1;
        }
      });
      std::uint64_t h = mixBits(static_cast<std::uint64_t>(in.op),
                                static_cast<std::uint64_t>(in.type));
      h = mixBits(h, static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(in.a)));
      h = mixBits(h, static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(in.b)));
      h = mixBits(h, static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(in.c)));
      for (int k = 0; k < 3; ++k) {
        h = mixBits(h, static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(ver[k])));
      }
      auto& bucket = buckets[h];
      for (const Seen& s : bucket) {
        if (sameTapeComputation(s.in, in) && s.va == ver[0] &&
            s.vb == ver[1] && s.vc == ver[2]) {
          issue(TapeIssueKind::kCseDuplicate, static_cast<std::int32_t>(i),
                std::string(opName(in.op)) + " duplicates instruction " +
                    std::to_string(s.idx) + " over identical operands");
          break;
        }
      }
      bucket.push_back({in, ver[0], ver[1], ver[2],
                        static_cast<std::int32_t>(i)});
      const std::int32_t dstMax = in.arrayResult ? nArray() : nScalar();
      if (in.dst >= 0 && in.dst < dstMax) {
        ++(in.arrayResult ? aVer : sVer)[static_cast<std::size_t>(in.dst)];
      }
    }
  }

  const Tape& t_;
  TapeVerifyResult result_;
};

}  // namespace

const char* tapeIssueCheckId(TapeIssueKind k) {
  switch (k) {
    case TapeIssueKind::kSlotBounds:
      return "tape-slot-bounds";
    case TapeIssueKind::kUseBeforeDef:
      return "tape-use-before-def";
    case TapeIssueKind::kConstClobbered:
      return "tape-const-clobbered";
    case TapeIssueKind::kTypeMismatch:
      return "tape-type-mismatch";
    case TapeIssueKind::kRootUndefined:
      return "tape-root-undefined";
    case TapeIssueKind::kStaleCone:
      return "tape-stale-cone";
    case TapeIssueKind::kUnsafeSharing:
      return "tape-unsafe-sharing";
    case TapeIssueKind::kCseDuplicate:
      return "tape-cse-duplicate";
  }
  return "tape-unknown";
}

bool tapeIssueIsError(TapeIssueKind k) {
  return k != TapeIssueKind::kCseDuplicate;
}

bool TapeVerifyResult::hasErrors() const {
  for (const TapeIssue& i : issues) {
    if (tapeIssueIsError(i.kind)) return true;
  }
  return false;
}

std::string TapeVerifyResult::render() const {
  std::string out;
  for (const TapeIssue& i : issues) {
    out += tapeIssueCheckId(i.kind);
    if (i.instr >= 0) out += " [#" + std::to_string(i.instr) + "]";
    out += ": " + i.message + "\n";
  }
  return out;
}

TapeStaticTypes analyzeTapeStaticTypes(const Tape& t) {
  // Mirrors the derivation in BatchTapeExecutor's constructor: constants
  // carry their own type, variable slots the binding's coercion type,
  // and instruction results follow from applyUnary/applyBinary. The one
  // dynamic case is kSelect over an array without a statically uniform
  // element type (var-bound arrays keep elements uncast).
  TapeStaticTypes st;
  const std::size_t ns = t.scalarSlotCount();
  const std::size_t na = t.arraySlotCount();
  st.scalarType.assign(ns, Type::kInt);
  st.scalarDynamic.assign(ns, 0);
  st.arrayUniform.assign(na, 0);
  st.arrayElemType.assign(na, Type::kInt);

  for (const std::int32_t s : t.constScalarSlots()) {
    if (s < 0 || s >= static_cast<std::int32_t>(ns)) continue;
    st.scalarType[static_cast<std::size_t>(s)] =
        t.scalarInit()[static_cast<std::size_t>(s)].type();
  }
  for (const auto& b : t.varBindings()) {
    if (b.slot < 0 || b.slot >= static_cast<std::int32_t>(ns)) continue;
    st.scalarType[static_cast<std::size_t>(b.slot)] = b.type;
  }
  for (const std::int32_t s : t.constArraySlots()) {
    if (s < 0 || s >= static_cast<std::int32_t>(na)) continue;
    const auto& init = t.arrayInit()[static_cast<std::size_t>(s)];
    if (init.empty()) continue;
    bool uniform = true;
    for (const Scalar& e : init) uniform &= e.type() == init[0].type();
    if (uniform) {
      st.arrayUniform[static_cast<std::size_t>(s)] = 1;
      st.arrayElemType[static_cast<std::size_t>(s)] = init[0].type();
    }
  }

  for (const TapeInstr& in : t.code()) {
    if (in.arrayResult) {
      if (in.dst < 0 || in.dst >= static_cast<std::int32_t>(na)) continue;
      const auto dst = static_cast<std::size_t>(in.dst);
      if (in.op == Op::kStore) {
        const bool srcOk = in.a >= 0 && in.a < static_cast<std::int32_t>(na);
        const auto src = static_cast<std::size_t>(in.a);
        st.arrayUniform[dst] =
            srcOk && st.arrayUniform[src] != 0 &&
                    st.arrayElemType[src] == in.type
                ? 1
                : 0;
        st.arrayElemType[dst] = in.type;
      } else {  // array kIte
        const bool ok = in.b >= 0 && in.b < static_cast<std::int32_t>(na) &&
                        in.c >= 0 && in.c < static_cast<std::int32_t>(na);
        if (ok) {
          const auto tb = static_cast<std::size_t>(in.b);
          const auto fc = static_cast<std::size_t>(in.c);
          st.arrayUniform[dst] =
              st.arrayUniform[tb] != 0 && st.arrayUniform[fc] != 0 &&
                      st.arrayElemType[tb] == st.arrayElemType[fc]
                  ? 1
                  : 0;
          st.arrayElemType[dst] = st.arrayElemType[tb];
        } else {
          st.arrayUniform[dst] = 0;
        }
      }
      continue;
    }
    if (in.dst < 0 || in.dst >= static_cast<std::int32_t>(ns)) continue;
    const auto dst = static_cast<std::size_t>(in.dst);
    switch (in.op) {
      case Op::kNot:
        st.scalarType[dst] = Type::kBool;
        break;
      case Op::kNeg:
      case Op::kAbs:
        st.scalarType[dst] = in.type == Type::kReal ? Type::kReal : Type::kInt;
        break;
      case Op::kSelect: {
        const bool aOk = in.a >= 0 && in.a < static_cast<std::int32_t>(na);
        if (aOk && st.arrayUniform[static_cast<std::size_t>(in.a)] != 0) {
          st.scalarType[dst] =
              st.arrayElemType[static_cast<std::size_t>(in.a)];
        } else {
          st.scalarDynamic[dst] = 1;
          st.scalarType[dst] = in.type;
        }
        break;
      }
      default:
        st.scalarType[dst] = in.type;
        break;
    }
  }
  return st;
}

TapeVerifyResult verifyTape(const Tape& t) { return Verifier(t).run(); }

void requireVerifiedTape(const Tape& t, const char* what) {
  const TapeVerifyResult r = verifyTape(t);
  for (const TapeIssue& i : r.issues) {
    if (!tapeIssueIsError(i.kind)) continue;
    throw EvalError(std::string(what) + ": tape verification failed: " +
                    tapeIssueCheckId(i.kind) +
                    (i.instr >= 0 ? " [#" + std::to_string(i.instr) + "]"
                                  : std::string()) +
                    ": " + i.message);
  }
}

bool tapeVerifyEnabled() {
#ifndef NDEBUG
  return true;
#else
  static const bool on = util::envFlag("STCG_TAPE_VERIFY", false);
  return on;
#endif
}

void maybeRequireVerifiedTape(const Tape& t, const char* what) {
  if (tapeVerifyEnabled()) requireVerifiedTape(t, what);
}

}  // namespace stcg::expr
