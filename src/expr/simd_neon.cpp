// NEON implementation of the LaneKernels table (AArch64 only, where the
// float64x2 unit is architectural baseline — no runtime detection needed).
// Formulas mirror simd_avx2.cpp two lanes at a time; odd tails run the
// scalar helpers from simd_ops.h so vector body and tail cannot disagree.
// Built with -ffp-contract=off like the other kernel TUs.
#include "expr/simd.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "expr/simd_ops.h"

namespace stcg::expr::simd_detail {
namespace {

inline float64x2_t loadPd(const std::uint64_t* p) {
  return vreinterpretq_f64_u64(vld1q_u64(p));
}
inline void storePd(std::uint64_t* p, float64x2_t v) {
  vst1q_u64(p, vreinterpretq_u64_f64(v));
}
inline uint64x2_t notU64(uint64x2_t m) {
  return veorq_u64(m, vdupq_n_u64(~std::uint64_t{0}));
}
inline float64x2_t negPd(float64x2_t v) {
  return vreinterpretq_f64_u64(veorq_u64(vreinterpretq_u64_f64(v),
                                         vdupq_n_u64(0x8000000000000000ULL)));
}
inline float64x2_t andNotPd(uint64x2_t mask, float64x2_t v) {
  return vreinterpretq_f64_u64(vbicq_u64(vreinterpretq_u64_f64(v), mask));
}

void rAddNeon(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    storePd(dst + i, vaddq_f64(loadPd(a + i), loadPd(b + i)));
  }
  for (; i < n; ++i) dst[i] = rAddOp(a[i], b[i]);
}

void rSubNeon(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    storePd(dst + i, vsubq_f64(loadPd(a + i), loadPd(b + i)));
  }
  for (; i < n; ++i) dst[i] = rSubOp(a[i], b[i]);
}

void rMulNeon(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    storePd(dst + i, vmulq_f64(loadPd(a + i), loadPd(b + i)));
  }
  for (; i < n; ++i) dst[i] = rMulOp(a[i], b[i]);
}

void rDivGNeon(std::uint64_t* dst, const std::uint64_t* a,
               const std::uint64_t* b, int n) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t vb = loadPd(b + i);
    const float64x2_t q = vdivq_f64(loadPd(a + i), vb);
    storePd(dst + i, andNotPd(vceqq_f64(vb, zero), q));
  }
  for (; i < n; ++i) dst[i] = rDivGOp(a[i], b[i]);
}

void rFminNeon(std::uint64_t* dst, const std::uint64_t* a,
               const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t va = loadPd(a + i), vb = loadPd(b + i);
    // Runtime glibc fmin: a iff a <= b (equal picks the FIRST operand)
    // or b alone is NaN; both-NaN picks b (simd_ops.h).
    const uint64x2_t pick_a =
        vorrq_u64(vcleq_f64(va, vb),
                  vandq_u64(notU64(vceqq_f64(vb, vb)), vceqq_f64(va, va)));
    storePd(dst + i, vbslq_f64(pick_a, va, vb));
  }
  for (; i < n; ++i) dst[i] = rFminOp(a[i], b[i]);
}

void rFmaxNeon(std::uint64_t* dst, const std::uint64_t* a,
               const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t va = loadPd(a + i), vb = loadPd(b + i);
    const uint64x2_t pick_a =
        vorrq_u64(vcgeq_f64(va, vb),
                  vandq_u64(notU64(vceqq_f64(vb, vb)), vceqq_f64(va, va)));
    storePd(dst + i, vbslq_f64(pick_a, va, vb));
  }
  for (; i < n; ++i) dst[i] = rFmaxOp(a[i], b[i]);
}

void rNegNeon(std::uint64_t* dst, const std::uint64_t* a, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) storePd(dst + i, negPd(loadPd(a + i)));
  for (; i < n; ++i) dst[i] = rNegOp(a[i]);
}

void rAbsNeon(std::uint64_t* dst, const std::uint64_t* a, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) storePd(dst + i, vabsq_f64(loadPd(a + i)));
  for (; i < n; ++i) dst[i] = rAbsOp(a[i]);
}

template <int Ix>
void rCmpNeon(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t va = loadPd(a + i), vb = loadPd(b + i);
    uint64x2_t m;
    if constexpr (Ix == kIxLt) m = vcltq_f64(va, vb);
    if constexpr (Ix == kIxLe) m = vcleq_f64(va, vb);
    if constexpr (Ix == kIxGt) m = vcgtq_f64(va, vb);
    if constexpr (Ix == kIxGe) m = vcgeq_f64(va, vb);
    if constexpr (Ix == kIxEq) m = vceqq_f64(va, vb);
    if constexpr (Ix == kIxNe) m = notU64(vceqq_f64(va, vb));
    vst1q_u64(dst + i, vshrq_n_u64(m, 63));
  }
  for (; i < n; ++i) dst[i] = rCmpOp<Ix>(a[i], b[i]);
}

void iAddNeon(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vaddq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) dst[i] = iAddOp(a[i], b[i]);
}

void iSubNeon(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vsubq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) dst[i] = iSubOp(a[i], b[i]);
}

void iMinNeon(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t va = vreinterpretq_s64_u64(vld1q_u64(a + i));
    const int64x2_t vb = vreinterpretq_s64_u64(vld1q_u64(b + i));
    // std::min: b iff b < a; equal -> a.
    vst1q_u64(dst + i,
              vreinterpretq_u64_s64(
                  vbslq_s64(vcltq_s64(vb, va), vb, va)));
  }
  for (; i < n; ++i) dst[i] = iMinOp(a[i], b[i]);
}

void iMaxNeon(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t va = vreinterpretq_s64_u64(vld1q_u64(a + i));
    const int64x2_t vb = vreinterpretq_s64_u64(vld1q_u64(b + i));
    vst1q_u64(dst + i,
              vreinterpretq_u64_s64(
                  vbslq_s64(vcgtq_s64(vb, va), vb, va)));
  }
  for (; i < n; ++i) dst[i] = iMaxOp(a[i], b[i]);
}

void iNegNeon(std::uint64_t* dst, const std::uint64_t* a, int n) {
  const uint64x2_t zero = vdupq_n_u64(0);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vsubq_u64(zero, vld1q_u64(a + i)));
  }
  for (; i < n; ++i) dst[i] = iNegOp(a[i]);
}

void iAbsNeon(std::uint64_t* dst, const std::uint64_t* a, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t va = vreinterpretq_s64_u64(vld1q_u64(a + i));
    vst1q_u64(dst + i, vreinterpretq_u64_s64(vabsq_s64(va)));
  }
  for (; i < n; ++i) dst[i] = iAbsOp(a[i]);
}

void bAndNeon(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) dst[i] = bAndOp(a[i], b[i]);
}

void bOrNeon(std::uint64_t* dst, const std::uint64_t* a,
             const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) dst[i] = bOrOp(a[i], b[i]);
}

void bXorNeon(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) dst[i] = bXorOp(a[i], b[i]);
}

void bNotNeon(std::uint64_t* dst, const std::uint64_t* a, int n) {
  const uint64x2_t one = vdupq_n_u64(1);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, veorq_u64(vld1q_u64(a + i), one));
  }
  for (; i < n; ++i) dst[i] = bNotOp(a[i]);
}

void sel64Neon(std::uint64_t* dst, const std::uint64_t* c,
               const std::uint64_t* a, const std::uint64_t* b, int n) {
  const uint64x2_t zero = vdupq_n_u64(0);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t isZero = vceqq_u64(vld1q_u64(c + i), zero);
    vst1q_u64(dst + i,
              vbslq_u64(isZero, vld1q_u64(b + i), vld1q_u64(a + i)));
  }
  for (; i < n; ++i) dst[i] = c[i] != 0 ? a[i] : b[i];
}

void dSumNeon(double* dst, const double* a, const double* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(dst + i, vaddq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) dst[i] = dSumOp(a[i], b[i]);
}

void dMinNeon(double* dst, const double* a, const double* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t va = vld1q_f64(a + i), vb = vld1q_f64(b + i);
    vst1q_f64(dst + i, vbslq_f64(vcltq_f64(vb, va), vb, va));
  }
  for (; i < n; ++i) dst[i] = dMinOp(a[i], b[i]);
}

template <int Form>
inline float64x2_t dFormNeon(float64x2_t x) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t eps = vdupq_n_f64(kDistEps);
  if constexpr (Form == 0) {
    return vabsq_f64(x);
  } else if constexpr (Form == 1) {
    return vreinterpretq_f64_u64(
        vandq_u64(vceqq_f64(x, zero),
                  vreinterpretq_u64_f64(vdupq_n_f64(1.0))));
  } else if constexpr (Form == 2) {
    return andNotPd(vcltq_f64(x, zero), vaddq_f64(x, eps));
  } else if constexpr (Form == 3) {
    // eps - x, not negate-then-add: NaN sign parity (simd_ops.h dFormOp).
    return andNotPd(vcgeq_f64(x, zero), vsubq_f64(eps, x));
  } else if constexpr (Form == 4) {
    return andNotPd(vcleq_f64(x, zero), x);
  } else {
    return andNotPd(vcgtq_f64(x, zero), vsubq_f64(eps, x));
  }
}

template <int Form, bool Swap>
void dCmpNeon(double* dst, const double* a, const double* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t va = vld1q_f64(a + i), vb = vld1q_f64(b + i);
    const float64x2_t x = Swap ? vsubq_f64(vb, va) : vsubq_f64(va, vb);
    vst1q_f64(dst + i, dFormNeon<Form>(x));
  }
  for (; i < n; ++i) {
    dst[i] = dFormOp<Form>(Swap ? b[i] - a[i] : a[i] - b[i]);
  }
}

void dTruthNeon(double* dst, const std::uint64_t* truth, std::uint64_t want,
                int n) {
  const uint64x2_t vwant = vdupq_n_u64(want);
  const float64x2_t one = vdupq_n_f64(1.0);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t hit = vceqq_u64(vld1q_u64(truth + i), vwant);
    vst1q_f64(dst + i, andNotPd(hit, one));
  }
  for (; i < n; ++i) dst[i] = dTruthOp(truth[i], want);
}

const LaneKernels makeNeonKernels() {
  LaneKernels k{};
  k.rAdd = rAddNeon;
  k.rSub = rSubNeon;
  k.rMul = rMulNeon;
  k.rDivG = rDivGNeon;
  k.rFmin = rFminNeon;
  k.rFmax = rFmaxNeon;
  k.rNeg = rNegNeon;
  k.rAbs = rAbsNeon;
  k.rCmp[kIxLt] = rCmpNeon<kIxLt>;
  k.rCmp[kIxLe] = rCmpNeon<kIxLe>;
  k.rCmp[kIxGt] = rCmpNeon<kIxGt>;
  k.rCmp[kIxGe] = rCmpNeon<kIxGe>;
  k.rCmp[kIxEq] = rCmpNeon<kIxEq>;
  k.rCmp[kIxNe] = rCmpNeon<kIxNe>;
  k.iAdd = iAddNeon;
  k.iSub = iSubNeon;
  k.iMin = iMinNeon;
  k.iMax = iMaxNeon;
  k.iNeg = iNegNeon;
  k.iAbs = iAbsNeon;
  k.bAnd = bAndNeon;
  k.bOr = bOrNeon;
  k.bXor = bXorNeon;
  k.bNot = bNotNeon;
  k.sel64 = sel64Neon;
  k.dSum = dSumNeon;
  k.dMin = dMinNeon;
  k.dCmp[kIxEq][1] = dCmpNeon<0, false>;
  k.dCmp[kIxEq][0] = dCmpNeon<1, false>;
  k.dCmp[kIxNe][1] = dCmpNeon<1, false>;
  k.dCmp[kIxNe][0] = dCmpNeon<0, false>;
  k.dCmp[kIxLt][1] = dCmpNeon<2, false>;
  k.dCmp[kIxLt][0] = dCmpNeon<3, false>;
  k.dCmp[kIxLe][1] = dCmpNeon<4, false>;
  k.dCmp[kIxLe][0] = dCmpNeon<5, false>;
  k.dCmp[kIxGt][1] = dCmpNeon<2, true>;
  k.dCmp[kIxGt][0] = dCmpNeon<3, true>;
  k.dCmp[kIxGe][1] = dCmpNeon<4, true>;
  k.dCmp[kIxGe][0] = dCmpNeon<5, true>;
  k.dTruth = dTruthNeon;
  return k;
}

const LaneKernels kNeonKernels = makeNeonKernels();

}  // namespace

const LaneKernels* neonKernelsOrNull() { return &kNeonKernels; }

}  // namespace stcg::expr::simd_detail

#else  // non-AArch64 build: no NEON table

namespace stcg::expr::simd_detail {
const LaneKernels* neonKernelsOrNull() { return nullptr; }
}  // namespace stcg::expr::simd_detail

#endif
