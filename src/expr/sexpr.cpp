#include "expr/sexpr.h"

#include <cctype>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "expr/builder.h"
#include "util/strings.h"

namespace stcg::expr {

namespace {

const char* sexprOpName(Op op) {
  switch (op) {
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
    case Op::kDiv: return "/";
    case Op::kMod: return "%";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
    case Op::kNeg: return "neg";
    case Op::kAbs: return "abs";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kGt: return ">";
    case Op::kGe: return ">=";
    case Op::kEq: return "==";
    case Op::kNe: return "!=";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kNot: return "not";
    case Op::kIte: return "ite";
    case Op::kSelect: return "select";
    case Op::kStore: return "store";
    default: return nullptr;
  }
}

std::string scalarToken(const Scalar& s) {
  switch (s.type()) {
    case Type::kBool:
      return std::string("(b ") + (s.asBool() ? "true" : "false") + ")";
    case Type::kInt:
      return "(i " + std::to_string(s.asInt()) + ")";
    case Type::kReal: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "(r %.17g)", s.asReal());
      return buf;
    }
  }
  return "(i 0)";
}

void render(const Expr& e, std::string& out) {
  switch (e.op) {
    case Op::kConst:
      out += scalarToken(e.constVal);
      return;
    case Op::kConstArray: {
      out += "(array ";
      out += typeName(e.type);
      for (const auto& el : e.constArray) {
        out += ' ';
        out += el.toString();
      }
      out += ')';
      return;
    }
    case Op::kVar:
    case Op::kVarArray: {
      for (const char c : e.varName) {
        if (std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
            c == ')') {
          throw SexprError("variable name not serializable: " + e.varName);
        }
      }
      out += "(var " + e.varName + ")";
      return;
    }
    case Op::kCast:
      out += "(cast-";
      out += typeName(e.type);
      break;
    default: {
      const char* name = sexprOpName(e.op);
      if (name == nullptr) throw SexprError("unserializable op");
      out += '(';
      out += name;
      break;
    }
  }
  for (const auto& a : e.args) {
    out += ' ';
    render(*a, out);
  }
  out += ')';
}

// ----- Parser ------------------------------------------------------------

struct Token {
  enum Kind { kOpen, kClose, kAtom } kind;
  std::string text;
};

std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (c == '(') {
      out.push_back({Token::kOpen, "("});
      ++i;
    } else if (c == ')') {
      out.push_back({Token::kClose, ")"});
      ++i;
    } else {
      std::size_t j = i;
      while (j < text.size() && text[j] != '(' && text[j] != ')' &&
             !std::isspace(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      out.push_back({Token::kAtom, text.substr(i, j - i)});
      i = j;
    }
  }
  return out;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, const VarResolver& resolve)
      : tokens_(std::move(tokens)), resolve_(resolve) {}

  ExprPtr parse() {
    ExprPtr e = expr();
    if (pos_ != tokens_.size()) throw SexprError("trailing tokens");
    return e;
  }

 private:
  const Token& need(Token::Kind k, const char* what) {
    if (pos_ >= tokens_.size() || tokens_[pos_].kind != k) {
      throw SexprError(std::string("expected ") + what);
    }
    return tokens_[pos_++];
  }

  Scalar scalarElem(Type t, const std::string& text) {
    switch (t) {
      case Type::kBool:
        return Scalar::b(text == "true" || text == "1");
      case Type::kInt:
        return Scalar::i(std::stoll(text));
      case Type::kReal:
        return Scalar::r(std::stod(text));
    }
    return Scalar::i(0);
  }

  Type typeOf(const std::string& name) {
    if (name == "bool") return Type::kBool;
    if (name == "int") return Type::kInt;
    if (name == "real") return Type::kReal;
    throw SexprError("unknown type: " + name);
  }

  ExprPtr expr() {
    need(Token::kOpen, "'('");
    const std::string head = need(Token::kAtom, "operator").text;

    if (head == "b" || head == "i" || head == "r") {
      const std::string val = need(Token::kAtom, "literal").text;
      need(Token::kClose, "')'");
      if (head == "b") return cBool(val == "true" || val == "1");
      if (head == "i") return cInt(std::stoll(val));
      return cReal(std::stod(val));
    }
    if (head == "array") {
      const Type t = typeOf(need(Token::kAtom, "type").text);
      std::vector<Scalar> elems;
      while (pos_ < tokens_.size() && tokens_[pos_].kind == Token::kAtom) {
        elems.push_back(scalarElem(t, tokens_[pos_++].text));
      }
      need(Token::kClose, "')'");
      return cArray(t, std::move(elems));
    }
    if (head == "var") {
      const std::string name = need(Token::kAtom, "name").text;
      need(Token::kClose, "')'");
      ExprPtr leaf = resolve_(name);
      if (leaf == nullptr) throw SexprError("unresolved variable: " + name);
      return leaf;
    }

    std::vector<ExprPtr> args;
    while (pos_ < tokens_.size() && tokens_[pos_].kind == Token::kOpen) {
      args.push_back(expr());
    }
    need(Token::kClose, "')'");
    const auto arity = [&](std::size_t n) {
      if (args.size() != n) {
        throw SexprError("bad arity for " + head);
      }
    };
    if (head == "+") { arity(2); return addE(args[0], args[1]); }
    if (head == "-") { arity(2); return subE(args[0], args[1]); }
    if (head == "*") { arity(2); return mulE(args[0], args[1]); }
    if (head == "/") { arity(2); return divE(args[0], args[1]); }
    if (head == "%") { arity(2); return modE(args[0], args[1]); }
    if (head == "min") { arity(2); return minE(args[0], args[1]); }
    if (head == "max") { arity(2); return maxE(args[0], args[1]); }
    if (head == "neg") { arity(1); return negE(args[0]); }
    if (head == "abs") { arity(1); return absE(args[0]); }
    if (head == "<") { arity(2); return ltE(args[0], args[1]); }
    if (head == "<=") { arity(2); return leE(args[0], args[1]); }
    if (head == ">") { arity(2); return gtE(args[0], args[1]); }
    if (head == ">=") { arity(2); return geE(args[0], args[1]); }
    if (head == "==") { arity(2); return eqE(args[0], args[1]); }
    if (head == "!=") { arity(2); return neE(args[0], args[1]); }
    if (head == "and") { arity(2); return andE(args[0], args[1]); }
    if (head == "or") { arity(2); return orE(args[0], args[1]); }
    if (head == "xor") { arity(2); return xorE(args[0], args[1]); }
    if (head == "not") { arity(1); return notE(args[0]); }
    if (head == "ite") { arity(3); return iteE(args[0], args[1], args[2]); }
    if (head == "select") { arity(2); return selectE(args[0], args[1]); }
    if (head == "store") {
      arity(3);
      return storeE(args[0], args[1], args[2]);
    }
    if (head == "cast-bool") { arity(1); return castE(args[0], Type::kBool); }
    if (head == "cast-int") { arity(1); return castE(args[0], Type::kInt); }
    if (head == "cast-real") { arity(1); return castE(args[0], Type::kReal); }
    throw SexprError("unknown operator: " + head);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  const VarResolver& resolve_;
};

}  // namespace

std::string toSexpr(const ExprPtr& e) {
  std::string out;
  render(*e, out);
  return out;
}

ExprPtr parseSexpr(const std::string& text, const VarResolver& resolve) {
  Parser p(tokenize(text), resolve);
  return p.parse();
}

}  // namespace stcg::expr
