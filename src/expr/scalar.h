// Typed scalar values flowing through models and expressions.
//
// Three primitive types mirror the Simulink signal types the paper's models
// use: boolean, (64-bit) integer and (double) real. A Value is a fixed-width
// vector of scalars of one type and models a (possibly wide) Simulink signal
// or an internal state element such as a Delay buffer or data-store array.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace stcg::expr {

enum class Type { kBool, kInt, kReal };

[[nodiscard]] const char* typeName(Type t);

/// The canonical saturating real -> int64 conversion every engine shares:
/// non-finite maps to 0, values beyond ±9.2e18 clamp to INT64_MAX/MIN
/// (the nearest representable int64 boundaries a double can express), and
/// everything else truncates toward zero. Scalar::toInt, the batch
/// executor's lane kernels and the tape JIT's emitted C (see
/// saturatingRealToIntC) are all this one function, so the engines cannot
/// drift on the cast edge cases.
[[nodiscard]] inline std::int64_t saturatingRealToInt(double r) {
  if (!std::isfinite(r)) return 0;
  if (r >= 9.2e18) return INT64_MAX;
  if (r <= -9.2e18) return INT64_MIN;
  return static_cast<std::int64_t>(r);
}

/// C source of saturatingRealToInt (a `static inline i64 sat_i64(double)`
/// definition), emitted verbatim into every JIT translation unit. Defined
/// next to the C++ inline in scalar.cpp so the two bodies are reviewed as
/// one unit.
[[nodiscard]] const char* saturatingRealToIntC();

/// One typed scalar. Immutable after construction.
class Scalar {
 public:
  Scalar() : v_(std::int64_t{0}) {}
  static Scalar b(bool x) { return Scalar(x); }
  static Scalar i(std::int64_t x) { return Scalar(x); }
  static Scalar r(double x) { return Scalar(x); }

  [[nodiscard]] Type type() const;

  [[nodiscard]] bool asBool() const;        // requires kBool
  [[nodiscard]] std::int64_t asInt() const; // requires kInt
  [[nodiscard]] double asReal() const;      // requires kReal

  /// Numeric view: bool -> 0/1, int -> double, real -> itself.
  [[nodiscard]] double toReal() const;
  /// Integer view: bool -> 0/1, real -> truncated toward zero.
  [[nodiscard]] std::int64_t toInt() const;
  /// Truthiness: nonzero numerics are true.
  [[nodiscard]] bool toBool() const;

  /// Convert to exactly `t` using the coercions above.
  [[nodiscard]] Scalar castTo(Type t) const;

  [[nodiscard]] bool operator==(const Scalar& o) const { return v_ == o.v_; }
  [[nodiscard]] bool operator!=(const Scalar& o) const { return !(*this == o); }

  [[nodiscard]] std::string toString() const;

 private:
  explicit Scalar(bool x) : v_(x) {}
  explicit Scalar(std::int64_t x) : v_(x) {}
  explicit Scalar(double x) : v_(x) {}
  std::variant<bool, std::int64_t, double> v_;
};

/// A width-N signal value: N scalars of a single type. Width-1 values are
/// ubiquitous; arrays back Delay buffers, data stores and queues.
class Value {
 public:
  Value() : type_(Type::kInt) {}
  explicit Value(Scalar s) : type_(s.type()), elems_{s} {}
  Value(Type t, std::vector<Scalar> elems);

  /// A width-n value with every element equal to `fill`.
  static Value splat(Scalar fill, int n);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] int width() const { return static_cast<int>(elems_.size()); }
  [[nodiscard]] bool isScalar() const { return elems_.size() == 1; }

  [[nodiscard]] const Scalar& at(int i) const { return elems_.at(i); }
  void set(int i, Scalar s);

  /// The single element of a width-1 value.
  [[nodiscard]] const Scalar& scalar() const { return elems_.at(0); }

  [[nodiscard]] const std::vector<Scalar>& elems() const { return elems_; }

  [[nodiscard]] bool operator==(const Value& o) const {
    return type_ == o.type_ && elems_ == o.elems_;
  }
  [[nodiscard]] bool operator!=(const Value& o) const { return !(*this == o); }

  [[nodiscard]] std::string toString() const;

 private:
  Type type_;
  std::vector<Scalar> elems_;
};

}  // namespace stcg::expr
