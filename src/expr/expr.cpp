#include "expr/expr.h"

#include <algorithm>
#include <unordered_set>

#include "util/strings.h"

namespace stcg::expr {

const char* opName(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kConstArray: return "constarray";
    case Op::kVar: return "var";
    case Op::kVarArray: return "vararray";
    case Op::kNot: return "!";
    case Op::kNeg: return "-";
    case Op::kAbs: return "abs";
    case Op::kCast: return "cast";
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
    case Op::kDiv: return "/";
    case Op::kMod: return "%";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kGt: return ">";
    case Op::kGe: return ">=";
    case Op::kEq: return "==";
    case Op::kNe: return "!=";
    case Op::kAnd: return "&&";
    case Op::kOr: return "||";
    case Op::kXor: return "^";
    case Op::kIte: return "ite";
    case Op::kSelect: return "select";
    case Op::kStore: return "store";
  }
  return "?";
}

namespace {

void renderInto(const Expr& e, std::string& out) {
  switch (e.op) {
    case Op::kConst:
      out += e.constVal.toString();
      return;
    case Op::kConstArray: {
      out += '[';
      for (int i = 0; i < e.arraySize; ++i) {
        if (i > 0) out += ", ";
        out += e.constArray[static_cast<std::size_t>(i)].toString();
      }
      out += ']';
      return;
    }
    case Op::kVar:
    case Op::kVarArray:
      out += e.varName.empty() ? ("v" + std::to_string(e.var)) : e.varName;
      return;
    case Op::kNot:
    case Op::kNeg:
      out += opName(e.op);
      out += '(';
      renderInto(*e.args[0], out);
      out += ')';
      return;
    case Op::kAbs:
    case Op::kMin:
    case Op::kMax:
    case Op::kIte:
    case Op::kSelect:
    case Op::kStore: {
      out += opName(e.op);
      out += '(';
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        renderInto(*e.args[i], out);
      }
      out += ')';
      return;
    }
    case Op::kCast:
      out += "cast<";
      out += typeName(e.type);
      out += ">(";
      renderInto(*e.args[0], out);
      out += ')';
      return;
    default: {
      out += '(';
      renderInto(*e.args[0], out);
      out += ' ';
      out += opName(e.op);
      out += ' ';
      renderInto(*e.args[1], out);
      out += ')';
      return;
    }
  }
}

}  // namespace

std::string Expr::toString() const {
  std::string out;
  renderInto(*this, out);
  return out;
}

namespace {

void collectVarsRec(const Expr* e, std::unordered_set<const Expr*>& seen,
                    std::unordered_set<VarId>& vars) {
  if (!seen.insert(e).second) return;
  if (e->op == Op::kVar || e->op == Op::kVarArray) vars.insert(e->var);
  for (const auto& a : e->args) collectVarsRec(a.get(), seen, vars);
}

void dagSizeRec(const Expr* e, std::unordered_set<const Expr*>& seen) {
  if (!seen.insert(e).second) return;
  for (const auto& a : e->args) dagSizeRec(a.get(), seen);
}

}  // namespace

std::vector<VarId> collectVars(const ExprPtr& e) {
  std::unordered_set<const Expr*> seen;
  std::unordered_set<VarId> vars;
  collectVarsRec(e.get(), seen, vars);
  std::vector<VarId> out(vars.begin(), vars.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t dagSize(const ExprPtr& e) {
  std::unordered_set<const Expr*> seen;
  dagSizeRec(e.get(), seen);
  return seen.size();
}

}  // namespace stcg::expr
