// Smart constructors for expression nodes.
//
// Every constructor performs local constant folding (constant operands are
// evaluated immediately) and a small set of algebraic simplifications
// (identity/absorbing elements, ITE with constant condition, select of a
// constant array at a constant index, ...). Because the STCG core fixes
// model state as constants before solving (paper §III-A), this folding is
// what collapses state-dependent conditions into trivial residuals — it is
// a load-bearing part of the reproduction, not just an optimization.
#pragma once

#include "expr/expr.h"

namespace stcg::expr {

// Leaves.
[[nodiscard]] ExprPtr cBool(bool v);
[[nodiscard]] ExprPtr cInt(std::int64_t v);
[[nodiscard]] ExprPtr cReal(double v);
[[nodiscard]] ExprPtr cScalar(Scalar v);
[[nodiscard]] ExprPtr cArray(Type elemType, std::vector<Scalar> elems);
[[nodiscard]] ExprPtr mkVar(const VarInfo& info);
[[nodiscard]] ExprPtr mkVarArray(VarId id, const std::string& name,
                                 Type elemType, int size);

// Unary.
[[nodiscard]] ExprPtr notE(ExprPtr a);
[[nodiscard]] ExprPtr negE(ExprPtr a);
[[nodiscard]] ExprPtr absE(ExprPtr a);
[[nodiscard]] ExprPtr castE(ExprPtr a, Type to);

// Binary arithmetic. Mixed int/real operands promote to real.
[[nodiscard]] ExprPtr addE(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr subE(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr mulE(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr divE(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr modE(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr minE(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr maxE(ExprPtr a, ExprPtr b);

// Relational.
[[nodiscard]] ExprPtr ltE(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr leE(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr gtE(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr geE(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr eqE(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr neE(ExprPtr a, ExprPtr b);

// Boolean.
[[nodiscard]] ExprPtr andE(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr orE(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr xorE(ExprPtr a, ExprPtr b);
/// Conjunction / disjunction of an arbitrary list (empty list -> identity).
[[nodiscard]] ExprPtr andAll(const std::vector<ExprPtr>& xs);
[[nodiscard]] ExprPtr orAll(const std::vector<ExprPtr>& xs);

// Ternary / arrays.
[[nodiscard]] ExprPtr iteE(ExprPtr cond, ExprPtr thenE, ExprPtr elseE);
[[nodiscard]] ExprPtr selectE(ExprPtr array, ExprPtr index);
[[nodiscard]] ExprPtr storeE(ExprPtr array, ExprPtr index, ExprPtr value);

// Scalar op application shared with the evaluator.
[[nodiscard]] Scalar applyUnary(Op op, Type resultType, const Scalar& a);
[[nodiscard]] Scalar applyBinary(Op op, const Scalar& a, const Scalar& b);

/// Result type of a numeric binary op on these operand types.
[[nodiscard]] Type promote(Type a, Type b);

}  // namespace stcg::expr
