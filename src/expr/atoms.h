// Atomic-condition extraction for Condition Coverage and MCDC.
//
// Following Simulink coverage semantics, the "conditions" of a decision are
// the maximal boolean subexpressions that are not themselves built from
// logical connectives: relational operators, boolean variables, and boolean
// casts of numeric expressions. A decision such as
//     (a > 3 && !(b == c)) || enable
// has atoms {a > 3, b == c, enable}.
#pragma once

#include <vector>

#include "expr/expr.h"

namespace stcg::expr {

/// Extract the distinct atomic conditions of boolean expression `e`,
/// in left-to-right first-occurrence order. Duplicate subtrees (by pointer
/// identity or structural equality of relational leaves) appear once.
[[nodiscard]] std::vector<ExprPtr> extractAtoms(const ExprPtr& e);

/// True if `e` is an atomic boolean condition (no logical connectives
/// at its root).
[[nodiscard]] bool isAtom(const ExprPtr& e);

}  // namespace stcg::expr
