// Tape -> native JIT: emit straight-line C from a compiled Tape, build it
// with the system C compiler into a shared object, dlopen it, and run the
// model step (plus the optional Korel/Tracey distance overlay and B-wide
// batch lanes) as native code.
//
// The emitted C is a transliteration of TapeExecutor::exec, one block per
// instruction, specialized on the static slot types analyzeTapeStaticTypes
// derives (the same classification BatchTapeExecutor uses): statically
// typed slots read and write raw 64-bit payloads with no tag dispatch,
// and only the dynamic slots (kSelect over non-uniform arrays) fall back
// to tagged generic helpers that mirror applyUnary/applyBinary. Guarded
// kDiv/kMod, clamped kSelect/kStore and the saturating real->int cast
// (saturatingRealToIntC, the same body as Scalar::toInt) are preserved
// operation for operation, so JIT results are bit-identical to the
// interpreter — which stays on as the differential oracle, the same
// pattern as tape-vs-tree.
//
// Environment robustness is part of the contract: TapeJit::compile never
// throws on environment failures (no compiler, failed dlopen, stale or
// corrupt cached .so). It returns nullptr with a reason, records a
// severity-tagged diagnostic (jitDiagnostics()), and callers degrade to
// the interpreted tape. STCG_JIT=0 disables the JIT process-wide
// (mirroring STCG_TAPE_OPT); STCG_JIT_CC overrides the compiler command
// (default "cc"); STCG_JIT_CACHE overrides the on-disk .so cache
// directory (default "$TMPDIR/stcg-jit-cache"). Compiled modules are
// keyed by a hash of the emitted source, memoized in-process and cached
// on disk with an embedded tag symbol so stale objects are detected,
// discarded and rebuilt instead of trusted.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "expr/eval.h"
#include "expr/tape.h"

namespace stcg::expr {

/// False when STCG_JIT=0 (checked once per process, like STCG_TAPE_OPT).
[[nodiscard]] bool jitEnabled();

/// The C compiler command: STCG_JIT_CC when set and non-empty, else "cc".
/// Read per compile so tests can redirect it.
[[nodiscard]] std::string jitCompiler();

/// A recorded environment event: compile/load failures ("warning",
/// check "jit-unavailable") and cache recoveries ("note", check
/// "jit-cache"). Severity/check vocabulary matches the lint layer so the
/// CLI can surface them verbatim.
struct JitDiagnostic {
  std::string severity;
  std::string check;
  std::string message;
};
[[nodiscard]] std::vector<JitDiagnostic> jitDiagnostics();
void clearJitDiagnostics();

/// Drop the in-process module memo (testing hook: the next compile() goes
/// back through the on-disk cache and, if needed, the compiler).
void jitClearCache();

/// Expr-layer mirror of solver::DistanceTape's overlay program, so the
/// emitter can compile the distance recursion without depending on the
/// solver layer. solver::DistanceTape converts its DistanceProgram into
/// this field for field (the kinds and operand meanings are identical).
struct JitOverlayInstr {
  enum class Kind { kSum, kMin, kCmp, kTruth };
  Kind kind = Kind::kSum;
  std::int32_t dst = -1;
  std::int32_t a = -1, b = -1;    // distance-slot operands (kSum/kMin)
  std::int32_t va = -1, vb = -1;  // value-tape scalar slots (kCmp/kTruth)
  Op cmpOp = Op::kEq;             // kCmp
  bool want = true;               // kCmp/kTruth
};
struct JitOverlay {
  std::vector<JitOverlayInstr> code;
  std::vector<double> init;  // per-slot initial value (constants pre-set)
  std::int32_t root = -1;
};

/// One compiled native module for one tape. Immutable; shared by any
/// number of JitTapeExecutor frames (and across Simulators of the same
/// model via the in-process memo).
class TapeJit {
 public:
  struct Options {
    /// Variables to emit native dirty-cone replay functions for (the
    /// local-search mutation set). Vars without a cone get a no-op.
    std::vector<VarId> coneVars;
    /// Distance overlay to compile after the step body (nullptr = none).
    const JitOverlay* overlay = nullptr;
  };

  /// Emit + compile + load. Returns nullptr (with *whyNot set and a
  /// diagnostic recorded) when the JIT is disabled or the toolchain /
  /// cache / loader fails. Environment failures never throw.
  static std::shared_ptr<const TapeJit> compile(
      const std::shared_ptr<const Tape>& tape, const Options& opts,
      std::string* whyNot = nullptr);

  ~TapeJit();
  TapeJit(const TapeJit&) = delete;
  TapeJit& operator=(const TapeJit&) = delete;

  // Frame ABI: scalar payloads sv / scalar type tags st (0=bool 1=int
  // 2=real, the Type enum order), per-array-slot live length an, flat
  // array element payloads ae / tags at with per-slot static offsets
  // baked into the code.
  using Frame = void (*)(std::uint64_t* sv, std::uint8_t* st,
                         std::int64_t* an, std::uint64_t* ae,
                         std::uint8_t* at);
  using LanesFn = void (*)(std::int64_t n, std::uint64_t* sv,
                           std::uint8_t* st, std::int64_t* an,
                           std::uint64_t* ae, std::uint8_t* at);
  using DistFn = double (*)(std::uint64_t* sv, std::uint8_t* st,
                            std::int64_t* an, std::uint64_t* ae,
                            std::uint8_t* at);
  using DistLanesFn = void (*)(std::int64_t n, std::uint64_t* sv,
                               std::uint8_t* st, std::int64_t* an,
                               std::uint64_t* ae, std::uint8_t* at,
                               double* out);

  [[nodiscard]] Frame step() const { return step_; }
  [[nodiscard]] LanesFn runLanes() const { return lanes_; }
  [[nodiscard]] bool hasOverlay() const { return dist_ != nullptr; }
  [[nodiscard]] DistFn distance() const { return dist_; }
  [[nodiscard]] DistLanesFn distanceLanes() const { return distLanes_; }
  /// Native cone replay for `var`, nullptr when none was requested.
  [[nodiscard]] Frame cone(VarId var) const;
  [[nodiscard]] DistFn distanceCone(VarId var) const;

  // Frame geometry (what a JitTapeExecutor must allocate).
  [[nodiscard]] std::size_t scalarSlots() const { return ns_; }
  [[nodiscard]] std::size_t arraySlots() const { return na_; }
  [[nodiscard]] std::int64_t arrayCapacity(std::int32_t slot) const {
    return arrayCap_[static_cast<std::size_t>(slot)];
  }
  [[nodiscard]] std::int64_t arrayOffset(std::int32_t slot) const {
    return arrayOff_[static_cast<std::size_t>(slot)];
  }
  [[nodiscard]] std::int64_t totalArrayCapacity() const { return totalCap_; }

  /// Content hash of the emitted source (cache key; test/debug hook).
  [[nodiscard]] const std::string& sourceHash() const { return hash_; }

 private:
  TapeJit() = default;

  void* handle_ = nullptr;
  Frame step_ = nullptr;
  LanesFn lanes_ = nullptr;
  DistFn dist_ = nullptr;
  DistLanesFn distLanes_ = nullptr;
  std::vector<std::pair<VarId, Frame>> cones_;        // sorted by VarId
  std::vector<std::pair<VarId, DistFn>> distCones_;   // sorted by VarId
  std::size_t ns_ = 0, na_ = 0;
  std::vector<std::int64_t> arrayCap_, arrayOff_;
  std::int64_t totalCap_ = 0;
  std::string hash_;
};

/// TapeExecutor-shaped frontend over a TapeJit module: owns the slot
/// frame(s), applies the identical setVar/setArrayVar binding coercions,
/// and materializes Scalars back out of the payload/tag pairs. With
/// lanes > 1 it owns lane-major frames (lane l's scalars at sv + l*NS)
/// driven by the module's stcg_run_lanes loop.
class JitTapeExecutor {
 public:
  JitTapeExecutor(std::shared_ptr<const Tape> tape,
                  std::shared_ptr<const TapeJit> jit, int lanes = 1);

  [[nodiscard]] int lanes() const { return lanes_; }
  [[nodiscard]] const Tape& tape() const { return *tape_; }
  [[nodiscard]] const TapeJit& jit() const { return *jit_; }

  /// Lane-0 binds, mirroring TapeExecutor (unknown ids ignored; scalar
  /// binds store v.castTo(binding.type); array elements stay uncast).
  void setVar(VarId id, const Scalar& v) { setVarLane(0, id, v); }
  void setArrayVar(VarId id, const std::vector<Scalar>& v) {
    setArrayVarLane(0, id, v);
  }
  void setVarLane(int lane, VarId id, const Scalar& v);
  void setArrayVarLane(int lane, VarId id, const std::vector<Scalar>& v);
  /// Bind every tape variable present in `env` into lane 0.
  void bindEnv(const Env& env);

  /// Execute the full step natively on lane 0. Throws EvalError naming
  /// the first unbound variable (checked until the first success).
  void run();
  /// Execute lanes [0, n) (n <= lanes()); all of them must be bound.
  void runBatch(int n);
  /// Native dirty-cone replay for `id` on lane 0; falls back to a full
  /// run() when the module has no cone function for `id` (bit-identical,
  /// just slower). Requires a prior successful run().
  void runCone(VarId id);

  /// Step + distance overlay on lane 0. Requires a module compiled with
  /// an overlay (throws EvalError otherwise).
  double runDistance();
  double runDistanceCone(VarId id);
  /// Step + overlay across lanes [0, n); out[l] receives lane l's root.
  void runDistanceBatch(int n, double* out);

  /// Lane-0 slot reads, materialized from payload + tag.
  [[nodiscard]] Scalar scalar(SlotRef r) const { return scalarLane(0, r); }
  [[nodiscard]] Scalar scalarLane(int lane, SlotRef r) const;
  [[nodiscard]] std::vector<Scalar> array(SlotRef r) const {
    return arrayLane(0, r);
  }
  [[nodiscard]] std::vector<Scalar> arrayLane(int lane, SlotRef r) const;

 private:
  void requireAllBound(int n);
  std::uint64_t* sv(int lane) { return sv_.data() + lane * ns_; }
  std::uint8_t* st(int lane) { return st_.data() + lane * ns_; }
  std::int64_t* an(int lane) { return an_.data() + lane * na_; }
  std::uint64_t* ae(int lane) { return ae_.data() + lane * cap_; }
  std::uint8_t* at(int lane) { return at_.data() + lane * cap_; }

  std::shared_ptr<const Tape> tape_;
  std::shared_ptr<const TapeJit> jit_;
  int lanes_ = 1;
  std::ptrdiff_t ns_ = 0, na_ = 0, cap_ = 0;
  std::vector<std::uint64_t> sv_;
  std::vector<std::uint8_t> st_;
  std::vector<std::int64_t> an_;
  std::vector<std::uint64_t> ae_;
  std::vector<std::uint8_t> at_;
  std::vector<std::uint8_t> varBound_;    // [binding * lanes + lane]
  std::vector<std::uint8_t> arrayBound_;  // [binding * lanes + lane]
  int checkedLanes_ = 0;  // lanes [0, checkedLanes_) verified bound
};

}  // namespace stcg::expr
