// Optimizer pass pipeline over compiled tapes.
//
// optimizeTape() takes a freshly built (single-assignment) tape and
// produces a semantically identical, smaller one:
//
//   1. Constant folding / propagation — executor-exact: folds replicate
//      the applyUnary/applyBinary/castTo calls TapeExecutor makes,
//      including the guarded kDiv/kMod zero semantics (`x / 0` folds to
//      the guard's zero, never to a trap or an unfolded division) and
//      the clamped kSelect. In intervalSafe mode only folds that are
//      *point-exact in the interval domain* are applied: div/mod by a
//      constant zero and kSelect of a constant array at an integral
//      constant index are exact by construction; any other all-constant
//      fold must be approved by opts.foldGuard (the analysis layer
//      supplies a guard that replays the interval transfer on point
//      operands and compares bits).
//   2. Copy propagation — identity kCast, constant-condition kIte,
//      equal-arm kIte and a small set of concrete-only algebraic
//      identities (int x+0, x*1, bool and/or/xor units, ...) rewrite
//      readers to the source slot. Each identity is applied only when
//      the operand's static slot type equals the instruction's result
//      type, so the elided castTo was a bit-identity.
//   3. Value numbering (CSE) — re-runs the builder's global CSE over
//      the rewritten operands, merging instructions folding exposed.
//   4. Dead-instruction elimination — backward liveness from the tape's
//      roots plus `extraLive` (out-of-tape reads such as the distance
//      overlay's interior value taps). Dead constants and variable
//      bindings are dropped with their slots (setVar ignores ids a tape
//      does not mention, so callers need not change).
//   5. Cone-coherent linear-scan slot reallocation — scalar temporaries
//      whose live ranges do not overlap share one physical slot, which
//      shrinks both the dense frame and the batch executor's B-wide SoA
//      footprint (vals_[slot*B + lane]). Sharing is restricted so that
//      incremental cone replay (runCone) stays exact: a freed slot is
//      reused only by a value with the same variable-dependency set,
//      and only when every reader of the dying value has that same
//      dependency set (then every cone that replays any writer replays
//      the whole class in order, and no cone observes a stale writer).
//      Slots also share only with equal static lane types, keeping the
//      batch executor's typed-lane layout intact. Arrays never share
//      (executors alias array operands in place). Roots and extraLive
//      slots are read "at infinity" and are never freed.
//
// The result carries an old->new slot remap (producers rewrite their
// saved SlotRefs through it) and before/after statistics. Cones are
// re-derived on the optimized tape. The caller keeps the original tape
// as the differential oracle; tape_verify.h checks both.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "expr/tape.h"

namespace stcg::expr {

struct TapePassOptions {
  bool foldConstants = true;
  bool propagateCopies = true;
  bool eliminateDead = true;
  bool reuseSlots = true;

  /// Restrict rewrites to those exact in the interval domain as well as
  /// the concrete one (IntervalTapeExecutor consumers set this).
  bool intervalSafe = false;

  /// intervalSafe only: approves a generic all-constant fold of `in`
  /// over constant operands (null when the instruction has fewer) to
  /// `folded`. Return true iff the abstract transfer of `in` on point
  /// operands is exactly point(folded). Unset = skip such folds.
  std::function<bool(const TapeInstr& in, const Scalar* a, const Scalar* b,
                     const Scalar* c, const Scalar& folded)>
      foldGuard;
};

struct TapePassStats {
  std::size_t instrsBefore = 0, instrsAfter = 0;
  std::size_t scalarSlotsBefore = 0, scalarSlotsAfter = 0;
  std::size_t arraySlotsBefore = 0, arraySlotsAfter = 0;
  std::size_t constantsFolded = 0;
  std::size_t copiesPropagated = 0;
  std::size_t cseMerged = 0;
  std::size_t deadRemoved = 0;
  std::size_t slotsReused = 0;

  [[nodiscard]] bool shrank() const {
    return instrsAfter < instrsBefore || scalarSlotsAfter < scalarSlotsBefore ||
           arraySlotsAfter < arraySlotsBefore;
  }
  /// "12→9 instrs, 10→7 scalar slots, ..." one-line report.
  [[nodiscard]] std::string summary() const;
};

/// Old-slot -> new-slot maps (per space); -1 marks a dead slot. Folded
/// or copy-propagated slots map to the surviving equivalent slot.
struct TapeRemap {
  std::vector<std::int32_t> scalar;
  std::vector<std::int32_t> array;

  [[nodiscard]] SlotRef operator()(SlotRef r) const {
    if (!r.valid()) return r;
    const auto& m = r.isArray ? array : scalar;
    if (static_cast<std::size_t>(r.slot) >= m.size()) return {-1, r.isArray};
    return {m[static_cast<std::size_t>(r.slot)], r.isArray};
  }
};

struct OptimizedTape {
  std::shared_ptr<const Tape> tape;
  TapeRemap remap;
  TapePassStats stats;
};

/// Run the pipeline. `tape` must be single-assignment (what TapeBuilder
/// produces); `extraLive` lists slots read outside the tape's roots.
[[nodiscard]] OptimizedTape optimizeTape(
    const std::shared_ptr<const Tape>& tape,
    const std::vector<SlotRef>& extraLive = {},
    const TapePassOptions& opts = {});

/// False when STCG_TAPE_OPT=0 is set in the environment (checked once
/// per process) — producers then keep their raw tapes.
[[nodiscard]] bool tapeOptEnabled();

/// Mutable access to a Tape's internals for the pass pipeline and for
/// tests that corrupt tapes to exercise the verifier. Rewriting a tape
/// executors already hold is undefined; rewrite before sharing.
class TapeRewriter {
 public:
  explicit TapeRewriter(Tape& t) : t_(t) {}

  [[nodiscard]] std::vector<TapeInstr>& code() { return t_.code_; }
  [[nodiscard]] std::vector<Scalar>& scalarInit() { return t_.scalarInit_; }
  [[nodiscard]] std::vector<std::vector<Scalar>>& arrayInit() {
    return t_.arrayInit_;
  }
  [[nodiscard]] std::vector<std::int32_t>& constScalarSlots() {
    return t_.constScalarSlots_;
  }
  [[nodiscard]] std::vector<std::int32_t>& constArraySlots() {
    return t_.constArraySlots_;
  }
  [[nodiscard]] std::vector<TapeVarBinding>& varBindings() {
    return t_.varBindings_;
  }
  [[nodiscard]] std::vector<TapeArrayBinding>& arrayBindings() {
    return t_.arrayBindings_;
  }
  [[nodiscard]] std::vector<SlotRef>& rootSlots() { return t_.rootSlots_; }
  [[nodiscard]] std::vector<std::pair<VarId, std::vector<std::int32_t>>>&
  cones() {
    return t_.cones_;
  }
  [[nodiscard]] std::vector<ExprPtr>& pinnedRoots() { return t_.pinnedRoots_; }
  [[nodiscard]] static const std::vector<ExprPtr>& pinnedRootsOf(
      const Tape& t) {
    return t.pinnedRoots_;
  }

  void recomputeCones() { t_.recomputeCones(); }

 private:
  Tape& t_;
};

}  // namespace stcg::expr
