#include "expr/tape_passes.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <unordered_map>

#include "expr/builder.h"
#include "expr/tape_verify.h"
#include "util/env.h"

namespace stcg::expr {

namespace {

constexpr std::int32_t kReadAtInfinity = std::numeric_limits<std::int32_t>::max();

std::uint64_t mixBits(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
  return h;
}

std::uint64_t payloadBits(const Scalar& s) {
  switch (s.type()) {
    case Type::kBool:
      return s.asBool() ? 1U : 0U;
    case Type::kInt:
      return static_cast<std::uint64_t>(s.asInt());
    case Type::kReal: {
      std::uint64_t b = 0;
      const double d = s.asReal();
      std::memcpy(&b, &d, sizeof(b));
      return b;
    }
  }
  return 0;
}

/// Zero with the guarded kDiv/kMod result bits: applyBinary returns
/// r(0.0) or i(0) from the guard and the executor casts to in.type;
/// castTo maps either onto the same canonical zero of in.type.
Scalar zeroOf(Type t) { return Scalar::i(0).castTo(t); }

/// Rewrite each operand slot of `in` through the alias maps, preserving
/// the operand shape forEachTapeOperand documents.
void rewriteOperands(TapeInstr& in, const std::vector<std::int32_t>& aliasS,
                     const std::vector<std::int32_t>& aliasA) {
  const auto S = [&](std::int32_t& x) {
    x = aliasS[static_cast<std::size_t>(x)];
  };
  const auto A = [&](std::int32_t& x) {
    x = aliasA[static_cast<std::size_t>(x)];
  };
  switch (in.op) {
    case Op::kNot:
    case Op::kNeg:
    case Op::kAbs:
    case Op::kCast:
      S(in.a);
      break;
    case Op::kIte:
      S(in.a);
      if (in.arrayResult) {
        A(in.b);
        A(in.c);
      } else {
        S(in.b);
        S(in.c);
      }
      break;
    case Op::kSelect:
      A(in.a);
      S(in.b);
      break;
    case Op::kStore:
      A(in.a);
      S(in.b);
      S(in.c);
      break;
    default:
      S(in.a);
      S(in.b);
      break;
  }
}

std::uint64_t instrHash(const TapeInstr& in) {
  std::uint64_t h = mixBits(static_cast<std::uint64_t>(in.op),
                            static_cast<std::uint64_t>(in.type));
  h = mixBits(h, in.arrayResult ? 1U : 0U);
  h = mixBits(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(in.a)));
  h = mixBits(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(in.b)));
  h = mixBits(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(in.c)));
  return h;
}

/// The whole pipeline's working state. Scalar-slot metadata lives in
/// "grown" index space: original slots plus constants interned by the
/// folder. Array space never grows.
class Pipeline {
 public:
  Pipeline(const std::shared_ptr<const Tape>& tape,
           const std::vector<SlotRef>& extraLive, const TapePassOptions& opts)
      : src_(tape), t_(*tape), extraLive_(extraLive), opts_(opts) {}

  OptimizedTape run() {
    out_.stats.instrsBefore = t_.code().size();
    out_.stats.scalarSlotsBefore = t_.scalarSlotCount();
    out_.stats.arraySlotsBefore = t_.arraySlotCount();
    initState();
    rewriteForward();
    eliminateDead();
    allocateSlots();
    assemble();
    return std::move(out_);
  }

 private:
  // ---- setup -----------------------------------------------------------

  void initState() {
    const std::size_t ns = t_.scalarSlotCount();
    const std::size_t na = t_.arraySlotCount();
    scalarInit_ = t_.scalarInit();
    isConstS_.assign(ns, 0);
    isVarS_.assign(ns, 0);
    isConstA_.assign(na, 0);
    isVarA_.assign(na, 0);
    for (const std::int32_t s : t_.constScalarSlots()) {
      isConstS_[static_cast<std::size_t>(s)] = 1;
      constPool_[{static_cast<int>(scalarInit_[static_cast<std::size_t>(s)]
                                       .type()),
                  payloadBits(scalarInit_[static_cast<std::size_t>(s)])}] = s;
    }
    for (const auto& b : t_.varBindings()) {
      isVarS_[static_cast<std::size_t>(b.slot)] = 1;
    }
    for (const std::int32_t s : t_.constArraySlots()) {
      isConstA_[static_cast<std::size_t>(s)] = 1;
    }
    for (const auto& b : t_.arrayBindings()) {
      isVarA_[static_cast<std::size_t>(b.slot)] = 1;
    }
    aliasS_.resize(ns);
    for (std::size_t i = 0; i < ns; ++i) {
      aliasS_[i] = static_cast<std::int32_t>(i);
    }
    aliasA_.resize(na);
    for (std::size_t i = 0; i < na; ++i) {
      aliasA_[i] = static_cast<std::int32_t>(i);
    }
    types_ = analyzeTapeStaticTypes(t_);
  }

  [[nodiscard]] const Scalar* constValOf(std::int32_t slot) const {
    return isConstS_[static_cast<std::size_t>(slot)] != 0
               ? &scalarInit_[static_cast<std::size_t>(slot)]
               : nullptr;
  }

  /// Slot of a constant with `v`'s exact type and payload bits, creating
  /// one when the pool has none.
  std::int32_t internConst(const Scalar& v) {
    const std::pair<int, std::uint64_t> key{static_cast<int>(v.type()),
                                            payloadBits(v)};
    const auto it = constPool_.find(key);
    if (it != constPool_.end()) return it->second;
    const auto slot = static_cast<std::int32_t>(scalarInit_.size());
    scalarInit_.push_back(v);
    isConstS_.push_back(1);
    isVarS_.push_back(0);
    aliasS_.push_back(slot);
    types_.scalarType.push_back(v.type());
    types_.scalarDynamic.push_back(0);
    constPool_.emplace(key, slot);
    return slot;
  }

  /// Static-type check for copy propagation: the elided castTo(in.type)
  /// is an identity only when the source slot's type is statically
  /// `want` (dynamic kSelect results never qualify).
  [[nodiscard]] bool staticallyTyped(std::int32_t slot, Type want) const {
    const auto s = static_cast<std::size_t>(slot);
    return types_.scalarDynamic[s] == 0 && types_.scalarType[s] == want;
  }

  // ---- phase 1-3: fold / copy-propagate / CSE, one forward pass --------

  /// Constant-condition truth, matching the concrete executor (toBool)
  /// and, in intervalSafe mode, only when the interval verdict on the
  /// point agrees (isTrue needs v>=1, isFalse needs v<=0; a constant in
  /// (0,1) or below 0 hulls/flips and must not be folded).
  [[nodiscard]] bool condIsDecided(const Scalar& cond, bool* truth) const {
    const bool concrete = cond.toBool();
    if (!opts_.intervalSafe) {
      *truth = concrete;
      return true;
    }
    const double v = cond.toReal();
    if (v >= 1.0) {
      *truth = true;
      return concrete;  // toBool agrees (v != 0)
    }
    if (v == 0.0) {
      *truth = false;
      return !concrete;
    }
    return false;
  }

  /// Try to fold `in` (operands already alias-rewritten) to a constant.
  [[nodiscard]] bool tryFold(const TapeInstr& in, Scalar* out) const {
    if (!opts_.foldConstants) return false;
    if (in.arrayResult) return false;
    const auto guarded = [&](const Scalar* a, const Scalar* b,
                             const Scalar* c, const Scalar& folded) {
      if (!opts_.intervalSafe) return true;
      return static_cast<bool>(opts_.foldGuard) &&
             opts_.foldGuard(in, a, b, c, folded);
    };
    switch (in.op) {
      case Op::kNot:
      case Op::kNeg:
      case Op::kAbs:
      case Op::kCast: {
        const Scalar* a = constValOf(in.a);
        if (a == nullptr) return false;
        const Scalar v = applyUnary(in.op, in.type, *a);
        if (!guarded(a, nullptr, nullptr, v)) return false;
        *out = v;
        return true;
      }
      case Op::kIte: {
        const Scalar* a = constValOf(in.a);
        const Scalar* b = constValOf(in.b);
        const Scalar* c = constValOf(in.c);
        if (a == nullptr || b == nullptr || c == nullptr) return false;
        const Scalar v = (a->toBool() ? *b : *c).castTo(in.type);
        if (!guarded(a, b, c, v)) return false;
        *out = v;
        return true;
      }
      case Op::kSelect: {
        if (isConstA_[static_cast<std::size_t>(in.a)] == 0) return false;
        const Scalar* idx = constValOf(in.b);
        if (idx == nullptr) return false;
        const auto& arr = t_.arrayInit()[static_cast<std::size_t>(in.a)];
        const auto n = static_cast<std::int64_t>(arr.size());
        if (n == 0) return false;
        if (opts_.intervalSafe) {
          // Interval kSelect indexes by the interval's real endpoints;
          // exact alignment with toInt truncation needs an integral
          // index (always true for kInt-typed index constants).
          const double v = idx->toReal();
          if (idx->type() == Type::kReal &&
              v != static_cast<double>(static_cast<std::int64_t>(v))) {
            return false;
          }
        }
        std::int64_t i = idx->toInt();
        if (i < 0) i = 0;
        if (i >= n) i = n - 1;
        *out = arr[static_cast<std::size_t>(i)];  // exec never casts
        return true;
      }
      case Op::kStore:
        return false;
      default: {  // binary scalar ops
        const Scalar* a = constValOf(in.a);
        const Scalar* b = constValOf(in.b);
        // Guarded-zero kDiv/kMod fold even with an unknown dividend:
        // the guard's result depends only on in.type, and it is
        // point-exact in the interval domain (divI(x, point(0)) and
        // modI(x, |b|max < 1) are both point(0)), so no foldGuard.
        if (in.op == Op::kDiv && b != nullptr && b->toReal() == 0.0) {
          *out = zeroOf(in.type);
          return true;
        }
        if (in.op == Op::kMod && b != nullptr && b->toInt() == 0) {
          *out = zeroOf(in.type);
          return true;
        }
        if (!opts_.intervalSafe) {
          // Absorbing elements (concrete only: e.g. interval NaN/inf
          // endpoints make x*0 a widening, and bool ops fold exactly
          // anyway once both operands are constant).
          if (in.op == Op::kMul && in.type == Type::kInt) {
            const bool az = a != nullptr && a->type() != Type::kReal &&
                            a->toInt() == 0;
            const bool bz = b != nullptr && b->type() != Type::kReal &&
                            b->toInt() == 0;
            if (az || bz) {
              *out = zeroOf(in.type);
              return true;
            }
          }
          if (in.type == Type::kBool) {
            const auto absorbs = [&](const Scalar* s) {
              return s != nullptr &&
                     ((in.op == Op::kAnd && !s->toBool()) ||
                      (in.op == Op::kOr && s->toBool()));
            };
            if ((in.op == Op::kAnd || in.op == Op::kOr) &&
                (absorbs(a) || absorbs(b))) {
              *out = Scalar::b(in.op == Op::kOr);
              return true;
            }
          }
        }
        if (a == nullptr || b == nullptr) return false;
        const Scalar v = applyBinary(in.op, *a, *b).castTo(in.type);
        if (!guarded(a, b, nullptr, v)) return false;
        *out = v;
        return true;
      }
    }
  }

  /// Try to resolve `in` to a plain copy of one operand slot. Returns
  /// the source slot, or -1. *isArray reports the space. May instead
  /// strength-reduce in place (constant-condition kIte whose arm needs
  /// the cast becomes kCast) and return -1.
  [[nodiscard]] std::int32_t tryCopy(TapeInstr& in, bool* isArray) const {
    if (!opts_.propagateCopies) return -1;
    *isArray = false;
    switch (in.op) {
      case Op::kCast:
        // concrete: castTo over an equal static type is the identity.
        // interval: the int/bool transfers truncate/collapse, only the
        // real->real cast is the identity there too.
        if (staticallyTyped(in.a, in.type) &&
            (!opts_.intervalSafe || in.type == Type::kReal)) {
          return in.a;
        }
        return -1;
      case Op::kIte: {
        const Scalar* cond = constValOf(in.a);
        bool truth = false;
        if (cond != nullptr && condIsDecided(*cond, &truth)) {
          const std::int32_t arm = truth ? in.b : in.c;
          if (in.arrayResult) {
            *isArray = true;  // array kIte copies the arm uncast
            return arm;
          }
          if (staticallyTyped(arm, in.type)) return arm;
          if (!opts_.intervalSafe) {
            // The cast still matters: keep it, drop the branch. (The
            // interval kIte transfer does not cast, so this rewrite is
            // concrete-only.)
            in.op = Op::kCast;
            in.a = arm;
            in.b = in.c = -1;
            return -1;
          }
          return -1;
        }
        if (in.b == in.c) {
          // Equal arms: both modes (interval hulls an interval with
          // itself); concrete needs the castTo to be an identity.
          if (in.arrayResult) {
            *isArray = true;
            return in.b;
          }
          if (staticallyTyped(in.b, in.type)) return in.b;
        }
        return -1;
      }
      default:
        break;
    }
    if (opts_.intervalSafe) return -1;
    // Concrete-only algebraic identities. Each requires the surviving
    // operand's static type to equal in.type (identity castTo) and,
    // for the int family, non-real constants (promote() would have
    // gone through the real path otherwise).
    const Scalar* a = constValOf(in.a);
    const Scalar* b = in.b >= 0 ? constValOf(in.b) : nullptr;
    const auto intConst = [](const Scalar* s, std::int64_t v) {
      return s != nullptr && s->type() != Type::kReal && s->toInt() == v;
    };
    switch (in.op) {
      case Op::kAdd:
        if (in.type != Type::kInt) return -1;
        if (intConst(b, 0) && staticallyTyped(in.a, Type::kInt)) return in.a;
        if (intConst(a, 0) && staticallyTyped(in.b, Type::kInt)) return in.b;
        return -1;
      case Op::kSub:
        if (in.type == Type::kInt && intConst(b, 0) &&
            staticallyTyped(in.a, Type::kInt)) {
          return in.a;
        }
        return -1;
      case Op::kMul:
        if (in.type != Type::kInt) return -1;
        if (intConst(b, 1) && staticallyTyped(in.a, Type::kInt)) return in.a;
        if (intConst(a, 1) && staticallyTyped(in.b, Type::kInt)) return in.b;
        return -1;
      case Op::kDiv:
        if (in.type == Type::kInt && intConst(b, 1) &&
            staticallyTyped(in.a, Type::kInt)) {
          return in.a;  // i(x / 1) == x
        }
        if (in.type == Type::kReal && b != nullptr &&
            b->type() == Type::kReal && b->asReal() == 1.0 &&
            staticallyTyped(in.a, Type::kReal)) {
          return in.a;  // x / 1.0 is exact for every x
        }
        return -1;
      case Op::kAnd:
      case Op::kOr:
        if (in.type != Type::kBool) return -1;
        {
          const bool unit = in.op == Op::kAnd;  // and:true / or:false
          if (a != nullptr && a->toBool() == unit &&
              staticallyTyped(in.b, Type::kBool)) {
            return in.b;
          }
          if (b != nullptr && b->toBool() == unit &&
              staticallyTyped(in.a, Type::kBool)) {
            return in.a;
          }
        }
        return -1;
      case Op::kXor:
        if (in.type != Type::kBool) return -1;
        if (a != nullptr && !a->toBool() &&
            staticallyTyped(in.b, Type::kBool)) {
          return in.b;
        }
        if (b != nullptr && !b->toBool() &&
            staticallyTyped(in.a, Type::kBool)) {
          return in.a;
        }
        return -1;
      case Op::kMin:
      case Op::kMax:
        // Same-slot min/max: int only (std::fmin may canonicalize NaN
        // payloads, and the fuzz oracle compares bits).
        if (in.a == in.b && in.type == Type::kInt &&
            staticallyTyped(in.a, Type::kInt)) {
          return in.a;
        }
        return -1;
      default:
        return -1;
    }
  }

  void rewriteForward() {
    std::unordered_map<std::uint64_t, std::vector<std::int32_t>> vn;
    for (const TapeInstr& in0 : t_.code()) {
      TapeInstr in = in0;
      rewriteOperands(in, aliasS_, aliasA_);
      Scalar folded;
      if (tryFold(in, &folded)) {
        aliasS_[static_cast<std::size_t>(in.dst)] = internConst(folded);
        ++out_.stats.constantsFolded;
        continue;
      }
      bool copyIsArray = false;
      const std::int32_t copyOf = tryCopy(in, &copyIsArray);
      if (copyOf >= 0) {
        (copyIsArray ? aliasA_ : aliasS_)[static_cast<std::size_t>(in.dst)] =
            copyOf;
        ++out_.stats.copiesPropagated;
        continue;
      }
      const std::uint64_t h = instrHash(in);
      auto& bucket = vn[h];
      bool merged = false;
      for (const std::int32_t prior : bucket) {
        const TapeInstr& p = code_[static_cast<std::size_t>(prior)];
        if (sameTapeComputation(p, in)) {
          (in.arrayResult ? aliasA_ : aliasS_)[static_cast<std::size_t>(
              in.dst)] = p.dst;
          ++out_.stats.cseMerged;
          merged = true;
          break;
        }
      }
      if (merged) continue;
      bucket.push_back(static_cast<std::int32_t>(code_.size()));
      code_.push_back(in);
    }
  }

  // ---- phase 4: dead-instruction elimination ---------------------------

  [[nodiscard]] SlotRef resolveLive(SlotRef r) const {
    if (!r.valid()) return r;
    const auto& alias = r.isArray ? aliasA_ : aliasS_;
    return {alias[static_cast<std::size_t>(r.slot)], r.isArray};
  }

  void eliminateDead() {
    liveS_.assign(scalarInit_.size(), 0);
    liveA_.assign(t_.arraySlotCount(), 0);
    const auto mark = [&](SlotRef r) {
      if (!r.valid()) return;
      (r.isArray ? liveA_ : liveS_)[static_cast<std::size_t>(r.slot)] = 1;
    };
    for (const SlotRef r : t_.rootSlots()) mark(resolveLive(r));
    for (const SlotRef r : extraLive_) mark(resolveLive(r));

    if (!opts_.eliminateDead) {
      // Keep everything referenced (and all pinned slots).
      for (const TapeInstr& in : code_) {
        mark({in.dst, in.arrayResult});
        forEachTapeOperand(in, [&](std::int32_t s, bool arr) {
          mark({s, arr});
        });
      }
      for (std::size_t s = 0; s < liveS_.size(); ++s) {
        if (isConstS_[s] != 0 || isVarS_[s] != 0) liveS_[s] = 1;
      }
      for (std::size_t s = 0; s < liveA_.size(); ++s) {
        if (isConstA_[s] != 0 || isVarA_[s] != 0) liveA_[s] = 1;
      }
      return;
    }

    std::vector<TapeInstr> kept;
    kept.reserve(code_.size());
    for (auto it = code_.rbegin(); it != code_.rend(); ++it) {
      const TapeInstr& in = *it;
      const auto& live = in.arrayResult ? liveA_ : liveS_;
      if (live[static_cast<std::size_t>(in.dst)] == 0) {
        ++out_.stats.deadRemoved;
        continue;
      }
      forEachTapeOperand(in, [&](std::int32_t s, bool arr) {
        mark({s, arr});
      });
      kept.push_back(in);
    }
    std::reverse(kept.begin(), kept.end());
    code_ = std::move(kept);
  }

  // ---- phase 5: cone-coherent linear-scan slot reallocation ------------

  /// Re-derive static slot types over the rewritten instruction list.
  /// Aliasing can only improve them (an array kIte arm is uniform
  /// whenever the kIte result was), but the allocator's sharing keys and
  /// the verifier's re-analysis of the final tape must agree exactly.
  void rederiveStaticTypes() {
    for (const TapeInstr& in : code_) {
      if (in.arrayResult) {
        const auto dst = static_cast<std::size_t>(in.dst);
        if (in.op == Op::kStore) {
          const auto src = static_cast<std::size_t>(in.a);
          types_.arrayUniform[dst] =
              types_.arrayUniform[src] != 0 &&
                      types_.arrayElemType[src] == in.type
                  ? 1
                  : 0;
          types_.arrayElemType[dst] = in.type;
        } else {  // array kIte
          const auto tb = static_cast<std::size_t>(in.b);
          const auto fc = static_cast<std::size_t>(in.c);
          types_.arrayUniform[dst] =
              types_.arrayUniform[tb] != 0 && types_.arrayUniform[fc] != 0 &&
                      types_.arrayElemType[tb] == types_.arrayElemType[fc]
                  ? 1
                  : 0;
          types_.arrayElemType[dst] = types_.arrayElemType[tb];
        }
        continue;
      }
      const auto dst = static_cast<std::size_t>(in.dst);
      types_.scalarDynamic[dst] = 0;
      switch (in.op) {
        case Op::kNot:
          types_.scalarType[dst] = Type::kBool;
          break;
        case Op::kNeg:
        case Op::kAbs:
          types_.scalarType[dst] =
              in.type == Type::kReal ? Type::kReal : Type::kInt;
          break;
        case Op::kSelect: {
          const auto a = static_cast<std::size_t>(in.a);
          if (types_.arrayUniform[a] != 0) {
            types_.scalarType[dst] = types_.arrayElemType[a];
          } else {
            types_.scalarDynamic[dst] = 1;
            types_.scalarType[dst] = in.type;
          }
          break;
        }
        default:
          types_.scalarType[dst] = in.type;
          break;
      }
    }
  }

  void allocateSlots() {
    rederiveStaticTypes();
    const std::size_t ns = scalarInit_.size();
    const std::size_t na = t_.arraySlotCount();

    // Variable-dependency class per scalar slot and per instruction.
    std::vector<VarId> vars;
    for (const auto& b : t_.varBindings()) vars.push_back(b.var);
    for (const auto& b : t_.arrayBindings()) vars.push_back(b.var);
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    const std::size_t words = (vars.size() + 63) / 64;
    std::vector<std::uint64_t> sdeps(ns * words, 0);
    std::vector<std::uint64_t> adeps(na * words, 0);
    const auto varIndex = [&](VarId v) {
      return static_cast<std::size_t>(
          std::lower_bound(vars.begin(), vars.end(), v) - vars.begin());
    };
    for (const auto& b : t_.varBindings()) {
      const std::size_t i = varIndex(b.var);
      sdeps[static_cast<std::size_t>(b.slot) * words + i / 64] |=
          1ULL << (i % 64);
    }
    for (const auto& b : t_.arrayBindings()) {
      const std::size_t i = varIndex(b.var);
      adeps[static_cast<std::size_t>(b.slot) * words + i / 64] |=
          1ULL << (i % 64);
    }
    std::vector<std::uint64_t> ideps(code_.size() * words, 0);
    for (std::size_t idx = 0; idx < code_.size(); ++idx) {
      const TapeInstr& in = code_[idx];
      std::uint64_t* acc = ideps.data() + idx * words;
      forEachTapeOperand(in, [&](std::int32_t s, bool arr) {
        const std::uint64_t* src =
            (arr ? adeps.data() : sdeps.data()) +
            static_cast<std::size_t>(s) * words;
        for (std::size_t w = 0; w < words; ++w) acc[w] |= src[w];
      });
      std::uint64_t* dst = (in.arrayResult ? adeps.data() : sdeps.data()) +
                           static_cast<std::size_t>(in.dst) * words;
      // Single-assignment here, so copy rather than OR (equivalent).
      std::copy(acc, acc + words, dst);
    }

    // Dependency classes: equal bitsets share a class id.
    std::map<std::vector<std::uint64_t>, std::int32_t> classIds;
    const auto classOf = [&](const std::uint64_t* bits) {
      std::vector<std::uint64_t> key(bits, bits + words);
      const auto it = classIds.find(key);
      if (it != classIds.end()) return it->second;
      const auto id = static_cast<std::int32_t>(classIds.size());
      classIds.emplace(std::move(key), id);
      return id;
    };
    std::vector<std::int32_t> slotClass(ns, -1);
    for (std::size_t s = 0; s < ns; ++s) {
      slotClass[s] = classOf(sdeps.data() + s * words);
    }
    std::vector<std::int32_t> instrClass(code_.size(), -1);
    for (std::size_t i = 0; i < code_.size(); ++i) {
      instrClass[i] = classOf(ideps.data() + i * words);
    }

    // Last read per scalar slot; roots, extraLive, constants and
    // variable slots are read "at infinity".
    std::vector<std::int32_t> lastUse(ns, -1);
    std::vector<std::uint8_t> readersUniform(ns, 1);
    for (std::size_t i = 0; i < code_.size(); ++i) {
      forEachTapeOperand(code_[i], [&](std::int32_t s, bool arr) {
        if (arr) return;
        const auto u = static_cast<std::size_t>(s);
        lastUse[u] = static_cast<std::int32_t>(i);
        if (instrClass[i] != slotClass[u]) readersUniform[u] = 0;
      });
    }
    const auto pinScalar = [&](SlotRef r) {
      if (r.valid() && !r.isArray) {
        lastUse[static_cast<std::size_t>(r.slot)] = kReadAtInfinity;
      }
    };
    for (const SlotRef r : t_.rootSlots()) pinScalar(resolveLive(r));
    for (const SlotRef r : extraLive_) pinScalar(resolveLive(r));
    for (std::size_t s = 0; s < ns; ++s) {
      if (isConstS_[s] != 0 || isVarS_[s] != 0) lastUse[s] = kReadAtInfinity;
    }

    // Physical assignment. Pinned (const/variable) live slots first, in
    // old-slot order; temporaries at their defining instruction, pulling
    // from a per-(class, type, dynamic) free list when allowed.
    physS_.assign(ns, -1);
    std::int32_t next = 0;
    for (std::size_t s = 0; s < ns; ++s) {
      if ((isConstS_[s] != 0 || isVarS_[s] != 0) && liveS_[s] != 0) {
        physS_[s] = next++;
      }
    }
    struct FreeKey {
      std::int32_t cls;
      Type type;
      bool dyn;
      bool operator<(const FreeKey& o) const {
        if (cls != o.cls) return cls < o.cls;
        if (type != o.type) return type < o.type;
        return dyn < o.dyn;
      }
    };
    std::map<FreeKey, std::vector<std::int32_t>> freeLists;
    std::vector<std::uint8_t> freed(ns, 0);
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const TapeInstr& in = code_[i];
      if (opts_.reuseSlots) {
        // Free dying operands before allocating dst: every executor
        // fully reads its operands before the store (the batch kernels
        // stage through scratch), so dst may take a same-instruction
        // operand's slot.
        forEachTapeOperand(in, [&](std::int32_t s, bool arr) {
          if (arr) return;
          const auto u = static_cast<std::size_t>(s);
          if (lastUse[u] != static_cast<std::int32_t>(i)) return;
          if (freed[u] != 0 || physS_[u] < 0) return;
          if (readersUniform[u] == 0) return;
          if (isConstS_[u] != 0 || isVarS_[u] != 0) return;
          freed[u] = 1;
          freeLists[{slotClass[u], types_.scalarType[u],
                     types_.scalarDynamic[u] != 0}]
              .push_back(physS_[u]);
        });
      }
      if (in.arrayResult) continue;
      const auto d = static_cast<std::size_t>(in.dst);
      if (physS_[d] >= 0) continue;  // defensive; single assignment
      const FreeKey key{instrClass[i], types_.scalarType[d],
                        types_.scalarDynamic[d] != 0};
      if (opts_.reuseSlots) {
        const auto it = freeLists.find(key);
        if (it != freeLists.end() && !it->second.empty()) {
          physS_[d] = it->second.back();
          it->second.pop_back();
          ++out_.stats.slotsReused;
          continue;
        }
      }
      physS_[d] = next++;
    }
    nPhysScalar_ = static_cast<std::size_t>(next);

    // Arrays never share: dense renumber of live slots in old order.
    physA_.assign(na, -1);
    std::int32_t nextA = 0;
    for (std::size_t s = 0; s < na; ++s) {
      if (liveA_[s] != 0) physA_[s] = nextA++;
    }
    nPhysArray_ = static_cast<std::size_t>(nextA);
  }

  // ---- phase 6: assemble the optimized tape ----------------------------

  void assemble() {
    auto nt = std::make_shared<Tape>();
    TapeRewriter rw(*nt);

    rw.scalarInit().assign(nPhysScalar_, Scalar{});
    for (std::size_t s = 0; s < physS_.size(); ++s) {
      if (physS_[s] >= 0) {
        rw.scalarInit()[static_cast<std::size_t>(physS_[s])] = scalarInit_[s];
      }
    }
    rw.arrayInit().assign(nPhysArray_, {});
    for (std::size_t s = 0; s < physA_.size(); ++s) {
      if (physA_[s] >= 0) {
        rw.arrayInit()[static_cast<std::size_t>(physA_[s])] =
            t_.arrayInit()[s];
      }
    }
    for (std::size_t s = 0; s < physS_.size(); ++s) {
      if (isConstS_[s] != 0 && physS_[s] >= 0) {
        rw.constScalarSlots().push_back(physS_[s]);
      }
    }
    for (std::size_t s = 0; s < physA_.size(); ++s) {
      if (isConstA_[s] != 0 && physA_[s] >= 0) {
        rw.constArraySlots().push_back(physA_[s]);
      }
    }
    for (const auto& b : t_.varBindings()) {
      const std::int32_t p = physS_[static_cast<std::size_t>(b.slot)];
      if (p < 0) continue;  // nothing left reads this variable's slot
      TapeVarBinding nb = b;
      nb.slot = p;
      rw.varBindings().push_back(nb);  // source order keeps the sort
    }
    for (const auto& b : t_.arrayBindings()) {
      const std::int32_t p = physA_[static_cast<std::size_t>(b.slot)];
      if (p < 0) continue;
      TapeArrayBinding nb = b;
      nb.slot = p;
      rw.arrayBindings().push_back(nb);
    }

    for (TapeInstr in : code_) {
      const auto S = [&](std::int32_t& x) {
        x = physS_[static_cast<std::size_t>(x)];
      };
      const auto A = [&](std::int32_t& x) {
        x = physA_[static_cast<std::size_t>(x)];
      };
      switch (in.op) {
        case Op::kNot:
        case Op::kNeg:
        case Op::kAbs:
        case Op::kCast:
          S(in.a);
          break;
        case Op::kIte:
          S(in.a);
          if (in.arrayResult) {
            A(in.b);
            A(in.c);
          } else {
            S(in.b);
            S(in.c);
          }
          break;
        case Op::kSelect:
          A(in.a);
          S(in.b);
          break;
        case Op::kStore:
          A(in.a);
          S(in.b);
          S(in.c);
          break;
        default:
          S(in.a);
          S(in.b);
          break;
      }
      if (in.arrayResult) {
        A(in.dst);
      } else {
        S(in.dst);
      }
      rw.code().push_back(in);
    }

    // Remap in the ORIGINAL slot space (producers rewrite saved refs).
    out_.remap.scalar.assign(t_.scalarSlotCount(), -1);
    for (std::size_t s = 0; s < t_.scalarSlotCount(); ++s) {
      out_.remap.scalar[s] = physS_[static_cast<std::size_t>(aliasS_[s])];
    }
    out_.remap.array.assign(t_.arraySlotCount(), -1);
    for (std::size_t s = 0; s < t_.arraySlotCount(); ++s) {
      out_.remap.array[s] = physA_[static_cast<std::size_t>(aliasA_[s])];
    }
    for (const SlotRef r : t_.rootSlots()) {
      rw.rootSlots().push_back(out_.remap(r));
    }
    rw.pinnedRoots() = TapeRewriter::pinnedRootsOf(t_);
    rw.recomputeCones();

    out_.stats.instrsAfter = rw.code().size();
    out_.stats.scalarSlotsAfter = nPhysScalar_;
    out_.stats.arraySlotsAfter = nPhysArray_;
    out_.tape = std::move(nt);
  }

  std::shared_ptr<const Tape> src_;
  const Tape& t_;
  const std::vector<SlotRef>& extraLive_;
  const TapePassOptions& opts_;
  OptimizedTape out_;

  // Grown scalar space (original + interned constants).
  std::vector<Scalar> scalarInit_;
  std::vector<std::uint8_t> isConstS_, isVarS_, isConstA_, isVarA_;
  std::vector<std::int32_t> aliasS_, aliasA_;  // fully resolved
  std::map<std::pair<int, std::uint64_t>, std::int32_t> constPool_;
  TapeStaticTypes types_;

  std::vector<TapeInstr> code_;  // surviving instructions, old slot ids
  std::vector<std::uint8_t> liveS_, liveA_;
  std::vector<std::int32_t> physS_, physA_;
  std::size_t nPhysScalar_ = 0, nPhysArray_ = 0;
};

}  // namespace

std::string TapePassStats::summary() const {
  std::string s = std::to_string(instrsBefore) + "→" +
                  std::to_string(instrsAfter) + " instrs, " +
                  std::to_string(scalarSlotsBefore) + "→" +
                  std::to_string(scalarSlotsAfter) + " scalar slots, " +
                  std::to_string(arraySlotsBefore) + "→" +
                  std::to_string(arraySlotsAfter) + " array slots (" +
                  std::to_string(constantsFolded) + " folded, " +
                  std::to_string(copiesPropagated) + " copied, " +
                  std::to_string(cseMerged) + " cse, " +
                  std::to_string(deadRemoved) + " dead, " +
                  std::to_string(slotsReused) + " reused)";
  return s;
}

OptimizedTape optimizeTape(const std::shared_ptr<const Tape>& tape,
                           const std::vector<SlotRef>& extraLive,
                           const TapePassOptions& opts) {
  return Pipeline(tape, extraLive, opts).run();
}

bool tapeOptEnabled() {
  static const bool on = util::envFlag("STCG_TAPE_OPT", true);
  return on;
}

}  // namespace stcg::expr
