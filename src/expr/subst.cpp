#include "expr/subst.h"

#include <cassert>
#include <unordered_map>

#include "expr/builder.h"

namespace stcg::expr {

namespace {

class Substituter {
 public:
  explicit Substituter(const Env* binding,
                       const std::unordered_map<VarId, ExprPtr>* mapping)
      : binding_(binding), mapping_(mapping) {}

  ExprPtr rewrite(const ExprPtr& e) {
    if (auto it = memo_.find(e.get()); it != memo_.end()) return it->second;
    ExprPtr result = rewriteNoMemo(e);
    memo_.emplace(e.get(), result);
    return result;
  }

 private:
  ExprPtr rewriteNoMemo(const ExprPtr& e) {
    switch (e->op) {
      case Op::kConst:
      case Op::kConstArray:
        return e;
      case Op::kVar:
        if (binding_ != nullptr && binding_->has(e->var)) {
          return cScalar(binding_->get(e->var).castTo(e->type));
        }
        if (mapping_ != nullptr) {
          if (auto it = mapping_->find(e->var); it != mapping_->end()) {
            assert(!it->second->isArray());
            return castE(it->second, e->type);
          }
        }
        return e;
      case Op::kVarArray:
        if (binding_ != nullptr && binding_->hasArray(e->var)) {
          return cArray(e->type, binding_->getArray(e->var));
        }
        if (mapping_ != nullptr) {
          if (auto it = mapping_->find(e->var); it != mapping_->end()) {
            assert(it->second->isArray() &&
                   it->second->arraySize == e->arraySize);
            return it->second;
          }
        }
        return e;
      default:
        break;
    }
    std::vector<ExprPtr> args;
    args.reserve(e->args.size());
    bool changed = false;
    for (const auto& a : e->args) {
      args.push_back(rewrite(a));
      changed = changed || args.back().get() != a.get();
    }
    if (!changed) return e;
    return rebuild(*e, std::move(args));
  }

  static ExprPtr rebuild(const Expr& e, std::vector<ExprPtr> args) {
    switch (e.op) {
      case Op::kNot: return notE(args[0]);
      case Op::kNeg: return negE(args[0]);
      case Op::kAbs: return absE(args[0]);
      case Op::kCast: return castE(args[0], e.type);
      case Op::kAdd: return castE(addE(args[0], args[1]), e.type);
      case Op::kSub: return castE(subE(args[0], args[1]), e.type);
      case Op::kMul: return castE(mulE(args[0], args[1]), e.type);
      case Op::kDiv: return castE(divE(args[0], args[1]), e.type);
      case Op::kMod: return modE(args[0], args[1]);
      case Op::kMin: return castE(minE(args[0], args[1]), e.type);
      case Op::kMax: return castE(maxE(args[0], args[1]), e.type);
      case Op::kLt: return ltE(args[0], args[1]);
      case Op::kLe: return leE(args[0], args[1]);
      case Op::kGt: return gtE(args[0], args[1]);
      case Op::kGe: return geE(args[0], args[1]);
      case Op::kEq: return eqE(args[0], args[1]);
      case Op::kNe: return neE(args[0], args[1]);
      case Op::kAnd: return andE(args[0], args[1]);
      case Op::kOr: return orE(args[0], args[1]);
      case Op::kXor: return xorE(args[0], args[1]);
      case Op::kIte: {
        // iteE promotes scalar branch types; preserve the original type.
        auto out = iteE(args[0], args[1], args[2]);
        if (!out->isArray() && out->type != e.type) out = castE(out, e.type);
        return out;
      }
      case Op::kSelect: return selectE(args[0], args[1]);
      case Op::kStore: return storeE(args[0], args[1], args[2]);
      default:
        assert(false && "leaf reached in rebuild");
        return args.empty() ? nullptr : args[0];
    }
  }

  const Env* binding_;
  const std::unordered_map<VarId, ExprPtr>* mapping_;
  std::unordered_map<const Expr*, ExprPtr> memo_;
};

}  // namespace

ExprPtr substitute(const ExprPtr& e, const Env& binding) {
  Substituter s(&binding, nullptr);
  return s.rewrite(e);
}

ExprPtr substituteExprs(const ExprPtr& e,
                        const std::unordered_map<VarId, ExprPtr>& mapping) {
  Substituter s(nullptr, &mapping);
  return s.rewrite(e);
}

}  // namespace stcg::expr
