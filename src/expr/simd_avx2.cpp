// AVX2 implementation of the LaneKernels table (x86 only).
//
// Compiled without a global -mavx2: every kernel sits inside a
// `#pragma GCC target("avx2")` region, and simd.cpp only hands the table
// out after __builtin_cpu_supports("avx2") succeeds. The entry point
// avx2KernelsOrNull() is defined outside the region so calling it on a
// non-AVX2 CPU is safe.
//
// Bit-identity contract (see simd_ops.h): vector bodies replicate glibc's
// runtime fmin/fmax selection (first operand when equal, non-NaN operand
// when one side is NaN, second operand when both are), the guarded
// x/0 == +0.0, and the Korel/Tracey distance forms with `eps - x`
// subtraction (not negate-then-add, which would flip a NaN's sign bit) so
// NaN bit patterns match the scalar path; tail lanes (n % 4) run the
// exact scalar helpers. This TU is built with -ffp-contract=off so GCC
// cannot contract mul+add into an FMA the scalar reference lacks.
#include "expr/simd.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "expr/simd_ops.h"

namespace stcg::expr::simd_detail {
namespace {

#pragma GCC push_options
#pragma GCC target("avx2")

inline __m256d loadPd(const std::uint64_t* p) {
  return _mm256_castsi256_pd(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
}
inline void storePd(std::uint64_t* p, __m256d v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), _mm256_castpd_si256(v));
}
inline __m256i loadI(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline void storeI(std::uint64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}
inline __m256d signMask() { return _mm256_set1_pd(-0.0); }

// ---- real rows ----------------------------------------------------------

void rAddAvx2(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    storePd(dst + i, _mm256_add_pd(loadPd(a + i), loadPd(b + i)));
  }
  for (; i < n; ++i) dst[i] = rAddOp(a[i], b[i]);
}

void rSubAvx2(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    storePd(dst + i, _mm256_sub_pd(loadPd(a + i), loadPd(b + i)));
  }
  for (; i < n; ++i) dst[i] = rSubOp(a[i], b[i]);
}

void rMulAvx2(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    storePd(dst + i, _mm256_mul_pd(loadPd(a + i), loadPd(b + i)));
  }
  for (; i < n; ++i) dst[i] = rMulOp(a[i], b[i]);
}

void rDivGAvx2(std::uint64_t* dst, const std::uint64_t* a,
               const std::uint64_t* b, int n) {
  const __m256d zero = _mm256_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vb = loadPd(b + i);
    const __m256d q = _mm256_div_pd(loadPd(a + i), vb);
    // b == 0 (either sign) -> +0.0; NaN b compares unequal and divides.
    const __m256d guard = _mm256_cmp_pd(vb, zero, _CMP_EQ_OQ);
    storePd(dst + i, _mm256_andnot_pd(guard, q));
  }
  for (; i < n; ++i) dst[i] = rDivGOp(a[i], b[i]);
}

void rFminAvx2(std::uint64_t* dst, const std::uint64_t* a,
               const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = loadPd(a + i), vb = loadPd(b + i);
    // Runtime glibc fmin: a iff a <= b (equal, incl. +/-0, picks the
    // FIRST operand) or b alone is NaN; both-NaN picks b. See
    // simd_ops.h — the folded fmin differs, only the call semantics
    // count.
    const __m256d pick_a = _mm256_or_pd(
        _mm256_cmp_pd(va, vb, _CMP_LE_OQ),
        _mm256_and_pd(_mm256_cmp_pd(vb, vb, _CMP_UNORD_Q),
                      _mm256_cmp_pd(va, va, _CMP_ORD_Q)));
    storePd(dst + i, _mm256_blendv_pd(vb, va, pick_a));
  }
  for (; i < n; ++i) dst[i] = rFminOp(a[i], b[i]);
}

void rFmaxAvx2(std::uint64_t* dst, const std::uint64_t* a,
               const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = loadPd(a + i), vb = loadPd(b + i);
    const __m256d pick_a = _mm256_or_pd(
        _mm256_cmp_pd(va, vb, _CMP_GE_OQ),
        _mm256_and_pd(_mm256_cmp_pd(vb, vb, _CMP_UNORD_Q),
                      _mm256_cmp_pd(va, va, _CMP_ORD_Q)));
    storePd(dst + i, _mm256_blendv_pd(vb, va, pick_a));
  }
  for (; i < n; ++i) dst[i] = rFmaxOp(a[i], b[i]);
}

void rNegAvx2(std::uint64_t* dst, const std::uint64_t* a, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    storePd(dst + i, _mm256_xor_pd(loadPd(a + i), signMask()));
  }
  for (; i < n; ++i) dst[i] = rNegOp(a[i]);
}

void rAbsAvx2(std::uint64_t* dst, const std::uint64_t* a, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    storePd(dst + i, _mm256_andnot_pd(signMask(), loadPd(a + i)));
  }
  for (; i < n; ++i) dst[i] = rAbsOp(a[i]);
}

template <int Ix>
void rCmpAvx2(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  constexpr int kPred = Ix == kIxLt   ? _CMP_LT_OQ
                        : Ix == kIxLe ? _CMP_LE_OQ
                        : Ix == kIxGt ? _CMP_GT_OQ
                        : Ix == kIxGe ? _CMP_GE_OQ
                        : Ix == kIxEq ? _CMP_EQ_OQ
                                      : _CMP_NEQ_UQ;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d m = _mm256_cmp_pd(loadPd(a + i), loadPd(b + i), kPred);
    storeI(dst + i, _mm256_srli_epi64(_mm256_castpd_si256(m), 63));
  }
  for (; i < n; ++i) dst[i] = rCmpOp<Ix>(a[i], b[i]);
}

// ---- int rows -----------------------------------------------------------

void iAddAvx2(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    storeI(dst + i, _mm256_add_epi64(loadI(a + i), loadI(b + i)));
  }
  for (; i < n; ++i) dst[i] = iAddOp(a[i], b[i]);
}

void iSubAvx2(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    storeI(dst + i, _mm256_sub_epi64(loadI(a + i), loadI(b + i)));
  }
  for (; i < n; ++i) dst[i] = iSubOp(a[i], b[i]);
}

void iMinAvx2(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = loadI(a + i), vb = loadI(b + i);
    // std::min: b iff b < a, i.e. a > b; equal -> a.
    storeI(dst + i,
           _mm256_blendv_epi8(va, vb, _mm256_cmpgt_epi64(va, vb)));
  }
  for (; i < n; ++i) dst[i] = iMinOp(a[i], b[i]);
}

void iMaxAvx2(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = loadI(a + i), vb = loadI(b + i);
    storeI(dst + i,
           _mm256_blendv_epi8(va, vb, _mm256_cmpgt_epi64(vb, va)));
  }
  for (; i < n; ++i) dst[i] = iMaxOp(a[i], b[i]);
}

void iNegAvx2(std::uint64_t* dst, const std::uint64_t* a, int n) {
  const __m256i zero = _mm256_setzero_si256();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    storeI(dst + i, _mm256_sub_epi64(zero, loadI(a + i)));
  }
  for (; i < n; ++i) dst[i] = iNegOp(a[i]);
}

void iAbsAvx2(std::uint64_t* dst, const std::uint64_t* a, int n) {
  const __m256i zero = _mm256_setzero_si256();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = loadI(a + i);
    const __m256i neg = _mm256_sub_epi64(zero, va);
    storeI(dst + i,
           _mm256_blendv_epi8(va, neg, _mm256_cmpgt_epi64(zero, va)));
  }
  for (; i < n; ++i) dst[i] = iAbsOp(a[i]);
}

// ---- bool rows ----------------------------------------------------------

void bAndAvx2(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    storeI(dst + i, _mm256_and_si256(loadI(a + i), loadI(b + i)));
  }
  for (; i < n; ++i) dst[i] = bAndOp(a[i], b[i]);
}

void bOrAvx2(std::uint64_t* dst, const std::uint64_t* a,
             const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    storeI(dst + i, _mm256_or_si256(loadI(a + i), loadI(b + i)));
  }
  for (; i < n; ++i) dst[i] = bOrOp(a[i], b[i]);
}

void bXorAvx2(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    storeI(dst + i, _mm256_xor_si256(loadI(a + i), loadI(b + i)));
  }
  for (; i < n; ++i) dst[i] = bXorOp(a[i], b[i]);
}

void bNotAvx2(std::uint64_t* dst, const std::uint64_t* a, int n) {
  const __m256i one = _mm256_set1_epi64x(1);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    storeI(dst + i, _mm256_xor_si256(loadI(a + i), one));
  }
  for (; i < n; ++i) dst[i] = bNotOp(a[i]);
}

void sel64Avx2(std::uint64_t* dst, const std::uint64_t* c,
               const std::uint64_t* a, const std::uint64_t* b, int n) {
  const __m256i zero = _mm256_setzero_si256();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i isZero = _mm256_cmpeq_epi64(loadI(c + i), zero);
    storeI(dst + i, _mm256_blendv_epi8(loadI(a + i), loadI(b + i), isZero));
  }
  for (; i < n; ++i) dst[i] = c[i] != 0 ? a[i] : b[i];
}

// ---- distance-overlay rows (genuine doubles) ----------------------------

void dSumAvx2(double* dst, const double* a, const double* b, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) dst[i] = dSumOp(a[i], b[i]);
}

void dMinAvx2(double* dst, const double* a, const double* b, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i), vb = _mm256_loadu_pd(b + i);
    // std::min: b iff b < a; equal or unordered -> a.
    storePd(reinterpret_cast<std::uint64_t*>(dst + i),
            _mm256_blendv_pd(va, vb, _mm256_cmp_pd(vb, va, _CMP_LT_OQ)));
  }
  for (; i < n; ++i) dst[i] = dMinOp(a[i], b[i]);
}

template <int Form>
inline __m256d dFormAvx2(__m256d x) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d eps = _mm256_set1_pd(kDistEps);
  if constexpr (Form == 0) {
    return _mm256_andnot_pd(signMask(), x);
  } else if constexpr (Form == 1) {
    // fabs(x) == 0 ? 1 : 0; NaN -> 0 (EQ_OQ is false on unordered).
    return _mm256_and_pd(_mm256_cmp_pd(x, zero, _CMP_EQ_OQ),
                         _mm256_set1_pd(1.0));
  } else if constexpr (Form == 2) {
    // x < 0 ? 0 : x + eps; NaN falls through to NaN + eps = NaN.
    return _mm256_andnot_pd(_mm256_cmp_pd(x, zero, _CMP_LT_OQ),
                            _mm256_add_pd(x, eps));
  } else if constexpr (Form == 3) {
    // x >= 0 ? 0 : eps - x — subtraction, not negate-then-add, so a NaN
    // x flows through with its sign bit untouched (simd_ops.h dFormOp).
    return _mm256_andnot_pd(_mm256_cmp_pd(x, zero, _CMP_GE_OQ),
                            _mm256_sub_pd(eps, x));
  } else if constexpr (Form == 4) {
    return _mm256_andnot_pd(_mm256_cmp_pd(x, zero, _CMP_LE_OQ), x);
  } else {
    return _mm256_andnot_pd(_mm256_cmp_pd(x, zero, _CMP_GT_OQ),
                            _mm256_sub_pd(eps, x));
  }
}

template <int Form, bool Swap>
void dCmpAvx2(double* dst, const double* a, const double* b, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i), vb = _mm256_loadu_pd(b + i);
    const __m256d x = Swap ? _mm256_sub_pd(vb, va) : _mm256_sub_pd(va, vb);
    _mm256_storeu_pd(dst + i, dFormAvx2<Form>(x));
  }
  for (; i < n; ++i) {
    dst[i] = dFormOp<Form>(Swap ? b[i] - a[i] : a[i] - b[i]);
  }
}

void dTruthAvx2(double* dst, const std::uint64_t* truth, std::uint64_t want,
                int n) {
  const __m256i vwant = _mm256_set1_epi64x(static_cast<long long>(want));
  const __m256d one = _mm256_set1_pd(1.0);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i hit = _mm256_cmpeq_epi64(loadI(truth + i), vwant);
    _mm256_storeu_pd(dst + i,
                     _mm256_andnot_pd(_mm256_castsi256_pd(hit), one));
  }
  for (; i < n; ++i) dst[i] = dTruthOp(truth[i], want);
}

#pragma GCC pop_options

const LaneKernels makeAvx2Kernels() {
  LaneKernels k{};
  k.rAdd = rAddAvx2;
  k.rSub = rSubAvx2;
  k.rMul = rMulAvx2;
  k.rDivG = rDivGAvx2;
  k.rFmin = rFminAvx2;
  k.rFmax = rFmaxAvx2;
  k.rNeg = rNegAvx2;
  k.rAbs = rAbsAvx2;
  k.rCmp[kIxLt] = rCmpAvx2<kIxLt>;
  k.rCmp[kIxLe] = rCmpAvx2<kIxLe>;
  k.rCmp[kIxGt] = rCmpAvx2<kIxGt>;
  k.rCmp[kIxGe] = rCmpAvx2<kIxGe>;
  k.rCmp[kIxEq] = rCmpAvx2<kIxEq>;
  k.rCmp[kIxNe] = rCmpAvx2<kIxNe>;
  k.iAdd = iAddAvx2;
  k.iSub = iSubAvx2;
  k.iMin = iMinAvx2;
  k.iMax = iMaxAvx2;
  k.iNeg = iNegAvx2;
  k.iAbs = iAbsAvx2;
  k.bAnd = bAndAvx2;
  k.bOr = bOrAvx2;
  k.bXor = bXorAvx2;
  k.bNot = bNotAvx2;
  k.sel64 = sel64Avx2;
  k.dSum = dSumAvx2;
  k.dMin = dMinAvx2;
  k.dCmp[kIxEq][1] = dCmpAvx2<0, false>;
  k.dCmp[kIxEq][0] = dCmpAvx2<1, false>;
  k.dCmp[kIxNe][1] = dCmpAvx2<1, false>;
  k.dCmp[kIxNe][0] = dCmpAvx2<0, false>;
  k.dCmp[kIxLt][1] = dCmpAvx2<2, false>;
  k.dCmp[kIxLt][0] = dCmpAvx2<3, false>;
  k.dCmp[kIxLe][1] = dCmpAvx2<4, false>;
  k.dCmp[kIxLe][0] = dCmpAvx2<5, false>;
  k.dCmp[kIxGt][1] = dCmpAvx2<2, true>;
  k.dCmp[kIxGt][0] = dCmpAvx2<3, true>;
  k.dCmp[kIxGe][1] = dCmpAvx2<4, true>;
  k.dCmp[kIxGe][0] = dCmpAvx2<5, true>;
  k.dTruth = dTruthAvx2;
  return k;
}

const LaneKernels kAvx2Kernels = makeAvx2Kernels();

}  // namespace

const LaneKernels* avx2KernelsOrNull() { return &kAvx2Kernels; }

}  // namespace stcg::expr::simd_detail

#else  // non-x86 build: no AVX2 table

namespace stcg::expr::simd_detail {
const LaneKernels* avx2KernelsOrNull() { return nullptr; }
}  // namespace stcg::expr::simd_detail

#endif
