// Expression DAG: the single semantic core shared by the simulator and the
// constraint solver.
//
// A compiled model is a set of expressions over input variables and
// state-constant leaves. Concrete simulation evaluates them; state-aware
// solving partially evaluates state to constants and hands the residual
// expression to the box solver. Sharing one IR removes any possibility of
// simulator/solver semantic divergence.
//
// Nodes are immutable and referenced by shared_ptr; subexpression sharing
// makes the structure a DAG. The builder functions in builder.h perform
// local constant folding and algebraic simplification on construction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "expr/scalar.h"

namespace stcg::expr {

enum class Op {
  // Leaves.
  kConst,       // scalar constant
  kConstArray,  // array constant (used for state arrays fixed by STCG)
  kVar,         // scalar input variable with a bounded domain
  kVarArray,    // array-typed state variable (delay buffers, data stores)

  // Unary.
  kNot,
  kNeg,
  kAbs,
  kCast,  // to this->type

  // Binary arithmetic (numeric).
  kAdd,
  kSub,
  kMul,
  kDiv,  // guarded: x/0 == 0 (protected division, common in control models)
  kMod,  // integer remainder, guarded: x%0 == 0
  kMin,
  kMax,

  // Binary relational (numeric -> bool).
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,

  // Binary boolean.
  kAnd,
  kOr,
  kXor,

  // Ternary.
  kIte,  // ite(cond, then, else)

  // Arrays.
  kSelect,  // select(array, index) -> element
  kStore,   // store(array, index, value) -> array
};

[[nodiscard]] const char* opName(Op op);

using VarId = std::int32_t;

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// One immutable DAG node.
class Expr {
 public:
  Op op;
  Type type;       // element type for arrays
  int arraySize;   // 0 for scalars, >0 for array-typed nodes

  // Leaf payloads (meaningful only for the corresponding op).
  Scalar constVal;                  // kConst
  std::vector<Scalar> constArray;   // kConstArray
  VarId var = -1;                   // kVar
  std::string varName;              // kVar (diagnostics)
  double varLo = 0.0, varHi = 0.0;  // kVar domain bounds (inclusive)

  std::vector<ExprPtr> args;

  [[nodiscard]] bool isArray() const { return arraySize > 0; }
  [[nodiscard]] bool isConst() const {
    return op == Op::kConst || op == Op::kConstArray;
  }

  /// Human-readable rendering (infix, parenthesized).
  [[nodiscard]] std::string toString() const;
};

/// Collect the distinct variable ids appearing in `e` (sorted ascending).
[[nodiscard]] std::vector<VarId> collectVars(const ExprPtr& e);

/// Count distinct nodes reachable from `e` (DAG size).
[[nodiscard]] std::size_t dagSize(const ExprPtr& e);

/// Descriptor of an input variable: identity, type, and solver domain.
struct VarInfo {
  VarId id = -1;
  std::string name;
  Type type = Type::kReal;
  double lo = 0.0;  // inclusive lower bound of the input domain
  double hi = 0.0;  // inclusive upper bound
};

}  // namespace stcg::expr
