#include "expr/jit.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "expr/tape_verify.h"
#include "util/env.h"

#if !defined(_WIN32)
#include <dlfcn.h>
#include <unistd.h>
#define STCG_JIT_HAVE_DLOPEN 1
#else
#define STCG_JIT_HAVE_DLOPEN 0
#endif

namespace stcg::expr {

namespace {

namespace fs = std::filesystem;

inline std::uint64_t realBits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

inline double bitsReal(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

inline std::uint64_t bitsOf(const Scalar& s) {
  switch (s.type()) {
    case Type::kBool:
      return s.asBool() ? 1 : 0;
    case Type::kInt:
      return static_cast<std::uint64_t>(s.asInt());
    case Type::kReal:
      return realBits(s.asReal());
  }
  return 0;
}

inline Scalar scalarOf(std::uint64_t payload, std::uint8_t tag) {
  switch (tag) {
    case 0:
      return Scalar::b(payload != 0);
    case 1:
      return Scalar::i(static_cast<std::int64_t>(payload));
    default:
      return Scalar::r(bitsReal(payload));
  }
}

// ---------------------------------------------------------------------------
// Diagnostics registry + in-process module memo.

std::mutex& jitMutex() {
  static std::mutex m;
  return m;
}

// Separate from jitMutex: diagnostics are recorded from inside compile(),
// which already holds jitMutex (sharing one non-recursive mutex would
// self-deadlock on the first failure or cache-recovery note).
std::mutex& diagMutex() {
  static std::mutex m;
  return m;
}

std::vector<JitDiagnostic>& diagStore() {
  static std::vector<JitDiagnostic> v;
  return v;
}

std::map<std::string, std::shared_ptr<const TapeJit>>& moduleMemo() {
  static std::map<std::string, std::shared_ptr<const TapeJit>> m;
  return m;
}

void recordDiagnostic(const char* severity, const char* check,
                      const std::string& message) {
  std::lock_guard<std::mutex> lock(diagMutex());
  diagStore().push_back({severity, check, message});
}

// ---------------------------------------------------------------------------
// Cache-file plumbing.

fs::path jitCacheDir() {
  if (const auto e = util::envString("STCG_JIT_CACHE")) {
    return fs::path(*e);
  }
  std::error_code ec;
  fs::path tmp = fs::temp_directory_path(ec);
  if (ec) tmp = "/tmp";
  return tmp / "stcg-jit-cache";
}

std::string fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

std::string readFileTail(const fs::path& p, std::size_t maxBytes) {
  std::ifstream in(p);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string s = ss.str();
  if (s.size() > maxBytes) s = "..." + s.substr(s.size() - maxBytes);
  // Fold newlines so the message stays a single diagnostic line.
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

// ---------------------------------------------------------------------------
// Frame layout: per-array-slot static element capacities and flat offsets.

struct ArrayLayout {
  std::vector<std::int64_t> cap;
  std::vector<std::int64_t> off;
  std::int64_t total = 0;
};

ArrayLayout computeArrayLayout(const Tape& t) {
  ArrayLayout lay;
  const std::size_t na = t.arraySlotCount();
  lay.cap.assign(na, 0);
  for (std::size_t i = 0; i < na; ++i) {
    lay.cap[i] = static_cast<std::int64_t>(t.arrayInit()[i].size());
  }
  for (const TapeArrayBinding& b : t.arrayBindings()) {
    auto& c = lay.cap[static_cast<std::size_t>(b.slot)];
    c = std::max(c, static_cast<std::int64_t>(b.size));
  }
  // Copy fixpoint: kStore inherits its base's capacity, an array kIte the
  // max of both arms. Optimizer slot reuse can chain these, so iterate to
  // a fixed point (capacities only grow; bounded by the largest source).
  for (std::size_t pass = 0; pass <= t.code().size(); ++pass) {
    bool changed = false;
    for (const TapeInstr& in : t.code()) {
      if (!in.arrayResult) continue;
      auto& d = lay.cap[static_cast<std::size_t>(in.dst)];
      std::int64_t want = d;
      if (in.op == Op::kStore) {
        want = std::max(want, lay.cap[static_cast<std::size_t>(in.a)]);
      } else if (in.op == Op::kIte) {
        want = std::max({want, lay.cap[static_cast<std::size_t>(in.b)],
                         lay.cap[static_cast<std::size_t>(in.c)]});
      }
      if (want != d) {
        d = want;
        changed = true;
      }
    }
    if (!changed) break;
  }
  lay.off.assign(na, 0);
  std::int64_t o = 0;
  for (std::size_t i = 0; i < na; ++i) {
    lay.off[i] = o;
    o += lay.cap[i];
  }
  lay.total = o;
  return lay;
}

// ---------------------------------------------------------------------------
// C emission. One block per instruction, transliterating TapeExecutor::exec
// specialized on the static slot types; the only runtime type dispatch left
// is on dynamic slots (kSelect over non-uniform arrays), which goes through
// the tagged g_* helpers that mirror applyUnary/applyBinary.

std::string fmtDouble(double v) {
  char buf[64];
  if (!std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "br_(0x%016llxULL)",
                  static_cast<unsigned long long>(realBits(v)));
  } else {
    std::snprintf(buf, sizeof buf, "%a", v);  // hexfloat: exact round trip
  }
  return buf;
}

class CEmitter {
 public:
  CEmitter(const Tape& t, const TapeJit::Options& opts, const ArrayLayout& lay)
      : t_(t), opts_(opts), lay_(lay), st_(analyzeTapeStaticTypes(t)) {}

  /// The whole translation unit, minus the trailing tag symbol.
  std::string source() {
    buildBlocks();
    std::string o = preamble();
    o += "static void step_one" + kSig + " {\n" + kUnused;
    for (const std::string& b : blocks_) o += b;
    o += "}\n\n";
    o += "void stcg_step" + kSig + " { step_one(sv, st, an, ae, at); }\n\n";
    o += "void stcg_run_lanes(i64 n, u64* sv, u8* st, i64* an, u64* ae, "
         "u8* at) {\n"
         "  for (i64 l = 0; l < n; ++l) {\n"
         "    step_one(sv + l * " +
         S(static_cast<std::int64_t>(t_.scalarSlotCount())) + ", st + l * " +
         S(static_cast<std::int64_t>(t_.scalarSlotCount())) + ", an + l * " +
         S(static_cast<std::int64_t>(t_.arraySlotCount())) + ", ae + l * " +
         S(lay_.total) + ", at + l * " + S(lay_.total) + ");\n  }\n}\n\n";
    if (opts_.overlay != nullptr) {
      o += overlayFn();
      o += "double stcg_distance" + kSig +
           " {\n  step_one(sv, st, an, ae, at);\n"
           "  return overlay_one(sv, st, an, ae, at);\n}\n\n";
      o += "void stcg_distance_lanes(i64 n, u64* sv, u8* st, i64* an, "
           "u64* ae, u8* at, double* out) {\n"
           "  for (i64 l = 0; l < n; ++l) {\n"
           "    u64* s = sv + l * " +
           S(static_cast<std::int64_t>(t_.scalarSlotCount())) +
           "; u8* tt = st + l * " +
           S(static_cast<std::int64_t>(t_.scalarSlotCount())) +
           ";\n    i64* nn = an + l * " +
           S(static_cast<std::int64_t>(t_.arraySlotCount())) +
           "; u64* e = ae + l * " + S(lay_.total) + "; u8* et = at + l * " +
           S(lay_.total) +
           ";\n    step_one(s, tt, nn, e, et);\n"
           "    out[l] = overlay_one(s, tt, nn, e, et);\n  }\n}\n\n";
    }
    for (const VarId v : opts_.coneVars) {
      if (v < 0) continue;
      o += coneFn(v);
    }
    return o;
  }

 private:
  static std::string S(std::int64_t v) { return std::to_string(v); }
  static int tagOf(Type t) { return static_cast<int>(t); }

  [[nodiscard]] bool dyn(std::int32_t s) const {
    return st_.scalarDynamic[static_cast<std::size_t>(s)] != 0;
  }
  [[nodiscard]] Type sty(std::int32_t s) const {
    return st_.scalarType[static_cast<std::size_t>(s)];
  }
  std::string sv(std::int32_t s) const { return "sv[" + S(s) + "]"; }
  std::string stg(std::int32_t s) const { return "st[" + S(s) + "]"; }
  std::string an(std::int32_t s) const { return "an[" + S(s) + "]"; }
  std::string aOff(std::int32_t s) const {
    return S(lay_.off[static_cast<std::size_t>(s)]);
  }
  /// Operand tag as a C expression: the live tag for dynamic slots, the
  /// static type literal otherwise.
  std::string tag(std::int32_t s) const {
    return dyn(s) ? stg(s) : S(tagOf(sty(s))) + "u";
  }

  // Typed reads, dynamic-safe: a dynamic slot dispatches on its live tag
  // through the g_* helpers (exactly Scalar::toReal/toInt/toBool); static
  // slots read the payload directly in its known representation.
  std::string rdReal(std::int32_t s) const {
    if (dyn(s)) return "g_toreal(" + sv(s) + ", " + stg(s) + ")";
    switch (sty(s)) {
      case Type::kBool: return "(double)" + sv(s);
      case Type::kInt: return "(double)(i64)" + sv(s);
      case Type::kReal: return "br_(" + sv(s) + ")";
    }
    return "0.0";
  }
  std::string rdInt(std::int32_t s) const {
    if (dyn(s)) return "g_toint(" + sv(s) + ", " + stg(s) + ")";
    if (sty(s) == Type::kReal) return "sat_i64(br_(" + sv(s) + "))";
    return "(i64)" + sv(s);
  }
  std::string rdBool(std::int32_t s) const {  // yields an int 0/1
    if (dyn(s)) return "g_tobool(" + sv(s) + ", " + stg(s) + ")";
    if (sty(s) == Type::kReal) return "(br_(" + sv(s) + ") != 0.0)";
    return "(" + sv(s) + " != 0u)";
  }

  /// Append "st[dst] = <tag>;" when the destination slot is dynamic —
  /// static slots keep their preset tag (the BatchTapeExecutor invariant).
  std::string tagWrite(std::int32_t d, Type to) const {
    return dyn(d) ? " " + stg(d) + " = " + S(tagOf(to)) + "u;" : "";
  }
  // Typed stores implementing castTo(to) from each source domain
  // (storeRealAs/storeIntAs/storeBoolAs of the batch executor, at B=1).
  std::string wrReal(std::int32_t d, Type to, const std::string& x) const {
    std::string s;
    switch (to) {
      case Type::kReal: s = sv(d) + " = rb_(" + x + ");"; break;
      case Type::kInt: s = sv(d) + " = (u64)sat_i64(" + x + ");"; break;
      case Type::kBool:
        s = sv(d) + " = (" + x + ") != 0.0 ? 1u : 0u;";
        break;
    }
    return s + tagWrite(d, to);
  }
  std::string wrInt(std::int32_t d, Type to, const std::string& x) const {
    std::string s;
    switch (to) {
      case Type::kInt: s = sv(d) + " = (u64)(" + x + ");"; break;
      case Type::kReal: s = sv(d) + " = rb_((double)(" + x + "));"; break;
      case Type::kBool: s = sv(d) + " = (" + x + ") != 0 ? 1u : 0u;"; break;
    }
    return s + tagWrite(d, to);
  }
  std::string wrBool(std::int32_t d, Type to, const std::string& x) const {
    // x is an int 0/1 expression; bool->int keeps the 0/1 payload.
    std::string s;
    switch (to) {
      case Type::kBool:
      case Type::kInt: s = sv(d) + " = (u64)(" + x + ");"; break;
      case Type::kReal: s = sv(d) + " = rb_((double)(" + x + "));"; break;
    }
    return s + tagWrite(d, to);
  }

  /// Payload of scalar slot `s` cast to `to` (kStore's value coercion).
  std::string castPayload(std::int32_t s, Type to) const {
    switch (to) {
      case Type::kReal: return "rb_(" + rdReal(s) + ")";
      case Type::kInt: return "(u64)" + rdInt(s) + "";
      case Type::kBool: return "(u64)" + rdBool(s) + "";
    }
    return "0u";
  }

  std::string arrayCopy(std::int32_t dst, std::int32_t src,
                        const std::string& n) const {
    if (dst == src) return "";
    return "    memcpy(ae + " + aOff(dst) + ", ae + " + aOff(src) +
           ", (size_t)" + n + " * sizeof(u64));\n    memcpy(at + " +
           aOff(dst) + ", at + " + aOff(src) + ", (size_t)" + n + ");\n";
  }

  std::string block(const TapeInstr& in, std::size_t idx) const {
    std::string o = "  { /* i" + S(static_cast<std::int64_t>(idx)) + " " +
                    opName(in.op) + " */\n";
    switch (in.op) {
      case Op::kNot:
        // applyUnary: Scalar::b(!toBool(a)) — stored uncast (kBool).
        o += "    " + wrBool(in.dst, Type::kBool, "!" + rdBool(in.a)) + "\n";
        break;
      case Op::kNeg:
        if (in.type == Type::kReal) {
          o += "    " + wrReal(in.dst, Type::kReal, "-" + rdReal(in.a)) + "\n";
        } else {
          // Two's-complement negate via unsigned to avoid the UB edge the
          // host's -O2 happens to fold the same way.
          o += "    " +
               wrInt(in.dst, Type::kInt, "(i64)(0u - (u64)" + rdInt(in.a) + ")") +
               "\n";
        }
        break;
      case Op::kAbs:
        if (in.type == Type::kReal) {
          o += "    " + wrReal(in.dst, Type::kReal, "fabs(" + rdReal(in.a) + ")") +
               "\n";
        } else {
          o += "    { i64 x = " + rdInt(in.a) + ";\n      " +
               wrInt(in.dst, Type::kInt, "x < 0 ? (i64)(0u - (u64)x) : x") +
               " }\n";
        }
        break;
      case Op::kCast:
        switch (in.type) {
          case Type::kReal:
            o += "    " + wrReal(in.dst, Type::kReal, rdReal(in.a)) + "\n";
            break;
          case Type::kInt:
            o += "    " + wrInt(in.dst, Type::kInt, rdInt(in.a)) + "\n";
            break;
          case Type::kBool:
            o += "    " + wrBool(in.dst, Type::kBool, rdBool(in.a)) + "\n";
            break;
        }
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMin:
      case Op::kMax:
        o += arith(in);
        break;
      case Op::kMod:
        o += "    { i64 x = " + rdInt(in.a) + ", y = " + rdInt(in.b) +
             ";\n      " + wrInt(in.dst, in.type, "y == 0 ? 0 : x % y") +
             " }\n";
        break;
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe:
      case Op::kEq:
      case Op::kNe: {
        const char* cmp = in.op == Op::kLt   ? "<"
                          : in.op == Op::kLe ? "<="
                          : in.op == Op::kGt ? ">"
                          : in.op == Op::kGe ? ">="
                          : in.op == Op::kEq ? "=="
                                             : "!=";
        o += "    " +
             wrBool(in.dst, in.type,
                    rdReal(in.a) + " " + cmp + " " + rdReal(in.b)) +
             "\n";
        break;
      }
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor: {
        const char* op = in.op == Op::kAnd ? "&" : in.op == Op::kOr ? "|" : "^";
        o += "    " +
             wrBool(in.dst, in.type,
                    rdBool(in.a) + std::string(" ") + op + " " + rdBool(in.b)) +
             "\n";
        break;
      }
      case Op::kIte:
        if (in.arrayResult) {
          o += "    { i64 n;\n    if (" + rdBool(in.a) + ") {\n      n = " +
               an(in.b) + ";\n" + arrayCopy(in.dst, in.b, "n") +
               "    } else {\n      n = " + an(in.c) + ";\n" +
               arrayCopy(in.dst, in.c, "n") + "    }\n    " + an(in.dst) +
               " = n; }\n";
        } else {
          // select-then-castTo(in.type) == read the chosen arm in the
          // target domain (dynamic-safe reads handle per-arm live types).
          switch (in.type) {
            case Type::kReal:
              o += "    " +
                   wrReal(in.dst, Type::kReal,
                          rdBool(in.a) + " ? " + rdReal(in.b) + " : " +
                              rdReal(in.c)) +
                   "\n";
              break;
            case Type::kInt:
              o += "    " +
                   wrInt(in.dst, Type::kInt,
                         rdBool(in.a) + " ? " + rdInt(in.b) + " : " +
                             rdInt(in.c)) +
                   "\n";
              break;
            case Type::kBool:
              o += "    " +
                   wrBool(in.dst, Type::kBool,
                          rdBool(in.a) + " ? " + rdBool(in.b) + " : " +
                              rdBool(in.c)) +
                   "\n";
              break;
          }
        }
        break;
      case Op::kSelect: {
        // Clamped read; payload and tag both come off the element, exactly
        // the interpreter's Scalar copy. Empty arrays cannot occur on a
        // verified tape; the n>0 guard keeps the native code memory-safe
        // regardless.
        o += "    i64 n = " + an(in.a) + ";\n    if (n > 0) {\n      i64 i = " +
             rdInt(in.b) +
             ";\n      if (i < 0) i = 0;\n      if (i >= n) i = n - 1;\n"
             "      " +
             sv(in.dst) + " = ae[" + aOff(in.a) + " + i];\n";
        if (dyn(in.dst)) {
          o += "      " + stg(in.dst) + " = at[" + aOff(in.a) + " + i];\n";
        }
        o += "    }\n";
        break;
      }
      case Op::kStore: {
        o += "    i64 n = " + an(in.a) + ";\n" + arrayCopy(in.dst, in.a, "n") +
             "    " + an(in.dst) +
             " = n;\n    if (n > 0) {\n      i64 i = " + rdInt(in.b) +
             ";\n      if (i < 0) i = 0;\n      if (i >= n) i = n - 1;\n"
             "      ae[" +
             aOff(in.dst) + " + i] = " + castPayload(in.c, in.type) +
             ";\n      at[" + aOff(in.dst) + " + i] = " + S(tagOf(in.type)) +
             "u;\n    }\n";
        break;
      }
      default:
        // Leaf ops never appear as instructions on a verified tape.
        break;
    }
    return o + "  }\n";
  }

  /// Promote-sensitive arithmetic: the domain (int vs real) depends on
  /// both operand types, so a dynamic operand forces the tagged helper;
  /// static operands get the domain resolved at emission time.
  std::string arith(const TapeInstr& in) const {
    if (dyn(in.a) || dyn(in.b)) {
      return "    { u8 rt; u64 rv = g_arith(" +
             S(static_cast<int>(in.op)) + ", " + sv(in.a) + ", " + tag(in.a) +
             ", " + sv(in.b) + ", " + tag(in.b) + ", &rt);\n      " + sv(in.dst) +
             " = g_cast(rv, rt, " + S(tagOf(in.type)) + "u);" +
             tagWrite(in.dst, in.type) + " }\n";
    }
    const Type ta = sty(in.a) == Type::kBool ? Type::kInt : sty(in.a);
    const Type tb = sty(in.b) == Type::kBool ? Type::kInt : sty(in.b);
    const bool real = ta == Type::kReal || tb == Type::kReal;
    std::string x, body;
    if (real) {
      body = "    { double x = " + rdReal(in.a) + ", y = " + rdReal(in.b) +
             ";\n      ";
      switch (in.op) {
        case Op::kAdd: x = "x + y"; break;
        case Op::kSub: x = "x - y"; break;
        case Op::kMul: x = "x * y"; break;
        case Op::kDiv: x = "y == 0.0 ? 0.0 : x / y"; break;
        case Op::kMin: x = "fmin(x, y)"; break;
        default: x = "fmax(x, y)"; break;
      }
      return body + wrReal(in.dst, in.type, x) + " }\n";
    }
    body = "    { i64 x = " + rdInt(in.a) + ", y = " + rdInt(in.b) + ";\n      ";
    switch (in.op) {
      case Op::kAdd: x = "(i64)((u64)x + (u64)y)"; break;
      case Op::kSub: x = "(i64)((u64)x - (u64)y)"; break;
      case Op::kMul: x = "(i64)((u64)x * (u64)y)"; break;
      case Op::kDiv: x = "y == 0 ? 0 : x / y"; break;
      case Op::kMin: x = "x < y ? x : y"; break;
      default: x = "x < y ? y : x"; break;
    }
    return body + wrInt(in.dst, in.type, x) + " }\n";
  }

  void buildBlocks() {
    blocks_.clear();
    blocks_.reserve(t_.code().size());
    for (std::size_t i = 0; i < t_.code().size(); ++i) {
      blocks_.push_back(block(t_.code()[i], i));
    }
  }

  std::string preamble() const {
    std::string o =
        "/* Generated by stcg expr::TapeJit — hash-keyed cache artifact.\n"
        "   Transliteration of TapeExecutor::exec for one tape; do not edit. "
        "*/\n"
        "#include <stdint.h>\n#include <string.h>\n#include <math.h>\n\n"
        "typedef uint64_t u64;\ntypedef int64_t i64;\ntypedef uint8_t u8;\n\n"
        "static inline double br_(u64 u) { double d; memcpy(&d, &u, 8); "
        "return d; }\n"
        "static inline u64 rb_(double d) { u64 u; memcpy(&u, &d, 8); "
        "return u; }\n\n";
    o += saturatingRealToIntC();
    o +=
        "\nstatic inline double g_toreal(u64 v, u8 t) {\n"
        "  if (t == 2u) return br_(v);\n"
        "  if (t == 1u) return (double)(i64)v;\n"
        "  return v ? 1.0 : 0.0;\n}\n"
        "static inline i64 g_toint(u64 v, u8 t) {\n"
        "  if (t == 2u) return sat_i64(br_(v));\n"
        "  return (i64)v;\n}\n"
        "static inline int g_tobool(u64 v, u8 t) {\n"
        "  if (t == 2u) return br_(v) != 0.0;\n"
        "  return v != 0u;\n}\n"
        "static inline u64 g_cast(u64 v, u8 t, u8 to) {\n"
        "  if (to == 2u) return rb_(g_toreal(v, t));\n"
        "  if (to == 1u) return (u64)g_toint(v, t);\n"
        "  return g_tobool(v, t) ? 1u : 0u;\n}\n"
        "/* applyBinary's promote-sensitive arithmetic over tagged payloads. "
        "*/\n"
        "static inline u64 g_arith(int op, u64 a, u8 ta, u64 b, u8 tb, "
        "u8* rt) {\n"
        "  if (ta == 2u || tb == 2u) {\n"
        "    double x = g_toreal(a, ta), y = g_toreal(b, tb), r;\n"
        "    if (op == " + S(static_cast<int>(Op::kAdd)) + ") r = x + y;\n"
        "    else if (op == " + S(static_cast<int>(Op::kSub)) + ") r = x - y;\n"
        "    else if (op == " + S(static_cast<int>(Op::kMul)) + ") r = x * y;\n"
        "    else if (op == " + S(static_cast<int>(Op::kDiv)) +
        ") r = y == 0.0 ? 0.0 : x / y;\n"
        "    else if (op == " + S(static_cast<int>(Op::kMin)) +
        ") r = fmin(x, y);\n"
        "    else r = fmax(x, y);\n"
        "    *rt = 2u; return rb_(r);\n  }\n"
        "  i64 x = g_toint(a, ta), y = g_toint(b, tb), r;\n"
        "  if (op == " + S(static_cast<int>(Op::kAdd)) +
        ") r = (i64)((u64)x + (u64)y);\n"
        "  else if (op == " + S(static_cast<int>(Op::kSub)) +
        ") r = (i64)((u64)x - (u64)y);\n"
        "  else if (op == " + S(static_cast<int>(Op::kMul)) +
        ") r = (i64)((u64)x * (u64)y);\n"
        "  else if (op == " + S(static_cast<int>(Op::kDiv)) +
        ") r = y == 0 ? 0 : x / y;\n"
        "  else if (op == " + S(static_cast<int>(Op::kMin)) +
        ") r = x < y ? x : y;\n"
        "  else r = x < y ? y : x;\n"
        "  *rt = 1u; return (u64)r;\n}\n\n";
    return o;
  }

  std::string overlayBody() const {
    const JitOverlay& ov = *opts_.overlay;
    std::string o =
        "  double d[" +
        S(std::max<std::int64_t>(1,
                                 static_cast<std::int64_t>(ov.init.size()))) +
        "];\n";
    for (std::size_t i = 0; i < ov.init.size(); ++i) {
      o += "  d[" + S(static_cast<std::int64_t>(i)) +
           "] = " + fmtDouble(ov.init[i]) + ";\n";
    }
    const std::string eps = fmtDouble(1e-6);  // overlayStep's kEps
    for (const JitOverlayInstr& in : ov.code) {
      const std::string dst = "d[" + S(in.dst) + "]";
      switch (in.kind) {
        case JitOverlayInstr::Kind::kSum:
          o += "  " + dst + " = d[" + S(in.a) + "] + d[" + S(in.b) + "];\n";
          break;
        case JitOverlayInstr::Kind::kMin:
          // std::min(a, b): b when b < a, else a (NaN behavior included).
          o += "  " + dst + " = d[" + S(in.b) + "] < d[" + S(in.a) +
               "] ? d[" + S(in.b) + "] : d[" + S(in.a) + "];\n";
          break;
        case JitOverlayInstr::Kind::kCmp: {
          const std::string l = rdReal(in.va);
          const std::string r = rdReal(in.vb);
          std::string e;
          switch (in.cmpOp) {
            case Op::kEq:
              e = in.want ? "fabs(x - y)"
                          : "fabs(x - y) == 0.0 ? 1.0 : 0.0";
              break;
            case Op::kNe:
              e = in.want ? "fabs(x - y) == 0.0 ? 1.0 : 0.0"
                          : "fabs(x - y)";
              break;
            case Op::kLt:
              e = in.want ? "x - y < 0.0 ? 0.0 : (x - y) + " + eps
                          : "x - y >= 0.0 ? 0.0 : " + eps + " - (x - y)";
              break;
            case Op::kLe:
              e = in.want ? "x - y <= 0.0 ? 0.0 : x - y"
                          : "x - y > 0.0 ? 0.0 : " + eps + " - (x - y)";
              break;
            case Op::kGt:
              e = in.want ? "y - x < 0.0 ? 0.0 : (y - x) + " + eps
                          : "y - x >= 0.0 ? 0.0 : " + eps + " - (y - x)";
              break;
            default:  // kGe
              e = in.want ? "y - x <= 0.0 ? 0.0 : y - x"
                          : "y - x > 0.0 ? 0.0 : " + eps + " - (y - x)";
              break;
          }
          o += "  { double x = " + l + ", y = " + r + "; " + dst + " = " + e +
               "; }\n";
          break;
        }
        case JitOverlayInstr::Kind::kTruth:
          o += "  " + dst + " = " + rdBool(in.va) + " == " +
               (in.want ? "1" : "0") + " ? 0.0 : 1.0;\n";
          break;
      }
    }
    o += "  return d[" + S(opts_.overlay->root) + "];\n";
    return o;
  }

  std::string overlayFn() const {
    return "static double overlay_one" + kSig + " {\n" + kUnused +
           overlayBody() + "}\n\n";
  }

  std::string coneFn(VarId v) const {
    const std::vector<std::int32_t>* cone = t_.coneOf(v);
    std::string o = "void stcg_cone_v" + S(v) + kSig + " {\n" + kUnused;
    if (cone != nullptr) {
      for (const std::int32_t idx : *cone) {
        o += blocks_[static_cast<std::size_t>(idx)];
      }
    }
    o += "}\n\n";
    if (opts_.overlay != nullptr) {
      o += "double stcg_distance_cone_v" + S(v) + kSig + " {\n" + kUnused;
      if (cone != nullptr) {
        for (const std::int32_t idx : *cone) {
          o += blocks_[static_cast<std::size_t>(idx)];
        }
      }
      o += overlayBody() + "}\n\n";
    }
    return o;
  }

  static inline const std::string kSig =
      "(u64* sv, u8* st, i64* an, u64* ae, u8* at)";
  static inline const std::string kUnused =
      "  (void)sv; (void)st; (void)an; (void)ae; (void)at;\n";

  const Tape& t_;
  const TapeJit::Options& opts_;
  const ArrayLayout& lay_;
  TapeStaticTypes st_;
  std::vector<std::string> blocks_;
};

#if STCG_JIT_HAVE_DLOPEN

/// dlopen + tag check. Returns nullptr with *err set on any mismatch —
/// a stale or foreign cached object is discarded, never trusted.
void* tryLoadModule(const fs::path& so, const std::string& hash,
                    std::string* err) {
  void* h = ::dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (h == nullptr) {
    const char* e = ::dlerror();
    *err = e != nullptr ? e : "dlopen failed";
    return nullptr;
  }
  const char* tag = static_cast<const char*>(::dlsym(h, "stcg_jit_tag"));
  if (tag == nullptr || hash != tag) {
    ::dlclose(h);
    *err = "cached module tag mismatch (stale or foreign .so)";
    return nullptr;
  }
  if (::dlsym(h, "stcg_step") == nullptr ||
      ::dlsym(h, "stcg_run_lanes") == nullptr) {
    ::dlclose(h);
    *err = "cached module is missing required symbols";
    return nullptr;
  }
  return h;
}

#endif  // STCG_JIT_HAVE_DLOPEN

}  // namespace

bool jitEnabled() {
  static const bool on = util::envFlag("STCG_JIT", true);
  return on;
}

std::string jitCompiler() {
  return util::envString("STCG_JIT_CC").value_or("cc");
}

std::vector<JitDiagnostic> jitDiagnostics() {
  std::lock_guard<std::mutex> lock(diagMutex());
  return diagStore();
}

void clearJitDiagnostics() {
  std::lock_guard<std::mutex> lock(diagMutex());
  diagStore().clear();
}

void jitClearCache() {
  std::lock_guard<std::mutex> lock(jitMutex());
  moduleMemo().clear();
}

TapeJit::~TapeJit() {
#if STCG_JIT_HAVE_DLOPEN
  if (handle_ != nullptr) ::dlclose(handle_);
#endif
}

TapeJit::Frame TapeJit::cone(VarId var) const {
  const auto it = std::lower_bound(
      cones_.begin(), cones_.end(), var,
      [](const std::pair<VarId, Frame>& p, VarId v) { return p.first < v; });
  return it != cones_.end() && it->first == var ? it->second : nullptr;
}

TapeJit::DistFn TapeJit::distanceCone(VarId var) const {
  const auto it = std::lower_bound(
      distCones_.begin(), distCones_.end(), var,
      [](const std::pair<VarId, DistFn>& p, VarId v) { return p.first < v; });
  return it != distCones_.end() && it->first == var ? it->second : nullptr;
}

std::shared_ptr<const TapeJit> TapeJit::compile(
    const std::shared_ptr<const Tape>& tape, const Options& opts,
    std::string* whyNot) {
  const auto fail = [&](const std::string& why, const char* severity =
                            "warning") -> std::shared_ptr<const TapeJit> {
    recordDiagnostic(severity, "jit-unavailable", why);
    if (whyNot != nullptr) *whyNot = why;
    return nullptr;
  };
  if (!jitEnabled()) {
    return fail("tape JIT disabled via STCG_JIT=0", "note");
  }
#if !STCG_JIT_HAVE_DLOPEN
  return fail("tape JIT unsupported on this platform (no dlopen)");
#else
  // Never emit from an unsound tape: the verifier's static model is what
  // the specialization below trusts.
  if (TapeVerifyResult vr = verifyTape(*tape); vr.hasErrors()) {
    return fail("refusing to JIT an unverified tape: " + vr.render());
  }

  const ArrayLayout lay = computeArrayLayout(*tape);
  CEmitter em(*tape, opts, lay);
  std::string src = em.source();
  const std::string hash = fnv1a(src);
  src += "const char stcg_jit_tag[] = \"" + hash + "\";\n";

  // One compile at a time process-wide: serializes the memo, the cache
  // directory and the compiler invocation.
  std::lock_guard<std::mutex> lock(jitMutex());
  if (const auto it = moduleMemo().find(hash); it != moduleMemo().end()) {
    return it->second;
  }

  std::error_code ec;
  const fs::path dir = jitCacheDir();
  fs::create_directories(dir, ec);
  const fs::path so = dir / ("stcg_jit_" + hash + ".so");
  const fs::path cSrc = dir / ("stcg_jit_" + hash + ".c");
  const fs::path errFile = dir / ("stcg_jit_" + hash + ".err");

  std::string loadErr;
  void* handle = nullptr;
  if (fs::exists(so, ec)) {
    handle = tryLoadModule(so, hash, &loadErr);
    if (handle == nullptr) {
      // Stale/corrupt cache entry: discard and rebuild.
      recordDiagnostic("note", "jit-cache",
                       "discarding cached module " + so.string() + ": " +
                           loadErr);
      fs::remove(so, ec);
    }
  }
  if (handle == nullptr) {
    {
      std::ofstream out(cSrc);
      if (!out) {
        return fail("cannot write JIT source to " + cSrc.string());
      }
      out << src;
    }
    const std::string cc = jitCompiler();
    const fs::path tmpSo =
        dir / ("stcg_jit_" + hash + ".so.tmp" + std::to_string(::getpid()));
    const std::string cmd = "\"" + cc + "\" -O2 -fPIC -shared -std=c11 -x c \"" +
                            cSrc.string() + "\" -o \"" + tmpSo.string() +
                            "\" -lm 2> \"" + errFile.string() + "\"";
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
      std::string tail = readFileTail(errFile, 400);
      fs::remove(tmpSo, ec);
      return fail("JIT compile failed (cc='" + cc + "', exit " +
                  std::to_string(rc) + (tail.empty() ? ")" : "): " + tail));
    }
    fs::rename(tmpSo, so, ec);
    if (ec) {
      fs::remove(tmpSo, ec);
      return fail("cannot install compiled module at " + so.string());
    }
    handle = tryLoadModule(so, hash, &loadErr);
    if (handle == nullptr) {
      return fail("dlopen failed after compile: " + loadErr);
    }
  }

  auto jit = std::shared_ptr<TapeJit>(new TapeJit());
  jit->handle_ = handle;
  jit->hash_ = hash;
  jit->ns_ = tape->scalarSlotCount();
  jit->na_ = tape->arraySlotCount();
  jit->arrayCap_ = lay.cap;
  jit->arrayOff_ = lay.off;
  jit->totalCap_ = lay.total;
  jit->step_ = reinterpret_cast<Frame>(::dlsym(handle, "stcg_step"));
  jit->lanes_ = reinterpret_cast<LanesFn>(::dlsym(handle, "stcg_run_lanes"));
  if (opts.overlay != nullptr) {
    jit->dist_ = reinterpret_cast<DistFn>(::dlsym(handle, "stcg_distance"));
    jit->distLanes_ =
        reinterpret_cast<DistLanesFn>(::dlsym(handle, "stcg_distance_lanes"));
    if (jit->dist_ == nullptr || jit->distLanes_ == nullptr) {
      return fail("compiled module is missing distance symbols");
    }
  }
  for (const VarId v : opts.coneVars) {
    if (v < 0) continue;
    const std::string n = std::to_string(v);
    if (auto* f = ::dlsym(handle, ("stcg_cone_v" + n).c_str())) {
      jit->cones_.emplace_back(v, reinterpret_cast<Frame>(f));
    }
    if (opts.overlay != nullptr) {
      if (auto* f = ::dlsym(handle, ("stcg_distance_cone_v" + n).c_str())) {
        jit->distCones_.emplace_back(v, reinterpret_cast<DistFn>(f));
      }
    }
  }
  std::sort(jit->cones_.begin(), jit->cones_.end());
  std::sort(jit->distCones_.begin(), jit->distCones_.end());
  moduleMemo()[hash] = jit;
  return jit;
#endif  // STCG_JIT_HAVE_DLOPEN
}

// ---------------------------------------------------------------------------
// JitTapeExecutor

JitTapeExecutor::JitTapeExecutor(std::shared_ptr<const Tape> tape,
                                 std::shared_ptr<const TapeJit> jit, int lanes)
    : tape_(std::move(tape)), jit_(std::move(jit)),
      lanes_(lanes < 1 ? 1 : lanes) {
  if (jit_ == nullptr) {
    throw EvalError("JitTapeExecutor: null TapeJit module");
  }
  if (jit_->scalarSlots() != tape_->scalarSlotCount() ||
      jit_->arraySlots() != tape_->arraySlotCount()) {
    throw EvalError("JitTapeExecutor: module/tape frame geometry mismatch");
  }
  ns_ = static_cast<std::ptrdiff_t>(jit_->scalarSlots());
  na_ = static_cast<std::ptrdiff_t>(jit_->arraySlots());
  cap_ = static_cast<std::ptrdiff_t>(jit_->totalArrayCapacity());
  const TapeStaticTypes st = analyzeTapeStaticTypes(*tape_);
  const auto B = static_cast<std::size_t>(lanes_);

  sv_.assign(static_cast<std::size_t>(ns_) * B, 0);
  st_.assign(static_cast<std::size_t>(ns_) * B, 0);
  an_.assign(static_cast<std::size_t>(na_) * B, 0);
  ae_.assign(static_cast<std::size_t>(cap_) * B, 0);
  at_.assign(static_cast<std::size_t>(cap_) * B, 0);

  // Lane-0 image, then replicated: constants carry their payload, every
  // other slot starts zero with its static tag (the batch executor's
  // initialization, at any B).
  for (std::size_t s = 0; s < static_cast<std::size_t>(ns_); ++s) {
    sv_[s] = bitsOf(tape_->scalarInit()[s].castTo(st.scalarType[s]));
    st_[s] = static_cast<std::uint8_t>(st.scalarType[s]);
  }
  for (std::size_t a = 0; a < static_cast<std::size_t>(na_); ++a) {
    const auto& init = tape_->arrayInit()[a];
    an_[a] = static_cast<std::int64_t>(init.size());
    const auto off = static_cast<std::size_t>(jit_->arrayOffset(
        static_cast<std::int32_t>(a)));
    for (std::size_t j = 0; j < init.size(); ++j) {
      ae_[off + j] = bitsOf(init[j]);
      at_[off + j] = static_cast<std::uint8_t>(init[j].type());
    }
  }
  for (std::size_t l = 1; l < B; ++l) {
    std::copy_n(sv_.begin(), ns_, sv_.begin() + static_cast<std::ptrdiff_t>(l) * ns_);
    std::copy_n(st_.begin(), ns_, st_.begin() + static_cast<std::ptrdiff_t>(l) * ns_);
    std::copy_n(an_.begin(), na_, an_.begin() + static_cast<std::ptrdiff_t>(l) * na_);
    std::copy_n(ae_.begin(), cap_, ae_.begin() + static_cast<std::ptrdiff_t>(l) * cap_);
    std::copy_n(at_.begin(), cap_, at_.begin() + static_cast<std::ptrdiff_t>(l) * cap_);
  }

  varBound_.assign(tape_->varBindings().size() * B, 0);
  arrayBound_.assign(tape_->arrayBindings().size() * B, 0);
}

void JitTapeExecutor::setVarLane(int lane, VarId id, const Scalar& v) {
  const auto& bindings = tape_->varBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeVarBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    const auto slot = static_cast<std::size_t>(it->slot);
    sv(lane)[slot] = bitsOf(v.castTo(it->type));
    st(lane)[slot] = static_cast<std::uint8_t>(it->type);
    varBound_[static_cast<std::size_t>(it - bindings.begin()) *
                  static_cast<std::size_t>(lanes_) +
              static_cast<std::size_t>(lane)] = 1;
  }
}

void JitTapeExecutor::setArrayVarLane(int lane, VarId id,
                                      const std::vector<Scalar>& v) {
  const auto& bindings = tape_->arrayBindings();
  auto it = std::lower_bound(
      bindings.begin(), bindings.end(), id,
      [](const TapeArrayBinding& b, VarId want) { return b.var < want; });
  for (; it != bindings.end() && it->var == id; ++it) {
    const std::int32_t slot = it->slot;
    if (static_cast<std::int64_t>(v.size()) > jit_->arrayCapacity(slot)) {
      throw EvalError("JitTapeExecutor: array bind of " +
                      std::to_string(v.size()) + " element(s) exceeds slot " +
                      std::to_string(slot) + "'s static capacity " +
                      std::to_string(jit_->arrayCapacity(slot)));
    }
    an(lane)[static_cast<std::size_t>(slot)] =
        static_cast<std::int64_t>(v.size());
    const auto off = static_cast<std::size_t>(jit_->arrayOffset(slot));
    for (std::size_t j = 0; j < v.size(); ++j) {
      ae(lane)[off + j] = bitsOf(v[j]);  // elements stay uncast, like setVar
      at(lane)[off + j] = static_cast<std::uint8_t>(v[j].type());
    }
    arrayBound_[static_cast<std::size_t>(it - bindings.begin()) *
                    static_cast<std::size_t>(lanes_) +
                static_cast<std::size_t>(lane)] = 1;
  }
}

void JitTapeExecutor::bindEnv(const Env& env) {
  for (const auto& b : tape_->varBindings()) {
    if (env.has(b.var)) setVar(b.var, env.get(b.var));
  }
  for (const auto& b : tape_->arrayBindings()) {
    if (env.hasArray(b.var)) setArrayVar(b.var, env.getArray(b.var));
  }
}

void JitTapeExecutor::requireAllBound(int n) {
  if (checkedLanes_ >= n) return;
  const auto& vb = tape_->varBindings();
  const auto& ab = tape_->arrayBindings();
  for (int lane = 0; lane < n; ++lane) {
    for (std::size_t i = 0; i < vb.size(); ++i) {
      if (varBound_[i * static_cast<std::size_t>(lanes_) +
                    static_cast<std::size_t>(lane)] == 0) {
        throw EvalError("unbound variable '" + vb[i].name + "' (id " +
                        std::to_string(vb[i].var) +
                        ") during tape execution");
      }
    }
    for (std::size_t i = 0; i < ab.size(); ++i) {
      if (arrayBound_[i * static_cast<std::size_t>(lanes_) +
                      static_cast<std::size_t>(lane)] == 0) {
        throw EvalError("unbound array variable '" + ab[i].name + "' (id " +
                        std::to_string(ab[i].var) +
                        ") during tape execution");
      }
    }
  }
  checkedLanes_ = n;
}

void JitTapeExecutor::run() {
  requireAllBound(1);
  jit_->step()(sv(0), st(0), an(0), ae(0), at(0));
}

void JitTapeExecutor::runBatch(int n) {
  n = std::clamp(n, 1, lanes_);
  requireAllBound(n);
  jit_->runLanes()(n, sv(0), st(0), an(0), ae(0), at(0));
}

void JitTapeExecutor::runCone(VarId id) {
  requireAllBound(1);
  if (tape_->coneOf(id) == nullptr) return;  // nothing depends on id
  if (const TapeJit::Frame f = jit_->cone(id)) {
    f(sv(0), st(0), an(0), ae(0), at(0));
  } else {
    jit_->step()(sv(0), st(0), an(0), ae(0), at(0));  // full replay
  }
}

double JitTapeExecutor::runDistance() {
  if (!jit_->hasOverlay()) {
    throw EvalError("JitTapeExecutor: module compiled without an overlay");
  }
  requireAllBound(1);
  return jit_->distance()(sv(0), st(0), an(0), ae(0), at(0));
}

double JitTapeExecutor::runDistanceCone(VarId id) {
  if (!jit_->hasOverlay()) {
    throw EvalError("JitTapeExecutor: module compiled without an overlay");
  }
  requireAllBound(1);
  if (const TapeJit::DistFn f = jit_->distanceCone(id)) {
    return f(sv(0), st(0), an(0), ae(0), at(0));
  }
  return jit_->distance()(sv(0), st(0), an(0), ae(0), at(0));
}

void JitTapeExecutor::runDistanceBatch(int n, double* out) {
  if (!jit_->hasOverlay()) {
    throw EvalError("JitTapeExecutor: module compiled without an overlay");
  }
  n = std::clamp(n, 1, lanes_);
  requireAllBound(n);
  jit_->distanceLanes()(n, sv(0), st(0), an(0), ae(0), at(0), out);
}

Scalar JitTapeExecutor::scalarLane(int lane, SlotRef r) const {
  const auto idx = static_cast<std::size_t>(lane) *
                       static_cast<std::size_t>(ns_) +
                   static_cast<std::size_t>(r.slot);
  return scalarOf(sv_[idx], st_[idx]);
}

std::vector<Scalar> JitTapeExecutor::arrayLane(int lane, SlotRef r) const {
  const auto n = static_cast<std::size_t>(
      an_[static_cast<std::size_t>(lane) * static_cast<std::size_t>(na_) +
          static_cast<std::size_t>(r.slot)]);
  const auto off = static_cast<std::size_t>(lane) *
                       static_cast<std::size_t>(cap_) +
                   static_cast<std::size_t>(jit_->arrayOffset(r.slot));
  std::vector<Scalar> out;
  out.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    out.push_back(scalarOf(ae_[off + j], at_[off + j]));
  }
  return out;
}

}  // namespace stcg::expr
