// Partial evaluation: substitute a (possibly partial) variable binding into
// an expression and rebuild it through the folding constructors.
//
// This is the mechanism behind the paper's key move (§III-A): "we just bring
// the model state value as constants rather than variables into the model".
// Binding the state variables of a step function to the concrete values held
// in a state-tree node collapses all state-dependent structure, leaving a
// residual constraint over the current-step inputs only.
#pragma once

#include "expr/eval.h"
#include "expr/expr.h"

namespace stcg::expr {

/// Rebuild `e` with every variable bound in `binding` replaced by its
/// constant value (scalar and array bindings both apply). Unbound variables
/// are preserved. Folding happens on the way up, so fully-determined
/// subtrees become constants.
[[nodiscard]] ExprPtr substitute(const ExprPtr& e, const Env& binding);

/// Rebuild `e` with variables replaced by arbitrary expressions (the
/// mapped expression's type/shape must match the variable's). Used by the
/// SLDV-like baseline to unroll the step function: state leaves of step
/// k+1 are substituted with the step-k next-state expressions, and input
/// leaves with fresh per-step variables.
[[nodiscard]] ExprPtr substituteExprs(
    const ExprPtr& e, const std::unordered_map<VarId, ExprPtr>& mapping);

}  // namespace stcg::expr
