#include "expr/builder.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace stcg::expr {

namespace {

ExprPtr makeNode(Op op, Type type, int arraySize, std::vector<ExprPtr> args) {
  auto n = std::make_shared<Expr>();
  n->op = op;
  n->type = type;
  n->arraySize = arraySize;
  n->args = std::move(args);
  return n;
}

bool isConstTrue(const ExprPtr& e) {
  return e->op == Op::kConst && e->constVal.toBool();
}
bool isConstFalse(const ExprPtr& e) {
  return e->op == Op::kConst && !e->constVal.toBool();
}

/// Clamp an array index into range; keeps select/store total.
std::int64_t clampIndex(std::int64_t i, int size) {
  if (i < 0) return 0;
  if (i >= size) return size - 1;
  return i;
}

}  // namespace

Type promote(Type a, Type b) {
  if (a == Type::kReal || b == Type::kReal) return Type::kReal;
  return Type::kInt;
}

Scalar applyUnary(Op op, Type resultType, const Scalar& a) {
  switch (op) {
    case Op::kNot:
      return Scalar::b(!a.toBool());
    case Op::kNeg:
      if (resultType == Type::kReal) return Scalar::r(-a.toReal());
      return Scalar::i(-a.toInt());
    case Op::kAbs:
      if (resultType == Type::kReal) return Scalar::r(std::fabs(a.toReal()));
      return Scalar::i(a.toInt() < 0 ? -a.toInt() : a.toInt());
    case Op::kCast:
      return a.castTo(resultType);
    default:
      assert(false && "not a unary op");
      return a;
  }
}

Scalar applyBinary(Op op, const Scalar& a, const Scalar& b) {
  const Type nt = promote(a.type() == Type::kBool ? Type::kInt : a.type(),
                          b.type() == Type::kBool ? Type::kInt : b.type());
  const bool real = nt == Type::kReal;
  switch (op) {
    case Op::kAdd:
      return real ? Scalar::r(a.toReal() + b.toReal())
                  : Scalar::i(a.toInt() + b.toInt());
    case Op::kSub:
      return real ? Scalar::r(a.toReal() - b.toReal())
                  : Scalar::i(a.toInt() - b.toInt());
    case Op::kMul:
      return real ? Scalar::r(a.toReal() * b.toReal())
                  : Scalar::i(a.toInt() * b.toInt());
    case Op::kDiv:
      if (real) {
        const double d = b.toReal();
        return Scalar::r(d == 0.0 ? 0.0 : a.toReal() / d);
      } else {
        const std::int64_t d = b.toInt();
        return Scalar::i(d == 0 ? 0 : a.toInt() / d);
      }
    case Op::kMod: {
      const std::int64_t d = b.toInt();
      return Scalar::i(d == 0 ? 0 : a.toInt() % d);
    }
    case Op::kMin:
      return real ? Scalar::r(std::fmin(a.toReal(), b.toReal()))
                  : Scalar::i(std::min(a.toInt(), b.toInt()));
    case Op::kMax:
      return real ? Scalar::r(std::fmax(a.toReal(), b.toReal()))
                  : Scalar::i(std::max(a.toInt(), b.toInt()));
    case Op::kLt:
      return Scalar::b(a.toReal() < b.toReal());
    case Op::kLe:
      return Scalar::b(a.toReal() <= b.toReal());
    case Op::kGt:
      return Scalar::b(a.toReal() > b.toReal());
    case Op::kGe:
      return Scalar::b(a.toReal() >= b.toReal());
    case Op::kEq:
      return Scalar::b(a.toReal() == b.toReal());
    case Op::kNe:
      return Scalar::b(a.toReal() != b.toReal());
    case Op::kAnd:
      return Scalar::b(a.toBool() && b.toBool());
    case Op::kOr:
      return Scalar::b(a.toBool() || b.toBool());
    case Op::kXor:
      return Scalar::b(a.toBool() != b.toBool());
    default:
      assert(false && "not a binary op");
      return a;
  }
}

ExprPtr cBool(bool v) { return cScalar(Scalar::b(v)); }
ExprPtr cInt(std::int64_t v) { return cScalar(Scalar::i(v)); }
ExprPtr cReal(double v) { return cScalar(Scalar::r(v)); }

ExprPtr cScalar(Scalar v) {
  auto n = std::make_shared<Expr>();
  n->op = Op::kConst;
  n->type = v.type();
  n->arraySize = 0;
  n->constVal = v;
  return n;
}

ExprPtr cArray(Type elemType, std::vector<Scalar> elems) {
  assert(!elems.empty());
  auto n = std::make_shared<Expr>();
  n->op = Op::kConstArray;
  n->type = elemType;
  n->arraySize = static_cast<int>(elems.size());
  for (auto& e : elems) e = e.castTo(elemType);
  n->constArray = std::move(elems);
  return n;
}

ExprPtr mkVarArray(VarId id, const std::string& name, Type elemType,
                   int size) {
  assert(id >= 0 && size > 0);
  auto n = std::make_shared<Expr>();
  n->op = Op::kVarArray;
  n->type = elemType;
  n->arraySize = size;
  n->var = id;
  n->varName = name;
  return n;
}

ExprPtr mkVar(const VarInfo& info) {
  assert(info.id >= 0);
  auto n = std::make_shared<Expr>();
  n->op = Op::kVar;
  n->type = info.type;
  n->arraySize = 0;
  n->var = info.id;
  n->varName = info.name;
  n->varLo = info.lo;
  n->varHi = info.hi;
  return n;
}

namespace {

ExprPtr unary(Op op, Type type, ExprPtr a) {
  if (a->op == Op::kConst) return cScalar(applyUnary(op, type, a->constVal));
  return makeNode(op, type, 0, {std::move(a)});
}

ExprPtr binary(Op op, Type type, ExprPtr a, ExprPtr b) {
  if (a->op == Op::kConst && b->op == Op::kConst) {
    return cScalar(applyBinary(op, a->constVal, b->constVal).castTo(type));
  }
  return makeNode(op, type, 0, {std::move(a), std::move(b)});
}

bool isConstZero(const ExprPtr& e) {
  return e->op == Op::kConst && e->constVal.toReal() == 0.0;
}
bool isConstOne(const ExprPtr& e) {
  return e->op == Op::kConst && e->constVal.toReal() == 1.0;
}

}  // namespace

ExprPtr notE(ExprPtr a) {
  if (a->op == Op::kNot) return a->args[0];  // double negation
  return unary(Op::kNot, Type::kBool, std::move(a));
}

ExprPtr negE(ExprPtr a) {
  const Type t = a->type == Type::kBool ? Type::kInt : a->type;
  return unary(Op::kNeg, t, std::move(a));
}

ExprPtr absE(ExprPtr a) {
  const Type t = a->type == Type::kBool ? Type::kInt : a->type;
  return unary(Op::kAbs, t, std::move(a));
}

ExprPtr castE(ExprPtr a, Type to) {
  if (a->type == to) return a;
  return unary(Op::kCast, to, std::move(a));
}

ExprPtr addE(ExprPtr a, ExprPtr b) {
  const Type t = promote(a->type == Type::kBool ? Type::kInt : a->type,
                         b->type == Type::kBool ? Type::kInt : b->type);
  if (isConstZero(a)) return castE(std::move(b), t);
  if (isConstZero(b)) return castE(std::move(a), t);
  return binary(Op::kAdd, t, std::move(a), std::move(b));
}

ExprPtr subE(ExprPtr a, ExprPtr b) {
  const Type t = promote(a->type == Type::kBool ? Type::kInt : a->type,
                         b->type == Type::kBool ? Type::kInt : b->type);
  if (isConstZero(b)) return castE(std::move(a), t);
  return binary(Op::kSub, t, std::move(a), std::move(b));
}

ExprPtr mulE(ExprPtr a, ExprPtr b) {
  const Type t = promote(a->type == Type::kBool ? Type::kInt : a->type,
                         b->type == Type::kBool ? Type::kInt : b->type);
  if (isConstZero(a)) return castE(std::move(a), t);
  if (isConstZero(b)) return castE(std::move(b), t);
  if (isConstOne(a)) return castE(std::move(b), t);
  if (isConstOne(b)) return castE(std::move(a), t);
  return binary(Op::kMul, t, std::move(a), std::move(b));
}

ExprPtr divE(ExprPtr a, ExprPtr b) {
  const Type t = promote(a->type == Type::kBool ? Type::kInt : a->type,
                         b->type == Type::kBool ? Type::kInt : b->type);
  if (isConstOne(b)) return castE(std::move(a), t);
  return binary(Op::kDiv, t, std::move(a), std::move(b));
}

ExprPtr modE(ExprPtr a, ExprPtr b) {
  return binary(Op::kMod, Type::kInt, std::move(a), std::move(b));
}

ExprPtr minE(ExprPtr a, ExprPtr b) {
  const Type t = promote(a->type == Type::kBool ? Type::kInt : a->type,
                         b->type == Type::kBool ? Type::kInt : b->type);
  return binary(Op::kMin, t, std::move(a), std::move(b));
}

ExprPtr maxE(ExprPtr a, ExprPtr b) {
  const Type t = promote(a->type == Type::kBool ? Type::kInt : a->type,
                         b->type == Type::kBool ? Type::kInt : b->type);
  return binary(Op::kMax, t, std::move(a), std::move(b));
}

ExprPtr ltE(ExprPtr a, ExprPtr b) {
  return binary(Op::kLt, Type::kBool, std::move(a), std::move(b));
}
ExprPtr leE(ExprPtr a, ExprPtr b) {
  return binary(Op::kLe, Type::kBool, std::move(a), std::move(b));
}
ExprPtr gtE(ExprPtr a, ExprPtr b) {
  return binary(Op::kGt, Type::kBool, std::move(a), std::move(b));
}
ExprPtr geE(ExprPtr a, ExprPtr b) {
  return binary(Op::kGe, Type::kBool, std::move(a), std::move(b));
}
ExprPtr eqE(ExprPtr a, ExprPtr b) {
  if (a.get() == b.get()) return cBool(true);
  return binary(Op::kEq, Type::kBool, std::move(a), std::move(b));
}
ExprPtr neE(ExprPtr a, ExprPtr b) {
  if (a.get() == b.get()) return cBool(false);
  return binary(Op::kNe, Type::kBool, std::move(a), std::move(b));
}

ExprPtr andE(ExprPtr a, ExprPtr b) {
  a = castE(std::move(a), Type::kBool);
  b = castE(std::move(b), Type::kBool);
  if (isConstFalse(a) || isConstTrue(b)) return a;
  if (isConstFalse(b) || isConstTrue(a)) return b;
  return binary(Op::kAnd, Type::kBool, std::move(a), std::move(b));
}

ExprPtr orE(ExprPtr a, ExprPtr b) {
  a = castE(std::move(a), Type::kBool);
  b = castE(std::move(b), Type::kBool);
  if (isConstTrue(a) || isConstFalse(b)) return a;
  if (isConstTrue(b) || isConstFalse(a)) return b;
  return binary(Op::kOr, Type::kBool, std::move(a), std::move(b));
}

ExprPtr xorE(ExprPtr a, ExprPtr b) {
  a = castE(std::move(a), Type::kBool);
  b = castE(std::move(b), Type::kBool);
  return binary(Op::kXor, Type::kBool, std::move(a), std::move(b));
}

ExprPtr andAll(const std::vector<ExprPtr>& xs) {
  ExprPtr acc = cBool(true);
  for (const auto& x : xs) acc = andE(acc, x);
  return acc;
}

ExprPtr orAll(const std::vector<ExprPtr>& xs) {
  ExprPtr acc = cBool(false);
  for (const auto& x : xs) acc = orE(acc, x);
  return acc;
}

ExprPtr iteE(ExprPtr cond, ExprPtr thenE, ExprPtr elseE) {
  cond = castE(std::move(cond), Type::kBool);
  if (isConstTrue(cond)) return thenE;
  if (isConstFalse(cond)) return elseE;
  if (thenE.get() == elseE.get()) return thenE;

  assert(thenE->isArray() == elseE->isArray());
  if (thenE->isArray()) {
    assert(thenE->arraySize == elseE->arraySize);
    assert(thenE->type == elseE->type);
    const int size = thenE->arraySize;
    const Type t = thenE->type;
    return makeNode(Op::kIte, t, size,
                    {std::move(cond), std::move(thenE), std::move(elseE)});
  }
  const Type t = thenE->type == elseE->type
                     ? thenE->type
                     : promote(thenE->type == Type::kBool ? Type::kInt
                                                          : thenE->type,
                               elseE->type == Type::kBool ? Type::kInt
                                                          : elseE->type);
  thenE = castE(std::move(thenE), t);
  elseE = castE(std::move(elseE), t);
  // Both branches may have folded to the same constant after the casts.
  if (thenE->op == Op::kConst && elseE->op == Op::kConst &&
      thenE->constVal == elseE->constVal) {
    return thenE;
  }
  return makeNode(Op::kIte, t, 0,
                  {std::move(cond), std::move(thenE), std::move(elseE)});
}

ExprPtr selectE(ExprPtr array, ExprPtr index) {
  assert(array->isArray());
  index = castE(std::move(index), Type::kInt);
  if (array->op == Op::kConstArray && index->op == Op::kConst) {
    const auto i = clampIndex(index->constVal.toInt(), array->arraySize);
    return cScalar(array->constArray[static_cast<std::size_t>(i)]);
  }
  // select(store(a, i, v), j): fold when i and j are both constant.
  if (array->op == Op::kStore && index->op == Op::kConst &&
      array->args[1]->op == Op::kConst) {
    const auto i =
        clampIndex(array->args[1]->constVal.toInt(), array->arraySize);
    const auto j = clampIndex(index->constVal.toInt(), array->arraySize);
    if (i == j) return array->args[2];
    return selectE(array->args[0], std::move(index));
  }
  const Type t = array->type;
  return makeNode(Op::kSelect, t, 0, {std::move(array), std::move(index)});
}

ExprPtr storeE(ExprPtr array, ExprPtr index, ExprPtr value) {
  assert(array->isArray());
  index = castE(std::move(index), Type::kInt);
  value = castE(std::move(value), array->type);
  if (array->op == Op::kConstArray && index->op == Op::kConst &&
      value->op == Op::kConst) {
    auto elems = array->constArray;
    const auto i = clampIndex(index->constVal.toInt(), array->arraySize);
    elems[static_cast<std::size_t>(i)] = value->constVal;
    return cArray(array->type, std::move(elems));
  }
  const Type t = array->type;
  const int size = array->arraySize;
  return makeNode(Op::kStore, t, size,
                  {std::move(array), std::move(index), std::move(value)});
}

}  // namespace stcg::expr
