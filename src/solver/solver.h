// Branch-and-prune box solver over expression constraints.
//
// This plays the role SLDV's internal engine plays in the paper: given a
// boolean constraint over bounded input variables, find a satisfying
// assignment, prove none exists, or give up within a budget.
//
// Algorithm: maintain a worklist of boxes. For each box, (1) contract with
// HC4 — an empty contraction soundly refutes the box; (2) sample candidate
// points (box corners, midpoint, random draws) and certify them by concrete
// evaluation — a certified point is a model; (3) otherwise split the widest
// dimension and recurse. UNSAT is reported only when every box has been
// refuted; running out of time/boxes yields UNKNOWN.
//
// The paper's central observation lives here: after STCG fixes the model
// state as constants, the residual constraints are small and this solver
// disposes of them in microseconds, whereas multi-step unrollings (the
// SLDV-like baseline) produce deep store/select towers it must grind on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "expr/eval.h"
#include "expr/expr.h"
#include "interval/box.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace stcg::solver {

enum class SolveStatus { kSat, kUnsat, kUnknown };

[[nodiscard]] const char* solveStatusName(SolveStatus s);

struct SolveOptions {
  std::int64_t timeBudgetMillis = 100;  // wall-clock budget per query
  int maxBoxes = 4096;                  // worklist expansion cap
  int samplesPerBox = 6;                // random samples per box
  int contractPasses = 3;               // HC4 sweeps per box
  std::uint64_t seed = 1;               // sampling seed
  /// Lane width for the local-search neighborhood scorer (tape engine
  /// only): > 1 scores candidate moves in B-wide batches through the
  /// BatchDistanceTape while committing the exact accept order of the
  /// sequential climber — results are bit-identical for any value.
  /// <= 1 keeps the scalar dirty-cone path. Ignored by the box solver.
  int batch = 1;
};

struct SolveStats {
  int boxesProcessed = 0;
  int boxesRefuted = 0;
  int samplesTried = 0;
  std::int64_t elapsedMillis = 0;
};

struct SolveResult {
  SolveStatus status = SolveStatus::kUnknown;
  expr::Env model;  // populated when status == kSat, covers all variables
  SolveStats stats;

  [[nodiscard]] bool sat() const { return status == SolveStatus::kSat; }
};

class BoxSolver {
 public:
  explicit BoxSolver(SolveOptions options = {}) : options_(options) {}

  /// Find an assignment over `vars` making `goal` true. `goal` must be
  /// boolean-typed. Variables of `vars` not occurring in `goal` receive
  /// their domain midpoint in the model.
  [[nodiscard]] SolveResult solve(const expr::ExprPtr& goal,
                                  const std::vector<expr::VarInfo>& vars);

  [[nodiscard]] const SolveOptions& options() const { return options_; }

 private:
  /// Draw a concrete point from `box` into `env` (all dimensions).
  void samplePoint(const interval::Box& box, Rng& rng, bool corners,
                   int cornerKind, expr::Env& env) const;

  /// True if `goal` evaluates to true at `env`.
  [[nodiscard]] static bool certify(const expr::ExprPtr& goal,
                                    const expr::Env& env);

  SolveOptions options_;
};

/// Convert a solver scalar draw (stored as real) to the variable's type.
[[nodiscard]] expr::Scalar scalarForVar(const expr::VarInfo& info, double v);

/// Integer endpoints of the real interval [lo, hi], saturated to a range
/// that casts exactly to int64 — casting an unbounded (±inf) endpoint
/// directly is UB and yields garbage bounds. first > second means the
/// interval contains no integer (e.g. a sub-unit real interval).
[[nodiscard]] std::pair<std::int64_t, std::int64_t> integerEndpoints(
    double lo, double hi);

}  // namespace stcg::solver
