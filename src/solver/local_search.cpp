#include "solver/local_search.h"

#include <algorithm>
#include <cmath>

#include <optional>

#include "expr/eval.h"
#include "solver/distance_tape.h"
#include "util/stopwatch.h"

namespace stcg::solver {

using expr::Env;
using expr::Expr;
using expr::ExprPtr;
using expr::Op;
using expr::Scalar;
using expr::Type;
using expr::VarInfo;

namespace {

constexpr double kEps = 1e-6;

double distanceRec(const ExprPtr& e, expr::Evaluator& ev, bool want);

double atomDistance(const ExprPtr& e, expr::Evaluator& ev, bool want) {
  const auto lhs = [&] { return ev.evalScalar(e->args[0]).toReal(); };
  const auto rhs = [&] { return ev.evalScalar(e->args[1]).toReal(); };
  switch (e->op) {
    case Op::kEq: {
      const double d = std::fabs(lhs() - rhs());
      return want ? d : (d == 0.0 ? 1.0 : 0.0);
    }
    case Op::kNe: {
      const double d = std::fabs(lhs() - rhs());
      return want ? (d == 0.0 ? 1.0 : 0.0) : d;
    }
    case Op::kLt: {
      const double d = lhs() - rhs();
      return want ? (d < 0.0 ? 0.0 : d + kEps)
                  : (d >= 0.0 ? 0.0 : kEps - d);
    }
    case Op::kLe: {
      const double d = lhs() - rhs();
      return want ? (d <= 0.0 ? 0.0 : d) : (d > 0.0 ? 0.0 : kEps - d);
    }
    case Op::kGt: {
      const double d = rhs() - lhs();
      return want ? (d < 0.0 ? 0.0 : d + kEps)
                  : (d >= 0.0 ? 0.0 : kEps - d);
    }
    case Op::kGe: {
      const double d = rhs() - lhs();
      return want ? (d <= 0.0 ? 0.0 : d) : (d > 0.0 ? 0.0 : kEps - d);
    }
    default: {
      // Boolean leaf (variable, cast, select of booleans, ...): use its
      // concrete truth value; distance 0/1.
      return ev.evalScalar(e).toBool() == want ? 0.0 : 1.0;
    }
  }
}

double distanceRec(const ExprPtr& e, expr::Evaluator& ev, bool want) {
  switch (e->op) {
    case Op::kConst:
      return e->constVal.toBool() == want ? 0.0 : 1.0;
    case Op::kNot:
      return distanceRec(e->args[0], ev, !want);
    case Op::kAnd: {
      const double a = distanceRec(e->args[0], ev, want);
      const double b = distanceRec(e->args[1], ev, want);
      return want ? a + b : std::min(a, b);
    }
    case Op::kOr: {
      const double a = distanceRec(e->args[0], ev, want);
      const double b = distanceRec(e->args[1], ev, want);
      return want ? std::min(a, b) : a + b;
    }
    case Op::kXor: {
      // xor(a,b) == (a && !b) || (!a && b); negation flips to equivalence.
      const double aT = distanceRec(e->args[0], ev, true);
      const double aF = distanceRec(e->args[0], ev, false);
      const double bT = distanceRec(e->args[1], ev, true);
      const double bF = distanceRec(e->args[1], ev, false);
      return want ? std::min(aT + bF, aF + bT) : std::min(aT + bT, aF + bF);
    }
    case Op::kIte: {
      if (e->type != Type::kBool) break;
      const double cT = distanceRec(e->args[0], ev, true);
      const double cF = distanceRec(e->args[0], ev, false);
      const double t = distanceRec(e->args[1], ev, want);
      const double f = distanceRec(e->args[2], ev, want);
      return std::min(cT + t, cF + f);
    }
    default:
      break;
  }
  return atomDistance(e, ev, want);
}

}  // namespace

double branchDistance(const ExprPtr& goal, const Env& env, bool want) {
  expr::Evaluator ev(env);
  return distanceRec(goal, ev, want);
}

const char* solverKindName(SolverKind k) {
  switch (k) {
    case SolverKind::kBox: return "box";
    case SolverKind::kLocalSearch: return "local-search";
    case SolverKind::kPortfolio: return "portfolio";
  }
  return "?";
}

SolveResult LocalSearchSolver::solve(const ExprPtr& goal,
                                     const std::vector<VarInfo>& vars) {
  if (goal->type != Type::kBool || goal->isArray()) {
    throw expr::EvalError(
        "LocalSearchSolver::solve: goal must be a scalar boolean expression");
  }
  if (options_.batch < 0 || options_.batch > 4096) {
    throw expr::EvalError("LocalSearchSolver::solve: batch must be in "
                          "[0, 4096], got " +
                          std::to_string(options_.batch));
  }
  SolveResult result;
  Stopwatch watch;
  const Deadline deadline = Deadline::afterMillis(options_.timeBudgetMillis);
  Rng rng(options_.seed);

  const auto finish = [&](SolveStatus status) {
    result.status = status;
    result.stats.elapsedMillis = watch.elapsedMillis();
    return result;
  };

  if (goal->op == Op::kConst && !goal->constVal.toBool()) {
    return finish(SolveStatus::kUnsat);  // the one provable case
  }

  // Current point, stored as raw reals per variable.
  std::vector<double> point(vars.size());
  const auto randomize = [&] {
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (vars[i].type == Type::kReal) {
        point[i] = rng.uniformReal(vars[i].lo, vars[i].hi);
      } else {
        const auto [lo, hi] = integerEndpoints(vars[i].lo, vars[i].hi);
        // lo > hi: no integer in the domain; start from the midpoint and
        // let the distance landscape (or the UNKNOWN verdict) handle it.
        point[i] = lo <= hi ? static_cast<double>(rng.uniformInt(lo, hi))
                            : (vars[i].lo + vars[i].hi) * 0.5;
      }
    }
  };
  expr::VarId maxVarId = -1;
  for (const auto& v : vars) maxVarId = std::max(maxVarId, v.id);
  const auto toEnv = [&](const std::vector<double>& p) {
    Env env;
    env.reserve(static_cast<std::size_t>(maxVarId + 1));
    for (std::size_t i = 0; i < vars.size(); ++i) {
      env.set(vars[i].id, scalarForVar(vars[i], p[i]));
    }
    return env;
  };
  // Tape engine: goal compiled once; full rebinds at (re)starts, dirty-cone
  // updates for the single-variable pattern moves below. Cost values are
  // bit-identical to branchDistance, so both engines walk the same points.
  // With options_.batch > 1 the neighborhood is scored through a B-lane
  // BatchDistanceTape instead: full-point evaluations in lockstep, scanned
  // in the exact candidate order of the sequential climber, so the accept
  // decisions (and therefore the whole search path) stay bit-identical.
  std::optional<DistanceTape> dt;
  std::optional<BatchDistanceTape> bdt;
  if (engine_ == Engine::kJit) {
    // Native scalar scorer (DistanceTape falls back to the interpreter
    // internally when no toolchain is available). The batch path stays a
    // kTape concern; batched and scalar scoring are bit-identical anyway.
    dt.emplace(goal, vars, /*useJit=*/true);
  } else if (engine_ == Engine::kTape) {
    if (options_.batch > 1 && !vars.empty()) {
      bdt.emplace(goal, vars, options_.batch);
    } else {
      dt.emplace(goal, vars);
    }
  }
  const auto cost = [&](const std::vector<double>& p) {
    ++result.stats.samplesTried;
    if (bdt) {
      // All lanes get the point: lane 0 carries the answer, the rest keep
      // every (binding, lane) pair bound for later partial setPoint calls.
      for (int l = 0; l < bdt->lanes(); ++l) bdt->setPoint(l, p);
      bdt->run();
      return bdt->distance(0);
    }
    return dt ? dt->rebind(p) : branchDistance(goal, toEnv(p), true);
  };

  // Batched-scan work lists, hoisted out of the improvement loop.
  struct Candidate {
    std::size_t var;
    double val;
  };
  std::vector<Candidate> candidates;
  std::vector<double> scratch;

  randomize();
  double best = cost(point);

  while (!deadline.expired()) {
    if (best == 0.0) {
      result.model = toEnv(point);
      // Certify (distance and truth must agree, but belt-and-braces).
      if (expr::evaluate(goal, result.model).toBool()) {
        return finish(SolveStatus::kSat);
      }
      best = 1.0;  // fall through to keep searching
    }
    bool improved = false;
    if (bdt) {
      // Batched neighborhood: every pattern move depends only on the
      // fixed current point, so the full candidate list is known up
      // front, in exactly the order the sequential loops below visit it.
      candidates.clear();
      for (std::size_t i = 0; i < vars.size(); ++i) {
        const double width = vars[i].hi - vars[i].lo;
        for (double frac : {0.5, 0.1, 0.01, 0.001}) {
          double step = std::max(width * frac,
                                 vars[i].type == Type::kReal ? 1e-9 : 1.0);
          for (const double dir : {+1.0, -1.0}) {
            double v = std::clamp(point[i] + dir * step, vars[i].lo,
                                  vars[i].hi);
            if (vars[i].type != Type::kReal) v = std::round(v);
            candidates.push_back({i, v});
          }
        }
      }
      const auto B = static_cast<std::size_t>(bdt->lanes());
      std::size_t ci = 0;
      while (ci < candidates.size() && !improved && !deadline.expired()) {
        const std::size_t n = std::min(B, candidates.size() - ci);
        for (std::size_t l = 0; l < n; ++l) {
          scratch = point;
          scratch[candidates[ci + l].var] = candidates[ci + l].val;
          bdt->setPoint(static_cast<int>(l), scratch);
        }
        // Lanes past n keep their previous full-point bindings. The scan
        // below only consumes distances through `c < best`, which is
        // exactly the contract runBounded's early-exit masks preserve:
        // masked lanes report +inf and fail the test the same way their
        // true (>= best) distance would, so the accept order — and the
        // whole search path — matches bdt->run().
        bdt->runBounded(best);
        // Scan in candidate order and accept the first improvement —
        // the same decision the one-at-a-time climber makes. Trailing
        // lanes of an accepting chunk were evaluated speculatively and
        // are not counted, so samplesTried matches the sequential count.
        for (std::size_t l = 0; l < n; ++l) {
          ++result.stats.samplesTried;
          const double c = bdt->distance(static_cast<int>(l));
          if (c < best) {
            best = c;
            point[candidates[ci + l].var] = candidates[ci + l].val;
            improved = true;
            break;
          }
        }
        ci += n;
      }
    } else {
      for (std::size_t i = 0; i < vars.size() && !deadline.expired(); ++i) {
        const double width = vars[i].hi - vars[i].lo;
        // Pattern moves with geometrically shrinking steps.
        for (double frac : {0.5, 0.1, 0.01, 0.001}) {
          double step = std::max(width * frac,
                                 vars[i].type == Type::kReal ? 1e-9 : 1.0);
          for (const double dir : {+1.0, -1.0}) {
            auto candidate = point;
            candidate[i] = std::clamp(candidate[i] + dir * step, vars[i].lo,
                                      vars[i].hi);
            if (vars[i].type != Type::kReal) {
              candidate[i] = std::round(candidate[i]);
            }
            double c;
            if (dt) {
              // Single-coordinate move: dirty-cone re-evaluation only.
              ++result.stats.samplesTried;
              c = dt->update(i, candidate[i]);
            } else {
              c = cost(candidate);
            }
            if (c < best) {
              best = c;
              point = std::move(candidate);
              improved = true;
              break;
            }
            // Rejected: restore the tape to the current point (the revert
            // replays the same cone; it is not a scored sample).
            if (dt) (void)dt->update(i, point[i]);
          }
          if (improved) break;
        }
        if (improved) break;
      }
    }
    if (!improved) {
      // Stagnation: random restart.
      randomize();
      best = cost(point);
    }
  }
  return finish(SolveStatus::kUnknown);
}

SolveResult solveWith(SolverKind kind, const ExprPtr& goal,
                      const std::vector<VarInfo>& vars,
                      const SolveOptions& options) {
  switch (kind) {
    case SolverKind::kBox: {
      BoxSolver s(options);
      return s.solve(goal, vars);
    }
    case SolverKind::kLocalSearch: {
      LocalSearchSolver s(options);
      return s.solve(goal, vars);
    }
    case SolverKind::kPortfolio: {
      // Box first (fast SAT/UNSAT on the common cases), then spend the
      // same budget again on search if the box engine gave up.
      SolveOptions half = options;
      half.timeBudgetMillis = std::max<std::int64_t>(
          1, options.timeBudgetMillis / 2);
      BoxSolver box(half);
      auto res = box.solve(goal, vars);
      if (res.status != SolveStatus::kUnknown) return res;
      SolveOptions rest = options;
      rest.timeBudgetMillis = half.timeBudgetMillis;
      LocalSearchSolver search(rest);
      auto res2 = search.solve(goal, vars);
      res2.stats.boxesProcessed += res.stats.boxesProcessed;
      res2.stats.samplesTried += res.stats.samplesTried;
      return res2;
    }
  }
  BoxSolver s(options);
  return s.solve(goal, vars);
}

}  // namespace stcg::solver
