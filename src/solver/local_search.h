// Search-based solver: hill climbing on the classic branch-distance
// objective (Korel / Tracey), the staple of search-based software testing.
//
// This is the "more constraint solvers" direction of the paper's future
// work. It complements the box solver: it cannot prove UNSAT, but it
// excels at nonlinear numeric goals where interval contraction is weak
// (products, sums of squares) because the distance function gives the
// search a gradient toward satisfaction.
//
// Cost of a boolean expression under an assignment (want = true):
//   a == b   -> |a - b|
//   a != b   -> 0 if a != b else 1
//   a <  b   -> 0 if a < b else (a - b) + eps
//   a && b   -> cost(a) + cost(b)
//   a || b   -> min(cost(a), cost(b))
//   !a       -> cost of a with flipped polarity
//   ite(c,t,e) (bool) -> cost((c && t) || (!c && e))
// Zero cost certifies satisfaction (verified by concrete evaluation).
#pragma once

#include "solver/solver.h"

namespace stcg::solver {

class LocalSearchSolver {
 public:
  /// Cost engine. kTape (default) scores candidates through an
  /// incremental DistanceTape (dirty-cone re-evaluation per mutated
  /// variable); kTree walks branchDistance's recursion each time and is
  /// kept as the oracle. kJit runs the DistanceTape's value tape +
  /// overlay as native code (expr::TapeJit), degrading to kTape when no
  /// toolchain is available. All engines produce bit-identical cost
  /// sequences, so the search visits the same points and returns the
  /// same result.
  enum class Engine { kTape, kTree, kJit };

  explicit LocalSearchSolver(SolveOptions options = {},
                             Engine engine = Engine::kTape)
      : options_(options), engine_(engine) {}

  /// Find an assignment making `goal` true, or report UNKNOWN — local
  /// search can never prove UNSAT.
  [[nodiscard]] SolveResult solve(const expr::ExprPtr& goal,
                                  const std::vector<expr::VarInfo>& vars);

 private:
  SolveOptions options_;
  Engine engine_ = Engine::kTape;
};

/// Branch distance of `goal` (toward `want`) under `env`; 0 iff satisfied.
[[nodiscard]] double branchDistance(const expr::ExprPtr& goal,
                                    const expr::Env& env, bool want);

/// Which engine a query runs on.
enum class SolverKind {
  kBox,          // interval branch-and-prune (can prove UNSAT)
  kLocalSearch,  // branch-distance hill climbing (SAT-only)
  kPortfolio,    // box first, then local search on UNKNOWN
};

[[nodiscard]] const char* solverKindName(SolverKind k);

/// Dispatch a query to the chosen engine.
[[nodiscard]] SolveResult solveWith(SolverKind kind,
                                    const expr::ExprPtr& goal,
                                    const std::vector<expr::VarInfo>& vars,
                                    const SolveOptions& options);

}  // namespace stcg::solver
