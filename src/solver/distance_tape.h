// Incremental branch-distance evaluation for the local-search solver.
//
// The hill climber scores thousands of candidate points per query, and
// each score is a full branchDistance() tree walk: value evaluation of
// every atom plus the Korel/Tracey distance recursion. A DistanceTape
// compiles the goal once into
//   (1) a value tape (expr::Tape) over the goal's whole DAG, and
//   (2) a distance overlay: a linear program of sum/min/compare/truth
//       instructions over double slots, one per distinct (node, want)
//       pair of the distance recursion,
// so scoring a point is two linear sweeps. Because the climber mutates
// one variable at a time, update() rebinds that variable and re-executes
// only its dirty cone on the value tape before re-running the (small)
// overlay — the incremental mode that makes tape-backed search fast.
//
// Bit-identity: the overlay applies the same double operations in the
// same order as distanceRec/atomDistance (same kEps, same operand order
// for + and std::min), and value slots are bit-identical to the tree
// Evaluator, so every cost returned equals branchDistance() exactly.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "expr/expr.h"
#include "expr/tape.h"

namespace stcg::solver {

class DistanceTape {
 public:
  /// Compile `goal` (scalar boolean) for the variable list the search
  /// mutates. Throws expr::EvalError on a non-boolean goal.
  DistanceTape(const expr::ExprPtr& goal,
               const std::vector<expr::VarInfo>& vars);

  /// Bind every variable to `point` (raw reals, scalarForVar coercion)
  /// and return the full-evaluation distance.
  double rebind(const std::vector<double>& point);

  /// Mutate variable `varIdx` (index into the constructor's list) to
  /// `value` and return the re-evaluated distance, re-executing only the
  /// variable's dirty cone on the value tape. Requires a prior rebind().
  double update(std::size_t varIdx, double value);

  /// Diagnostics for bench reporting.
  [[nodiscard]] std::size_t valueInstrCount() const;
  [[nodiscard]] std::size_t overlayInstrCount() const { return code_.size(); }
  [[nodiscard]] std::size_t maxConeSize() const;

 private:
  struct DistInstr {
    enum class Kind { kSum, kMin, kCmp, kTruth };
    Kind kind = Kind::kSum;
    std::int32_t dst = -1;
    std::int32_t a = -1, b = -1;    // distance-slot operands (kSum/kMin)
    std::int32_t va = -1, vb = -1;  // value-tape scalar slots (kCmp/kTruth)
    expr::Op cmpOp = expr::Op::kEq; // kCmp
    bool want = true;               // kCmp/kTruth
  };

  std::int32_t build(const expr::Expr* e, bool want, expr::TapeBuilder& b);
  std::int32_t newSlot(double init);
  double runOverlay();

  std::vector<expr::VarInfo> vars_;
  std::optional<expr::TapeExecutor> exec_;
  std::vector<DistInstr> code_;
  std::vector<double> dist_;       // distance slots (constants pre-set)
  std::int32_t root_ = -1;
  // Build-time distance memo: node -> slot per want polarity (-1 = none).
  std::unordered_map<const expr::Expr*, std::array<std::int32_t, 2>> memo_;
};

}  // namespace stcg::solver
