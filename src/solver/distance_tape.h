// Incremental branch-distance evaluation for the local-search solver.
//
// The hill climber scores thousands of candidate points per query, and
// each score is a full branchDistance() tree walk: value evaluation of
// every atom plus the Korel/Tracey distance recursion. A DistanceTape
// compiles the goal once into
//   (1) a value tape (expr::Tape) over the goal's whole DAG, and
//   (2) a distance overlay: a linear program of sum/min/compare/truth
//       instructions over double slots, one per distinct (node, want)
//       pair of the distance recursion,
// so scoring a point is two linear sweeps. Because the climber mutates
// one variable at a time, update() rebinds that variable and re-executes
// only its dirty cone on the value tape before re-running the (small)
// overlay — the incremental mode that makes tape-backed search fast.
//
// The overlay program (DistanceProgram) is shared with BatchDistanceTape,
// which runs the same value tape across B lanes (expr::BatchTapeExecutor)
// and replays the identical overlay per lane — one batched pass scores a
// whole neighborhood of candidate points (DESIGN.md §5f).
//
// Bit-identity: the overlay applies the same double operations in the
// same order as distanceRec/atomDistance (same kEps, same operand order
// for + and std::min), and value slots are bit-identical to the tree
// Evaluator, so every cost returned equals branchDistance() exactly —
// from either class.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "expr/batch_tape.h"
#include "expr/expr.h"
#include "expr/jit.h"
#include "expr/tape.h"
#include "expr/tape_passes.h"

namespace stcg::solver {

/// The compiled distance overlay: a linear program over double slots,
/// evaluated after the value tape. Built once, shared by the scalar and
/// batched executors.
struct DistanceProgram {
  struct Instr {
    enum class Kind { kSum, kMin, kCmp, kTruth };
    Kind kind = Kind::kSum;
    std::int32_t dst = -1;
    std::int32_t a = -1, b = -1;    // distance-slot operands (kSum/kMin)
    std::int32_t va = -1, vb = -1;  // value-tape scalar slots (kCmp/kTruth)
    expr::Op cmpOp = expr::Op::kEq; // kCmp
    bool want = true;               // kCmp/kTruth
  };
  std::vector<Instr> code;
  std::vector<double> init;  // per-slot initial value (constants pre-set)
  std::int32_t root = -1;

  [[nodiscard]] std::size_t slotCount() const { return init.size(); }
};

/// Emit `goal`'s value DAG onto `b` and compile its distance overlay.
/// Throws expr::EvalError on a non-boolean / array goal.
[[nodiscard]] DistanceProgram buildDistanceProgram(const expr::ExprPtr& goal,
                                                   expr::TapeBuilder& b);

class DistanceTape {
 public:
  /// Compile `goal` (scalar boolean) for the variable list the search
  /// mutates. Throws expr::EvalError on a non-boolean goal. With
  /// `useJit`, additionally compile value tape + overlay (plus per-var
  /// native cone functions) into one native module via expr::TapeJit;
  /// when the toolchain is unavailable the instance silently runs on the
  /// interpreter instead (usingJit() reports which happened) — the
  /// distances are bit-identical either way.
  DistanceTape(const expr::ExprPtr& goal,
               const std::vector<expr::VarInfo>& vars, bool useJit = false);

  /// True when rebind/update run the native module.
  [[nodiscard]] bool usingJit() const { return jexec_.has_value(); }

  /// Bind every variable to `point` (raw reals, scalarForVar coercion)
  /// and return the full-evaluation distance.
  double rebind(const std::vector<double>& point);

  /// Mutate variable `varIdx` (index into the constructor's list) to
  /// `value` and return the re-evaluated distance, re-executing only the
  /// variable's dirty cone on the value tape. Requires a prior rebind().
  double update(std::size_t varIdx, double value);

  /// Diagnostics for bench reporting.
  [[nodiscard]] std::size_t valueInstrCount() const;
  [[nodiscard]] std::size_t overlayInstrCount() const {
    return prog_.code.size();
  }
  [[nodiscard]] std::size_t maxConeSize() const;
  /// Pass-pipeline shrink of the value tape (before == after when
  /// STCG_TAPE_OPT=0 disabled optimization).
  [[nodiscard]] const expr::TapePassStats& passStats() const {
    return passStats_;
  }

 private:
  double runOverlay();

  std::vector<expr::VarInfo> vars_;
  std::optional<expr::TapeExecutor> exec_;
  std::optional<expr::JitTapeExecutor> jexec_;  // engaged iff JIT active
  DistanceProgram prog_;
  expr::TapePassStats passStats_;
  std::vector<double> dist_;  // distance slots (constants pre-set)
};

/// B-lane distance evaluation: the same value tape and overlay program as
/// DistanceTape, executed across `lanes` candidate points per run() call.
/// distance(lane) is bit-identical to DistanceTape::rebind of that lane's
/// point — the batched neighborhood scorer of the local-search solver.
class BatchDistanceTape {
 public:
  /// Cumulative lane-instruction accounting for the overlay executor:
  /// one "lane instruction" is one overlay instruction evaluated for one
  /// lane. runBounded() skips lane instructions once a lane is provably
  /// worse than the bound (and whole instructions once every lane is);
  /// the retired/skipped split makes the early-exit rate visible in
  /// bench output without touching the candidates/sec methodology.
  struct OverlayStats {
    std::uint64_t laneInstrsRetired = 0;
    std::uint64_t laneInstrsSkipped = 0;
    std::uint64_t boundedRuns = 0;
    std::uint64_t fullRuns = 0;
  };

  BatchDistanceTape(const expr::ExprPtr& goal,
                    const std::vector<expr::VarInfo>& vars, int lanes);

  [[nodiscard]] int lanes() const { return exec_->lanes(); }

  /// Bind every search variable of `lane` to `point` (same scalarForVar
  /// coercion as DistanceTape::rebind, via the executor's typed binds).
  void setPoint(int lane, const std::vector<double>& point);

  /// Evaluate all lanes: one batched value-tape pass, then the overlay
  /// program with the instruction loop outside and the lane loop inside —
  /// kSum/kMin run the dSum/dMin lane kernels over the lane-major
  /// distance rows and kCmp/kTruth read the value tape lane-wide into the
  /// dCmp/dTruth kernels (expr/simd.h), so the overlay's dispatch cost
  /// amortizes across lanes exactly like the value tape's. Each lane's
  /// arithmetic is overlayStep's, operand for operand, at every SIMD
  /// level.
  void run();

  /// run() with per-lane early-exit masks: while sweeping the overlay, a
  /// lane whose value at any monotone lower-bound slot (the root plus,
  /// transitively, the operands of kSum instructions feeding it — every
  /// distance is >= 0, so a partial sum can only grow) fails
  /// `value < bound` can never come in under `bound`; it is masked off
  /// and its distance(lane) reports +infinity. Once every lane is masked
  /// the remaining overlay instructions are skipped outright. Callers
  /// that only consume distances through `d < bound` comparisons (the
  /// climber's accept test with `bound` = incumbent cost) observe
  /// behavior identical to run() — masked lanes fail that test either
  /// way, so accept order and final suites cannot change.
  void runBounded(double bound);

  [[nodiscard]] double distance(int lane) const {
    return dist_[static_cast<std::size_t>(prog_.root) *
                     static_cast<std::size_t>(exec_->lanes()) +
                 static_cast<std::size_t>(lane)];
  }

  [[nodiscard]] const OverlayStats& overlayStats() const { return stats_; }

 private:
  /// One overlay instruction, full row width, through the lane kernels.
  void overlayInstr(const DistanceProgram::Instr& in);

  std::vector<expr::VarInfo> vars_;
  DistanceProgram prog_;
  std::optional<expr::BatchTapeExecutor> exec_;
  const expr::LaneKernels* kern_ = nullptr;  // same level as exec_
  util::AlignedVec<double> dist_;  // [slot * lanes + lane]
  util::AlignedVec<double> va_, vb_;      // lane-wide kCmp operand scratch
  util::AlignedVec<std::uint64_t> truth_; // lane-wide kTruth scratch
  std::vector<std::uint8_t> lowerSlot_;  // 1 = monotone lower bound of root
  std::vector<std::uint8_t> active_;     // runBounded lane mask scratch
  OverlayStats stats_;
};

}  // namespace stcg::solver
