#include "solver/distance_tape.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "expr/eval.h"
#include "expr/simd_ops.h"
#include "expr/tape_verify.h"
#include "solver/solver.h"

namespace stcg::solver {

using expr::Expr;
using expr::ExprPtr;
using expr::Op;
using expr::Type;

namespace {

constexpr double kEps = 1e-6;  // same as branchDistance's atom epsilon

/// Recursive overlay compiler; one instance per buildDistanceProgram call.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(expr::TapeBuilder& b) : b_(b) {}

  [[nodiscard]] DistanceProgram take(const ExprPtr& goal) {
    (void)b_.addRoot(goal);
    prog_.root = build(goal.get(), true);
    return std::move(prog_);
  }

 private:
  std::int32_t newSlot(double init) {
    prog_.init.push_back(init);
    return static_cast<std::int32_t>(prog_.init.size() - 1);
  }

  std::int32_t build(const Expr* e, bool want) {
    using Instr = DistanceProgram::Instr;
    // Memoizing on (node, want) is sound because the distance of a node
    // is a pure function of the point — distanceRec just recomputes
    // shared subterms; the values are identical. Look up / store by
    // value: the recursive calls below insert into memo_, which may
    // rehash.
    if (const auto it = memo_.find(e); it != memo_.end()) {
      const std::int32_t cached = it->second[want ? 1 : 0];
      if (cached >= 0) return cached;
    }
    const auto emit = [&](Instr in) {
      in.dst = newSlot(0.0);
      prog_.code.push_back(in);
      return in.dst;
    };
    const auto minOfSums = [&](std::int32_t a1, std::int32_t b1,
                               std::int32_t a2, std::int32_t b2) {
      Instr s1;
      s1.kind = Instr::Kind::kSum;
      s1.a = a1;
      s1.b = b1;
      const std::int32_t lhs = emit(s1);
      Instr s2;
      s2.kind = Instr::Kind::kSum;
      s2.a = a2;
      s2.b = b2;
      const std::int32_t rhs = emit(s2);
      Instr m;
      m.kind = Instr::Kind::kMin;
      m.a = lhs;
      m.b = rhs;
      return emit(m);
    };

    std::int32_t slot = -1;
    switch (e->op) {
      case Op::kConst:
        slot = newSlot(e->constVal.toBool() == want ? 0.0 : 1.0);
        break;
      case Op::kNot:
        slot = build(e->args[0].get(), !want);
        break;
      case Op::kAnd:
      case Op::kOr: {
        const std::int32_t a = build(e->args[0].get(), want);
        const std::int32_t bb = build(e->args[1].get(), want);
        // kAnd want / kOr !want -> sum; the dual -> min.
        Instr in;
        in.kind = ((e->op == Op::kAnd) == want) ? Instr::Kind::kSum
                                                : Instr::Kind::kMin;
        in.a = a;
        in.b = bb;
        slot = emit(in);
        break;
      }
      case Op::kXor: {
        const std::int32_t aT = build(e->args[0].get(), true);
        const std::int32_t aF = build(e->args[0].get(), false);
        const std::int32_t bT = build(e->args[1].get(), true);
        const std::int32_t bF = build(e->args[1].get(), false);
        // want: min(aT + bF, aF + bT); else: min(aT + bT, aF + bF).
        slot = want ? minOfSums(aT, bF, aF, bT) : minOfSums(aT, bT, aF, bF);
        break;
      }
      case Op::kIte: {
        if (e->type != Type::kBool) break;  // non-bool ite: concrete atom
        const std::int32_t cT = build(e->args[0].get(), true);
        const std::int32_t cF = build(e->args[0].get(), false);
        const std::int32_t t = build(e->args[1].get(), want);
        const std::int32_t f = build(e->args[2].get(), want);
        slot = minOfSums(cT, t, cF, f);
        break;
      }
      default:
        break;
    }
    if (slot < 0) {
      // Atom: a comparison gets the Korel/Tracey distance off its operand
      // values; anything else scores its concrete truth 0/1.
      switch (e->op) {
        case Op::kEq:
        case Op::kNe:
        case Op::kLt:
        case Op::kLe:
        case Op::kGt:
        case Op::kGe: {
          Instr in;
          in.kind = Instr::Kind::kCmp;
          in.cmpOp = e->op;
          in.want = want;
          in.va = b_.slotOf(e->args[0].get()).slot;
          in.vb = b_.slotOf(e->args[1].get()).slot;
          slot = emit(in);
          break;
        }
        default: {
          Instr in;
          in.kind = Instr::Kind::kTruth;
          in.want = want;
          in.va = b_.slotOf(e).slot;
          slot = emit(in);
          break;
        }
      }
    }
    memo_.try_emplace(e, std::array<std::int32_t, 2>{-1, -1})
        .first->second[want ? 1 : 0] = slot;
    return slot;
  }

  expr::TapeBuilder& b_;
  DistanceProgram prog_;
  // Build-time distance memo: node -> slot per want polarity (-1 = none).
  std::unordered_map<const Expr*, std::array<std::int32_t, 2>> memo_;
};

/// One overlay instruction over one lane's view. `dist` is a callable
/// slot -> value view (contiguous for the scalar tape, lane-strided for
/// the batch); `toRealOf` / `toBoolOf` abstract the executor value reads.
/// The double expressions are atomDistance's, operand for operand.
template <typename DistView, typename RealOf, typename BoolOf>
double overlayStep(const DistanceProgram::Instr& in, const DistView& dist,
                   const RealOf& toRealOf, const BoolOf& toBoolOf) {
  using Instr = DistanceProgram::Instr;
  switch (in.kind) {
    case Instr::Kind::kSum:
      return dist(in.a) + dist(in.b);
    case Instr::Kind::kMin:
      return std::min(dist(in.a), dist(in.b));
    case Instr::Kind::kCmp: {
      const double l = toRealOf(in.va);
      const double r = toRealOf(in.vb);
      switch (in.cmpOp) {
        case Op::kEq: {
          const double d = std::fabs(l - r);
          return in.want ? d : (d == 0.0 ? 1.0 : 0.0);
        }
        case Op::kNe: {
          const double d = std::fabs(l - r);
          return in.want ? (d == 0.0 ? 1.0 : 0.0) : d;
        }
        case Op::kLt: {
          const double d = l - r;
          return in.want ? (d < 0.0 ? 0.0 : d + kEps)
                         : (d >= 0.0 ? 0.0 : kEps - d);
        }
        case Op::kLe: {
          const double d = l - r;
          return in.want ? (d <= 0.0 ? 0.0 : d)
                         : (d > 0.0 ? 0.0 : kEps - d);
        }
        case Op::kGt: {
          const double d = r - l;
          return in.want ? (d < 0.0 ? 0.0 : d + kEps)
                         : (d >= 0.0 ? 0.0 : kEps - d);
        }
        default: {  // kGe
          const double d = r - l;
          return in.want ? (d <= 0.0 ? 0.0 : d)
                         : (d > 0.0 ? 0.0 : kEps - d);
        }
      }
    }
    case Instr::Kind::kTruth:
      return toBoolOf(in.va) == in.want ? 0.0 : 1.0;
  }
  return 0.0;
}

/// Build the value tape + overlay for `goal`, run the (concrete-mode)
/// pass pipeline on the value tape, and remap the overlay's interior
/// value reads. The overlay's va/vb slots are out-of-tape reads, so they
/// ride through optimizeTape as extraLive slots — kept live by DCE and
/// never freed by the slot allocator.
struct BuiltDistance {
  DistanceProgram prog;
  std::shared_ptr<const expr::Tape> tape;
  expr::TapePassStats stats;
};

BuiltDistance buildOptimizedDistance(const ExprPtr& goal) {
  expr::TapeBuilder b;
  BuiltDistance out;
  out.prog = buildDistanceProgram(goal, b);
  std::shared_ptr<const expr::Tape> raw = b.finish();
  expr::maybeRequireVerifiedTape(*raw, "DistanceTape(raw)");
  if (!expr::tapeOptEnabled()) {
    out.tape = std::move(raw);
    out.stats.instrsBefore = out.stats.instrsAfter = out.tape->code().size();
    out.stats.scalarSlotsBefore = out.stats.scalarSlotsAfter =
        out.tape->scalarSlotCount();
    out.stats.arraySlotsBefore = out.stats.arraySlotsAfter =
        out.tape->arraySlotCount();
    return out;
  }
  std::vector<expr::SlotRef> extra;
  for (const DistanceProgram::Instr& in : out.prog.code) {
    if (in.va >= 0) extra.push_back({in.va, false});
    if (in.vb >= 0) extra.push_back({in.vb, false});
  }
  expr::OptimizedTape opt = expr::optimizeTape(raw, extra);
  expr::maybeRequireVerifiedTape(*opt.tape, "DistanceTape(optimized)");
  for (DistanceProgram::Instr& in : out.prog.code) {
    if (in.va >= 0) in.va = opt.remap({in.va, false}).slot;
    if (in.vb >= 0) in.vb = opt.remap({in.vb, false}).slot;
  }
  out.tape = std::move(opt.tape);
  out.stats = opt.stats;
  return out;
}

}  // namespace

DistanceProgram buildDistanceProgram(const ExprPtr& goal,
                                     expr::TapeBuilder& b) {
  if (goal->type != Type::kBool || goal->isArray()) {
    throw expr::EvalError(
        "DistanceTape: goal must be a scalar boolean expression");
  }
  return ProgramBuilder(b).take(goal);
}

namespace {

/// DistanceProgram -> the expr-layer overlay mirror the JIT emitter
/// compiles (field-for-field; the kinds and operand meanings coincide).
expr::JitOverlay toJitOverlay(const DistanceProgram& prog) {
  expr::JitOverlay ov;
  ov.init = prog.init;
  ov.root = prog.root;
  ov.code.reserve(prog.code.size());
  for (const DistanceProgram::Instr& in : prog.code) {
    expr::JitOverlayInstr j;
    switch (in.kind) {
      case DistanceProgram::Instr::Kind::kSum:
        j.kind = expr::JitOverlayInstr::Kind::kSum;
        break;
      case DistanceProgram::Instr::Kind::kMin:
        j.kind = expr::JitOverlayInstr::Kind::kMin;
        break;
      case DistanceProgram::Instr::Kind::kCmp:
        j.kind = expr::JitOverlayInstr::Kind::kCmp;
        break;
      case DistanceProgram::Instr::Kind::kTruth:
        j.kind = expr::JitOverlayInstr::Kind::kTruth;
        break;
    }
    j.dst = in.dst;
    j.a = in.a;
    j.b = in.b;
    j.va = in.va;
    j.vb = in.vb;
    j.cmpOp = in.cmpOp;
    j.want = in.want;
    ov.code.push_back(j);
  }
  return ov;
}

}  // namespace

DistanceTape::DistanceTape(const ExprPtr& goal,
                           const std::vector<expr::VarInfo>& vars,
                           bool useJit)
    : vars_(vars) {
  BuiltDistance built = buildOptimizedDistance(goal);
  prog_ = std::move(built.prog);
  passStats_ = built.stats;
  if (useJit) {
    const expr::JitOverlay ov = toJitOverlay(prog_);
    expr::TapeJit::Options jopt;
    jopt.overlay = &ov;
    jopt.coneVars.reserve(vars_.size());
    for (const expr::VarInfo& v : vars_) jopt.coneVars.push_back(v.id);
    if (auto jit = expr::TapeJit::compile(built.tape, jopt)) {
      jexec_.emplace(built.tape, std::move(jit));
    }
    // On environment failure compile() has recorded a diagnostic; fall
    // through to the (bit-identical) interpreter.
  }
  if (!jexec_) exec_.emplace(std::move(built.tape));
  dist_ = prog_.init;
}

double DistanceTape::runOverlay() {
  const auto distAt = [&](std::int32_t s) {
    return dist_[static_cast<std::size_t>(s)];
  };
  const auto toRealOf = [&](std::int32_t va) {
    return exec_->scalar({va, false}).toReal();
  };
  const auto toBoolOf = [&](std::int32_t va) {
    return exec_->scalar({va, false}).toBool();
  };
  for (const DistanceProgram::Instr& in : prog_.code) {
    dist_[static_cast<std::size_t>(in.dst)] =
        overlayStep(in, distAt, toRealOf, toBoolOf);
  }
  return dist_[static_cast<std::size_t>(prog_.root)];
}

double DistanceTape::rebind(const std::vector<double>& point) {
  if (jexec_) {
    for (std::size_t i = 0; i < vars_.size(); ++i) {
      jexec_->setVar(vars_[i].id, scalarForVar(vars_[i], point[i]));
    }
    return jexec_->runDistance();
  }
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    exec_->setVar(vars_[i].id, scalarForVar(vars_[i], point[i]));
  }
  exec_->run();
  return runOverlay();
}

double DistanceTape::update(std::size_t varIdx, double value) {
  const auto& v = vars_[varIdx];
  if (jexec_) {
    jexec_->setVar(v.id, scalarForVar(v, value));
    return jexec_->runDistanceCone(v.id);
  }
  exec_->setVar(v.id, scalarForVar(v, value));
  exec_->runCone(v.id);
  return runOverlay();
}

std::size_t DistanceTape::valueInstrCount() const {
  return (jexec_ ? jexec_->tape() : exec_->tape()).code().size();
}

std::size_t DistanceTape::maxConeSize() const {
  return (jexec_ ? jexec_->tape() : exec_->tape()).maxConeSize();
}

BatchDistanceTape::BatchDistanceTape(const ExprPtr& goal,
                                     const std::vector<expr::VarInfo>& vars,
                                     int lanes)
    : vars_(vars) {
  BuiltDistance built = buildOptimizedDistance(goal);
  prog_ = std::move(built.prog);
  exec_.emplace(std::move(built.tape), lanes);
  kern_ = &expr::laneKernelsFor(exec_->simdLevel());
  const auto B = static_cast<std::size_t>(exec_->lanes());
  dist_.resize(prog_.slotCount() * B);
  for (std::size_t s = 0; s < prog_.slotCount(); ++s) {
    for (std::size_t l = 0; l < B; ++l) dist_[s * B + l] = prog_.init[s];
  }
  va_.resize(B);
  vb_.resize(B);
  truth_.resize(B);
  active_.assign(B, 1);

  // Monotone lower-bound slots for runBounded: the root, plus transitively
  // the operands of every kSum feeding it. Distances are nonnegative (or
  // NaN, which fails every `< bound` test), so root >= each such slot and
  // a slot failing `value < bound` proves the lane's root will too. A
  // single reverse sweep suffices — slots are written in instruction
  // order, so a sum's operands are defined strictly earlier.
  lowerSlot_.assign(prog_.slotCount(), 0);
  if (prog_.root >= 0) {
    lowerSlot_[static_cast<std::size_t>(prog_.root)] = 1;
  }
  for (auto it = prog_.code.rbegin(); it != prog_.code.rend(); ++it) {
    if (it->kind == DistanceProgram::Instr::Kind::kSum &&
        lowerSlot_[static_cast<std::size_t>(it->dst)] != 0) {
      lowerSlot_[static_cast<std::size_t>(it->a)] = 1;
      lowerSlot_[static_cast<std::size_t>(it->b)] = 1;
    }
  }
}

void BatchDistanceTape::setPoint(int lane, const std::vector<double>& point) {
  // scalarForVar + setVar without the Scalar round trip: the typed binds
  // apply the identical coercion chain (r/i/b construction, then the
  // binding-type cast) directly on the payload.
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    const expr::VarInfo& v = vars_[i];
    switch (v.type) {
      case Type::kReal:
        exec_->setVarReal(lane, v.id, point[i]);
        break;
      case Type::kInt:
        exec_->setVarInt(lane, v.id,
                         static_cast<std::int64_t>(std::llround(point[i])));
        break;
      case Type::kBool:
        exec_->setVarBool(lane, v.id, point[i] >= 0.5);
        break;
    }
  }
}

void BatchDistanceTape::overlayInstr(const DistanceProgram::Instr& in) {
  using Instr = DistanceProgram::Instr;
  const int B = exec_->lanes();
  double* d = dist_.data();
  const auto row = [&](std::int32_t s) {
    return d + static_cast<std::size_t>(s) * static_cast<std::size_t>(B);
  };
  double* dst = row(in.dst);
  switch (in.kind) {
    case Instr::Kind::kSum:
      kern_->dSum(dst, row(in.a), row(in.b), B);
      break;
    case Instr::Kind::kMin:
      kern_->dMin(dst, row(in.a), row(in.b), B);
      break;
    case Instr::Kind::kCmp:
      // The dCmp kernel table bakes overlayStep's (op, want) dispatch into
      // the function pointer: same six distance forms, same operand order,
      // same kEps, per lane.
      exec_->readReals({in.va, false}, va_.data());
      exec_->readReals({in.vb, false}, vb_.data());
      kern_->dCmp[expr::simd_detail::cmpIndex(in.cmpOp)][in.want ? 1 : 0](
          dst, va_.data(), vb_.data(), B);
      break;
    case Instr::Kind::kTruth:
      exec_->readBools({in.va, false}, truth_.data());
      kern_->dTruth(dst, truth_.data(), in.want ? 1 : 0, B);
      break;
  }
}

void BatchDistanceTape::run() {
  exec_->run();
  for (const DistanceProgram::Instr& in : prog_.code) overlayInstr(in);
  const auto B = static_cast<std::uint64_t>(exec_->lanes());
  stats_.laneInstrsRetired += prog_.code.size() * B;
  ++stats_.fullRuns;
}

void BatchDistanceTape::runBounded(double bound) {
  exec_->run();
  const int B = exec_->lanes();
  active_.assign(active_.size(), 1);
  int nActive = B;
  const auto& code = prog_.code;
  std::size_t i = 0;
  for (; i < code.size() && nActive > 0; ++i) {
    const DistanceProgram::Instr& in = code[i];
    overlayInstr(in);
    stats_.laneInstrsRetired += static_cast<std::uint64_t>(nActive);
    stats_.laneInstrsSkipped += static_cast<std::uint64_t>(B - nActive);
    if (lowerSlot_[static_cast<std::size_t>(in.dst)] != 0) {
      const double* dst = &dist_[static_cast<std::size_t>(in.dst) *
                                 static_cast<std::size_t>(B)];
      for (int l = 0; l < B; ++l) {
        // `!(x < bound)` also catches NaN, whose root is NaN too.
        if (active_[static_cast<std::size_t>(l)] != 0 && !(dst[l] < bound)) {
          active_[static_cast<std::size_t>(l)] = 0;
          --nActive;
        }
      }
    }
  }
  stats_.laneInstrsSkipped +=
      static_cast<std::uint64_t>(code.size() - i) *
      static_cast<std::uint64_t>(B);
  ++stats_.boundedRuns;
  double* root = &dist_[static_cast<std::size_t>(prog_.root) *
                        static_cast<std::size_t>(B)];
  for (int l = 0; l < B; ++l) {
    if (active_[static_cast<std::size_t>(l)] == 0) {
      root[l] = std::numeric_limits<double>::infinity();
    }
  }
}

}  // namespace stcg::solver
