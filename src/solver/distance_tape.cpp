#include "solver/distance_tape.h"

#include <algorithm>
#include <cmath>

#include "expr/eval.h"
#include "solver/solver.h"

namespace stcg::solver {

using expr::Expr;
using expr::ExprPtr;
using expr::Op;
using expr::Type;

namespace {

constexpr double kEps = 1e-6;  // same as branchDistance's atom epsilon

}  // namespace

DistanceTape::DistanceTape(const ExprPtr& goal,
                           const std::vector<expr::VarInfo>& vars)
    : vars_(vars) {
  if (goal->type != Type::kBool || goal->isArray()) {
    throw expr::EvalError(
        "DistanceTape: goal must be a scalar boolean expression");
  }
  expr::TapeBuilder b;
  (void)b.addRoot(goal);
  root_ = build(goal.get(), true, b);
  exec_.emplace(b.finish());
}

std::int32_t DistanceTape::newSlot(double init) {
  dist_.push_back(init);
  return static_cast<std::int32_t>(dist_.size() - 1);
}

std::int32_t DistanceTape::build(const Expr* e, bool want,
                                 expr::TapeBuilder& b) {
  // Memoizing on (node, want) is sound because the distance of a node is
  // a pure function of the point — distanceRec just recomputes shared
  // subterms; the values are identical. Look up / store by value: the
  // recursive calls below insert into memo_, which may rehash.
  if (const auto it = memo_.find(e); it != memo_.end()) {
    const std::int32_t cached = it->second[want ? 1 : 0];
    if (cached >= 0) return cached;
  }
  const auto emit = [&](DistInstr in) {
    in.dst = newSlot(0.0);
    code_.push_back(in);
    return in.dst;
  };
  const auto minOfSums = [&](std::int32_t a1, std::int32_t b1,
                             std::int32_t a2, std::int32_t b2) {
    DistInstr s1;
    s1.kind = DistInstr::Kind::kSum;
    s1.a = a1;
    s1.b = b1;
    const std::int32_t lhs = emit(s1);
    DistInstr s2;
    s2.kind = DistInstr::Kind::kSum;
    s2.a = a2;
    s2.b = b2;
    const std::int32_t rhs = emit(s2);
    DistInstr m;
    m.kind = DistInstr::Kind::kMin;
    m.a = lhs;
    m.b = rhs;
    return emit(m);
  };

  std::int32_t slot = -1;
  switch (e->op) {
    case Op::kConst:
      slot = newSlot(e->constVal.toBool() == want ? 0.0 : 1.0);
      break;
    case Op::kNot:
      slot = build(e->args[0].get(), !want, b);
      break;
    case Op::kAnd:
    case Op::kOr: {
      const std::int32_t a = build(e->args[0].get(), want, b);
      const std::int32_t bb = build(e->args[1].get(), want, b);
      // kAnd want / kOr !want -> sum; the dual -> min.
      DistInstr in;
      in.kind = ((e->op == Op::kAnd) == want) ? DistInstr::Kind::kSum
                                              : DistInstr::Kind::kMin;
      in.a = a;
      in.b = bb;
      slot = emit(in);
      break;
    }
    case Op::kXor: {
      const std::int32_t aT = build(e->args[0].get(), true, b);
      const std::int32_t aF = build(e->args[0].get(), false, b);
      const std::int32_t bT = build(e->args[1].get(), true, b);
      const std::int32_t bF = build(e->args[1].get(), false, b);
      // want: min(aT + bF, aF + bT); else: min(aT + bT, aF + bF).
      slot = want ? minOfSums(aT, bF, aF, bT) : minOfSums(aT, bT, aF, bF);
      break;
    }
    case Op::kIte: {
      if (e->type != Type::kBool) break;  // non-bool ite: concrete atom
      const std::int32_t cT = build(e->args[0].get(), true, b);
      const std::int32_t cF = build(e->args[0].get(), false, b);
      const std::int32_t t = build(e->args[1].get(), want, b);
      const std::int32_t f = build(e->args[2].get(), want, b);
      slot = minOfSums(cT, t, cF, f);
      break;
    }
    default:
      break;
  }
  if (slot < 0) {
    // Atom: a comparison gets the Korel/Tracey distance off its operand
    // values; anything else scores its concrete truth 0/1.
    switch (e->op) {
      case Op::kEq:
      case Op::kNe:
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe: {
        DistInstr in;
        in.kind = DistInstr::Kind::kCmp;
        in.cmpOp = e->op;
        in.want = want;
        in.va = b.slotOf(e->args[0].get()).slot;
        in.vb = b.slotOf(e->args[1].get()).slot;
        slot = emit(in);
        break;
      }
      default: {
        DistInstr in;
        in.kind = DistInstr::Kind::kTruth;
        in.want = want;
        in.va = b.slotOf(e).slot;
        slot = emit(in);
        break;
      }
    }
  }
  memo_.try_emplace(e, std::array<std::int32_t, 2>{-1, -1})
      .first->second[want ? 1 : 0] = slot;
  return slot;
}

double DistanceTape::runOverlay() {
  const auto& scalars = *exec_;
  for (const DistInstr& in : code_) {
    double out = 0.0;
    switch (in.kind) {
      case DistInstr::Kind::kSum:
        out = dist_[static_cast<std::size_t>(in.a)] +
              dist_[static_cast<std::size_t>(in.b)];
        break;
      case DistInstr::Kind::kMin:
        out = std::min(dist_[static_cast<std::size_t>(in.a)],
                       dist_[static_cast<std::size_t>(in.b)]);
        break;
      case DistInstr::Kind::kCmp: {
        // Same expressions as atomDistance, operand for operand.
        const double l =
            scalars.scalar({in.va, false}).toReal();
        const double r =
            scalars.scalar({in.vb, false}).toReal();
        switch (in.cmpOp) {
          case Op::kEq: {
            const double d = std::fabs(l - r);
            out = in.want ? d : (d == 0.0 ? 1.0 : 0.0);
            break;
          }
          case Op::kNe: {
            const double d = std::fabs(l - r);
            out = in.want ? (d == 0.0 ? 1.0 : 0.0) : d;
            break;
          }
          case Op::kLt: {
            const double d = l - r;
            out = in.want ? (d < 0.0 ? 0.0 : d + kEps)
                          : (d >= 0.0 ? 0.0 : -d + kEps);
            break;
          }
          case Op::kLe: {
            const double d = l - r;
            out = in.want ? (d <= 0.0 ? 0.0 : d)
                          : (d > 0.0 ? 0.0 : -d + kEps);
            break;
          }
          case Op::kGt: {
            const double d = r - l;
            out = in.want ? (d < 0.0 ? 0.0 : d + kEps)
                          : (d >= 0.0 ? 0.0 : -d + kEps);
            break;
          }
          default: {  // kGe
            const double d = r - l;
            out = in.want ? (d <= 0.0 ? 0.0 : d)
                          : (d > 0.0 ? 0.0 : -d + kEps);
            break;
          }
        }
        break;
      }
      case DistInstr::Kind::kTruth:
        out = scalars.scalar({in.va, false}).toBool() == in.want ? 0.0 : 1.0;
        break;
    }
    dist_[static_cast<std::size_t>(in.dst)] = out;
  }
  return dist_[static_cast<std::size_t>(root_)];
}

double DistanceTape::rebind(const std::vector<double>& point) {
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    exec_->setVar(vars_[i].id, scalarForVar(vars_[i], point[i]));
  }
  exec_->run();
  return runOverlay();
}

double DistanceTape::update(std::size_t varIdx, double value) {
  const auto& v = vars_[varIdx];
  exec_->setVar(v.id, scalarForVar(v, value));
  exec_->runCone(v.id);
  return runOverlay();
}

std::size_t DistanceTape::valueInstrCount() const {
  return exec_->tape().code().size();
}

std::size_t DistanceTape::maxConeSize() const {
  return exec_->tape().maxConeSize();
}

}  // namespace stcg::solver
