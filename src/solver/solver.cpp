#include "solver/solver.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "interval/hc4.h"

namespace stcg::solver {

using expr::Env;
using expr::ExprPtr;
using expr::Scalar;
using expr::Type;
using expr::VarInfo;
using interval::Box;
using interval::ContractOutcome;
using interval::Hc4Contractor;
using interval::Interval;

const char* solveStatusName(SolveStatus s) {
  switch (s) {
    case SolveStatus::kSat: return "SAT";
    case SolveStatus::kUnsat: return "UNSAT";
    case SolveStatus::kUnknown: return "UNKNOWN";
  }
  return "?";
}

Scalar scalarForVar(const VarInfo& info, double v) {
  switch (info.type) {
    case Type::kBool:
      return Scalar::b(v >= 0.5);
    case Type::kInt:
      return Scalar::i(static_cast<std::int64_t>(std::llround(v)));
    case Type::kReal:
      return Scalar::r(v);
  }
  return Scalar::r(v);
}

std::pair<std::int64_t, std::int64_t> integerEndpoints(double lo, double hi) {
  // 2^62 is exactly representable in double and round-trips through the
  // cast; it is far beyond any model domain, so saturation never distorts
  // finite bounds that matter.
  constexpr double kCap = 4611686018427387904.0;  // 2^62
  const double l = std::clamp(std::ceil(lo), -kCap, kCap);
  const double h = std::clamp(std::floor(hi), -kCap, kCap);
  return {static_cast<std::int64_t>(l), static_cast<std::int64_t>(h)};
}

void BoxSolver::samplePoint(const Box& box, Rng& rng, bool corners,
                            int cornerKind, Env& env) const {
  for (const auto& v : box.vars()) {
    const Interval d = box.domain(v.id);
    double x;
    if (d.isPoint()) {
      x = d.lo();
    } else if (corners) {
      switch (cornerKind) {
        case 0: x = d.lo(); break;
        case 1: x = d.hi(); break;
        default: x = d.mid(); break;
      }
    } else if (v.type == Type::kReal) {
      x = rng.uniformReal(d.lo(), d.hi());
    } else {
      const auto [lo, hi] = integerEndpoints(d.lo(), d.hi());
      // lo > hi: the interval holds no integer. Probe the midpoint —
      // still inside the box, and certify() rejects it if infeasible.
      x = lo <= hi ? static_cast<double>(rng.uniformInt(lo, hi)) : d.mid();
    }
    if (v.type != Type::kReal) x = std::round(x);
    env.set(v.id, scalarForVar(v, x));
  }
}

bool BoxSolver::certify(const ExprPtr& goal, const Env& env) {
  return expr::evaluate(goal, env).toBool();
}

SolveResult BoxSolver::solve(const ExprPtr& goal,
                             const std::vector<VarInfo>& vars) {
  if (goal->type != Type::kBool || goal->isArray()) {
    throw expr::EvalError(
        "BoxSolver::solve: goal must be a scalar boolean expression");
  }
  SolveResult result;
  Stopwatch watch;
  const Deadline deadline = Deadline::afterMillis(options_.timeBudgetMillis);
  Rng rng(options_.seed);

  const auto finish = [&](SolveStatus status) {
    result.status = status;
    result.stats.elapsedMillis = watch.elapsedMillis();
    return result;
  };

  // Constant goals decide immediately.
  if (goal->op == expr::Op::kConst) {
    if (!goal->constVal.toBool()) return finish(SolveStatus::kUnsat);
    Env env;
    for (const auto& v : vars) {
      const Interval d =
          v.type == Type::kReal
              ? Interval(v.lo, v.hi)
              : Interval(v.lo, v.hi).integralHull();
      env.set(v.id, scalarForVar(v, d.isEmpty() ? v.lo : d.mid()));
    }
    result.model = std::move(env);
    return finish(SolveStatus::kSat);
  }

  Hc4Contractor contractor(goal);
  std::deque<Box> work;
  work.emplace_back(vars);
  bool exhaustive = true;  // whether every refuted region was proven empty

  while (!work.empty()) {
    if (deadline.expired() ||
        result.stats.boxesProcessed >= options_.maxBoxes) {
      return finish(SolveStatus::kUnknown);
    }
    Box box = std::move(work.front());
    work.pop_front();
    ++result.stats.boxesProcessed;

    const ContractOutcome out = contractor.contract(box, options_.contractPasses);
    if (out == ContractOutcome::kEmpty || box.isEmpty()) {
      ++result.stats.boxesRefuted;
      continue;
    }

    // Candidate points: three deterministic corners then random draws.
    Env env;
    for (int k = 0; k < 3 + options_.samplesPerBox; ++k) {
      env.clear();
      samplePoint(box, rng, /*corners=*/k < 3, k, env);
      ++result.stats.samplesTried;
      if (certify(goal, env)) {
        result.model = std::move(env);
        return finish(SolveStatus::kSat);
      }
    }

    // Split and recurse.
    const int dim = box.splitDimension();
    if (dim < 0) {
      // Degenerate box with no satisfying sample: refuted up to sampling,
      // but not proven empty — remember we lost exhaustiveness.
      exhaustive = false;
      continue;
    }
    const VarInfo& v = box.vars()[static_cast<std::size_t>(dim)];
    const Interval d = box.domain(v.id);
    double cut = d.mid();
    Box left = box, right = box;
    if (v.type == Type::kReal) {
      left.setDomain(v.id, Interval(d.lo(), cut));
      right.setDomain(v.id, Interval(cut, d.hi()));
    } else {
      cut = std::floor(cut);
      left.setDomain(v.id, Interval(d.lo(), cut));
      right.setDomain(v.id, Interval(cut + 1.0, d.hi()));
    }
    // Depth-first on the left half keeps memory bounded and finds nearby
    // models fast; the right half goes to the back of the queue for
    // breadth across the space.
    work.push_front(std::move(left));
    work.push_back(std::move(right));
  }

  return finish(exhaustive ? SolveStatus::kUnsat : SolveStatus::kUnknown);
}

}  // namespace stcg::solver
