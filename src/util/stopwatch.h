// Wall-clock timing utilities: Stopwatch for elapsed measurement and
// Deadline for budget-bounded loops (solver budgets, generation budgets).
#pragma once

#include <chrono>
#include <cstdint>

namespace stcg {

/// Measures elapsed wall-clock time since construction or last reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] std::int64_t elapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A point in time after which budget-bounded work must stop.
class Deadline {
 public:
  /// A deadline `millis` milliseconds from now. Negative means "no limit".
  static Deadline afterMillis(std::int64_t millis);

  /// A deadline that never expires.
  static Deadline never();

  [[nodiscard]] bool expired() const;

  /// Milliseconds remaining; never negative. Large value if unlimited.
  [[nodiscard]] std::int64_t remainingMillis() const;

  [[nodiscard]] bool unlimited() const { return unlimited_; }

 private:
  using Clock = std::chrono::steady_clock;
  Deadline(Clock::time_point when, bool unlimited)
      : when_(when), unlimited_(unlimited) {}

  Clock::time_point when_;
  bool unlimited_;
};

}  // namespace stcg
