// Small string formatting helpers shared across modules.
#pragma once

#include <string>
#include <vector>

namespace stcg {

/// Join `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               const std::string& sep);

/// Format a double compactly: integers without trailing ".000000",
/// otherwise up to 6 significant decimals.
[[nodiscard]] std::string formatReal(double v);

/// Format a ratio as a percentage with one decimal, e.g. "93.8%".
[[nodiscard]] std::string formatPercent(double ratio);

/// Left-pad or right-pad `s` with spaces to `width` characters.
[[nodiscard]] std::string padRight(const std::string& s, std::size_t width);
[[nodiscard]] std::string padLeft(const std::string& s, std::size_t width);

}  // namespace stcg
