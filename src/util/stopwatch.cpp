#include "util/stopwatch.h"

#include <limits>

namespace stcg {

Deadline Deadline::afterMillis(std::int64_t millis) {
  if (millis < 0) return never();
  return Deadline(Clock::now() + std::chrono::milliseconds(millis), false);
}

Deadline Deadline::never() { return Deadline(Clock::time_point::max(), true); }

bool Deadline::expired() const {
  if (unlimited_) return false;
  return Clock::now() >= when_;
}

std::int64_t Deadline::remainingMillis() const {
  if (unlimited_) return std::numeric_limits<std::int64_t>::max() / 4;
  auto diff = std::chrono::duration_cast<std::chrono::milliseconds>(
                  when_ - Clock::now())
                  .count();
  return diff < 0 ? 0 : diff;
}

}  // namespace stcg
