// Centralized environment-flag parsing for the STCG_* switches.
//
// Every engine escape hatch (STCG_JIT, STCG_TAPE_OPT, STCG_TAPE_VERIFY,
// STCG_SIMD, ...) used to hand-roll its own getenv + strcmp, which meant
// each one silently invented its own notion of truthiness and typos like
// STCG_JIT=off enabled the JIT. These helpers give every switch one
// strict grammar and one failure mode: an unrecognized value keeps the
// documented default and emits a single stderr diagnostic naming the
// variable, the offending value, and the accepted spellings.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace stcg::util {

/// Boolean flag. Accepted (case-insensitive): "0"/"false"/"off"/"no" and
/// "1"/"true"/"on"/"yes". Unset or empty returns `def`; any other value
/// returns `def` and reports a diagnostic once per (variable, value).
[[nodiscard]] bool envFlag(const char* name, bool def);

/// Enumerated flag: returns the index of the (case-insensitive) match in
/// `allowed`, or -1 when the variable is unset or empty. An unrecognized
/// value returns -1 and reports a diagnostic once per (variable, value).
[[nodiscard]] int envEnum(const char* name,
                          const std::vector<std::string>& allowed);

/// Free-form string variable; unset or empty yields nullopt.
[[nodiscard]] std::optional<std::string> envString(const char* name);

/// Number of diagnostics reported so far (test hook).
[[nodiscard]] std::size_t envDiagnosticCount();

}  // namespace stcg::util
