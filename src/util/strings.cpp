#include "util/strings.h"

#include <cmath>
#include <cstdio>

namespace stcg {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string formatReal(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string formatPercent(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", ratio * 100.0);
  return buf;
}

std::string padRight(const std::string& s, std::size_t width) {
  std::string out = s;
  while (out.size() < width) out += ' ';
  return out;
}

std::string padLeft(const std::string& s, std::size_t width) {
  std::string out = s;
  while (out.size() < width) out.insert(out.begin(), ' ');
  return out;
}

}  // namespace stcg
