#include "util/env.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

namespace stcg::util {

namespace {

std::string lowered(const char* s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::atomic<std::size_t>& diagCount() {
  static std::atomic<std::size_t> n{0};
  return n;
}

void diagnose(const char* name, const char* value,
              const std::string& accepted) {
  // One report per (variable, value): a flag read in a hot loop must not
  // spam, but changing the value mid-process should report again.
  static std::mutex mu;
  static std::set<std::string> seen;
  std::lock_guard<std::mutex> lock(mu);
  if (!seen.insert(std::string(name) + "=" + value).second) return;
  diagCount().fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr, "stcg: ignoring unrecognized %s='%s' (accepted: %s)\n",
               name, value, accepted.c_str());
}

}  // namespace

bool envFlag(const char* name, bool def) {
  const char* e = std::getenv(name);
  if (e == nullptr || *e == '\0') return def;
  const std::string v = lowered(e);
  if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  if (v == "1" || v == "true" || v == "on" || v == "yes") return true;
  diagnose(name, e, "0/false/off/no, 1/true/on/yes");
  return def;
}

int envEnum(const char* name, const std::vector<std::string>& allowed) {
  const char* e = std::getenv(name);
  if (e == nullptr || *e == '\0') return -1;
  const std::string v = lowered(e);
  for (std::size_t i = 0; i < allowed.size(); ++i) {
    if (v == allowed[i]) return static_cast<int>(i);
  }
  std::string accepted;
  for (std::size_t i = 0; i < allowed.size(); ++i) {
    if (i > 0) accepted += ", ";
    accepted += allowed[i];
  }
  diagnose(name, e, accepted);
  return -1;
}

std::optional<std::string> envString(const char* name) {
  const char* e = std::getenv(name);
  if (e == nullptr || *e == '\0') return std::nullopt;
  return std::string(e);
}

std::size_t envDiagnosticCount() {
  return diagCount().load(std::memory_order_relaxed);
}

}  // namespace stcg::util
