// 64-byte-aligned vector storage for the SoA lane buffers.
//
// The batch engines index rows as `data[slot * B + lane]`; aligning the
// base to a cache line keeps whole B=8 rows inside one line and gives the
// SIMD kernels aligned starts for the common row widths (the kernels still
// use unaligned loads, so this is a performance property, not a contract).
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace stcg::util {

template <typename T, std::size_t Align = 64>
class AlignedAllocator {
 public:
  using value_type = T;
  static constexpr std::align_val_t kAlign{Align};

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, kAlign);
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

}  // namespace stcg::util
