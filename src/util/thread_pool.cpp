#include "util/thread_pool.h"

#include <algorithm>

namespace stcg {

int ThreadPool::hardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) : threads_(std::max(threads, 1)) {
  shards_.reserve(static_cast<std::size_t>(threads_));
  for (int i = 0; i < threads_; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Lane 0 is the caller of parallelFor; only lanes 1.. get threads.
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int lane = 1; lane < threads_; ++lane) {
    workers_.emplace_back([this, lane] { workerLoop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::recordException(std::size_t index) {
  std::lock_guard<std::mutex> lock(errM_);
  if (firstError_ == nullptr || index < errIndex_) {
    firstError_ = std::current_exception();
    errIndex_ = index;
  }
}

void ThreadPool::runLane(int lane) {
  const auto settle = [this](std::size_t count) {
    std::lock_guard<std::mutex> lock(m_);
    pending_ -= count;
    if (pending_ == 0) doneCv_.notify_all();
  };

  Shard& own = *shards_[static_cast<std::size_t>(lane)];
  for (;;) {
    // Drain the owned slice. Claiming a task under the shard mutex
    // happens-after the caller dealt the slice, which happens-after it
    // published body_ — so the loaded pointer is always current.
    for (;;) {
      std::size_t i;
      {
        std::lock_guard<std::mutex> lock(own.m);
        if (own.next >= own.end) break;
        i = own.next++;
      }
      const auto* body = body_.load(std::memory_order_acquire);
      try {
        (*body)(i);
      } catch (...) {
        recordException(i);
      }
      settle(1);
    }
    // Steal the back half of the largest remaining slice.
    int victim = -1;
    std::size_t victimSize = 0;
    for (int v = 0; v < threads_; ++v) {
      if (v == lane) continue;
      Shard& s = *shards_[static_cast<std::size_t>(v)];
      std::lock_guard<std::mutex> lock(s.m);
      const std::size_t size = s.end - s.next;
      if (size > victimSize) {
        victimSize = size;
        victim = v;
      }
    }
    if (victim < 0) return;  // nothing left anywhere
    Shard& s = *shards_[static_cast<std::size_t>(victim)];
    std::size_t begin = 0, end = 0;
    {
      std::lock_guard<std::mutex> lock(s.m);
      const std::size_t size = s.end - s.next;
      if (size == 0) continue;  // raced with the victim; rescan
      const std::size_t take = std::max<std::size_t>(size / 2, 1);
      end = s.end;
      begin = s.end - take;
      s.end = begin;
    }
    {
      std::lock_guard<std::mutex> lock(own.m);
      own.next = begin;
      own.end = end;
    }
  }
}

void ThreadPool::workerLoop(int lane) {
  std::uint64_t seenEpoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_.wait(lock, [&] { return stop_ || epoch_ != seenEpoch; });
      if (stop_) return;
      seenEpoch = epoch_;
    }
    runLane(lane);
  }
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads_ <= 1) {
    // Sequential path: same settle-then-rethrow contract, no threads.
    for (std::size_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (...) {
        recordException(i);
      }
    }
  } else {
    // Publish the body and the task count BEFORE dealing work: a straggler
    // lane from the previous batch may legitimately claim freshly dealt
    // tasks while scanning for steals, and must find a valid body.
    {
      std::lock_guard<std::mutex> lock(m_);
      pending_ = n;
      ++epoch_;
    }
    body_.store(&body, std::memory_order_release);
    // Deal contiguous chunks; lane l gets [l*n/T, (l+1)*n/T).
    const auto t = static_cast<std::size_t>(threads_);
    for (std::size_t l = 0; l < t; ++l) {
      Shard& s = *shards_[l];
      std::lock_guard<std::mutex> lock(s.m);
      s.next = l * n / t;
      s.end = (l + 1) * n / t;
    }
    cv_.notify_all();
    runLane(0);
    {
      std::unique_lock<std::mutex> lock(m_);
      doneCv_.wait(lock, [&] { return pending_ == 0; });
    }
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(errM_);
    err = firstError_;
    firstError_ = nullptr;
    errIndex_ = 0;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace stcg
