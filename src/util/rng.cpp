#include "util/rng.h"

#include <stdexcept>
#include <string>

namespace stcg {

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) {
    throw std::invalid_argument("Rng::uniformInt: empty range [" +
                                std::to_string(lo) + ", " +
                                std::to_string(hi) + "]");
  }
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::uniformReal(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::chance(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("Rng::index: n must be positive");
  }
  std::uniform_int_distribution<std::size_t> dist(0, n - 1);
  return dist(engine_);
}

Rng Rng::fork() { return Rng(engine_()); }

}  // namespace stcg
