#include "util/rng.h"

#include <cassert>

namespace stcg {

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::uniformReal(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::chance(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  std::uniform_int_distribution<std::size_t> dist(0, n - 1);
  return dist(engine_);
}

Rng Rng::fork() { return Rng(engine_()); }

}  // namespace stcg
