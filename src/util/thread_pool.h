// A small work-stealing thread pool for index-space parallelism.
//
// The pool exists for the STCG solve grid: per generation round, the
// (uncovered goal × state-tree node) tasks are independent solver queries
// of wildly varying cost (a state-folded residual is nanoseconds, a hard
// box query is the full per-query budget). parallelFor() deals the index
// range into per-worker chunks; a worker that drains its own chunk steals
// the back half of the largest remaining victim chunk, so one expensive
// task never serializes the round.
//
// Determinism contract: the pool promises only that every index in [0, n)
// is executed exactly once (in some order) before parallelFor returns.
// Callers that need order-independent results must make each task
// self-contained (own RNG stream, no shared mutable state) and reduce the
// results themselves — see stcg_generator.cpp for the canonical pattern.
//
// Exceptions thrown by the body are captured; after all indices settle,
// the exception from the lowest-numbered throwing index is rethrown on
// the calling thread (lowest-index, so the choice does not depend on the
// thread schedule).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace stcg {

class ThreadPool {
 public:
  /// A pool with `threads` total lanes of parallelism, *including* the
  /// thread that calls parallelFor (which always participates). Values
  /// <= 1 mean no worker threads are spawned and parallelFor degrades to
  /// an inline sequential loop over 0..n-1.
  explicit ThreadPool(int threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers. Safe to call with no parallelFor in flight.
  ~ThreadPool();

  [[nodiscard]] int threadCount() const { return threads_; }

  /// Execute body(i) for every i in [0, n), across the pool plus the
  /// calling thread. Blocks until all indices settle, then rethrows the
  /// lowest-index captured exception, if any. Not reentrant: do not call
  /// parallelFor from inside a body.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Total lanes the hardware offers (>= 1 even when unknown).
  [[nodiscard]] static int hardwareThreads();

 private:
  /// One contiguous slice of the index range, owned by one lane. `next`
  /// and `end` are guarded by `m` (steals shrink `end`, pops advance
  /// `next`); contention is rare because chunks start balanced.
  struct Shard {
    std::mutex m;
    std::size_t next = 0;
    std::size_t end = 0;
  };

  void workerLoop(int lane);
  /// Run tasks from shard `lane`, stealing when it drains; returns when
  /// no shard has work left.
  void runLane(int lane);
  void recordException(std::size_t index);

  const int threads_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex m_;
  std::condition_variable cv_;      // workers wait for a new batch
  std::condition_variable doneCv_;  // caller waits for batch completion
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  /// Current batch body; atomic because a straggler lane from the prior
  /// batch may claim freshly dealt tasks concurrently with publication.
  std::atomic<const std::function<void(std::size_t)>*> body_{nullptr};
  std::size_t pending_ = 0;  // indices not yet settled this batch

  std::mutex errM_;
  std::size_t errIndex_ = 0;
  std::exception_ptr firstError_;
};

}  // namespace stcg
