// Deterministic random number generation for all stochastic components.
//
// Every source of randomness in the library flows through an explicitly
// seeded Rng instance, so any experiment is reproducible from its seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace stcg {

/// Seedable pseudo-random generator wrapping std::mt19937_64 with the
/// convenience draws the generators need. Cheap to copy; pass by reference
/// when the caller should observe the advanced stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// The seed this generator was constructed with (for logging).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi].
  [[nodiscard]] double uniformReal(double lo, double hi);

  /// Bernoulli draw with probability p of true.
  [[nodiscard]] bool chance(double p);

  /// Uniform index in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n);

  /// Derive an independent child generator (for parallel or nested use).
  [[nodiscard]] Rng fork();

  /// Access the raw engine for use with std:: distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace stcg
