// Deterministic random number generation for all stochastic components.
//
// Every source of randomness in the library flows through an explicitly
// seeded Rng instance, so any experiment is reproducible from its seed.
//
// Two forking flavours support that discipline:
//   fork()        advances this stream and derives a child from the drawn
//                 word — children depend on how much the parent consumed.
//   fork(stream)  counter-based: depends only on (seed, stream id), never
//                 on the engine position. This is what parallel code uses —
//                 task 17 gets the same child stream no matter how many
//                 threads ran, in what order, or what else was drawn.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace stcg {

/// SplitMix64 finalizer: a bijective 64-bit mix used to derive independent
/// child seeds from (seed, stream) pairs.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seedable pseudo-random generator wrapping std::mt19937_64 with the
/// convenience draws the generators need. Cheap to copy; pass by reference
/// when the caller should observe the advanced stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// The seed this generator was constructed with (for logging).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Uniform integer in [lo, hi] (inclusive). Throws std::invalid_argument
  /// when lo > hi (an assert would be UB under NDEBUG).
  [[nodiscard]] std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi].
  [[nodiscard]] double uniformReal(double lo, double hi);

  /// Bernoulli draw with probability p of true.
  [[nodiscard]] bool chance(double p);

  /// Uniform index in [0, n). Throws std::invalid_argument when n == 0.
  [[nodiscard]] std::size_t index(std::size_t n);

  /// Derive an independent child generator by drawing from this stream
  /// (advances the engine; order-sensitive).
  [[nodiscard]] Rng fork();

  /// Counter-based fork: the child depends only on (seed(), stream), not
  /// on the engine position, so any task can reconstruct its stream from
  /// a task id alone. Distinct stream ids give statistically independent
  /// children (SplitMix64 over the pair).
  [[nodiscard]] Rng fork(std::uint64_t stream) const {
    return Rng(splitmix64(seed_ ^ splitmix64(stream + 0x632be59bd9b4e019ULL)));
  }

  /// Access the raw engine for use with std:: distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

/// Explicit cursor over a counter-based fork stream: child i is always
/// `Rng(seed).fork(i)`, so the entire stream position is two integers —
/// (seed, next counter). That makes a stream checkpointable: persist
/// position(), later seek() to it, and next() resumes the exact child
/// sequence in a fresh process. All campaign-lifetime randomness in the
/// STCG generator flows through these cursors (see stcg::gen::Campaign);
/// an Rng engine position, by contrast, is not serializable.
class CounterStream {
 public:
  CounterStream() = default;
  explicit CounterStream(std::uint64_t seed) : seed_(seed) {}
  /// Cursor over the children of `base`: at(i) == base.fork(i) (fork(i)
  /// depends only on base.seed(), never on its engine position).
  explicit CounterStream(const Rng& base) : seed_(base.seed()) {}

  /// Child `i` of the stream, position unchanged.
  [[nodiscard]] Rng at(std::uint64_t i) const { return Rng(seed_).fork(i); }
  /// The child at the cursor; advances the cursor.
  [[nodiscard]] Rng next() { return at(pos_++); }
  /// Advance the cursor without materializing the child (a lane computed
  /// via at() was committed).
  void skip() { ++pos_; }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::uint64_t position() const { return pos_; }
  void seek(std::uint64_t pos) { pos_ = pos; }

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t pos_ = 0;
};

}  // namespace stcg
