#include "lint/lint.h"

#include "compile/compiler.h"

namespace stcg::lint {

const std::vector<CheckInfo>& allChecks() {
  static const std::vector<CheckInfo> kChecks = {
      // Model layer.
      {"invalid-ref", Severity::kError,
       "input port references a missing block, port, store or chart"},
      {"arity-mismatch", Severity::kError,
       "operand count disagrees with signs/ops string or chart inputs"},
      {"unbound-delay", Severity::kError,
       "delay hole with no input: its state never leaves the initial value"},
      {"chart-guard", Severity::kError, "chart transition without a guard"},
      {"lookup-table", Severity::kError,
       "lookup breakpoints not strictly increasing or length mismatch"},
      {"store-never-written", Severity::kWarning,
       "data store is read but never written (unbound variable)"},
      {"store-unused", Severity::kNote,
       "data store is neither read nor written"},
      {"type-mismatch", Severity::kWarning,
       "boolean signal used where a numeric operand is expected (or vice "
       "versa) across a block seam"},
      // Compiled layer.
      {"div-by-zero", Severity::kWarning,
       "division/modulo denominator may be zero under reachable state"},
      {"array-bounds", Severity::kWarning,
       "array index may fall outside the buffer (clamped at evaluation)"},
      {"constant-guard", Severity::kWarning,
       "decision guard folds to a constant: one arm can never execute"},
      {"unreachable-branch", Severity::kWarning,
       "branch proven unreachable from every reachable state"},
      {"unreachable-objective", Severity::kWarning,
       "test objective proven unsatisfiable"},
      {"unreachable-condition", Severity::kNote,
       "condition polarity proven unobservable while its decision is "
       "active"},
      // Tape layer (--tape): static verification of the compiled tapes.
      {"tape-slot-bounds", Severity::kError,
       "tape instruction reads or writes a slot outside its space"},
      {"tape-use-before-def", Severity::kError,
       "tape operand slot read before any instruction defines it"},
      {"tape-const-clobbered", Severity::kError,
       "tape instruction overwrites a constant or variable slot"},
      {"tape-type-mismatch", Severity::kError,
       "tape result type breaks the typed-lane executor contract"},
      {"tape-root-undefined", Severity::kError,
       "tape root names an invalid or never-defined slot"},
      {"tape-stale-cone", Severity::kError,
       "recorded dirty cones differ from the recomputed dependency cones"},
      {"tape-unsafe-sharing", Severity::kError,
       "physical slot shared across incoherent dependency cones"},
      {"tape-cse-duplicate", Severity::kWarning,
       "two live pure tape instructions compute the same value"},
      {"tape-internal-error", Severity::kError,
       "tape construction or producer-side verification threw"},
      {"tape-shrink", Severity::kNote,
       "pass-pipeline instruction/slot reduction for one compiled tape"},
  };
  return kChecks;
}

LintResult lintModel(const model::Model& m, const LintOptions& opt) {
  LintResult result;
  runModelChecks(m, result.sink);
  if (!result.sink.hasErrors()) {
    try {
      const compile::CompiledModel cm = compile::compile(m);
      runCompiledChecks(cm, opt, result);
      if (opt.tapeChecks) runTapeChecks(cm, result.sink);
    } catch (const compile::CompileError& e) {
      // The model layer aims to catch everything compile() rejects, but
      // stays sound if lowering finds a problem the checks missed.
      result.sink.report(Severity::kError, "invalid-ref", m.name(),
                         std::string("compilation failed: ") + e.what());
    }
  }
  result.sink.sortBySeverity();
  return result;
}

}  // namespace stcg::lint
