// Model lint: static checks over the Model graph and the compiled Expr IR.
//
// lintModel() runs two layers of checks:
//
//   Model layer (runModelChecks) — structural well-formedness of the block
//   graph: invalid port references, operand/sign arity mismatches, unbound
//   delay holes (state that can never leave its initial value), data
//   stores read but never written, type mismatches on boolean/numeric
//   seams, malformed lookup tables and regions. Errors here mean the
//   model would not compile (or would simulate nonsense).
//
//   Compiled layer (runCompiledChecks) — semantic hazards over the lowered
//   expressions, using the interval state invariant from
//   analysis/reachability: division/modulo whose denominator may be zero,
//   array indices that may fall outside their buffer, constant-foldable
//   decision guards, and decision/condition/objective coverage goals that
//   are *provably unreachable* (interval evaluation, HC4 contraction,
//   then solver refutation). Proven-unreachable goals are returned as
//   coverage::Exclusions so generators can drop them from both the solve
//   loop and the coverage denominators.
//
// The severity contract: bench-quality models produce zero errors;
// warnings flag hazards and dead logic (the LEDLC Switch-Case default arm
// is a true positive); notes are observations that never affect exit
// codes.
#pragma once

#include <string>
#include <vector>

#include "analysis/reachability.h"
#include "compile/compiled_model.h"
#include "coverage/coverage.h"
#include "lint/diagnostics.h"
#include "model/model.h"

namespace stcg::lint {

struct LintOptions {
  /// Run the reachability-based checks (invariant + unreachable goals).
  /// These dominate lint time on large models; structural checks alone
  /// are near-instant.
  bool reachabilityChecks = true;
  analysis::ReachabilityOptions reach{};
  /// Run the tape-layer checks: static verification (expr::verifyTape)
  /// of every tape the engines would execute — sim, interval, distance —
  /// raw and optimized, plus per-tape shrink notes. Off by default: the
  /// findings judge the tape pipeline, not the model.
  bool tapeChecks = false;
};

/// One entry of the static check registry.
struct CheckInfo {
  const char* id;           // kebab-case check id
  Severity severity;        // severity its findings are reported at
  const char* summary;      // one-line description
};

/// The full check registry, in the order checks run.
[[nodiscard]] const std::vector<CheckInfo>& allChecks();

struct LintResult {
  DiagnosticSink sink;
  /// False when model-layer errors stopped compilation: the compiled
  /// checks (hazards, reachability) did not run.
  bool compiledChecksRan = false;
  /// Coverage goals proven statically unreachable (empty unless the
  /// compiled checks ran with reachabilityChecks on).
  coverage::Exclusions exclusions;
  /// Human-readable label per excluded goal, for generator trace logs.
  std::vector<std::string> exclusionLabels;
};

/// Run every check against `m`. Model-layer checks always run; the
/// compiled layer runs only when they produce no errors (an ill-formed
/// model cannot be lowered). Diagnostics come back sorted by severity.
[[nodiscard]] LintResult lintModel(const model::Model& m,
                                   const LintOptions& opt = {});

/// Model-layer checks only (no compilation required).
void runModelChecks(const model::Model& m, DiagnosticSink& sink);

/// Compiled-layer checks only; appends to `out.sink` and fills
/// `out.exclusions`. Sets out.compiledChecksRan.
void runCompiledChecks(const compile::CompiledModel& cm,
                       const LintOptions& opt, LintResult& out);

/// Tape-layer checks only: build and statically verify the model's sim,
/// interval and distance tapes (raw and pass-pipeline-optimized), report
/// each verifier finding under its stable check id, and emit one
/// "tape-shrink" note per tape.
void runTapeChecks(const compile::CompiledModel& cm, DiagnosticSink& sink);

/// The generator entry point: prove coverage goals unreachable and return
/// them as exclusions (optionally with one label per excluded goal).
/// Runs its own invariant computation; no diagnostics are produced.
[[nodiscard]] coverage::Exclusions findUnreachableGoals(
    const compile::CompiledModel& cm,
    std::vector<std::string>* labels = nullptr,
    const analysis::ReachabilityOptions& opt = {});

}  // namespace stcg::lint
