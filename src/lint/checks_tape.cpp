// Tape-layer lint checks: run the static tape verifier over every tape
// the engines would execute for this model — the simulation ModelTape,
// the interval tape over the next-state roots, and one distance tape per
// branch path constraint — on both the raw build and the pass-pipeline
// output. Each verifier finding surfaces as a diagnostic under its
// stable check id (expr::tapeIssueCheckId); a per-family "tape-shrink"
// note reports the optimizer's instruction/slot reduction.
//
// On a well-formed model every tape verifies clean: an error here means
// the tape builder or the optimizer violated an engine invariant, not
// that the model is wrong — which is exactly why it is worth a lint
// gate in front of long generation runs.

#include <string>

#include "analysis/interval_tape.h"
#include "compile/model_tape.h"
#include "expr/eval.h"
#include "expr/tape_passes.h"
#include "expr/tape_verify.h"
#include "lint/lint.h"
#include "solver/distance_tape.h"

namespace stcg::lint {

namespace {

using compile::CompiledModel;

/// Report every finding of one verifier run under `location`.
void reportIssues(const expr::TapeVerifyResult& res,
                  const std::string& location, DiagnosticSink& sink) {
  for (const auto& issue : res.issues) {
    const Severity sev = expr::tapeIssueIsError(issue.kind)
                             ? Severity::kError
                             : Severity::kWarning;
    std::string msg = issue.message;
    if (issue.instr >= 0) {
      msg += " (instr #" + std::to_string(issue.instr) + ")";
    }
    sink.report(sev, expr::tapeIssueCheckId(issue.kind), location,
                std::move(msg));
  }
}

void reportShrink(const expr::TapePassStats& stats,
                  const std::string& location, DiagnosticSink& sink) {
  sink.report(Severity::kNote, "tape-shrink", location, stats.summary());
}

/// Verify a raw/optimized tape pair and report the shrink.
void checkPair(const expr::Tape& raw, const expr::Tape& optimized,
               const expr::TapePassStats& stats, const std::string& location,
               DiagnosticSink& sink) {
  reportIssues(expr::verifyTape(raw), location + " (raw)", sink);
  reportIssues(expr::verifyTape(optimized), location, sink);
  reportShrink(stats, location, sink);
}

/// The distance tapes have no public producer struct: replicate the
/// DistanceTape constructor's build (value tape + overlay, overlay
/// operand slots pinned live through the optimizer) for one goal.
void checkDistanceTape(const expr::ExprPtr& goal, const std::string& location,
                       DiagnosticSink& sink) {
  expr::TapeBuilder b;
  const solver::DistanceProgram prog = solver::buildDistanceProgram(goal, b);
  const std::shared_ptr<const expr::Tape> raw = b.finish();
  reportIssues(expr::verifyTape(*raw), location + " (raw)", sink);
  if (!expr::tapeOptEnabled()) return;
  std::vector<expr::SlotRef> extraLive;
  for (const auto& in : prog.code) {
    if (in.va >= 0) extraLive.push_back({in.va, false});
    if (in.vb >= 0) extraLive.push_back({in.vb, false});
  }
  const expr::OptimizedTape opt = expr::optimizeTape(raw, extraLive);
  reportIssues(expr::verifyTape(*opt.tape), location, sink);
  reportShrink(opt.stats, location, sink);
}

}  // namespace

void runTapeChecks(const CompiledModel& cm, DiagnosticSink& sink) {
  try {
    // Simulation tape: every root the simulator reads per step.
    const compile::ModelTape mt = compile::buildModelTape(cm);
    checkPair(*mt.rawTape, *mt.tape, mt.passStats, "tape 'sim'", sink);

    // Interval tape: the reachability fixpoint's next-state roots.
    if (!cm.states.empty()) {
      std::vector<expr::ExprPtr> nextRoots;
      nextRoots.reserve(cm.states.size());
      for (const auto& sv : cm.states) nextRoots.push_back(sv.next);
      const analysis::IntervalTapeBuild built =
          analysis::buildIntervalTape(nextRoots);
      checkPair(*built.rawTape, *built.tape, built.stats, "tape 'interval'",
                sink);
    }

    // Distance tapes: one per branch path constraint (what the local
    // search would compile when chasing that branch).
    for (const auto& br : cm.branches) {
      const auto& d = cm.decisions[static_cast<std::size_t>(br.decision)];
      try {
        checkDistanceTape(br.pathConstraint,
                          "tape 'distance:" + d.name + ":" + br.label + "'",
                          sink);
      } catch (const expr::EvalError&) {
        // Non-boolean / array goal: the solver would not compile it
        // either — nothing to verify.
      }
    }
  } catch (const expr::EvalError& e) {
    // A producer's own maybeRequireVerifiedTape threw (debug builds /
    // STCG_TAPE_VERIFY=1) before we could collect findings ourselves.
    sink.report(Severity::kError, "tape-internal-error", "tape",
                std::string("tape construction failed: ") + e.what());
  }
}

}  // namespace stcg::lint
