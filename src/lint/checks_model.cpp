// Model-layer lint checks: structural well-formedness of the block graph.
//
// These run before (and without) compilation, so they must tolerate
// arbitrarily broken graphs: every port reference is bounds-checked before
// being followed, and the type-inference walk carries a cycle guard
// (delays legitimately close feedback loops; their output type comes from
// the initial value, which breaks the recursion).

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "lint/lint.h"

namespace stcg::lint {

namespace {

using model::Block;
using model::BlockKind;
using model::Model;

/// Inferred signal type of a block output; kUnknownType when inference
/// cannot tell (charts, broken references, cycles mid-walk).
enum class SigType { kBool, kInt, kReal, kUnknownType };

SigType fromType(expr::Type t) {
  switch (t) {
    case expr::Type::kBool: return SigType::kBool;
    case expr::Type::kInt: return SigType::kInt;
    case expr::Type::kReal: return SigType::kReal;
  }
  return SigType::kUnknownType;
}

/// Number of output ports a block exposes (0 for pure sinks).
int outputCount(const Model& m, const Block& b) {
  switch (b.kind) {
    case BlockKind::kOutport:
    case BlockKind::kTestObjective:
    case BlockKind::kDataStoreWrite:
    case BlockKind::kDataStoreWriteElem:
      return 0;
    case BlockKind::kChart: {
      if (b.chartIndex < 0 ||
          static_cast<std::size_t>(b.chartIndex) >= m.charts().size()) {
        return 0;
      }
      const auto& spec = m.charts()[static_cast<std::size_t>(b.chartIndex)];
      return static_cast<int>(spec.outputVarIndices.size()) +
             (spec.activeStateOutput ? 1 : 0);
    }
    default:
      return 1;
  }
}

/// Bottom-up output-type inference with memoization and a cycle guard.
class TypeInference {
 public:
  explicit TypeInference(const Model& m) : m_(m) {
    memo_.assign(m.blocks().size(), SigType::kUnknownType);
    state_.assign(m.blocks().size(), 0);
  }

  SigType typeOf(model::PortRef p) {
    if (!p.valid() ||
        static_cast<std::size_t>(p.block) >= m_.blocks().size()) {
      return SigType::kUnknownType;
    }
    const auto idx = static_cast<std::size_t>(p.block);
    if (state_[idx] == 2) return memo_[idx];
    if (state_[idx] == 1) return SigType::kUnknownType;  // cycle mid-walk
    state_[idx] = 1;
    memo_[idx] = infer(m_.blocks()[idx]);
    state_[idx] = 2;
    return memo_[idx];
  }

 private:
  SigType infer(const Block& b) {
    switch (b.kind) {
      case BlockKind::kInport:
        return fromType(b.valueType);
      case BlockKind::kConstant:
        return fromType(b.scalarParam.type());
      case BlockKind::kConstantArray:
        return b.arrayParam.empty() ? SigType::kUnknownType
                                    : fromType(b.arrayParam[0].type());
      case BlockKind::kSum:
      case BlockKind::kGain:
      case BlockKind::kProduct:
      case BlockKind::kAbs:
      case BlockKind::kMinMax:
      case BlockKind::kSaturation:
      case BlockKind::kLookup1D:
        return SigType::kReal;
      case BlockKind::kMod:
        return SigType::kInt;
      case BlockKind::kRelational:
      case BlockKind::kLogical:
        return SigType::kBool;
      case BlockKind::kUnitDelay:
      case BlockKind::kDelayLine:
        return fromType(b.scalarParam.type());
      case BlockKind::kDataStoreRead:
      case BlockKind::kDataStoreReadElem:
        if (b.intParam >= 0 &&
            static_cast<std::size_t>(b.intParam) < m_.dataStores().size()) {
          return fromType(
              m_.dataStores()[static_cast<std::size_t>(b.intParam)].type);
        }
        return SigType::kUnknownType;
      case BlockKind::kSwitch:
      case BlockKind::kMultiportSwitch:
      case BlockKind::kMerge: {
        // Hull of the data inputs: one consistent type, else unknown.
        SigType t = SigType::kUnknownType;
        const auto consider = [&](model::PortRef p) {
          const SigType pt = typeOf(p);
          if (t == SigType::kUnknownType) {
            t = pt;
          } else if (pt != SigType::kUnknownType && pt != t) {
            t = SigType::kUnknownType;
          }
        };
        if (b.kind == BlockKind::kSwitch) {
          if (b.in.size() == 3) {
            consider(b.in[0]);
            consider(b.in[2]);
          }
        } else if (b.kind == BlockKind::kMultiportSwitch) {
          for (std::size_t i = 1; i < b.in.size(); ++i) consider(b.in[i]);
        } else {
          for (const auto& [region, port] : b.mergeArms) consider(port);
        }
        return t;
      }
      case BlockKind::kChart:
      default:
        return SigType::kUnknownType;
    }
  }

  const Model& m_;
  std::vector<SigType> memo_;
  std::vector<int> state_;  // 0 = unvisited, 1 = in progress, 2 = done
};

}  // namespace

void runModelChecks(const model::Model& m, DiagnosticSink& sink) {
  const auto loc = [&](const std::string& blockName) {
    return m.name() + "/" + blockName;
  };
  const auto& blocks = m.blocks();

  // --- Structural errors (everything compile() would reject) ------------
  for (const auto& b : blocks) {
    for (const auto& p : b.in) {
      if (!p.valid() || static_cast<std::size_t>(p.block) >= blocks.size()) {
        sink.report(Severity::kError, "invalid-ref", loc(b.name),
                    "input references a missing block");
        continue;
      }
      const Block& src = blocks[static_cast<std::size_t>(p.block)];
      const int srcOutputs = outputCount(m, src);
      if (p.port < 0 || p.port >= srcOutputs) {
        sink.report(Severity::kError, "invalid-ref", loc(b.name),
                    "references port " + std::to_string(p.port) + " of '" +
                        src.name + "' which has " +
                        std::to_string(srcOutputs) + " outputs");
      }
    }
    switch (b.kind) {
      case BlockKind::kSum:
      case BlockKind::kProduct:
        if (b.in.size() != b.signs.size()) {
          sink.report(Severity::kError, "arity-mismatch", loc(b.name),
                      std::to_string(b.in.size()) + " operands but " +
                          std::to_string(b.signs.size()) +
                          " signs/ops characters");
        }
        break;
      case BlockKind::kLogical:
        if (b.logicOp == model::LogicOp::kNot && b.in.size() != 1) {
          sink.report(Severity::kError, "arity-mismatch", loc(b.name),
                      "NOT takes exactly one operand, got " +
                          std::to_string(b.in.size()));
        }
        break;
      case BlockKind::kDataStoreRead:
      case BlockKind::kDataStoreReadElem:
      case BlockKind::kDataStoreWrite:
      case BlockKind::kDataStoreWriteElem:
        if (b.intParam < 0 ||
            static_cast<std::size_t>(b.intParam) >= m.dataStores().size()) {
          sink.report(Severity::kError, "invalid-ref", loc(b.name),
                      "references unknown data store " +
                          std::to_string(b.intParam));
        }
        break;
      case BlockKind::kChart: {
        if (b.chartIndex < 0 ||
            static_cast<std::size_t>(b.chartIndex) >= m.charts().size()) {
          sink.report(Severity::kError, "invalid-ref", loc(b.name),
                      "references unknown chart");
          break;
        }
        const auto& spec = m.charts()[static_cast<std::size_t>(b.chartIndex)];
        if (b.in.size() != spec.inputTemplateIds.size()) {
          sink.report(Severity::kError, "arity-mismatch", loc(b.name),
                      std::to_string(b.in.size()) + " wired inputs but " +
                          std::to_string(spec.inputTemplateIds.size()) +
                          " chart inputs declared");
        }
        for (const auto& t : spec.transitions) {
          if (t.guard == nullptr) {
            sink.report(Severity::kError, "chart-guard", loc(b.name),
                        "transition without a guard expression");
          }
        }
        break;
      }
      case BlockKind::kUnitDelay:
      case BlockKind::kDelayLine:
        if (b.in.empty()) {
          sink.report(
              Severity::kError, "unbound-delay", loc(b.name),
              "delay has no input: its state is stuck at the initial "
              "value (unbound hole — close the loop with bindDelayInput)");
        }
        break;
      case BlockKind::kLookup1D: {
        if (b.breakpoints.size() != b.tableValues.size()) {
          sink.report(Severity::kError, "lookup-table", loc(b.name),
                      std::to_string(b.breakpoints.size()) +
                          " breakpoints vs " +
                          std::to_string(b.tableValues.size()) + " values");
        }
        for (std::size_t i = 1; i < b.breakpoints.size(); ++i) {
          if (b.breakpoints[i] <= b.breakpoints[i - 1]) {
            sink.report(Severity::kError, "lookup-table", loc(b.name),
                        "breakpoints not strictly increasing");
            break;
          }
        }
        break;
      }
      default:
        break;
    }
  }
  for (const auto& r : m.regions()) {
    if (r.kind == model::RegionKind::kRoot) continue;
    if (!r.ctrl.valid() ||
        static_cast<std::size_t>(r.ctrl.block) >= blocks.size()) {
      sink.report(Severity::kError, "invalid-ref", loc(r.name),
                  "region has an invalid control signal");
    }
  }

  // --- Data store usage (unbound / unused variables) --------------------
  std::unordered_set<int> storesRead, storesWritten;
  for (const auto& b : blocks) {
    switch (b.kind) {
      case BlockKind::kDataStoreRead:
      case BlockKind::kDataStoreReadElem:
        storesRead.insert(b.intParam);
        break;
      case BlockKind::kDataStoreWrite:
      case BlockKind::kDataStoreWriteElem:
        storesWritten.insert(b.intParam);
        break;
      default:
        break;
    }
  }
  for (const auto& ds : m.dataStores()) {
    const bool read = storesRead.count(ds.index) > 0;
    const bool written = storesWritten.count(ds.index) > 0;
    if (read && !written) {
      sink.report(Severity::kWarning, "store-never-written",
                  loc(ds.name),
                  "data store is read but never written: every read "
                  "returns the initial value " +
                      ds.init.toString());
    } else if (!read && !written) {
      sink.report(Severity::kNote, "store-unused", loc(ds.name),
                  "data store is neither read nor written");
    }
  }

  // --- Type seams --------------------------------------------------------
  // Only bool<->numeric seams are flagged: int<->real coercion is routine
  // in Simulink-style models, but a boolean feeding arithmetic-only
  // machinery (or a real-valued signal used as a store index) almost
  // always means a miswired port.
  TypeInference types(m);
  for (const auto& b : blocks) {
    switch (b.kind) {
      case BlockKind::kLogical:
        for (std::size_t i = 0; i < b.in.size(); ++i) {
          if (types.typeOf(b.in[i]) == SigType::kReal) {
            sink.report(Severity::kWarning, "type-mismatch", loc(b.name),
                        "logical operand " + std::to_string(i) +
                            " is real-typed; comparisons should produce "
                            "the boolean");
          }
        }
        break;
      case BlockKind::kDataStoreWrite:
      case BlockKind::kDataStoreWriteElem: {
        if (b.intParam < 0 ||
            static_cast<std::size_t>(b.intParam) >= m.dataStores().size() ||
            b.in.empty()) {
          break;
        }
        const auto& ds =
            m.dataStores()[static_cast<std::size_t>(b.intParam)];
        // Value is the last input (write: value; writeElem: index, value).
        const SigType vt = types.typeOf(b.in.back());
        const SigType st = fromType(ds.type);
        const bool boolSeam = (vt == SigType::kBool) != (st == SigType::kBool);
        if (vt != SigType::kUnknownType && boolSeam) {
          sink.report(Severity::kWarning, "type-mismatch", loc(b.name),
                      "writes a " +
                          std::string(vt == SigType::kBool ? "boolean"
                                                           : "numeric") +
                          " value into " +
                          std::string(st == SigType::kBool ? "boolean"
                                                           : "numeric") +
                          " store '" + ds.name + "'");
        }
        break;
      }
      default:
        break;
    }
    // Element accesses index with an integer; a real-typed index is
    // silently truncated and usually signals a wiring mistake.
    if ((b.kind == BlockKind::kDataStoreReadElem && b.in.size() == 1 &&
         types.typeOf(b.in[0]) == SigType::kReal) ||
        (b.kind == BlockKind::kDataStoreWriteElem && b.in.size() == 2 &&
         types.typeOf(b.in[0]) == SigType::kReal)) {
      sink.report(Severity::kWarning, "type-mismatch", loc(b.name),
                  "store element index is real-typed and will be "
                  "truncated");
    }
  }
}

}  // namespace stcg::lint
