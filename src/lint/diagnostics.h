// Diagnostics engine for the model lint subsystem.
//
// A Diagnostic is one finding of one named static check: a severity, the
// check's kebab-case id, a location inside the model (block, decision arm,
// store, objective — rendered as a path string), and a human-readable
// message. A DiagnosticSink collects findings across checks, keeps
// severity tallies, and renders the batch as text or JSON (the `stcg_cli
// lint --json` schema documented in README.md).
#pragma once

#include <string>
#include <vector>

namespace stcg::lint {

enum class Severity {
  kNote,     // observation; never affects exit codes
  kWarning,  // suspicious but well-defined behaviour (hazards, dead logic)
  kError,    // malformed model; compilation or simulation would misbehave
};

[[nodiscard]] const char* severityName(Severity s);

struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string check;     // check id, e.g. "div-by-zero"
  std::string location;  // model path, e.g. "LEDLC/mode_sel:default"
  std::string message;
};

class DiagnosticSink {
 public:
  void report(Severity severity, std::string check, std::string location,
              std::string message);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  [[nodiscard]] int errorCount() const { return errors_; }
  [[nodiscard]] int warningCount() const { return warnings_; }
  [[nodiscard]] int noteCount() const { return notes_; }
  [[nodiscard]] bool hasErrors() const { return errors_ > 0; }
  [[nodiscard]] bool empty() const { return diags_.empty(); }

  /// Count of findings produced by one check id.
  [[nodiscard]] int countFor(const std::string& check) const;

  /// Stable order: errors first, then warnings, then notes; ties keep
  /// discovery order (checks run in registry order, so related findings
  /// stay adjacent).
  void sortBySeverity();

  /// One line per diagnostic: "severity [check] location: message".
  [[nodiscard]] std::string render() const;

  /// The full report as a JSON object (see README "JSON schema").
  [[nodiscard]] std::string renderJson(const std::string& modelName) const;

 private:
  std::vector<Diagnostic> diags_;
  int errors_ = 0;
  int warnings_ = 0;
  int notes_ = 0;
};

}  // namespace stcg::lint
