// Compiled-layer lint checks: semantic hazards and unreachable coverage
// goals over the lowered expression DAGs, evaluated against the interval
// state invariant from analysis/reachability.
//
// Hazard checks walk every distinct DAG node reachable from the model's
// expression roots (outputs, next-state functions, decision guards,
// objectives), so shared subexpressions are inspected once and reported
// under the first root that reaches them. Unreachability uses the same
// three-layer proof as dead-branch pre-verification (interval evaluation,
// HC4 contraction, solver refutation) via analysis::proveConstraintDead.

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/interval_tape.h"
#include "expr/builder.h"
#include "interval/interval.h"
#include "lint/lint.h"

namespace stcg::lint {

namespace {

using compile::CompiledModel;
using interval::Interval;

/// One expression root with the model location it belongs to.
struct Root {
  expr::ExprPtr e;
  std::string location;
};

std::vector<Root> collectRoots(const CompiledModel& cm) {
  std::vector<Root> roots;
  for (const auto& [name, e] : cm.outputs) {
    roots.push_back({e, "output '" + name + "'"});
  }
  for (const auto& sv : cm.states) {
    roots.push_back({sv.next, "state '" + sv.name + "'"});
  }
  for (const auto& d : cm.decisions) {
    roots.push_back({d.activation, "decision '" + d.name + "'"});
    for (std::size_t a = 0; a < d.armConds.size(); ++a) {
      roots.push_back({d.armConds[a], "decision '" + d.name + "':" +
                                          d.armLabels[a]});
    }
  }
  for (const auto& obj : cm.objectives) {
    roots.push_back({obj.cond, "objective '" + obj.name + "'"});
  }
  return roots;
}

/// Division/modulo and array-index hazards over every distinct DAG node.
void runHazardChecks(const CompiledModel& cm,
                     const analysis::StateInvariant& inv,
                     DiagnosticSink& sink) {
  analysis::IntervalEvaluator eval(inv.env);
  std::unordered_set<const expr::Expr*> visited;
  // Several distinct nodes often carry the same hazard (e.g. one scan
  // index feeding eight slot reads); report each rendered finding once.
  std::unordered_set<std::string> emitted;
  const auto reportOnce = [&](Severity sev, const char* check,
                              const std::string& location,
                              const std::string& message) {
    if (emitted.insert(std::string(check) + "|" + location + "|" + message)
            .second) {
      sink.report(sev, check, location, message);
    }
  };
  // Iterative DFS: bench DAGs are shallow, but seeded/adversarial models
  // need not be.
  std::vector<const expr::Expr*> stack;

  const auto checkNode = [&](const expr::Expr* e,
                             const std::string& location) {
    if (e->op == expr::Op::kDiv || e->op == expr::Op::kMod) {
      // Re-wrap the denominator so the interval evaluator can take it
      // (shared_ptr aliasing keeps the node alive without copying).
      const expr::ExprPtr denom = e->args[1];
      const Interval d = eval.evalScalar(denom);
      if (d.isPoint() && d.lo() == 0.0) {
        reportOnce(Severity::kWarning, "div-by-zero", location,
                    std::string(e->op == expr::Op::kDiv ? "division"
                                                        : "modulo") +
                        " by a constant zero denominator (guarded "
                        "semantics yield 0)");
      } else if (d.containsZero()) {
        reportOnce(Severity::kWarning, "div-by-zero", location,
                    std::string(e->op == expr::Op::kDiv ? "division"
                                                        : "modulo") +
                        " denominator " + d.toString() +
                        " may be zero under reachable state (guarded "
                        "semantics yield 0)");
      }
    } else if (e->op == expr::Op::kSelect || e->op == expr::Op::kStore) {
      const int n = e->args[0]->arraySize;
      if (n > 0) {
        const Interval idx = eval.evalScalar(e->args[1]).integralHull();
        if (!idx.isEmpty() && (idx.lo() < 0 || idx.hi() > n - 1)) {
          reportOnce(Severity::kWarning, "array-bounds", location,
                      "index " + idx.toString() +
                          " may fall outside [0, " + std::to_string(n - 1) +
                          "] (clamped at evaluation)");
        }
      }
    }
  };

  for (const auto& root : collectRoots(cm)) {
    stack.push_back(root.e.get());
    while (!stack.empty()) {
      const expr::Expr* e = stack.back();
      stack.pop_back();
      if (!visited.insert(e).second) continue;
      checkNode(e, root.location);
      for (const auto& arg : e->args) stack.push_back(arg.get());
    }
  }
}

/// Guards that folded to a constant: the construct's branching is
/// vestigial (one arm always taken). Chart transitions are exempt —
/// unconditional transitions legitimately carry a constant-true guard.
void runConstantGuardChecks(const CompiledModel& cm, DiagnosticSink& sink) {
  for (const auto& d : cm.decisions) {
    if (d.kind == compile::DecisionKind::kChartTransition) continue;
    for (std::size_t c = 0; c < d.conditions.size(); ++c) {
      if (d.conditions[c]->op == expr::Op::kConst) {
        sink.report(Severity::kWarning, "constant-guard",
                    "decision '" + d.name + "'",
                    "condition " + std::to_string(c) +
                        " folds to the constant " +
                        d.conditions[c]->constVal.toString() +
                        "; one arm can never execute");
      }
    }
    // A decision whose conditions all folded away leaves constant arm
    // guards (e.g. a Switch on a constant control signal).
    if (d.conditions.empty()) {
      for (std::size_t a = 0; a < d.armConds.size(); ++a) {
        if (d.armConds[a]->op == expr::Op::kConst) {
          sink.report(Severity::kWarning, "constant-guard",
                      "decision '" + d.name + "':" + d.armLabels[a],
                      "arm guard folds to the constant " +
                          d.armConds[a]->constVal.toString());
          break;  // one finding per degenerate decision is enough
        }
      }
    }
  }
}

/// Shared engine behind runCompiledChecks and findUnreachableGoals:
/// prove branches, condition polarities and objectives unreachable and
/// assemble the coverage exclusions (with the MCDC propagation rule).
void collectUnreachable(const CompiledModel& cm,
                        const analysis::StateInvariant& inv,
                        const analysis::ReachabilityOptions& opt,
                        coverage::Exclusions& excl,
                        std::vector<std::string>* labels) {
  const auto label = [&](std::string s) {
    if (labels != nullptr) labels->push_back(std::move(s));
  };

  // Batch the interval layer: every constraint is judged under the same
  // invariant, so one CSE-shared tape pass yields all layer-(1) verdicts
  // (branches, then condition-polarity conjunctions, then objectives, in
  // the loop order below); only inconclusive ones escalate to HC4/solver.
  std::vector<expr::ExprPtr> constraints;
  for (const auto& br : cm.branches) constraints.push_back(br.pathConstraint);
  for (const auto& d : cm.decisions) {
    for (const auto& c : d.conditions) {
      constraints.push_back(expr::andE(d.activation, c));
      constraints.push_back(expr::andE(d.activation, expr::notE(c)));
    }
  }
  for (const auto& obj : cm.objectives) {
    constraints.push_back(expr::andE(obj.activation, obj.cond));
  }
  const auto verdicts = analysis::intervalVerdicts(constraints, inv.env);
  std::size_t vi = 0;
  const auto dead = [&]() {
    const bool d = analysis::proveConstraintDeadFrom(
        cm, inv, constraints[vi], verdicts[vi], opt);
    ++vi;
    return d;
  };

  // Branches. Track dead arms per decision for the MCDC rule below.
  std::unordered_map<int, std::unordered_set<int>> deadArms;
  for (const auto& br : cm.branches) {
    if (dead()) {
      excl.branches.push_back(br.id);
      deadArms[br.decision].insert(br.arm);
      const auto& d = cm.decisions[static_cast<std::size_t>(br.decision)];
      label("branch " + d.name + ":" + br.label);
    }
  }

  // Condition polarities, observed only while the decision is active.
  std::unordered_map<int, std::unordered_set<int>> deadPolarities;
  for (const auto& d : cm.decisions) {
    for (std::size_t c = 0; c < d.conditions.size(); ++c) {
      for (const bool polarity : {true, false}) {
        if (!dead()) continue;
        excl.conditionSlots.push_back(
            {d.id, static_cast<int>(c), polarity});
        deadPolarities[d.id].insert(static_cast<int>(c));
        label("condition " + d.name + ":cond" + std::to_string(c) +
              (polarity ? "=T" : "=F"));
      }
    }
  }

  // MCDC: a condition's unique-cause obligation cannot be met when either
  // of its polarities is unreachable, or when either arm of its (boolean)
  // decision is — no outcome-flipping pair can exist.
  for (const auto& d : cm.decisions) {
    if (!d.isBooleanDecision() || d.conditions.empty()) continue;
    const auto armsIt = deadArms.find(d.id);
    const bool anyDeadArm = armsIt != deadArms.end();
    const auto polsIt = deadPolarities.find(d.id);
    const std::size_t nc = std::min<std::size_t>(d.conditions.size(), 64);
    for (std::size_t c = 0; c < nc; ++c) {
      const bool deadPolarity =
          polsIt != deadPolarities.end() &&
          polsIt->second.count(static_cast<int>(c)) > 0;
      if (anyDeadArm || deadPolarity) {
        excl.mcdcSlots.push_back({d.id, static_cast<int>(c)});
        label("mcdc " + d.name + ":cond" + std::to_string(c));
      }
    }
  }

  // Custom test objectives.
  for (const auto& obj : cm.objectives) {
    if (dead()) {
      excl.objectives.push_back(obj.id);
      label("objective " + obj.name);
    }
  }
}

}  // namespace

void runCompiledChecks(const CompiledModel& cm, const LintOptions& opt,
                       LintResult& out) {
  out.compiledChecksRan = true;
  runConstantGuardChecks(cm, out.sink);
  if (!opt.reachabilityChecks) return;

  const analysis::StateInvariant inv =
      analysis::computeStateInvariant(cm, opt.reach);
  runHazardChecks(cm, inv, out.sink);

  std::vector<std::string> labels;
  collectUnreachable(cm, inv, opt.reach, out.exclusions, &labels);
  out.exclusionLabels = labels;

  // Report unreachability findings off the assembled exclusions so the
  // diagnostics and the exclusions can never disagree.
  for (std::size_t i = 0; i < out.exclusions.branches.size(); ++i) {
    const auto& br =
        cm.branches[static_cast<std::size_t>(out.exclusions.branches[i])];
    const auto& d = cm.decisions[static_cast<std::size_t>(br.decision)];
    out.sink.report(Severity::kWarning, "unreachable-branch",
                    "decision '" + d.name + "':" + br.label,
                    "branch proven unreachable from every reachable state "
                    "(excluded from coverage denominators)");
  }
  for (const auto& slot : out.exclusions.conditionSlots) {
    const auto& d = cm.decisions[static_cast<std::size_t>(slot.decision)];
    out.sink.report(Severity::kNote, "unreachable-condition",
                    "decision '" + d.name + "':cond" +
                        std::to_string(slot.cond),
                    std::string("polarity ") +
                        (slot.polarity ? "true" : "false") +
                        " proven unobservable while the decision is "
                        "active");
  }
  for (const int objId : out.exclusions.objectives) {
    const auto& obj = cm.objectives[static_cast<std::size_t>(objId)];
    out.sink.report(Severity::kWarning, "unreachable-objective",
                    "objective '" + obj.name + "'",
                    "objective proven unsatisfiable (excluded from "
                    "coverage denominators)");
  }
}

coverage::Exclusions findUnreachableGoals(
    const CompiledModel& cm, std::vector<std::string>* labels,
    const analysis::ReachabilityOptions& opt) {
  coverage::Exclusions excl;
  const analysis::StateInvariant inv = analysis::computeStateInvariant(cm, opt);
  collectUnreachable(cm, inv, opt, excl, labels);
  return excl;
}

}  // namespace stcg::lint
